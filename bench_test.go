// Benchmarks reproducing the paper's tables and figures as testing.B
// harnesses, one per artifact. Custom metrics carry the quantities the
// paper reports (per-op costs in ns, latencies in ms, throughput in
// req/s); ns/op measures the cost of regenerating the artifact itself.
//
// The heavier figure benchmarks simulate hundreds of milliseconds of
// machine time per iteration; run with -benchtime=1x (or the default
// auto-scaling) as preferred. cmd/experiments prints the full series.
package tableau_test

import (
	"fmt"
	"testing"

	"tableau/internal/experiments"
	"tableau/internal/planner"
	"tableau/internal/workload"
)

// BenchmarkFig3TableGeneration measures planner time for the paper's
// Fig. 3 sweep points: 44 guest cores, 25% VMs, varying population and
// latency goal.
func BenchmarkFig3TableGeneration(b *testing.B) {
	for _, goalMS := range []int64{1, 30, 100} {
		for _, vms := range []int{44, 176} {
			b.Run(fmt.Sprintf("goal=%dms/vms=%d", goalMS, vms), func(b *testing.B) {
				specs := make([]planner.VCPUSpec, vms)
				for i := range specs {
					specs[i] = planner.VCPUSpec{
						Name:        fmt.Sprintf("vm%d", i),
						Util:        planner.Util{Num: 1, Den: 4},
						LatencyGoal: goalMS * 1_000_000,
						Capped:      true,
					}
				}
				opts := planner.Options{Cores: 44, TableLength: planner.MaxHyperperiod}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := planner.Plan(specs, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig4TableSize measures the serialized size (the Fig. 4
// metric, reported as table_bytes) and encoding throughput.
func BenchmarkFig4TableSize(b *testing.B) {
	for _, goalMS := range []int64{1, 100} {
		b.Run(fmt.Sprintf("goal=%dms", goalMS), func(b *testing.B) {
			specs := make([]planner.VCPUSpec, 176)
			for i := range specs {
				specs[i] = planner.VCPUSpec{
					Name:        fmt.Sprintf("vm%d", i),
					Util:        planner.Util{Num: 1, Den: 4},
					LatencyGoal: goalMS * 1_000_000,
					Capped:      true,
				}
			}
			res, err := planner.Plan(specs, planner.Options{Cores: 44, TableLength: planner.MaxHyperperiod})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Table.EncodedSize()), "table_bytes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = res.Table.EncodedSize()
			}
		})
	}
}

// benchHotPaths runs the I/O-intensive overhead scenario (Tables 1/2)
// under one scheduler for b.N * 10 ms of simulated time and reports the
// native mean cost of the reimplemented schedule and wakeup hot paths.
func benchHotPaths(b *testing.B, kind experiments.SchedulerKind, machineCores int) {
	sc, err := experiments.Build(experiments.ScenarioConfig{
		GuestCores:    machineCores - 4,
		Scheduler:     kind,
		Capped:        kind == experiments.RTDS,
		Background:    experiments.BGIO,
		Seed:          7,
		OverheadCores: machineCores,
		Timed:         true,
	}, workload.StressIO(100_000, 100_000, 60, 7))
	if err != nil {
		b.Fatal(err)
	}
	sc.M.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.M.Run(int64(i+1) * 10_000_000)
	}
	b.StopTimer()
	if sc.Timed.Pick.Ops > 0 {
		b.ReportMetric(sc.Timed.Pick.MeanNs(), "ns/schedule")
	}
	if sc.Timed.Wake.Ops > 0 {
		b.ReportMetric(sc.Timed.Wake.MeanNs(), "ns/wakeup")
	}
}

// BenchmarkTab1SchedulerOps measures the native hot-path costs on the
// paper's 16-core configuration (Table 1). The ordering — Tableau's
// lookup far below Credit's runqueue walk — is the paper's headline
// overhead claim.
func BenchmarkTab1SchedulerOps(b *testing.B) {
	for _, kind := range []experiments.SchedulerKind{experiments.Credit, experiments.Credit2, experiments.RTDS, experiments.Tableau} {
		b.Run(string(kind), func(b *testing.B) { benchHotPaths(b, kind, 16) })
	}
}

// BenchmarkTab2SchedulerOps repeats the measurement on the 48-core
// configuration (Table 2), where RTDS's global lock dominates.
func BenchmarkTab2SchedulerOps(b *testing.B) {
	for _, kind := range []experiments.SchedulerKind{experiments.Credit, experiments.Credit2, experiments.RTDS, experiments.Tableau} {
		b.Run(string(kind), func(b *testing.B) { benchHotPaths(b, kind, 48) })
	}
}

// BenchmarkFig5Intrinsic runs the redis-cli-style probe cell (capped,
// I/O background) and reports the max scheduling delay per scheduler.
func BenchmarkFig5Intrinsic(b *testing.B) {
	for _, kind := range experiments.CappedSchedulers {
		b.Run(string(kind), func(b *testing.B) {
			probe := &workload.Probe{Chunk: 10_000}
			sc, err := experiments.Build(experiments.ScenarioConfig{
				Scheduler:  kind,
				Capped:     true,
				Background: experiments.BGIO,
				Seed:       42,
			}, probe.Program())
			if err != nil {
				b.Fatal(err)
			}
			sc.M.Start()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.M.Run(int64(i+1) * 100_000_000)
			}
			b.StopTimer()
			b.ReportMetric(float64(probe.MaxDelay())/1e6, "max_delay_ms")
		})
	}
}

// BenchmarkFig6Ping runs the ping cell (capped, I/O background) and
// reports average and max response latency per scheduler.
func BenchmarkFig6Ping(b *testing.B) {
	for _, kind := range experiments.CappedSchedulers {
		b.Run(string(kind), func(b *testing.B) {
			sink := &workload.PingSink{}
			sc, err := experiments.Build(experiments.ScenarioConfig{
				Scheduler:  kind,
				Capped:     true,
				Background: experiments.BGIO,
				Seed:       42,
			}, sink.Program())
			if err != nil {
				b.Fatal(err)
			}
			sink.Bind(sc.Vantage)
			sc.M.Start()
			workload.SchedulePings(sc.M, sink, 8, 10_000, 20_000_000, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.M.Run(int64(i+1) * 100_000_000)
			}
			b.StopTimer()
			h := sink.Latencies()
			b.ReportMetric(h.Mean()/1e6, "avg_ms")
			b.ReportMetric(float64(h.Max())/1e6, "max_ms")
		})
	}
}

// benchWeb runs one Fig. 7/8 cell for b.N * 100 ms and reports achieved
// throughput and p99 latency.
func benchWeb(b *testing.B, kind experiments.SchedulerKind, capped bool, bg experiments.BGKind, size int64, rate float64) {
	srv := experiments.NewWebServer()
	sc, err := experiments.Build(experiments.ScenarioConfig{
		Scheduler:  kind,
		Capped:     capped,
		Background: bg,
		Seed:       17,
	}, srv.Program())
	if err != nil {
		b.Fatal(err)
	}
	srv.Bind(sc.Vantage)
	const stream = 60_000_000_000 // 60 s of offered load
	horizon := int64(0)
	sc.M.Start()
	workload.RunOpenLoop(sc.M, srv, 0, rate, stream, size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		horizon += 100_000_000
		sc.M.Run(horizon)
	}
	b.StopTimer()
	// Throughput over the window that actually had offered load: b.N
	// scaling may push the horizon past the request stream.
	if window := min64(horizon, stream); window > 0 {
		b.ReportMetric(float64(srv.Completed())/(float64(window)/1e9), "req/s")
	}
	b.ReportMetric(float64(srv.Latencies().P99())/1e6, "p99_ms")
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// BenchmarkFig7Web covers one representative point per Fig. 7 row:
// near-saturation load for each file size in the capped scenario plus
// the uncapped 100 KiB row.
func BenchmarkFig7Web(b *testing.B) {
	rows := []struct {
		name   string
		capped bool
		size   int64
		rate   float64
	}{
		{"capped/1KiB", true, 1 << 10, 1600},
		{"capped/100KiB", true, 100 << 10, 600},
		{"capped/1MiB", true, 1 << 20, 120},
		{"uncapped/100KiB", false, 100 << 10, 850},
	}
	for _, row := range rows {
		for _, kind := range experiments.CappedSchedulers {
			if !row.capped && kind == experiments.RTDS {
				kind = experiments.Credit2
			}
			b.Run(row.name+"/"+string(kind), func(b *testing.B) {
				benchWeb(b, kind, row.capped, experiments.BGIO, row.size, row.rate)
			})
		}
	}
}

// BenchmarkFig8Web covers the cache-thrashing-background row.
func BenchmarkFig8Web(b *testing.B) {
	for _, capped := range []bool{true, false} {
		scheds := experiments.CappedSchedulers
		label := "capped"
		if !capped {
			scheds = experiments.UncappedSchedulers
			label = "uncapped"
		}
		for _, kind := range scheds {
			b.Run(fmt.Sprintf("%s/%s", label, kind), func(b *testing.B) {
				benchWeb(b, kind, capped, experiments.BGCPU, 100<<10, 580)
			})
		}
	}
}
