// Command tableau-plan is the planner CLI: it reads a VM population
// from a JSON file, generates a scheduling table with the full Tableau
// progression (partitioning, C=D splitting, cluster scheduling),
// verifies the per-VM guarantees, and prints the resulting schedule. It
// can also serialize the table in the binary format the dispatcher
// consumes (the paper's "compiled format" pushed via hypercall).
//
// Usage:
//
//	tableau-plan -config vms.json [-out table.bin] [-dump] [-peephole] [-compensate-ppm N]
//	tableau-plan -decode table.bin
//
// Config format:
//
//	{
//	  "cores": 4,
//	  "vms": [
//	    {"name": "web0", "utilization": "1/4", "latency_goal_ms": 20, "capped": true},
//	    {"name": "batch0", "utilization": "0.5", "latency_goal_ms": 100}
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tableau/internal/planner"
	"tableau/internal/table"
)

type configVM struct {
	Name          string  `json:"name"`
	Utilization   string  `json:"utilization"`
	LatencyGoalMS float64 `json:"latency_goal_ms"`
	Capped        bool    `json:"capped"`
}

type config struct {
	Cores int        `json:"cores"`
	VMs   []configVM `json:"vms"`
}

// parseUtil accepts "num/den" fractions or decimal strings.
func parseUtil(s string) (planner.Util, error) {
	s = strings.TrimSpace(s)
	if num, den, ok := strings.Cut(s, "/"); ok {
		n, err1 := strconv.ParseInt(strings.TrimSpace(num), 10, 64)
		d, err2 := strconv.ParseInt(strings.TrimSpace(den), 10, 64)
		if err1 != nil || err2 != nil {
			return planner.Util{}, fmt.Errorf("bad fraction %q", s)
		}
		return planner.Util{Num: n, Den: d}, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return planner.Util{}, fmt.Errorf("bad utilization %q", s)
	}
	return planner.UtilFromPPM(int64(f * 1_000_000)), nil
}

func main() {
	configPath := flag.String("config", "", "JSON file describing the VM population")
	outPath := flag.String("out", "", "write the binary scheduling table here")
	dump := flag.Bool("dump", false, "print every allocation of the generated table")
	peephole := flag.Bool("peephole", false, "enable the context-switch reduction pass")
	compensatePPM := flag.Int64("compensate-ppm", 0, "extra utilization (ppm) granted to C=D-split vCPUs")
	decodePath := flag.String("decode", "", "decode and summarize a binary table instead of planning")
	flag.Parse()
	if *decodePath != "" {
		decode(*decodePath)
		return
	}
	if *configPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	raw, err := os.ReadFile(*configPath)
	if err != nil {
		fatal(err)
	}
	var cfg config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *configPath, err))
	}

	var specs []planner.VCPUSpec
	for _, vm := range cfg.VMs {
		u, err := parseUtil(vm.Utilization)
		if err != nil {
			fatal(fmt.Errorf("vm %q: %w", vm.Name, err))
		}
		specs = append(specs, planner.VCPUSpec{
			Name:        vm.Name,
			Util:        u,
			LatencyGoal: int64(vm.LatencyGoalMS * 1e6),
			Capped:      vm.Capped,
		})
	}

	res, err := planner.Plan(specs, planner.Options{
		Cores:                cfg.Cores,
		Peephole:             *peephole,
		SplitCompensationPPM: *compensatePPM,
	})
	if err != nil {
		fatal(err)
	}
	tbl := res.Table

	fmt.Printf("planned %d vCPUs on %d cores\n", len(specs), cfg.Cores)
	fmt.Printf("  stage:        %s\n", res.Stage)
	fmt.Printf("  table length: %.3f ms\n", float64(tbl.Len)/1e6)
	fmt.Printf("  table size:   %d bytes (%d slice entries)\n", tbl.EncodedSize(), tbl.SliceCount())
	if len(res.Splits) > 0 {
		for _, sp := range res.Splits {
			fmt.Printf("  split: %s into %d pieces on cores %v\n", specs[sp.VCPU].Name, sp.Pieces, sp.Cores)
		}
	}
	if len(res.ClusterCores) > 0 {
		fmt.Printf("  cluster-scheduled cores: %v\n", res.ClusterCores)
	}
	if res.SwitchesSaved > 0 {
		fmt.Printf("  peephole: %d context switches removed per cycle\n", res.SwitchesSaved)
	}
	fmt.Println("  guarantees verified: every VM receives its reserved time in every")
	fmt.Println("  period window and never waits longer than its latency goal.")
	for _, g := range res.Guarantees {
		fmt.Printf("    %-12s >= %7.3f ms per %7.3f ms window, blackout <= %.1f ms\n",
			specs[g.VCPU].Name, float64(g.Service)/1e6, float64(g.WindowLen)/1e6, float64(g.MaxBlackout)/1e6)
	}

	if *dump {
		for _, ct := range tbl.Cores {
			fmt.Printf("core %d (%d allocations, slice %.1f µs):\n", ct.Core, len(ct.Allocs), float64(ct.SliceLen)/1e3)
			for _, a := range ct.Allocs {
				fmt.Printf("  [%10.3f, %10.3f) ms  %s\n",
					float64(a.Start)/1e6, float64(a.End)/1e6, specs[a.VCPU].Name)
			}
		}
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		if err := tbl.Encode(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *outPath, tbl.EncodedSize())
	}
}

// decode reads a binary table and prints its summary (the consumer-side
// view of the planner's "compiled format").
func decode(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tbl, err := table.Decode(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("decoded table generation %d\n", tbl.Generation)
	fmt.Printf("  length: %.3f ms, %d cores, %d vCPUs, %d slice entries\n",
		float64(tbl.Len)/1e6, tbl.NumCores(), len(tbl.VCPUs), tbl.SliceCount())
	for id, vi := range tbl.VCPUs {
		mode := "uncapped"
		if vi.Capped {
			mode = "capped"
		}
		extra := ""
		if vi.Split {
			extra = ", split"
		}
		fmt.Printf("  %-12s %7.3f ms/cycle on home core %d (%s%s)\n",
			vi.Name, float64(tbl.ServiceOf(id))/1e6, vi.HomeCore, mode, extra)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tableau-plan:", err)
	os.Exit(1)
}
