package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tableau/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the checked-in sample dump and golden outputs")

// sampleTracer scripts a small two-core, three-vCPU run touching every
// event type the CLI renders: dispatches with distinct scheduling
// latencies, a block/wakeup cycle, faults, all three IPI dispositions,
// a migration, and an L2 pick. The sequence is fixed, so the encoded
// dump and every golden output are byte-stable.
func sampleTracer() *trace.Tracer {
	tr := trace.New(64)
	tr.Bind(2, 3)
	tr.Emit(trace.EvPlannerCall, -1, 0, -1, 1, 0)
	tr.Emit(trace.EvTableSwitch, -1, 0, -1, 1, 0)
	tr.Emit(trace.EvContextSwitch, 0, 1_000, 0, -1, 0)
	tr.Emit(trace.EvRunstateChange, 0, 1_000, 0, trace.StateRunnable, trace.StateRunning)
	tr.Emit(trace.EvContextSwitch, 1, 2_000, 1, -1, 0)
	tr.Emit(trace.EvRunstateChange, 1, 2_000, 1, trace.StateRunnable, trace.StateRunning)
	tr.Emit(trace.EvRunstateChange, 0, 500_000, 0, trace.StateRunning, trace.StateBlocked)
	tr.Emit(trace.EvContextSwitch, 0, 500_000, -1, 0, 0)
	tr.Emit(trace.EvRunstateChange, 0, 600_000, 0, trace.StateBlocked, trace.StateRunnable)
	tr.Emit(trace.EvIPI, 0, 600_000, -1, trace.IPISent, 0)
	tr.Emit(trace.EvContextSwitch, 0, 620_000, 0, -1, 0)
	tr.Emit(trace.EvRunstateChange, 0, 620_000, 0, trace.StateRunnable, trace.StateRunning)
	tr.Emit(trace.EvFaultInjected, 1, 800_000, -1, trace.FaultStall, 5_000)
	tr.Emit(trace.EvIPI, 1, 900_000, -1, trace.IPIDelayed, 700)
	tr.Emit(trace.EvIPI, 0, 950_000, -1, trace.IPIDropped, 0)
	tr.Emit(trace.EvRunstateChange, 1, 1_000_000, 1, trace.StateRunning, trace.StateRunnable)
	tr.Emit(trace.EvMigrate, 1, 1_000_000, 2, 0, 1)
	tr.Emit(trace.EvL2Pick, 1, 1_000_000, 2, 4_000, 0)
	tr.Emit(trace.EvRunstateChange, 1, 1_000_000, 2, trace.StateRunnable, trace.StateRunning)
	tr.Emit(trace.EvRunstateChange, 1, 1_100_000, 2, trace.StateRunning, trace.StateRunnable)
	tr.FlushResidency(2_000_000)
	return tr
}

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test ./cmd/tableau-trace -update`)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted (regenerate with `go test ./cmd/tableau-trace -update`):\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestGoldenCLI pins the rendered output of every subcommand on a
// checked-in deterministic dump: decode's human format, the CSV
// export, a filtered decode, and the summarize report.
func TestGoldenCLI(t *testing.T) {
	dumpPath := filepath.Join("testdata", "sample.trace")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sampleTracer().Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dumpPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		// The checked-in dump must itself be the canonical encoding of
		// the scripted run — a format change shows up here first.
		var buf bytes.Buffer
		if err := sampleTracer().Encode(&buf); err != nil {
			t.Fatal(err)
		}
		disk, err := os.ReadFile(dumpPath)
		if err != nil {
			t.Fatalf("%v (regenerate with `go test ./cmd/tableau-trace -update`)", err)
		}
		if !bytes.Equal(disk, buf.Bytes()) {
			t.Fatalf("%s is not the canonical encoding of the scripted sample (regenerate with -update)", dumpPath)
		}
	}

	var out bytes.Buffer
	cmdDecode(&out, []string{dumpPath}, false)
	golden(t, "decode.golden", out.Bytes())

	out.Reset()
	cmdDecode(&out, []string{"-type", "runstate", "-vcpu", "0", dumpPath}, false)
	golden(t, "decode_filtered.golden", out.Bytes())

	out.Reset()
	cmdDecode(&out, []string{dumpPath}, true)
	golden(t, "csv.golden", out.Bytes())

	out.Reset()
	cmdSummarize(&out, []string{dumpPath})
	golden(t, "summarize.golden", out.Bytes())
}
