// Command tableau-trace inspects binary trace dumps (TBTRACE1) written
// by tableau-sim, cmd/experiments, or any other embedder of
// internal/trace. It is the xentrace/xenalyze counterpart of this
// reproduction: `decode` prints records human-readably, `csv` exports
// them for plotting, and `summarize` derives the same metrics the live
// tracer maintains — scheduling-latency CDFs per vCPU, runstate
// residency, and protocol counters — so a dumped run summarizes to
// exactly the numbers the experiment reported.
//
// Usage:
//
//	tableau-trace summarize run.trace
//	tableau-trace decode [-cpu N] [-vcpu N] [-type runstate] [-from NS] [-to NS] [-limit N] run.trace
//	tableau-trace csv    [same filters] run.trace > records.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"tableau/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "summarize":
		cmdSummarize(os.Stdout, os.Args[2:])
	case "decode":
		cmdDecode(os.Stdout, os.Args[2:], false)
	case "csv":
		cmdDecode(os.Stdout, os.Args[2:], true)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tableau-trace summarize|decode|csv [flags] FILE")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tableau-trace:", err)
	os.Exit(1)
}

func load(path string) *trace.TraceData {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	d, err := trace.Decode(f)
	if err != nil {
		fatal(err)
	}
	return d
}

// filter is the record selection shared by decode and csv.
type filter struct {
	cpu, vcpu int
	typ       string
	from, to  int64
	limit     int
}

func (f *filter) register(fs *flag.FlagSet) {
	fs.IntVar(&f.cpu, "cpu", -1, "only records from this pCPU ring (-1 = all)")
	fs.IntVar(&f.vcpu, "vcpu", -1, "only records about this vCPU (-1 = all)")
	fs.StringVar(&f.typ, "type", "", "only this event type (runstate, ctxswitch, tableswitch, ipi, fault, l2pick, plannercall, migrate, planorigin)")
	fs.Int64Var(&f.from, "from", 0, "only records at or after this simulated ns")
	fs.Int64Var(&f.to, "to", 0, "only records before this simulated ns (0 = no bound)")
	fs.IntVar(&f.limit, "limit", 0, "stop after this many records (0 = all)")
}

func (f *filter) keep(r *trace.Record) bool {
	if f.cpu >= 0 && int(r.CPU) != f.cpu {
		return false
	}
	if f.vcpu >= 0 && int(r.VCPU) != f.vcpu {
		return false
	}
	if f.typ != "" && r.Type != trace.EventByName(f.typ) {
		return false
	}
	if r.Time < f.from {
		return false
	}
	if f.to > 0 && r.Time >= f.to {
		return false
	}
	return true
}

// describe renders a record's event-specific arguments.
func describe(r *trace.Record) string {
	switch r.Type {
	case trace.EvRunstateChange:
		return fmt.Sprintf("%s -> %s", trace.StateName(r.Arg0), trace.StateName(r.Arg1))
	case trace.EvContextSwitch:
		in, out := "idle", "idle"
		if r.VCPU >= 0 {
			in = fmt.Sprintf("v%d", r.VCPU)
		}
		if r.Arg0 >= 0 {
			out = fmt.Sprintf("v%d", r.Arg0)
		}
		return fmt.Sprintf("%s -> %s", out, in)
	case trace.EvTableSwitch:
		return fmt.Sprintf("adopt gen %d at cycle %d", r.Arg0, r.Arg1)
	case trace.EvIPI:
		switch r.Arg0 {
		case trace.IPIDropped:
			return "dropped"
		case trace.IPIDelayed:
			return fmt.Sprintf("delayed %d ns", r.Arg1)
		}
		return "sent"
	case trace.EvFaultInjected:
		return fmt.Sprintf("%s magnitude %d", trace.FaultKindName(r.Arg0), r.Arg1)
	case trace.EvL2Pick:
		return fmt.Sprintf("budget %d ns", r.Arg0)
	case trace.EvPlannerCall:
		return fmt.Sprintf("stage gen %d at cycle %d", r.Arg0, r.Arg1)
	case trace.EvMigrate:
		kind := "placement"
		if r.Arg1 == 1 {
			kind = "work-steal"
		}
		return fmt.Sprintf("%s from core %d", kind, r.Arg0)
	case trace.EvPlanOrigin:
		return fmt.Sprintf("%s, %d cores pinned", trace.PlanOriginName(r.Arg0), r.Arg1)
	}
	return fmt.Sprintf("arg0=%d arg1=%d", r.Arg0, r.Arg1)
}

func cpuLabel(c uint16) string {
	if c == trace.ControlCPU {
		return "ctl"
	}
	return strconv.Itoa(int(c))
}

func cmdDecode(out io.Writer, args []string, asCSV bool) {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	var f filter
	f.register(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	d := load(fs.Arg(0))
	recs := d.Merged()

	var w *csv.Writer
	if asCSV {
		w = csv.NewWriter(out)
		w.Write([]string{"time_ns", "seq", "cpu", "type", "vcpu", "arg0", "arg1"})
	}
	n := 0
	for i := range recs {
		r := &recs[i]
		if !f.keep(r) {
			continue
		}
		if asCSV {
			w.Write([]string{
				strconv.FormatInt(r.Time, 10),
				strconv.FormatUint(r.Seq, 10),
				cpuLabel(r.CPU),
				trace.EventName(r.Type),
				strconv.Itoa(int(r.VCPU)),
				strconv.FormatInt(r.Arg0, 10),
				strconv.FormatInt(r.Arg1, 10),
			})
		} else {
			vcpu := "-"
			if r.VCPU >= 0 {
				vcpu = fmt.Sprintf("v%d", r.VCPU)
			}
			fmt.Fprintf(out, "%12d  cpu%-3s %-11s %-5s %s\n",
				r.Time, cpuLabel(r.CPU), trace.EventName(r.Type), vcpu, describe(r))
		}
		n++
		if f.limit > 0 && n >= f.limit {
			break
		}
	}
	if asCSV {
		w.Flush()
		if err := w.Error(); err != nil {
			fatal(err)
		}
	}
}

func cmdSummarize(out io.Writer, args []string) {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	d := load(fs.Arg(0))
	m := trace.Analyze(d)

	records := 0
	for _, ring := range d.Rings {
		records += len(ring.Records)
	}
	fmt.Fprintf(out, "trace: %d pCPUs, %d vCPUs, %d records", d.NCPUs, d.NVCPUs, records)
	if lost := d.Lost(); lost > 0 {
		fmt.Fprintf(out, " (%d lost to ring overwrite — summary is partial)", lost)
	}
	fmt.Fprintf(out, ", end %.3f ms\n\n", float64(d.EndTime)/1e6)

	fmt.Fprintf(out, "counters: %d ctxswitch, %d tableswitch, %d plannercall, %d fault\n",
		m.ContextSwitches, m.TableSwitches, m.PlannerCalls, m.FaultsInjected)
	if n := m.PlansScratch + m.PlansCached + m.PlansIncremental + m.PlansSpeculative; n > 0 {
		fmt.Fprintf(out, "plans:    %d scratch, %d cached, %d incremental, %d speculative, %d cores pinned\n",
			m.PlansScratch, m.PlansCached, m.PlansIncremental, m.PlansSpeculative, m.PinnedCores)
	}
	fmt.Fprintf(out, "ipis:     %d sent, %d dropped, %d delayed\n\n",
		m.IPIsSent, m.IPIsDropped, m.IPIsDelayed)

	fmt.Fprintf(out, "%-5s %10s %10s %10s %10s %9s %10s %10s %10s %8s %8s\n",
		"vcpu", "lat_p50_ms", "lat_p90_ms", "lat_p99_ms", "lat_max_ms", "samples",
		"run_ms", "runnable_ms", "blocked_ms", "dispatch", "wakeups")
	for v := range m.VMs {
		vm := &m.VMs[v]
		lat := &vm.SchedLatency
		fmt.Fprintf(out, "%-5d %10.3f %10.3f %10.3f %10.3f %9d %10.3f %10.3f %10.3f %8d %8d\n",
			v,
			float64(lat.Quantile(0.50))/1e6,
			float64(lat.Quantile(0.90))/1e6,
			float64(lat.Quantile(0.99))/1e6,
			float64(lat.Max())/1e6,
			lat.Count(),
			float64(vm.RunNs)/1e6,
			float64(vm.RunnableNs)/1e6,
			float64(vm.BlockedNs)/1e6,
			vm.ContextSwitches,
			vm.Wakeups)
	}
}
