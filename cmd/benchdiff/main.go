// Command benchdiff is the repo's perf-regression harness. It runs the
// tier-1 micro-benchmarks (the hot-path packages, not the heavy
// figure-reproduction benchmarks at the repo root), times one full
// `experiments -mode quick -run all` sweep, writes the results as
// BENCH_<date>.json, and compares them against the most recent previous
// snapshot with a tolerance gate:
//
//	benchdiff            # run, snapshot, report deltas
//	benchdiff -gate      # additionally exit 1 on regression (CI)
//
// ns/op deltas within -tolerance percent pass; B/op and allocs/op get
// only a small amortization slack, because the schedule/fire and
// dispatch hot paths are kept allocation-free by design — a zero-alloc
// benchmark gaining any alloc is an infinite-percent growth the slack
// never excuses.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"tableau/internal/benchfmt"
)

// defaultPkgs are the micro-benchmark packages: fast, stable timings.
// The root-level figure benchmarks run whole simulations for seconds
// each and belong to `go test -bench . .`, not the regression gate.
const defaultPkgs = "./internal/sim,./internal/planner,./internal/table,./internal/dispatch,./internal/stats,./internal/netdev,./internal/periodic,./internal/trace,./internal/experiments,./internal/core,./internal/fleet"

func main() {
	pkgs := flag.String("pkgs", defaultPkgs, "comma-separated packages to benchmark")
	benchRe := flag.String("bench", ".", "benchmark selection regex (go test -bench)")
	benchtime := flag.String("benchtime", "100ms", "per-benchmark measurement time (go test -benchtime)")
	count := flag.Int("count", 2, "runs per benchmark; the snapshot keeps the best")
	outDir := flag.String("out", ".", "directory for BENCH_<date>.json snapshots")
	against := flag.String("against", "", "previous snapshot to compare to (default: newest BENCH_*.json in -out)")
	tolerance := flag.Float64("tolerance", 10, "allowed ns/op growth in percent")
	gate := flag.Bool("gate", false, "exit 1 if any regression exceeds tolerance")
	skipExperiments := flag.Bool("skip-experiments", false, "skip timing the quick experiments sweep")
	parallel := flag.Int("parallel", 0, "-parallel value for the experiments sweep (0 = GOMAXPROCS)")
	flag.Parse()

	snap := &benchfmt.Snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	bench, err := runBenchmarks(strings.Split(*pkgs, ","), *benchRe, *benchtime, *count)
	if err != nil {
		fatal(err)
	}
	snap.Benchmarks = bench
	fmt.Printf("benchdiff: %d benchmarks measured\n", len(bench))

	if !*skipExperiments {
		secs, err := timeExperiments(*parallel)
		if err != nil {
			fatal(err)
		}
		snap.ExperimentsWallSeconds = secs
		snap.ExperimentsParallel = *parallel
		fmt.Printf("benchdiff: experiments -mode quick -run all -parallel %d: %.2fs\n", *parallel, secs)
	}

	prevPath := *against
	if prevPath == "" {
		prevPath = latestSnapshot(*outDir)
	}

	outPath := filepath.Join(*outDir, "BENCH_"+snap.Date+".json")
	if err := writeSnapshot(outPath, snap); err != nil {
		fatal(err)
	}
	fmt.Printf("benchdiff: wrote %s\n", outPath)

	if prevPath == "" || prevPath == outPath {
		fmt.Println("benchdiff: no previous snapshot to compare against")
		return
	}
	prev, err := readSnapshot(prevPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchdiff: comparing against %s (%s, %s, GOMAXPROCS=%d)\n",
		prevPath, prev.Date, prev.GoVersion, prev.GOMAXPROCS)

	reg, imp := benchfmt.Compare(prev.Benchmarks, snap.Benchmarks, *tolerance)
	for _, d := range imp {
		fmt.Println("  improved:", d)
	}
	for _, d := range reg {
		fmt.Println("  REGRESSED:", d)
	}
	if prev.ExperimentsWallSeconds > 0 && snap.ExperimentsWallSeconds > 0 {
		delta := (snap.ExperimentsWallSeconds - prev.ExperimentsWallSeconds) / prev.ExperimentsWallSeconds * 100
		fmt.Printf("  experiments wall-clock: %.2fs -> %.2fs (%+.1f%%)\n",
			prev.ExperimentsWallSeconds, snap.ExperimentsWallSeconds, delta)
		if delta > *tolerance {
			reg = append(reg, benchfmt.Delta{
				Bench: "experiments-quick-all", Unit: "s",
				Old: prev.ExperimentsWallSeconds, New: snap.ExperimentsWallSeconds, Percent: delta,
			})
		}
	}
	switch {
	case len(reg) == 0 && len(imp) == 0:
		fmt.Println("benchdiff: no significant deltas")
	case len(reg) == 0:
		fmt.Println("benchdiff: no regressions")
	default:
		fmt.Printf("benchdiff: %d regression(s) beyond tolerance\n", len(reg))
		if *gate {
			os.Exit(1)
		}
	}
}

// runBenchmarks shells out to `go test -bench` once per -count and
// parses the merged output; benchfmt.Parse keeps the best run of each
// benchmark. -run ^$ skips the packages' unit tests.
func runBenchmarks(pkgs []string, benchRe, benchtime string, count int) (map[string]benchfmt.Metrics, error) {
	var merged bytes.Buffer
	for i := 0; i < count; i++ {
		args := []string{"test", "-run", "^$", "-bench", benchRe,
			"-benchtime", benchtime, "-benchmem", "-v"}
		args = append(args, pkgs...)
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go test -bench: %w\n%s", err, out)
		}
		merged.Write(out)
	}
	return benchfmt.Parse(&merged)
}

// timeExperiments builds and times one quick full experiment sweep —
// the end-to-end number the parallel fan-out is supposed to improve.
func timeExperiments(parallel int) (float64, error) {
	bin := filepath.Join(os.TempDir(), "benchdiff-experiments")
	build := exec.Command("go", "build", "-o", bin, "./cmd/experiments")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return 0, fmt.Errorf("building cmd/experiments: %w", err)
	}
	defer os.Remove(bin)
	run := exec.Command(bin, "-mode", "quick", "-run", "all",
		"-parallel", fmt.Sprint(parallel))
	run.Stdout = nil // discard: only the wall-clock matters here
	run.Stderr = os.Stderr
	start := time.Now()
	if err := run.Run(); err != nil {
		return 0, fmt.Errorf("running experiments sweep: %w", err)
	}
	return time.Since(start).Seconds(), nil
}

// latestSnapshot returns the lexically newest BENCH_*.json in dir
// (dates are ISO, so lexical order is date order), or "".
func latestSnapshot(dir string) string {
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if len(matches) == 0 {
		return ""
	}
	sort.Strings(matches)
	return matches[len(matches)-1]
}

func readSnapshot(path string) (*benchfmt.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s benchfmt.Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func writeSnapshot(path string, s *benchfmt.Snapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
