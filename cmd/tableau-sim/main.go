// Command tableau-sim runs one evaluation scenario on the simulated
// machine and reports what the vantage VM experienced. It is the
// interactive counterpart of cmd/experiments: pick a scheduler, a
// background workload, and a vantage benchmark, and inspect the
// outcome.
//
// Usage:
//
//	tableau-sim -scheduler tableau -workload web -rate 800 -size 102400 \
//	            -bg io -capped=false -duration 5
//
// -trace-out FILE attaches the binary tracer and dumps the run in the
// TBTRACE1 format for tableau-trace; -cpuprofile/-memprofile write
// pprof profiles of the simulation itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"tableau/internal/experiments"
	"tableau/internal/workload"
)

func main() {
	scheduler := flag.String("scheduler", "tableau", "credit, credit2, rtds, or tableau")
	wl := flag.String("workload", "web", "vantage workload: web, ping, or probe")
	bg := flag.String("bg", "io", "background workload: none, io, or cpu")
	capped := flag.Bool("capped", true, "cap every VM at its reservation")
	cores := flag.Int("cores", 12, "guest cores")
	vmsPerCore := flag.Int("vms-per-core", 4, "consolidation density")
	durationS := flag.Float64("duration", 3, "simulated seconds")
	rate := flag.Float64("rate", 600, "web request rate (req/s)")
	size := flag.Int64("size", 100*1024, "web response size in bytes")
	seed := flag.Int64("seed", 1, "simulation seed")
	trace := flag.Bool("trace", false, "print a per-core dispatch timeline for the first 2 ms")
	traceOut := flag.String("trace-out", "", "write a binary trace dump (TBTRACE1) to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memProfile)

	cfg := experiments.ScenarioConfig{
		GuestCores: *cores,
		VMsPerCore: *vmsPerCore,
		Scheduler:  experiments.SchedulerKind(*scheduler),
		Capped:     *capped,
		Background: experiments.BGKind(*bg),
		Seed:       *seed,
		Trace:      *trace,
	}
	if *traceOut != "" {
		cfg.TraceRecords = experiments.TraceRingSize
	}
	duration := int64(*durationS * 1e9)

	switch *wl {
	case "web":
		srv := experiments.NewWebServer()
		sc, err := experiments.Build(cfg, srv.Program())
		if err != nil {
			fatal(err)
		}
		srv.Bind(sc.Vantage)
		srv.CountUntil = duration
		sc.M.Start()
		workload.RunOpenLoop(sc.M, srv, 0, *rate, duration, *size)
		sc.M.Run(duration + 200_000_000)
		h := srv.Latencies()
		fmt.Printf("web server under %s (%s, %s background):\n", *scheduler, cappedLabel(*capped), *bg)
		fmt.Printf("  offered:   %8.1f req/s\n", *rate)
		fmt.Printf("  achieved:  %8.1f req/s\n", float64(srv.CompletedInWindow())/(float64(duration)/1e9))
		fmt.Printf("  mean:      %8.3f ms\n", h.Mean()/1e6)
		fmt.Printf("  p99:       %8.3f ms\n", float64(h.P99())/1e6)
		fmt.Printf("  max:       %8.3f ms\n", float64(h.Max())/1e6)
		printMachine(sc)
		printTrace(sc)
		dumpTrace(sc, *traceOut)
	case "ping":
		sink := &workload.PingSink{}
		sc, err := experiments.Build(cfg, sink.Program())
		if err != nil {
			fatal(err)
		}
		sink.Bind(sc.Vantage)
		sc.M.Start()
		workload.SchedulePings(sc.M, sink, 8, int(*durationS*50), 20_000_000, *seed)
		sc.M.Run(duration)
		h := sink.Latencies()
		fmt.Printf("ping responder under %s (%s, %s background):\n", *scheduler, cappedLabel(*capped), *bg)
		fmt.Printf("  pings:     %8d\n", h.Count())
		fmt.Printf("  mean:      %8.3f ms\n", h.Mean()/1e6)
		fmt.Printf("  max:       %8.3f ms\n", float64(h.Max())/1e6)
		printMachine(sc)
		printTrace(sc)
		dumpTrace(sc, *traceOut)
	case "probe":
		probe := &workload.Probe{}
		sc, err := experiments.Build(cfg, probe.Program())
		if err != nil {
			fatal(err)
		}
		sc.M.Start()
		sc.M.Run(duration)
		fmt.Printf("intrinsic-latency probe under %s (%s, %s background):\n", *scheduler, cappedLabel(*capped), *bg)
		fmt.Printf("  samples:    %8d\n", probe.Delays().Count())
		fmt.Printf("  max delay:  %8.3f ms\n", float64(probe.MaxDelay())/1e6)
		printMachine(sc)
		printTrace(sc)
		dumpTrace(sc, *traceOut)
	default:
		fmt.Fprintf(os.Stderr, "tableau-sim: unknown workload %q\n", *wl)
		os.Exit(2)
	}
}

func cappedLabel(c bool) string {
	if c {
		return "capped"
	}
	return "uncapped"
}

func printTrace(sc *experiments.Scenario) {
	if sc.Recorder == nil {
		return
	}
	fmt.Println("\ndispatch timeline, first 2 ms ('.'=idle, 0-9a-z=vCPU id):")
	fmt.Print(sc.Recorder.Render(0, 2_000_000, 100))
}

func printMachine(sc *experiments.Scenario) {
	st := sc.M.Stats
	fmt.Printf("machine: %d schedule ops, %d wakeups, %d migrations; %.1f ms guest time lost to overhead\n",
		st.ScheduleOps, st.WakeupOps, st.MigrateOps, float64(sc.M.OverheadTime())/1e6)
	if sc.Dispatcher != nil {
		ds := sc.Dispatcher.Stats()
		fmt.Printf("tableau dispatcher: %d table dispatches, %d second-level, %d idle decisions, %d table switches\n",
			ds.TableDispatches, ds.SecondLevelDispatches, ds.IdleDecisions, ds.TableSwitches)
	}
}

// dumpTrace flushes residency and writes the binary trace dump.
func dumpTrace(sc *experiments.Scenario, path string) {
	if path == "" || sc.Tracer == nil {
		return
	}
	sc.Tracer.FlushResidency(sc.M.Now())
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	err = sc.Tracer.Encode(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote trace to %s\n", path)
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tableau-sim:", err)
	os.Exit(1)
}
