// Command experiments regenerates every table and figure of the paper's
// evaluation (Sec. 7) from this reproduction. Each experiment prints the
// rows the paper plots and can also write them as CSV.
//
// Usage:
//
//	experiments [-mode quick|full] [-run all|fig3|fig4|fig5|fig6|fig7|fig8|tab1|tab2|level2|ablation|chaos|churnchaos|crashchaos|fleet|failover|tenancy|fig5trace|verify] [-csv dir] [-parallel N]
//
// fleet drives the shared-state placement arbiter (internal/fleet):
// 1000 simulated hosts, a 10k-VM fill wave, seeded churn storms and an
// overflow surge, with the cross-host continuity oracle replayed after
// every storm. Rows are byte-identical at any -parallel setting.
//
// failover drives the fleet's failure domains: a journaled 1000-host
// fleet absorbs seeded crash storms killing ~5% of the hosts mid-churn,
// and the arbiter recovers each victim from its surviving journal image
// or evacuates it LS-first, with the failure-seam oracle replayed after
// every storm. Rows are byte-identical at any -parallel setting.
//
// tenancy measures mixed-criticality serving: latency-sensitive and
// best-effort guests run identical bursty open-loop SLO servers, and
// the surge cell drives an LS admission wave that sheds BE guests;
// rows are per-class latency CDFs with SLO attainment.
//
// fig5trace derives the Fig. 5 latency distribution from the binary
// tracer instead of the in-guest probe; -trace-out DIR additionally
// dumps its raw traces there for cmd/tableau-trace. -cpuprofile and
// -memprofile write pprof profiles of the whole run.
//
// verify is the invariant soak: it generates randomized scenarios
// (internal/verify) and replays each through the utilization, max-gap,
// conservation, and trace-consistency oracles, exiting nonzero on any
// violation. Quick soaks 120 scenarios, full 600.
//
// Quick mode (default) finishes in a few minutes on a laptop; full mode
// approaches the paper's measurement volumes. The evaluation grid is a
// set of independent deterministic simulations; -parallel fans them out
// across N workers (0 = one per core) with rows byte-identical to a
// serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"tableau/internal/experiments"
)

func main() {
	modeFlag := flag.String("mode", "quick", "experiment scale: quick or full")
	runFlag := flag.String("run", "all", "comma-separated experiments to run (all, fig3, fig4, tab1, tab2, fig5, fig6, fig7, fig8, level2, ablation, chaos, churnchaos, crashchaos, fleet, failover, tenancy, fig5trace, verify)")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files (optional)")
	parallel := flag.Int("parallel", 0, "worker count for independent experiment cells (0 = GOMAXPROCS, 1 = serial)")
	traceOut := flag.String("trace-out", "", "directory to write fig5trace's raw binary trace dumps (optional)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memProfile)

	experiments.SetParallelism(*parallel)
	mode, err := experiments.ParseMode(*modeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*runFlag, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	var results []*experiments.Result
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if selected("fig3") || selected("fig4") {
		// One sweep feeds both figures: Fig. 3 plots its generation
		// times, Fig. 4 its table sizes.
		pts := experiments.RunPlannerSweep(mode)
		if selected("fig3") {
			results = append(results, experiments.Fig3From(pts))
		}
		if selected("fig4") {
			results = append(results, experiments.Fig4From(pts))
		}
	}
	if selected("tab1") {
		r, err := experiments.OverheadResult(16, mode)
		if err != nil {
			fail(err)
		}
		results = append(results, r)
	}
	if selected("tab2") {
		r, err := experiments.OverheadResult(48, mode)
		if err != nil {
			fail(err)
		}
		results = append(results, r)
	}
	if selected("fig5") {
		r, err := experiments.Fig5(mode)
		if err != nil {
			fail(err)
		}
		results = append(results, r)
	}
	if selected("fig6") {
		r, err := experiments.Fig6(mode)
		if err != nil {
			fail(err)
		}
		results = append(results, r)
	}
	if selected("fig7") {
		for _, capped := range []bool{true, false} {
			for _, size := range []int64{1 * experiments.KiB, 100 * experiments.KiB, 1 * experiments.MiB} {
				r, err := experiments.Fig7(capped, size, mode)
				if err != nil {
					fail(err)
				}
				results = append(results, r)
			}
		}
	}
	if selected("fig8") {
		for _, capped := range []bool{true, false} {
			r, err := experiments.Fig8(capped, mode)
			if err != nil {
				fail(err)
			}
			results = append(results, r)
		}
	}
	if selected("level2") {
		r, err := experiments.Level2Result(mode)
		if err != nil {
			fail(err)
		}
		results = append(results, r)
	}
	if selected("ablation") {
		results = append(results, experiments.AblationResult())
	}
	if selected("chaos") {
		r, err := experiments.Chaos(mode)
		if err != nil {
			fail(err)
		}
		results = append(results, r)
	}
	if selected("churnchaos") {
		r, err := experiments.ChurnChaos(mode)
		if err != nil {
			fail(err)
		}
		results = append(results, r)
	}
	if selected("crashchaos") {
		r, err := experiments.CrashChaos(mode)
		if err != nil {
			fail(err)
		}
		results = append(results, r)
	}
	if selected("fleet") {
		r, err := experiments.Fleet(mode)
		if err != nil {
			fail(err)
		}
		results = append(results, r)
	}
	if selected("failover") {
		r, err := experiments.Failover(mode)
		if err != nil {
			fail(err)
		}
		results = append(results, r)
	}
	if selected("tenancy") {
		r, err := experiments.Tenancy(mode)
		if err != nil {
			fail(err)
		}
		results = append(results, r)
	}
	if selected("fig5trace") {
		r, err := experiments.Fig5Trace(mode, *traceOut)
		if err != nil {
			fail(err)
		}
		results = append(results, r)
	}
	if selected("verify") {
		r, err := experiments.Verify(mode)
		if err != nil && r == nil {
			fail(err)
		}
		results = append(results, r)
		if err != nil {
			// Print the report (the violation rows are the repro list)
			// before exiting nonzero.
			r.Fprint(os.Stdout)
			fail(err)
		}
	}

	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "experiments: nothing selected by -run %q\n", *runFlag)
		os.Exit(2)
	}
	for _, r := range results {
		r.Fprint(os.Stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fail(err)
			}
			path := filepath.Join(*csvDir, r.Name+".csv")
			if err := r.WriteCSV(path); err != nil {
				fail(err)
			}
			fmt.Printf("   wrote %s\n\n", path)
		}
	}
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
