// Command tableau-pland runs the planner as a standalone daemon — the
// deployment the paper sketches in Sec. 7.1, where table generation is
// offloaded from the host to a faster, independent machine and results
// for common VM configurations are cached centrally.
//
// Usage:
//
//	tableau-pland [-listen :7077] [-cache 256] [-pprof 127.0.0.1:6060]
//	              [-journal plans.tbjl] [-journal-sync always|demand]
//
// API: POST /plan with a JSON body
//
//	{"cores": 2,
//	 "vms": [{"name": "a", "util_num": 1, "util_den": 4,
//	          "latency_goal_ns": 20000000, "capped": true}, ...]}
//
// The response carries the planning metadata and the scheduling table
// in the dispatcher's binary format (base64). GET /healthz answers a
// JSON readiness document with cache counters, uptime, and the current
// planning queue depth.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it enters
// draining mode first (/plan and /healthz answer 503 so balancers stop
// routing here), then in-flight planning requests get a drain window
// before the process exits.
//
// With -journal, every served plan is appended to a durable,
// CRC-framed journal file (the same format the host controller's epoch
// journal uses), giving a replayable audit of every table the daemon
// handed out; the journal is synced when the drain begins and closed
// after the drain window.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"tableau/internal/journal"
	"tableau/internal/plannersvc"
)

func main() {
	listen := flag.String("listen", ":7077", "address to listen on")
	cacheSize := flag.Int("cache", 256, "central table-cache capacity")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")
	journalPath := flag.String("journal", "", "append every served plan to this durable journal file (empty = off)")
	journalSync := flag.String("journal-sync", "always", "journal fsync policy: always (fsync per append) or demand (fsync on drain/exit)")
	flag.Parse()

	if *pprofAddr != "" {
		// The pprof endpoint rides the default mux, kept off the service
		// listener so profiling exposure is an explicit, separate bind.
		go func() {
			log.Printf("tableau-pland: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("tableau-pland: pprof listener: %v", err)
			}
		}()
	}

	svc := plannersvc.NewServer(*cacheSize)
	var jw *journal.Writer
	if *journalPath != "" {
		policy := journal.SyncAlways
		switch *journalSync {
		case "always":
		case "demand":
			policy = journal.SyncOnDemand
		default:
			log.Fatalf("tableau-pland: unknown -journal-sync %q (want always or demand)", *journalSync)
		}
		fs, err := journal.OpenFile(*journalPath, policy)
		if err != nil {
			log.Fatalf("tableau-pland: opening plan journal: %v", err)
		}
		jw = journal.NewWriter(fs)
		svc.SetJournal(jw)
		log.Printf("tableau-pland: journaling served plans to %s (sync=%s)", *journalPath, *journalSync)
	}
	// Slow-client protection: a peer that dribbles headers or never
	// reads the response must not pin a connection forever. Planning
	// itself is CPU-bound and fast, so tight bounds are safe.
	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("tableau-pland listening on %s (cache capacity %d)\n", *listen, *cacheSize)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	// Flip readiness first: /plan answers 503 and /healthz reports
	// "draining", so balancers stop routing here while requests already
	// in flight finish inside the drain window.
	svc.StartDrain()
	fmt.Println("tableau-pland: shutting down, draining in-flight requests")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("tableau-pland: shutdown: %v", err)
		os.Exit(1)
	}
	if jw != nil {
		// StartDrain already synced the records served before the drain;
		// this covers any that completed inside the drain window.
		if err := jw.Close(); err != nil {
			log.Printf("tableau-pland: closing plan journal: %v", err)
			os.Exit(1)
		}
	}
}
