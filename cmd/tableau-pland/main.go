// Command tableau-pland runs the planner as a standalone daemon — the
// deployment the paper sketches in Sec. 7.1, where table generation is
// offloaded from the host to a faster, independent machine and results
// for common VM configurations are cached centrally.
//
// Usage:
//
//	tableau-pland [-listen :7077] [-cache 256]
//
// API: POST /plan with a JSON body
//
//	{"cores": 2,
//	 "vms": [{"name": "a", "util_num": 1, "util_den": 4,
//	          "latency_goal_ns": 20000000, "capped": true}, ...]}
//
// The response carries the planning metadata and the scheduling table
// in the dispatcher's binary format (base64). GET /healthz answers ok.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"tableau/internal/plannersvc"
)

func main() {
	listen := flag.String("listen", ":7077", "address to listen on")
	cacheSize := flag.Int("cache", 256, "central table-cache capacity")
	flag.Parse()

	srv := plannersvc.NewServer(*cacheSize)
	fmt.Printf("tableau-pland listening on %s (cache capacity %d)\n", *listen, *cacheSize)
	log.Fatal(http.ListenAndServe(*listen, srv.Handler()))
}
