// Package tableau is a from-scratch Go reproduction of "Tableau: A
// High-Throughput and Predictable VM Scheduler for High-Density
// Workloads" (Vanga, Gujarati, Brandenburg; EuroSys 2018).
//
// The repository contains the paper's full system and evaluation stack:
//
//   - internal/planner — on-demand scheduling-table generation from
//     real-time scheduling theory (period selection over the divisors
//     of 102,702,600 ns, worst-fit-decreasing partitioning, C=D
//     semi-partitioning, DP-Fair cluster scheduling, post-processing);
//   - internal/dispatch — the table-driven dispatcher with O(1)
//     slice-table lookups, a second-level fair-share scheduler, wakeup
//     routing, a lock-free migration handshake, and boundary-
//     synchronized table switches;
//   - internal/schedulers/{credit,credit2,rtds} — the three Xen
//     baseline schedulers the paper compares against;
//   - internal/{sim,vmm,netdev,workload,stats} — the discrete-event
//     machine, NIC, workload, and measurement substrate standing in
//     for the paper's Xen/Intel-Xeon testbed;
//   - internal/experiments — drivers reproducing every table and
//     figure of the paper's Section 7.
//
// See README.md for a guided tour, DESIGN.md for the system inventory
// and substitutions, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate each table and figure as
// testing.B benchmarks; cmd/experiments prints the full series.
package tableau
