package plannersvc

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned by Client.PlanContext when the breaker is
// refusing attempts because the daemon has failed repeatedly and the
// cooldown has not yet elapsed.
var ErrCircuitOpen = errors.New("plannersvc: circuit open")

// Breaker is a small three-state circuit breaker for the remote
// planning path. Closed: attempts flow freely. After Threshold
// consecutive failures it opens and Allow refuses until Cooldown has
// elapsed, at which point exactly one half-open probe is let through;
// the probe's outcome closes the breaker again or restarts the
// cooldown. The zero value is usable (defaults apply).
type Breaker struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker. Default 3.
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe. Default 5 s.
	Cooldown time.Duration

	mu       sync.Mutex
	failures int
	open     bool
	openedAt time.Time
	halfOpen bool // a probe is in flight

	// now is a test hook; nil means time.Now.
	now func() time.Time
}

// SetClock replaces the breaker's time source (nil restores
// time.Now). Simulation harnesses point it at the sim clock so
// cooldowns elapse in simulated time.
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

// Allow reports whether an attempt may proceed. While open it admits at
// most one probe per elapsed cooldown.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	cd := b.Cooldown
	if cd <= 0 {
		cd = 5 * time.Second
	}
	if b.halfOpen || b.clock().Sub(b.openedAt) < cd {
		return false
	}
	b.halfOpen = true
	return true
}

// RecordSuccess closes the breaker and resets the failure count.
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.open = false
	b.halfOpen = false
}

// RecordFailure notes a failed attempt: a failed half-open probe
// reopens immediately; otherwise the breaker opens once Threshold
// consecutive failures accumulate.
func (b *Breaker) RecordFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.halfOpen {
		b.halfOpen = false
		b.openedAt = b.clock()
		return
	}
	th := b.Threshold
	if th <= 0 {
		th = 3
	}
	if !b.open && b.failures >= th {
		b.open = true
		b.openedAt = b.clock()
	}
}

// RecordCancel reports that an admitted attempt was abandoned because
// the caller's context was cancelled before an outcome was known. A
// cancellation says nothing about the daemon's health, so it must not
// count toward the failure threshold, and — unlike RecordFailure — it
// must not restart an open breaker's cooldown: the probe slot is simply
// returned, so the next Allow after the original cooldown admits a
// fresh probe instead of the breaker staying latched open (or, worse,
// the abandoned probe being mistaken for a verdict).
func (b *Breaker) RecordCancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.halfOpen = false
}

// State returns "closed", "open", or "half-open" for diagnostics.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.halfOpen:
		return "half-open"
	case b.open:
		return "open"
	default:
		return "closed"
	}
}
