package plannersvc

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"tableau/internal/planner"
	"tableau/internal/table"
)

// Client talks to a remote planner daemon. The remote path is hardened
// for the paper's Sec. 7.1 offloaded deployment: each attempt is
// individually bounded, transient failures are retried with bounded
// exponential backoff and deterministic jitter, a small circuit
// breaker keeps a dead daemon from stalling every planning operation,
// and PlanWithFallback degrades to the in-process planner — planning
// is a control-plane convenience, never a hard dependency of the host.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://planner:7077".
	BaseURL string
	// HTTPClient defaults to a plain client; per-attempt deadlines come
	// from AttemptTimeout, so no overall Timeout is set.
	HTTPClient *http.Client

	// AttemptTimeout bounds each individual attempt, covering dial,
	// request, and full body read. Default 5 s.
	AttemptTimeout time.Duration
	// MaxAttempts is the total number of tries per Plan call (first
	// attempt included). Default 4.
	MaxAttempts int
	// BackoffBase is the sleep before the second attempt; it doubles
	// per retry up to BackoffMax. Defaults 50 ms and 2 s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed makes the backoff jitter deterministic, keeping
	// simulation-driven callers reproducible. The zero seed is valid
	// (and fixed) — two clients with equal seeds back off identically.
	JitterSeed int64
	// Breaker, when set, is consulted before every attempt and fed the
	// outcome. Share one breaker across clients talking to the same
	// daemon.
	Breaker *Breaker
	// Logf receives retry/fallback diagnostics; nil means silent.
	Logf func(format string, args ...any)
}

func (c *Client) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// planError carries the retry classification of a failed attempt.
type planError struct {
	err       error
	retryable bool
}

func (e *planError) Error() string { return e.err.Error() }
func (e *planError) Unwrap() error { return e.err }

// Plan sends the request and returns the decoded scheduling table along
// with the response metadata. The table arrives in the dispatcher's
// binary format and is fully validated by Decode. Equivalent to
// PlanContext with a background context.
func (c *Client) Plan(req PlanRequest) (*table.Table, *PlanResponse, error) {
	return c.PlanContext(context.Background(), req)
}

// PlanContext is Plan with caller-controlled cancellation: the context
// bounds the whole call including backoff sleeps, while AttemptTimeout
// bounds each attempt.
func (c *Client) PlanContext(ctx context.Context, req PlanRequest) (*table.Table, *PlanResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 4
	}
	rng := c.newJitter()
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if c.Breaker != nil && !c.Breaker.Allow() {
			if lastErr != nil {
				return nil, nil, fmt.Errorf("%w (last error: %v)", ErrCircuitOpen, lastErr)
			}
			return nil, nil, ErrCircuitOpen
		}
		tbl, resp, err := c.attempt(ctx, body)
		if err == nil {
			if c.Breaker != nil {
				c.Breaker.RecordSuccess()
			}
			return tbl, resp, nil
		}
		if ctx.Err() != nil {
			// The caller gave up mid-attempt: the failure is
			// cancellation-induced and says nothing about the daemon.
			// Feeding it to the breaker would latch a half-open circuit
			// shut (or restart an open one's cooldown), and retrying
			// would burn attempts on a request nobody is waiting for.
			if c.Breaker != nil {
				c.Breaker.RecordCancel()
			}
			return nil, nil, ctx.Err()
		}
		pe, ok := err.(*planError)
		if ok && !pe.retryable {
			// The daemon answered definitively (bad request, rejected
			// population): the service is healthy, the answer is final.
			if c.Breaker != nil {
				c.Breaker.RecordSuccess()
			}
			return nil, nil, pe.err
		}
		if c.Breaker != nil {
			c.Breaker.RecordFailure()
		}
		lastErr = err
		if attempt == attempts-1 {
			break
		}
		d := c.backoff(attempt, rng)
		c.logf("plannersvc: attempt %d/%d failed (%v), retrying in %v", attempt+1, attempts, err, d)
		select {
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		case <-time.After(d):
		}
	}
	return nil, nil, fmt.Errorf("plannersvc: %d attempts failed: %w", attempts, lastErr)
}

// newJitter returns the per-call jitter source; one is created at the
// top of each PlanContext so equal seeds give equal schedules.
func (c *Client) newJitter() *rand.Rand {
	return rand.New(rand.NewSource(c.JitterSeed))
}

// backoff returns the sleep before retry number attempt+1: exponential
// from BackoffBase, capped at BackoffMax, with deterministic jitter in
// [d/2, d).
func (c *Client) backoff(attempt int, rng *rand.Rand) time.Duration {
	base := c.BackoffBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := c.BackoffMax
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// attempt performs one bounded request/decode cycle.
func (c *Client) attempt(ctx context.Context, body []byte) (*table.Table, *PlanResponse, error) {
	timeout := c.AttemptTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(actx, http.MethodPost, c.BaseURL+"/plan", bytes.NewReader(body))
	if err != nil {
		return nil, nil, &planError{err: err, retryable: false}
	}
	httpReq.Header.Set("Content-Type", "application/json")
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	httpResp, err := hc.Do(httpReq)
	if err != nil {
		// Transport-level failure: refused, reset, DNS, attempt timeout.
		return nil, nil, &planError{err: err, retryable: true}
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		// Slow or truncated body; the attempt deadline fires here too.
		return nil, nil, &planError{err: fmt.Errorf("plannersvc: reading response: %w", err), retryable: true}
	}
	if httpResp.StatusCode != http.StatusOK {
		var e errorResponse
		msg := fmt.Sprintf("HTTP %d", httpResp.StatusCode)
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		err := fmt.Errorf("plannersvc: remote planning failed: %s", msg)
		// 5xx is the daemon struggling (worth retrying); 4xx is a
		// definitive verdict on this request (422: planner rejection).
		return nil, nil, &planError{err: err, retryable: httpResp.StatusCode >= 500}
	}
	var resp PlanResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, nil, &planError{err: fmt.Errorf("plannersvc: bad response body: %w", err), retryable: true}
	}
	bin, err := base64.StdEncoding.DecodeString(resp.Table)
	if err != nil {
		return nil, nil, &planError{err: fmt.Errorf("plannersvc: bad table encoding: %w", err), retryable: true}
	}
	tbl, err := table.Decode(bytes.NewReader(bin))
	if err != nil {
		// Corrupt tables are treated as transport damage, not a verdict:
		// a healthy daemon never emits one, so retrying is the right bet.
		return nil, nil, &planError{err: fmt.Errorf("plannersvc: remote table rejected: %w", err), retryable: true}
	}
	return tbl, &resp, nil
}

// PlanFunc adapts the client to the control plane's planning hook
// (assignable to core.PlanFunc, e.g. Controller.PlanVia): specs and
// options go out as a PlanRequest, and the response — remote or
// local-fallback — comes back as a *planner.Result carrying the decoded
// table and guarantees. Only Table and Guarantees are populated; that
// is the contract the control plane consumes.
func (c *Client) PlanFunc() func(specs []planner.VCPUSpec, opts planner.Options) (*planner.Result, error) {
	return func(specs []planner.VCPUSpec, opts planner.Options) (*planner.Result, error) {
		if len(opts.Affinity) > 0 {
			// The wire format cannot express affinity sets; shipping the
			// request without them would silently drop a placement
			// constraint. Plan on-host instead.
			return planner.Plan(specs, opts)
		}
		req := PlanRequest{
			Cores:                opts.Cores,
			TableLengthNS:        opts.TableLength,
			Peephole:             opts.Peephole,
			SplitCompensationPPM: opts.SplitCompensationPPM,
			SplitRotation:        opts.SplitRotation,
		}
		for _, sp := range specs {
			req.VMs = append(req.VMs, VMRequest{
				Name:          sp.Name,
				UtilNum:       sp.Util.Num,
				UtilDen:       sp.Util.Den,
				LatencyGoalNS: sp.LatencyGoal,
				Capped:        sp.Capped,
			})
		}
		tbl, resp, err := c.PlanWithFallback(context.Background(), req)
		if err != nil {
			return nil, err
		}
		res := &planner.Result{Table: tbl}
		for _, g := range resp.Guarantees {
			res.Guarantees = append(res.Guarantees, table.Guarantee{
				VCPU: g.VCPU, Service: g.ServiceNS, WindowLen: g.WindowNS, MaxBlackout: g.MaxBlackout,
			})
		}
		return res, nil
	}
}

// PlanWithFallback tries the remote daemon and, if every attempt fails
// (or the breaker is open), plans locally with the in-process planner.
// The local table is round-tripped through the binary codec so both
// paths hand the caller a table with identical decode-time semantics.
// The response's Source field reports "local" for a fallback result.
// A non-retryable remote rejection (4xx) is NOT retried locally: the
// population was judged inadmissible, and the local planner would only
// repeat the verdict.
func (c *Client) PlanWithFallback(ctx context.Context, req PlanRequest) (*table.Table, *PlanResponse, error) {
	tbl, resp, err := c.PlanContext(ctx, req)
	if err == nil {
		return tbl, resp, nil
	}
	if pe, ok := err.(*planError); ok && !pe.retryable {
		return nil, nil, err
	}
	if ctx.Err() != nil {
		return nil, nil, err
	}
	c.logf("plannersvc: remote planning unavailable (%v), falling back to local planner", err)
	specs, opts, ierr := req.toPlannerInput()
	if ierr != nil {
		return nil, nil, ierr
	}
	res, perr := planner.Plan(specs, opts)
	if perr != nil {
		return nil, nil, fmt.Errorf("plannersvc: remote failed (%v); local fallback failed: %w", err, perr)
	}
	var buf bytes.Buffer
	if err := res.Table.Encode(&buf); err != nil {
		return nil, nil, err
	}
	ltbl, derr := table.Decode(bytes.NewReader(buf.Bytes()))
	if derr != nil {
		return nil, nil, derr
	}
	lresp := &PlanResponse{
		Stage:         res.Stage.String(),
		TableLengthNS: ltbl.Len,
		TableBytes:    buf.Len(),
		Splits:        len(res.Splits),
		SwitchesSaved: res.SwitchesSaved,
		Table:         base64.StdEncoding.EncodeToString(buf.Bytes()),
		Source:        "local",
	}
	for _, g := range res.Guarantees {
		lresp.Guarantees = append(lresp.Guarantees, GuaranteeInfo{
			VCPU: g.VCPU, ServiceNS: g.Service, WindowNS: g.WindowLen, MaxBlackout: g.MaxBlackout,
		})
	}
	return ltbl, lresp, nil
}
