// Package plannersvc turns the planner into a network service,
// implementing the deployment option of paper Sec. 7.1: "table
// generation may also be offloaded to a faster, independent machine,
// similarly to how jobs are scheduled across data centers, and it is
// trivially possible to centrally cache tables for common
// configurations that are frequently reused."
//
// The service speaks JSON over HTTP on a single endpoint, POST /plan.
// The response carries the planning metadata plus the scheduling table
// in the same binary wire format the dispatcher consumes (base64 in
// JSON), so a host can hand the bytes straight to its hypervisor. A
// shared planner.Cache behind the handler gives the central-cache
// behaviour for free.
package plannersvc

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"tableau/internal/planner"
	"tableau/internal/table"
)

// VMRequest is one vCPU in a planning request.
type VMRequest struct {
	Name          string `json:"name"`
	UtilNum       int64  `json:"util_num"`
	UtilDen       int64  `json:"util_den"`
	LatencyGoalNS int64  `json:"latency_goal_ns"`
	Capped        bool   `json:"capped"`
}

// PlanRequest is the body of POST /plan.
type PlanRequest struct {
	Cores                int         `json:"cores"`
	TableLengthNS        int64       `json:"table_length_ns,omitempty"`
	Peephole             bool        `json:"peephole,omitempty"`
	SplitCompensationPPM int64       `json:"split_compensation_ppm,omitempty"`
	SplitRotation        int         `json:"split_rotation,omitempty"`
	VMs                  []VMRequest `json:"vms"`
}

// GuaranteeInfo mirrors table.Guarantee for the wire.
type GuaranteeInfo struct {
	VCPU        int   `json:"vcpu"`
	ServiceNS   int64 `json:"service_ns"`
	WindowNS    int64 `json:"window_ns"`
	MaxBlackout int64 `json:"max_blackout_ns"`
}

// PlanResponse is the body of a successful plan.
type PlanResponse struct {
	Stage         string          `json:"stage"`
	TableLengthNS int64           `json:"table_length_ns"`
	TableBytes    int             `json:"table_bytes"`
	Splits        int             `json:"splits"`
	SwitchesSaved int             `json:"switches_saved"`
	Guarantees    []GuaranteeInfo `json:"guarantees"`
	// Table is the base64-encoded binary scheduling table.
	Table string `json:"table"`
	// Cached reports whether the result came from the central cache.
	Cached bool `json:"cached"`
	// PlanMS is the server-side planning time in milliseconds (0 for
	// cache hits).
	PlanMS float64 `json:"plan_ms"`
}

// errorResponse is the body of a failed plan.
type errorResponse struct {
	Error string `json:"error"`
}

// Server is the planning daemon. Create with NewServer and mount its
// Handler.
type Server struct {
	cache *planner.Cache
}

// NewServer returns a server backed by a result cache of the given
// capacity (<= 0 selects the default).
func NewServer(cacheSize int) *Server {
	return &Server{cache: planner.NewCache(cacheSize)}
}

// CacheStats reports the central cache's hit/miss counters.
func (s *Server) CacheStats() (hits, misses int64) { return s.cache.Stats() }

// Handler returns the HTTP handler serving POST /plan.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/plan", s.handlePlan)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req PlanRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	specs, opts, err := req.toPlannerInput()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	hitsBefore, _ := s.cache.Stats()
	start := time.Now()
	res, err := s.cache.Plan(specs, opts)
	planTime := time.Since(start)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	hitsAfter, _ := s.cache.Stats()

	var buf bytes.Buffer
	if err := res.Table.Encode(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := PlanResponse{
		Stage:         res.Stage.String(),
		TableLengthNS: res.Table.Len,
		TableBytes:    buf.Len(),
		Splits:        len(res.Splits),
		SwitchesSaved: res.SwitchesSaved,
		Table:         base64.StdEncoding.EncodeToString(buf.Bytes()),
		Cached:        hitsAfter > hitsBefore,
		PlanMS:        float64(planTime.Microseconds()) / 1000,
	}
	for _, g := range res.Guarantees {
		resp.Guarantees = append(resp.Guarantees, GuaranteeInfo{
			VCPU: g.VCPU, ServiceNS: g.Service, WindowNS: g.WindowLen, MaxBlackout: g.MaxBlackout,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// Headers are gone; nothing more to do.
		return
	}
}

func (r PlanRequest) toPlannerInput() ([]planner.VCPUSpec, planner.Options, error) {
	if len(r.VMs) == 0 {
		return nil, planner.Options{}, fmt.Errorf("plannersvc: no VMs in request")
	}
	specs := make([]planner.VCPUSpec, len(r.VMs))
	for i, vm := range r.VMs {
		specs[i] = planner.VCPUSpec{
			Name:        vm.Name,
			Util:        planner.Util{Num: vm.UtilNum, Den: vm.UtilDen},
			LatencyGoal: vm.LatencyGoalNS,
			Capped:      vm.Capped,
		}
	}
	opts := planner.Options{
		Cores:                r.Cores,
		TableLength:          r.TableLengthNS,
		Peephole:             r.Peephole,
		SplitCompensationPPM: r.SplitCompensationPPM,
		SplitRotation:        r.SplitRotation,
	}
	return specs, opts, nil
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

// Client talks to a remote planner daemon.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://planner:7077".
	BaseURL string
	// HTTPClient defaults to a client with a 30 s timeout.
	HTTPClient *http.Client
}

// Plan sends the request and returns the decoded scheduling table along
// with the response metadata. The table arrives in the dispatcher's
// binary format and is fully validated by Decode.
func (c *Client) Plan(req PlanRequest) (*table.Table, *PlanResponse, error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	httpResp, err := hc.Post(c.BaseURL+"/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return nil, nil, err
	}
	if httpResp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return nil, nil, fmt.Errorf("plannersvc: remote planning failed: %s", e.Error)
		}
		return nil, nil, fmt.Errorf("plannersvc: remote planning failed: HTTP %d", httpResp.StatusCode)
	}
	var resp PlanResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, nil, err
	}
	bin, err := base64.StdEncoding.DecodeString(resp.Table)
	if err != nil {
		return nil, nil, fmt.Errorf("plannersvc: bad table encoding: %w", err)
	}
	tbl, err := table.Decode(bytes.NewReader(bin))
	if err != nil {
		return nil, nil, fmt.Errorf("plannersvc: remote table rejected: %w", err)
	}
	return tbl, &resp, nil
}
