// Package plannersvc turns the planner into a network service,
// implementing the deployment option of paper Sec. 7.1: "table
// generation may also be offloaded to a faster, independent machine,
// similarly to how jobs are scheduled across data centers, and it is
// trivially possible to centrally cache tables for common
// configurations that are frequently reused."
//
// The service speaks JSON over HTTP on a single endpoint, POST /plan.
// The response carries the planning metadata plus the scheduling table
// in the same binary wire format the dispatcher consumes (base64 in
// JSON), so a host can hand the bytes straight to its hypervisor. A
// shared planner.Cache behind the handler gives the central-cache
// behaviour for free.
package plannersvc

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tableau/internal/journal"
	"tableau/internal/planner"
	"tableau/internal/table"
)

// VMRequest is one vCPU in a planning request.
type VMRequest struct {
	Name          string `json:"name"`
	UtilNum       int64  `json:"util_num"`
	UtilDen       int64  `json:"util_den"`
	LatencyGoalNS int64  `json:"latency_goal_ns"`
	Capped        bool   `json:"capped"`
}

// PlanRequest is the body of POST /plan.
type PlanRequest struct {
	Cores                int         `json:"cores"`
	TableLengthNS        int64       `json:"table_length_ns,omitempty"`
	Peephole             bool        `json:"peephole,omitempty"`
	SplitCompensationPPM int64       `json:"split_compensation_ppm,omitempty"`
	SplitRotation        int         `json:"split_rotation,omitempty"`
	VMs                  []VMRequest `json:"vms"`
}

// GuaranteeInfo mirrors table.Guarantee for the wire.
type GuaranteeInfo struct {
	VCPU        int   `json:"vcpu"`
	ServiceNS   int64 `json:"service_ns"`
	WindowNS    int64 `json:"window_ns"`
	MaxBlackout int64 `json:"max_blackout_ns"`
}

// PlanResponse is the body of a successful plan.
type PlanResponse struct {
	Stage         string          `json:"stage"`
	TableLengthNS int64           `json:"table_length_ns"`
	TableBytes    int             `json:"table_bytes"`
	Splits        int             `json:"splits"`
	SwitchesSaved int             `json:"switches_saved"`
	Guarantees    []GuaranteeInfo `json:"guarantees"`
	// Table is the base64-encoded binary scheduling table.
	Table string `json:"table"`
	// Cached reports whether the result came from the central cache.
	Cached bool `json:"cached"`
	// PlanMS is the server-side planning time in milliseconds (0 for
	// cache hits).
	PlanMS float64 `json:"plan_ms"`
	// Source is "" for a live remote response; the client's fallback
	// path sets it to "local" when the table was planned on-host.
	Source string `json:"source,omitempty"`
}

// errorResponse is the body of a failed plan.
type errorResponse struct {
	Error string `json:"error"`
}

// Server is the planning daemon. Create with NewServer and mount its
// Handler.
type Server struct {
	cache   *planner.Cache
	started time.Time

	inflight atomic.Int64
	draining atomic.Bool
	breaker  atomic.Pointer[Breaker]
	spec     atomic.Pointer[func() (hits, wasted int64)]

	// jmu serializes the plan journal: appends take a sequence number
	// and must reach the writer in that order.
	jmu         sync.Mutex
	journal     *journal.Writer
	jseq        uint64
	journalErrs atomic.Int64

	// DrainWait bounds how long StartDrain waits for in-flight requests
	// to finish before syncing the journal (<= 0 selects 5s). A drain
	// that times out logs the stragglers and syncs anyway — shutdown
	// must not hang on a wedged request.
	DrainWait time.Duration

	// Logf receives server-side diagnostics (default log.Printf).
	Logf func(format string, args ...any)
}

// NewServer returns a server backed by a result cache of the given
// capacity (<= 0 selects the default).
func NewServer(cacheSize int) *Server {
	return &Server{cache: planner.NewCache(cacheSize), started: time.Now()}
}

// CacheStats reports the central cache's hit/miss counters.
func (s *Server) CacheStats() (hits, misses int64) { return s.cache.Stats() }

// QueueDepth reports the number of planning requests currently being
// served.
func (s *Server) QueueDepth() int64 { return s.inflight.Load() }

// StartDrain flips the server into draining mode: /plan answers 503 so
// load balancers stop routing here, /healthz reports "draining" (also
// 503), and requests already in flight run to completion. Call before
// http.Server.Shutdown for a flap-free rollout. If a plan journal is
// attached it is synced here, so every plan served before the drain
// began is durable even if the process is killed inside the drain
// window.
//
// StartDrain waits (bounded by DrainWait) for in-flight requests to
// reach zero before the sync: a request increments inflight before it
// checks draining, so once the count drains every request that slipped
// past the check has finished — journal append included — and the sync
// really is final. Without the wait, a request admitted just before the
// flag flipped could append its record after the "final" sync, leaving
// a served plan non-durable.
func (s *Server) StartDrain() {
	s.draining.Store(true)
	bound := s.DrainWait
	if bound <= 0 {
		bound = 5 * time.Second
	}
	deadline := time.Now().Add(bound)
	for s.inflight.Load() > 0 {
		if time.Now().After(deadline) {
			s.logf("plannersvc: drain: %d request(s) still in flight after %v; syncing anyway", s.inflight.Load(), bound)
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.journal != nil {
		if err := s.journal.Sync(); err != nil {
			s.logf("plannersvc: syncing plan journal on drain: %v", err)
		}
	}
}

// SetJournal attaches a durable plan journal: every successfully served
// /plan response is appended as one epoch record (the request's VM
// population plus the produced table and guarantees), giving operators
// a replayable audit of every table this daemon ever handed out.
// Journaling is best-effort for the request path — an append failure is
// counted and logged, not surfaced to the client — and the journal is
// synced when a drain begins. Set before mounting the handler.
func (s *Server) SetJournal(w *journal.Writer) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.journal = w
}

// JournalRecords reports how many plan records this server appended
// (0 with no journal attached).
func (s *Server) JournalRecords() int64 {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	return int64(s.jseq)
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// SetBreaker registers the circuit breaker whose state /healthz should
// expose — typically the breaker the daemon's own upstream client uses,
// surfaced so operators can see a tripped circuit without log-diving.
func (s *Server) SetBreaker(b *Breaker) { s.breaker.Store(b) }

// SetSpeculationStats registers a source for the host controller's
// speculation counters (core.Controller.SpeculationStats), so a daemon
// colocated with a controller surfaces hits/wasted on /healthz next to
// the cache counters. The function is called on every /healthz request.
func (s *Server) SetSpeculationStats(fn func() (hits, wasted int64)) { s.spec.Store(&fn) }

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Handler returns the HTTP handler serving POST /plan and GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/plan", s.handlePlan)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// healthResponse is the body of GET /healthz: liveness plus the
// counters an operator needs to see whether the central cache is doing
// its job, how loaded the daemon is, and whether its upstream circuit
// breaker (if one is registered) has tripped.
type healthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	// CacheEvictions / CacheBytes describe the whole-problem LRU; the
	// slice_* counters are the per-core EDF memo one level below it.
	CacheEvictions int64 `json:"cache_evictions"`
	CacheBytes     int64 `json:"cache_bytes"`
	SliceHits      int64 `json:"slice_hits"`
	SliceMisses    int64 `json:"slice_misses"`
	SliceEvictions int64 `json:"slice_evictions"`
	// SpecHits / SpecWasted mirror the registered controller's
	// speculation counters (SetSpeculationStats); absent otherwise.
	SpecHits   *int64 `json:"spec_hits,omitempty"`
	SpecWasted *int64 `json:"spec_wasted,omitempty"`
	// JournalRecords / JournalErrors describe the attached plan journal
	// (SetJournal); absent otherwise.
	JournalRecords *int64 `json:"journal_records,omitempty"`
	JournalErrors  *int64 `json:"journal_errors,omitempty"`
	QueueDepth     int64  `json:"queue_depth"`
	BreakerState   string `json:"breaker_state,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	st := s.cache.FullStats()
	resp := healthResponse{
		Status:         "ok",
		UptimeSeconds:  time.Since(s.started).Seconds(),
		CacheHits:      st.Hits,
		CacheMisses:    st.Misses,
		CacheEvictions: st.Evictions,
		CacheBytes:     st.Bytes,
		SliceHits:      st.Slice.Hits,
		SliceMisses:    st.Slice.Misses,
		SliceEvictions: st.Slice.Evictions,
		QueueDepth:     s.inflight.Load(),
	}
	if fn := s.spec.Load(); fn != nil {
		hits, wasted := (*fn)()
		resp.SpecHits, resp.SpecWasted = &hits, &wasted
	}
	s.jmu.Lock()
	if s.journal != nil {
		records := int64(s.jseq)
		errs := s.journalErrs.Load()
		resp.JournalRecords, resp.JournalErrors = &records, &errs
	}
	s.jmu.Unlock()
	if b := s.breaker.Load(); b != nil {
		resp.BreakerState = b.State()
	}
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		// Draining is a readiness failure, not a liveness one: the body
		// still describes the daemon, but the status code tells probes to
		// pull it out of rotation.
		resp.Status = "draining"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.logf("plannersvc: writing /healthz response: %v", err)
	}
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	// Inflight is incremented before the drain check: StartDrain flips
	// draining first and then waits for inflight to reach zero, so a
	// request is either turned away here or visible to the drain's wait
	// — never running invisibly past the "final" journal sync. The
	// reverse order (check, then increment) left a window where a
	// request slipped past the check and appended its journal record
	// after the drain had already synced.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("plannersvc: draining"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req PlanRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	specs, opts, err := req.toPlannerInput()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The daemon's per-core memo serves whole-problem misses that still
	// share core-level task multisets with earlier requests (excluded
	// from the cache key: it cannot change the produced table).
	opts.Slices = s.cache.SliceCache()
	hitsBefore, _ := s.cache.Stats()
	start := time.Now()
	res, err := s.cache.Plan(specs, opts)
	planTime := time.Since(start)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	hitsAfter, _ := s.cache.Stats()

	var buf bytes.Buffer
	if err := res.Table.Encode(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := PlanResponse{
		Stage:         res.Stage.String(),
		TableLengthNS: res.Table.Len,
		TableBytes:    buf.Len(),
		Splits:        len(res.Splits),
		SwitchesSaved: res.SwitchesSaved,
		Table:         base64.StdEncoding.EncodeToString(buf.Bytes()),
		Cached:        hitsAfter > hitsBefore,
		PlanMS:        float64(planTime.Microseconds()) / 1000,
	}
	for _, g := range res.Guarantees {
		resp.Guarantees = append(resp.Guarantees, GuaranteeInfo{
			VCPU: g.VCPU, ServiceNS: g.Service, WindowNS: g.WindowLen, MaxBlackout: g.MaxBlackout,
		})
	}
	s.journalPlan(req, res)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// The status line is already on the wire, so the client sees a
		// truncated 200 rather than an error; leave a trace server-side
		// instead of failing silently.
		s.logf("plannersvc: writing /plan response: %v", err)
	}
}

// journalPlan appends one epoch record for a served plan: the
// requested VM population as the slot snapshot and the produced table
// in the journal's compact encoding. Failures are counted and logged —
// the client already has its table; losing one audit record must not
// fail the request.
func (s *Server) journalPlan(req PlanRequest, res *planner.Result) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.journal == nil {
		return
	}
	enc, err := res.Table.AppendEncodedCompact(nil)
	if err != nil {
		s.journalErrs.Add(1)
		s.logf("plannersvc: encoding table for plan journal: %v", err)
		return
	}
	rec := &journal.EpochRecord{
		Version:    s.jseq + 1,
		Guarantees: append([]table.Guarantee(nil), res.Guarantees...),
		TableBytes: enc,
	}
	for _, vm := range req.VMs {
		rec.Slots = append(rec.Slots, journal.SlotConfig{
			Name:        vm.Name,
			UtilNum:     vm.UtilNum,
			UtilDen:     vm.UtilDen,
			LatencyGoal: vm.LatencyGoalNS,
			Capped:      vm.Capped,
			Active:      true,
		})
	}
	if err := s.journal.Append(rec); err != nil {
		s.journalErrs.Add(1)
		s.logf("plannersvc: appending plan journal record: %v", err)
		return
	}
	s.jseq++
}

func (r PlanRequest) toPlannerInput() ([]planner.VCPUSpec, planner.Options, error) {
	if len(r.VMs) == 0 {
		return nil, planner.Options{}, fmt.Errorf("plannersvc: no VMs in request")
	}
	specs := make([]planner.VCPUSpec, len(r.VMs))
	for i, vm := range r.VMs {
		specs[i] = planner.VCPUSpec{
			Name:        vm.Name,
			Util:        planner.Util{Num: vm.UtilNum, Den: vm.UtilDen},
			LatencyGoal: vm.LatencyGoalNS,
			Capped:      vm.Capped,
		}
	}
	opts := planner.Options{
		Cores:                r.Cores,
		TableLength:          r.TableLengthNS,
		Peephole:             r.Peephole,
		SplitCompensationPPM: r.SplitCompensationPPM,
		SplitRotation:        r.SplitRotation,
	}
	return specs, opts, nil
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}
