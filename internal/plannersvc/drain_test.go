package plannersvc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

func getHealth(t *testing.T, url string) (int, healthResponse) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, h
}

// TestHealthzOperationalFields pins the /healthz schema additions: the
// queue depth is always present, and the breaker state appears once a
// breaker is registered and tracks its transitions.
func TestHealthzOperationalFields(t *testing.T) {
	s, ts := newTestServer(t)

	code, h := getHealth(t, ts.URL)
	if code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if h.QueueDepth != 0 {
		t.Errorf("idle queue_depth = %d, want 0", h.QueueDepth)
	}
	if h.BreakerState != "" {
		t.Errorf("breaker_state = %q with no breaker registered", h.BreakerState)
	}

	br := &Breaker{Threshold: 1, Cooldown: time.Hour}
	s.SetBreaker(br)
	if _, h = getHealth(t, ts.URL); h.BreakerState != "closed" {
		t.Errorf("breaker_state = %q, want closed", h.BreakerState)
	}
	br.RecordFailure()
	if _, h = getHealth(t, ts.URL); h.BreakerState != "open" {
		t.Errorf("breaker_state after trip = %q, want open", h.BreakerState)
	}
	br.RecordSuccess()
	if _, h = getHealth(t, ts.URL); h.BreakerState != "closed" {
		t.Errorf("breaker_state after recovery = %q, want closed", h.BreakerState)
	}
}

// TestDrainRefusesPlans pins the graceful-shutdown contract: after
// StartDrain, /plan answers 503 with a JSON error and /healthz flips to
// 503/"draining" so probes pull the daemon out of rotation, while the
// health body still carries the operational counters.
func TestDrainRefusesPlans(t *testing.T) {
	s, ts := newTestServer(t)

	// Sanity: planning works before the drain.
	c := &Client{BaseURL: ts.URL, MaxAttempts: 1}
	if _, _, err := c.Plan(testRequest(2, 20_000_000)); err != nil {
		t.Fatalf("pre-drain plan failed: %v", err)
	}

	s.StartDrain()
	if !s.Draining() {
		t.Fatal("Draining() = false after StartDrain")
	}

	body, _ := json.Marshal(testRequest(2, 20_000_000))
	resp, err := http.Post(ts.URL+"/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /plan = %d, want 503", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("draining /plan error body: %v (err %v)", e, err)
	}

	code, h := getHealth(t, ts.URL)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503", code)
	}
	if h.Status != "draining" {
		t.Errorf("draining status = %q", h.Status)
	}

	// A drained daemon still refuses via the breaker-visible retryable
	// path: the client treats 503 as a daemon-side failure and falls
	// back locally rather than erroring out.
	tbl, presp, err := c.PlanWithFallback(t.Context(), testRequest(2, 20_000_000))
	if err != nil {
		t.Fatalf("fallback during drain failed: %v", err)
	}
	if presp.Source != "local" {
		t.Errorf("fallback source = %q, want local", presp.Source)
	}
	if tbl == nil {
		t.Error("fallback returned no table")
	}
}
