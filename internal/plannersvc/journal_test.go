package plannersvc

import (
	"net/http"
	"testing"

	"tableau/internal/journal"
)

// TestPlanJournalAuditsServedPlans: with a journal attached, every
// successful /plan appends one replayable record carrying the
// requested population and the exact table the client received, and
// /healthz surfaces the counters.
func TestPlanJournalAuditsServedPlans(t *testing.T) {
	s, ts := newTestServer(t)
	mem := journal.NewMemStore()
	s.SetJournal(journal.NewWriter(mem))

	c := &Client{BaseURL: ts.URL}
	tbl1, _, err := c.Plan(testRequest(4, 20_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Plan(testRequest(6, 30_000_000)); err != nil {
		t.Fatal(err)
	}
	// A failed request must not journal anything.
	resp, err := http.Post(ts.URL+"/plan", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("empty request served")
	}

	if got := s.JournalRecords(); got != 2 {
		t.Fatalf("JournalRecords = %d, want 2", got)
	}
	img, err := mem.Load()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := journal.DecodeAll(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 2 || rep.TailErr != nil {
		t.Fatalf("replayed %d records (tail %v), want 2 clean", len(rep.Records), rep.TailErr)
	}
	rec := rep.Records[0]
	if rec.Version != 1 || len(rec.Slots) != 4 {
		t.Fatalf("record 1: version %d, %d slots", rec.Version, len(rec.Slots))
	}
	if rec.Slots[0].Name != "vma" || rec.Slots[0].UtilDen != 4 || !rec.Slots[0].Active {
		t.Fatalf("record 1 slot 0 = %+v", rec.Slots[0])
	}
	jt, err := rec.Table()
	if err != nil {
		t.Fatalf("decoding journaled table: %v", err)
	}
	if jt.Len != tbl1.Len || len(jt.VCPUs) != len(tbl1.VCPUs) {
		t.Fatalf("journaled table (len %d, %d vcpus) differs from served (len %d, %d vcpus)",
			jt.Len, len(jt.VCPUs), tbl1.Len, len(tbl1.VCPUs))
	}
	if len(rec.Guarantees) != 4 {
		t.Fatalf("record 1 carries %d guarantees, want 4", len(rec.Guarantees))
	}

	code, h := getHealth(t, ts.URL)
	if code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if h.JournalRecords == nil || *h.JournalRecords != 2 {
		t.Fatalf("healthz journal_records = %v, want 2", h.JournalRecords)
	}
	if h.JournalErrors == nil || *h.JournalErrors != 0 {
		t.Fatalf("healthz journal_errors = %v, want 0", h.JournalErrors)
	}
}

// TestDrainSyncsJournal pins the shutdown contract the daemon relies
// on for SIGTERM/SIGINT: StartDrain both flips /plan to 503 and syncs
// the plan journal, so everything served before the drain is durable
// even if the process is killed inside the drain window.
func TestDrainSyncsJournal(t *testing.T) {
	s, ts := newTestServer(t)
	fs := &syncCountingStore{Store: journal.NewMemStore()}
	s.SetJournal(journal.NewWriter(fs))

	c := &Client{BaseURL: ts.URL}
	if _, _, err := c.Plan(testRequest(4, 20_000_000)); err != nil {
		t.Fatal(err)
	}
	if fs.syncs != 0 {
		t.Fatalf("journal synced %d times before drain", fs.syncs)
	}
	s.StartDrain()
	if fs.syncs != 1 {
		t.Fatalf("StartDrain synced %d times, want 1", fs.syncs)
	}
	// Draining: no new plans, so no new records.
	if _, _, err := c.Plan(testRequest(4, 20_000_000)); err == nil {
		t.Fatal("plan served while draining")
	}
	if got := s.JournalRecords(); got != 1 {
		t.Fatalf("JournalRecords = %d after drained request, want 1", got)
	}
	code, h := getHealth(t, ts.URL)
	if code != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("healthz while draining = %d/%q", code, h.Status)
	}
}

// syncCountingStore counts explicit Sync calls on the wrapped store.
type syncCountingStore struct {
	journal.Store
	syncs int
}

func (s *syncCountingStore) Sync() error {
	s.syncs++
	return s.Store.Sync()
}
