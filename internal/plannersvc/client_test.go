package plannersvc

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastClient returns a client tuned so retry storms finish in
// milliseconds rather than seconds.
func fastClient(url string) *Client {
	return &Client{
		BaseURL:        url,
		AttemptTimeout: 200 * time.Millisecond,
		MaxAttempts:    3,
		BackoffBase:    time.Millisecond,
		BackoffMax:     4 * time.Millisecond,
	}
}

func TestClientConnectionRefused(t *testing.T) {
	// Grab an address nothing is listening on.
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	c := fastClient(url)
	start := time.Now()
	_, _, err := c.Plan(testRequest(2, 20_000_000))
	if err == nil {
		t.Fatal("plan against dead server succeeded")
	}
	if !strings.Contains(err.Error(), "3 attempts failed") {
		t.Errorf("err = %v, want exhausted-attempts error", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("retries took %v, backoff not bounded", elapsed)
	}
}

func TestClientRetriesServerErrors(t *testing.T) {
	// Daemon is struggling: two 503s, then recovers. The client should
	// ride it out and return the eventual good table.
	s := NewServer(4)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		s.Handler().ServeHTTP(w, r)
	}))
	defer srv.Close()
	c := fastClient(srv.URL)
	tbl, resp, err := c.Plan(testRequest(4, 20_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", calls.Load())
	}
	if tbl == nil || resp.Stage == "" {
		t.Error("recovered response incomplete")
	}
}

func TestClientAttemptTimeoutOnSlowBody(t *testing.T) {
	// The server sends headers, then stalls mid-body. The per-attempt
	// deadline must cut the read; each retry hits the same wall.
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		<-block
	}))
	defer srv.Close()
	// Unblock the handlers before srv.Close (defers run LIFO) so Close
	// does not wait forever on the stalled responses.
	defer close(block)
	c := fastClient(srv.URL)
	c.AttemptTimeout = 30 * time.Millisecond
	c.MaxAttempts = 2
	start := time.Now()
	_, _, err := c.Plan(testRequest(2, 20_000_000))
	if err == nil {
		t.Fatal("slow-body plan succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("slow-body attempts took %v, per-attempt timeout not applied", elapsed)
	}
}

func TestClientRetriesCorruptTable(t *testing.T) {
	// Corrupt table bytes are classified as transient damage: the client
	// retries, and a subsequently healthy server wins.
	s := NewServer(4)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			_ = json.NewEncoder(w).Encode(PlanResponse{Table: "dHJ1bmNhdGVk"}) // valid base64, garbage table
			return
		}
		s.Handler().ServeHTTP(w, r)
	}))
	defer srv.Close()
	c := fastClient(srv.URL)
	tbl, _, err := c.Plan(testRequest(4, 20_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("calls = %d, want retry after corrupt table", calls.Load())
	}
	if tbl.SliceCount() == 0 {
		t.Error("recovered table has no slice index")
	}
}

func TestClientDoesNotRetryRejection(t *testing.T) {
	// A 422 (planner admission rejection) is a verdict, not an outage:
	// exactly one request, immediate error, breaker stays closed.
	var calls atomic.Int64
	s := NewServer(4)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		s.Handler().ServeHTTP(w, r)
	}))
	defer srv.Close()
	br := &Breaker{Threshold: 1}
	c := fastClient(srv.URL)
	c.Breaker = br
	over := testRequest(8, 20_000_000)
	over.Cores = 1
	_, _, err := c.Plan(over)
	if err == nil || !strings.Contains(err.Error(), "over-utilized") {
		t.Fatalf("err = %v, want over-utilization rejection", err)
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, rejection was retried", calls.Load())
	}
	if br.State() != "closed" {
		t.Errorf("breaker %s after rejection; a healthy daemon's verdict must not trip it", br.State())
	}
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	now := time.Unix(0, 0)
	br := &Breaker{Threshold: 3, Cooldown: time.Second, now: func() time.Time { return now }}
	for i := 0; i < 3; i++ {
		if !br.Allow() {
			t.Fatalf("attempt %d refused while closed", i)
		}
		br.RecordFailure()
	}
	if br.State() != "open" {
		t.Fatalf("state = %s after %d failures", br.State(), 3)
	}
	if br.Allow() {
		t.Fatal("open breaker admitted an attempt before cooldown")
	}
	// Cooldown elapses: exactly one half-open probe.
	now = now.Add(2 * time.Second)
	if !br.Allow() {
		t.Fatal("half-open probe refused after cooldown")
	}
	if br.Allow() {
		t.Fatal("second concurrent probe admitted while half-open")
	}
	// Failed probe reopens for another full cooldown.
	br.RecordFailure()
	if br.State() != "open" || br.Allow() {
		t.Fatal("failed probe did not reopen the breaker")
	}
	// Next probe succeeds: closed again.
	now = now.Add(2 * time.Second)
	if !br.Allow() {
		t.Fatal("probe refused after second cooldown")
	}
	br.RecordSuccess()
	if br.State() != "closed" || !br.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
}

func TestClientReturnsCircuitOpen(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	br := &Breaker{Threshold: 2, Cooldown: time.Hour}
	c := fastClient(url)
	c.Breaker = br
	if _, _, err := c.Plan(testRequest(2, 20_000_000)); err == nil {
		t.Fatal("plan against dead server succeeded")
	}
	if br.State() != "open" {
		t.Fatalf("breaker %s after exhausting attempts", br.State())
	}
	_, _, err := c.Plan(testRequest(2, 20_000_000))
	if !errors.Is(err, ErrCircuitOpen) {
		t.Errorf("err = %v, want ErrCircuitOpen", err)
	}
}

func TestPlanWithFallbackMatchesRemote(t *testing.T) {
	// Plan once against a live daemon, then again via fallback with the
	// daemon gone: both paths must produce the identical table.
	_, ts := newTestServer(t)
	req := testRequest(4, 20_000_000)
	live := &Client{BaseURL: ts.URL}
	remoteTbl, remoteResp, err := live.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	c := fastClient(deadURL)
	localTbl, localResp, err := c.PlanWithFallback(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if localResp.Source != "local" {
		t.Errorf("fallback Source = %q, want local", localResp.Source)
	}
	if remoteResp.Source != "" {
		t.Errorf("remote Source = %q, want empty", remoteResp.Source)
	}
	if localResp.Table != remoteResp.Table {
		t.Error("fallback table bytes differ from the remote plan for the same request")
	}
	if localTbl.Len != remoteTbl.Len || localTbl.SliceCount() != remoteTbl.SliceCount() {
		t.Errorf("fallback table shape differs: len %d vs %d, slices %d vs %d",
			localTbl.Len, remoteTbl.Len, localTbl.SliceCount(), remoteTbl.SliceCount())
	}
}

func TestPlanWithFallbackPropagatesRejection(t *testing.T) {
	// A definitive remote rejection must not be papered over by a local
	// retry that would reach the same verdict.
	_, ts := newTestServer(t)
	c := fastClient(ts.URL)
	over := testRequest(8, 20_000_000)
	over.Cores = 1
	_, _, err := c.PlanWithFallback(context.Background(), over)
	if err == nil || !strings.Contains(err.Error(), "over-utilized") {
		t.Errorf("err = %v, want remote rejection verbatim", err)
	}
}

func TestBackoffDeterministic(t *testing.T) {
	// Two clients with the same JitterSeed must produce identical backoff
	// schedules — reproducibility extends to the control plane.
	seq := func(seed int64) []time.Duration {
		c := &Client{BackoffBase: time.Millisecond, BackoffMax: 16 * time.Millisecond, JitterSeed: seed}
		rng := c.newJitter()
		var out []time.Duration
		for i := 0; i < 6; i++ {
			out = append(out, c.backoff(i, rng))
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: %v vs %v with equal seeds", i, a[i], b[i])
		}
		base := time.Millisecond << uint(i)
		if base > 16*time.Millisecond {
			base = 16 * time.Millisecond
		}
		if a[i] < base/2 || a[i] > base {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", i, a[i], base/2, base)
		}
	}
	if c := seq(8); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Error("different seeds produced the same jitter sequence")
	}
}

func TestClientContextCancellation(t *testing.T) {
	// Cancelling the outer context aborts the retry loop promptly, even
	// with generous backoff configured.
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	c := fastClient(url)
	c.BackoffBase = time.Hour
	c.BackoffMax = time.Hour
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := c.PlanContext(ctx, testRequest(2, 20_000_000))
	if err == nil {
		t.Fatal("cancelled plan succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

func TestHealthzJSON(t *testing.T) {
	s, ts := newTestServer(t)
	// Generate one miss so the counters are visible.
	c := &Client{BaseURL: ts.URL}
	if _, _, err := c.Plan(testRequest(2, 20_000_000)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", h.UptimeSeconds)
	}
	hits, misses := s.CacheStats()
	if h.CacheHits != hits || h.CacheMisses != misses || misses == 0 {
		t.Errorf("healthz counters %d/%d, server reports %d/%d", h.CacheHits, h.CacheMisses, hits, misses)
	}
	post, err := http.Post(ts.URL+"/healthz", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d, want 405", post.StatusCode)
	}
}

// TestCancelledAttemptDoesNotRetryOrTripBreaker covers the
// cancellation half of the breaker contract: an attempt that dies
// because the caller's context was cancelled is not evidence against
// the daemon. It must not be recorded as a breaker failure and must not
// consume further retry attempts.
func TestCancelledAttemptDoesNotRetryOrTripBreaker(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		<-release // hold the attempt open until the client cancels
	}))
	defer srv.Close()
	defer close(release)

	br := &Breaker{Threshold: 1, Cooldown: time.Hour}
	c := fastClient(srv.URL)
	c.AttemptTimeout = time.Hour // only the caller's cancel ends the attempt
	c.MaxAttempts = 5
	c.Breaker = br

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, _, err := c.PlanContext(ctx, testRequest(2, 20_000_000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d attempts, want 1: cancelled attempts must not consume retries", n)
	}
	if st := br.State(); st != "closed" {
		t.Fatalf("breaker %s after a cancelled attempt, want closed: with Threshold 1, recording the cancellation as a failure would have tripped it", st)
	}
}

// TestHalfOpenProbeCancelledDoesNotLatch covers the half-open race: a
// probe admitted after the cooldown whose caller then cancels must
// neither close the breaker nor restart the cooldown. The slot is
// returned, and — because the original cooldown has already elapsed —
// the very next Allow admits a fresh probe.
func TestHalfOpenProbeCancelledDoesNotLatch(t *testing.T) {
	now := time.Unix(0, 0)
	br := &Breaker{Threshold: 3, Cooldown: time.Second, now: func() time.Time { return now }}
	for i := 0; i < 3; i++ {
		br.RecordFailure()
	}
	if br.State() != "open" {
		t.Fatalf("state = %s, want open", br.State())
	}
	now = now.Add(2 * time.Second) // cooldown elapsed: the next attempt is the half-open probe

	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)

	c := fastClient(srv.URL)
	c.AttemptTimeout = time.Hour
	c.Breaker = br
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, _, err := c.PlanContext(ctx, testRequest(2, 20_000_000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := br.State(); st != "open" {
		t.Fatalf("breaker %s after a cancelled half-open probe, want open: a cancellation is not a verdict", st)
	}
	if !br.Allow() {
		t.Fatal("breaker refused a fresh probe after a cancelled half-open attempt: the cancellation restarted the cooldown or latched the probe slot")
	}
}
