package plannersvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tableau/internal/journal"
)

// opOrderStore records the order of Append and Sync calls on the
// wrapped store, so tests can assert the drain's "final" sync really
// covers every record a served plan appended.
type opOrderStore struct {
	journal.Store
	mu  sync.Mutex
	ops []string
}

func (s *opOrderStore) Append(rec []byte) error {
	s.mu.Lock()
	s.ops = append(s.ops, "append")
	s.mu.Unlock()
	return s.Store.Append(rec)
}

func (s *opOrderStore) Sync() error {
	s.mu.Lock()
	s.ops = append(s.ops, "sync")
	s.mu.Unlock()
	return s.Store.Sync()
}

// unsyncedAppends returns how many appends follow the last sync.
func (s *opOrderStore) unsyncedAppends() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, op := range s.ops {
		if op == "sync" {
			n = 0
		} else {
			n++
		}
	}
	return n
}

// TestDrainWaitsForInflightPlans is the regression test for the drain
// race: handlePlan used to check draining before incrementing inflight,
// and StartDrain synced the journal without waiting for in-flight
// requests — so a request that slipped past the check appended its
// journal record after the "final" sync, breaking the documented
// "every plan served before the drain began is durable" guarantee.
//
// The test parks one admitted request inside the handler (blocked
// reading its own body), starts a drain, then lets the request finish:
// the drain must wait it out, and the journal's op order must show the
// request's append covered by a sync when everything settles.
func TestDrainWaitsForInflightPlans(t *testing.T) {
	s, ts := newTestServer(t)
	store := &opOrderStore{Store: journal.NewMemStore()}
	s.SetJournal(journal.NewWriter(store))

	body, err := json.Marshal(testRequest(4, 20_000_000))
	if err != nil {
		t.Fatal(err)
	}
	pr, pw := io.Pipe()
	served := make(chan error, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/plan", pr)
		if err != nil {
			served <- err
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			served <- err
			return
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			served <- err
			return
		}
		if resp.StatusCode != http.StatusOK {
			served <- fmt.Errorf("admitted request answered %d, want 200", resp.StatusCode)
			return
		}
		served <- nil
	}()

	// Feed half the body, then wait until the handler is in flight: it
	// has passed the drain check and is blocked reading the rest.
	if _, err := pw.Write(body[:len(body)/2]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never showed up in flight")
		}
		time.Sleep(100 * time.Microsecond)
	}

	drained := make(chan int, 1)
	go func() {
		s.StartDrain()
		drained <- store.unsyncedAppends()
	}()

	// Give the (fixed) drain a moment to start waiting, then let the
	// parked request run to completion. A pre-fix drain has already
	// returned by now — without syncing the record the request is about
	// to append.
	select {
	case <-drained:
		// Pre-fix path: the drain did not wait for the in-flight
		// request. The assertions below catch the consequence.
		drained <- 0
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := pw.Write(body[len(body)/2:]); err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-served; err != nil {
		t.Fatalf("request admitted before the drain must be served: %v", err)
	}
	unsyncedAtDrain := <-drained

	if got := s.JournalRecords(); got != 1 {
		t.Fatalf("JournalRecords = %d, want 1", got)
	}
	if unsyncedAtDrain != 0 {
		t.Fatalf("%d journal append(s) not covered when StartDrain returned", unsyncedAtDrain)
	}
	if n := store.unsyncedAppends(); n != 0 {
		t.Fatalf("%d journal append(s) landed after the drain's final sync — a served plan is not durable", n)
	}
}

// TestDrainPlanStress races StartDrain against a burst of concurrent
// /plan requests under -race: every 200 response must have its journal
// record covered by the drain's sync, every post-drain request must be
// turned away with 503, and the server's inflight gauge must return to
// zero.
func TestDrainPlanStress(t *testing.T) {
	s, ts := newTestServer(t)
	store := &opOrderStore{Store: journal.NewMemStore()}
	s.SetJournal(journal.NewWriter(store))

	body, err := json.Marshal(testRequest(4, 20_000_000))
	if err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 8, 6
	var served, refused atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(ts.URL+"/plan", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("POST /plan: %v", err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					served.Add(1)
				case http.StatusServiceUnavailable:
					refused.Add(1)
				default:
					t.Errorf("POST /plan: status %d", resp.StatusCode)
				}
			}
		}()
	}
	close(start)
	time.Sleep(time.Millisecond)
	s.StartDrain()
	unsyncedAtDrain := store.unsyncedAppends()
	wg.Wait()

	if s.QueueDepth() != 0 {
		t.Fatalf("inflight = %d after all requests settled", s.QueueDepth())
	}
	if served.Load()+refused.Load() != clients*perClient {
		t.Fatalf("served %d + refused %d != %d requests", served.Load(), refused.Load(), clients*perClient)
	}
	if got := s.JournalRecords(); got != served.Load() {
		t.Fatalf("JournalRecords = %d but %d plans served", got, served.Load())
	}
	if unsyncedAtDrain != 0 {
		t.Fatalf("%d journal append(s) not covered when StartDrain returned", unsyncedAtDrain)
	}
}
