package plannersvc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tableau/internal/table"
)

func testRequest(n int, goal int64) PlanRequest {
	req := PlanRequest{Cores: 2}
	for i := 0; i < n; i++ {
		req.VMs = append(req.VMs, VMRequest{
			Name:          "vm" + string(rune('a'+i)),
			UtilNum:       1,
			UtilDen:       4,
			LatencyGoalNS: goal,
			Capped:        true,
		})
	}
	return req
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(16)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestPlanRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	c := &Client{BaseURL: ts.URL}
	tbl, resp, err := c.Plan(testRequest(8, 20_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stage != "partitioned" {
		t.Errorf("stage = %s", resp.Stage)
	}
	if len(resp.Guarantees) != 8 {
		t.Errorf("guarantees = %d", len(resp.Guarantees))
	}
	if tbl.Len != resp.TableLengthNS {
		t.Errorf("table length mismatch: %d vs %d", tbl.Len, resp.TableLengthNS)
	}
	// The decoded table is dispatch-ready: validated with slice tables.
	if tbl.SliceCount() == 0 {
		t.Error("decoded table has no slice index")
	}
	// Every VM has reservations.
	for id := range tbl.VCPUs {
		if len(tbl.VCPUSlots(id)) == 0 {
			t.Errorf("vcpu %d has no reservations", id)
		}
	}
}

func TestCentralCacheSharedAcrossRequests(t *testing.T) {
	s, ts := newTestServer(t)
	c := &Client{BaseURL: ts.URL}
	req := testRequest(8, 20_000_000)
	if _, r1, err := c.Plan(req); err != nil || r1.Cached {
		t.Fatalf("first plan: cached=%v err=%v", r1 != nil && r1.Cached, err)
	}
	_, r2, err := c.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Error("second identical request not served from the cache")
	}
	hits, misses := s.CacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d/%d", hits, misses)
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	_, ts := newTestServer(t)
	c := &Client{BaseURL: ts.URL}
	over := testRequest(8, 20_000_000)
	over.Cores = 1 // 8 x 25% on one core: over-utilized
	_, _, err := c.Plan(over)
	if err == nil || !strings.Contains(err.Error(), "over-utilized") {
		t.Errorf("err = %v, want over-utilization rejection", err)
	}
	empty := PlanRequest{Cores: 2}
	if _, _, err := c.Plan(empty); err == nil {
		t.Error("empty request accepted")
	}
}

func TestHandlerRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /plan = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/plan", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body = %d", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}

func TestClientRejectsCorruptTable(t *testing.T) {
	// A hostile/buggy server returning a corrupt table must not reach
	// the dispatcher: the client validates via table.Decode.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp := PlanResponse{Table: "AAAA"} // not a valid table
		_ = json.NewEncoder(w).Encode(resp)
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	if _, _, err := c.Plan(testRequest(2, 20_000_000)); err == nil {
		t.Error("corrupt table accepted")
	}
}

func TestResponseTableMatchesDirectPlan(t *testing.T) {
	_, ts := newTestServer(t)
	c := &Client{BaseURL: ts.URL}
	req := testRequest(4, 20_000_000)
	req.Peephole = true
	tbl, resp, err := c.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	// Re-verify the guarantees from the response against the table.
	var gs []table.Guarantee
	for _, g := range resp.Guarantees {
		gs = append(gs, table.Guarantee{VCPU: g.VCPU, Service: g.ServiceNS, WindowLen: g.WindowNS, MaxBlackout: g.MaxBlackout})
	}
	if err := tbl.Check(gs); err != nil {
		t.Errorf("remote table fails its own advertised guarantees: %v", err)
	}
}
