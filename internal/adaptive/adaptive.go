// Package adaptive implements the reconfiguration loop the paper points
// to in its related-work discussion (Sec. 8): "Similar adaptive
// techniques can be used with Tableau to periodically optimize
// scheduling tables." Because Tableau splits planning from dispatching,
// an adaptive policy never touches the hot path — it just observes VM
// behaviour, adjusts reservations, and pushes regenerated tables
// through the same lock-free switch used for VM lifecycle events.
//
// The controller here is a deliberately simple high/low-watermark
// policy: a VM that consistently consumes most of its reservation grows
// by a multiplicative step, a VM that leaves most of it idle shrinks,
// and every proposal is admission-checked (with growth scaled back
// proportionally when the host lacks headroom) before the planner runs.
package adaptive

import (
	"fmt"

	"tableau/internal/core"
	"tableau/internal/dispatch"
	"tableau/internal/planner"
	"tableau/internal/vmm"
)

// Config tunes the controller. Zero values select the documented
// defaults.
type Config struct {
	// Interval between adaptations; default 500 ms.
	Interval int64
	// HighWater: grow a VM that used more than this fraction of its
	// reservation over the last interval. Default 0.85.
	HighWater float64
	// LowWater: shrink a VM that used less than this fraction.
	// Default 0.35.
	LowWater float64
	// GrowFactor and ShrinkFactor are the multiplicative steps applied
	// to the reservation (in PPM). Defaults 1.25 and 0.8.
	GrowFactor   float64
	ShrinkFactor float64
	// MinPPM and MaxPPM bound every reservation. Defaults: 50_000
	// (5% of a core) and 1_000_000 (a full core).
	MinPPM int64
	MaxPPM int64
}

func (c Config) withDefaults() Config {
	if c.Interval == 0 {
		c.Interval = 500_000_000
	}
	if c.HighWater == 0 {
		c.HighWater = 0.85
	}
	if c.LowWater == 0 {
		c.LowWater = 0.35
	}
	if c.GrowFactor == 0 {
		c.GrowFactor = 1.25
	}
	if c.ShrinkFactor == 0 {
		c.ShrinkFactor = 0.8
	}
	if c.MinPPM == 0 {
		c.MinPPM = 50_000
	}
	if c.MaxPPM == 0 {
		c.MaxPPM = 1_000_000
	}
	return c
}

// Stats reports what the controller has done.
type Stats struct {
	Ticks     int
	Grows     int
	Shrinks   int
	Replans   int
	PlanFails int
}

// Controller adapts a running system's reservations. Create with New
// and call Start once the machine is assembled (before or after
// machine.Start, as long as the dispatcher is attached).
type Controller struct {
	cfg  Config
	sys  *core.System
	disp *dispatch.Dispatcher
	m    *vmm.Machine

	lastRun []int64
	stats   Stats
}

// New creates a controller adapting sys's reservations on m, pushing
// regenerated tables into disp. The machine's vCPU ids must equal the
// system's slot ids (the same convention the dispatcher requires).
func New(sys *core.System, disp *dispatch.Dispatcher, m *vmm.Machine, cfg Config) *Controller {
	return &Controller{
		cfg:     cfg.withDefaults(),
		sys:     sys,
		disp:    disp,
		m:       m,
		lastRun: make([]int64, sys.NumSlots()),
	}
}

// Start arms the periodic adaptation.
func (c *Controller) Start() {
	c.m.Eng.After(c.cfg.Interval, c.tick)
}

// Stats returns a copy of the controller's counters.
func (c *Controller) Stats() Stats { return c.stats }

func (c *Controller) tick(now int64) {
	c.stats.Ticks++
	changed := c.adapt()
	if changed {
		if _, err := c.sys.Push(c.disp); err != nil {
			// Leave the previous table in place; the system stays sound.
			c.stats.PlanFails++
		} else {
			c.stats.Replans++
		}
	}
	c.m.Eng.After(c.cfg.Interval, c.tick)
}

// adapt updates slot reservations from observed usage and reports
// whether anything changed.
func (c *Controller) adapt() bool {
	type proposal struct {
		id   int
		from int64 // current ppm
		to   int64 // proposed ppm
	}
	var props []proposal
	var othersPPM int64
	for id := 0; id < c.sys.NumSlots(); id++ {
		cfgVM := c.sys.Config(id)
		curPPM := cfgVM.Util.PPM()
		used := c.m.VCPUs[id].RunTime - c.lastRun[id]
		c.lastRun[id] = c.m.VCPUs[id].RunTime
		reserved := c.cfg.Interval * curPPM / 1_000_000
		if reserved <= 0 {
			othersPPM += curPPM
			continue
		}
		frac := float64(used) / float64(reserved)
		switch {
		case frac > c.cfg.HighWater && curPPM < c.cfg.MaxPPM:
			to := clampPPM(int64(float64(curPPM)*c.cfg.GrowFactor), c.cfg.MinPPM, c.cfg.MaxPPM)
			props = append(props, proposal{id, curPPM, to})
		case frac < c.cfg.LowWater && curPPM > c.cfg.MinPPM:
			to := clampPPM(int64(float64(curPPM)*c.cfg.ShrinkFactor), c.cfg.MinPPM, c.cfg.MaxPPM)
			props = append(props, proposal{id, curPPM, to})
		default:
			othersPPM += curPPM
		}
	}
	if len(props) == 0 {
		return false
	}
	// Admission: total proposed must fit the host. If growth would
	// overshoot, scale every growth back proportionally (shrinks always
	// help, so they are kept).
	capacity := int64(c.sys.Cores()) * 1_000_000
	var proposed int64
	for _, p := range props {
		proposed += p.to
	}
	if othersPPM+proposed > capacity {
		headroom := capacity - othersPPM
		var shrinkPPM, growFromPPM, growToPPM int64
		for _, p := range props {
			if p.to <= p.from {
				shrinkPPM += p.to
			} else {
				growFromPPM += p.from
				growToPPM += p.to
			}
		}
		growBudget := headroom - shrinkPPM
		if growBudget < growFromPPM {
			// No room to grow at all: drop growth proposals.
			growBudget = growFromPPM
		}
		for i := range props {
			p := &props[i]
			if p.to > p.from && growToPPM > 0 {
				// Scale this grow so all grows together fit growBudget.
				p.to = p.from + (p.to-p.from)*(growBudget-growFromPPM)/(growToPPM-growFromPPM)
				p.to = clampPPM(p.to, c.cfg.MinPPM, c.cfg.MaxPPM)
			}
		}
	}
	changed := false
	for _, p := range props {
		if p.to == p.from {
			continue
		}
		cfgVM := c.sys.Config(p.id)
		if err := c.sys.Reconfigure(p.id, planner.UtilFromPPM(p.to), cfgVM.LatencyGoal); err != nil {
			continue
		}
		changed = true
		if p.to > p.from {
			c.stats.Grows++
		} else {
			c.stats.Shrinks++
		}
	}
	return changed
}

func clampPPM(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Describe returns a one-line summary of current reservations, for
// examples and debugging.
func (c *Controller) Describe() string {
	s := ""
	for id := 0; id < c.sys.NumSlots(); id++ {
		cfgVM := c.sys.Config(id)
		s += fmt.Sprintf("%s=%.0f%% ", cfgVM.Name, float64(cfgVM.Util.PPM())/10_000)
	}
	return s
}

// Machine exposes the controller's machine (for tests).
func (c *Controller) Machine() *vmm.Machine { return c.m }
