package adaptive

import (
	"fmt"
	"testing"

	"tableau/internal/core"
	"tableau/internal/dispatch"
	"tableau/internal/planner"
	"tableau/internal/sim"
	"tableau/internal/vmm"
)

// rig assembles a 2-core system with the given per-VM programs, all
// slots starting at 25% with a 20 ms goal, capped.
func rig(t *testing.T, progs []vmm.Program, cfg Config) (*Controller, *core.System, *vmm.Machine) {
	t.Helper()
	sys := core.NewSystem(2, planner.Options{}, dispatch.Options{})
	for i := range progs {
		if _, err := sys.AddVM(core.VMConfig{
			Name:        fmt.Sprintf("vm%d", i),
			Util:        core.Util{Num: 1, Den: 4},
			LatencyGoal: 20_000_000,
			Capped:      true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	d, _, err := sys.BuildDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	m := vmm.New(sim.New(1), 2, d, vmm.NoOverheads())
	for i, p := range progs {
		m.AddVCPU(fmt.Sprintf("vm%d", i), p, 256, true)
	}
	ctl := New(sys, d, m, cfg)
	m.Start()
	ctl.Start()
	return ctl, sys, m
}

func spinner() vmm.Program {
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		return vmm.Compute(1_000_000)
	})
}

func sleeper() vmm.Program {
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		return vmm.BlockIndefinitely()
	})
}

// lightLoad computes c every 100 ms.
func lightLoad(c int64) vmm.Program {
	phase := 0
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		phase++
		if phase%2 == 1 {
			return vmm.Compute(c)
		}
		return vmm.Block(100_000_000)
	})
}

func TestHungryVMGrows(t *testing.T) {
	ctl, sys, m := rig(t, []vmm.Program{spinner(), lightLoad(1_000_000)}, Config{})
	before := sys.Config(0).Util.PPM()
	m.Run(5_000_000_000)
	after := sys.Config(0).Util.PPM()
	if after <= before {
		t.Errorf("hungry VM reservation did not grow: %d -> %d", before, after)
	}
	st := ctl.Stats()
	if st.Grows == 0 || st.Replans == 0 {
		t.Errorf("stats = %+v", st)
	}
	// The grown reservation translated into actual service: the spinner
	// should collect clearly more than the initial 25% share over the
	// last second.
	beforeRT := m.VCPUs[0].RunTime
	m.Run(6_000_000_000)
	gained := m.VCPUs[0].RunTime - beforeRT
	if gained < 320_000_000 { // > 32% of a core over 1 s
		t.Errorf("grown VM received only %d ns in 1 s", gained)
	}
}

func TestIdleVMShrinks(t *testing.T) {
	ctl, sys, m := rig(t, []vmm.Program{sleeper(), spinner()}, Config{})
	before := sys.Config(0).Util.PPM()
	m.Run(5_000_000_000)
	after := sys.Config(0).Util.PPM()
	if after >= before {
		t.Errorf("idle VM reservation did not shrink: %d -> %d", before, after)
	}
	if after < ctl.cfg.MinPPM {
		t.Errorf("reservation below floor: %d", after)
	}
	if ctl.Stats().Shrinks == 0 {
		t.Error("no shrinks recorded")
	}
}

func TestAdmissionNeverExceeded(t *testing.T) {
	// Eight hungry VMs on two cores: everyone wants to grow but the
	// host has no headroom. Total reservations must never exceed the
	// machine.
	var progs []vmm.Program
	for i := 0; i < 8; i++ {
		progs = append(progs, spinner())
	}
	_, sys, m := rig(t, progs, Config{Interval: 200_000_000})
	for step := 0; step < 20; step++ {
		m.Run(m.Now() + 200_000_000)
		var total int64
		for id := 0; id < sys.NumSlots(); id++ {
			total += sys.Config(id).Util.PPM()
		}
		if total > 2_000_000 {
			t.Fatalf("step %d: total reservations %d ppm exceed 2 cores", step, total)
		}
	}
}

func TestStableLoadConverges(t *testing.T) {
	// A VM using ~60% of its reservation sits between the watermarks:
	// after an initial settling phase, no further replans should occur.
	ctl, _, m := rig(t, []vmm.Program{lightLoad(15_000_000), lightLoad(15_000_000)}, Config{})
	m.Run(3_000_000_000)
	settled := ctl.Stats().Replans
	m.Run(6_000_000_000)
	if got := ctl.Stats().Replans; got > settled+1 {
		t.Errorf("controller kept replanning a stable load: %d -> %d", settled, got)
	}
}

func TestDescribe(t *testing.T) {
	ctl, _, _ := rig(t, []vmm.Program{sleeper()}, Config{})
	if s := ctl.Describe(); s == "" {
		t.Error("empty description")
	}
	if ctl.Machine() == nil {
		t.Error("machine accessor nil")
	}
}
