package fleet

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"tableau/internal/faults"
	"tableau/internal/planner"
)

func eighth() planner.Util { return planner.Util{Num: 1, Den: 8} }

func beVM(name string, u planner.Util) VM {
	vm := testVM(name, u)
	vm.Class = planner.BE
	return vm
}

// crashHost arms a crash plan on host h and fires it with a throwaway
// direct commit (which must come back ErrHostDown). The throwaway VM
// never enters the registry.
func crashHost(t *testing.T, h *Host, kind string, seed int64) {
	t.Helper()
	if err := h.Arm(faults.CrashPlan{Kind: kind, AtAppend: 1, Seed: seed}); err != nil {
		t.Fatalf("Arm host %d: %v", h.ID(), err)
	}
	snap := h.Snapshot()
	_, err := h.CommitPlacements(snap.Version, []VM{testVM(fmt.Sprintf("boom-h%d", h.ID()), eighth())})
	if !errors.Is(err, ErrHostDown) {
		t.Fatalf("crashing commit on host %d: err = %v, want ErrHostDown", h.ID(), err)
	}
	if h.State() != HostDown {
		t.Fatalf("host %d state = %s after crash, want down", h.ID(), h.State())
	}
}

func TestHostCrashRecover(t *testing.T) {
	a := testArbiter(t, Config{Hosts: 2, Cores: 4, SlotsPerHost: 10, Placers: 1, Journal: true})
	var vms []VM
	for i := 0; i < 8; i++ {
		vms = append(vms, testVM(fmt.Sprintf("vm%d", i), eighth()))
	}
	if bs, err := a.PlaceBatch(vms); err != nil || bs.Placed != 8 {
		t.Fatalf("fill: placed %d err %v", bs.Placed, err)
	}
	h := a.Hosts()[0]
	preGuests := h.VMs()
	preVersion := h.Snapshot().Version
	if preGuests == 0 {
		t.Fatal("worst-fit left host 0 empty; test needs displaced guests")
	}

	crashHost(t, h, faults.CrashTorn, 7)

	// While down: no placements, departures deferred.
	if _, err := h.CommitPlacements(h.Snapshot().Version, []VM{testVM("late", eighth())}); !errors.Is(err, ErrHostDown) {
		t.Fatalf("commit on down host: %v, want ErrHostDown", err)
	}
	var downName string
	for name, hh := range a.Assignments() {
		if hh == 0 {
			downName = name
			break
		}
	}
	if err := a.Depart(downName); !errors.Is(err, ErrHostDown) {
		t.Fatalf("Depart on down host: %v, want ErrHostDown", err)
	}
	if _, ok := a.Assignments()[downName]; !ok {
		t.Fatal("deferred departure removed the VM from the registry")
	}

	st, err := a.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if st.HostsDown != 1 || st.Recovered != 1 || st.Evacuated != 0 || st.Lost != 0 {
		t.Fatalf("failover stats %+v, want 1 down, 1 recovered, nothing evacuated", st)
	}
	if st.Displaced != int64(preGuests) {
		t.Fatalf("displaced %d, want the host's %d guests", st.Displaced, preGuests)
	}
	if h.State() != HostUp {
		t.Fatalf("host state %s after recovery, want up", h.State())
	}
	if h.VMs() != preGuests {
		t.Fatalf("host holds %d guests after recovery, want %d", h.VMs(), preGuests)
	}
	// The rejoin version must strictly exceed everything a pre-crash
	// snapshot saw, so stale in-flight commits conflict instead of
	// double-applying.
	if v := h.Snapshot().Version; v <= preVersion {
		t.Fatalf("rejoin version %d <= pre-crash %d", v, preVersion)
	}
	if _, err := h.CommitPlacements(preVersion, []VM{testVM("stale", eighth())}); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale pre-crash commit: %v, want ErrConflict", err)
	}
	// The deferred departure resolves through the normal path now.
	if err := a.Depart(downName); err != nil {
		t.Fatalf("Depart after recovery: %v", err)
	}
	if a.Stats().DepartsDeferred != 1 {
		t.Fatalf("DepartsDeferred = %d, want 1", a.Stats().DepartsDeferred)
	}
}

// TestHostCrashGhostSlot drives a post-append crash on a placement: the
// journal record is durable but the flush died before the ack, so the
// in-memory rollback leaves a ghost slot the rejoin must deactivate —
// the no-double-placement guarantee across the crash seam.
func TestHostCrashGhostSlot(t *testing.T) {
	a := testArbiter(t, Config{Hosts: 1, Cores: 4, SlotsPerHost: 8, Placers: 1, Journal: true})
	h := a.Hosts()[0]
	if _, err := a.PlaceBatch([]VM{testVM("keep", eighth())}); err != nil {
		t.Fatal(err)
	}
	crashHost(t, h, faults.CrashPostAppend, 11)

	st, err := a.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovered != 1 {
		t.Fatalf("recovered %d, want 1", st.Recovered)
	}
	// The ghost (the crashing "boom" placement's durable record) must be
	// reconciled on the recover seam, and the host must not hold it.
	ledger := h.Ledger()
	var seam *Commit
	for i := range ledger {
		if ledger[i].Event == "recover" {
			seam = &ledger[i]
		}
	}
	if seam == nil {
		t.Fatal("no recover seam in the ledger")
	}
	if len(seam.GhostSlots) != 1 {
		t.Fatalf("recover seam reconciled %d ghost slots, want 1", len(seam.GhostSlots))
	}
	if h.VMs() != 1 {
		t.Fatalf("host holds %d guests, want just %q", h.VMs(), "keep")
	}
	// The ghost's slot is free again: a fresh placement may reuse it.
	if res, err := h.CommitPlacements(h.Snapshot().Version, []VM{testVM("next", eighth())}); err != nil || len(res.Placed) != 1 {
		t.Fatalf("placement after ghost reconciliation: %v %+v", err, res)
	}
}

// TestHostCrashFreedSlot drives a post-append crash on a departure: the
// departure committed durably but the ack was lost, so recovery must
// resolve the guest as departed and Failover must drop it from the
// registry.
func TestHostCrashFreedSlot(t *testing.T) {
	a := testArbiter(t, Config{Hosts: 1, Cores: 4, SlotsPerHost: 8, Placers: 1, Journal: true})
	h := a.Hosts()[0]
	if _, err := a.PlaceBatch([]VM{testVM("keep", eighth()), testVM("gone", eighth())}); err != nil {
		t.Fatal(err)
	}
	if err := h.Arm(faults.CrashPlan{Kind: faults.CrashPostAppend, AtAppend: 1, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := a.Depart("gone"); !errors.Is(err, ErrHostDown) {
		t.Fatalf("crashing departure: %v, want ErrHostDown", err)
	}
	if _, ok := a.Assignments()["gone"]; !ok {
		t.Fatal("unacked departure already left the registry")
	}

	st, err := a.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovered != 1 || st.Departed != 1 {
		t.Fatalf("stats %+v, want 1 recovered with 1 journal-resolved departure", st)
	}
	if _, ok := a.Assignments()["gone"]; ok {
		t.Fatal("journal-committed departure still registered after recovery")
	}
	if _, ok := a.Assignments()["keep"]; !ok {
		t.Fatal("surviving guest fell out of the registry")
	}
	if h.VMs() != 1 {
		t.Fatalf("host holds %d guests, want 1", h.VMs())
	}
}

// TestFailStopEvacuatesLSFirst kills a host permanently (no surviving
// journal image) and checks the whole evacuation contract: a spare is
// promoted to backfill, every latency-sensitive evacuee re-places
// strictly before any best-effort one, and the registry ends with each
// displaced VM live on exactly one Up host or recorded as lost.
func TestFailStopEvacuatesLSFirst(t *testing.T) {
	a := testArbiter(t, Config{
		Hosts: 3, Cores: 4, SlotsPerHost: 12, Placers: 1, SpareHosts: 1, Journal: true,
	})
	var vms []VM
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("vm%d", i)
		// Worst-fit alternates equal-size VMs across the two regular
		// hosts, so stripe the classes at twice that period to land both
		// classes on host 0.
		if i%4 >= 2 {
			vms = append(vms, beVM(name, eighth()))
		} else {
			vms = append(vms, testVM(name, eighth()))
		}
	}
	if bs, err := a.PlaceBatch(vms); err != nil || bs.Placed != 10 {
		t.Fatalf("fill: %+v %v", bs, err)
	}
	h0 := a.Hosts()[0]
	displaced := h0.LiveGuests()
	var haveLS, haveBE bool
	for _, vm := range displaced {
		if vm.Class == planner.BE {
			haveBE = true
		} else {
			haveLS = true
		}
	}
	if !haveLS || !haveBE {
		t.Fatalf("host 0 guests %v lack a class; the wave order would be vacuous", displaced)
	}

	crashHost(t, h0, faults.CrashFailStop, 5)
	st, err := a.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if h0.State() != HostDead {
		t.Fatalf("host 0 state %s, want dead", h0.State())
	}
	if st.Recovered != 0 || st.HostsDown != 1 {
		t.Fatalf("stats %+v, want 1 down and 0 recovered", st)
	}
	if st.Displaced != int64(len(displaced)) || st.Evacuated+st.Lost != st.Displaced {
		t.Fatalf("displaced %d evacuated %d lost %d: accounting is untruthful", st.Displaced, st.Evacuated, st.Lost)
	}
	// Spare promoted to backfill the dead regular host.
	if a.Hosts()[2].Spare() {
		t.Fatal("spare host not promoted after a regular host died")
	}

	// Every displaced VM: live on exactly one Up host, or on the seam's
	// Lost list.
	var seam *Commit
	for _, c := range h0.Ledger() {
		if c.Event == "evacuate" {
			cc := c
			seam = &cc
		}
	}
	if seam == nil {
		t.Fatal("dead host has no evacuate seam")
	}
	if len(seam.EvacLS)+len(seam.EvacBE) != len(displaced) {
		t.Fatalf("seam lists %d+%d evacuees, want %d", len(seam.EvacLS), len(seam.EvacBE), len(displaced))
	}
	lost := make(map[string]bool)
	for _, name := range seam.Lost {
		lost[name] = true
	}
	asg := a.Assignments()
	for _, vm := range displaced {
		h, live := asg[vm.Name]
		switch {
		case live && lost[vm.Name]:
			t.Fatalf("%q both live on host %d and lost", vm.Name, h)
		case live && a.Hosts()[h].State() != HostUp:
			t.Fatalf("%q registered on host %d in state %s", vm.Name, h, a.Hosts()[h].State())
		case !live && !lost[vm.Name]:
			t.Fatalf("%q neither live nor recorded lost", vm.Name)
		}
	}

	// LS strictly first: across the surviving hosts' ledgers, every
	// placement Seq of an LS evacuee precedes every BE evacuee's.
	evacClass := make(map[string]planner.Class)
	for _, vm := range displaced {
		evacClass[vm.Name] = vm.Class
	}
	var maxLS, minBE uint64
	minBE = ^uint64(0)
	for _, h := range a.Hosts() {
		for _, c := range h.Ledger() {
			if c.Event != "" || c.Seq < seam.Seq {
				// Only re-placements: the evacuees' original placements
				// predate the seam.
				continue
			}
			for _, name := range c.Placed {
				cls, isEvac := evacClass[name]
				if !isEvac {
					continue
				}
				if cls == planner.BE {
					if c.Seq < minBE {
						minBE = c.Seq
					}
				} else if c.Seq > maxLS {
					maxLS = c.Seq
				}
			}
		}
	}
	if maxLS != 0 && minBE != ^uint64(0) && maxLS > minBE {
		t.Fatalf("a BE evacuee placed (seq %d) before the last LS evacuee (seq %d)", minBE, maxLS)
	}
	// And the seam's Seq precedes every re-placement.
	if minBE != ^uint64(0) && seam.Seq > minBE {
		t.Fatal("evacuation seam sequenced after a re-placement")
	}
}

// TestArbiterCloseIdempotent checks the close contract under fire:
// concurrent Place/Depart/PlaceBatch against concurrent double Close,
// no panics (run under -race), every Close nil, and ErrClosed
// afterward.
func TestArbiterCloseIdempotent(t *testing.T) {
	a, err := New(Config{
		Hosts: 4, Cores: 4, SlotsPerHost: 12, Placers: 2, MaxAttempts: 4,
		Cache: planner.NewCache(256), Journal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 25; i++ {
				name := fmt.Sprintf("c%d-%d", g, i)
				// Errors are expected once the close lands (closed arbiter,
				// closed controllers surfacing as rejects); the invariant
				// under test is no corruption, not success.
				if _, err := a.Place(testVM(name, eighth())); err == nil {
					_ = a.Depart(name)
				}
				if i == 10 {
					_, _ = a.PlaceBatch([]VM{testVM(fmt.Sprintf("b%d-%d", g, i), eighth())})
				}
			}
		}(g)
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := a.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if err := a.Close(); err != nil {
		t.Fatalf("Close after Close: %v", err)
	}
	if _, err := a.Place(testVM("late", eighth())); !errors.Is(err, ErrClosed) {
		t.Fatalf("Place after close: %v, want ErrClosed", err)
	}
	if _, err := a.PlaceBatch([]VM{testVM("late2", eighth())}); !errors.Is(err, ErrClosed) {
		t.Fatalf("PlaceBatch after close: %v, want ErrClosed", err)
	}
	if _, err := a.DepartBatch(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("DepartBatch after close: %v, want ErrClosed", err)
	}
	if _, err := a.Failover(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Failover after close: %v, want ErrClosed", err)
	}
}

// TestArmCrashesSkipsDeadHosts: a storm plan naming an already-dead
// host arms everyone else and reports the count.
func TestArmCrashesSkipsDeadHosts(t *testing.T) {
	a := testArbiter(t, Config{Hosts: 3, Cores: 4, SlotsPerHost: 8, Placers: 1, Journal: true})
	crashHost(t, a.Hosts()[0], faults.CrashFailStop, 9)
	if _, err := a.Failover(); err != nil {
		t.Fatal(err)
	}
	plan := faults.HostCrashPlan{Crashes: []faults.HostCrash{
		{Host: 0, Plan: faults.CrashPlan{Kind: faults.CrashTorn, AtAppend: 1, Seed: 1}},
		{Host: 1, Plan: faults.CrashPlan{Kind: faults.CrashTorn, AtAppend: 1, Seed: 2}},
	}}
	armed, err := a.ArmCrashes(plan)
	if err != nil {
		t.Fatal(err)
	}
	if armed != 1 {
		t.Fatalf("armed %d hosts, want 1 (host 0 is dead)", armed)
	}
}
