// Package fleet is the cluster layer above the single-host control
// plane: a shared-state placement arbiter that assigns incoming VMs to
// one of N simulated Tableau hosts, each running its own planner and
// core.Controller.
//
// The concurrency model is optimistic, in the style of shared-state
// cluster schedulers: placers work from versioned per-host snapshots
// (the version is the host's committed Epoch.Version), decide a target
// host from the snapshot's advisory headroom, and try to commit by
// submitting the placement batch to the target host's Controller and
// flushing it. The host checks the expected version under its lock —
// a concurrent commit that raced on the same host finds the version
// moved, loses with ErrConflict, refreshes its snapshot, and retries
// (bounded by Config.MaxAttempts, with conflict counters).
//
// Snapshot headroom is advisory; the host's admission check (the
// planner's exact utilization test inside Controller.Flush) is the
// authoritative gate. A placement the snapshot thought would fit can
// still be rejected at the host, in which case the placer bans that
// host for the VM, becomes eligible for the spare-host pool, and
// retries elsewhere — the shed-retry path of the fleet.
//
// Arrivals are hash-partitioned across P placers by VM name, and each
// placer prefers hosts of its home partition (host%P == placer), so
// same-host contention is rare but exercised: the cross-partition
// fallback and the spare pool are exactly where two placers meet on
// one host and one of them must retry.
package fleet

import (
	"errors"
	"fmt"
	"hash/fnv"

	"tableau/internal/core"
	"tableau/internal/planner"
)

// VM is one guest VM a placer must find a host for. Fleet VMs are
// single-vCPU and capped (reservation-bound), matching the paper's
// high-density dark-slice model: the reservation is the contract, so
// the fleet's headroom arithmetic composes across hosts.
type VM struct {
	// Name identifies the VM fleet-wide. Placement is idempotent per
	// name: a VM may be live on at most one host at a time.
	Name string
	// Util is the reserved utilization in (0, 1].
	Util planner.Util
	// LatencyGoal is the maximum scheduling latency L in ns.
	LatencyGoal int64
	// Class is the tenancy class. The zero value is latency-sensitive;
	// best-effort guests are the fleet's sheddable tier — a host may
	// deactivate them (a committed, journaled shed) to admit an LS
	// placement its headroom could not otherwise hold.
	Class planner.Class
}

// ppm returns the VM's reserved utilization in parts-per-million of
// one core — the unit of the fleet's headroom arithmetic.
func (v VM) ppm() int64 {
	if v.Util.Den <= 0 {
		return 0
	}
	return v.Util.Num * 1_000_000 / v.Util.Den
}

// HostState is a host's position in the fleet failure lifecycle:
// Up → Down → (Recovering → Up | Dead). Down means a commit hit the
// host's crashed journal; the arbiter's Failover either replays the
// surviving journal image back to Up or declares the host Dead and
// evacuates its guests.
type HostState int

const (
	HostUp HostState = iota
	HostDown
	HostRecovering
	HostDead
)

func (s HostState) String() string {
	switch s {
	case HostUp:
		return "up"
	case HostDown:
		return "down"
	case HostRecovering:
		return "recovering"
	case HostDead:
		return "dead"
	}
	return fmt.Sprintf("state-%d", int(s))
}

// Snapshot is one placer's view of a host: the committed epoch version
// plus advisory headroom. A commit against the host names the version
// it read; if the host has moved on, the commit loses with ErrConflict.
type Snapshot struct {
	Host    int
	Version uint64
	// FreeSlots is the number of unoccupied VM slots.
	FreeSlots int
	// FreePPM is the unreserved utilization in ppm of a core, summed
	// over the host's cores. Advisory: the host's admission check is
	// the authoritative gate.
	FreePPM int64
	// State is the host's failure-lifecycle state; placers only target
	// Up hosts.
	State HostState
	// Spare marks a spare-pool host (only eligible for VMs already
	// rejected somewhere). Spares are promoted to regular when a regular
	// host dies.
	Spare bool
}

// ErrConflict reports that a commit named a stale snapshot version:
// another placer committed to the host first. The loser refreshes and
// retries.
var ErrConflict = errors.New("fleet: stale snapshot: host epoch moved")

// ErrUnplaced reports that a VM exhausted its placement attempts (or no
// host had a free slot at all).
var ErrUnplaced = errors.New("fleet: no host could place the VM")

// ErrHostDown reports a commit against a host whose journal has
// crashed (either this commit hit the crash point or the host was
// already down). Placers treat it like a conflict: ban the host,
// refresh, retry elsewhere — the batch rolled back in memory, so
// nothing was placed (even if the crashing record proves durable,
// recovery deactivates the ghost before the host rejoins).
var ErrHostDown = errors.New("fleet: host is down")

// ErrClosed reports an operation on a closed arbiter.
var ErrClosed = errors.New("fleet: arbiter closed")

// Stats are the arbiter's cumulative placement counters.
type Stats struct {
	// Placed counts successful placements; Departed counts completed
	// departures.
	Placed, Departed int64
	// Conflicts counts commits lost to a stale snapshot version;
	// Retries counts VMs re-queued for another attempt (after a
	// conflict or a reject).
	Conflicts, Retries int64
	// AdmissionRejects counts placements the target host's admission
	// check refused; SlotRejects counts placements refused for slot
	// scarcity before admission ran.
	AdmissionRejects, SlotRejects int64
	// SparePlacements counts placements that landed on the reserved
	// spare-host pool; Unplaced counts VMs that exhausted MaxAttempts.
	SparePlacements, Unplaced int64
	// Shed counts best-effort VMs a host deactivated to admit a
	// latency-sensitive placement.
	Shed int64
	// HostsDown counts hosts Failover found down; Recovered counts the
	// ones it replayed back to Up from their surviving journal image.
	HostsDown, Recovered int64
	// Displaced counts guest VMs resident on a down host at failover
	// (recovered-in-place included); Evacuated counts displaced VMs
	// re-placed off a dead host; EvacSheds counts best-effort guests
	// shed elsewhere to make room for evacuees; Lost counts evacuees no
	// host could take.
	Displaced, Evacuated, EvacSheds, Lost int64
	// DepartsDeferred counts departures skipped because the owning host
	// was down — the VM stays registered until recovery or evacuation
	// resolves it.
	DepartsDeferred int64
}

// add accumulates o into s.
func (s *Stats) add(o Stats) {
	s.Placed += o.Placed
	s.Departed += o.Departed
	s.Conflicts += o.Conflicts
	s.Retries += o.Retries
	s.AdmissionRejects += o.AdmissionRejects
	s.SlotRejects += o.SlotRejects
	s.SparePlacements += o.SparePlacements
	s.Unplaced += o.Unplaced
	s.Shed += o.Shed
	s.HostsDown += o.HostsDown
	s.Recovered += o.Recovered
	s.Displaced += o.Displaced
	s.Evacuated += o.Evacuated
	s.EvacSheds += o.EvacSheds
	s.Lost += o.Lost
	s.DepartsDeferred += o.DepartsDeferred
}

// Commit is one committed host transition in the fleet's ledger: the
// epoch it installed, the fleet-level VM names it placed or departed,
// and the committed slot ops. Seq is a fleet-global sequence number
// drawn under the host lock at commit time, so sorting all hosts'
// commits by Seq yields a total order consistent with both per-host
// commit order and real-time order — the replay order of the
// cross-host continuity oracle.
//
// Failure-seam entries carry Event: "crash" freezes the surviving
// journal image at the moment the host went down, "recover" is the
// rejoin commit (its Ops deactivate adopted ghost slots and its
// Departed resolve journal-committed departures the crash swallowed),
// and "evacuate" is a dead host's displacement record. Seam entries
// participate in the same Seq total order.
type Commit struct {
	Seq     uint64
	Version uint64 // installed epoch (0: every op was rejected)
	Placed  []string
	Departed []string
	// Shed names the best-effort VMs this commit deactivated to admit
	// an LS placement — departures the host initiated, matched by
	// Shed-marked deactivations in Ops.
	Shed []string
	Ops  []core.Op

	// Event marks a failure-seam entry: "crash", "recover" or
	// "evacuate" ("" for a normal commit).
	Event string
	// Image is the surviving journal image frozen at the crash (nil for
	// a fail-stop crash, whose disk died with the host). The oracle
	// independently replays it and demands the recovered state match
	// bit-for-bit.
	Image []byte
	// Recovered names the guests still live after a recover seam;
	// GhostSlots are journal-active slots the crash's in-memory rollback
	// never acked (deactivated by this commit's Ops); FreedSlots are
	// occupied slots the journal says were already freed (their guests
	// resolve as Departed).
	Recovered  []string
	GhostSlots []int
	FreedSlots []int
	// EvacLS and EvacBE name a dead host's displaced guests by class;
	// Lost names the evacuees no host could take (gone from the fleet,
	// truthfully accounted). The seam's Seq is drawn before any evacuee
	// re-places, so re-placements order strictly after it.
	EvacLS, EvacBE, Lost []string
}

// partition returns the placer partition a VM name hashes to.
func partition(name string, placers int) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(placers))
}
