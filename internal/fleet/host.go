package fleet

import (
	"errors"
	"fmt"
	"sync"

	"tableau/internal/core"
	"tableau/internal/dispatch"
	"tableau/internal/faults"
	"tableau/internal/journal"
	"tableau/internal/planner"
	"tableau/internal/table"
)

// The resident system VM every host keeps in slot 0: it never departs,
// so the host's planner always has a population and every epoch carries
// at least one guarantee. Its tiny reservation is the host's fixed
// overhead in the fleet's headroom arithmetic.
var residentUtil = planner.Util{Num: 1, Den: 64}

const (
	residentName = "sys"
	residentGoal = int64(100_000_000)
)

// nullSink discards installed tables: fleet hosts exercise the control
// plane (planning, admission, epochs), not second-level dispatch.
type nullSink struct{}

func (nullSink) PushTable(*table.Table) error { return nil }

// Host is one Tableau host in the fleet: a core.System population, the
// core.Controller serializing its replans, and the occupancy metadata
// the arbiter's optimistic protocol needs — a committed version, free
// slots, reserved utilization, and a ledger of committed transitions.
//
// Slot ids are fixed at host construction (vCPU ids are fixed at
// machine start); fleet-level VM identity lives in the name<->slot
// maps here, because slots are recycled across guest generations.
// Slot names are the generic "s1".."sN" on every host, so two hosts
// whose populations coincide share planner.Cache entries.
//
// With Config.Journal set, every host's Controller commits through a
// durable epoch journal wrapped in an armable faults.CrashStore: a
// fired crash point makes the flush fail with ErrCrashed, the host
// goes Down, and the arbiter's Failover recovers it from the surviving
// image (or evacuates it when there is none).
type Host struct {
	id    int
	cores int
	seq   func() uint64
	cache *planner.Cache

	mu        sync.Mutex
	sys       *core.System
	ctrl      *core.Controller
	journal   *faults.CrashStore // nil when journaling is disabled
	state     HostState
	spare     bool
	downImage []byte // surviving journal image at crash (nil: unrecoverable)
	version   uint64
	usedPPM   int64
	free      []int // LIFO stack of unoccupied slots
	slotGuest []VM  // per-slot guest (zero Name: unoccupied)
	ledger    []Commit
	vmSlot    map[string]int
}

func newHost(id, cores, slots int, cache *planner.Cache, seq func() uint64, spare, journaled bool) (*Host, error) {
	if slots < 2 {
		return nil, fmt.Errorf("fleet: host %d needs at least 2 slots (1 resident + 1 guest), got %d", id, slots)
	}
	sys := core.NewSystem(cores, planner.Options{}, dispatch.Options{})
	sys.Cache = cache
	if _, err := sys.AddVM(core.VMConfig{
		Name: residentName, Util: residentUtil, LatencyGoal: residentGoal, Capped: true,
	}); err != nil {
		return nil, err
	}
	for s := 1; s < slots; s++ {
		if _, err := sys.AddVM(core.VMConfig{
			Name: fmt.Sprintf("s%d", s), Util: residentUtil, LatencyGoal: residentGoal, Capped: true,
		}); err != nil {
			return nil, err
		}
		if err := sys.SetActive(s, false); err != nil {
			return nil, err
		}
	}
	_, res, err := sys.Plan()
	if err != nil {
		return nil, fmt.Errorf("fleet: host %d initial plan: %w", id, err)
	}
	ctrl, err := core.NewController(sys, nullSink{}, res)
	if err != nil {
		return nil, err
	}
	h := &Host{
		id:        id,
		cores:     cores,
		seq:       seq,
		cache:     cache,
		sys:       sys,
		ctrl:      ctrl,
		spare:     spare,
		version:   ctrl.Epoch().Version,
		usedPPM:   VM{Util: residentUtil}.ppm(),
		slotGuest: make([]VM, slots),
		vmSlot:    make(map[string]int),
	}
	if journaled {
		// The journal is the host's commit point from here on; the idle
		// crash store passes every append through until a storm arms it.
		cs := faults.NewIdleCrashStore(journal.NewMemStore())
		if err := ctrl.AttachJournal(journal.NewWriter(cs)); err != nil {
			return nil, fmt.Errorf("fleet: host %d journal baseline: %w", id, err)
		}
		h.journal = cs
	}
	// Push free slots in descending order so the pop order (and with it
	// slot reuse, table shape, and cache keys) ascends deterministically.
	for s := slots - 1; s >= 1; s-- {
		h.free = append(h.free, s)
	}
	return h, nil
}

// ID returns the host's fleet-wide id.
func (h *Host) ID() int { return h.id }

// State returns the host's failure-lifecycle state.
func (h *Host) State() HostState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// Spare reports whether the host is in the spare pool.
func (h *Host) Spare() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.spare
}

// promote moves a spare host into the regular pool (a dead regular
// host's replacement).
func (h *Host) promote() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.spare = false
}

// Arm installs a crash plan on the host's journal store. The crash
// fires when the host's commit traffic reaches the planned append.
func (h *Host) Arm(plan faults.CrashPlan) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.journal == nil {
		return fmt.Errorf("fleet: host %d has no journal to crash (Config.Journal off)", h.id)
	}
	if h.state != HostUp {
		return fmt.Errorf("fleet: host %d is %s: %w", h.id, h.state, ErrHostDown)
	}
	return h.journal.Arm(plan)
}

// Snapshot returns the host's committed version and advisory headroom.
func (h *Host) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Snapshot{
		Host:      h.id,
		Version:   h.version,
		FreeSlots: len(h.free),
		FreePPM:   int64(h.cores)*1_000_000 - h.usedPPM,
		State:     h.state,
		Spare:     h.spare,
	}
}

// LiveGuests returns the host's guest VMs in ascending slot order (the
// resident excluded) — the displacement set when the host dies.
func (h *Host) LiveGuests() []VM {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []VM
	for s := 1; s < len(h.slotGuest); s++ {
		if h.slotGuest[s].Name != "" {
			out = append(out, h.slotGuest[s])
		}
	}
	return out
}

// Reject is one VM a commit could not place, with the reason. NoSlot
// marks slot scarcity (refused before admission ran).
type Reject struct {
	VM     VM
	Err    error
	NoSlot bool
}

// CommitResult reports the outcome of one versioned commit: the host's
// version after the commit, the VM names placed, and the per-VM
// rejects. Shed names the best-effort VMs the host deactivated to
// admit this commit's latency-sensitive placements — the caller must
// drop them from any fleet-level registry.
type CommitResult struct {
	Version uint64
	Placed  []string
	Shed    []string
	Rejects []Reject
}

// markDownLocked transitions the host to Down after a flush died on
// its crashed journal: freeze the surviving image (nil when the disk
// died too) and append the crash seam to the ledger. The in-memory
// batch already rolled back, so the host's maps describe exactly the
// acked commits — the delta against the frozen image is what recovery
// reconciles.
func (h *Host) markDownLocked() {
	h.state = HostDown
	img, err := h.journal.Surviving()
	if err != nil {
		img = nil
	}
	h.downImage = img
	h.ledger = append(h.ledger, Commit{
		Seq:     h.seq(),
		Version: h.version,
		Event:   "crash",
		Image:   append([]byte(nil), img...),
	})
	// The dead process's controller accepts nothing more; ignore the
	// close error (syncing a crashed journal reports the crash).
	_ = h.ctrl.Close()
}

// CommitPlacements atomically places vms on the host, provided the
// host's committed version still equals expect — otherwise the commit
// loses with ErrConflict and changes nothing. A winning commit assigns
// each VM a free slot and flushes one [reconfigure, activate] pair per
// VM through the Controller as a single transactional batch; the
// planner's admission check inside the flush is the authoritative
// gate, so individual VMs can come back rejected even though the
// caller's snapshot predicted a fit. Placed and rejected VMs are
// reported per name; only a stale version (ErrConflict) or a crashed
// host (ErrHostDown) is an error.
func (h *Host) CommitPlacements(expect uint64, vms []VM) (CommitResult, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != HostUp {
		return CommitResult{Version: h.version}, ErrHostDown
	}
	if h.version != expect {
		return CommitResult{Version: h.version}, ErrConflict
	}
	res := CommitResult{Version: h.version}
	var ops []core.Op
	var taken []int // slots handed out, in vm order
	slotVM := make(map[int]VM)
	for _, vm := range vms {
		spec := planner.VCPUSpec{Name: vm.Name, Util: vm.Util, LatencyGoal: vm.LatencyGoal, Capped: true, Class: vm.Class}
		if err := spec.Validate(); err != nil {
			res.Rejects = append(res.Rejects, Reject{VM: vm, Err: err})
			continue
		}
		if _, dup := h.vmSlot[vm.Name]; dup {
			res.Rejects = append(res.Rejects, Reject{VM: vm, Err: fmt.Errorf("fleet: VM %q already on host %d", vm.Name, h.id)})
			continue
		}
		if len(h.free) == 0 {
			res.Rejects = append(res.Rejects, Reject{VM: vm, Err: fmt.Errorf("fleet: host %d has no free slot", h.id), NoSlot: true})
			continue
		}
		slot := h.free[len(h.free)-1]
		h.free = h.free[:len(h.free)-1]
		taken = append(taken, slot)
		slotVM[slot] = vm
		// SetClass rides the reconfigure: slots are recycled across guest
		// generations, so the class must be restamped even back to LS.
		ops = append(ops,
			core.Op{Kind: core.OpReconfigure, Slot: slot, Util: vm.Util, LatencyGoal: vm.LatencyGoal, SetClass: true, Class: vm.Class},
			core.Op{Kind: core.OpActivate, Slot: slot},
		)
	}
	if len(ops) == 0 {
		return res, nil
	}
	h.ctrl.SubmitBatch(ops)
	tr, err := h.ctrl.Flush()
	if err != nil {
		// The whole batch rolled back: the population is unchanged, so
		// hand the slots back (restoring pop order). A crashed journal
		// takes the host down — the caller retries elsewhere; any other
		// rollback reports every attempted VM rejected.
		for i := len(taken) - 1; i >= 0; i-- {
			h.free = append(h.free, taken[i])
		}
		if errors.Is(err, faults.ErrCrashed) {
			h.markDownLocked()
			return CommitResult{Version: h.version}, ErrHostDown
		}
		for _, slot := range taken {
			res.Rejects = append(res.Rejects, Reject{VM: slotVM[slot], Err: err})
		}
		return res, nil
	}
	rejected := make(map[int]error)
	for _, rj := range tr.Rejected {
		if rj.Op.Kind == core.OpActivate {
			rejected[rj.Op.Slot] = rj.Err
		}
	}
	for _, slot := range taken {
		vm := slotVM[slot]
		if rerr, ok := rejected[slot]; ok {
			// Admission (or shed) refused the activate; its paired
			// reconfigure may have committed on the inactive slot, which
			// is harmless — the next occupant reconfigures it again.
			h.free = append(h.free, slot)
			res.Rejects = append(res.Rejects, Reject{VM: vm, Err: rerr})
			continue
		}
		h.vmSlot[vm.Name] = slot
		h.slotGuest[slot] = vm
		h.usedPPM += vm.ppm()
		res.Placed = append(res.Placed, vm.Name)
	}
	// Release the slots of any best-effort guests the controller shed to
	// admit this batch: a Shed-marked deactivation is a committed,
	// journaled departure the host initiated, so the occupant's
	// bookkeeping is torn down exactly like CommitDepartures'. This runs
	// after the placed loop so a guest placed and then shed within the
	// same batch is released too.
	for _, op := range tr.Committed {
		if !op.Shed {
			continue
		}
		name := h.slotGuest[op.Slot].Name
		if name == "" {
			continue
		}
		delete(h.vmSlot, name)
		h.usedPPM -= h.slotGuest[op.Slot].ppm()
		h.slotGuest[op.Slot] = VM{}
		h.free = append(h.free, op.Slot)
		res.Shed = append(res.Shed, name)
	}
	if tr.Version != 0 {
		h.version = tr.Version
		h.ledger = append(h.ledger, Commit{
			Seq:     h.seq(),
			Version: tr.Version,
			Placed:  append([]string(nil), res.Placed...),
			Shed:    append([]string(nil), res.Shed...),
			Ops:     append([]core.Op(nil), tr.Committed...),
		})
	}
	res.Version = h.version
	return res, nil
}

// CommitDepartures atomically tears the named VMs down, under the same
// versioned-commit rule as CommitPlacements. Every name must be live
// on this host. Departures shed no utilization, so the flush cannot
// reject them; a crashed journal takes the host down (ErrHostDown, the
// VMs stay live for recovery to resolve), and any other flush failure
// is returned as a real error.
func (h *Host) CommitDepartures(expect uint64, names []string) (CommitResult, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != HostUp {
		return CommitResult{Version: h.version}, ErrHostDown
	}
	if h.version != expect {
		return CommitResult{Version: h.version}, ErrConflict
	}
	res := CommitResult{Version: h.version}
	ops := make([]core.Op, 0, len(names))
	for _, name := range names {
		slot, ok := h.vmSlot[name]
		if !ok {
			return res, fmt.Errorf("fleet: host %d does not hold VM %q", h.id, name)
		}
		ops = append(ops, core.Op{Kind: core.OpDeactivate, Slot: slot})
	}
	if len(ops) == 0 {
		return res, nil
	}
	h.ctrl.SubmitBatch(ops)
	tr, err := h.ctrl.Flush()
	if err != nil {
		if errors.Is(err, faults.ErrCrashed) {
			h.markDownLocked()
			return CommitResult{Version: h.version}, ErrHostDown
		}
		return res, fmt.Errorf("fleet: host %d departure flush: %w", h.id, err)
	}
	for _, name := range names {
		slot := h.vmSlot[name]
		delete(h.vmSlot, name)
		h.usedPPM -= h.slotGuest[slot].ppm()
		h.slotGuest[slot] = VM{}
		h.free = append(h.free, slot)
	}
	if tr.Version != 0 {
		h.version = tr.Version
		h.ledger = append(h.ledger, Commit{
			Seq:      h.seq(),
			Version:  tr.Version,
			Departed: append([]string(nil), names...),
			Ops:      append([]core.Op(nil), tr.Committed...),
		})
	}
	res.Version = h.version
	return res, nil
}

// Recover replays the host's surviving journal image and rejoins the
// fleet: Down → Recovering → Up. The journal is the ground truth —
// the in-memory maps describe only acked commits, so the seam between
// them is reconciled toward the journal:
//
//   - a ghost slot (journal-active, maps-unoccupied) is the crashing
//     placement whose record proved durable after the flush rolled
//     back; the arbiter already retried that VM elsewhere, so the
//     rejoin flush deactivates the ghost before the host takes
//     traffic — the no-double-placement guarantee across the seam.
//   - a freed slot (journal-inactive, maps-occupied) is the crashing
//     departure or shed whose record proved durable; the guest is
//     resolved as departed and its names are returned for the caller
//     to drop from the registry.
//
// The rejoin flush always commits a fresh epoch (ghost deactivations,
// or an identity reconfigure of the resident slot when there are
// none), and the recovered System resumes version numbering past the
// journal's maximum — so the rejoin version strictly exceeds every
// pre-crash version and any still-in-flight commit loses with
// ErrConflict, never a silent double-apply.
//
// On failure the host stays Down with its image intact (the caller
// falls back to evacuation).
func (h *Host) Recover() ([]string, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != HostDown {
		return nil, fmt.Errorf("fleet: host %d is %s, not down", h.id, h.state)
	}
	if h.downImage == nil {
		return nil, fmt.Errorf("fleet: host %d has no surviving journal image", h.id)
	}
	h.state = HostRecovering
	freed, err := h.recoverLocked()
	if err != nil {
		h.state = HostDown
		return nil, err
	}
	h.state = HostUp
	h.downImage = nil
	return freed, nil
}

func (h *Host) recoverLocked() ([]string, error) {
	store := faults.NewIdleCrashStore(journal.NewMemStoreFrom(h.downImage))
	ctrl, _, _, err := core.Recover(store, core.RecoverOptions{
		Planner:  planner.Options{},
		Dispatch: dispatch.Options{},
		Sink:     nullSink{},
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: host %d recovery: %w", h.id, err)
	}
	sys := ctrl.System()
	sys.Cache = h.cache

	// The recovered epoch's slot activation set, independent of the
	// in-memory maps: decode and fold the image exactly as Recover did.
	rep, err := journal.DecodeAll(h.downImage)
	if err != nil || len(rep.Records) == 0 {
		return nil, fmt.Errorf("fleet: host %d image replay: %w", h.id, err)
	}
	folded := journal.FoldEpochs(rep.Records)
	last := folded[len(folded)-1]
	if len(last.Slots) != len(h.slotGuest) {
		return nil, fmt.Errorf("fleet: host %d journal has %d slots, host has %d", h.id, len(last.Slots), len(h.slotGuest))
	}

	var ghosts, freedSlots []int
	var freedNames, recovered []string
	for s := 1; s < len(last.Slots); s++ {
		occupied := h.slotGuest[s].Name != ""
		switch {
		case last.Slots[s].Active && !occupied:
			ghosts = append(ghosts, s)
		case !last.Slots[s].Active && occupied:
			freedSlots = append(freedSlots, s)
			freedNames = append(freedNames, h.slotGuest[s].Name)
		case occupied:
			recovered = append(recovered, h.slotGuest[s].Name)
		}
	}

	// Rejoin flush: deactivate the ghosts, or touch the resident slot
	// when there are none — either way a fresh epoch commits and the
	// host's version moves past everything a pre-crash snapshot saw.
	ops := make([]core.Op, 0, len(ghosts))
	for _, s := range ghosts {
		ops = append(ops, core.Op{Kind: core.OpDeactivate, Slot: s})
	}
	if len(ops) == 0 {
		ops = append(ops, core.Op{Kind: core.OpReconfigure, Slot: 0, Util: residentUtil, LatencyGoal: residentGoal})
	}
	ctrl.SubmitBatch(ops)
	tr, err := ctrl.Flush()
	if err != nil {
		return nil, fmt.Errorf("fleet: host %d rejoin flush: %w", h.id, err)
	}
	if len(tr.Rejected) > 0 || tr.Version == 0 {
		return nil, fmt.Errorf("fleet: host %d rejoin flush rejected %d ops", h.id, len(tr.Rejected))
	}

	// Swap in the recovered control plane and rebuild the occupancy
	// bookkeeping from the reconciled maps.
	for _, s := range freedSlots {
		delete(h.vmSlot, h.slotGuest[s].Name)
		h.slotGuest[s] = VM{}
	}
	h.sys = sys
	h.ctrl = ctrl
	h.journal = store
	h.version = tr.Version
	h.usedPPM = VM{Util: residentUtil}.ppm()
	h.free = h.free[:0]
	for s := len(h.slotGuest) - 1; s >= 1; s-- {
		if h.slotGuest[s].Name == "" {
			h.free = append(h.free, s)
		} else {
			h.usedPPM += h.slotGuest[s].ppm()
		}
	}
	h.ledger = append(h.ledger, Commit{
		Seq:        h.seq(),
		Version:    tr.Version,
		Event:      "recover",
		Departed:   freedNames,
		Recovered:  recovered,
		GhostSlots: ghosts,
		FreedSlots: freedSlots,
		Ops:        append([]core.Op(nil), tr.Committed...),
	})
	return freedNames, nil
}

// markDead declares a Down host permanently failed: Down → Dead. Its
// guests are the caller's to evacuate; the evacuation seam is recorded
// via finishEvacuate.
func (h *Host) markDead() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != HostDown {
		return fmt.Errorf("fleet: host %d is %s, not down", h.id, h.state)
	}
	h.state = HostDead
	h.downImage = nil
	return nil
}

// finishEvacuate appends the dead host's evacuation seam. seq was
// drawn before any evacuee re-placed, so every re-placement orders
// strictly after the seam in the fleet's total commit order.
func (h *Host) finishEvacuate(seq uint64, evacLS, evacBE, lost []string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ledger = append(h.ledger, Commit{
		Seq:    seq,
		Event:  "evacuate",
		EvacLS: evacLS,
		EvacBE: evacBE,
		Lost:   lost,
	})
}

// Ledger returns a copy of the host's committed transitions in commit
// order.
func (h *Host) Ledger() []Commit {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Commit(nil), h.ledger...)
}

// History returns the host's committed epoch history. After a
// recovery it is the recovered history: the folded journal epochs plus
// everything committed since the rejoin.
func (h *Host) History() []core.Epoch {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ctrl.History()
}

// ControllerStats returns the host controller's cumulative counters.
func (h *Host) ControllerStats() core.Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ctrl.ControllerStats()
}

// VMs returns the number of live guest VMs (the resident excluded).
func (h *Host) VMs() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.vmSlot)
}

// Close shuts the host's controller down. A crashed journal's sync
// failure is not an error — the host is already dead.
func (h *Host) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	err := h.ctrl.Close()
	if errors.Is(err, faults.ErrCrashed) {
		return nil
	}
	return err
}
