package fleet

import (
	"fmt"
	"sync"

	"tableau/internal/core"
	"tableau/internal/dispatch"
	"tableau/internal/planner"
	"tableau/internal/table"
)

// The resident system VM every host keeps in slot 0: it never departs,
// so the host's planner always has a population and every epoch carries
// at least one guarantee. Its tiny reservation is the host's fixed
// overhead in the fleet's headroom arithmetic.
var residentUtil = planner.Util{Num: 1, Den: 64}

const (
	residentName = "sys"
	residentGoal = int64(100_000_000)
)

// nullSink discards installed tables: fleet hosts exercise the control
// plane (planning, admission, epochs), not second-level dispatch.
type nullSink struct{}

func (nullSink) PushTable(*table.Table) error { return nil }

// Host is one Tableau host in the fleet: a core.System population, the
// core.Controller serializing its replans, and the occupancy metadata
// the arbiter's optimistic protocol needs — a committed version, free
// slots, reserved utilization, and a ledger of committed transitions.
//
// Slot ids are fixed at host construction (vCPU ids are fixed at
// machine start); fleet-level VM identity lives in the name<->slot
// maps here, because slots are recycled across guest generations.
// Slot names are the generic "s1".."sN" on every host, so two hosts
// whose populations coincide share planner.Cache entries.
type Host struct {
	id    int
	cores int
	seq   func() uint64

	mu      sync.Mutex
	sys     *core.System
	ctrl    *core.Controller
	version uint64
	usedPPM int64
	free    []int // LIFO stack of unoccupied slots
	slotVM  []string
	slotPPM []int64
	vmSlot  map[string]int
	ledger  []Commit
}

func newHost(id, cores, slots int, cache *planner.Cache, seq func() uint64) (*Host, error) {
	if slots < 2 {
		return nil, fmt.Errorf("fleet: host %d needs at least 2 slots (1 resident + 1 guest), got %d", id, slots)
	}
	sys := core.NewSystem(cores, planner.Options{}, dispatch.Options{})
	sys.Cache = cache
	if _, err := sys.AddVM(core.VMConfig{
		Name: residentName, Util: residentUtil, LatencyGoal: residentGoal, Capped: true,
	}); err != nil {
		return nil, err
	}
	for s := 1; s < slots; s++ {
		if _, err := sys.AddVM(core.VMConfig{
			Name: fmt.Sprintf("s%d", s), Util: residentUtil, LatencyGoal: residentGoal, Capped: true,
		}); err != nil {
			return nil, err
		}
		if err := sys.SetActive(s, false); err != nil {
			return nil, err
		}
	}
	_, res, err := sys.Plan()
	if err != nil {
		return nil, fmt.Errorf("fleet: host %d initial plan: %w", id, err)
	}
	ctrl, err := core.NewController(sys, nullSink{}, res)
	if err != nil {
		return nil, err
	}
	h := &Host{
		id:      id,
		cores:   cores,
		seq:     seq,
		sys:     sys,
		ctrl:    ctrl,
		version: ctrl.Epoch().Version,
		usedPPM: VM{Util: residentUtil}.ppm(),
		slotVM:  make([]string, slots),
		slotPPM: make([]int64, slots),
		vmSlot:  make(map[string]int),
	}
	// Push free slots in descending order so the pop order (and with it
	// slot reuse, table shape, and cache keys) ascends deterministically.
	for s := slots - 1; s >= 1; s-- {
		h.free = append(h.free, s)
	}
	return h, nil
}

// ID returns the host's fleet-wide id.
func (h *Host) ID() int { return h.id }

// Snapshot returns the host's committed version and advisory headroom.
func (h *Host) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Snapshot{
		Host:      h.id,
		Version:   h.version,
		FreeSlots: len(h.free),
		FreePPM:   int64(h.cores)*1_000_000 - h.usedPPM,
	}
}

// Reject is one VM a commit could not place, with the reason. NoSlot
// marks slot scarcity (refused before admission ran).
type Reject struct {
	VM     VM
	Err    error
	NoSlot bool
}

// CommitResult reports the outcome of one versioned commit: the host's
// version after the commit, the VM names placed, and the per-VM
// rejects. Shed names the best-effort VMs the host deactivated to
// admit this commit's latency-sensitive placements — the caller must
// drop them from any fleet-level registry.
type CommitResult struct {
	Version uint64
	Placed  []string
	Shed    []string
	Rejects []Reject
}

// CommitPlacements atomically places vms on the host, provided the
// host's committed version still equals expect — otherwise the commit
// loses with ErrConflict and changes nothing. A winning commit assigns
// each VM a free slot and flushes one [reconfigure, activate] pair per
// VM through the Controller as a single transactional batch; the
// planner's admission check inside the flush is the authoritative
// gate, so individual VMs can come back rejected even though the
// caller's snapshot predicted a fit. Placed and rejected VMs are
// reported per name; only a stale version is an error.
func (h *Host) CommitPlacements(expect uint64, vms []VM) (CommitResult, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.version != expect {
		return CommitResult{Version: h.version}, ErrConflict
	}
	res := CommitResult{Version: h.version}
	var ops []core.Op
	var taken []int // slots handed out, in vm order
	slotVM := make(map[int]VM)
	for _, vm := range vms {
		spec := planner.VCPUSpec{Name: vm.Name, Util: vm.Util, LatencyGoal: vm.LatencyGoal, Capped: true, Class: vm.Class}
		if err := spec.Validate(); err != nil {
			res.Rejects = append(res.Rejects, Reject{VM: vm, Err: err})
			continue
		}
		if _, dup := h.vmSlot[vm.Name]; dup {
			res.Rejects = append(res.Rejects, Reject{VM: vm, Err: fmt.Errorf("fleet: VM %q already on host %d", vm.Name, h.id)})
			continue
		}
		if len(h.free) == 0 {
			res.Rejects = append(res.Rejects, Reject{VM: vm, Err: fmt.Errorf("fleet: host %d has no free slot", h.id), NoSlot: true})
			continue
		}
		slot := h.free[len(h.free)-1]
		h.free = h.free[:len(h.free)-1]
		taken = append(taken, slot)
		slotVM[slot] = vm
		// SetClass rides the reconfigure: slots are recycled across guest
		// generations, so the class must be restamped even back to LS.
		ops = append(ops,
			core.Op{Kind: core.OpReconfigure, Slot: slot, Util: vm.Util, LatencyGoal: vm.LatencyGoal, SetClass: true, Class: vm.Class},
			core.Op{Kind: core.OpActivate, Slot: slot},
		)
	}
	if len(ops) == 0 {
		return res, nil
	}
	h.ctrl.SubmitBatch(ops)
	tr, err := h.ctrl.Flush()
	if err != nil {
		// The whole batch rolled back: the population is unchanged, so
		// hand the slots back (restoring pop order) and report every
		// attempted VM rejected with the rollback error.
		for i := len(taken) - 1; i >= 0; i-- {
			h.free = append(h.free, taken[i])
		}
		for _, slot := range taken {
			res.Rejects = append(res.Rejects, Reject{VM: slotVM[slot], Err: err})
		}
		return res, nil
	}
	rejected := make(map[int]error)
	for _, rj := range tr.Rejected {
		if rj.Op.Kind == core.OpActivate {
			rejected[rj.Op.Slot] = rj.Err
		}
	}
	for _, slot := range taken {
		vm := slotVM[slot]
		if rerr, ok := rejected[slot]; ok {
			// Admission (or shed) refused the activate; its paired
			// reconfigure may have committed on the inactive slot, which
			// is harmless — the next occupant reconfigures it again.
			h.free = append(h.free, slot)
			res.Rejects = append(res.Rejects, Reject{VM: vm, Err: rerr})
			continue
		}
		h.vmSlot[vm.Name] = slot
		h.slotVM[slot] = vm.Name
		h.slotPPM[slot] = vm.ppm()
		h.usedPPM += vm.ppm()
		res.Placed = append(res.Placed, vm.Name)
	}
	// Release the slots of any best-effort guests the controller shed to
	// admit this batch: a Shed-marked deactivation is a committed,
	// journaled departure the host initiated, so the occupant's
	// bookkeeping is torn down exactly like CommitDepartures'. This runs
	// after the placed loop so a guest placed and then shed within the
	// same batch is released too.
	for _, op := range tr.Committed {
		if !op.Shed {
			continue
		}
		name := h.slotVM[op.Slot]
		if name == "" {
			continue
		}
		delete(h.vmSlot, name)
		h.slotVM[op.Slot] = ""
		h.usedPPM -= h.slotPPM[op.Slot]
		h.slotPPM[op.Slot] = 0
		h.free = append(h.free, op.Slot)
		res.Shed = append(res.Shed, name)
	}
	if tr.Version != 0 {
		h.version = tr.Version
		h.ledger = append(h.ledger, Commit{
			Seq:     h.seq(),
			Version: tr.Version,
			Placed:  append([]string(nil), res.Placed...),
			Shed:    append([]string(nil), res.Shed...),
			Ops:     append([]core.Op(nil), tr.Committed...),
		})
	}
	res.Version = h.version
	return res, nil
}

// CommitDepartures atomically tears the named VMs down, under the same
// versioned-commit rule as CommitPlacements. Every name must be live
// on this host. Departures shed no utilization, so the flush cannot
// reject them; any flush failure is returned as a real error.
func (h *Host) CommitDepartures(expect uint64, names []string) (CommitResult, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.version != expect {
		return CommitResult{Version: h.version}, ErrConflict
	}
	res := CommitResult{Version: h.version}
	ops := make([]core.Op, 0, len(names))
	for _, name := range names {
		slot, ok := h.vmSlot[name]
		if !ok {
			return res, fmt.Errorf("fleet: host %d does not hold VM %q", h.id, name)
		}
		ops = append(ops, core.Op{Kind: core.OpDeactivate, Slot: slot})
	}
	if len(ops) == 0 {
		return res, nil
	}
	h.ctrl.SubmitBatch(ops)
	tr, err := h.ctrl.Flush()
	if err != nil {
		return res, fmt.Errorf("fleet: host %d departure flush: %w", h.id, err)
	}
	for _, name := range names {
		slot := h.vmSlot[name]
		delete(h.vmSlot, name)
		h.slotVM[slot] = ""
		h.usedPPM -= h.slotPPM[slot]
		h.slotPPM[slot] = 0
		h.free = append(h.free, slot)
	}
	if tr.Version != 0 {
		h.version = tr.Version
		h.ledger = append(h.ledger, Commit{
			Seq:      h.seq(),
			Version:  tr.Version,
			Departed: append([]string(nil), names...),
			Ops:      append([]core.Op(nil), tr.Committed...),
		})
	}
	res.Version = h.version
	return res, nil
}

// Ledger returns a copy of the host's committed transitions in commit
// order.
func (h *Host) Ledger() []Commit {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Commit(nil), h.ledger...)
}

// History returns the host's committed epoch history.
func (h *Host) History() []core.Epoch {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ctrl.History()
}

// ControllerStats returns the host controller's cumulative counters.
func (h *Host) ControllerStats() core.Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ctrl.ControllerStats()
}

// VMs returns the number of live guest VMs (the resident excluded).
func (h *Host) VMs() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.vmSlot)
}

// Close shuts the host's controller down.
func (h *Host) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ctrl.Close()
}
