package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"tableau/internal/core"
	"tableau/internal/faults"
	"tableau/internal/planner"
)

// Config sizes the fleet.
type Config struct {
	// Hosts is the number of simulated hosts; Cores the guest cores per
	// host; SlotsPerHost the VM slots per host (slot 0 is the resident
	// system VM). SlotsPerHost defaults to 2*Cores+4.
	Hosts, Cores, SlotsPerHost int
	// Placers is the number of logical placer partitions arrivals are
	// hashed across (default 8, clamped to Hosts). Each placer prefers
	// hosts of its home partition (host%Placers == placer), so same-host
	// contention is rare but real on the cross-partition fallback.
	Placers int
	// MaxAttempts bounds placement attempts per VM, conflicts and
	// rejects combined (default 4).
	MaxAttempts int
	// SpareHosts reserves that many hosts at the tail of the id space
	// as a spare pool: placers only consider them for VMs that have
	// already been rejected somewhere (the fleet-level shed-retry).
	// When a regular host dies, a spare is promoted to replace it.
	SpareHosts int
	// Cache, when set, is shared by every host's planner — the paper's
	// central table cache at fleet scale.
	Cache *planner.Cache
	// ForEach, when set, runs fn(i) for i in [0,n) with slot-indexed
	// determinism (experiments.ForEach); nil runs serially. The arbiter
	// only relies on per-cell isolation, never on execution order, so
	// any such runner keeps batch placement deterministic.
	ForEach func(n int, fn func(i int) error) error
	// Journal attaches a durable epoch journal (behind an armable crash
	// store) to every host, making each Controller.Flush a journaled
	// commit — the substrate of ArmCrashes/Failover. Off by default:
	// fault-free experiments keep their memory profile.
	Journal bool
}

func (c *Config) setDefaults() error {
	if c.Hosts <= 0 || c.Cores <= 0 {
		return fmt.Errorf("fleet: config needs Hosts and Cores >= 1, got %d/%d", c.Hosts, c.Cores)
	}
	if c.SlotsPerHost == 0 {
		c.SlotsPerHost = 2*c.Cores + 4
	}
	if c.Placers <= 0 {
		c.Placers = 8
	}
	if c.Placers > c.Hosts {
		c.Placers = c.Hosts
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.SpareHosts < 0 || c.SpareHosts >= c.Hosts {
		return fmt.Errorf("fleet: SpareHosts %d out of range for %d hosts", c.SpareHosts, c.Hosts)
	}
	return nil
}

// Arbiter is the fleet's shared-state placement layer: N hosts, a
// registry of which host holds which VM, and the optimistic
// snapshot/commit/retry protocol placers run against the hosts.
type Arbiter struct {
	cfg    Config
	hosts  []*Host
	seqCtr atomic.Uint64

	mu       sync.Mutex
	closed   bool
	vmHost   map[string]int
	order    []string // live VM names, deterministic under deterministic traffic
	orderPos map[string]int
	stats    Stats

	// UnsafeDoublePlace is a mutation-smoke defect switch: each
	// PlaceBatch also commits its first placed VM to a second host
	// behind the registry's back. The cross-host continuity oracle must
	// catch the VM live on two hosts. Never set outside tests.
	UnsafeDoublePlace bool
	// UnsafeEvacuateBEFirst is a mutation-smoke defect switch: Failover
	// evacuates the best-effort wave before the latency-sensitive one,
	// inverting the LS-first displacement guarantee. The cross-seam
	// oracle must convict it. Never set outside tests.
	UnsafeEvacuateBEFirst bool
}

// New builds the fleet: Hosts hosts, each planned and wrapped in its
// own Controller (fanned out through Config.ForEach — with a shared
// cache the first host's initial plan serves all of them).
func New(cfg Config) (*Arbiter, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	a := &Arbiter{
		cfg:      cfg,
		hosts:    make([]*Host, cfg.Hosts),
		vmHost:   make(map[string]int),
		orderPos: make(map[string]int),
	}
	err := a.forEach(cfg.Hosts, func(i int) error {
		h, err := newHost(i, cfg.Cores, cfg.SlotsPerHost, cfg.Cache, a.nextSeq,
			i >= cfg.Hosts-cfg.SpareHosts, cfg.Journal)
		if err != nil {
			return err
		}
		a.hosts[i] = h
		return nil
	})
	if err != nil {
		return nil, err
	}
	return a, nil
}

func (a *Arbiter) nextSeq() uint64 { return a.seqCtr.Add(1) }

func (a *Arbiter) forEach(n int, fn func(i int) error) error {
	if a.cfg.ForEach != nil {
		return a.cfg.ForEach(n, fn)
	}
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

func (a *Arbiter) isClosed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.closed
}

// Hosts returns the fleet's hosts in id order.
func (a *Arbiter) Hosts() []*Host { return append([]*Host(nil), a.hosts...) }

// Stats returns the cumulative placement counters.
func (a *Arbiter) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Assignments returns a copy of the live VM -> host registry.
func (a *Arbiter) Assignments() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.vmHost))
	for k, v := range a.vmHost {
		out[k] = v
	}
	return out
}

// PlacedNames returns the live VM names in a deterministic order (the
// registry's insertion order with swap-removals — stable across runs
// for the same deterministic op sequence).
func (a *Arbiter) PlacedNames() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.order...)
}

// ControllerTotals sums the hosts' controller counters.
func (a *Arbiter) ControllerTotals() core.Stats {
	var t core.Stats
	for _, h := range a.hosts {
		s := h.ControllerStats()
		t.Flushes += s.Flushes
		t.Transitions += s.Transitions
		t.OpsCoalesced += s.OpsCoalesced
		t.Rejections += s.Rejections
		t.Rollbacks += s.Rollbacks
		t.PlannerCalls += s.PlannerCalls
	}
	return t
}

// Close shuts every host down. Idempotent, and safe against concurrent
// Place/Depart/PlaceBatch: in-flight commits serialize against each
// host's lock, and operations arriving after the close observe
// ErrClosed (or a per-VM controller-closed reject they retry into
// Unplaced).
func (a *Arbiter) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.mu.Unlock()
	var first error
	for _, h := range a.hosts {
		if err := h.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ArmCrashes arms a seeded crash storm: each victim host's journal
// store gets its crash plan. Hosts that are not Up (killed by an
// earlier storm and not yet recovered) are skipped; the count of hosts
// actually armed is returned.
func (a *Arbiter) ArmCrashes(plan faults.HostCrashPlan) (int, error) {
	if err := plan.Validate(len(a.hosts)); err != nil {
		return 0, err
	}
	armed := 0
	for _, c := range plan.Crashes {
		err := a.hosts[c.Host].Arm(c.Plan)
		switch {
		case err == nil:
			armed++
		case errors.Is(err, ErrHostDown) || errors.Is(err, faults.ErrCrashed):
			// Already down or dead: the storm passes it by.
		default:
			return armed, err
		}
	}
	return armed, nil
}

func (a *Arbiter) snapshotAll() []Snapshot {
	snaps := make([]Snapshot, len(a.hosts))
	for i, h := range a.hosts {
		snaps[i] = h.Snapshot()
	}
	return snaps
}

// hostView is a placer's private, virtually-decremented copy of the
// advisory headroom.
type hostView struct {
	freeSlots int
	freePPM   int64
	up        bool
	spare     bool
}

func viewsOf(snaps []Snapshot) []hostView {
	views := make([]hostView, len(snaps))
	for i, s := range snaps {
		views[i] = hostView{
			freeSlots: s.FreeSlots, freePPM: s.FreePPM,
			up: s.State == HostUp, spare: s.Spare,
		}
	}
	return views
}

// pend is one VM still looking for a host.
type pend struct {
	vm       VM
	attempts int
	spareOK  bool // rejected somewhere: eligible for the spare pool
	banned   map[int]bool
	host     int // placed host (-1 until placed)
}

func newPend(vm VM) *pend { return &pend{vm: vm, host: -1} }

func (p *pend) ban(host int) {
	if p.banned == nil {
		p.banned = make(map[int]bool)
	}
	p.banned[host] = true
	p.spareOK = true
}

// pickHost chooses a target host from the placer's view, worst-fit
// (most free reserved headroom, ties to the lowest id) so load spreads:
//  1. home-partition regular hosts the headroom says fit,
//  2. any regular host that fits (the cross-partition fallback — where
//     placers meet and conflicts happen),
//  3. the spare pool, for VMs already rejected somewhere,
//  4. the pressure valve: the emptiest unbanned host even though the
//     advisory headroom says it won't fit — the host's admission check
//     is the authoritative gate, and near-full fleets must probe it
//     rather than give up on an estimate.
//
// Only Up hosts are eligible; down and dead hosts take no traffic.
// Returns -1 when no unbanned host has a free slot.
func (a *Arbiter) pickHost(views []hostView, pd *pend, placer int) int {
	need := pd.vm.ppm()
	pick := func(spare, homeOnly, mustFit bool) int {
		best, bestFree := -1, int64(-1)
		for h := range views {
			v := &views[h]
			if !v.up || v.spare != spare || v.freeSlots <= 0 || pd.banned[h] {
				continue
			}
			if homeOnly && h%a.cfg.Placers != placer {
				continue
			}
			if mustFit && v.freePPM < need {
				continue
			}
			if v.freePPM > bestFree {
				best, bestFree = h, v.freePPM
			}
		}
		return best
	}
	if h := pick(false, true, true); h >= 0 {
		return h
	}
	if h := pick(false, false, true); h >= 0 {
		return h
	}
	if pd.spareOK {
		if h := pick(true, false, true); h >= 0 {
			return h
		}
	}
	if h := pick(false, false, false); h >= 0 {
		return h
	}
	if pd.spareOK {
		if h := pick(true, false, false); h >= 0 {
			return h
		}
	}
	return -1
}

// placeWork drives pends through the optimistic placement protocol
// until each is placed, unplaced, or out of attempts. It returns the
// batch's counters without folding them into the cumulative stats —
// that is the caller's job (PlaceBatch adds them directly; Failover
// merges them with the failover accounting first). Placed pends carry
// their host in pd.host.
func (a *Arbiter) placeWork(work []*pend) (Stats, error) {
	var bs Stats
	for len(work) > 0 {
		snaps := a.snapshotAll()
		base := viewsOf(snaps)

		parts := make([][]*pend, a.cfg.Placers)
		for _, pd := range work {
			p := partition(pd.vm.Name, a.cfg.Placers)
			parts[p] = append(parts[p], pd)
		}
		type decision struct {
			pd   *pend
			host int
		}
		decisions := make([][]decision, a.cfg.Placers)
		_ = a.forEach(a.cfg.Placers, func(p int) error {
			view := append([]hostView(nil), base...)
			for _, pd := range parts[p] {
				h := a.pickHost(view, pd, p)
				decisions[p] = append(decisions[p], decision{pd, h})
				if h >= 0 {
					view[h].freeSlots--
					view[h].freePPM -= pd.vm.ppm()
				}
			}
			return nil
		})

		// Group decisions into per-(host, placer) commit batches. The
		// outer placer loop ascends, so each host's batch list is
		// placer-ordered — the deterministic stand-in for arrival order.
		type hostBatch struct {
			pends    []*pend
			result   CommitResult
			conflict bool
			down     bool
			err      error
		}
		byHost := make([][]*hostBatch, len(a.hosts))
		var touched []int
		var noHost []*pend
		for p := 0; p < a.cfg.Placers; p++ {
			batchOf := make(map[int]*hostBatch)
			for _, d := range decisions[p] {
				if d.host < 0 {
					noHost = append(noHost, d.pd)
					continue
				}
				b := batchOf[d.host]
				if b == nil {
					b = &hostBatch{}
					batchOf[d.host] = b
					if len(byHost[d.host]) == 0 {
						touched = append(touched, d.host)
					}
					byHost[d.host] = append(byHost[d.host], b)
				}
				b.pends = append(b.pends, d.pd)
			}
		}

		_ = a.forEach(len(touched), func(i int) error {
			h := touched[i]
			for _, b := range byHost[h] {
				batch := make([]VM, len(b.pends))
				for j, pd := range b.pends {
					batch[j] = pd.vm
				}
				res, err := a.hosts[h].CommitPlacements(snaps[h].Version, batch)
				switch {
				case errors.Is(err, ErrConflict):
					b.conflict = true
				case errors.Is(err, ErrHostDown):
					b.down = true
				case err != nil:
					b.err = err
				default:
					b.result = res
				}
			}
			return nil
		})

		// Aggregate in deterministic order: hosts ascending, batches
		// placer-ordered, pends in decision order.
		var next []*pend
		retry := func(pd *pend) {
			pd.attempts++
			if pd.attempts < a.cfg.MaxAttempts {
				bs.Retries++
				next = append(next, pd)
			} else {
				bs.Unplaced++
			}
		}
		a.mu.Lock()
		for h := range byHost {
			for _, b := range byHost[h] {
				if b.err != nil {
					a.mu.Unlock()
					return bs, b.err
				}
				if b.conflict || b.down {
					// A down host resolves in-flight commits exactly like a
					// conflict: nothing placed (even a journal-durable ghost
					// is deactivated before the host rejoins), so the placer
					// refreshes and retries elsewhere.
					for _, pd := range b.pends {
						bs.Conflicts++
						if b.down {
							pd.ban(h)
						}
						retry(pd)
					}
					continue
				}
				placed := make(map[string]bool, len(b.result.Placed))
				for _, name := range b.result.Placed {
					placed[name] = true
				}
				rejects := make(map[string]Reject, len(b.result.Rejects))
				for _, rj := range b.result.Rejects {
					rejects[rj.VM.Name] = rj
				}
				for _, pd := range b.pends {
					if placed[pd.vm.Name] {
						bs.Placed++
						if snaps[h].Spare {
							bs.SparePlacements++
						}
						pd.host = h
						a.recordPlacedLocked(pd.vm.Name, h)
						continue
					}
					if rejects[pd.vm.Name].NoSlot {
						bs.SlotRejects++
					} else {
						bs.AdmissionRejects++
					}
					pd.ban(h)
					retry(pd)
				}
				// Best-effort guests the host shed to admit this batch are
				// gone from the host; drop them from the registry. Runs
				// after the pend loop so a VM placed and shed in the same
				// commit is recorded and then removed.
				for _, name := range b.result.Shed {
					a.removePlacedLocked(name)
					bs.Shed++
				}
			}
		}
		a.mu.Unlock()
		// VMs no unbanned host could even hold a slot for are terminal.
		bs.Unplaced += int64(len(noHost))
		work = next
	}
	return bs, nil
}

// PlaceBatch places a batch of VMs through the optimistic protocol,
// deterministically at any parallelism. Each round freezes one
// snapshot of every host, partitions the still-unplaced VMs across the
// placers (fanned out via Config.ForEach), and lets every placer pick
// targets against its own virtually-decremented view; then the chosen
// placements commit per host, placer-ordered. The first committer on a
// host wins; later placers' batches named the round-start version, so
// they lose with ErrConflict and retry next round against a fresh
// snapshot — the same protocol concurrent placers run, with the race
// made reproducible. Rejected VMs ban the host, gain spare-pool
// eligibility, and retry; MaxAttempts bounds every retry path.
func (a *Arbiter) PlaceBatch(vms []VM) (Stats, error) {
	if a.isClosed() {
		return Stats{}, ErrClosed
	}
	work := make([]*pend, len(vms))
	for i, vm := range vms {
		work[i] = newPend(vm)
	}
	bs, err := a.placeWork(work)
	if err != nil {
		return bs, err
	}
	a.mu.Lock()
	a.stats.add(bs)
	a.mu.Unlock()
	if a.UnsafeDoublePlace {
		for _, pd := range work {
			if pd.host >= 0 {
				a.doublePlace(pd.vm, pd.host)
				break
			}
		}
	}
	return bs, nil
}

// doublePlace implements the UnsafeDoublePlace defect: commit vm to a
// second host without telling the registry.
func (a *Arbiter) doublePlace(vm VM, not int) {
	for h := range a.hosts {
		if h == not {
			continue
		}
		snap := a.hosts[h].Snapshot()
		if snap.State != HostUp || snap.FreeSlots == 0 {
			continue
		}
		if res, err := a.hosts[h].CommitPlacements(snap.Version, []VM{vm}); err == nil && len(res.Placed) == 1 {
			return
		}
	}
}

// DepartBatch tears the named VMs down on their owning hosts,
// deterministically at any parallelism: departures group by owner and
// each host's group commits with a refresh-on-conflict loop (conflicts
// cannot occur from DepartBatch itself — one committer per host — but
// the loop keeps the protocol uniform). Every name must be live.
// Departures whose owning host is down are deferred: the VMs stay
// registered (removing them without a host commit would fork the
// ledger from the registry) until Failover resolves the host.
func (a *Arbiter) DepartBatch(names []string) (Stats, error) {
	if a.isClosed() {
		return Stats{}, ErrClosed
	}
	var bs Stats
	a.mu.Lock()
	byHost := make(map[int][]string)
	var touched []int
	for _, name := range names {
		h, ok := a.vmHost[name]
		if !ok {
			a.mu.Unlock()
			return bs, fmt.Errorf("fleet: departure of unknown VM %q", name)
		}
		if len(byHost[h]) == 0 {
			touched = append(touched, h)
		}
		byHost[h] = append(byHost[h], name)
	}
	a.mu.Unlock()

	conflicts := make([]int64, len(touched))
	deferred := make([]bool, len(touched))
	err := a.forEach(len(touched), func(i int) error {
		h := touched[i]
		for attempt := 0; ; attempt++ {
			snap := a.hosts[h].Snapshot()
			if snap.State != HostUp {
				deferred[i] = true
				return nil
			}
			_, err := a.hosts[h].CommitDepartures(snap.Version, byHost[h])
			if errors.Is(err, ErrConflict) && attempt < 8 {
				conflicts[i]++
				continue
			}
			if errors.Is(err, ErrHostDown) {
				deferred[i] = true
				return nil
			}
			return err
		}
	})
	if err != nil {
		return bs, err
	}
	a.mu.Lock()
	for i, h := range touched {
		bs.Conflicts += conflicts[i]
		bs.Retries += conflicts[i]
		if deferred[i] {
			bs.DepartsDeferred += int64(len(byHost[h]))
			continue
		}
		for _, name := range byHost[h] {
			a.removePlacedLocked(name)
			bs.Departed++
		}
	}
	a.stats.add(bs)
	a.mu.Unlock()
	return bs, nil
}

// Failover sweeps the fleet for down hosts and resolves each one:
// recover — replay the surviving journal image via core.Recover,
// reconcile the crash seam (ghost deactivations, journal-committed
// departures), and rejoin with a bumped version — or, when no image
// survived (fail-stop) or the replay failed, declare the host dead and
// evacuate. Evacuation re-places the displaced guests through the
// normal protocol in LS-first waves (every latency-sensitive evacuee
// is offered a slot before any best-effort one), with immediate
// spare-pool eligibility, spare promotion to backfill dead regular
// hosts, and best-effort sheds allowed under pressure; evacuees no
// host can take are recorded as Lost on the dead host's evacuation
// seam — every displaced VM ends live on exactly one host, explicitly
// shed, or explicitly lost. The sweep loops until no host is down, so
// hosts crashed by the evacuation traffic itself are resolved too.
func (a *Arbiter) Failover() (Stats, error) {
	if a.isClosed() {
		return Stats{}, ErrClosed
	}
	var bs Stats
	for {
		var downs []*Host
		for _, h := range a.hosts {
			if h.State() == HostDown {
				downs = append(downs, h)
			}
		}
		if len(downs) == 0 {
			break
		}
		type evacuation struct {
			host   *Host
			seq    uint64
			ls, be []*pend
		}
		var evacs []*evacuation
		for _, h := range downs {
			bs.HostsDown++
			guests := h.LiveGuests()
			bs.Displaced += int64(len(guests))
			if freed, err := h.Recover(); err == nil {
				bs.Recovered++
				a.mu.Lock()
				for _, name := range freed {
					// The journal proves the departure committed before the
					// crash; the crash just swallowed the ack.
					a.removePlacedLocked(name)
					bs.Departed++
				}
				a.mu.Unlock()
				continue
			}
			// No surviving image, or the replay failed: dead. A regular
			// host's death promotes the lowest-id healthy spare.
			wasSpare := h.Spare()
			if err := h.markDead(); err != nil {
				return bs, err
			}
			if !wasSpare {
				a.promoteSpare()
			}
			ev := &evacuation{host: h, seq: a.nextSeq()}
			a.mu.Lock()
			for _, vm := range guests {
				a.removePlacedLocked(vm.Name)
				pd := newPend(vm)
				pd.spareOK = true
				if vm.Class == planner.BE {
					ev.be = append(ev.be, pd)
				} else {
					ev.ls = append(ev.ls, pd)
				}
			}
			a.mu.Unlock()
			evacs = append(evacs, ev)
		}

		// Two strict waves across all of this pass's dead hosts: every
		// LS evacuee is placed (or exhausted) before any BE evacuee is
		// offered a slot, so the displacement order is part of the
		// fleet's guarantee, not an accident of traversal.
		var first, second []*pend
		for _, ev := range evacs {
			first = append(first, ev.ls...)
			second = append(second, ev.be...)
		}
		if a.UnsafeEvacuateBEFirst {
			first, second = second, first
		}
		for _, wave := range [][]*pend{first, second} {
			if len(wave) == 0 {
				continue
			}
			ws, err := a.placeWork(wave)
			if err != nil {
				return bs, err
			}
			bs.add(ws)
			bs.Evacuated += ws.Placed
			bs.EvacSheds += ws.Shed
		}
		for _, ev := range evacs {
			var evacLS, evacBE, lost []string
			for _, pd := range ev.ls {
				evacLS = append(evacLS, pd.vm.Name)
				if pd.host < 0 {
					lost = append(lost, pd.vm.Name)
				}
			}
			for _, pd := range ev.be {
				evacBE = append(evacBE, pd.vm.Name)
				if pd.host < 0 {
					lost = append(lost, pd.vm.Name)
				}
			}
			bs.Lost += int64(len(lost))
			ev.host.finishEvacuate(ev.seq, evacLS, evacBE, lost)
		}
	}
	a.mu.Lock()
	a.stats.add(bs)
	a.mu.Unlock()
	return bs, nil
}

// promoteSpare moves the lowest-id healthy spare into the regular
// pool, replacing a dead regular host.
func (a *Arbiter) promoteSpare() {
	for _, h := range a.hosts {
		if h.Spare() && h.State() == HostUp {
			h.promote()
			return
		}
	}
}

// Place runs one VM through the live optimistic protocol: snapshot,
// pick, commit, and on conflict or reject refresh and retry, up to
// MaxAttempts. Unlike PlaceBatch this races genuinely against other
// goroutines — it is the arbiter's concurrent API (and what the -race
// stress tests hammer). Returns the placed host.
func (a *Arbiter) Place(vm VM) (int, error) {
	if a.isClosed() {
		return -1, ErrClosed
	}
	pd := newPend(vm)
	p := partition(vm.Name, a.cfg.Placers)
	var bs Stats
	defer func() {
		a.mu.Lock()
		a.stats.add(bs)
		a.mu.Unlock()
	}()
	for pd.attempts < a.cfg.MaxAttempts {
		snaps := a.snapshotAll()
		h := a.pickHost(viewsOf(snaps), pd, p)
		if h < 0 {
			break
		}
		res, err := a.hosts[h].CommitPlacements(snaps[h].Version, []VM{vm})
		if errors.Is(err, ErrConflict) || errors.Is(err, ErrHostDown) {
			bs.Conflicts++
			if errors.Is(err, ErrHostDown) {
				pd.ban(h)
			}
			pd.attempts++
			if pd.attempts < a.cfg.MaxAttempts {
				bs.Retries++
			}
			continue
		}
		if err != nil {
			return -1, err
		}
		if len(res.Placed) == 1 {
			bs.Placed++
			if snaps[h].Spare {
				bs.SparePlacements++
			}
			a.mu.Lock()
			a.recordPlacedLocked(vm.Name, h)
			for _, name := range res.Shed {
				a.removePlacedLocked(name)
				bs.Shed++
			}
			a.mu.Unlock()
			return h, nil
		}
		if res.Rejects[0].NoSlot {
			bs.SlotRejects++
		} else {
			bs.AdmissionRejects++
		}
		pd.ban(h)
		pd.attempts++
		if pd.attempts < a.cfg.MaxAttempts {
			bs.Retries++
		}
	}
	bs.Unplaced++
	return -1, ErrUnplaced
}

// Depart tears one VM down through the live protocol, retrying commits
// that lose to concurrent placements on the same host. A departure
// whose owning host is down is deferred (counted, ErrHostDown): the VM
// stays registered until Failover resolves the host.
func (a *Arbiter) Depart(name string) error {
	if a.isClosed() {
		return ErrClosed
	}
	a.mu.Lock()
	h, ok := a.vmHost[name]
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: departure of unknown VM %q", name)
	}
	for attempt := 0; ; attempt++ {
		snap := a.hosts[h].Snapshot()
		if snap.State != HostUp {
			a.mu.Lock()
			a.stats.DepartsDeferred++
			a.mu.Unlock()
			return ErrHostDown
		}
		_, err := a.hosts[h].CommitDepartures(snap.Version, []string{name})
		if errors.Is(err, ErrConflict) {
			if attempt >= 64 {
				return fmt.Errorf("fleet: departure of %q starved by conflicts", name)
			}
			a.mu.Lock()
			a.stats.Conflicts++
			a.stats.Retries++
			a.mu.Unlock()
			continue
		}
		if errors.Is(err, ErrHostDown) {
			a.mu.Lock()
			a.stats.DepartsDeferred++
			a.mu.Unlock()
			return ErrHostDown
		}
		if err != nil {
			return err
		}
		break
	}
	a.mu.Lock()
	a.removePlacedLocked(name)
	a.stats.Departed++
	a.mu.Unlock()
	return nil
}

func (a *Arbiter) recordPlacedLocked(name string, host int) {
	a.vmHost[name] = host
	a.orderPos[name] = len(a.order)
	a.order = append(a.order, name)
}

func (a *Arbiter) removePlacedLocked(name string) {
	delete(a.vmHost, name)
	pos, ok := a.orderPos[name]
	if !ok {
		return
	}
	last := len(a.order) - 1
	moved := a.order[last]
	a.order[pos] = moved
	a.orderPos[moved] = pos
	a.order = a.order[:last]
	delete(a.orderPos, name)
}
