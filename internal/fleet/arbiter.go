package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"tableau/internal/core"
	"tableau/internal/planner"
)

// Config sizes the fleet.
type Config struct {
	// Hosts is the number of simulated hosts; Cores the guest cores per
	// host; SlotsPerHost the VM slots per host (slot 0 is the resident
	// system VM). SlotsPerHost defaults to 2*Cores+4.
	Hosts, Cores, SlotsPerHost int
	// Placers is the number of logical placer partitions arrivals are
	// hashed across (default 8, clamped to Hosts). Each placer prefers
	// hosts of its home partition (host%Placers == placer), so same-host
	// contention is rare but real on the cross-partition fallback.
	Placers int
	// MaxAttempts bounds placement attempts per VM, conflicts and
	// rejects combined (default 4).
	MaxAttempts int
	// SpareHosts reserves that many hosts at the tail of the id space
	// as a spare pool: placers only consider them for VMs that have
	// already been rejected somewhere (the fleet-level shed-retry).
	SpareHosts int
	// Cache, when set, is shared by every host's planner — the paper's
	// central table cache at fleet scale.
	Cache *planner.Cache
	// ForEach, when set, runs fn(i) for i in [0,n) with slot-indexed
	// determinism (experiments.ForEach); nil runs serially. The arbiter
	// only relies on per-cell isolation, never on execution order, so
	// any such runner keeps batch placement deterministic.
	ForEach func(n int, fn func(i int) error) error
}

func (c *Config) setDefaults() error {
	if c.Hosts <= 0 || c.Cores <= 0 {
		return fmt.Errorf("fleet: config needs Hosts and Cores >= 1, got %d/%d", c.Hosts, c.Cores)
	}
	if c.SlotsPerHost == 0 {
		c.SlotsPerHost = 2*c.Cores + 4
	}
	if c.Placers <= 0 {
		c.Placers = 8
	}
	if c.Placers > c.Hosts {
		c.Placers = c.Hosts
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.SpareHosts < 0 || c.SpareHosts >= c.Hosts {
		return fmt.Errorf("fleet: SpareHosts %d out of range for %d hosts", c.SpareHosts, c.Hosts)
	}
	return nil
}

// Arbiter is the fleet's shared-state placement layer: N hosts, a
// registry of which host holds which VM, and the optimistic
// snapshot/commit/retry protocol placers run against the hosts.
type Arbiter struct {
	cfg     Config
	hosts   []*Host
	seqCtr  atomic.Uint64

	mu       sync.Mutex
	vmHost   map[string]int
	order    []string // live VM names, deterministic under deterministic traffic
	orderPos map[string]int
	stats    Stats

	// UnsafeDoublePlace is a mutation-smoke defect switch: each
	// PlaceBatch also commits its first placed VM to a second host
	// behind the registry's back. The cross-host continuity oracle must
	// catch the VM live on two hosts. Never set outside tests.
	UnsafeDoublePlace bool
}

// New builds the fleet: Hosts hosts, each planned and wrapped in its
// own Controller (fanned out through Config.ForEach — with a shared
// cache the first host's initial plan serves all of them).
func New(cfg Config) (*Arbiter, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	a := &Arbiter{
		cfg:      cfg,
		hosts:    make([]*Host, cfg.Hosts),
		vmHost:   make(map[string]int),
		orderPos: make(map[string]int),
	}
	err := a.forEach(cfg.Hosts, func(i int) error {
		h, err := newHost(i, cfg.Cores, cfg.SlotsPerHost, cfg.Cache, a.nextSeq)
		if err != nil {
			return err
		}
		a.hosts[i] = h
		return nil
	})
	if err != nil {
		return nil, err
	}
	return a, nil
}

func (a *Arbiter) nextSeq() uint64 { return a.seqCtr.Add(1) }

func (a *Arbiter) forEach(n int, fn func(i int) error) error {
	if a.cfg.ForEach != nil {
		return a.cfg.ForEach(n, fn)
	}
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

// regularHosts returns the number of non-spare hosts.
func (a *Arbiter) regularHosts() int { return a.cfg.Hosts - a.cfg.SpareHosts }

// Hosts returns the fleet's hosts in id order.
func (a *Arbiter) Hosts() []*Host { return append([]*Host(nil), a.hosts...) }

// Stats returns the cumulative placement counters.
func (a *Arbiter) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Assignments returns a copy of the live VM -> host registry.
func (a *Arbiter) Assignments() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.vmHost))
	for k, v := range a.vmHost {
		out[k] = v
	}
	return out
}

// PlacedNames returns the live VM names in a deterministic order (the
// registry's insertion order with swap-removals — stable across runs
// for the same deterministic op sequence).
func (a *Arbiter) PlacedNames() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.order...)
}

// ControllerTotals sums the hosts' controller counters.
func (a *Arbiter) ControllerTotals() core.Stats {
	var t core.Stats
	for _, h := range a.hosts {
		s := h.ControllerStats()
		t.Flushes += s.Flushes
		t.Transitions += s.Transitions
		t.OpsCoalesced += s.OpsCoalesced
		t.Rejections += s.Rejections
		t.Rollbacks += s.Rollbacks
		t.PlannerCalls += s.PlannerCalls
	}
	return t
}

// Close shuts every host down.
func (a *Arbiter) Close() error {
	var first error
	for _, h := range a.hosts {
		if err := h.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (a *Arbiter) snapshotAll() []Snapshot {
	snaps := make([]Snapshot, len(a.hosts))
	for i, h := range a.hosts {
		snaps[i] = h.Snapshot()
	}
	return snaps
}

// hostView is a placer's private, virtually-decremented copy of the
// advisory headroom.
type hostView struct {
	freeSlots int
	freePPM   int64
}

func viewsOf(snaps []Snapshot) []hostView {
	views := make([]hostView, len(snaps))
	for i, s := range snaps {
		views[i] = hostView{freeSlots: s.FreeSlots, freePPM: s.FreePPM}
	}
	return views
}

// pend is one VM still looking for a host.
type pend struct {
	vm       VM
	attempts int
	spareOK  bool // rejected somewhere: eligible for the spare pool
	banned   map[int]bool
}

func (p *pend) ban(host int) {
	if p.banned == nil {
		p.banned = make(map[int]bool)
	}
	p.banned[host] = true
	p.spareOK = true
}

// pickHost chooses a target host from the placer's view, worst-fit
// (most free reserved headroom, ties to the lowest id) so load spreads:
//  1. home-partition hosts the headroom says fit,
//  2. any regular host that fits (the cross-partition fallback — where
//     placers meet and conflicts happen),
//  3. the spare pool, for VMs already rejected somewhere,
//  4. the pressure valve: the emptiest unbanned host even though the
//     advisory headroom says it won't fit — the host's admission check
//     is the authoritative gate, and near-full fleets must probe it
//     rather than give up on an estimate.
//
// Returns -1 when no unbanned host has a free slot.
func (a *Arbiter) pickHost(views []hostView, pd *pend, placer int) int {
	need := pd.vm.ppm()
	nReg := a.regularHosts()
	pick := func(lo, hi int, homeOnly, mustFit bool) int {
		best, bestFree := -1, int64(-1)
		for h := lo; h < hi; h++ {
			v := &views[h]
			if v.freeSlots <= 0 || pd.banned[h] {
				continue
			}
			if homeOnly && h%a.cfg.Placers != placer {
				continue
			}
			if mustFit && v.freePPM < need {
				continue
			}
			if v.freePPM > bestFree {
				best, bestFree = h, v.freePPM
			}
		}
		return best
	}
	if h := pick(0, nReg, true, true); h >= 0 {
		return h
	}
	if h := pick(0, nReg, false, true); h >= 0 {
		return h
	}
	if pd.spareOK {
		if h := pick(nReg, len(views), false, true); h >= 0 {
			return h
		}
	}
	if h := pick(0, nReg, false, false); h >= 0 {
		return h
	}
	if pd.spareOK {
		if h := pick(nReg, len(views), false, false); h >= 0 {
			return h
		}
	}
	return -1
}

// PlaceBatch places a batch of VMs through the optimistic protocol,
// deterministically at any parallelism. Each round freezes one
// snapshot of every host, partitions the still-unplaced VMs across the
// placers (fanned out via Config.ForEach), and lets every placer pick
// targets against its own virtually-decremented view; then the chosen
// placements commit per host, placer-ordered. The first committer on a
// host wins; later placers' batches named the round-start version, so
// they lose with ErrConflict and retry next round against a fresh
// snapshot — the same protocol concurrent placers run, with the race
// made reproducible. Rejected VMs ban the host, gain spare-pool
// eligibility, and retry; MaxAttempts bounds every retry path.
func (a *Arbiter) PlaceBatch(vms []VM) (Stats, error) {
	work := make([]*pend, len(vms))
	for i, vm := range vms {
		work[i] = &pend{vm: vm}
	}
	var bs Stats
	var firstPlaced *pend
	firstHost := -1
	for len(work) > 0 {
		snaps := a.snapshotAll()
		base := viewsOf(snaps)

		parts := make([][]*pend, a.cfg.Placers)
		for _, pd := range work {
			p := partition(pd.vm.Name, a.cfg.Placers)
			parts[p] = append(parts[p], pd)
		}
		type decision struct {
			pd   *pend
			host int
		}
		decisions := make([][]decision, a.cfg.Placers)
		_ = a.forEach(a.cfg.Placers, func(p int) error {
			view := append([]hostView(nil), base...)
			for _, pd := range parts[p] {
				h := a.pickHost(view, pd, p)
				decisions[p] = append(decisions[p], decision{pd, h})
				if h >= 0 {
					view[h].freeSlots--
					view[h].freePPM -= pd.vm.ppm()
				}
			}
			return nil
		})

		// Group decisions into per-(host, placer) commit batches. The
		// outer placer loop ascends, so each host's batch list is
		// placer-ordered — the deterministic stand-in for arrival order.
		type hostBatch struct {
			pends    []*pend
			result   CommitResult
			conflict bool
			err      error
		}
		byHost := make([][]*hostBatch, len(a.hosts))
		var touched []int
		var noHost []*pend
		for p := 0; p < a.cfg.Placers; p++ {
			batchOf := make(map[int]*hostBatch)
			for _, d := range decisions[p] {
				if d.host < 0 {
					noHost = append(noHost, d.pd)
					continue
				}
				b := batchOf[d.host]
				if b == nil {
					b = &hostBatch{}
					batchOf[d.host] = b
					if len(byHost[d.host]) == 0 {
						touched = append(touched, d.host)
					}
					byHost[d.host] = append(byHost[d.host], b)
				}
				b.pends = append(b.pends, d.pd)
			}
		}

		_ = a.forEach(len(touched), func(i int) error {
			h := touched[i]
			for _, b := range byHost[h] {
				batch := make([]VM, len(b.pends))
				for j, pd := range b.pends {
					batch[j] = pd.vm
				}
				res, err := a.hosts[h].CommitPlacements(snaps[h].Version, batch)
				switch {
				case errors.Is(err, ErrConflict):
					b.conflict = true
				case err != nil:
					b.err = err
				default:
					b.result = res
				}
			}
			return nil
		})

		// Aggregate in deterministic order: hosts ascending, batches
		// placer-ordered, pends in decision order.
		var next []*pend
		retry := func(pd *pend) {
			pd.attempts++
			if pd.attempts < a.cfg.MaxAttempts {
				bs.Retries++
				next = append(next, pd)
			} else {
				bs.Unplaced++
			}
		}
		a.mu.Lock()
		for h := range byHost {
			for _, b := range byHost[h] {
				if b.err != nil {
					a.mu.Unlock()
					return bs, b.err
				}
				if b.conflict {
					for _, pd := range b.pends {
						bs.Conflicts++
						retry(pd)
					}
					continue
				}
				placed := make(map[string]bool, len(b.result.Placed))
				for _, name := range b.result.Placed {
					placed[name] = true
				}
				rejects := make(map[string]Reject, len(b.result.Rejects))
				for _, rj := range b.result.Rejects {
					rejects[rj.VM.Name] = rj
				}
				for _, pd := range b.pends {
					if placed[pd.vm.Name] {
						bs.Placed++
						if h >= a.regularHosts() {
							bs.SparePlacements++
						}
						a.recordPlacedLocked(pd.vm.Name, h)
						if firstPlaced == nil {
							firstPlaced, firstHost = pd, h
						}
						continue
					}
					if rejects[pd.vm.Name].NoSlot {
						bs.SlotRejects++
					} else {
						bs.AdmissionRejects++
					}
					pd.ban(h)
					retry(pd)
				}
				// Best-effort guests the host shed to admit this batch are
				// gone from the host; drop them from the registry. Runs
				// after the pend loop so a VM placed and shed in the same
				// commit is recorded and then removed.
				for _, name := range b.result.Shed {
					a.removePlacedLocked(name)
					bs.Shed++
				}
			}
		}
		a.mu.Unlock()
		// VMs no unbanned host could even hold a slot for are terminal.
		bs.Unplaced += int64(len(noHost))
		work = next
	}
	a.mu.Lock()
	a.stats.add(bs)
	a.mu.Unlock()
	if a.UnsafeDoublePlace && firstPlaced != nil {
		a.doublePlace(firstPlaced.vm, firstHost)
	}
	return bs, nil
}

// doublePlace implements the UnsafeDoublePlace defect: commit vm to a
// second host without telling the registry.
func (a *Arbiter) doublePlace(vm VM, not int) {
	for h := range a.hosts {
		if h == not {
			continue
		}
		snap := a.hosts[h].Snapshot()
		if snap.FreeSlots == 0 {
			continue
		}
		if res, err := a.hosts[h].CommitPlacements(snap.Version, []VM{vm}); err == nil && len(res.Placed) == 1 {
			return
		}
	}
}

// DepartBatch tears the named VMs down on their owning hosts,
// deterministically at any parallelism: departures group by owner and
// each host's group commits with a refresh-on-conflict loop (conflicts
// cannot occur from DepartBatch itself — one committer per host — but
// the loop keeps the protocol uniform). Every name must be live.
func (a *Arbiter) DepartBatch(names []string) (Stats, error) {
	var bs Stats
	a.mu.Lock()
	byHost := make(map[int][]string)
	var touched []int
	for _, name := range names {
		h, ok := a.vmHost[name]
		if !ok {
			a.mu.Unlock()
			return bs, fmt.Errorf("fleet: departure of unknown VM %q", name)
		}
		if len(byHost[h]) == 0 {
			touched = append(touched, h)
		}
		byHost[h] = append(byHost[h], name)
	}
	a.mu.Unlock()

	conflicts := make([]int64, len(touched))
	err := a.forEach(len(touched), func(i int) error {
		h := touched[i]
		for attempt := 0; ; attempt++ {
			snap := a.hosts[h].Snapshot()
			_, err := a.hosts[h].CommitDepartures(snap.Version, byHost[h])
			if errors.Is(err, ErrConflict) && attempt < 8 {
				conflicts[i]++
				continue
			}
			return err
		}
	})
	if err != nil {
		return bs, err
	}
	a.mu.Lock()
	for i, h := range touched {
		bs.Conflicts += conflicts[i]
		bs.Retries += conflicts[i]
		for _, name := range byHost[h] {
			a.removePlacedLocked(name)
			bs.Departed++
		}
	}
	a.stats.add(bs)
	a.mu.Unlock()
	return bs, nil
}

// Place runs one VM through the live optimistic protocol: snapshot,
// pick, commit, and on conflict or reject refresh and retry, up to
// MaxAttempts. Unlike PlaceBatch this races genuinely against other
// goroutines — it is the arbiter's concurrent API (and what the -race
// stress tests hammer). Returns the placed host.
func (a *Arbiter) Place(vm VM) (int, error) {
	pd := &pend{vm: vm}
	p := partition(vm.Name, a.cfg.Placers)
	var bs Stats
	defer func() {
		a.mu.Lock()
		a.stats.add(bs)
		a.mu.Unlock()
	}()
	for pd.attempts < a.cfg.MaxAttempts {
		snaps := a.snapshotAll()
		h := a.pickHost(viewsOf(snaps), pd, p)
		if h < 0 {
			break
		}
		res, err := a.hosts[h].CommitPlacements(snaps[h].Version, []VM{vm})
		if errors.Is(err, ErrConflict) {
			bs.Conflicts++
			pd.attempts++
			if pd.attempts < a.cfg.MaxAttempts {
				bs.Retries++
			}
			continue
		}
		if err != nil {
			return -1, err
		}
		if len(res.Placed) == 1 {
			bs.Placed++
			if h >= a.regularHosts() {
				bs.SparePlacements++
			}
			a.mu.Lock()
			a.recordPlacedLocked(vm.Name, h)
			for _, name := range res.Shed {
				a.removePlacedLocked(name)
				bs.Shed++
			}
			a.mu.Unlock()
			return h, nil
		}
		if res.Rejects[0].NoSlot {
			bs.SlotRejects++
		} else {
			bs.AdmissionRejects++
		}
		pd.ban(h)
		pd.attempts++
		if pd.attempts < a.cfg.MaxAttempts {
			bs.Retries++
		}
	}
	bs.Unplaced++
	return -1, ErrUnplaced
}

// Depart tears one VM down through the live protocol, retrying commits
// that lose to concurrent placements on the same host.
func (a *Arbiter) Depart(name string) error {
	a.mu.Lock()
	h, ok := a.vmHost[name]
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: departure of unknown VM %q", name)
	}
	for attempt := 0; ; attempt++ {
		snap := a.hosts[h].Snapshot()
		_, err := a.hosts[h].CommitDepartures(snap.Version, []string{name})
		if errors.Is(err, ErrConflict) {
			if attempt >= 64 {
				return fmt.Errorf("fleet: departure of %q starved by conflicts", name)
			}
			a.mu.Lock()
			a.stats.Conflicts++
			a.stats.Retries++
			a.mu.Unlock()
			continue
		}
		if err != nil {
			return err
		}
		break
	}
	a.mu.Lock()
	a.removePlacedLocked(name)
	a.stats.Departed++
	a.mu.Unlock()
	return nil
}

func (a *Arbiter) recordPlacedLocked(name string, host int) {
	a.vmHost[name] = host
	a.orderPos[name] = len(a.order)
	a.order = append(a.order, name)
}

func (a *Arbiter) removePlacedLocked(name string) {
	delete(a.vmHost, name)
	pos, ok := a.orderPos[name]
	if !ok {
		return
	}
	last := len(a.order) - 1
	moved := a.order[last]
	a.order[pos] = moved
	a.orderPos[moved] = pos
	a.order = a.order[:last]
	delete(a.orderPos, name)
}
