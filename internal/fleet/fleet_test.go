package fleet

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"tableau/internal/planner"
)

func quarter() planner.Util { return planner.Util{Num: 1, Den: 4} }
func big() planner.Util     { return planner.Util{Num: 3, Den: 4} }

func testVM(name string, u planner.Util) VM {
	return VM{Name: name, Util: u, LatencyGoal: 20_000_000}
}

func testArbiter(t *testing.T, cfg Config) *Arbiter {
	t.Helper()
	if cfg.Cache == nil {
		cfg.Cache = planner.NewCache(256)
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	return a
}

func TestPlaceBatchSpreadsAndRegisters(t *testing.T) {
	a := testArbiter(t, Config{Hosts: 4, Cores: 4, Placers: 2})
	vms := make([]VM, 8)
	for i := range vms {
		vms[i] = testVM(fmt.Sprintf("vm%d", i), quarter())
	}
	bs, err := a.PlaceBatch(vms)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Placed != 8 || bs.Unplaced != 0 {
		t.Fatalf("placed %d unplaced %d, want 8/0", bs.Placed, bs.Unplaced)
	}
	asg := a.Assignments()
	if len(asg) != 8 {
		t.Fatalf("registry has %d VMs, want 8", len(asg))
	}
	live := 0
	for _, h := range a.Hosts() {
		live += h.VMs()
	}
	if live != 8 {
		t.Fatalf("hosts hold %d VMs, want 8", live)
	}
	// Worst-fit spreading: with 8 quarter-core VMs over 4 empty 4-core
	// hosts, nobody should be overloaded while another host sits empty.
	for _, h := range a.Hosts() {
		if h.VMs() == 0 {
			t.Fatalf("host %d left empty by worst-fit spreading", h.ID())
		}
	}
}

func TestCommitConflictOnStaleVersion(t *testing.T) {
	a := testArbiter(t, Config{Hosts: 1, Cores: 4, Placers: 1})
	h := a.Hosts()[0]
	snap := h.Snapshot()
	if _, err := h.CommitPlacements(snap.Version, []VM{testVM("a", quarter())}); err != nil {
		t.Fatal(err)
	}
	_, err := h.CommitPlacements(snap.Version, []VM{testVM("b", quarter())})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("stale commit returned %v, want ErrConflict", err)
	}
	// A refreshed snapshot commits fine.
	snap = h.Snapshot()
	res, err := h.CommitPlacements(snap.Version, []VM{testVM("b", quarter())})
	if err != nil || len(res.Placed) != 1 {
		t.Fatalf("refreshed commit: %v, placed %v", err, res.Placed)
	}
}

func TestAdmissionRejectSparePoolAndUnplaced(t *testing.T) {
	// Two regular 1-core hosts plus one spare. 3/4-core VMs fill the
	// regulars; the third is rejected by both authoritative admission
	// checks (advisory headroom said nothing fits — the pressure valve
	// probes anyway), sheds into the spare pool, and the fourth finds
	// the whole fleet full.
	a := testArbiter(t, Config{Hosts: 3, Cores: 1, SlotsPerHost: 6, Placers: 2, SpareHosts: 1, MaxAttempts: 4})
	bs, err := a.PlaceBatch([]VM{testVM("a", big()), testVM("b", big())})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Placed != 2 || bs.SparePlacements != 0 {
		t.Fatalf("fill: %+v, want 2 placed on regulars", bs)
	}
	bs, err = a.PlaceBatch([]VM{testVM("c", big())})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Placed != 1 || bs.SparePlacements != 1 {
		t.Fatalf("spare shed: %+v, want 1 spare placement", bs)
	}
	if bs.AdmissionRejects == 0 {
		t.Fatalf("spare shed: %+v, want admission rejects on the regulars", bs)
	}
	bs, err = a.PlaceBatch([]VM{testVM("d", big())})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Placed != 0 || bs.Unplaced != 1 {
		t.Fatalf("overflow: %+v, want 1 unplaced", bs)
	}
	if st := a.Stats(); st.Unplaced != 1 || st.SparePlacements != 1 {
		t.Fatalf("cumulative stats %+v", st)
	}
}

// TestShedAdmitsLSOverBE is the regression test for the class-blind
// shed-retry path: before tenancy classes, an LS arrival on a full
// host burned every attempt on admission rejects and came back
// ErrUnplaced even though a best-effort guest held sheddable capacity.
// Now the host sheds the BE guest — a committed, ledgered departure —
// and admits the LS VM; the shed is surfaced through CommitResult,
// the ledger, the registry, and Stats.Shed. A BE arrival past the
// same edge must still be refused: best-effort has no claim on
// anyone's slack.
func TestShedAdmitsLSOverBE(t *testing.T) {
	a := testArbiter(t, Config{Hosts: 1, Cores: 1, Placers: 1})
	if _, err := a.Place(VM{Name: "be0", Util: big(), LatencyGoal: 20_000_000, Class: planner.BE}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Place(VM{Name: "be1", Util: planner.Util{Num: 1, Den: 2}, LatencyGoal: 20_000_000, Class: planner.BE}); !errors.Is(err, ErrUnplaced) {
		t.Fatalf("BE arrival past the admission edge returned %v, want ErrUnplaced", err)
	}
	if got := a.Hosts()[0].VMs(); got != 1 {
		t.Fatalf("host holds %d VMs after the rejected BE probe, want just be0", got)
	}

	h, err := a.Place(VM{Name: "ls0", Util: planner.Util{Num: 1, Den: 2}, LatencyGoal: 20_000_000})
	if err != nil {
		t.Fatalf("LS arrival returned %v while a BE slot was sheddable", err)
	}
	if h != 0 {
		t.Fatalf("LS arrival landed on host %d, want 0", h)
	}
	asg := a.Assignments()
	if host, live := asg["ls0"]; !live || host != 0 {
		t.Fatalf("registry %v: ls0 must be live on host 0", asg)
	}
	if _, live := asg["be0"]; live {
		t.Fatalf("registry %v: shed be0 must be gone", asg)
	}
	if st := a.Stats(); st.Shed != 1 || st.Unplaced != 1 {
		t.Fatalf("stats %+v, want Shed 1 (be0) and Unplaced 1 (be1)", st)
	}
	ledger := a.Hosts()[0].Ledger()
	last := ledger[len(ledger)-1]
	if !reflect.DeepEqual(last.Placed, []string{"ls0"}) || !reflect.DeepEqual(last.Shed, []string{"be0"}) {
		t.Fatalf("ledger tail placed %v shed %v, want [ls0]/[be0]", last.Placed, last.Shed)
	}
	sheds := 0
	for _, op := range last.Ops {
		if op.Shed {
			sheds++
		}
	}
	if sheds != 1 {
		t.Fatalf("ledger tail ops %+v, want exactly one Shed deactivation", last.Ops)
	}
	// The freed capacity is really free: another quarter-core BE fits.
	if _, err := a.Place(VM{Name: "be2", Util: quarter(), LatencyGoal: 20_000_000, Class: planner.BE}); err != nil {
		t.Fatalf("placement into shed capacity returned %v", err)
	}
}

func TestDepartBatchFreesCapacityAndSlots(t *testing.T) {
	a := testArbiter(t, Config{Hosts: 2, Cores: 2, Placers: 2})
	var vms []VM
	for i := 0; i < 6; i++ {
		vms = append(vms, testVM(fmt.Sprintf("vm%d", i), quarter()))
	}
	if _, err := a.PlaceBatch(vms); err != nil {
		t.Fatal(err)
	}
	names := a.PlacedNames()
	if _, err := a.DepartBatch(names[:4]); err != nil {
		t.Fatal(err)
	}
	if len(a.Assignments()) != 2 {
		t.Fatalf("registry has %d VMs after departures, want 2", len(a.Assignments()))
	}
	// Slots and headroom are recycled: a second full wave fits again.
	var again []VM
	for i := 0; i < 4; i++ {
		again = append(again, testVM(fmt.Sprintf("re%d", i), quarter()))
	}
	bs, err := a.PlaceBatch(again)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Placed != 4 {
		t.Fatalf("re-fill placed %d, want 4", bs.Placed)
	}
	if _, err := a.DepartBatch([]string{"nope"}); err == nil {
		t.Fatal("departing an unknown VM must error")
	}
}

// parallelForEach is a minimal deterministic fan-out (slot-indexed
// results, like experiments.ForEach) for the determinism test.
func parallelForEach(workers int) func(n int, fn func(i int) error) error {
	return func(n int, fn func(i int) error) error {
		errs := make([]error, n)
		var next atomic.Int64
		var wg sync.WaitGroup
		w := workers
		if w > n {
			w = n
		}
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
}

// runScriptedStorm drives a deterministic fill + churn + surge script
// and returns the end-state fingerprint: cumulative stats, the
// registry, and every host's (version, live-VM) pair.
func runScriptedStorm(t *testing.T, forEach func(int, func(int) error) error) (Stats, map[string]int, [][2]uint64) {
	t.Helper()
	cache := planner.NewCache(512)
	a, err := New(Config{
		Hosts: 12, Cores: 4, SlotsPerHost: 10, Placers: 3,
		SpareHosts: 2, MaxAttempts: 4, Cache: cache, ForEach: forEach,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var fill []VM
	for i := 0; i < 60; i++ {
		u := quarter()
		if i%5 == 0 {
			u = planner.Util{Num: 1, Den: 2}
		}
		fill = append(fill, testVM(fmt.Sprintf("v%d", i), u))
	}
	if _, err := a.PlaceBatch(fill); err != nil {
		t.Fatal(err)
	}
	live := a.PlacedNames()
	var departs []string
	for i := 0; i < len(live); i += 4 {
		departs = append(departs, live[i])
	}
	if _, err := a.DepartBatch(departs); err != nil {
		t.Fatal(err)
	}
	var surge []VM
	for i := 0; i < 30; i++ {
		surge = append(surge, testVM(fmt.Sprintf("g%d", i), big()))
	}
	if _, err := a.PlaceBatch(surge); err != nil {
		t.Fatal(err)
	}

	hostState := make([][2]uint64, 0, 12)
	for _, h := range a.Hosts() {
		s := h.Snapshot()
		hostState = append(hostState, [2]uint64{s.Version, uint64(h.VMs())})
	}
	return a.Stats(), a.Assignments(), hostState
}

func TestPlaceBatchDeterministicAcrossParallelism(t *testing.T) {
	s1, asg1, hosts1 := runScriptedStorm(t, nil) // serial
	for _, workers := range []int{2, 8} {
		s2, asg2, hosts2 := runScriptedStorm(t, parallelForEach(workers))
		if s1 != s2 {
			t.Fatalf("stats differ at %d workers:\nserial   %+v\nparallel %+v", workers, s1, s2)
		}
		if !reflect.DeepEqual(asg1, asg2) {
			t.Fatalf("assignments differ at %d workers", workers)
		}
		if !reflect.DeepEqual(hosts1, hosts2) {
			t.Fatalf("host versions differ at %d workers:\nserial   %v\nparallel %v", workers, hosts1, hosts2)
		}
	}
	if s1.Placed == 0 || s1.AdmissionRejects == 0 {
		t.Fatalf("storm script exercised nothing: %+v", s1)
	}
}
