package fleet

import (
	"fmt"
	"testing"

	"tableau/internal/planner"
)

// BenchmarkFleetPlace measures steady-state placement throughput
// through the live optimistic protocol (ns/op is the inverse
// placements/sec), with the conflict-retry rate reported alongside:
// each iteration places one eighth-core VM and departs the one placed
// 200 iterations ago, so the fleet sits at a realistic occupancy while
// snapshots, commits, and the occasional shed-retry all stay on the
// hot path.
func BenchmarkFleetPlace(b *testing.B) {
	a, err := New(Config{
		Hosts: 32, Cores: 8, Placers: 8, SpareHosts: 2, MaxAttempts: 4,
		Cache: planner.NewCache(4096),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	vm := func(i int) VM {
		return VM{Name: fmt.Sprintf("b%d", i), Util: planner.Util{Num: 1, Den: 8}, LatencyGoal: 20_000_000}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Place(vm(i)); err != nil {
			b.Fatal(err)
		}
		if i >= 200 {
			if err := a.Depart(fmt.Sprintf("b%d", i-200)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	st := a.Stats()
	b.ReportMetric(float64(st.Conflicts+st.Retries)/float64(b.N), "conflict-retries/op")
}
