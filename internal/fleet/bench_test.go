package fleet

import (
	"errors"
	"fmt"
	"testing"

	"tableau/internal/faults"
	"tableau/internal/planner"
)

// BenchmarkFleetPlace measures steady-state placement throughput
// through the live optimistic protocol (ns/op is the inverse
// placements/sec), with the conflict-retry rate reported alongside:
// each iteration places one eighth-core VM and departs the oldest of
// the 200 in flight, so the fleet sits at a realistic occupancy while
// snapshots, commits, and the occasional shed-retry all stay on the
// hot path. Host ledgers grow with every commit, so a single
// long-lived fleet would make B/op drift with b.N; the fleet is
// rebuilt outside the timer every few thousand iterations to keep the
// measurement stationary.
func BenchmarkFleetPlace(b *testing.B) {
	cache := planner.NewCache(4096)
	vm := func(name string) VM {
		return VM{Name: name, Util: planner.Util{Num: 1, Den: 8}, LatencyGoal: 20_000_000}
	}
	var (
		a         *Arbiter
		live      []string // FIFO of in-flight names
		conflicts int64
	)
	rebuild := func(gen int) {
		if a != nil {
			st := a.Stats()
			conflicts += st.Conflicts + st.Retries
			_ = a.Close()
		}
		var err error
		a, err = New(Config{
			Hosts: 32, Cores: 8, Placers: 8, SpareHosts: 2, MaxAttempts: 4,
			Cache: cache,
		})
		if err != nil {
			b.Fatal(err)
		}
		live = live[:0]
		for j := 0; j < 200; j++ {
			name := fmt.Sprintf("w%d-%d", gen, j)
			if _, err := a.Place(vm(name)); err != nil {
				b.Fatal(err)
			}
			live = append(live, name)
		}
	}
	rebuild(0)
	defer func() { _ = a.Close() }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%1024 == 0 {
			b.StopTimer()
			rebuild(i)
			b.StartTimer()
		}
		name := fmt.Sprintf("b%d", i)
		if _, err := a.Place(vm(name)); err != nil {
			b.Fatal(err)
		}
		live = append(live, name)
		if err := a.Depart(live[0]); err != nil {
			b.Fatal(err)
		}
		live = live[1:]
	}
	b.StopTimer()
	st := a.Stats()
	conflicts += st.Conflicts + st.Retries
	b.ReportMetric(float64(conflicts)/float64(b.N), "conflict-retries/op")
}

// BenchmarkFailover measures the cost of a steady fleet absorbing one
// host crash: each iteration arms a recoverable torn-write crash on a
// rotating victim, fires it with a doomed commit, and runs the
// arbiter's Failover sweep (crash seam, journal replay, rejoin flush).
// displaced-vms/op is the guests riding through each recovery. Each
// crash/recover cycle appends to the victim's journal and recovery
// replays it whole, so a single long-lived fleet would make allocs/op
// grow with b.N; the fleet is rebuilt outside the timer every few
// dozen iterations to keep the measurement stationary.
func BenchmarkFailover(b *testing.B) {
	cache := planner.NewCache(4096)
	var vms []VM
	for i := 0; i < 56; i++ {
		vm := VM{Name: fmt.Sprintf("f%d", i), Util: planner.Util{Num: 1, Den: 8}, LatencyGoal: 20_000_000}
		if i%3 == 0 {
			vm.Class = planner.BE
		}
		vms = append(vms, vm)
	}
	var a *Arbiter
	rebuild := func() {
		if a != nil {
			_ = a.Close()
		}
		var err error
		a, err = New(Config{
			Hosts: 8, Cores: 8, SlotsPerHost: 20, Placers: 4, SpareHosts: 1,
			MaxAttempts: 6, Cache: cache, Journal: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if bs, err := a.PlaceBatch(vms); err != nil || bs.Placed != int64(len(vms)) {
			b.Fatalf("fill: %+v %v", bs, err)
		}
	}
	rebuild()
	defer func() { _ = a.Close() }()
	doomed := func(i int) VM {
		return VM{Name: fmt.Sprintf("doom%d", i), Util: planner.Util{Num: 1, Den: 8}, LatencyGoal: 20_000_000}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var displaced int64
	for i := 0; i < b.N; i++ {
		if i > 0 && i%64 == 0 {
			b.StopTimer()
			rebuild()
			b.StartTimer()
		}
		h := a.hosts[i%7] // regular hosts; the spare backfills nobody here
		if err := h.Arm(faults.CrashPlan{Kind: faults.CrashTorn, AtAppend: 1, Seed: int64(i) + 1}); err != nil {
			b.Fatal(err)
		}
		if _, err := h.CommitPlacements(h.Snapshot().Version, []VM{doomed(i)}); !errors.Is(err, ErrHostDown) {
			b.Fatalf("doomed commit: %v", err)
		}
		st, err := a.Failover()
		if err != nil {
			b.Fatal(err)
		}
		if st.Recovered != 1 {
			b.Fatalf("iteration %d: recovered %d hosts, want 1", i, st.Recovered)
		}
		displaced += st.Displaced
	}
	b.StopTimer()
	b.ReportMetric(float64(displaced)/float64(b.N), "displaced-vms/op")
}
