package fleet

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"tableau/internal/planner"
)

// TestArbiterConcurrentPlaceDepart hammers the live optimistic
// protocol from many goroutines under -race: concurrent placers race
// commits onto the same hosts (losers must conflict and retry, never
// corrupt), departures race placements, and when the dust settles the
// registry, the hosts' occupancy, and the counters must agree.
func TestArbiterConcurrentPlaceDepart(t *testing.T) {
	a := testArbiter(t, Config{
		Hosts: 8, Cores: 4, SlotsPerHost: 16, Placers: 4,
		SpareHosts: 1, MaxAttempts: 8,
	})
	const goroutines, perG = 6, 15
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				name := fmt.Sprintf("g%d-vm%d", g, i)
				_, err := a.Place(VM{Name: name, Util: planner.Util{Num: 1, Den: 4}, LatencyGoal: 20_000_000})
				if errors.Is(err, ErrUnplaced) {
					continue
				}
				if err != nil {
					t.Errorf("Place(%s): %v", name, err)
					return
				}
				if i%2 == 0 {
					if err := a.Depart(name); err != nil {
						t.Errorf("Depart(%s): %v", name, err)
						return
					}
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()

	asg := a.Assignments()
	live := 0
	for _, h := range a.Hosts() {
		live += h.VMs()
	}
	if live != len(asg) {
		t.Fatalf("hosts hold %d VMs but the registry has %d — a placement leaked past the protocol", live, len(asg))
	}
	st := a.Stats()
	if st.Placed-st.Departed != int64(len(asg)) {
		t.Fatalf("placed %d - departed %d != %d live", st.Placed, st.Departed, len(asg))
	}
	for name, h := range asg {
		snap := a.hosts[h].Snapshot()
		if snap.Host != h {
			t.Fatalf("registry maps %q to host %d but snapshot says %d", name, h, snap.Host)
		}
	}
}
