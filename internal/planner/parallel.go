package planner

import (
	"fmt"
	"sync"

	"tableau/internal/periodic"
	"tableau/internal/table"
)

// This file parallelizes stage 4 of planning — the per-core EDF
// simulations that materialize slice tables. The jobs are
// embarrassingly parallel (each reads only its own core's task set) and
// their outputs are merged strictly in job order, so the generated
// table and the planner's counters are byte-identical at any
// Options.PlannerWorkers setting. The fan-out shape follows
// internal/experiments: a fixed worker pool draining an index channel,
// results parked in a pre-sized slice.

// synthJob is one core's stage-4 synthesis work. When adopt is
// non-nil the core is pinned and its previous final (post-coalesce)
// schedule is reused verbatim: the EDF simulation still runs for the
// preemption/switch counters (a SliceCache hit makes it nearly free),
// but tiling is skipped and the merge installs adopt instead, then
// transplants the slice index from adoptFrom — the adopted intervals
// are byte-identical to the source core's, only vCPU ids differ, and
// the index never references ids.
type synthJob struct {
	core      int
	tasks     periodic.TaskSet
	adopt     []table.Alloc
	adoptFrom *table.CoreTable
}

// synthOut is one job's result, parked at the job's index until the
// deterministic in-order merge.
type synthOut struct {
	allocs      []table.Alloc
	preemptions int
	switches    int
	sliceHit    bool
	err         error
}

// synthesizeCores runs every job (serially or on a worker pool), then
// merges outputs in job order into tbl and res. The merge order — not
// the completion order — determines every observable effect, which is
// what makes worker counts invisible in the output.
func synthesizeCores(tbl *table.Table, res *Result, jobs []synthJob, tableLen int64, opts Options) error {
	if len(jobs) == 0 {
		return nil
	}
	outs := make([]synthOut, len(jobs))
	runOne := func(i int) {
		j := jobs[i]
		o := &outs[i]
		coreH, err := j.tasks.Hyperperiod()
		if err != nil {
			o.err = err
			return
		}
		sim, hit, err := simulateCore(j.tasks, coreH, opts.Slices)
		if err != nil {
			o.err = fmt.Errorf("planner: core %d EDF simulation failed: %w", j.core, err)
			return
		}
		o.sliceHit = hit
		reps := int(tableLen / coreH)
		o.preemptions = sim.Preemptions * reps
		o.switches = sim.ContextSwitches * reps
		if j.adopt != nil {
			o.allocs = j.adopt
		} else {
			o.allocs = tileSlots(sim.Slots, j.tasks, coreH, tableLen)
		}
	}

	workers := opts.PlannerWorkers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i := range jobs {
			runOne(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					runOne(i)
				}
			}()
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	for i := range outs {
		o := &outs[i]
		if o.err != nil {
			return o.err
		}
		tbl.Cores[jobs[i].core].Allocs = o.allocs
		if jobs[i].adopt != nil {
			tbl.Cores[jobs[i].core].TransplantSlices(jobs[i].adoptFrom)
		}
		res.Preemptions += o.preemptions
		res.ContextSwitches += o.switches
		if o.sliceHit {
			res.SliceHits++
		}
	}
	return nil
}
