package planner

import (
	"fmt"
	"math/rand"
	"testing"

	"tableau/internal/table"
)

func phAlloc(s, e int64, v int) table.Alloc { return table.Alloc{Start: s, End: e, VCPU: v} }

func TestSwitchCount(t *testing.T) {
	cases := []struct {
		allocs []table.Alloc
		want   int
	}{
		{nil, 0},
		// One allocation covering less than the cycle: idle re-entry.
		{[]table.Alloc{phAlloc(0, 50, 0)}, 1},
		// Two contiguous allocations of different vCPUs + wrap gap.
		{[]table.Alloc{phAlloc(0, 50, 0), phAlloc(50, 80, 1)}, 2},
		// A B A with contiguity: 3 transitions (A->B, B->A, wrap-gapless
		// A...A? the wrap from last A back to first A has a gap at 100).
		{[]table.Alloc{phAlloc(0, 30, 0), phAlloc(30, 60, 1), phAlloc(60, 90, 0)}, 3},
	}
	for i, c := range cases {
		if got := switchCount(c.allocs); got != c.want {
			t.Errorf("case %d: switchCount = %d, want %d", i, got, c.want)
		}
	}
}

func TestPeepholeSlideLeft(t *testing.T) {
	// vCPU 0 guaranteed 20 per 100-window; its allocation sits at the
	// end of the window with idle before it.
	gs := []table.Guarantee{{VCPU: 0, Service: 20, WindowLen: 100}}
	ph := newPeepholer(100, 1, gs, []bool{false})
	out, saved := ph.run([]table.Alloc{phAlloc(70, 90, 0)})
	if len(out) != 1 || out[0].Start != 0 || out[0].End != 20 {
		t.Errorf("slide-left result = %v", out)
	}
	_ = saved
}

func TestPeepholeBubbleMerge(t *testing.T) {
	// A B A pattern, both window-local with matching guarantees.
	gs := []table.Guarantee{
		{VCPU: 0, Service: 40, WindowLen: 100},
		{VCPU: 1, Service: 30, WindowLen: 100},
	}
	ph := newPeepholer(100, 2, gs, []bool{false, false})
	in := []table.Alloc{phAlloc(0, 20, 0), phAlloc(20, 50, 1), phAlloc(50, 70, 0)}
	out, saved := ph.run(in)
	if saved <= 0 {
		t.Fatalf("no switches saved: %v", out)
	}
	// The A pieces must be merged into a single 40-long allocation.
	var aPieces int
	for _, a := range out {
		if a.VCPU == 0 {
			aPieces++
			if a.Len() != 40 {
				t.Errorf("A piece length %d, want merged 40", a.Len())
			}
		}
	}
	if aPieces != 1 {
		t.Errorf("A split into %d pieces", aPieces)
	}
	// Per-window service preserved for both vCPUs.
	for v, want := range map[int]int64{0: 40, 1: 30} {
		var got int64
		for _, a := range out {
			if a.VCPU == v {
				got += a.Len()
			}
		}
		if got != want {
			t.Errorf("vcpu %d service %d, want %d", v, got, want)
		}
	}
}

func TestPeepholeRespectsWindows(t *testing.T) {
	// A's pieces live in different windows: merging would move service
	// across a window boundary and must be refused.
	gs := []table.Guarantee{
		{VCPU: 0, Service: 20, WindowLen: 50},
		{VCPU: 1, Service: 60, WindowLen: 100},
	}
	ph := newPeepholer(100, 2, gs, []bool{false, false})
	in := []table.Alloc{phAlloc(0, 20, 0), phAlloc(20, 80, 1), phAlloc(80, 100, 0)}
	out, _ := ph.run(in)
	// vCPU 0 must still have 20 of service in each 50-window.
	for w := int64(0); w < 100; w += 50 {
		var got int64
		for _, a := range out {
			if a.VCPU != 0 {
				continue
			}
			lo, hi := a.Start, a.End
			if lo < w {
				lo = w
			}
			if hi > w+50 {
				hi = w + 50
			}
			if hi > lo {
				got += hi - lo
			}
		}
		if got < 20 {
			t.Fatalf("window [%d,%d): service %d < 20 after peephole: %v", w, w+50, got, out)
		}
	}
}

func TestPeepholeNeverTouchesSplitVCPUs(t *testing.T) {
	gs := []table.Guarantee{
		{VCPU: 0, Service: 20, WindowLen: 100},
		{VCPU: 1, Service: 30, WindowLen: 100},
	}
	ph := newPeepholer(100, 2, gs, []bool{true, false})
	in := []table.Alloc{phAlloc(40, 60, 0)}
	out, _ := ph.run(in)
	if out[0] != in[0] {
		t.Errorf("split vCPU allocation moved: %v", out)
	}
}

func TestPlanWithPeepholeStillVerifies(t *testing.T) {
	// End-to-end: random workloads planned with the peephole on still
	// pass the guarantee check (Plan runs it internally), and the pass
	// only ever reduces context switches.
	rng := rand.New(rand.NewSource(5))
	improved := 0
	for trial := 0; trial < 20; trial++ {
		cores := 2 + rng.Intn(3)
		var specs []VCPUSpec
		var est float64
		for i := 0; i < 4*cores; i++ {
			den := int64(3 + rng.Intn(9))
			num := 1 + rng.Int63n(den/2)
			if est+float64(num)/float64(den) > 0.9*float64(cores) {
				break
			}
			est += float64(num) / float64(den)
			specs = append(specs, VCPUSpec{
				Name:        fmt.Sprintf("t%dv%d", trial, i),
				Util:        Util{Num: num, Den: den},
				LatencyGoal: int64(10+rng.Intn(90)) * 1_000_000,
			})
		}
		if len(specs) == 0 {
			continue
		}
		plain, err := Plan(specs, Options{Cores: cores})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := Plan(specs, Options{Cores: cores, Peephole: true})
		if err != nil {
			t.Fatalf("trial %d (peephole): %v", trial, err)
		}
		if opt.SwitchesSaved < 0 {
			t.Errorf("trial %d: negative savings %d", trial, opt.SwitchesSaved)
		}
		if opt.SwitchesSaved > 0 {
			improved++
		}
		// Same guarantees on both plans.
		if err := opt.Table.Check(plain.Guarantees); err != nil {
			t.Errorf("trial %d: peephole table fails plain guarantees: %v", trial, err)
		}
	}
	t.Logf("peephole improved %d/20 random workloads", improved)
}

func TestPlanSplitCompensation(t *testing.T) {
	// Four 0.6 tasks on 3 cores force a split; with compensation the
	// split vCPU's guaranteed service strictly exceeds its reservation.
	mk := func(comp int64) *Result {
		var specs []VCPUSpec
		for i := 0; i < 4; i++ {
			specs = append(specs, VCPUSpec{
				Name:        fmt.Sprintf("v%d", i),
				Util:        Util{Num: 3, Den: 5},
				LatencyGoal: 50_000_000,
			})
		}
		res, err := Plan(specs, Options{Cores: 3, SplitCompensationPPM: comp})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := mk(0)
	comp := mk(30_000)
	if plain.Stage != StageSemiPartitioned || comp.Stage != StageSemiPartitioned {
		t.Fatalf("stages = %v, %v", plain.Stage, comp.Stage)
	}
	if len(plain.Splits) == 0 || len(comp.Splits) == 0 {
		t.Fatal("no splits recorded")
	}
	splitVM := comp.Splits[0].VCPU
	var plainSvc, compSvc int64
	for _, g := range plain.Guarantees {
		if g.VCPU == plain.Splits[0].VCPU {
			plainSvc = g.Service
		}
	}
	for _, g := range comp.Guarantees {
		if g.VCPU == splitVM {
			compSvc = g.Service
		}
	}
	if compSvc <= plainSvc {
		t.Errorf("compensated split service %d not above plain %d", compSvc, plainSvc)
	}
}
