package planner

import (
	"testing"
	"testing/quick"
)

func TestCandidatePeriods(t *testing.T) {
	cands := CandidatePeriods()
	// The paper (Sec. 5) chose 102,702,600 ns because it has 186 integer
	// divisors above the 100 µs enforceability threshold.
	if len(cands) != 186 {
		t.Errorf("len(CandidatePeriods()) = %d, want 186", len(cands))
	}
	for i, c := range cands {
		if MaxHyperperiod%c != 0 {
			t.Errorf("candidate %d does not divide the hyperperiod", c)
		}
		if c < MinPeriod {
			t.Errorf("candidate %d below MinPeriod", c)
		}
		if i > 0 && cands[i-1] >= c {
			t.Errorf("candidates not strictly increasing at %d", i)
		}
	}
	if cands[len(cands)-1] != MaxHyperperiod {
		t.Errorf("largest candidate = %d, want %d", cands[len(cands)-1], MaxHyperperiod)
	}
}

func TestUtilValidate(t *testing.T) {
	cases := []struct {
		u  Util
		ok bool
	}{
		{Util{1, 4}, true},
		{Util{1, 1}, true},
		{Util{0, 4}, false},
		{Util{-1, 4}, false},
		{Util{5, 4}, false},
		{Util{1, 0}, false},
		{Util{1, -2}, false},
	}
	for _, c := range cases {
		if err := c.u.Validate(); (err == nil) != c.ok {
			t.Errorf("Util%v.Validate() = %v, want ok=%v", c.u, err, c.ok)
		}
	}
}

func TestUtilHelpers(t *testing.T) {
	u := UtilFromPPM(250_000)
	if u.Float() != 0.25 {
		t.Errorf("Float() = %v", u.Float())
	}
	if !(Util{1, 1}).IsFull() || (Util{1, 2}).IsFull() {
		t.Error("IsFull wrong")
	}
	if got := (Util{1, 3}).PPM(); got != 333_334 { // rounded up
		t.Errorf("PPM() = %d, want 333334", got)
	}
	if got := (Util{1, 4}).Cost(1000); got != 250 {
		t.Errorf("Cost(1000) = %d, want 250", got)
	}
	if got := (Util{1, 3}).Cost(1000); got != 334 { // ceil
		t.Errorf("Cost(1000) = %d, want 334", got)
	}
	fs := FairShare(16, 64)
	if fs.Float() != 0.25 {
		t.Errorf("FairShare(16,64) = %v", fs)
	}
}

func TestPickPeriodPaperScenario(t *testing.T) {
	// Paper Sec. 7.2: U=25%, L=20 ms leads the planner to pick a period
	// of "roughly 13 ms with a budget of about 3.2 ms". The in-bound
	// candidates are 12,837,825 ns (not divisible by 4) and 11,411,400
	// ns (divisible); we prefer the exactly-divisible one so that four
	// 25% vCPUs pack onto one core with zero rounding inflation, giving
	// a ~11.4 ms period with a ~2.85 ms budget — same order as the
	// paper.
	cands := CandidatePeriods()
	u := Util{1, 4}
	period, ok := PickPeriod(u, 20_000_000, cands)
	if !ok {
		t.Fatal("PickPeriod failed")
	}
	if period != 11_411_400 {
		t.Errorf("period = %d, want 11411400", period)
	}
	if c := u.Cost(period); c != 2_852_850 {
		t.Errorf("budget = %d, want 2852850", c)
	}
	// Blackout bound honored: 2*(1-1/4)*T <= 20 ms.
	if 2*3*period > 20_000_000*4 {
		t.Error("picked period violates the blackout bound")
	}
}

func TestPickPeriodFallbackToInexact(t *testing.T) {
	// A denominator coprime to the hyperperiod forces the ceil()
	// fallback: the largest in-bound candidate is chosen.
	cands := CandidatePeriods()
	u := Util{1, 1009} // 1009 is prime and does not divide 102702600
	p, ok := PickPeriod(u, 210_000_000, cands)
	if !ok {
		t.Fatal("fallback failed")
	}
	if p != MaxHyperperiod {
		t.Errorf("period = %d, want %d", p, MaxHyperperiod)
	}
}

func TestPickPeriodEdges(t *testing.T) {
	cands := CandidatePeriods()
	// Impossibly tight goal.
	if _, ok := PickPeriod(Util{1, 4}, 1, cands); ok {
		t.Error("1 ns latency goal should be unenforceable")
	}
	if _, ok := PickPeriod(Util{1, 4}, 0, cands); ok {
		t.Error("zero latency goal must fail")
	}
	// Very loose goal picks the maximum period.
	p, ok := PickPeriod(Util{1, 4}, 1_000_000_000, cands)
	if !ok || p != MaxHyperperiod {
		t.Errorf("loose goal: period = %d, ok=%v; want max hyperperiod", p, ok)
	}
	// U close to 1 makes even tight goals enforceable: blackout scales
	// with (1-U).
	p, ok = PickPeriod(Util{999, 1000}, 1_000_000, cands)
	if !ok {
		t.Fatal("high-utilization task should accept tight goals")
	}
	if 2*(1000-999)*p > 1_000_000*1000 {
		t.Errorf("picked period %d violates the blackout bound", p)
	}
}

// Property: PickPeriod always satisfies the blackout bound and is
// maximal among candidates.
func TestPickPeriodProperty(t *testing.T) {
	cands := CandidatePeriods()
	f := func(num16, den16 uint16, goalMS uint8) bool {
		den := int64(den16%1000) + 2
		num := int64(num16)%den + 1
		u := Util{num, den}
		goal := (int64(goalMS) + 1) * 1_000_000 // 1..256 ms
		p, ok := PickPeriod(u, goal, cands)
		if !ok {
			// Then even the smallest candidate must violate the bound.
			return 2*(den-num)*cands[0] > goal*den
		}
		if 2*(den-num)*p > goal*den {
			return false
		}
		exact := (num*p)%den == 0
		for _, c := range cands {
			if 2*(den-num)*c > goal*den {
				continue // out of bound
			}
			if exact {
				// Maximal among exact-dividing in-bound candidates.
				if c > p && (num*c)%den == 0 {
					return false
				}
			} else {
				// Fallback: maximal in-bound, and no in-bound candidate
				// divides evenly.
				if c > p || (num*c)%den == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTaskFor(t *testing.T) {
	tk, err := TaskFor("v0", 3, Util{1, 4}, 20_000_000, CandidatePeriods())
	if err != nil {
		t.Fatal(err)
	}
	if tk.Name != "v0" || tk.Group != 3 {
		t.Errorf("identity fields wrong: %+v", tk)
	}
	if !tk.Implicit() {
		t.Error("fresh vCPU tasks must have implicit deadlines")
	}
	if tk.WCET*4 < tk.Period {
		t.Errorf("budget %d under-provisions utilization 1/4 of period %d", tk.WCET, tk.Period)
	}
	if _, err := TaskFor("v1", 0, Util{0, 4}, 20_000_000, CandidatePeriods()); err == nil {
		t.Error("invalid utilization accepted")
	}
	if _, err := TaskFor("v1", 0, Util{1, 4}, 10, CandidatePeriods()); err == nil {
		t.Error("unenforceable latency goal accepted")
	}
}

func TestAdmit(t *testing.T) {
	ok := []VCPUSpec{
		{Name: "a", Util: Util{1, 2}, LatencyGoal: 1e7},
		{Name: "b", Util: Util{1, 2}, LatencyGoal: 1e7},
	}
	if err := Admit(ok, 1); err != nil {
		t.Errorf("exactly-full system rejected: %v", err)
	}
	over := append(ok, VCPUSpec{Name: "c", Util: Util{1, 1000}, LatencyGoal: 1e7})
	err := Admit(over, 1)
	if err == nil {
		t.Fatal("over-utilized system admitted")
	}
	if _, isOver := err.(*ErrOverUtilized); !isOver {
		t.Errorf("error type = %T, want *ErrOverUtilized", err)
	}
	dup := []VCPUSpec{
		{Name: "a", Util: Util{1, 4}, LatencyGoal: 1e7},
		{Name: "a", Util: Util{1, 4}, LatencyGoal: 1e7},
	}
	if err := Admit(dup, 4); err == nil {
		t.Error("duplicate names admitted")
	}
	if err := Admit(ok, 0); err == nil {
		t.Error("zero cores admitted")
	}
}
