package planner

import (
	"fmt"
	"math/rand"
	"testing"

	"tableau/internal/table"
)

// paperSpecs builds the paper's evaluation workload: vmsPerCore
// single-vCPU VMs per core, each reserving 1/vmsPerCore of a core with
// the given latency goal (Sec. 7.2: four VMs per core, 25% each, 20 ms).
func paperSpecs(cores, vmsPerCore int, latencyGoal int64, capped bool) []VCPUSpec {
	var specs []VCPUSpec
	for i := 0; i < cores*vmsPerCore; i++ {
		specs = append(specs, VCPUSpec{
			Name:        fmt.Sprintf("vm%d.0", i),
			Util:        Util{1, int64(vmsPerCore)},
			LatencyGoal: latencyGoal,
			Capped:      capped,
		})
	}
	return specs
}

func TestPlanPaperScenario(t *testing.T) {
	// 12 guest cores, 48 VMs at 25% utilization, 20 ms latency goal.
	specs := paperSpecs(12, 4, 20_000_000, true)
	res, err := Plan(specs, Options{Cores: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stage != StagePartitioned {
		t.Errorf("stage = %v, want partitioned (regular workload)", res.Stage)
	}
	if len(res.Splits) != 0 {
		t.Errorf("splits = %v, want none", res.Splits)
	}
	tbl := res.Table
	if tbl.Len != 11_411_400 {
		t.Errorf("table length = %d, want one period (11411400)", tbl.Len)
	}
	// Every core should carry 4 vCPUs, each with ~3.21 ms per period.
	for _, ct := range tbl.Cores {
		seen := map[int]bool{}
		for _, a := range ct.Allocs {
			seen[a.VCPU] = true
		}
		if len(seen) != 4 {
			t.Errorf("core %d hosts %d vCPUs, want 4", ct.Core, len(seen))
		}
	}
	// Guarantees were checked by Plan; spot-check blackout directly.
	for _, g := range res.Guarantees {
		if g.MaxBlackout != 20_000_000 {
			t.Errorf("vcpu %d blackout bound = %d", g.VCPU, g.MaxBlackout)
		}
	}
}

func TestPlanRejectsOverUtilization(t *testing.T) {
	specs := paperSpecs(2, 4, 20_000_000, true)
	if _, err := Plan(specs, Options{Cores: 1}); err == nil {
		t.Error("over-utilized plan accepted")
	}
}

func TestPlanDedicatedCores(t *testing.T) {
	specs := []VCPUSpec{
		{Name: "whole", Util: Util{1, 1}, LatencyGoal: 1_000_000},
		{Name: "quarter", Util: Util{1, 4}, LatencyGoal: 30_000_000},
	}
	res, err := Plan(specs, Options{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	slots := res.Table.VCPUSlots(0)
	if len(slots) != 1 || slots[0].Start != 0 || slots[0].End != res.Table.Len {
		t.Errorf("dedicated vCPU slots = %v, want whole table", slots)
	}
	if res.Table.VCPUs[0].HomeCore != 0 {
		t.Errorf("dedicated home core = %d", res.Table.VCPUs[0].HomeCore)
	}
}

func TestPlanSemiPartitioned(t *testing.T) {
	// Four tasks of 0.6 on 3 cores: total 2.4 <= 3 but only one fits
	// per core, so the fourth must split.
	var specs []VCPUSpec
	for i := 0; i < 4; i++ {
		specs = append(specs, VCPUSpec{
			Name:        fmt.Sprintf("v%d", i),
			Util:        Util{3, 5},
			LatencyGoal: 50_000_000,
		})
	}
	res, err := Plan(specs, Options{Cores: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stage != StageSemiPartitioned {
		t.Fatalf("stage = %v, want semi-partitioned", res.Stage)
	}
	if len(res.Splits) == 0 {
		t.Fatal("no splits recorded")
	}
	split := res.Splits[0]
	if split.Pieces < 2 {
		t.Errorf("split pieces = %d", split.Pieces)
	}
	if !res.Table.VCPUs[split.VCPU].Split {
		t.Error("split vCPU not marked in table metadata")
	}
	// The table-level checks in Plan already proved service and
	// blackout; verify the non-parallelism invariant explicitly.
	if err := res.Table.Validate(); err != nil {
		t.Errorf("table invalid: %v", err)
	}
}

func TestPlanClustered(t *testing.T) {
	// Three tasks of 2/3 on 2 cores: partitioning and splitting place
	// at most ... splitting may actually succeed here, so disable it to
	// force the cluster path.
	var specs []VCPUSpec
	for i := 0; i < 3; i++ {
		specs = append(specs, VCPUSpec{
			Name:        fmt.Sprintf("v%d", i),
			Util:        Util{2, 3},
			LatencyGoal: 80_000_000,
		})
	}
	res, err := Plan(specs, Options{Cores: 2, DisableSplitting: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stage != StageClustered {
		t.Fatalf("stage = %v, want clustered", res.Stage)
	}
	if len(res.ClusterCores) != 2 {
		t.Errorf("cluster cores = %v", res.ClusterCores)
	}
}

func TestPlanAblationFailsWithoutFallbacks(t *testing.T) {
	var specs []VCPUSpec
	for i := 0; i < 3; i++ {
		specs = append(specs, VCPUSpec{
			Name:        fmt.Sprintf("v%d", i),
			Util:        Util{2, 3},
			LatencyGoal: 80_000_000,
		})
	}
	_, err := Plan(specs, Options{Cores: 2, DisableSplitting: true, DisableClustering: true})
	if err == nil {
		t.Error("partition-only planner should fail on this set")
	}
}

func TestPlanMixedLatencyGoals(t *testing.T) {
	specs := []VCPUSpec{
		{Name: "tight", Util: Util{1, 2}, LatencyGoal: 1_000_000},
		{Name: "mid", Util: Util{1, 4}, LatencyGoal: 30_000_000},
		{Name: "loose", Util: Util{1, 8}, LatencyGoal: 100_000_000},
		{Name: "loose2", Util: Util{1, 8}, LatencyGoal: 100_000_000},
	}
	res, err := Plan(specs, Options{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len > MaxHyperperiod {
		t.Errorf("table length %d exceeds hyperperiod bound", res.Table.Len)
	}
	if MaxHyperperiod%res.Table.Len != 0 {
		t.Errorf("table length %d does not divide the hyperperiod bound", res.Table.Len)
	}
}

func TestPlanUnenforceableLatency(t *testing.T) {
	specs := []VCPUSpec{{Name: "a", Util: Util{1, 4}, LatencyGoal: 10_000}}
	if _, err := Plan(specs, Options{Cores: 1}); err == nil {
		t.Error("10 µs goal at U=0.25 must be rejected")
	}
}

func TestPlanTableIsDispatchReady(t *testing.T) {
	specs := paperSpecs(4, 4, 20_000_000, false)
	res, err := Plan(specs, Options{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Slice tables must be built: lookups anywhere must not panic and
	// must return sane intervals.
	tbl := res.Table
	for core := 0; core < tbl.NumCores(); core++ {
		for _, now := range []int64{0, tbl.Len / 3, tbl.Len - 1, tbl.Len, 5 * tbl.Len / 2} {
			_, _, until := tbl.Lookup(core, now)
			if until <= now {
				t.Fatalf("Lookup(%d, %d) returned until=%d in the past", core, now, until)
			}
		}
	}
}

// Property: for random admissible workloads the planner either reports a
// descriptive error (only for genuinely hard cases) or produces a table
// that passes validation and the guarantee check — which Plan performs
// internally — plus the structural invariants re-verified here.
func TestPlanRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	succeeded := 0
	for trial := 0; trial < 60; trial++ {
		cores := 2 + rng.Intn(4)
		n := 1 + rng.Intn(4*cores)
		var specs []VCPUSpec
		for i := 0; i < n; i++ {
			den := int64(2 + rng.Intn(9))
			num := 1 + rng.Int63n(den-1)
			goal := int64(1+rng.Intn(100)) * 1_000_000
			specs = append(specs, VCPUSpec{
				Name:        fmt.Sprintf("t%d.v%d", trial, i),
				Util:        Util{num, den},
				LatencyGoal: goal,
				Capped:      rng.Intn(2) == 0,
			})
		}
		if Admit(specs, cores) != nil {
			continue
		}
		res, err := Plan(specs, Options{Cores: cores})
		if err != nil {
			// Acceptable only if the workload was genuinely hard; the
			// planner should essentially never fail for admissible
			// sets, so flag failures.
			t.Fatalf("trial %d: plan failed for admissible set: %v", trial, err)
		}
		succeeded++
		if err := res.Table.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Table.Check(res.Guarantees); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if succeeded < 20 {
		t.Fatalf("only %d plans exercised", succeeded)
	}
}

func TestPlanHighDensity176VMs(t *testing.T) {
	if testing.Short() {
		t.Skip("large planning run")
	}
	// The Fig. 3 stress case: 44 guest cores, 176 VMs.
	specs := paperSpecs(44, 4, 30_000_000, true)
	res, err := Plan(specs, Options{Cores: 44})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Table.VCPUs); got != 176 {
		t.Errorf("vcpus = %d", got)
	}
	var _ = res
}

func TestGuaranteeOf(t *testing.T) {
	gs := []table.Guarantee{{VCPU: 2, Service: 5}}
	if g := guaranteeOf(gs, 2); g == nil || g.Service != 5 {
		t.Error("guaranteeOf missed existing entry")
	}
	if g := guaranteeOf(gs, 1); g != nil {
		t.Error("guaranteeOf invented an entry")
	}
}
