package planner

import (
	"sort"

	"tableau/internal/periodic"
)

// coreState tracks one physical core's task assignment during planning.
type coreState struct {
	id    int
	tasks periodic.TaskSet
	util  frac
	// constrained is true once the core hosts a subtask with D < T
	// (from C=D splitting); such cores need the full QPA test and are
	// excluded from cluster formation.
	constrained bool
	// dedicated marks a core given wholly to a U=1 vCPU.
	dedicated bool
}

func newCoreStates(n int) []*coreState {
	cs := make([]*coreState, n)
	for i := range cs {
		cs[i] = &coreState{id: i, util: zeroFrac()}
	}
	return cs
}

// fits reports whether adding tk keeps the core EDF-schedulable. For
// cores holding only implicit-deadline tasks this is the exact
// utilization bound; otherwise the QPA test runs.
func (c *coreState) fits(tk periodic.Task) bool {
	if c.dedicated {
		return false
	}
	u := c.util.clone()
	u.add(tk.WCET, tk.Period)
	if u.cmpInt(1) > 0 {
		return false
	}
	if !c.constrained && tk.Implicit() {
		return true
	}
	aug := append(c.tasks.Clone(), tk)
	return aug.EDFSchedulable()
}

func (c *coreState) add(tk periodic.Task) {
	c.tasks = append(c.tasks, tk)
	c.util.add(tk.WCET, tk.Period)
	if !tk.Implicit() {
		c.constrained = true
	}
}

// partitionWFD assigns tasks to cores using the worst-fit-decreasing
// heuristic (paper Sec. 5): tasks in order of decreasing utilization,
// each placed on the least-utilized core that can accept it. This
// spreads load evenly across cores. It returns the tasks that could not
// be placed on any core.
func partitionWFD(cores []*coreState, tasks periodic.TaskSet) (unplaced periodic.TaskSet) {
	return partitionWFDRotated(cores, tasks, 0)
}

// partitionWFDRotated is partitionWFD with a rotation applied to the
// ordering of equal-utilization tasks: advancing the rotation on every
// replan lets the population take turns bearing the risk of being the
// task that ends up C=D-split (paper Sec. 7.5).
func partitionWFDRotated(cores []*coreState, tasks periodic.TaskSet, rotation int) (unplaced periodic.TaskSet) {
	order := tasks.Clone()
	if n := len(order); rotation != 0 && n > 0 {
		r := ((rotation % n) + n) % n
		order = append(order[r:], order[:r]...)
		order.SortByUtilStable()
	} else {
		order.SortByUtilDesc()
	}
	for _, tk := range order {
		if c := leastUtilizedFit(cores, tk); c != nil {
			c.add(tk)
		} else {
			unplaced = append(unplaced, tk)
		}
	}
	return unplaced
}

// leastUtilizedFit returns the least-utilized core on which tk fits, or
// nil. Ties are broken by core id for determinism.
func leastUtilizedFit(cores []*coreState, tk periodic.Task) *coreState {
	idx := make([]*coreState, 0, len(cores))
	for _, c := range cores {
		if !c.dedicated {
			idx = append(idx, c)
		}
	}
	sort.SliceStable(idx, func(i, j int) bool {
		if c := idx[i].util.cmp(&idx[j].util); c != 0 {
			return c < 0
		}
		return idx[i].id < idx[j].id
	})
	for _, c := range idx {
		if c.fits(tk) {
			return c
		}
	}
	return nil
}
