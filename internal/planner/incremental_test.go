package planner

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"

	"tableau/internal/table"
)

// mixedSpecs builds a heterogeneous population: utilizations and latency
// goals vary per VM so cores end up with distinct task multisets.
func mixedSpecs(n int) []VCPUSpec {
	goals := []int64{10_000_000, 20_000_000, 30_000_000}
	utils := []Util{{1, 4}, {1, 8}, {3, 16}}
	var specs []VCPUSpec
	for i := 0; i < n; i++ {
		specs = append(specs, VCPUSpec{
			Name:        fmt.Sprintf("vm%d.0", i),
			Util:        utils[i%len(utils)],
			LatencyGoal: goals[i%len(goals)],
			Capped:      i%2 == 0,
		})
	}
	return specs
}

func encodeTable(t *testing.T, tbl *table.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelSynthesisByteIdentical is the determinism pin for the
// stage-4 worker pool: the TBTBL1 encoding of the planned table must be
// byte-for-byte identical at any PlannerWorkers setting, because
// results are merged in job order regardless of completion order.
func TestParallelSynthesisByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name  string
		specs []VCPUSpec
		opts  Options
	}{
		{"paper16x4", paperSpecs(16, 4, 20_000_000, true), Options{Cores: 16}},
		{"mixed", mixedSpecs(24), Options{Cores: 8}},
		{"peephole", mixedSpecs(12), Options{Cores: 4, Peephole: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := tc.opts
			base.PlannerWorkers = 1
			ref, err := Plan(tc.specs, base)
			if err != nil {
				t.Fatal(err)
			}
			want := encodeTable(t, ref.Table)
			for _, workers := range []int{2, 3, 8} {
				o := tc.opts
				o.PlannerWorkers = workers
				got, err := Plan(tc.specs, o)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !bytes.Equal(want, encodeTable(t, got.Table)) {
					t.Errorf("workers=%d produced a different TBTBL1 encoding than workers=1", workers)
				}
				if got.Preemptions != ref.Preemptions || got.ContextSwitches != ref.ContextSwitches {
					t.Errorf("workers=%d: counters differ: %d/%d vs %d/%d", workers,
						got.Preemptions, got.ContextSwitches, ref.Preemptions, ref.ContextSwitches)
				}
			}
		})
	}
}

// TestSliceCacheReuse pins the slice memo's correctness and accounting:
// replanning the same population through a shared SliceCache serves
// every synthesized core from the memo and still produces the
// byte-identical table (the simulation result is placement-independent;
// vCPU renumbering happens in tileSlots, after the cache).
func TestSliceCacheReuse(t *testing.T) {
	specs := mixedSpecs(16)
	sc := NewSliceCache(0)
	opts := Options{Cores: 6, Slices: sc}

	first, err := Plan(specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := sc.Stats()
	if st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("first plan did not populate the slice cache: %+v", st)
	}
	// Cores sharing a task multiset hit the memo within one plan, so the
	// synthesized-core count is the first plan's misses plus its hits.
	synthesized := int(st.Misses) + first.SliceHits

	second, err := Plan(specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.SliceHits != synthesized {
		t.Errorf("second plan hit %d slices, want every synthesized core (%d)", second.SliceHits, synthesized)
	}
	if !bytes.Equal(encodeTable(t, first.Table), encodeTable(t, second.Table)) {
		t.Error("slice-cache hit changed the produced table")
	}
}

// TestCacheByteBudget pins the whole-problem cache's size bound: a byte
// budget far below the working set must trigger evictions and keep the
// reported footprint under the budget, while the cache stays usable.
func TestCacheByteBudget(t *testing.T) {
	c := NewCache(128)
	c.SetMaxBytes(4 << 10)
	for i := 0; i < 12; i++ {
		goal := int64(10+i) * 1_000_000
		if _, err := c.Plan(cacheSpecs(8, goal), Options{Cores: 2}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.FullStats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 4 KiB budget: %+v", st)
	}
	if st.Bytes > 4<<10 && st.Entries > 1 {
		t.Errorf("footprint %d bytes exceeds the 4 KiB budget with %d entries", st.Bytes, st.Entries)
	}
	if st.Entries == 0 {
		t.Error("budget evicted every entry; at least the newest must stay")
	}
}

// sortedByVCPU returns guarantees ordered by vCPU id.
func sortedByVCPU(gs []table.Guarantee) []table.Guarantee {
	out := append([]table.Guarantee(nil), gs...)
	sort.Slice(out, func(i, j int) bool { return out[i].VCPU < out[j].VCPU })
	return out
}

// TestIncrementalEquivalence exercises PlanIncremental across the three
// churn shapes — arrival, departure, reconfiguration — and demands (a)
// the diff actually pins cores, and (b) the incremental table passes
// table.Check against the guarantees of a scratch plan of the same
// population: identical promises, independently verified delivery.
func TestIncrementalEquivalence(t *testing.T) {
	base := mixedSpecs(16)
	opts := Options{Cores: 8}
	prevRes, err := Plan(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	prev := &PrevPlan{Specs: base, Opts: opts, Res: prevRes}

	arrival := append(append([]VCPUSpec(nil), base...), VCPUSpec{
		Name: "vm99.0", Util: Util{1, 8}, LatencyGoal: 20_000_000, Capped: true,
	})
	departure := append([]VCPUSpec(nil), base[:15]...)
	reconf := append([]VCPUSpec(nil), base...)
	reconf[3].LatencyGoal = 5_000_000

	for _, tc := range []struct {
		name  string
		specs []VCPUSpec
	}{
		{"arrival", arrival},
		{"departure", departure},
		{"reconfigure", reconf},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inc, err := PlanIncremental(tc.specs, opts, prev)
			if err != nil {
				t.Fatal(err)
			}
			if !inc.Incremental || inc.PinnedCores == 0 {
				t.Fatalf("diff did not pin any core: incremental=%v pinned=%d", inc.Incremental, inc.PinnedCores)
			}
			scratch, err := Plan(tc.specs, opts)
			if err != nil {
				t.Fatal(err)
			}
			ig, sg := sortedByVCPU(inc.Guarantees), sortedByVCPU(scratch.Guarantees)
			if len(ig) != len(sg) {
				t.Fatalf("%d guarantees (incremental) vs %d (scratch)", len(ig), len(sg))
			}
			for i := range ig {
				if ig[i] != sg[i] {
					t.Errorf("guarantee mismatch: %+v (incremental) vs %+v (scratch)", ig[i], sg[i])
				}
			}
			if err := inc.Table.Check(sg); err != nil {
				t.Errorf("incremental table fails scratch guarantees: %v", err)
			}
		})
	}
}

// TestIncrementalFallsBackToScratch pins the safety valve: an
// incompatible topology (different core count) or an absent previous
// plan must yield a plain scratch plan, never an error or a stale pin.
func TestIncrementalFallsBackToScratch(t *testing.T) {
	base := mixedSpecs(8)
	opts := Options{Cores: 4}
	prevRes, err := Plan(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	prev := &PrevPlan{Specs: base, Opts: opts, Res: prevRes}

	res, err := PlanIncremental(base, Options{Cores: 5}, prev)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental || res.PinnedCores != 0 {
		t.Errorf("topology change must disable pinning: incremental=%v pinned=%d", res.Incremental, res.PinnedCores)
	}
	res, err = PlanIncremental(base, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental {
		t.Error("nil prev must plan from scratch")
	}
}

// TestConcurrentPlanStress is the race-target stress test: 8 goroutines
// plan overlapping populations through one shared Cache (and its
// SliceCache) with the stage-4 worker pool enabled, mixing cached,
// scratch, and incremental paths. Run under -race this exercises the
// cache locking, the parallel synthesis fan-out, and the read-only
// sharing of cached results.
func TestConcurrentPlanStress(t *testing.T) {
	c := NewCache(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := mixedSpecs(12)
			opts := Options{Cores: 4, PlannerWorkers: 8, Slices: c.SliceCache()}
			prevRes, err := Plan(base, opts)
			if err != nil {
				t.Error(err)
				return
			}
			prev := &PrevPlan{Specs: base, Opts: opts, Res: prevRes}
			for i := 0; i < 10; i++ {
				goal := int64(10+(g+i)%4*5) * 1_000_000
				if _, err := c.Plan(cacheSpecs(8, goal), Options{Cores: 2, PlannerWorkers: 4}); err != nil {
					t.Error(err)
					return
				}
				perturbed := append([]VCPUSpec(nil), base...)
				perturbed[i%len(base)].LatencyGoal = goal
				res, err := PlanIncremental(perturbed, opts, prev)
				if err != nil {
					t.Error(err)
					return
				}
				if err := res.Table.Check(res.Guarantees); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
