package planner

import "testing"

// TestCacheKeyIncludesAffinity is the regression test for the planner-
// cache staleness bug: the affinity map encodes the caller's view of the
// topology (core.System narrows physical affinity sets onto the live
// cores before planning), so two requests identical up to affinity must
// not share an entry. Before the fix the key omitted Affinity entirely
// and a post-failure replan could be served a table planned for the
// pre-failure topology.
func TestCacheKeyIncludesAffinity(t *testing.T) {
	specs := cacheSpecs(2, 20_000_000)
	base := CacheKey(specs, Options{Cores: 2})
	pinned := CacheKey(specs, Options{Cores: 2, Affinity: map[string][]int{"vm0": {0}}})
	if pinned == base {
		t.Error("affinity presence not in key")
	}
	moved := CacheKey(specs, Options{Cores: 2, Affinity: map[string][]int{"vm0": {1}}})
	if moved == pinned {
		t.Error("affinity core set not in key")
	}
	grown := CacheKey(specs, Options{Cores: 2, Affinity: map[string][]int{"vm0": {0, 1}}})
	if grown == pinned {
		t.Error("affinity set size not in key")
	}
	// Map iteration order must not leak into the key.
	a := CacheKey(specs, Options{Cores: 2, Affinity: map[string][]int{"vm0": {0}, "vm1": {1}}})
	b := CacheKey(specs, Options{Cores: 2, Affinity: map[string][]int{"vm1": {1}, "vm0": {0}}})
	if a != b {
		t.Error("affinity key depends on map iteration order")
	}
}

// TestCachePlansAffinityVariantsSeparately drives the staleness bug end
// to end through Cache.Plan: the same population pinned to different
// cores must yield distinct entries with the pin actually honored.
func TestCachePlansAffinityVariantsSeparately(t *testing.T) {
	c := NewCache(8)
	specs := cacheSpecs(2, 20_000_000)
	r0, err := c.Plan(specs, Options{Cores: 2, Affinity: map[string][]int{"vm0": {0}}})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.Plan(specs, Options{Cores: 2, Affinity: map[string][]int{"vm0": {1}}})
	if err != nil {
		t.Fatal(err)
	}
	if r0 == r1 {
		t.Fatal("different affinity served the same cached result")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2 distinct entries", c.Len())
	}
	if got := r0.Table.VCPUs[0].HomeCore; got != 0 {
		t.Errorf("vm0 pinned to core 0 got home core %d", got)
	}
	if got := r1.Table.VCPUs[0].HomeCore; got != 1 {
		t.Errorf("vm0 pinned to core 1 got home core %d", got)
	}
}
