package planner

import (
	"tableau/internal/table"
)

// The peephole optimizer implements the post-processing extension the
// paper sketches in Sec. 5 ("one might add a 'peep-hole' optimization
// pass to reduce the number of migrations and preemptions even
// further"): a sequence of local, guarantee-preserving rewrites of a
// core's allocation list that reduce context switches.
//
// Two rewrites are applied to convergence:
//
//  1. slide-left: an allocation entirely inside one guarantee window,
//     with idle time before it, moves earlier within that window.
//     Per-window service is unchanged, and the worst-case blackout
//     stays within the 2*(T-C) bound that justified the period choice.
//  2. bubble-merge: in the pattern A B A (three contiguous allocations
//     with the outer two belonging to the same vCPU), B is moved before
//     or after the merged A-block when a direct per-window service
//     check passes for both vCPUs. This removes one preemption of A
//     and at least one context switch.
//
// Split vCPUs are never touched (moving their pieces could violate the
// cross-core non-overlap invariant), and the planner re-runs the full
// table validation and guarantee check after the pass, so the pass is
// sound even against bugs in its own reasoning.
type peepholer struct {
	tableLen int64
	split    []bool
	// winOf[v] is vCPU v's guarantee window length (0: no guarantee —
	// such vCPUs are never rewritten).
	winOf []int64
	// svcOf[v] is the guaranteed service per window.
	svcOf []int64
}

func newPeepholer(tableLen int64, nvcpus int, gs []table.Guarantee, split []bool) *peepholer {
	p := &peepholer{
		tableLen: tableLen,
		split:    split,
		winOf:    make([]int64, nvcpus),
		svcOf:    make([]int64, nvcpus),
	}
	for _, g := range gs {
		if g.VCPU >= 0 && g.VCPU < nvcpus {
			p.winOf[g.VCPU] = g.WindowLen
			p.svcOf[g.VCPU] = g.Service
		}
	}
	return p
}

// run optimizes one core's allocation list and reports how many context
// switches were eliminated.
func (p *peepholer) run(allocs []table.Alloc) ([]table.Alloc, int) {
	out := append([]table.Alloc(nil), allocs...)
	before := switchCount(out)
	for changed := true; changed; {
		changed = false
		if p.slideLeft(out) {
			changed = true
		}
		var merged bool
		out, merged = p.bubbleMerge(out)
		if merged {
			changed = true
		}
		out = mergeContiguous(out)
	}
	return out, before - switchCount(out)
}

// switchCount counts vCPU-to-different-vCPU transitions in the cyclic
// schedule; an idle gap costs one switch on re-entry.
func switchCount(allocs []table.Alloc) int {
	if len(allocs) == 0 {
		return 0
	}
	n := 0
	for i := range allocs {
		cur := allocs[i]
		next := allocs[(i+1)%len(allocs)]
		if cur.VCPU != next.VCPU || next.Start != cur.End {
			n++
		}
	}
	return n
}

// movable reports whether vCPU v's allocations may be rewritten.
func (p *peepholer) movable(v int) bool {
	return v != table.Idle && !p.split[v] && p.winOf[v] > 0
}

// sameWindow reports whether [start, end) lies entirely inside one
// guarantee window of vCPU v.
func (p *peepholer) sameWindow(v int, start, end int64) bool {
	w := p.winOf[v]
	return start/w == (end-1)/w
}

// slideLeft moves window-local allocations into idle gaps before them,
// clamped to their window boundary.
func (p *peepholer) slideLeft(allocs []table.Alloc) bool {
	moved := false
	var prevEnd int64
	for i := range allocs {
		a := &allocs[i]
		if p.movable(a.VCPU) && a.Start > prevEnd && p.sameWindow(a.VCPU, a.Start, a.End) {
			limit := prevEnd
			if w := (a.Start / p.winOf[a.VCPU]) * p.winOf[a.VCPU]; w > limit {
				limit = w
			}
			if a.Start > limit {
				l := a.Len()
				a.Start = limit
				a.End = limit + l
				moved = true
			}
		}
		prevEnd = a.End
	}
	return moved
}

// bubbleMerge rewrites one A B A pattern per call, preferring A A B and
// falling back to B A A, whenever the per-window service of both vCPUs
// survives.
func (p *peepholer) bubbleMerge(allocs []table.Alloc) ([]table.Alloc, bool) {
	for i := 0; i+2 < len(allocs); i++ {
		a1, b, a2 := allocs[i], allocs[i+1], allocs[i+2]
		if a1.VCPU != a2.VCPU || a1.VCPU == b.VCPU {
			continue
		}
		if !p.movable(a1.VCPU) || !p.movable(b.VCPU) {
			continue
		}
		if a1.End != b.Start || b.End != a2.Start {
			continue
		}
		for _, variant := range [2]int{0, 1} {
			cand := append([]table.Alloc(nil), allocs[:i]...)
			if variant == 0 { // A A B
				cand = append(cand,
					table.Alloc{Start: a1.Start, End: a1.Start + a1.Len() + a2.Len(), VCPU: a1.VCPU},
					table.Alloc{Start: a1.Start + a1.Len() + a2.Len(), End: a2.End, VCPU: b.VCPU})
			} else { // B A A
				cand = append(cand,
					table.Alloc{Start: a1.Start, End: a1.Start + b.Len(), VCPU: b.VCPU},
					table.Alloc{Start: a1.Start + b.Len(), End: a2.End, VCPU: a1.VCPU})
			}
			cand = append(cand, allocs[i+3:]...)
			if p.windowSafe(cand, a1.VCPU) && p.windowSafe(cand, b.VCPU) {
				return cand, true
			}
		}
	}
	return allocs, false
}

// windowSafe verifies vCPU v's per-window service on a candidate list
// (v is unsplit, so this core carries all of its service).
func (p *peepholer) windowSafe(allocs []table.Alloc, v int) bool {
	win, svc := p.winOf[v], p.svcOf[v]
	if win <= 0 {
		return false
	}
	for w := int64(0); w < p.tableLen; w += win {
		var got int64
		for _, a := range allocs {
			if a.VCPU != v {
				continue
			}
			lo, hi := a.Start, a.End
			if lo < w {
				lo = w
			}
			if hi > w+win {
				hi = w + win
			}
			if hi > lo {
				got += hi - lo
			}
		}
		if got < svc {
			return false
		}
	}
	return true
}
