package planner

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"tableau/internal/periodic"
	"tableau/internal/table"
)

// Stage records which of the planner's three techniques produced the
// final table (paper Sec. 5).
type Stage int

const (
	// StagePartitioned: worst-fit-decreasing partitioning sufficed.
	StagePartitioned Stage = iota
	// StageSemiPartitioned: at least one vCPU was C=D-split.
	StageSemiPartitioned
	// StageClustered: the optimal cluster scheduler was needed.
	StageClustered
)

func (s Stage) String() string {
	switch s {
	case StagePartitioned:
		return "partitioned"
	case StageSemiPartitioned:
		return "semi-partitioned"
	case StageClustered:
		return "clustered"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// SplitInfo describes one C=D-split vCPU in the final plan.
type SplitInfo struct {
	VCPU   int   // index into the spec slice
	Pieces int   // number of subtasks
	Cores  []int // cores hosting the subtasks, in precedence order
}

// Result is a successful planning outcome.
type Result struct {
	// Table is the generated scheduling table, validated, coalesced,
	// slice-indexed, and proven to satisfy Guarantees.
	Table *table.Table
	// Guarantees holds the per-vCPU contracts the table was checked
	// against: service per period window and maximum blackout.
	Guarantees []table.Guarantee
	// Stage is the strongest technique that was needed.
	Stage Stage
	// Tasks is the final task set, including split subtasks; Task.Group
	// is the index of the owning vCPU spec.
	Tasks periodic.TaskSet
	// Splits describes each split vCPU.
	Splits []SplitInfo
	// ClusterCores lists the cores scheduled by the cluster stage
	// (empty unless Stage == StageClustered).
	ClusterCores []int
	// Preemptions and ContextSwitches count events per table cycle,
	// summed over all cores (reported by the ablation experiment).
	Preemptions     int
	ContextSwitches int
	// SwitchesSaved counts context switches removed by the peephole
	// pass (zero unless Options.Peephole).
	SwitchesSaved int
	// CoreTasks records, per planner core id, the ordered task set the
	// per-core EDF stage simulated for that core (nil for dedicated,
	// cluster-scheduled, and empty cores). PlanIncremental pins these
	// assignments on the next plan so cores untouched by a churn batch
	// skip partitioning and re-simulation.
	CoreTasks []periodic.TaskSet
	// Incremental reports the plan reused per-core assignments from a
	// previous result (PlanIncremental's pinning path); PinnedCores
	// counts the cores reused that way.
	Incremental bool
	PinnedCores int
	// SliceHits counts cores whose EDF simulation was served from
	// Options.Slices instead of being re-run.
	SliceHits int
	// FromCache is set by consumers (core.System) on clones served from
	// a whole-problem cache hit; Plan itself always leaves it false.
	FromCache bool
}

// Clone returns a copy of the result that shares no mutable slice
// state with the original: Guarantees, Tasks, Splits (including each
// split's Cores list), and ClusterCores are all deep-copied. Callers
// that post-process a cached plan — remapping guarantee ids into
// another universe, rewriting split placements — must work on a clone
// so the shared original stays intact for other cache users. The Table
// pointer is shared: tables are immutable by convention (consumers
// build replacements, they never edit one in place).
func (r *Result) Clone() *Result {
	out := *r
	out.Guarantees = append([]table.Guarantee(nil), r.Guarantees...)
	out.Tasks = append(periodic.TaskSet(nil), r.Tasks...)
	out.ClusterCores = append([]int(nil), r.ClusterCores...)
	out.Splits = append([]SplitInfo(nil), r.Splits...)
	for i := range out.Splits {
		out.Splits[i].Cores = append([]int(nil), out.Splits[i].Cores...)
	}
	if r.CoreTasks != nil {
		out.CoreTasks = make([]periodic.TaskSet, len(r.CoreTasks))
		for i, ts := range r.CoreTasks {
			out.CoreTasks[i] = append(periodic.TaskSet(nil), ts...)
		}
	}
	return &out
}

var (
	candOnce sync.Once
	candSet  []int64
)

func candidates() []int64 {
	candOnce.Do(func() { candSet = CandidatePeriods() })
	return candSet
}

// Plan generates a scheduling table for the given vCPUs on opts.Cores
// physical cores. It implements the full progression from the paper:
// period selection, worst-fit-decreasing partitioning, C=D
// semi-partitioning, and DP-Fair cluster scheduling, followed by
// coalescing and slice-table construction. The returned table has been
// checked against the per-vCPU guarantees; Plan never returns an
// unverified table.
func Plan(specs []VCPUSpec, opts Options) (*Result, error) {
	return planWith(specs, opts, nil)
}

// planWith is Plan plus an optional pinning: task sets frozen onto
// their previous cores by the incremental path. Pinned specs skip
// period selection and partitioning; their tasks are seeded into the
// core states verbatim, so every later stage (splitting, clustering,
// synthesis, coalescing, the final Check) treats them exactly like
// freshly placed tasks. Correctness therefore never depends on the
// pinning being fresh: the full guarantee check still gates the result.
func planWith(specs []VCPUSpec, opts Options, pin *pinning) (*Result, error) {
	opts = opts.withDefaults()
	if pin != nil && len(pin.override) > 0 {
		// The UnsafeStaleSliceReuse defect: plan against the stale specs
		// so the internally consistent (but wrong) table passes Check.
		specs = append([]VCPUSpec(nil), specs...)
		for i, stale := range pin.override {
			specs[i] = stale
		}
	}
	if err := Admit(specs, opts.Cores); err != nil {
		return nil, err
	}
	if len(opts.Affinity) > 0 {
		if err := affineUtilBound(specs, opts.Affinity); err != nil {
			return nil, err
		}
		for name, cores := range opts.Affinity {
			for _, c := range cores {
				if c < 0 || c >= opts.Cores {
					return nil, fmt.Errorf("planner: affinity of %q names core %d outside 0..%d", name, c, opts.Cores-1)
				}
			}
		}
	}
	// allow maps spec index (task Group) to allowed cores.
	var allow map[int][]int
	if len(opts.Affinity) > 0 {
		allow = make(map[int][]int)
		for i, s := range specs {
			if cores, ok := opts.Affinity[s.Name]; ok && len(cores) > 0 {
				allow[i] = cores
			}
		}
	}
	res := &Result{Stage: StagePartitioned}
	cores := newCoreStates(opts.Cores)

	// Dedicated cores for U=1 vCPUs (paper Sec. 5: excluded from
	// further consideration).
	dedicatedOf := make(map[int]int) // vcpu index -> core
	nextDedicated := 0
	var tasks periodic.TaskSet
	for i, s := range specs {
		if s.Util.IsFull() {
			if nextDedicated >= len(cores) {
				return nil, fmt.Errorf("planner: not enough cores for dedicated vCPU %q", s.Name)
			}
			cores[nextDedicated].dedicated = true
			dedicatedOf[i] = nextDedicated
			nextDedicated++
			continue
		}
		if pin != nil && pin.pinnedSpec[i] {
			continue // placement frozen; seeded below
		}
		tk, err := TaskFor(s.Name, i, s.Util, s.LatencyGoal, candidates())
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, tk)
	}
	if pin != nil {
		if err := seedPinned(cores, pin, res); err != nil {
			return nil, err
		}
	}

	// Stage 1: partitioning.
	unplaced := partitionWFDAffine(cores, tasks, opts.SplitRotation, allow)

	// Stage 2: C=D semi-partitioning.
	if len(unplaced) > 0 && !opts.DisableSplitting {
		var still periodic.TaskSet
		// Split larger tasks first: they are the hardest to place.
		unplaced.SortByUtilDesc()
		for _, tk := range unplaced {
			// Sec. 7.5: compensate a split vCPU for its migration
			// overhead with a few extra percentage points of
			// utilization, if the compensated split still fits.
			pieces, ok := periodic.TaskSet(nil), false
			if opts.SplitCompensationPPM > 0 {
				comp := tk
				extra := tk.Period * opts.SplitCompensationPPM / 1_000_000
				if tk.WCET+extra <= tk.Period {
					comp.WCET += extra
					pieces, ok = splitCDAffine(cores, comp, opts.CoalesceThreshold, allow)
				}
			}
			if !ok {
				pieces, ok = splitCDAffine(cores, tk, opts.CoalesceThreshold, allow)
			}
			if !ok {
				still = append(still, tk)
				continue
			}
			res.Stage = StageSemiPartitioned
			info := SplitInfo{VCPU: tk.Group, Pieces: len(pieces)}
			for _, p := range pieces {
				info.Cores = append(info.Cores, coreHosting(cores, p))
			}
			res.Splits = append(res.Splits, info)
		}
		unplaced = still
	}

	// Stage 3: cluster ("localized optimal") scheduling.
	var clusterSlots [][]periodic.Slot
	var clusterTasks periodic.TaskSet
	var clusterCores []*coreState
	if len(unplaced) > 0 {
		if opts.DisableClustering {
			return nil, fmt.Errorf("planner: %d vCPUs unplaceable and clustering disabled", len(unplaced))
		}
		for _, tk := range unplaced {
			if _, affine := allow[tk.Group]; affine {
				return nil, fmt.Errorf("planner: affine vCPU %q cannot be placed on its allowed cores", tk.Name)
			}
		}
		var err error
		clusterCores, clusterTasks, err = growCluster(cores, unplaced)
		if err != nil {
			return nil, err
		}
		h, err := clusterTasks.Hyperperiod()
		if err != nil {
			return nil, err
		}
		clusterSlots, err = clusterSchedule(clusterTasks, len(clusterCores), h)
		if err != nil {
			return nil, err
		}
		res.Stage = StageClustered
		for _, c := range clusterCores {
			res.ClusterCores = append(res.ClusterCores, c.id)
			c.tasks = nil // now scheduled by the cluster
		}
	}
	inCluster := make(map[int]bool)
	for _, c := range clusterCores {
		inCluster[c.id] = true
	}

	// Global table length: the hyperperiod of every chosen period. All
	// periods divide MaxHyperperiod, so this never exceeds ~102.7 ms.
	tableLen := int64(0)
	addPeriod := func(p int64) error {
		if tableLen == 0 {
			tableLen = p
			return nil
		}
		var err error
		tableLen, err = periodic.LCM(tableLen, p)
		return err
	}
	for _, c := range cores {
		for _, tk := range c.tasks {
			if err := addPeriod(tk.Period); err != nil {
				return nil, err
			}
		}
	}
	for _, tk := range clusterTasks {
		if err := addPeriod(tk.Period); err != nil {
			return nil, err
		}
	}
	if tableLen == 0 {
		// Only dedicated vCPUs (or none): any cycle length works.
		tableLen = 10_000_000
	}
	if opts.TableLength > 0 {
		if opts.TableLength%tableLen != 0 {
			return nil, fmt.Errorf("planner: requested table length %d is not a multiple of the hyperperiod %d", opts.TableLength, tableLen)
		}
		tableLen = opts.TableLength
	}

	// Materialize per-core allocation lists.
	tbl := &table.Table{Len: tableLen, Generation: 1}
	tbl.Cores = make([]table.CoreTable, opts.Cores)
	for i := range tbl.Cores {
		tbl.Cores[i].Core = i
	}
	for i := range specs {
		tbl.VCPUs = append(tbl.VCPUs, table.VCPUInfo{
			Name:           specs[i].Name,
			Capped:         specs[i].Capped,
			HomeCore:       -1,
			UtilizationPPM: specs[i].Util.PPM(),
			LatencyGoal:    specs[i].LatencyGoal,
		})
	}
	for v, c := range dedicatedOf {
		tbl.Cores[c].Allocs = []table.Alloc{{Start: 0, End: tableLen, VCPU: v}}
		tbl.VCPUs[v].HomeCore = c
	}
	res.CoreTasks = make([]periodic.TaskSet, opts.Cores)
	var jobs []synthJob
	// Schedule adoption: a pinned core whose task set survived placement
	// untouched (no new VM was packed onto it) reuses the previous
	// plan's final post-coalesce schedule, renumbered into the current
	// spec universe. Synthesis then skips tiling and the coalesce pass
	// skips the core entirely, making post-processing O(dirty cores).
	// Disabled under the peephole pass, whose SwitchesSaved accounting
	// would otherwise drift. Safety never rests on this: the final
	// Validate + Check below gate adopted output like any other.
	adopted := make([]bool, opts.Cores)
	adoptable := pin != nil && !opts.Peephole && pin.prevTable != nil &&
		pin.prevTable.Len == tableLen && len(pin.prevTable.Cores) == opts.Cores
	for _, c := range cores {
		if c.dedicated || inCluster[c.id] || len(c.tasks) == 0 {
			continue
		}
		res.CoreTasks[c.id] = c.tasks
		j := synthJob{core: c.id, tasks: c.tasks}
		if adoptable && len(pin.coreTasks[c.id]) > 0 && slices.Equal(c.tasks, pin.coreTasks[c.id]) {
			if a, ok := renumberAllocs(pin.prevTable.Cores[c.id].Allocs, pin.renumber); ok {
				j.adopt = a
				j.adoptFrom = &pin.prevTable.Cores[c.id]
				adopted[c.id] = true
			}
		}
		jobs = append(jobs, j)
	}
	if err := synthesizeCores(tbl, res, jobs, tableLen, opts); err != nil {
		return nil, err
	}
	if len(clusterSlots) > 0 {
		clusterH, err := clusterTasks.Hyperperiod()
		if err != nil {
			return nil, err
		}
		for i, c := range clusterCores {
			tbl.Cores[c.id].Allocs = tileSlots(clusterSlots[i], clusterTasks, clusterH, tableLen)
			res.ContextSwitches += len(clusterSlots[i]) * int(tableLen/clusterH)
		}
	}

	// Record final tasks and per-vCPU guarantees.
	for _, c := range cores {
		res.Tasks = append(res.Tasks, c.tasks...)
	}
	res.Tasks = append(res.Tasks, clusterTasks...)
	res.Guarantees = guaranteesFor(specs, res.Tasks, dedicatedOf, tableLen)

	// Post-processing: coalesce unenforceable slivers, honoring the
	// service guarantees.
	splitVCPU := markSplit(tbl)
	donated := make(map[donationKey]int64)
	for ci := range tbl.Cores {
		if adopted[ci] {
			// The adopted schedule is the previous plan's post-coalesce
			// output; its embedded donations are visible to later
			// affordability checks through VCPUSlots, and pinned vCPUs
			// never share donation budgets with dirty cores (a split
			// chain pins all of its hosts or none).
			continue
		}
		ct := &tbl.Cores[ci]
		ct.Allocs = coalesceCore(ct.Allocs, opts.CoalesceThreshold, tableLen,
			func(v int) bool { return !splitVCPU[v] },
			func(v int, start, end int64) bool {
				if !donationAffordable(tbl, res.Guarantees, donated, v, start, end) {
					return false
				}
				// Record the (possibly multi-window) loss so later
				// affordability checks see it.
				g := guaranteeOf(res.Guarantees, v)
				for w := (start / g.WindowLen) * g.WindowLen; w < end; w += g.WindowLen {
					donated[donationKey{v, w}] += min64(end, w+g.WindowLen) - max64(start, w)
				}
				return true
			})
	}

	// Optional peephole pass: guarantee-preserving context-switch
	// reduction (paper Sec. 5, post-processing extensions).
	if opts.Peephole {
		ph := newPeepholer(tableLen, len(tbl.VCPUs), res.Guarantees, splitVCPU)
		for ci := range tbl.Cores {
			var saved int
			tbl.Cores[ci].Allocs, saved = ph.run(tbl.Cores[ci].Allocs)
			res.SwitchesSaved += saved
		}
	}

	// Home cores: the core where the vCPU has the most reserved time
	// (the "trailing core" policy uses last-allocation cores at runtime;
	// the static home seeds second-level membership).
	assignHomeCores(tbl)
	for v := range tbl.VCPUs {
		tbl.VCPUs[v].Split = splitVCPU[v]
	}

	if err := tbl.Validate(); err != nil {
		return nil, fmt.Errorf("planner: generated table failed validation: %w", err)
	}
	// Slice-index reuse: a core whose final allocation list is
	// bit-identical to the previous plan's (pinned cores after identical
	// coalescing, the common case under churn) adopts that plan's index
	// instead of rebuilding it — the index is a pure function of (table
	// length, slice length, allocation intervals). Content equality is
	// checked here, so a stale prevTable can only miss, never corrupt.
	if pin != nil && pin.prevTable != nil && pin.prevTable.Len == tbl.Len &&
		len(pin.prevTable.Cores) == len(tbl.Cores) {
		for ci := range tbl.Cores {
			if tbl.Cores[ci].SliceLen != 0 {
				continue // adopted at synthesis merge, index already present
			}
			if slices.Equal(tbl.Cores[ci].Allocs, pin.prevTable.Cores[ci].Allocs) {
				tbl.Cores[ci].TransplantSlices(&pin.prevTable.Cores[ci])
			}
		}
	}
	if err := tbl.BuildMissingSlices(opts.MaxSlicesPerCore); err != nil {
		return nil, err
	}
	if err := tbl.Check(res.Guarantees); err != nil {
		return nil, fmt.Errorf("planner: generated table failed guarantee check: %w", err)
	}
	res.Table = tbl
	return res, nil
}

// coreHosting returns the id of the core whose task set contains the
// exact subtask p (matched by name and offset).
func coreHosting(cores []*coreState, p periodic.Task) int {
	for _, c := range cores {
		for _, tk := range c.tasks {
			if tk.Name == p.Name && tk.Offset == p.Offset && tk.WCET == p.WCET {
				return c.id
			}
		}
	}
	return -1
}

// tileSlots converts simulator slots (task indices into ts, covering
// [0, srcLen)) into table allocations (vCPU indices, covering
// [0, dstLen)) by repeating the cyclic schedule dstLen/srcLen times and
// merging across tile seams.
func tileSlots(slots []periodic.Slot, ts periodic.TaskSet, srcLen, dstLen int64) []table.Alloc {
	reps := dstLen / srcLen
	out := make([]table.Alloc, 0, int(reps)*len(slots))
	for r := int64(0); r < reps; r++ {
		off := r * srcLen
		for _, s := range slots {
			a := table.Alloc{Start: s.Start + off, End: s.End + off, VCPU: ts[s.Task].Group}
			if n := len(out); n > 0 && out[n-1].VCPU == a.VCPU && out[n-1].End == a.Start {
				out[n-1].End = a.End
				continue
			}
			out = append(out, a)
		}
	}
	return out
}

// guaranteesFor derives the per-vCPU table guarantees: the summed budget
// of the vCPU's (sub)tasks in every period window, and the latency goal
// as the blackout bound.
func guaranteesFor(specs []VCPUSpec, tasks periodic.TaskSet, dedicated map[int]int, tableLen int64) []table.Guarantee {
	type agg struct {
		service int64
		period  int64
	}
	per := make(map[int]*agg)
	for _, tk := range tasks {
		a := per[tk.Group]
		if a == nil {
			a = &agg{period: tk.Period}
			per[tk.Group] = a
		}
		a.service += tk.WCET
	}
	var gs []table.Guarantee
	for i, s := range specs {
		if _, ok := dedicated[i]; ok {
			gs = append(gs, table.Guarantee{VCPU: i, Service: tableLen, WindowLen: tableLen, MaxBlackout: s.LatencyGoal})
			continue
		}
		a := per[i]
		if a == nil {
			continue
		}
		gs = append(gs, table.Guarantee{VCPU: i, Service: a.service, WindowLen: a.period, MaxBlackout: s.LatencyGoal})
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i].VCPU < gs[j].VCPU })
	return gs
}

// markSplit returns, per vCPU index, whether it holds reservations on
// more than one core.
func markSplit(tbl *table.Table) []bool {
	coreOf := make([]int, len(tbl.VCPUs))
	split := make([]bool, len(tbl.VCPUs))
	for i := range coreOf {
		coreOf[i] = -1
	}
	for _, ct := range tbl.Cores {
		for _, a := range ct.Allocs {
			if a.VCPU == table.Idle {
				continue
			}
			switch coreOf[a.VCPU] {
			case -1:
				coreOf[a.VCPU] = ct.Core
			case ct.Core:
			default:
				split[a.VCPU] = true
			}
		}
	}
	return split
}

// donationKey identifies one (vCPU, period-window) pair for donation
// accounting during coalescing.
type donationKey struct {
	vcpu int
	w    int64
}

// guaranteeOf returns the guarantee entry for the vCPU, or nil.
func guaranteeOf(gs []table.Guarantee, vcpu int) *table.Guarantee {
	for i := range gs {
		if gs[i].VCPU == vcpu {
			return &gs[i]
		}
	}
	return nil
}

// donationAffordable reports whether removing [start,end) from the
// vCPU's reservations still leaves at least the guaranteed service in
// the affected period window(s), accounting for losses already granted
// to earlier donations (the donated map, keyed by vcpu and window
// start).
func donationAffordable(tbl *table.Table, gs []table.Guarantee, donated map[donationKey]int64, vcpu int, start, end int64) bool {
	g := guaranteeOf(gs, vcpu)
	if g == nil || g.WindowLen <= 0 {
		return false
	}
	slots := tbl.VCPUSlots(vcpu)
	for w := (start / g.WindowLen) * g.WindowLen; w < end; w += g.WindowLen {
		var svc int64
		for _, a := range slots {
			lo, hi := a.Start, a.End
			if lo < w {
				lo = w
			}
			if hi > w+g.WindowLen {
				hi = w + g.WindowLen
			}
			if hi > lo {
				svc += hi - lo
			}
		}
		svc -= donated[donationKey{vcpu, w}]
		loss := min64(end, w+g.WindowLen) - max64(start, w)
		if svc-loss < g.Service {
			return false
		}
	}
	return true
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// assignHomeCores sets each vCPU's HomeCore to the core holding its
// largest total reservation (first core wins ties); vCPUs with no
// reservation keep HomeCore -1 unless already set (dedicated).
func assignHomeCores(tbl *table.Table) {
	service := make([]map[int]int64, len(tbl.VCPUs))
	for _, ct := range tbl.Cores {
		for _, a := range ct.Allocs {
			if a.VCPU == table.Idle {
				continue
			}
			if service[a.VCPU] == nil {
				service[a.VCPU] = make(map[int]int64)
			}
			service[a.VCPU][ct.Core] += a.Len()
		}
	}
	for v := range tbl.VCPUs {
		if service[v] == nil {
			continue
		}
		bestCore, bestSvc := -1, int64(-1)
		for c, s := range service[v] {
			if s > bestSvc || (s == bestSvc && c < bestCore) {
				bestCore, bestSvc = c, s
			}
		}
		tbl.VCPUs[v].HomeCore = bestCore
	}
}
