package planner

import (
	"fmt"
	"testing"
)

func benchSpecs(n int) []VCPUSpec {
	specs := make([]VCPUSpec, n)
	for i := range specs {
		specs[i] = VCPUSpec{
			Name:        fmt.Sprintf("vm%d", i),
			Util:        Util{Num: 1, Den: 4},
			LatencyGoal: 20_000_000,
			Capped:      true,
		}
	}
	return specs
}

func BenchmarkPlan(b *testing.B) {
	for _, vms := range []int{16, 48, 176} {
		b.Run(fmt.Sprintf("vms=%d", vms), func(b *testing.B) {
			specs := benchSpecs(vms)
			opts := Options{Cores: (vms + 3) / 4}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Plan(specs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCacheHit(b *testing.B) {
	c := NewCache(8)
	specs := benchSpecs(48)
	opts := Options{Cores: 12}
	if _, err := c.Plan(specs, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Plan(specs, opts); err != nil {
			b.Fatal(err)
		}
	}
}
