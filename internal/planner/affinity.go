package planner

import (
	"fmt"
	"math/big"
	"sort"

	"tableau/internal/periodic"
)

// Affinity support implements the placement hook the paper calls out in
// Sec. 5: "Partitioning also has the advantage that additional
// considerations such as memory locality on NUMA platforms, special
// treatment of hardware threads, or cache interference concerns can be
// easily incorporated." A vCPU with an affinity set is only partitioned
// onto (or split across) the listed cores; vCPUs without affinity may
// go anywhere.

// allowedOn reports whether the task's vCPU may be placed on core id.
// allow == nil means unrestricted.
func allowedOn(allow map[int][]int, group, core int) bool {
	cores, ok := allow[group]
	if !ok || len(cores) == 0 {
		return true
	}
	for _, c := range cores {
		if c == core {
			return true
		}
	}
	return false
}

// Headroom reports how many additional vCPUs of the given shape could
// be admitted and planned on top of the existing population — the
// consolidation question of the paper's introduction ("the ability to
// pack VMs as tightly as possible without violating customer
// expectations is a distinct economic advantage"). It binary-searches
// the largest n for which planning the combined population succeeds,
// probing up to limit extra vCPUs (limit <= 0 selects 4x the core
// count).
//
// Planning the full population for each probe keeps the answer honest:
// a shape that passes the utilization bound can still be unplaceable,
// and one that defeats partitioning may still split or cluster.
func Headroom(existing []VCPUSpec, shape VCPUSpec, opts Options, limit int) (int, error) {
	if err := shape.Validate(); err != nil {
		return 0, err
	}
	if limit <= 0 {
		limit = 4 * opts.Cores
	}
	fits := func(n int) bool {
		specs := append([]VCPUSpec(nil), existing...)
		for i := 0; i < n; i++ {
			s := shape
			s.Name = fmt.Sprintf("%s+%d", shape.Name, i)
			specs = append(specs, s)
		}
		if Admit(specs, opts.Cores) != nil {
			return false
		}
		_, err := Plan(specs, opts)
		return err == nil
	}
	// The predicate is monotone in n for all practical purposes (more
	// identical VMs never make planning easier), so binary search.
	lo, hi := 0, limit
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}

// partitionWFDAffine is partitionWFDRotated with per-vCPU affinity
// restrictions.
func partitionWFDAffine(cores []*coreState, tasks periodic.TaskSet, rotation int, allow map[int][]int) (unplaced periodic.TaskSet) {
	if len(allow) == 0 {
		return partitionWFDRotated(cores, tasks, rotation)
	}
	order := tasks.Clone()
	if n := len(order); rotation != 0 && n > 0 {
		r := ((rotation % n) + n) % n
		order = append(order[r:], order[:r]...)
		order.SortByUtilStable()
	} else {
		order.SortByUtilDesc()
	}
	for _, tk := range order {
		if c := leastUtilizedFitAffine(cores, tk, allow); c != nil {
			c.add(tk)
		} else {
			unplaced = append(unplaced, tk)
		}
	}
	return unplaced
}

// leastUtilizedFitAffine is leastUtilizedFit restricted to tk's allowed
// cores.
func leastUtilizedFitAffine(cores []*coreState, tk periodic.Task, allow map[int][]int) *coreState {
	idx := make([]*coreState, 0, len(cores))
	for _, c := range cores {
		if !c.dedicated && allowedOn(allow, tk.Group, c.id) {
			idx = append(idx, c)
		}
	}
	sort.SliceStable(idx, func(i, j int) bool {
		if c := idx[i].util.cmp(&idx[j].util); c != 0 {
			return c < 0
		}
		return idx[i].id < idx[j].id
	})
	for _, c := range idx {
		if c.fits(tk) {
			return c
		}
	}
	return nil
}

// affineUtilBound verifies a necessary admission condition for affinity
// sets: for every distinct affinity core set, the total utilization of
// vCPUs restricted to it must not exceed its size. (Sufficient checks
// happen during planning; this catches obvious misconfigurations with a
// clear error.)
func affineUtilBound(specs []VCPUSpec, affinities map[string][]int) error {
	type key string
	groups := make(map[key]*big.Rat)
	sizes := make(map[key]int)
	for _, s := range specs {
		cores, ok := affinities[s.Name]
		if !ok || len(cores) == 0 {
			continue
		}
		sorted := append([]int(nil), cores...)
		sort.Ints(sorted)
		k := key(fmt.Sprint(sorted))
		if groups[k] == nil {
			groups[k] = new(big.Rat)
			sizes[k] = len(sorted)
		}
		groups[k].Add(groups[k], big.NewRat(s.Util.Num, s.Util.Den))
	}
	for k, total := range groups {
		if total.Cmp(new(big.Rat).SetInt64(int64(sizes[k]))) > 0 {
			f, _ := total.Float64()
			return fmt.Errorf("planner: affinity set %s over-utilized: %.3f on %d cores", k, f, sizes[k])
		}
	}
	return nil
}
