package planner

import (
	"fmt"
	"math/big"
)

// Class is a vCPU's tenancy class, in the Akita style: latency-
// sensitive (LS) guests hold hard guarantees that survive overload,
// best-effort (BE) guests soak slack and are the first to shed. The
// zero value is LS, so populations that never mention classes behave
// exactly as before the class existed.
type Class uint8

const (
	// LS marks a latency-sensitive guest: its admitted guarantee is
	// never displaced by another admission.
	LS Class = iota
	// BE marks a best-effort guest: admitted into remaining headroom,
	// deprioritized in the second-level scheduler, shed first under
	// overload (as a committed, journaled deactivation).
	BE
)

func (c Class) String() string {
	if c == BE {
		return "BE"
	}
	return "LS"
}

// A VCPUSpec is the planner's per-vCPU input: the reserved utilization U
// and the maximum acceptable scheduling latency L (paper Sec. 5). These
// may come from an explicit SLA, from price-differentiated service tiers,
// or from a fair-share default; the planner does not care.
type VCPUSpec struct {
	// Name identifies the vCPU, e.g. "vm3.0".
	Name string
	// Util is the reserved utilization in (0, 1].
	Util Util
	// LatencyGoal is the maximum scheduling latency L in ns.
	LatencyGoal int64
	// Capped vCPUs may only use their reservation; uncapped vCPUs also
	// participate in the second-level scheduler.
	Capped bool
	// Class is the tenancy class (LS or BE). The table math is
	// class-blind — a BE reservation is planned exactly like an LS one —
	// but admission under overload, the second-level pick order, and the
	// controller's shed policy read it.
	Class Class
}

// Validate checks a single vCPU spec.
func (s VCPUSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("planner: vCPU with empty name")
	}
	if err := s.Util.Validate(); err != nil {
		return fmt.Errorf("planner: vCPU %q: %w", s.Name, err)
	}
	if s.LatencyGoal <= 0 {
		return fmt.Errorf("planner: vCPU %q: non-positive latency goal %d", s.Name, s.LatencyGoal)
	}
	return nil
}

// Options configures a planning run. The zero value selects the defaults
// documented on each field; Cores must always be set.
type Options struct {
	// Cores is the number of physical cores available to guest vCPUs.
	Cores int

	// CoalesceThreshold merges reservations shorter than this many ns
	// into a neighbor during post-processing; such slivers cannot be
	// enforced because context-switch overheads dominate. Default 10 µs.
	CoalesceThreshold int64

	// MaxSlicesPerCore bounds the slice-table size per core.
	// Default 4 Mi entries.
	MaxSlicesPerCore int

	// TableLength, when non-zero, forces the generated table to cover
	// this length (it must be a multiple of every chosen period; the
	// divisor-based period candidates make MaxHyperperiod always
	// valid). Zero picks the hyperperiod of the chosen periods — the
	// shortest valid table. The Fig. 3/4 experiments set this to
	// MaxHyperperiod to mirror the paper's fixed-length tables.
	TableLength int64

	// DisableSplitting turns off the C=D semi-partitioning stage
	// (used by the ablation experiment).
	DisableSplitting bool

	// DisableClustering turns off the optimal cluster-scheduling stage
	// (used by the ablation experiment).
	DisableClustering bool

	// Peephole enables the guarantee-preserving context-switch
	// reduction pass (the paper's Sec. 5 "peep-hole optimization"
	// extension). Off by default: it lengthens planning and the paper's
	// core evaluation does not use it.
	Peephole bool

	// SplitCompensationPPM inflates the utilization of a vCPU that ends
	// up C=D-split by this many parts-per-million before splitting, the
	// paper's Sec. 7.5 suggestion for compensating split vCPUs for
	// their extra migration overhead. For example, 30_000 grants a
	// split vCPU an extra 3% of a core.
	SplitCompensationPPM int64

	// Affinity restricts named vCPUs to subsets of cores (the paper's
	// Sec. 5 NUMA/cache placement hook): map from vCPU name to allowed
	// core ids. vCPUs absent from the map are unrestricted. Affine
	// vCPUs are honored by partitioning and C=D splitting; a workload
	// whose affine vCPUs cannot be placed without the cluster stage is
	// rejected with a descriptive error.
	Affinity map[string][]int

	// SplitRotation rotates placement tie-breaking among equal-
	// utilization vCPUs, implementing the paper's other Sec. 7.5
	// suggestion: regenerate the table periodically with an advancing
	// rotation so the migration penalty of being split is taken in
	// turns rather than borne by one unlucky vCPU. core.System advances
	// it on every replan when rotation is enabled.
	SplitRotation int

	// PlannerWorkers bounds the goroutines used for the per-core EDF
	// table-synthesis stage; values <= 1 run it serially. Synthesis
	// jobs are independent per core and their outputs are merged in
	// core order, so the generated table is byte-identical at any
	// worker count. Execution shape only: excluded from CacheKey.
	PlannerWorkers int

	// Slices, when set, memoizes per-core EDF simulations across plans
	// keyed by the core's ordered task parameters (see SliceCache). A
	// hit returns the identical simulation a fresh run would produce,
	// so tables stay byte-identical with or without the cache; excluded
	// from CacheKey.
	Slices *SliceCache

	// UnsafeStaleSliceReuse is a mutation-smoke defect switch for
	// PlanIncremental: a same-named vCPU is treated as unchanged even
	// when its reservation was reconfigured, so its stale per-core
	// placement (and the stale spec that makes the planner's own final
	// Check pass) is reused. The verify oracles must catch the epoch
	// that under-serves the reconfigured VM. Never set outside tests.
	UnsafeStaleSliceReuse bool
}

func (o Options) withDefaults() Options {
	if o.CoalesceThreshold == 0 {
		o.CoalesceThreshold = 10_000
	}
	return o
}

// ErrOverUtilized is returned when the sum of reserved utilizations
// exceeds the number of cores: a misconfiguration that Tableau rejects
// (paper Sec. 5).
type ErrOverUtilized struct {
	Total *big.Rat
	Cores int
}

func (e *ErrOverUtilized) Error() string {
	f, _ := e.Total.Float64()
	return fmt.Sprintf("planner: over-utilized: total reserved utilization %.4f exceeds %d cores", f, e.Cores)
}

// Admit validates all specs and checks the system-wide admission
// condition sum(U) <= Cores using exact arithmetic.
func Admit(specs []VCPUSpec, cores int) error {
	if cores <= 0 {
		return fmt.Errorf("planner: non-positive core count %d", cores)
	}
	seen := make(map[string]struct{}, len(specs))
	total := zeroFrac()
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return err
		}
		if _, dup := seen[s.Name]; dup {
			return fmt.Errorf("planner: duplicate vCPU name %q", s.Name)
		}
		seen[s.Name] = struct{}{}
		total.add(s.Util.Num, s.Util.Den)
	}
	if total.cmpInt(int64(cores)) > 0 {
		return &ErrOverUtilized{Total: total.rat(), Cores: cores}
	}
	return nil
}

// AdmitLS checks admission over the latency-sensitive subpopulation
// only: sum(U of LS specs) <= Cores. This is the gate that decides
// whether an overloaded host may save an LS admission by shedding BE
// guests — the LS guarantees alone must fit, so no LS guest is ever
// displaced to make room for another. BE specs are validated but do
// not count against capacity here.
func AdmitLS(specs []VCPUSpec, cores int) error {
	if cores <= 0 {
		return fmt.Errorf("planner: non-positive core count %d", cores)
	}
	seen := make(map[string]struct{}, len(specs))
	total := zeroFrac()
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return err
		}
		if _, dup := seen[s.Name]; dup {
			return fmt.Errorf("planner: duplicate vCPU name %q", s.Name)
		}
		seen[s.Name] = struct{}{}
		if s.Class != LS {
			continue
		}
		total.add(s.Util.Num, s.Util.Den)
	}
	if total.cmpInt(int64(cores)) > 0 {
		return &ErrOverUtilized{Total: total.rat(), Cores: cores}
	}
	return nil
}
