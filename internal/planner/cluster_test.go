package planner

import (
	"math/rand"
	"testing"

	"tableau/internal/periodic"
)

// checkClusterSlots validates the structural properties of a cluster
// schedule: slots within bounds, no per-core overlap, no cross-core
// parallelism for any task, and exact per-period service.
func checkClusterSlots(t *testing.T, ts periodic.TaskSet, slots [][]periodic.Slot, m int, horizon int64) {
	t.Helper()
	type span struct {
		s, e int64
		core int
	}
	byTask := make(map[int][]span)
	for c, coreSlots := range slots {
		var prevEnd int64
		for _, sl := range coreSlots {
			if sl.Start < prevEnd || sl.End <= sl.Start || sl.End > horizon {
				t.Fatalf("core %d: bad slot %+v", c, sl)
			}
			prevEnd = sl.End
			byTask[sl.Task] = append(byTask[sl.Task], span{sl.Start, sl.End, c})
		}
	}
	for ti, spans := range byTask {
		for i := 0; i < len(spans); i++ {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.core != b.core && a.s < b.e && b.s < a.e {
					t.Fatalf("task %d runs in parallel on cores %d and %d", ti, a.core, b.core)
				}
			}
		}
	}
	// Exact service per period window.
	for i, tk := range ts {
		for w := int64(0); w < horizon; w += tk.Period {
			var svc int64
			for _, sp := range byTask[i] {
				lo, hi := sp.s, sp.e
				if lo < w {
					lo = w
				}
				if hi > w+tk.Period {
					hi = w + tk.Period
				}
				if hi > lo {
					svc += hi - lo
				}
			}
			if svc != tk.WCET {
				t.Fatalf("task %s window [%d,%d): service %d, want %d", tk.Name, w, w+tk.Period, svc, tk.WCET)
			}
		}
	}
}

func TestClusterScheduleTwoCoresFull(t *testing.T) {
	// Three tasks of 2/3 each on two cores: unpartitionable (any pair
	// exceeds one core), total utilization exactly 2. The classic case
	// needing optimal scheduling.
	ts := periodic.TaskSet{
		implicitTask("a", 200, 300),
		implicitTask("b", 200, 300),
		implicitTask("c", 200, 300),
	}
	slots, err := clusterSchedule(ts, 2, 300)
	if err != nil {
		t.Fatal(err)
	}
	checkClusterSlots(t, ts, slots, 2, 300)
}

func TestClusterScheduleMixedPeriods(t *testing.T) {
	ts := periodic.TaskSet{
		implicitTask("a", 50, 100),
		implicitTask("b", 120, 150),
		implicitTask("c", 180, 300),
		implicitTask("d", 70, 100),
	}
	h, err := ts.Hyperperiod()
	if err != nil {
		t.Fatal(err)
	}
	slots, err := clusterSchedule(ts, 3, h)
	if err != nil {
		t.Fatal(err)
	}
	checkClusterSlots(t, ts, slots, 3, h)
}

func TestClusterScheduleRejectsOverUtilized(t *testing.T) {
	ts := periodic.TaskSet{
		implicitTask("a", 80, 100),
		implicitTask("b", 80, 100),
		implicitTask("c", 80, 100),
	}
	if _, err := clusterSchedule(ts, 2, 100); err == nil {
		t.Error("over-utilized cluster accepted")
	}
}

func TestClusterScheduleRejectsBadInput(t *testing.T) {
	constrained := periodic.TaskSet{{Name: "a", WCET: 10, Deadline: 50, Period: 100}}
	if _, err := clusterSchedule(constrained, 2, 100); err == nil {
		t.Error("constrained-deadline task accepted")
	}
	offset := periodic.TaskSet{{Name: "a", Offset: 5, WCET: 10, Deadline: 100, Period: 100}}
	if _, err := clusterSchedule(offset, 2, 100); err == nil {
		t.Error("offset task accepted")
	}
	bad := periodic.TaskSet{implicitTask("a", 10, 100)}
	if _, err := clusterSchedule(bad, 2, 150); err == nil {
		t.Error("non-multiple horizon accepted")
	}
	if _, err := clusterSchedule(bad, 0, 100); err == nil {
		t.Error("zero cores accepted")
	}
}

// Property: random feasible clusters always schedule correctly.
func TestClusterScheduleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	periods := []int64{100, 200, 300, 600}
	scheduled := 0
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(3)
		n := 2 + rng.Intn(6)
		var ts periodic.TaskSet
		for i := 0; i < n; i++ {
			p := periods[rng.Intn(len(periods))]
			c := 1 + rng.Int63n(p-1)
			ts = append(ts, implicitTask(string(rune('a'+i)), c, p))
		}
		if !ts.UtilAtMost(int64(m)) {
			continue
		}
		h, err := ts.Hyperperiod()
		if err != nil {
			t.Fatal(err)
		}
		slots, err := clusterSchedule(ts, m, h)
		if err != nil {
			t.Fatalf("trial %d: feasible cluster rejected: %v (set %v, m=%d)", trial, err, ts, m)
		}
		checkClusterSlots(t, ts, slots, m, h)
		scheduled++
	}
	if scheduled < 50 {
		t.Fatalf("only %d clusters exercised", scheduled)
	}
}
