package planner

import (
	"fmt"
	"sort"

	"tableau/internal/periodic"
)

// clusterSchedule schedules the given implicit-deadline tasks on m cores
// using a DP-Fair-style boundary scheduler ("localized optimal
// scheduling", paper Sec. 5): time is partitioned into slices at every
// period boundary; within each slice every task receives (approximately)
// its proportional share, with zero-laxity ("mandatory") work served
// first, and the per-slice allocations are laid onto the cores with
// McNaughton's wrap-around algorithm. Tasks may migrate between cores at
// slice boundaries — the many-preemptions cost the paper accepts for
// this rarely-needed last resort.
//
// The returned slots use task indices into ts and cover [0, horizon).
// The scheduler is exact at nanosecond granularity: every task receives
// exactly its WCET in every period window, verified by construction and
// re-verified by the planner's final table check. An error is returned
// if the set is infeasible on m cores (total utilization > m) or if
// lag accumulation makes some slice's mandatory work exceed capacity.
func clusterSchedule(ts periodic.TaskSet, m int, horizon int64) ([][]periodic.Slot, error) {
	if m <= 0 {
		return nil, fmt.Errorf("planner: cluster with %d cores", m)
	}
	for _, tk := range ts {
		if !tk.Implicit() || tk.Offset != 0 {
			return nil, fmt.Errorf("planner: cluster scheduler requires synchronous implicit-deadline tasks, got %v", tk)
		}
		if horizon%tk.Period != 0 {
			return nil, fmt.Errorf("planner: horizon %d is not a multiple of period %d", horizon, tk.Period)
		}
	}
	if !ts.UtilAtMost(int64(m)) {
		return nil, fmt.Errorf("planner: cluster over-utilized for %d cores", m)
	}

	boundaries := ts.Deadlines(horizon)
	served := make([]int64, len(ts))      // service in the current period
	periodStart := make([]int64, len(ts)) // start of the current period
	out := make([][]periodic.Slot, m)

	for bi := 0; bi+1 < len(boundaries); bi++ {
		s, e := boundaries[bi], boundaries[bi+1]
		l := e - s
		for i, tk := range ts {
			if s%tk.Period == 0 {
				served[i] = 0
				periodStart[i] = s
			}
		}
		alloc := make([]int64, len(ts))
		capacity := int64(m) * l
		// Mandatory (zero-laxity) work: what must run in this slice so
		// the job can still finish by its period end.
		for i, tk := range ts {
			rem := tk.WCET - served[i]
			deadline := periodStart[i] + tk.Period
			mand := rem - (deadline - e)
			if mand < 0 {
				mand = 0
			}
			if mand > l || mand > rem {
				return nil, fmt.Errorf("planner: cluster slice [%d,%d): task %s mandatory %d exceeds slice", s, e, tk.Name, mand)
			}
			alloc[i] = mand
			capacity -= mand
		}
		if capacity < 0 {
			return nil, fmt.Errorf("planner: cluster slice [%d,%d): mandatory work exceeds capacity", s, e)
		}
		// Proportional top-up: bring every task to the floor of its
		// fluid (ideal) cumulative service, largest deficit first.
		type deficit struct {
			idx  int
			want int64
		}
		var wants []deficit
		for i, tk := range ts {
			ideal := tk.WCET * (e - periodStart[i]) / tk.Period // floor of fluid service
			want := ideal - served[i] - alloc[i]
			if want <= 0 {
				continue
			}
			if maxMore := l - alloc[i]; want > maxMore {
				want = maxMore
			}
			if rem := tk.WCET - served[i] - alloc[i]; want > rem {
				want = rem
			}
			if want > 0 {
				wants = append(wants, deficit{i, want})
			}
		}
		sort.SliceStable(wants, func(a, b int) bool {
			// Earlier deadline first, then larger deficit, then index.
			da := periodStart[wants[a].idx] + ts[wants[a].idx].Period
			db := periodStart[wants[b].idx] + ts[wants[b].idx].Period
			if da != db {
				return da < db
			}
			if wants[a].want != wants[b].want {
				return wants[a].want > wants[b].want
			}
			return wants[a].idx < wants[b].idx
		})
		for _, w := range wants {
			if capacity == 0 {
				break
			}
			take := w.want
			if take > capacity {
				take = capacity
			}
			alloc[w.idx] += take
			capacity -= take
		}
		// Work-conserving pass: floor-based shares waste up to a few ns
		// of capacity per slice, which would accumulate into an
		// infeasible final slice when the cluster is exactly full. Hand
		// the remainder to tasks with work left, earliest deadline
		// first, still capped at the slice length.
		if capacity > 0 {
			order := make([]int, 0, len(ts))
			for i := range ts {
				order = append(order, i)
			}
			sort.SliceStable(order, func(a, b int) bool {
				da := periodStart[order[a]] + ts[order[a]].Period
				db := periodStart[order[b]] + ts[order[b]].Period
				if da != db {
					return da < db
				}
				return order[a] < order[b]
			})
			for _, i := range order {
				if capacity == 0 {
					break
				}
				extra := ts[i].WCET - served[i] - alloc[i]
				if room := l - alloc[i]; extra > room {
					extra = room
				}
				if extra > capacity {
					extra = capacity
				}
				if extra > 0 {
					alloc[i] += extra
					capacity -= extra
				}
			}
		}
		// McNaughton wrap-around: lay the allocations onto the m cores.
		// Each allocation is <= l, so the (at most two) pieces of a task
		// never overlap in time.
		core, pos := 0, int64(0)
		emit := func(c int, from, to int64, task int) {
			if to <= from {
				return
			}
			slots := out[c]
			if n := len(slots); n > 0 && slots[n-1].Task == task && slots[n-1].End == from {
				out[c][n-1].End = to
			} else {
				out[c] = append(out[c], periodic.Slot{Start: from, End: to, Task: task})
			}
		}
		for i := range ts {
			a := alloc[i]
			if a == 0 {
				continue
			}
			served[i] += a
			first := a
			if first > l-pos {
				first = l - pos
			}
			emit(core, s+pos, s+pos+first, i)
			pos += first
			a -= first
			if pos == l {
				core, pos = core+1, 0
			}
			if a > 0 {
				if core >= m {
					return nil, fmt.Errorf("planner: cluster slice [%d,%d): wrap overflow", s, e)
				}
				emit(core, s, s+a, i)
				pos = a
			}
		}
	}
	// Verify exact per-period service — cheap and makes the scheduler
	// self-checking before the table-level verification runs.
	for i, tk := range ts {
		var total int64
		for _, slots := range out {
			for _, sl := range slots {
				if sl.Task == i {
					total += sl.Len()
				}
			}
		}
		if want := (horizon / tk.Period) * tk.WCET; total != want {
			return nil, fmt.Errorf("planner: cluster task %s received %d of %d ns over the hyperperiod", tk.Name, total, want)
		}
	}
	return out, nil
}

// growCluster selects which cores to merge into a cluster for the tasks
// that could not be placed by partitioning or splitting. Starting from
// the least-utilized eligible cores (paper: "close" cores are merged
// first; we approximate closeness by load so donated tasks are few), it
// returns the chosen cores and the combined task set (unplaced tasks
// plus everything previously assigned to the chosen cores) once the
// combined utilization fits the cluster size. Cores already holding
// constrained-deadline subtasks are ineligible (their reservations
// cannot be re-expressed as fluid rates).
func growCluster(cores []*coreState, unplaced periodic.TaskSet) (cluster []*coreState, tasks periodic.TaskSet, err error) {
	elig := make([]*coreState, 0, len(cores))
	for _, c := range cores {
		if !c.dedicated && !c.constrained {
			elig = append(elig, c)
		}
	}
	sort.SliceStable(elig, func(i, j int) bool {
		if c := elig[i].util.cmp(&elig[j].util); c != 0 {
			return c < 0
		}
		return elig[i].id < elig[j].id
	})
	tasks = unplaced.Clone()
	for n := 1; n <= len(elig); n++ {
		cluster = elig[:n]
		tasks = unplaced.Clone()
		for _, c := range cluster {
			tasks = append(tasks, c.tasks...)
		}
		if n >= 2 && tasks.UtilAtMost(int64(n)) {
			return cluster, tasks, nil
		}
	}
	return nil, nil, fmt.Errorf("planner: no cluster of eligible cores can host the remaining tasks")
}
