package planner

import (
	"fmt"
	"sync"
	"testing"
)

func cacheSpecs(n int, goal int64) []VCPUSpec {
	var specs []VCPUSpec
	for i := 0; i < n; i++ {
		specs = append(specs, VCPUSpec{
			Name:        fmt.Sprintf("vm%d", i),
			Util:        Util{Num: 1, Den: 4},
			LatencyGoal: goal,
			Capped:      true,
		})
	}
	return specs
}

func TestCacheHitsAndMisses(t *testing.T) {
	c := NewCache(8)
	specs := cacheSpecs(8, 20_000_000)
	opts := Options{Cores: 2}
	r1, err := c.Plan(specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Plan(specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical inputs did not share a cached result")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses", hits, misses)
	}
	// A different latency goal is a different key.
	if _, err := c.Plan(cacheSpecs(8, 30_000_000), opts); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	specs := cacheSpecs(4, 20_000_000)
	base := CacheKey(specs, Options{Cores: 2})
	if CacheKey(specs, Options{Cores: 3}) == base {
		t.Error("core count not in key")
	}
	if CacheKey(specs, Options{Cores: 2, Peephole: true}) == base {
		t.Error("peephole flag not in key")
	}
	if CacheKey(specs, Options{Cores: 2, SplitRotation: 1}) == base {
		t.Error("rotation not in key")
	}
	reordered := append([]VCPUSpec(nil), specs...)
	reordered[0], reordered[1] = reordered[1], reordered[0]
	if CacheKey(reordered, Options{Cores: 2}) == base {
		t.Error("spec order must be part of the key (worst-fit ties are order-sensitive)")
	}
	capped := append([]VCPUSpec(nil), specs...)
	capped[0].Capped = false
	if CacheKey(capped, Options{Cores: 2}) == base {
		t.Error("capped flag not in key")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	opts := Options{Cores: 1}
	for _, goal := range []int64{20e6, 30e6, 40e6} {
		if _, err := c.Plan(cacheSpecs(2, goal), opts); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d after eviction", c.Len())
	}
	// The oldest entry (20 ms) was evicted: replanning it is a miss.
	if _, err := c.Plan(cacheSpecs(2, 20e6), opts); err != nil {
		t.Fatal(err)
	}
	_, misses := c.Stats()
	if misses != 4 {
		t.Errorf("misses = %d, want 4 (evicted entry replanned)", misses)
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	c := NewCache(4)
	bad := []VCPUSpec{{Name: "x", Util: Util{Num: 3, Den: 2}, LatencyGoal: 1e7}}
	if _, err := c.Plan(bad, Options{Cores: 1}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if c.Len() != 0 {
		t.Error("error result cached")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				goal := int64(10+(g+i)%4*10) * 1_000_000
				if _, err := c.Plan(cacheSpecs(4, goal), Options{Cores: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != 160 {
		t.Errorf("hits+misses = %d, want 160", hits+misses)
	}
	if misses > 16 {
		t.Errorf("misses = %d, want at most a few per distinct key", misses)
	}
}

func TestCacheAdd(t *testing.T) {
	c := NewCache(4)
	specs := cacheSpecs(4, 20_000_000)
	opts := Options{Cores: 1}
	res, err := Plan(specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Add(specs, opts, res)
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Errorf("Add counted as hit/miss: %d/%d", hits, misses)
	}
	got, err := c.Plan(specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got != res {
		t.Error("Plan after Add did not return the added result")
	}
	if hits, _ := c.Stats(); hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
	// Adding again keeps the existing entry.
	res2, _ := Plan(specs, opts)
	c.Add(specs, opts, res2)
	got, _ = c.Plan(specs, opts)
	if got != res {
		t.Error("Add displaced an existing entry")
	}
}
