package planner_test

import (
	"fmt"

	"tableau/internal/planner"
)

// ExamplePlan plans the paper's canonical configuration: four 25% vCPUs
// sharing one core with a 20 ms scheduling-latency goal.
func ExamplePlan() {
	var specs []planner.VCPUSpec
	for i := 0; i < 4; i++ {
		specs = append(specs, planner.VCPUSpec{
			Name:        fmt.Sprintf("vm%d", i),
			Util:        planner.Util{Num: 1, Den: 4},
			LatencyGoal: 20_000_000,
			Capped:      true,
		})
	}
	res, err := planner.Plan(specs, planner.Options{Cores: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("stage:", res.Stage)
	fmt.Printf("table length: %.4f ms\n", float64(res.Table.Len)/1e6)
	for _, g := range res.Guarantees {
		fmt.Printf("%s: %.4f ms per %.4f ms window, blackout <= %d ms\n",
			specs[g.VCPU].Name, float64(g.Service)/1e6, float64(g.WindowLen)/1e6, g.MaxBlackout/1_000_000)
	}
	// Output:
	// stage: partitioned
	// table length: 11.4114 ms
	// vm0: 2.8529 ms per 11.4114 ms window, blackout <= 20 ms
	// vm1: 2.8529 ms per 11.4114 ms window, blackout <= 20 ms
	// vm2: 2.8529 ms per 11.4114 ms window, blackout <= 20 ms
	// vm3: 2.8529 ms per 11.4114 ms window, blackout <= 20 ms
}

// ExamplePickPeriod shows the latency-goal to period mapping of paper
// Sec. 5: the largest candidate period whose worst-case blackout
// 2*(1-U)*T fits the goal.
func ExamplePickPeriod() {
	u := planner.Util{Num: 1, Den: 4}
	period, ok := planner.PickPeriod(u, 20_000_000, planner.CandidatePeriods())
	fmt.Println(ok, period)
	fmt.Println("budget:", u.Cost(period))
	// Output:
	// true 11411400
	// budget: 2852850
}

// ExampleCandidatePeriods: the paper chose 102,702,600 ns because it has
// 186 divisors above the 100 µs enforceability threshold.
func ExampleCandidatePeriods() {
	c := planner.CandidatePeriods()
	fmt.Println(len(c), c[0], c[len(c)-1])
	// Output: 186 100100 102702600
}

// ExampleAdmit rejects over-utilized populations with exact arithmetic.
func ExampleAdmit() {
	specs := []planner.VCPUSpec{
		{Name: "a", Util: planner.Util{Num: 2, Den: 3}, LatencyGoal: 1e7},
		{Name: "b", Util: planner.Util{Num: 1, Den: 3}, LatencyGoal: 1e7},
		{Name: "c", Util: planner.Util{Num: 1, Den: 1000000}, LatencyGoal: 1e7},
	}
	err := planner.Admit(specs, 1)
	fmt.Println(err)
	// Output: planner: over-utilized: total reserved utilization 1.0000 exceeds 1 cores
}
