package planner

import (
	"container/list"
	"fmt"
	"strconv"
	"sync"

	"tableau/internal/periodic"
	"tableau/internal/table"
)

// This file is the incremental replanning layer: when consecutive plans
// share most of their population — the common case under churn, where a
// burst perturbs 3 of 16 cores — the previous Result tells us exactly
// which per-core assignments are still valid. PlanIncremental diffs the
// new specs against the previous ones, pins every core whose VMs are
// unchanged, and re-runs the full pipeline with only the dirty VMs
// flowing through partitioning. The per-core SliceCache independently
// memoizes the EDF simulations themselves, so even a scratch plan (or a
// pinned core whose multiset reappears) skips re-simulation.
//
// Safety argument: pinning only narrows the placement search — every
// pinned task re-enters the core states through the same accounting
// (utilization, constrained-deadline marking) as a fresh placement, and
// the final table is re-validated, re-coalesced against freshly derived
// guarantees, and re-Checked in full. A stale or bogus pin can
// therefore only cause a planning *failure* (which falls back to a
// scratch plan), never an unverified table.

// PrevPlan threads the previous planning outcome into the next plan.
// Res must be in the planner universe (vCPU ids = spec order, core ids
// = logical) — i.e. captured before core.System remaps it — and is
// treated as read-only.
type PrevPlan struct {
	Specs []VCPUSpec
	Opts  Options
	Res   *Result
}

// pinning is the planWith input derived from a PrevPlan diff.
type pinning struct {
	// coreTasks[i] holds the tasks frozen onto planner core i, already
	// renumbered into the current spec universe (Group = current spec
	// index).
	coreTasks []periodic.TaskSet
	// pinnedSpec marks current spec indices whose placement is frozen.
	pinnedSpec map[int]bool
	// cores counts non-empty coreTasks entries (Result.PinnedCores).
	cores int
	// override substitutes stale effective specs, keyed by current spec
	// index — only ever populated by the UnsafeStaleSliceReuse defect.
	override map[int]VCPUSpec
	// prevTable is the previous plan's finished table (planner
	// universe, read-only). Pinned cores adopt their previous final
	// schedule from it verbatim (allocations renumbered, slice index
	// transplanted), so synthesis, coalescing, and slice building all
	// run O(dirty cores); any core whose allocation list still comes
	// out identical additionally reuses the old slice index.
	prevTable *table.Table
	// renumber maps previous spec indices to current ones for every
	// clean VM — the id translation schedule adoption applies.
	renumber map[int]int
}

// PlanIncremental is Plan with reuse of the previous result: cores
// whose entire VM population is unchanged keep their task assignments
// verbatim and only the dirty remainder is re-placed. When the diff
// yields nothing reusable, the options are incompatible, or the pinned
// plan fails (pinning shrinks the search space, so a population the
// full planner can place may be unplaceable with most cores frozen),
// it falls back to a scratch Plan — the complete search and the
// correctness baseline.
//
// The result is not guaranteed to be byte-identical to a scratch plan
// (placement history differs); it is guaranteed to pass the same
// admission, validation, and guarantee checks, with guarantees derived
// from the same specs — see TestIncrementalEquivalence.
func PlanIncremental(specs []VCPUSpec, opts Options, prev *PrevPlan) (*Result, error) {
	pin := pinFromPrev(specs, opts, prev)
	if pin == nil {
		return planWith(specs, opts, nil)
	}
	res, err := planWith(specs, opts, pin)
	if err != nil {
		return planWith(specs, opts, nil)
	}
	return res, nil
}

// pinFromPrev diffs the new planning input against the previous plan
// and returns the pinning, or nil when nothing can be reused.
//
// Dirty-core diff rules:
//   - a VM is clean iff it appears in both populations under the same
//     name with identical (Util, LatencyGoal, Capped); arrivals,
//     departures, and reconfigurations are dirty;
//   - a split VM is clean only if every core hosting one of its pieces
//     is otherwise clean (pinning a subset of a C=D chain would
//     double-place the VM);
//   - a core is pinned iff every task on it belongs to a clean VM;
//   - dedicated (U=1) and cluster-scheduled cores are never pinned:
//     dedicated placement is trivial to recompute, and DP-Fair slots
//     are a joint product of the whole cluster;
//   - every Options field that influences placement must match
//     (SplitRotation excepted: it only biases the ordering of the
//     re-placed remainder); affinity disables pinning outright, since
//     System renumbers affinity sets onto surviving cores and a pin
//     would bypass that narrowing.
func pinFromPrev(specs []VCPUSpec, opts Options, prev *PrevPlan) *pinning {
	if prev == nil || prev.Res == nil || len(prev.Res.CoreTasks) == 0 {
		return nil
	}
	if prev.Res.Stage == StageClustered {
		return nil
	}
	po, co := prev.Opts.withDefaults(), opts.withDefaults()
	if po.Cores != co.Cores ||
		po.CoalesceThreshold != co.CoalesceThreshold ||
		po.MaxSlicesPerCore != co.MaxSlicesPerCore ||
		po.TableLength != co.TableLength ||
		po.DisableSplitting != co.DisableSplitting ||
		po.DisableClustering != co.DisableClustering ||
		po.Peephole != co.Peephole ||
		po.SplitCompensationPPM != co.SplitCompensationPPM {
		return nil
	}
	if len(po.Affinity) > 0 || len(co.Affinity) > 0 {
		return nil
	}
	if len(prev.Res.CoreTasks) != co.Cores {
		return nil
	}

	cur := make(map[string]int, len(specs))
	for i, s := range specs {
		cur[s.Name] = i
	}
	clean := make(map[int]int) // prev spec index -> cur spec index
	var override map[int]VCPUSpec
	for j, p := range prev.Specs {
		i, ok := cur[p.Name]
		if !ok || p.Util.IsFull() {
			continue
		}
		c := specs[i]
		if c.Util == p.Util && c.LatencyGoal == p.LatencyGoal && c.Capped == p.Capped {
			clean[j] = i
			continue
		}
		if opts.UnsafeStaleSliceReuse && !c.Util.IsFull() {
			// Defect: the reconfiguration is ignored — the VM keeps its
			// stale placement AND its stale spec, so the under-serving
			// table still passes the planner's own final Check.
			clean[j] = i
			if override == nil {
				override = make(map[int]VCPUSpec)
			}
			override[i] = p
		}
	}
	if len(clean) == 0 {
		return nil
	}

	// A core is clean iff every task on it belongs to a clean VM.
	coreClean := make([]bool, co.Cores)
	for cid, ts := range prev.Res.CoreTasks {
		if len(ts) == 0 {
			continue
		}
		coreClean[cid] = true
		for _, tk := range ts {
			if _, ok := clean[tk.Group]; !ok {
				coreClean[cid] = false
				break
			}
		}
	}
	// A multi-piece (split) group is pinnable only if all its hosting
	// cores are clean; a core hosting an unpinnable group is not pinned.
	hostCores := make(map[int][]int) // prev group -> hosting cores
	for cid, ts := range prev.Res.CoreTasks {
		for _, tk := range ts {
			hostCores[tk.Group] = append(hostCores[tk.Group], cid)
		}
	}
	pinnable := func(cid int) bool {
		if !coreClean[cid] {
			return false
		}
		for _, tk := range prev.Res.CoreTasks[cid] {
			for _, host := range hostCores[tk.Group] {
				if !coreClean[host] {
					return false
				}
			}
		}
		return true
	}

	pin := &pinning{
		coreTasks:  make([]periodic.TaskSet, co.Cores),
		pinnedSpec: make(map[int]bool),
		override:   override,
		prevTable:  prev.Res.Table,
		renumber:   clean,
	}
	for cid, ts := range prev.Res.CoreTasks {
		if len(ts) == 0 || !pinnable(cid) {
			continue
		}
		pinned := make(periodic.TaskSet, len(ts))
		for k, tk := range ts {
			tk.Group = clean[tk.Group]
			pinned[k] = tk
		}
		pin.coreTasks[cid] = pinned
		pin.cores++
		for _, tk := range pinned {
			pin.pinnedSpec[tk.Group] = true
		}
	}
	if pin.cores == 0 {
		return nil
	}
	return pin
}

// renumberAllocs maps a previous plan's final core schedule into the
// current spec universe: intervals are copied byte-for-byte, vCPU ids
// are translated through renum (Idle passes through). ok is false if
// any id has no translation — callers must then fall back to fresh
// synthesis for that core rather than adopt a schedule referencing a
// vanished VM.
func renumberAllocs(in []table.Alloc, renum map[int]int) ([]table.Alloc, bool) {
	out := make([]table.Alloc, len(in))
	for i, a := range in {
		v := a.VCPU
		if v != table.Idle {
			nv, ok := renum[v]
			if !ok {
				return nil, false
			}
			v = nv
		}
		out[i] = table.Alloc{Start: a.Start, End: a.End, VCPU: v}
	}
	return out, true
}

// seedPinned installs the pinned task sets into the core states before
// partitioning, reconstructing the split bookkeeping for pinned C=D
// chains. A pinned core that is now dedicated (the U=1 population in
// front of it grew) is a conflict: the caller falls back to scratch.
func seedPinned(cores []*coreState, pin *pinning, res *Result) error {
	type groupAgg struct {
		pieces int
		cores  []int
	}
	byGroup := make(map[int]*groupAgg)
	var order []int
	for cid, ts := range pin.coreTasks {
		if len(ts) == 0 {
			continue
		}
		c := cores[cid]
		if c.dedicated {
			return fmt.Errorf("planner: pinned core %d is now dedicated", cid)
		}
		for _, tk := range ts {
			c.add(tk)
			g := byGroup[tk.Group]
			if g == nil {
				g = &groupAgg{}
				byGroup[tk.Group] = g
				order = append(order, tk.Group)
			}
			g.pieces++
			g.cores = append(g.cores, cid)
		}
	}
	for _, grp := range order {
		g := byGroup[grp]
		if g.pieces < 2 {
			continue
		}
		res.Stage = StageSemiPartitioned
		res.Splits = append(res.Splits, SplitInfo{VCPU: grp, Pieces: g.pieces, Cores: g.cores})
	}
	res.Incremental = true
	res.PinnedCores = pin.cores
	return nil
}

// SliceCache memoizes per-core EDF simulations across plans, keyed by
// the core's ordered task parameters. SimulateEDF reads nothing but
// (Offset, WCET, Deadline, Period) and task order, so the key omits
// names and groups: two cores — in the same plan or plans apart — whose
// task parameters coincide share one simulation, and a hit returns the
// byte-identical slots a fresh simulation would produce (vCPU
// renumbering happens later, in tileSlots, via the caller's task set).
// Cached results are shared and must be treated as read-only.
//
// Entries are LRU-evicted against a byte budget, like the
// whole-problem Cache.
type SliceCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[string]*list.Element
	order    *list.List // LRU: front = most recent
	hits     int64
	misses   int64
	evicted  int64
}

type sliceEntry struct {
	key  string
	sim  *periodic.EDFResult
	size int64
}

// NewSliceCache returns a slice cache bounded by maxBytes (estimated
// footprint); <= 0 selects a default of 16 MiB.
func NewSliceCache(maxBytes int64) *SliceCache {
	if maxBytes <= 0 {
		maxBytes = 16 << 20
	}
	return &SliceCache{
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// sliceKey canonicalizes a core's task set down to the fields the EDF
// simulation reads.
func sliceKey(ts periodic.TaskSet) string {
	buf := make([]byte, 0, len(ts)*32)
	for _, tk := range ts {
		buf = strconv.AppendInt(buf, tk.Offset, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, tk.WCET, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, tk.Deadline, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, tk.Period, 10)
		buf = append(buf, ';')
	}
	return string(buf)
}

func (sc *SliceCache) lookup(key string) (*periodic.EDFResult, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if el, ok := sc.entries[key]; ok {
		sc.order.MoveToFront(el)
		sc.hits++
		return el.Value.(*sliceEntry).sim, true
	}
	sc.misses++
	return nil, false
}

func (sc *SliceCache) insert(key string, sim *periodic.EDFResult) {
	size := int64(len(key)) + int64(len(sim.Slots))*24 + 64
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if _, ok := sc.entries[key]; ok {
		// A concurrent synthesis job beat us; both simulations of one
		// key are identical, keep the first.
		return
	}
	el := sc.order.PushFront(&sliceEntry{key: key, sim: sim, size: size})
	sc.entries[key] = el
	sc.bytes += size
	for sc.bytes > sc.maxBytes && sc.order.Len() > 1 {
		oldest := sc.order.Back()
		ent := oldest.Value.(*sliceEntry)
		sc.order.Remove(oldest)
		delete(sc.entries, ent.key)
		sc.bytes -= ent.size
		sc.evicted++
	}
}

// SliceCacheStats are the cache's cumulative counters and current size.
type SliceCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64
}

// Stats returns the counters and current footprint.
func (sc *SliceCache) Stats() SliceCacheStats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return SliceCacheStats{
		Hits: sc.hits, Misses: sc.misses, Evictions: sc.evicted,
		Entries: sc.order.Len(), Bytes: sc.bytes,
	}
}

// simulateCore runs (or recalls) one core's EDF simulation, reporting
// whether the slice cache served it.
func simulateCore(ts periodic.TaskSet, coreH int64, sc *SliceCache) (*periodic.EDFResult, bool, error) {
	if sc == nil {
		sim, err := periodic.SimulateEDF(ts, coreH)
		return sim, false, err
	}
	key := sliceKey(ts)
	if sim, ok := sc.lookup(key); ok {
		return sim, true, nil
	}
	sim, err := periodic.SimulateEDF(ts, coreH)
	if err != nil {
		return nil, false, err
	}
	sc.insert(key, sim)
	return sim, false, nil
}
