package planner

import (
	"testing"

	"tableau/internal/table"
)

func al(start, end int64, vcpu int) table.Alloc {
	return table.Alloc{Start: start, End: end, VCPU: vcpu}
}

func allowAll(int) bool                 { return true }
func donateAll(int, int64, int64) bool  { return true }
func donateNone(int, int64, int64) bool { return false }

func TestMergeContiguous(t *testing.T) {
	in := []table.Alloc{al(0, 10, 0), al(10, 20, 0), al(20, 30, 1), al(35, 40, 1)}
	out := mergeContiguous(in)
	want := []table.Alloc{al(0, 20, 0), al(20, 30, 1), al(35, 40, 1)}
	if len(out) != len(want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
	if got := mergeContiguous(nil); got != nil {
		t.Errorf("mergeContiguous(nil) = %v", got)
	}
}

func TestCoalesceWidensIntoIdle(t *testing.T) {
	// A 5-ns sliver with idle room after it grows to the threshold.
	in := []table.Alloc{al(0, 5, 0), al(50, 80, 1)}
	out := coalesceCore(in, 20, 100, allowAll, donateNone)
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	if out[0].Len() != 20 || out[0].Start != 0 {
		t.Errorf("sliver not widened forward: %v", out[0])
	}
}

func TestCoalesceWidensBackward(t *testing.T) {
	// Idle room only before the sliver.
	in := []table.Alloc{al(0, 40, 1), al(95, 100, 0)}
	out := coalesceCore(in, 20, 100, allowAll, donateNone)
	if out[1].Len() != 20 || out[1].End != 100 {
		t.Errorf("sliver not widened backward: %v", out[1])
	}
}

func TestCoalesceRespectsMayWiden(t *testing.T) {
	in := []table.Alloc{al(0, 5, 0), al(50, 80, 1)}
	out := coalesceCore(in, 20, 100, func(v int) bool { return v != 0 }, donateNone)
	if out[0].Len() != 5 {
		t.Errorf("split vCPU sliver was widened: %v", out[0])
	}
}

func TestCoalesceDonatesToNeighbor(t *testing.T) {
	// Sliver squeezed between two reservations; donation allowed.
	in := []table.Alloc{al(0, 40, 1), al(40, 45, 0), al(45, 90, 2)}
	out := coalesceCore(in, 20, 100, func(int) bool { return false }, donateAll)
	if len(out) != 2 {
		t.Fatalf("out = %v, want sliver donated", out)
	}
	// The longer neighbor (vcpu 2, 45 ns) gets the time.
	if out[1].VCPU != 2 || out[1].Start != 40 {
		t.Errorf("donation went to %v, want vcpu 2 extended to 40", out[1])
	}
	total := out[0].Len() + out[1].Len()
	if total != 90 {
		t.Errorf("time not conserved: %d", total)
	}
}

func TestCoalesceKeepsSliverWhenDonationRefused(t *testing.T) {
	in := []table.Alloc{al(0, 40, 1), al(40, 45, 0), al(45, 90, 2)}
	out := coalesceCore(in, 20, 100, func(int) bool { return false }, donateNone)
	if len(out) != 3 {
		t.Errorf("sliver should survive refused donation: %v", out)
	}
}

func TestCoalesceDoesNotMutateInput(t *testing.T) {
	in := []table.Alloc{al(0, 10, 0), al(10, 20, 0)}
	_ = coalesceCore(in, 5, 100, allowAll, donateAll)
	if in[0] != (al(0, 10, 0)) || in[1] != (al(10, 20, 0)) {
		t.Errorf("input mutated: %v", in)
	}
}

func TestCoalesceThresholdZeroMergesOnly(t *testing.T) {
	in := []table.Alloc{al(0, 1, 0), al(1, 2, 0), al(5, 6, 1)}
	out := coalesceCore(in, 0, 100, allowAll, donateAll)
	want := []table.Alloc{al(0, 2, 0), al(5, 6, 1)}
	if len(out) != len(want) || out[0] != want[0] || out[1] != want[1] {
		t.Errorf("out = %v, want %v", out, want)
	}
}
