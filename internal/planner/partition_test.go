package planner

import (
	"testing"

	"tableau/internal/periodic"
)

func implicitTask(name string, c, t int64) periodic.Task {
	return periodic.Task{Name: name, WCET: c, Deadline: t, Period: t}
}

func TestPartitionWFDSpreadsLoad(t *testing.T) {
	cores := newCoreStates(4)
	var tasks periodic.TaskSet
	for i := 0; i < 8; i++ {
		tasks = append(tasks, implicitTask(string(rune('a'+i)), 25, 100))
	}
	unplaced := partitionWFD(cores, tasks)
	if len(unplaced) != 0 {
		t.Fatalf("unplaced = %v", unplaced)
	}
	// Worst-fit spreads 8 equal tasks as 2 per core.
	for _, c := range cores {
		if len(c.tasks) != 2 {
			t.Errorf("core %d has %d tasks, want 2", c.id, len(c.tasks))
		}
	}
}

func TestPartitionWFDRespectsCapacity(t *testing.T) {
	cores := newCoreStates(2)
	tasks := periodic.TaskSet{
		implicitTask("a", 60, 100),
		implicitTask("b", 60, 100),
		implicitTask("c", 60, 100),
	}
	unplaced := partitionWFD(cores, tasks)
	if len(unplaced) != 1 {
		t.Fatalf("unplaced = %v, want exactly one", unplaced)
	}
	for _, c := range cores {
		if c.util.cmpInt(1) > 0 {
			t.Errorf("core %d over-utilized: %v", c.id, c.util.rat())
		}
	}
}

func TestPartitionWFDSkipsDedicated(t *testing.T) {
	cores := newCoreStates(2)
	cores[0].dedicated = true
	tasks := periodic.TaskSet{implicitTask("a", 50, 100)}
	if unplaced := partitionWFD(cores, tasks); len(unplaced) != 0 {
		t.Fatalf("unplaced = %v", unplaced)
	}
	if len(cores[0].tasks) != 0 {
		t.Error("task placed on dedicated core")
	}
	if len(cores[1].tasks) != 1 {
		t.Error("task not placed on free core")
	}
}

func TestCoreStateFitsConstrained(t *testing.T) {
	c := &coreState{id: 0, util: zeroFrac()}
	c.add(periodic.Task{Name: "cd", WCET: 40, Deadline: 40, Period: 100})
	// A second C=D task of 40 would demand 80 by t=40: infeasible even
	// though utilization is only 0.8.
	if c.fits(periodic.Task{Name: "cd2", WCET: 40, Deadline: 40, Period: 100}) {
		t.Error("accepted a constrained task that QPA must reject")
	}
	if !c.fits(implicitTask("small", 10, 100)) {
		t.Error("rejected a feasible implicit task")
	}
	if !c.constrained {
		t.Error("core not marked constrained")
	}
}

func TestSplitCDBasic(t *testing.T) {
	// Two cores at 0.6 each; a 0.7 task fits nowhere whole but splits.
	cores := newCoreStates(2)
	cores[0].add(implicitTask("a", 60, 100))
	cores[1].add(implicitTask("b", 60, 100))
	tk := implicitTask("split", 70, 100)
	pieces, ok := splitCD(cores, tk, 1)
	if !ok {
		t.Fatal("splitCD failed on a feasible instance")
	}
	if len(pieces) < 2 {
		t.Fatalf("pieces = %v, want >= 2", pieces)
	}
	var total int64
	var offset int64
	for i, p := range pieces {
		total += p.WCET
		if p.Name != "split" || p.Group != tk.Group {
			t.Errorf("piece %d identity wrong: %+v", i, p)
		}
		if p.Offset != offset {
			t.Errorf("piece %d offset = %d, want %d (contiguous precedence)", i, p.Offset, offset)
		}
		if i < len(pieces)-1 && p.Deadline != p.WCET {
			t.Errorf("non-final piece %d must be C=D: %+v", i, p)
		}
		offset += p.WCET
	}
	if total != 70 {
		t.Errorf("pieces sum to %d, want 70", total)
	}
	// Each hosting core must remain schedulable.
	for _, c := range cores {
		if !c.tasks.EDFSchedulable() {
			t.Errorf("core %d unschedulable after split", c.id)
		}
	}
}

func TestSplitCDAtomicOnFailure(t *testing.T) {
	// Nearly full cores: a large task cannot be split in.
	cores := newCoreStates(2)
	cores[0].add(implicitTask("a", 99, 100))
	cores[1].add(implicitTask("b", 99, 100))
	before0, before1 := len(cores[0].tasks), len(cores[1].tasks)
	if _, ok := splitCD(cores, implicitTask("big", 50, 100), 1); ok {
		t.Fatal("split succeeded on an infeasible instance")
	}
	if len(cores[0].tasks) != before0 || len(cores[1].tasks) != before1 {
		t.Error("failed split left partial state behind")
	}
}

func TestSplitCDRespectsMinChunk(t *testing.T) {
	// Only a sliver of room on each core: with a large min chunk the
	// split must be refused.
	cores := newCoreStates(2)
	cores[0].add(implicitTask("a", 95, 100))
	cores[1].add(implicitTask("b", 95, 100))
	if _, ok := splitCD(cores, implicitTask("t", 10, 100), 20); ok {
		t.Error("split produced pieces below the minimum chunk")
	}
}

func TestGrowCluster(t *testing.T) {
	cores := newCoreStates(4)
	cores[0].add(implicitTask("a", 70, 100))
	cores[1].add(implicitTask("b", 70, 100))
	cores[2].add(implicitTask("c", 10, 100))
	cores[3].constrained = true
	cores[3].add(periodic.Task{Name: "cd", WCET: 30, Deadline: 30, Period: 100})
	unplaced := periodic.TaskSet{implicitTask("x", 60, 100)}
	cluster, tasks, err := growCluster(cores, unplaced)
	if err != nil {
		t.Fatal(err)
	}
	if len(cluster) < 2 {
		t.Fatalf("cluster size %d, want >= 2", len(cluster))
	}
	for _, c := range cluster {
		if c.constrained || c.dedicated {
			t.Error("ineligible core joined cluster")
		}
	}
	if !tasks.UtilAtMost(int64(len(cluster))) {
		t.Error("cluster tasks over-utilize the cluster")
	}
	// The unplaced task must be in the cluster's task set.
	found := false
	for _, tk := range tasks {
		if tk.Name == "x" {
			found = true
		}
	}
	if !found {
		t.Error("unplaced task missing from cluster")
	}
}

func TestGrowClusterFailsWhenImpossible(t *testing.T) {
	cores := newCoreStates(1)
	unplaced := periodic.TaskSet{implicitTask("x", 60, 100)}
	if _, _, err := growCluster(cores, unplaced); err == nil {
		t.Error("single-core cluster should not form")
	}
}
