package planner

import (
	"sort"

	"tableau/internal/periodic"
)

// splitCD attempts to place task tk by C=D semi-partitioning (paper
// Sec. 5, after Burns et al. 2012). The task is cut into subtasks with
// precedence encoded through release offsets:
//
//   - every subtask except the last has deadline equal to its budget
//     ("C=D"), so under EDF it executes immediately and contiguously at
//     its release, occupying exactly [k*T+offset, k*T+offset+budget);
//   - the final subtask carries the remaining budget with deadline
//     stretching to the end of the period.
//
// Because subtask j+1 is released exactly when subtask j's reserved
// window ends, the subtasks can never execute in parallel — the property
// the dispatcher's migration protocol (and table.Validate) depends on.
//
// minChunk rejects splits that would create unenforceably small pieces.
// On success the subtasks are added to the chosen cores and returned;
// the operation is atomic — on failure no core state is modified.
func splitCD(cores []*coreState, tk periodic.Task, minChunk int64) ([]periodic.Task, bool) {
	return splitCDAffine(cores, tk, minChunk, nil)
}

// splitCDAffine is splitCD restricted to the task's allowed cores.
func splitCDAffine(cores []*coreState, tk periodic.Task, minChunk int64, allow map[int][]int) ([]periodic.Task, bool) {
	if permitted, ok := allow[tk.Group]; ok && len(permitted) > 0 {
		var restricted []*coreState
		for _, c := range cores {
			if allowedOn(allow, tk.Group, c.id) {
				restricted = append(restricted, c)
			}
		}
		cores = restricted
	}
	return splitCDImpl(cores, tk, minChunk)
}

func splitCDImpl(cores []*coreState, tk periodic.Task, minChunk int64) ([]periodic.Task, bool) {
	if minChunk <= 0 {
		minChunk = 1
	}
	type placement struct {
		core *coreState
		task periodic.Task
	}
	var placements []placement
	used := make(map[int]bool)

	remaining := tk.WCET
	offset := tk.Offset // always 0 for fresh vCPU tasks
	for piece := 0; piece < len(cores); piece++ {
		// First preference: finish the task here as a constrained tail.
		tailDeadline := tk.Period - offset
		if best := bestTailCore(cores, used, tailDeadline, tk.Period, remaining); best != nil {
			placements = append(placements, placement{best, periodic.Task{
				Name:     tk.Name,
				Group:    tk.Group,
				Offset:   offset,
				WCET:     remaining,
				Deadline: tailDeadline,
				Period:   tk.Period,
			}})
			for _, p := range placements {
				p.core.add(p.task)
			}
			out := make([]periodic.Task, len(placements))
			for i, p := range placements {
				out[i] = p.task
			}
			return out, true
		}
		// Otherwise carve the largest feasible C=D head from the core
		// with the most room.
		core, budget := bestHeadCore(cores, used, tk.Period, remaining)
		if core == nil || budget < minChunk {
			return nil, false
		}
		if budget >= remaining {
			// A full-remaining C=D head is also a valid tail; take it.
			budget = remaining
		}
		placements = append(placements, placement{core, periodic.Task{
			Name:     tk.Name,
			Group:    tk.Group,
			Offset:   offset,
			WCET:     budget,
			Deadline: budget,
			Period:   tk.Period,
		}})
		used[core.id] = true
		remaining -= budget
		offset += budget
		if remaining == 0 {
			for _, p := range placements {
				p.core.add(p.task)
			}
			out := make([]periodic.Task, len(placements))
			for i, p := range placements {
				out[i] = p.task
			}
			return out, true
		}
	}
	return nil, false
}

// bestTailCore returns a core (not in used) that can accept the full
// remaining budget as a constrained-deadline tail, preferring the
// least-utilized core, or nil.
func bestTailCore(cores []*coreState, used map[int]bool, deadline, period, budget int64) *coreState {
	if deadline < budget {
		return nil
	}
	cands := eligibleCores(cores, used)
	for _, c := range cands {
		maxC, ok := c.tasks.MaxFeasibleConstrained(deadline, period, budget)
		if ok && maxC >= budget {
			return c
		}
	}
	return nil
}

// bestHeadCore returns the core (not in used) offering the largest
// feasible C=D budget for the given period, together with that budget.
func bestHeadCore(cores []*coreState, used map[int]bool, period, maxBudget int64) (*coreState, int64) {
	var best *coreState
	var bestBudget int64
	for _, c := range eligibleCores(cores, used) {
		b, ok := c.tasks.MaxFeasibleCEqualsD(period, maxBudget)
		if ok && b > bestBudget {
			best, bestBudget = c, b
		}
	}
	return best, bestBudget
}

// eligibleCores returns non-dedicated cores not in used, least-utilized
// first (ties by id).
func eligibleCores(cores []*coreState, used map[int]bool) []*coreState {
	out := make([]*coreState, 0, len(cores))
	for _, c := range cores {
		if !c.dedicated && !used[c.id] {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if c := out[i].util.cmp(&out[j].util); c != 0 {
			return c < 0
		}
		return out[i].id < out[j].id
	})
	return out
}
