package planner

import (
	"tableau/internal/table"
)

// mergeContiguous merges adjacent allocations of the same vCPU whose
// intervals touch. The input must be sorted and non-overlapping; the
// result is too.
func mergeContiguous(allocs []table.Alloc) []table.Alloc {
	if len(allocs) == 0 {
		return allocs
	}
	out := allocs[:1]
	for _, a := range allocs[1:] {
		last := &out[len(out)-1]
		if a.VCPU == last.VCPU && a.Start == last.End {
			last.End = a.End
			continue
		}
		out = append(out, a)
	}
	return out
}

// coalesceCore removes unenforceably small reservations (paper Sec. 5,
// post-processing) from one core's allocation list:
//
//  1. contiguous same-vCPU allocations are merged;
//  2. a sub-threshold allocation adjacent to idle time is widened into
//     the idle gap until it reaches the threshold (this only adds
//     service, so it is always safe);
//  3. a sub-threshold allocation squeezed between other reservations is
//     donated to its longer neighbor, but only if donate reports that
//     the owning vCPU can afford the loss (the planner wires donate to a
//     per-window service-slack check).
//
// tableLen bounds the widening in step 2. mayWiden gates step 2 per
// vCPU: widening a split vCPU's reservation could overlap its
// reservation on another core, so the planner only permits widening for
// unsplit vCPUs.
func coalesceCore(allocs []table.Alloc, threshold, tableLen int64, mayWiden func(vcpu int) bool, donate func(vcpu int, start, end int64) bool) []table.Alloc {
	allocs = mergeContiguous(append([]table.Alloc(nil), allocs...))
	if threshold <= 0 {
		return allocs
	}
	// Step 2: widen slivers into adjacent idle time.
	for i := range allocs {
		a := &allocs[i]
		if a.Len() >= threshold {
			continue
		}
		if mayWiden != nil && !mayWiden(a.VCPU) {
			continue
		}
		need := threshold - a.Len()
		// Idle room after this allocation.
		roomAfter := tableLen - a.End
		if i+1 < len(allocs) {
			roomAfter = allocs[i+1].Start - a.End
		}
		grow := min64(need, roomAfter)
		a.End += grow
		need -= grow
		if need > 0 {
			// Idle room before.
			roomBefore := a.Start
			if i > 0 {
				roomBefore = a.Start - allocs[i-1].End
			}
			grow = min64(need, roomBefore)
			a.Start -= grow
		}
	}
	allocs = mergeContiguous(allocs)
	// Step 3: donate remaining slivers to a neighbor.
	var out []table.Alloc
	for i := 0; i < len(allocs); i++ {
		a := allocs[i]
		if a.Len() >= threshold || donate == nil || !donate(a.VCPU, a.Start, a.End) {
			out = append(out, a)
			continue
		}
		// Prefer the neighbor that touches the sliver; among touching
		// neighbors, the longer one.
		prevTouches := len(out) > 0 && out[len(out)-1].End == a.Start
		nextTouches := i+1 < len(allocs) && allocs[i+1].Start == a.End
		switch {
		case prevTouches && (!nextTouches || out[len(out)-1].Len() >= allocs[i+1].Len()):
			out[len(out)-1].End = a.End
		case nextTouches:
			allocs[i+1].Start = a.Start
		default:
			// Isolated sliver bordered by idle on both sides would have
			// been widened in step 2; keep it as a fallback.
			out = append(out, a)
		}
	}
	return mergeContiguous(out)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
