package planner

import (
	"fmt"
	"testing"
)

func affinitySpecs() []VCPUSpec {
	var specs []VCPUSpec
	for i := 0; i < 6; i++ {
		specs = append(specs, VCPUSpec{
			Name:        fmt.Sprintf("v%d", i),
			Util:        Util{Num: 1, Den: 4},
			LatencyGoal: 20_000_000,
			Capped:      true,
		})
	}
	return specs
}

func TestAffinityHonoredByPartitioning(t *testing.T) {
	specs := affinitySpecs()
	aff := map[string][]int{
		"v0": {2}, // pin v0 to core 2
		"v1": {0, 1},
	}
	res, err := Plan(specs, Options{Cores: 3, Affinity: aff})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Table.Cores[0].Allocs {
		if a.VCPU == 0 {
			t.Errorf("v0 placed on core 0 despite affinity to core 2")
		}
	}
	slots := res.Table.VCPUSlots(0)
	if len(slots) == 0 {
		t.Fatal("v0 has no reservations")
	}
	if got := res.Table.CoreOfVCPUAt(0, slots[0].Start); got != 2 {
		t.Errorf("v0 on core %d, want 2", got)
	}
	// v1 must be on core 0 or 1.
	s1 := res.Table.VCPUSlots(1)
	if len(s1) == 0 {
		t.Fatal("v1 has no reservations")
	}
	if c := res.Table.CoreOfVCPUAt(1, s1[0].Start); c != 0 && c != 1 {
		t.Errorf("v1 on core %d, want 0 or 1", c)
	}
}

func TestAffinityOverloadRejected(t *testing.T) {
	// Five 25% vCPUs pinned to a single core: the affinity-set bound
	// must reject this even though the machine has room.
	specs := affinitySpecs()[:5]
	aff := map[string][]int{}
	for _, s := range specs {
		aff[s.Name] = []int{0}
	}
	if _, err := Plan(specs, Options{Cores: 4, Affinity: aff}); err == nil {
		t.Error("over-committed affinity set accepted")
	}
}

func TestAffinityBadCoreRejected(t *testing.T) {
	specs := affinitySpecs()[:1]
	if _, err := Plan(specs, Options{Cores: 2, Affinity: map[string][]int{"v0": {7}}}); err == nil {
		t.Error("out-of-range affinity core accepted")
	}
}

func TestAffinitySplitStaysInSet(t *testing.T) {
	// Three 60% vCPUs restricted to cores {0,1}: one must split, and
	// every piece must stay inside the affinity set.
	var specs []VCPUSpec
	for i := 0; i < 3; i++ {
		specs = append(specs, VCPUSpec{
			Name:        fmt.Sprintf("v%d", i),
			Util:        Util{Num: 3, Den: 5},
			LatencyGoal: 50_000_000,
		})
	}
	aff := map[string][]int{"v0": {0, 1}, "v1": {0, 1}, "v2": {0, 1}}
	res, err := Plan(specs, Options{Cores: 3, Affinity: aff})
	if err != nil {
		t.Fatal(err)
	}
	// Core 2 must be empty: everyone is pinned to {0,1}.
	if len(res.Table.Cores[2].Allocs) != 0 {
		t.Errorf("core 2 has allocations despite affinity: %v", res.Table.Cores[2].Allocs)
	}
	if res.Stage != StageSemiPartitioned {
		t.Errorf("stage = %v, want a split inside the affinity set", res.Stage)
	}
}

func TestAffinityUnplaceableReportsClearly(t *testing.T) {
	// Two 2/3 vCPUs pinned to one core pass the per-set utilization sum
	// check only if... 4/3 > 1, so bound rejects; use a case that passes
	// the bound but defeats placement: three 2/3 vCPUs on two cores
	// pinned to {0,1} — needs the cluster stage, which affinity forbids.
	var specs []VCPUSpec
	for i := 0; i < 3; i++ {
		specs = append(specs, VCPUSpec{
			Name:        fmt.Sprintf("v%d", i),
			Util:        Util{Num: 2, Den: 3},
			LatencyGoal: 80_000_000,
		})
	}
	aff := map[string][]int{"v0": {0, 1}, "v1": {0, 1}, "v2": {0, 1}}
	_, err := Plan(specs, Options{Cores: 4, Affinity: aff, DisableSplitting: true})
	if err == nil {
		t.Fatal("unplaceable affine population accepted")
	}
}

func TestHeadroom(t *testing.T) {
	// 2 cores hosting two 25% VMs: how many more 25% VMs fit?
	existing := affinitySpecs()[:2]
	shape := VCPUSpec{Name: "extra", Util: Util{Num: 1, Den: 4}, LatencyGoal: 20_000_000, Capped: true}
	n, err := Headroom(existing, shape, Options{Cores: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("headroom = %d, want 6 (2 cores = 8 quarters, 2 used)", n)
	}
	// A full machine has no headroom.
	full := affinitySpecs()[:4]
	full = append(full, affinitySpecs()[:4]...)
	for i := range full {
		full[i].Name = fmt.Sprintf("f%d", i)
	}
	n, err = Headroom(full, shape, Options{Cores: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("headroom on a full machine = %d", n)
	}
	if _, err := Headroom(nil, VCPUSpec{Name: "bad"}, Options{Cores: 1}, 0); err == nil {
		t.Error("invalid shape accepted")
	}
}

func TestHeadroomMixedShapes(t *testing.T) {
	// One 50% VM on 2 cores; how many 60% VMs fit? Utilization says 2.5
	// but placement limits: core0 has 0.5+0.6=1.1 > 1 so each 60% needs
	// its own core or a split. With splitting available: 0.5 + n*0.6 <=
	// 2 => n <= 2.5 => 2.
	existing := []VCPUSpec{{Name: "half", Util: Util{Num: 1, Den: 2}, LatencyGoal: 50_000_000}}
	shape := VCPUSpec{Name: "big", Util: Util{Num: 3, Den: 5}, LatencyGoal: 50_000_000}
	n, err := Headroom(existing, shape, Options{Cores: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("headroom = %d, want 2", n)
	}
}
