package planner

import (
	"math"
	"math/big"
	"math/bits"
)

// frac is an exact non-negative rational for utilization accounting on
// the planning hot path. Task utilizations are WCET/Period with periods
// dividing the bounded hyperperiod, so per-core sums stay well inside
// int64 after GCD reduction; arithmetic runs allocation-free with
// 128-bit overflow guards, and a value that would overflow spills into
// a math/big representation once and stays there. Both regimes are
// exact — frac trades none of big.Rat's precision, only its mallocs.
type frac struct {
	num, den int64 // reduced, den > 0; meaningful iff spill == nil
	spill    *big.Rat
}

// zeroFrac is the additive identity.
func zeroFrac() frac { return frac{num: 0, den: 1} }

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// add adds num/den in place. Inputs outside (0, MaxInt64] (callers
// validate specs first, so this is defensive) take the big path, which
// is correct for any rational.
func (f *frac) add(num, den int64) {
	if f.spill == nil && num >= 0 && den > 0 {
		if g := gcd64(num, den); g > 1 {
			num /= g
			den /= g
		}
		g := gcd64(f.den, den)
		da, db := f.den/g, den/g // lcm(f.den, den) = f.den * db
		hi1, lo1 := bits.Mul64(uint64(f.num), uint64(db))
		hi2, lo2 := bits.Mul64(uint64(num), uint64(da))
		hiD, loD := bits.Mul64(uint64(f.den), uint64(db))
		sum, carry := bits.Add64(lo1, lo2, 0)
		if hi1|hi2|hiD|carry == 0 && sum <= math.MaxInt64 && loD <= math.MaxInt64 {
			n, d := int64(sum), int64(loD)
			if g := gcd64(n, d); g > 1 {
				n /= g
				d /= g
			}
			f.num, f.den = n, d
			return
		}
	}
	if f.spill == nil {
		f.spill = big.NewRat(f.num, f.den)
	}
	f.spill.Add(f.spill, big.NewRat(num, den))
}

// cmp returns -1, 0, or +1 comparing f against o.
func (f *frac) cmp(o *frac) int {
	if f.spill == nil && o.spill == nil {
		hiL, loL := bits.Mul64(uint64(f.num), uint64(o.den))
		hiR, loR := bits.Mul64(uint64(o.num), uint64(f.den))
		switch {
		case hiL != hiR:
			if hiL < hiR {
				return -1
			}
			return 1
		case loL != loR:
			if loL < loR {
				return -1
			}
			return 1
		}
		return 0
	}
	return f.rat().Cmp(o.rat())
}

// cmpInt compares f against the non-negative integer v.
func (f *frac) cmpInt(v int64) int {
	if f.spill != nil {
		return f.spill.Cmp(new(big.Rat).SetInt64(v))
	}
	hi, lo := bits.Mul64(uint64(v), uint64(f.den))
	switch {
	case hi != 0 || uint64(f.num) < lo:
		return -1
	case uint64(f.num) > lo:
		return 1
	}
	return 0
}

// clone returns an independent copy (the spilled representation is
// deep-copied so the copy can be mutated freely).
func (f *frac) clone() frac {
	if f.spill != nil {
		return frac{spill: new(big.Rat).Set(f.spill)}
	}
	return *f
}

// rat returns the value as a fresh big.Rat (reporting only).
func (f *frac) rat() *big.Rat {
	if f.spill != nil {
		return new(big.Rat).Set(f.spill)
	}
	return big.NewRat(f.num, f.den)
}
