// Package planner implements Tableau's table-generation procedure
// (paper Sec. 5): it maps each vCPU's (utilization, latency-goal) pair to
// a periodic real-time task, assigns tasks to cores with worst-fit-
// decreasing partitioning, falls back to C=D semi-partitioning and then
// to an optimal (DP-Fair style) cluster scheduler, simulates EDF on each
// core up to the hyperperiod, and post-processes the result into the
// slice-indexed scheduling tables the dispatcher consumes.
package planner

import (
	"fmt"
	"sort"

	"tableau/internal/periodic"
)

// MaxHyperperiod is the bound on table length used to select candidate
// periods: 102,702,600 ns (~102.7 ms). The paper chose this value because
// it has an unusually large number of integer divisors above the 100 µs
// enforceability threshold (186 of them), so vCPUs with diverse latency
// goals can share a short table.
const MaxHyperperiod = 102_702_600

// MinPeriod is the smallest enforceable period: reservations shorter than
// 100 µs cannot be dispatched reliably because scheduling overheads
// dominate (paper Sec. 5).
const MinPeriod = 100_000

// CandidatePeriods returns the set F of all integer divisors of
// MaxHyperperiod that are >= MinPeriod, in increasing order. The planner
// always picks task periods from this set, which caps every table length
// at MaxHyperperiod.
func CandidatePeriods() []int64 {
	return candidatePeriods(MaxHyperperiod, MinPeriod)
}

func candidatePeriods(hyperperiod, minPeriod int64) []int64 {
	var ds []int64
	for d := int64(1); d*d <= hyperperiod; d++ {
		if hyperperiod%d != 0 {
			continue
		}
		if d >= minPeriod {
			ds = append(ds, d)
		}
		if q := hyperperiod / d; q != d && q >= minPeriod {
			ds = append(ds, q)
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds
}

// Util is an exact utilization expressed as the rational Num/Den. The
// zero value is invalid; use UtilFromPPM or construct Num/Den directly.
type Util struct {
	Num int64
	Den int64
}

// UtilFromPPM returns the utilization ppm/1,000,000.
func UtilFromPPM(ppm int64) Util { return Util{Num: ppm, Den: 1_000_000} }

// FairShare returns the fair-share utilization m/n used when no explicit
// SLA is configured: m cores divided among n vCPUs (paper Sec. 5).
func FairShare(cores, vcpus int) Util { return Util{Num: int64(cores), Den: int64(vcpus)} }

// Validate reports whether u is a well-formed utilization in (0, 1].
func (u Util) Validate() error {
	if u.Den <= 0 {
		return fmt.Errorf("planner: utilization denominator %d must be positive", u.Den)
	}
	if u.Num <= 0 {
		return fmt.Errorf("planner: utilization %d/%d must be positive", u.Num, u.Den)
	}
	if u.Num > u.Den {
		return fmt.Errorf("planner: utilization %d/%d exceeds 1", u.Num, u.Den)
	}
	return nil
}

// IsFull reports whether u == 1 (the vCPU needs a dedicated core).
func (u Util) IsFull() bool { return u.Num == u.Den }

// PPM returns the utilization in parts-per-million, rounded up.
func (u Util) PPM() int64 {
	return (u.Num*1_000_000 + u.Den - 1) / u.Den
}

// Float returns the utilization as a float64 (reporting only).
func (u Util) Float() float64 { return float64(u.Num) / float64(u.Den) }

// Cost returns the execution budget ceil(u * period) in ns.
func (u Util) Cost(period int64) int64 {
	return (u.Num*period + u.Den - 1) / u.Den
}

// PickPeriod selects a candidate period T such that the worst-case
// blackout bound 2*(1-U)*T is at most the latency goal L (paper Sec. 5):
// a periodic task that receives C=U*T units per period can go without
// service for at most 2*(T-C) time units.
//
// Among the candidates satisfying the bound, PickPeriod prefers the
// largest T for which the budget U*T is an exact integer number of
// nanoseconds. An exact budget means the task's table utilization equals
// the reserved utilization precisely, which keeps exactly-full cores
// (e.g. four 25% vCPUs) packable; with a ceil()ed budget the sub-ns
// inflation would push such cores over capacity. If no in-bound
// candidate divides evenly, the largest in-bound candidate is used with
// a rounded-up budget.
//
// The comparison is exact: 2*(1-U)*T <= L  <=>  2*(Den-Num)*T <= L*Den.
// ok is false when even the smallest candidate period violates the goal,
// i.e. the latency goal is too tight to be enforceable.
func PickPeriod(u Util, latencyGoal int64, candidates []int64) (period int64, ok bool) {
	if latencyGoal <= 0 {
		return 0, false
	}
	slack := 2 * (u.Den - u.Num) // per unit of T, scaled by Den
	var fallback int64
	for i := len(candidates) - 1; i >= 0; i-- {
		t := candidates[i]
		// Guard multiplication overflow: slack <= 2*Den <= 2e6 scale,
		// t <= ~1e8, product <= ~2e14 — safe; latencyGoal*Den may be
		// large but callers pass goals <= seconds (1e9) and Den <= 1e6,
		// so <= 1e15 — safe.
		if slack*t > latencyGoal*u.Den {
			continue
		}
		if (u.Num*t)%u.Den == 0 {
			return t, true
		}
		if fallback == 0 {
			fallback = t
		}
	}
	if fallback != 0 {
		return fallback, true
	}
	return 0, false
}

// TaskFor maps a vCPU specification to its periodic task (paper Sec. 5):
// the period comes from PickPeriod and the budget is ceil(U*T), so the
// task's actual utilization is at least the reserved utilization.
func TaskFor(name string, group int, u Util, latencyGoal int64, candidates []int64) (periodic.Task, error) {
	if err := u.Validate(); err != nil {
		return periodic.Task{}, err
	}
	t, ok := PickPeriod(u, latencyGoal, candidates)
	if !ok {
		return periodic.Task{}, fmt.Errorf("planner: vCPU %q: latency goal %d ns unenforceable (minimum candidate period %d ns, utilization %d/%d)",
			name, latencyGoal, candidates[0], u.Num, u.Den)
	}
	c := u.Cost(t)
	if c > t {
		c = t
	}
	return periodic.Task{
		Name:     name,
		Group:    group,
		WCET:     c,
		Deadline: t,
		Period:   t,
	}, nil
}
