package planner

import (
	"container/list"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Cache memoizes planning results, implementing the paper's Sec. 7.1
// suggestion that "it is trivially possible to centrally cache tables
// for common configurations that are frequently reused": cloud
// providers sell regularly sized VMs, so hosts keep re-planning the
// same handful of population shapes.
//
// The cache key is the exact (specs, options) input. Cached results
// are shared: callers must treat the returned Result and its Table as
// immutable, which every consumer in this repository does (the
// dispatcher only reads tables, and core.System re-maps into fresh
// tables).
//
// The cache is bounded twice over: by entry count and by an estimated
// byte budget, both enforced with LRU eviction — a churn soak that
// keeps minting fresh population shapes ages out the cold ones instead
// of growing without limit. It also carries a SliceCache, the per-core
// memo level below whole-problem hits.
type Cache struct {
	mu       sync.Mutex
	max      int
	maxBytes int64
	bytes    int64
	entries  map[string]*list.Element
	order    *list.List // LRU: front = most recent
	hits     int64
	misses   int64
	evicted  int64
	slices   *SliceCache
}

type cacheEntry struct {
	key  string
	res  *Result
	size int64
}

// DefaultCacheBytes is the byte budget NewCache installs.
const DefaultCacheBytes = 64 << 20

// NewCache returns a cache holding at most max results (LRU eviction),
// within a DefaultCacheBytes estimated-footprint budget. max <= 0
// selects a default of 128.
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 128
	}
	return &Cache{
		max:      max,
		maxBytes: DefaultCacheBytes,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		slices:   NewSliceCache(0),
	}
}

// SetMaxBytes replaces the byte budget (<= 0 restores the default) and
// evicts immediately if the cache is already over it.
func (c *Cache) SetMaxBytes(n int64) {
	if n <= 0 {
		n = DefaultCacheBytes
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = n
	c.evictLocked()
}

// SliceCache returns the per-core EDF simulation memo attached to this
// cache, for wiring into Options.Slices.
func (c *Cache) SliceCache() *SliceCache { return c.slices }

// CacheKey returns the canonical key for a planning input. Spec order
// matters (worst-fit tie-breaking is order-sensitive), so no sorting is
// applied. Every Options field that influences placement is part of the
// key — including Affinity, which encodes the caller's view of the
// machine topology: core.System narrows affinity sets to the surviving
// cores after a fail-stop, so two plans before and after a topology
// change must never collide on one cached table. Execution-shape fields
// (PlannerWorkers, Slices) are deliberately excluded: they cannot
// change the produced table.
func CacheKey(specs []VCPUSpec, opts Options) string {
	opts = opts.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "c%d;t%d;q%d;s%d;ds%v;dc%v;ph%v;sc%d;sr%d|",
		opts.Cores, opts.TableLength, opts.CoalesceThreshold, opts.MaxSlicesPerCore,
		opts.DisableSplitting, opts.DisableClustering, opts.Peephole,
		opts.SplitCompensationPPM, opts.SplitRotation)
	if len(opts.Affinity) > 0 {
		names := make([]string, 0, len(opts.Affinity))
		for name := range opts.Affinity {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "a%s:%v;", name, opts.Affinity[name])
		}
		b.WriteString("|")
	}
	// The per-spec section dominates the key and is on the replan hot
	// path: append with strconv, not fmt.
	buf := make([]byte, 0, 32*len(specs))
	for _, s := range specs {
		buf = append(buf, s.Name...)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, s.Util.Num, 10)
		buf = append(buf, '/')
		buf = strconv.AppendInt(buf, s.Util.Den, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, s.LatencyGoal, 10)
		buf = append(buf, ',')
		if s.Capped {
			buf = append(buf, 't')
		} else {
			buf = append(buf, 'f')
		}
		if s.Class == BE {
			buf = append(buf, 'b')
		}
		buf = append(buf, ';')
	}
	b.Write(buf)
	return b.String()
}

// resultFootprint estimates a cached result's resident bytes: the
// dominant terms are the table's allocation lists and slice indices,
// plus the task and guarantee slices. An estimate is enough — the
// budget exists to bound growth, not to account exactly.
func resultFootprint(key string, res *Result) int64 {
	const (
		allocSize     = 24
		taskSize      = 96 // incl. name header + typical payload
		guaranteeSize = 32
		vcpuInfoSize  = 64
		fixed         = 512
	)
	n := int64(fixed) + int64(len(key))
	if tbl := res.Table; tbl != nil {
		n += int64(len(tbl.VCPUs)) * vcpuInfoSize
		for i := range tbl.Cores {
			ct := &tbl.Cores[i]
			n += int64(len(ct.Allocs)) * allocSize
			if ct.SliceLen > 0 {
				n += (tbl.Len/ct.SliceLen + 1) * 4
			}
		}
	}
	n += int64(len(res.Tasks)) * taskSize
	n += int64(len(res.Guarantees)) * guaranteeSize
	for _, ts := range res.CoreTasks {
		n += int64(len(ts)) * taskSize
	}
	return n
}

// Plan returns a cached result for the input if one exists, planning
// and caching otherwise. Errors are not cached.
func (c *Cache) Plan(specs []VCPUSpec, opts Options) (*Result, error) {
	key := CacheKey(specs, opts)
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, nil
	}
	c.misses++
	c.mu.Unlock()

	// Plan outside the lock: planning can take milliseconds and
	// concurrent misses for different keys should proceed in parallel.
	res, err := Plan(specs, opts)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent miss beat us; keep the first result so callers
		// sharing the cache also share tables.
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).res, nil
	}
	c.addLocked(key, res)
	return res, nil
}

// Lookup returns the cached result for the input without planning on a
// miss. Hit/miss counters advance exactly as for Plan.
func (c *Cache) Lookup(specs []VCPUSpec, opts Options) (*Result, bool) {
	key := CacheKey(specs, opts)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).res, true
	}
	c.misses++
	return nil, false
}

// Add inserts an externally planned result for the given input, so
// callers that must time or instrument Plan directly can still publish
// the table for reuse. An existing entry for the key is kept (callers
// sharing the cache keep sharing one table); Add counts as neither hit
// nor miss. Incremental results must not be published — their tables
// depend on planning history, not just the key — so Add ignores them.
func (c *Cache) Add(specs []VCPUSpec, opts Options, res *Result) {
	if res.Incremental {
		return
	}
	key := CacheKey(specs, opts)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.addLocked(key, res)
}

// addLocked inserts and then enforces both bounds.
func (c *Cache) addLocked(key string, res *Result) {
	size := resultFootprint(key, res)
	el := c.order.PushFront(&cacheEntry{key: key, res: res, size: size})
	c.entries[key] = el
	c.bytes += size
	c.evictLocked()
}

// evictLocked drops LRU entries until both the count and byte bounds
// hold. At least one entry is always kept: a single over-budget result
// would otherwise thrash forever between insert and evict.
func (c *Cache) evictLocked() {
	for (c.order.Len() > c.max || c.bytes > c.maxBytes) && c.order.Len() > 1 {
		oldest := c.order.Back()
		ent := oldest.Value.(*cacheEntry)
		c.order.Remove(oldest)
		delete(c.entries, ent.key)
		c.bytes -= ent.size
		c.evicted++
	}
}

// Stats returns the hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// CacheStats is the full counter set, including the attached slice
// cache's.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64
	Slice     SliceCacheStats
}

// FullStats returns every counter the cache keeps.
func (c *Cache) FullStats() CacheStats {
	c.mu.Lock()
	st := CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evicted,
		Entries: c.order.Len(), Bytes: c.bytes,
	}
	c.mu.Unlock()
	st.Slice = c.slices.Stats()
	return st
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
