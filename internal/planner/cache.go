package planner

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Cache memoizes planning results, implementing the paper's Sec. 7.1
// suggestion that "it is trivially possible to centrally cache tables
// for common configurations that are frequently reused": cloud
// providers sell regularly sized VMs, so hosts keep re-planning the
// same handful of population shapes.
//
// The cache key is the exact (specs, options) input. Cached results
// are shared: callers must treat the returned Result and its Table as
// immutable, which every consumer in this repository does (the
// dispatcher only reads tables, and core.System re-maps into fresh
// tables).
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // LRU: front = most recent
	hits    int64
	misses  int64
}

type cacheEntry struct {
	key string
	res *Result
}

// NewCache returns a cache holding at most max results (LRU eviction).
// max <= 0 selects a default of 128.
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 128
	}
	return &Cache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// CacheKey returns the canonical key for a planning input. Spec order
// matters (worst-fit tie-breaking is order-sensitive), so no sorting is
// applied. Every Options field that influences placement is part of the
// key — including Affinity, which encodes the caller's view of the
// machine topology: core.System narrows affinity sets to the surviving
// cores after a fail-stop, so two plans before and after a topology
// change must never collide on one cached table.
func CacheKey(specs []VCPUSpec, opts Options) string {
	opts = opts.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "c%d;t%d;q%d;s%d;ds%v;dc%v;ph%v;sc%d;sr%d|",
		opts.Cores, opts.TableLength, opts.CoalesceThreshold, opts.MaxSlicesPerCore,
		opts.DisableSplitting, opts.DisableClustering, opts.Peephole,
		opts.SplitCompensationPPM, opts.SplitRotation)
	if len(opts.Affinity) > 0 {
		names := make([]string, 0, len(opts.Affinity))
		for name := range opts.Affinity {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "a%s:%v;", name, opts.Affinity[name])
		}
		b.WriteString("|")
	}
	for _, s := range specs {
		fmt.Fprintf(&b, "%s,%d/%d,%d,%v;", s.Name, s.Util.Num, s.Util.Den, s.LatencyGoal, s.Capped)
	}
	return b.String()
}

// Plan returns a cached result for the input if one exists, planning
// and caching otherwise. Errors are not cached.
func (c *Cache) Plan(specs []VCPUSpec, opts Options) (*Result, error) {
	key := CacheKey(specs, opts)
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, nil
	}
	c.misses++
	c.mu.Unlock()

	// Plan outside the lock: planning can take milliseconds and
	// concurrent misses for different keys should proceed in parallel.
	res, err := Plan(specs, opts)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent miss beat us; keep the first result so callers
		// sharing the cache also share tables.
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).res, nil
	}
	el := c.order.PushFront(&cacheEntry{key: key, res: res})
	c.entries[key] = el
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	return res, nil
}

// Add inserts an externally planned result for the given input, so
// callers that must time or instrument Plan directly can still publish
// the table for reuse. An existing entry for the key is kept (callers
// sharing the cache keep sharing one table); Add counts as neither hit
// nor miss.
func (c *Cache) Add(specs []VCPUSpec, opts Options, res *Result) {
	key := CacheKey(specs, opts)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&cacheEntry{key: key, res: res})
	c.entries[key] = el
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Stats returns the hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
