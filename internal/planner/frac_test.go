package planner

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// TestFracMatchesBigRat cross-checks the hot-path fraction arithmetic
// against math/big on random sums and comparisons, mixing small
// period-like denominators with values chosen to force the int64
// overflow spill.
func TestFracMatchesBigRat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dens := []int64{1, 2, 4, 8, 16, 100, 1_000_000, 20_000_000, 102_700_800,
		math.MaxInt64 - 1, math.MaxInt64}
	for trial := 0; trial < 500; trial++ {
		f := zeroFrac()
		want := new(big.Rat)
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			den := dens[rng.Intn(len(dens))]
			num := 1 + rng.Int63n(den)
			f.add(num, den)
			want.Add(want, big.NewRat(num, den))
		}
		if f.rat().Cmp(want) != 0 {
			t.Fatalf("trial %d: frac = %v, big.Rat = %v", trial, f.rat(), want)
		}
		for _, v := range []int64{0, 1, 2, 40} {
			if got, want := f.cmpInt(v), want.Cmp(new(big.Rat).SetInt64(v)); got != want {
				t.Fatalf("trial %d: cmpInt(%d) = %d, want %d (value %v)", trial, v, got, want, f.rat())
			}
		}
	}
}

// TestFracCmp pins pairwise comparison across the fast/spilled regimes.
func TestFracCmp(t *testing.T) {
	mk := func(pairs ...[2]int64) frac {
		f := zeroFrac()
		for _, p := range pairs {
			f.add(p[0], p[1])
		}
		return f
	}
	half := mk([2]int64{1, 2})
	threeEighths := mk([2]int64{1, 4}, [2]int64{1, 8})
	spilled := mk([2]int64{1, math.MaxInt64}, [2]int64{1, math.MaxInt64 - 1})
	if spilled.spill == nil {
		t.Fatal("coprime huge denominators did not spill to big.Rat")
	}
	for _, tc := range []struct {
		a, b frac
		want int
	}{
		{half, threeEighths, 1},
		{threeEighths, half, -1},
		{half, half, 0},
		{spilled, half, -1},
		{half, spilled, 1},
		{spilled, spilled, 0},
	} {
		if got := tc.a.cmp(&tc.b); got != tc.want {
			t.Errorf("cmp(%v, %v) = %d, want %d", tc.a.rat(), tc.b.rat(), got, tc.want)
		}
	}
	// A spilled accumulator keeps summing exactly.
	s := spilled.clone()
	s.add(1, 2)
	want := new(big.Rat).Add(spilled.rat(), big.NewRat(1, 2))
	if s.rat().Cmp(want) != 0 {
		t.Errorf("post-spill add: %v, want %v", s.rat(), want)
	}
}
