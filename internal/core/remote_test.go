package core

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"tableau/internal/plannersvc"
)

// TestControllerRemotePlanning runs a churn transition through the full
// offloaded-planner path: the Controller's PlanVia hook is the
// plannersvc client, so the arrival's table is planned by an actual
// HTTP round-trip to a daemon and handed back in the binary wire
// format.
func TestControllerRemotePlanning(t *testing.T) {
	_, d, ctrl, ids, _ := churnRig(t, 2, 2, 1)

	svc := plannersvc.NewServer(16)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := &plannersvc.Client{BaseURL: ts.URL, MaxAttempts: 2}
	ctrl.PlanVia = client.PlanFunc()

	ctrl.Submit(Op{Kind: OpActivate, Slot: ids[2]})
	tr, err := ctrl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Version == 0 || tr.RolledBack {
		t.Fatalf("remote-planned transition did not commit: %+v", tr)
	}
	if _, misses := svc.CacheStats(); misses == 0 {
		t.Fatal("daemon never planned — PlanVia did not reach the service")
	}
	// The remotely planned epoch is what the dispatcher will enact.
	var buf bytes.Buffer
	if err := d.Staged().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), ctrl.Epoch().Bytes) {
		t.Fatal("staged table differs from the controller's epoch")
	}
}

// TestControllerRemoteOutageFallsBackLocally pins the availability
// story: with the daemon unreachable the PlanWithFallback path plans
// on-host, and the churn transition still commits — remote planning is
// a convenience, never a hard dependency of admission.
func TestControllerRemoteOutageFallsBackLocally(t *testing.T) {
	_, _, ctrl, ids, _ := churnRig(t, 2, 2, 1)

	// A daemon that was up once and is now gone: the URL points at a
	// closed listener, so every attempt fails at the transport layer.
	ts := httptest.NewServer(nil)
	url := ts.URL
	ts.Close()
	client := &plannersvc.Client{
		BaseURL:        url,
		MaxAttempts:    1,
		AttemptTimeout: 200 * time.Millisecond,
		Breaker:        &plannersvc.Breaker{Threshold: 1, Cooldown: time.Hour},
	}
	ctrl.PlanVia = client.PlanFunc()

	ctrl.Submit(Op{Kind: OpActivate, Slot: ids[2]})
	tr, err := ctrl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Version == 0 || tr.RolledBack {
		t.Fatalf("fallback transition did not commit: %+v", tr)
	}
	if tr.PlannerCalls != 1 {
		t.Fatalf("planner calls = %d, want 1", tr.PlannerCalls)
	}
	// The breaker is now open; a second transition must still commit
	// without waiting out remote attempts.
	ctrl.Submit(Op{Kind: OpDeactivate, Slot: ids[2]})
	tr2, err := ctrl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Version == 0 || tr2.RolledBack {
		t.Fatalf("second fallback transition did not commit: %+v", tr2)
	}
	if tr2.Version <= tr.Version {
		t.Fatalf("epoch versions not monotonic: %d then %d", tr.Version, tr2.Version)
	}
}
