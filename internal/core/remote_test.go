package core

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tableau/internal/plannersvc"
)

// TestControllerRemotePlanning runs a churn transition through the full
// offloaded-planner path: the Controller's PlanVia hook is the
// plannersvc client, so the arrival's table is planned by an actual
// HTTP round-trip to a daemon and handed back in the binary wire
// format.
func TestControllerRemotePlanning(t *testing.T) {
	_, d, ctrl, ids, _ := churnRig(t, 2, 2, 1)

	svc := plannersvc.NewServer(16)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := &plannersvc.Client{BaseURL: ts.URL, MaxAttempts: 2}
	ctrl.PlanVia = client.PlanFunc()

	ctrl.Submit(Op{Kind: OpActivate, Slot: ids[2]})
	tr, err := ctrl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Version == 0 || tr.RolledBack {
		t.Fatalf("remote-planned transition did not commit: %+v", tr)
	}
	if _, misses := svc.CacheStats(); misses == 0 {
		t.Fatal("daemon never planned — PlanVia did not reach the service")
	}
	// The remotely planned epoch is what the dispatcher will enact
	// (epoch bytes are the compact encoding, so compare in that form).
	enc, err := d.Staged().AppendEncodedCompact(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, ctrl.Epoch().Bytes) {
		t.Fatal("staged table differs from the controller's epoch")
	}

	// /healthz surfaces the daemon's cache counters and — through the
	// registered hook — the colocated controller's speculation counters.
	svc.SetSpeculationStats(func() (hits, wasted int64) {
		st := ctrl.SpeculationStats()
		return st.Hits, st.Wasted
	})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status         string `json:"status"`
		CacheHits      int64  `json:"cache_hits"`
		CacheMisses    int64  `json:"cache_misses"`
		CacheEvictions int64  `json:"cache_evictions"`
		CacheBytes     int64  `json:"cache_bytes"`
		SliceHits      int64  `json:"slice_hits"`
		SliceMisses    int64  `json:"slice_misses"`
		SpecHits       *int64 `json:"spec_hits"`
		SpecWasted     *int64 `json:"spec_wasted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz status = %q", h.Status)
	}
	if h.CacheMisses == 0 {
		t.Error("healthz reports no cache misses after a planned request")
	}
	if h.CacheBytes == 0 {
		t.Error("healthz reports an empty cache after a planned request")
	}
	if h.SliceMisses == 0 {
		t.Error("healthz reports no slice-cache activity after a planned request")
	}
	if h.SpecHits == nil || h.SpecWasted == nil {
		t.Error("healthz omitted the registered speculation counters")
	}
}

// TestControllerRemoteOutageFallsBackLocally pins the availability
// story: with the daemon unreachable the PlanWithFallback path plans
// on-host, and the churn transition still commits — remote planning is
// a convenience, never a hard dependency of admission.
func TestControllerRemoteOutageFallsBackLocally(t *testing.T) {
	_, _, ctrl, ids, _ := churnRig(t, 2, 2, 1)

	// A daemon that was up once and is now gone: the URL points at a
	// closed listener, so every attempt fails at the transport layer.
	ts := httptest.NewServer(nil)
	url := ts.URL
	ts.Close()
	client := &plannersvc.Client{
		BaseURL:        url,
		MaxAttempts:    1,
		AttemptTimeout: 200 * time.Millisecond,
		Breaker:        &plannersvc.Breaker{Threshold: 1, Cooldown: time.Hour},
	}
	ctrl.PlanVia = client.PlanFunc()

	ctrl.Submit(Op{Kind: OpActivate, Slot: ids[2]})
	tr, err := ctrl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Version == 0 || tr.RolledBack {
		t.Fatalf("fallback transition did not commit: %+v", tr)
	}
	if tr.PlannerCalls != 1 {
		t.Fatalf("planner calls = %d, want 1", tr.PlannerCalls)
	}
	// The breaker is now open; a second transition must still commit
	// without waiting out remote attempts.
	ctrl.Submit(Op{Kind: OpDeactivate, Slot: ids[2]})
	tr2, err := ctrl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Version == 0 || tr2.RolledBack {
		t.Fatalf("second fallback transition did not commit: %+v", tr2)
	}
	if tr2.Version <= tr.Version {
		t.Fatalf("epoch versions not monotonic: %d then %d", tr.Version, tr2.Version)
	}
}
