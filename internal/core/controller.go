package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tableau/internal/journal"
	"tableau/internal/planner"
	"tableau/internal/table"
	"tableau/internal/trace"
)

// This file is the churn-hardened reconfiguration pipeline: the paper's
// observation that tables are regenerated on demand as VMs come and go
// (Sec. 5, Sec. 7.1) meets the operational reality of arrival/departure
// storms. The Controller serializes concurrent population changes into
// a replan queue, coalesces each burst into a single planner invocation,
// versions the resulting tables as monotonic epochs, and makes every
// transition transactional: a batch that fails admission or cannot be
// installed is rolled back so the dispatcher keeps enacting the
// previous epoch bit-for-bit and already-admitted VMs never lose their
// guarantee.

// OpKind enumerates the control-plane operations a Controller accepts.
type OpKind uint8

const (
	// OpActivate creates the VM in slot Slot (a pre-registered slot,
	// since vCPU ids are fixed at machine start).
	OpActivate OpKind = iota
	// OpDeactivate tears the VM in slot Slot down.
	OpDeactivate
	// OpReconfigure changes slot Slot's reservation to (Util,
	// LatencyGoal).
	OpReconfigure
	// OpFailCore records the fail-stop of physical core Core. Failures
	// are facts, not requests: they are never rejected and never rolled
	// back, and their presence marks the transition as an emergency.
	OpFailCore
)

func (k OpKind) String() string {
	switch k {
	case OpActivate:
		return "activate"
	case OpDeactivate:
		return "deactivate"
	case OpReconfigure:
		return "reconfigure"
	case OpFailCore:
		return "failcore"
	}
	return "unknown"
}

// Op is one queued control-plane operation.
type Op struct {
	Kind        OpKind
	Slot        int   // Activate / Deactivate / Reconfigure
	Util        Util  // Reconfigure
	LatencyGoal int64 // Reconfigure
	Core        int   // FailCore

	// SetClass, on a Reconfigure, additionally changes the slot's
	// tenancy class to Class (fleet hosts recycle slots across
	// placements of different classes). Zero value leaves the class
	// untouched.
	SetClass bool
	Class    Class

	// Shed marks a committed OpDeactivate the controller synthesized
	// itself: a best-effort guest deactivated to make room for a
	// latency-sensitive admission under overload. Shed ops appear in
	// Transition.Committed and in the journaled epoch like any other
	// deactivation — the class-continuity oracle requires every BE
	// absence to be explained by exactly such a committed op.
	Shed bool
}

func (o Op) String() string {
	switch o.Kind {
	case OpFailCore:
		return fmt.Sprintf("failcore(%d)", o.Core)
	case OpReconfigure:
		return fmt.Sprintf("reconfigure(%d,%d/%d,%d)", o.Slot, o.Util.Num, o.Util.Den, o.LatencyGoal)
	case OpDeactivate:
		if o.Shed {
			return fmt.Sprintf("shed(%d)", o.Slot)
		}
	}
	return fmt.Sprintf("%s(%d)", o.Kind, o.Slot)
}

// Rejection is one op the pipeline refused, with the reason. A rejected
// op's effects are undone before the batch is planned, so rejections
// never leak into an installed epoch.
type Rejection struct {
	Op  Op
	Err error
}

// Epoch is one installed table version. Version equals the table's
// Generation and increases monotonically; Bytes is the compact wire
// encoding of the table at install time (slice index omitted — Decode
// rebuilds it), kept so tests and oracles can compare epochs
// bit-for-bit.
type Epoch struct {
	Version    uint64
	Table      *table.Table
	Guarantees []table.Guarantee
	Bytes      []byte
}

// Transition reports the outcome of one Flush.
type Transition struct {
	// Version is the installed epoch (0 when the batch was rolled back
	// or contained no effective ops — the previous epoch stands).
	Version uint64
	// Committed holds the ops that made it into the installed epoch, in
	// arrival order.
	Committed []Op
	// Rejected holds the ops refused by admission or shed when planning
	// failed; their effects were undone individually.
	Rejected []Rejection
	// RolledBack reports that the whole batch was undone: the
	// population snapshot was restored and the sink was left on the
	// previous epoch.
	RolledBack bool
	// Emergency reports that the batch contained a core fail-stop.
	Emergency bool
	// PlannerCalls counts planner invocations this flush performed
	// (1 for a clean batch; +1 per shed retry).
	PlannerCalls int
	// Err is the terminal error of a rolled-back flush (also returned
	// by Flush).
	Err error
}

// Stats are the Controller's cumulative counters.
type Stats struct {
	Flushes      int64 // Flush calls that had pending ops
	Transitions  int64 // epochs installed
	OpsCoalesced int64 // ops drained by Flush
	Rejections   int64 // ops individually refused
	Rollbacks    int64 // whole batches undone
	PlannerCalls int64 // planner invocations
}

// stagedAborter is the optional sink capability the emergency rollback
// path uses: withdrawing a staged, not-yet-adopted table so the sink
// keeps enacting the previous epoch. *dispatch.Dispatcher implements it.
type stagedAborter interface {
	AbortStaged() *table.Table
}

// Controller is the serialized replan pipeline on top of a System.
// Submit enqueues operations from any goroutine; Flush drains the queue
// as one transactional batch: per-op admission checks, a single planner
// invocation for the survivors, a staged install through the sink at a
// safe table boundary, and rollback of the whole batch when planning or
// installation fails. Once a System is owned by a Controller, all
// population changes must go through it — direct System mutation would
// bypass the snapshot the rollback path restores.
//
// Lock ordering: Controller.mu is taken before System.mu, never the
// reverse.
type Controller struct {
	mu      sync.Mutex
	sys     *System
	sink    TableSink
	pending []Op
	epoch   Epoch
	history []Epoch
	stats   Stats

	// PlanVia, when set, replaces the local planner as the planning
	// backend (see System.PlanUsing) — the hook through which the
	// remote plannersvc path (breaker + fallback) serves churn. Set
	// before the first Flush.
	PlanVia PlanFunc

	// UnsafeShedLSFirst is a mutation-smoke defect switch: it inverts
	// the class-aware shed order, so an overloaded admission sheds
	// latency-sensitive guests while best-effort guests keep running.
	// The class-continuity oracle must convict the inverted order (an
	// LS guest shed while BE guests remain active). Never set outside
	// tests.
	UnsafeShedLSFirst bool

	// SpeculateNext, when positive, pre-plans up to that many likely
	// next populations after each successful Flush (the queued batch,
	// the next spare's arrival, the newest VM's departure), so a flush
	// matching one commits a precomputed epoch in install time. Zero
	// (the default) disables speculation. Speculation never touches the
	// sink or the population — it is invisible to correctness — and in
	// a simulated run costs zero sim time.
	SpeculateNext int

	// SpeculateAsync moves speculative planning onto a background
	// goroutine. The default (synchronous) keeps SpecStats
	// deterministic; async trades that for not blocking the flusher.
	SpeculateAsync bool

	// MaxHistory bounds the retained epoch history. Every committed
	// epoch holds a full table plus its wire encoding, so an unbounded
	// history grows the live heap linearly with churn on a long-lived
	// host. When positive, only the newest MaxHistory epochs are kept
	// (never fewer than 2, so the emergency-rollback predecessor stays
	// reachable); zero, the default, retains everything for the
	// verification oracles. Set before the first Flush.
	MaxHistory int

	// Tracer, when set, receives an EvPlanOrigin record for every
	// installed epoch (alongside the dispatcher's plannercall record):
	// where the plan came from and how much of it was reused. NowFn
	// supplies the record timestamp (sim time); nil stamps zero.
	Tracer *trace.Tracer
	NowFn  func() int64

	// journal, when set, receives one durable record per committed
	// epoch and is the commit point of every Flush: a batch whose
	// record cannot be appended rolls back (the staged table is
	// withdrawn), so the log never disagrees with the installed epoch
	// history. Set via AttachJournal, or by Recover when resuming from
	// a previous journal.
	journal *journal.Writer

	// specStore holds speculative results keyed by planner.CacheKey, in
	// the planner universe. Guarded by mu; planOnceLocked's backend
	// closure reads it with mu already held.
	specStore map[string]*planner.Result
	specStats SpecStats
	specHit   bool // last planOnceLocked was served speculatively
	specWG    sync.WaitGroup

	// specRounds counts entries into speculate(), including rounds that
	// bail immediately on closed. The Close/Flush regression tests read
	// it to prove no round starts after Close has returned.
	specRounds atomic.Int64

	// testHookPreKickoff, when set, runs between Flush's transactional
	// body and its speculation-kickoff decision — the window the
	// Close/Flush race regression test needs to land a Close in
	// deterministically. Never set outside tests.
	testHookPreKickoff func()

	// closed is set by Close: in-flight speculation bails at the next
	// candidate boundary, no new speculation starts, and Flush refuses
	// further batches.
	closed bool
}

// SpecStats are the speculation counters.
type SpecStats struct {
	// Planned counts speculative plans computed; Hits counts flushes
	// served from the store; Wasted counts stored plans invalidated
	// unconsumed (the population moved somewhere else).
	Planned int64
	Hits    int64
	Wasted  int64
}

// NewController wraps sys, installing tables into sink. initial is the
// planner result the sink currently enacts (from BuildDispatcher); it
// becomes epoch 1 of the history.
func NewController(sys *System, sink TableSink, initial *planner.Result) (*Controller, error) {
	c := &Controller{sys: sys, sink: sink}
	if initial != nil {
		ep, err := epochOf(initial.Table, initial.Guarantees)
		if err != nil {
			return nil, err
		}
		c.epoch = ep
		c.history = append(c.history, ep)
	}
	return c, nil
}

func epochOf(tbl *table.Table, gs []table.Guarantee) (Epoch, error) {
	enc, err := tbl.AppendEncodedCompact(nil)
	if err != nil {
		return Epoch{}, fmt.Errorf("core: encoding epoch %d: %w", tbl.Generation, err)
	}
	return Epoch{
		Version:    tbl.Generation,
		Table:      tbl,
		Guarantees: append([]table.Guarantee(nil), gs...),
		Bytes:      enc,
	}, nil
}

// epochOfLocked is epochOf with cross-epoch encode reuse: when the
// system runs incrementally, cores whose schedules are unchanged from
// the current epoch have their wire segments copied instead of
// re-encoded (verified by content comparison, so the bytes are exactly
// what a full encode would produce). Scratch-mode systems keep the
// plain full encode as the no-reuse baseline.
func (c *Controller) epochOfLocked(tbl *table.Table, gs []table.Guarantee) (Epoch, error) {
	if !c.sys.Incremental || c.epoch.Table == nil {
		return epochOf(tbl, gs)
	}
	enc, err := tbl.AppendEncodedReusingCompact(nil, c.epoch.Table, c.epoch.Bytes)
	if err != nil {
		return Epoch{}, fmt.Errorf("core: encoding epoch %d: %w", tbl.Generation, err)
	}
	return Epoch{
		Version:    tbl.Generation,
		Table:      tbl,
		Guarantees: append([]table.Guarantee(nil), gs...),
		Bytes:      enc,
	}, nil
}

// AttachJournal makes w the controller's durable epoch log and
// immediately journals the current epoch as the baseline record, so a
// recovery replaying the journal always finds the population the
// history started from. Attach before the first Flush; every committed
// epoch from here on is appended (and is only committed once the
// append succeeds).
func (c *Controller) AttachJournal(w *journal.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.epoch.Table == nil {
		return fmt.Errorf("core: no epoch to journal — create the controller with the initial plan first")
	}
	if err := w.Append(c.sys.journalRecordLocked(c.epoch)); err != nil {
		return err
	}
	c.journal = w
	return nil
}

// Journal returns the attached epoch journal (nil when none).
func (c *Controller) Journal() *journal.Writer { return c.journal }

// journalRecordLocked is System's half of the epoch record: the
// committed epoch plus the population and topology facts recovery
// needs. System.mu is held, so the snapshot is the exact state the
// epoch was planned from.
func (s *System) journalRecordLocked(ep Epoch) *journal.EpochRecord {
	rec := &journal.EpochRecord{
		Version:    ep.Version,
		Guarantees: append([]table.Guarantee(nil), ep.Guarantees...),
		TableBytes: append([]byte(nil), ep.Bytes...),
	}
	for _, sl := range s.slots {
		rec.Slots = append(rec.Slots, journal.SlotConfig{
			Name:        sl.cfg.Name,
			UtilNum:     sl.cfg.Util.Num,
			UtilDen:     sl.cfg.Util.Den,
			LatencyGoal: sl.cfg.LatencyGoal,
			Capped:      sl.cfg.Capped,
			Active:      sl.active,
			BestEffort:  sl.cfg.Class == BE,
		})
	}
	for core, failed := range s.failed {
		if failed {
			rec.FailedCores = append(rec.FailedCores, core)
		}
	}
	return rec
}

// Close shuts the controller down: no further Flush is accepted, any
// in-flight SpeculateAsync work is cancelled (it bails at the next
// candidate boundary) and waited for, and the journal — if attached —
// is synced so every committed epoch is durable. Safe to call more
// than once.
func (c *Controller) Close() error {
	c.mu.Lock()
	alreadyClosed := c.closed
	c.closed = true
	c.mu.Unlock()
	c.specWG.Wait()
	if c.journal != nil && !alreadyClosed {
		return c.journal.Sync()
	}
	return nil
}

// Submit enqueues one operation. Safe from any goroutine; the op takes
// effect at the next Flush.
func (c *Controller) Submit(op Op) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending = append(c.pending, op)
}

// SubmitBatch enqueues ops in order.
func (c *Controller) SubmitBatch(ops []Op) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending = append(c.pending, ops...)
}

// Pending returns the queued-op count.
func (c *Controller) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// System returns the population the controller plans over. Recovery
// harnesses use it to rebind a machine to a recovered dispatcher.
func (c *Controller) System() *System {
	return c.sys
}

// Epoch returns the current installed epoch.
func (c *Controller) Epoch() Epoch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// History returns the installed epochs in version order (the continuity
// oracle replays it against the trace).
func (c *Controller) History() []Epoch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Epoch(nil), c.history...)
}

// ControllerStats returns the cumulative counters.
func (c *Controller) ControllerStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Flush drains the queue and applies it as one transactional batch,
// returning the transition (nil when the queue was empty). The protocol:
//
//  1. snapshot the population;
//  2. apply ops in arrival order, pre-checking utilization admission
//     after each utilization-adding op — an inadmissible op is undone
//     and rejected individually, the batch continues;
//  3. one planner invocation for the whole batch. If planning fails
//     (placement can be infeasible past the utilization bound), shed
//     the most recent utilization-adding op and retry; when nothing is
//     left to shed, restore the snapshot — full rollback;
//  4. stage the table through the sink (adopted at a safe boundary by
//     the dispatcher's lock-free switch). A failed install also
//     restores the snapshot;
//  5. record the new epoch (version = table generation, monotonic).
//
// On an emergency (fail-stop) batch that rolls back, a staged table the
// sink has not begun adopting is withdrawn too: it was planned on the
// pre-failure topology, and the previous fully-adopted epoch is the one
// degraded mode must keep enacting.
//
// The error return equals Transition.Err: non-nil only when the batch
// rolled back. Individually rejected ops are not an error — callers
// inspect Transition.Rejected.
func (c *Controller) Flush() (*Transition, error) {
	tr, err := c.flush()
	if h := c.testHookPreKickoff; h != nil {
		h()
	}
	if tr == nil || tr.RolledBack {
		return tr, err
	}
	// The speculation-kickoff decision must happen under the mutex,
	// gated on closed: Close sets closed and then returns from
	// specWG.Wait, so an unguarded Add here could follow that Wait —
	// the documented WaitGroup misuse — and start a speculation
	// goroutine after Close already synced the journal. Holding mu also
	// makes the SpeculateNext/SpeculateAsync reads consistent with the
	// flush that just committed.
	c.mu.Lock()
	if c.closed || c.SpeculateNext <= 0 {
		c.mu.Unlock()
		return tr, err
	}
	async := c.SpeculateAsync
	if async {
		c.specWG.Add(1)
		go func() {
			defer c.specWG.Done()
			c.speculate()
		}()
	}
	c.mu.Unlock()
	if !async {
		c.speculate()
	}
	return tr, err
}

// WaitSpeculation blocks until background speculation kicked off by
// previous Flushes has finished (a no-op in synchronous mode).
func (c *Controller) WaitSpeculation() { c.specWG.Wait() }

// flush is Flush's transactional body.
func (c *Controller) flush() (*Transition, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("core: controller closed")
	}
	ops := c.pending
	c.pending = nil
	if len(ops) == 0 {
		return nil, nil
	}
	c.stats.Flushes++
	c.stats.OpsCoalesced += int64(len(ops))

	s := c.sys
	s.mu.Lock()
	defer s.mu.Unlock()

	snap := s.snapshotLocked()
	tr := &Transition{}
	reject := func(op Op, err error) {
		tr.Rejected = append(tr.Rejected, Rejection{Op: op, Err: err})
		c.stats.Rejections++
	}

	var applied []Op
	for _, op := range ops {
		switch op.Kind {
		case OpFailCore:
			if err := s.markCoreFailedLocked(op.Core); err != nil {
				reject(op, err)
				continue
			}
			tr.Emergency = true
			applied = append(applied, op)
		case OpActivate:
			if op.Slot < 0 || op.Slot >= len(s.slots) {
				reject(op, fmt.Errorf("core: no VM slot %d", op.Slot))
				continue
			}
			// Undoing a rejected activation must restore the pre-op state,
			// not blindly deactivate: bursts can carry a redundant
			// activation of an already-admitted guest (and a degraded,
			// over-utilized host can fail admission for it), which must
			// not become a silent teardown.
			wasActive := s.slots[op.Slot].active
			s.slots[op.Slot].active = true
			if err := c.admitLocked(); err != nil {
				if shed := c.shedForLocked(op.Slot); len(shed) > 0 {
					applied = append(applied, shed...)
					applied = append(applied, op)
					continue
				}
				s.slots[op.Slot].active = wasActive
				reject(op, err)
				continue
			}
			applied = append(applied, op)
		case OpDeactivate:
			if err := s.setActiveLocked(op.Slot, false); err != nil {
				reject(op, err)
				continue
			}
			applied = append(applied, op)
		case OpReconfigure:
			if op.Slot < 0 || op.Slot >= len(s.slots) {
				reject(op, fmt.Errorf("core: no VM slot %d", op.Slot))
				continue
			}
			prev := s.slots[op.Slot].cfg
			if op.SetClass {
				s.slots[op.Slot].cfg.Class = op.Class
			}
			if err := s.reconfigureLocked(op.Slot, op.Util, op.LatencyGoal); err != nil {
				s.slots[op.Slot].cfg = prev
				reject(op, err)
				continue
			}
			if err := c.admitLocked(); err != nil {
				if shed := c.shedForLocked(op.Slot); len(shed) > 0 {
					applied = append(applied, shed...)
					applied = append(applied, op)
					continue
				}
				s.slots[op.Slot].cfg = prev
				reject(op, err)
				continue
			}
			applied = append(applied, op)
		default:
			reject(op, fmt.Errorf("core: unknown op kind %d", op.Kind))
		}
	}
	if len(applied) == 0 {
		// Every op was refused individually: the population equals the
		// snapshot and the previous epoch stands; nothing to plan.
		return tr, nil
	}

	tbl, res, err := c.planOnceLocked(tr)
	for err != nil {
		// Admission passed but placement failed. Shed the most recent
		// utilization-adding op — best-effort subjects before latency-
		// sensitive ones — and retry with one fewer arrival.
		i := c.lastSheddableLocked(snap, applied)
		if i < 0 {
			break
		}
		op := applied[i]
		switch op.Kind {
		case OpActivate:
			_ = s.setActiveLocked(op.Slot, false)
		case OpReconfigure:
			s.slots[op.Slot].cfg = snap[op.Slot].cfg
		}
		applied = append(applied[:i], applied[i+1:]...)
		reject(op, err)
		if len(applied) == 0 {
			// Only shed ops remained: the population is back to the
			// snapshot and the previous epoch stands.
			return tr, nil
		}
		tbl, res, err = c.planOnceLocked(tr)
	}
	if err != nil {
		c.rollbackLocked(snap, tr, err)
		return tr, err
	}

	if perr := c.sink.PushTable(tbl); perr != nil {
		c.rollbackLocked(snap, tr, perr)
		return tr, perr
	}
	ep, eerr := c.epochOfLocked(tbl, res.Guarantees)
	if eerr != nil {
		// Encoding a just-validated table cannot fail in practice; treat
		// it as an install failure for uniformity.
		c.rollbackLocked(snap, tr, eerr)
		return tr, eerr
	}
	if c.journal != nil {
		// The journal is the commit point: the record must be durable
		// before the epoch exists. The table just staged has not been
		// adopted (no sim time has passed since PushTable), so a failed
		// append withdraws it and rolls the whole batch back — the
		// journal and the epoch history never disagree.
		if jerr := c.journal.Append(c.sys.journalRecordLocked(ep)); jerr != nil {
			if a, ok := c.sink.(stagedAborter); ok {
				a.AbortStaged()
			}
			c.rollbackLocked(snap, tr, jerr)
			return tr, jerr
		}
	}
	c.epoch = ep
	c.history = append(c.history, ep)
	if max := c.MaxHistory; max > 0 {
		if max < 2 {
			max = 2
		}
		if drop := len(c.history) - max; drop > 0 {
			n := copy(c.history, c.history[drop:])
			clear(c.history[n:])
			c.history = c.history[:n]
		}
	}
	c.stats.Transitions++
	tr.Version = ep.Version
	tr.Committed = applied
	if c.Tracer != nil {
		var now int64
		if c.NowFn != nil {
			now = c.NowFn()
		}
		origin := trace.PlanOriginScratch
		switch {
		case c.specHit:
			origin = trace.PlanOriginSpeculative
		case res.FromCache:
			origin = trace.PlanOriginCached
		case res.Incremental:
			origin = trace.PlanOriginIncremental
		}
		c.Tracer.Emit(trace.EvPlanOrigin, -1, now, -1, origin, int64(res.PinnedCores))
	}
	return tr, nil
}

// planOnceLocked is one planner invocation with counters. With
// speculation enabled, the backend first consults the speculative
// store: an exact CacheKey match means the stored result was planned
// from the identical population, options, and previous plan the live
// call would use, so returning it is indistinguishable from planning —
// minus the latency.
func (c *Controller) planOnceLocked(tr *Transition) (*table.Table, *planner.Result, error) {
	tr.PlannerCalls++
	c.stats.PlannerCalls++
	c.specHit = false
	fn := c.PlanVia
	if c.SpeculateNext > 0 {
		inner := fn
		fn = func(specs []planner.VCPUSpec, opts planner.Options) (*planner.Result, error) {
			key := planner.CacheKey(specs, opts)
			if res, ok := c.specStore[key]; ok {
				delete(c.specStore, key)
				c.specStats.Hits++
				c.specHit = true
				return res, nil
			}
			if inner != nil {
				return inner(specs, opts)
			}
			return c.sys.plan(specs, opts, c.sys.prev)
		}
	}
	return c.sys.planLocked(fn)
}

// SpeculationStats returns the speculation counters.
func (c *Controller) SpeculationStats() SpecStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.specStats
}

// rollbackLocked restores the snapshot and, for emergency batches,
// withdraws a staged table that never started adoption — it was planned
// before the fail-stop and must not supersede the last fully-adopted
// epoch. Core failure marks are facts and survive the rollback.
func (c *Controller) rollbackLocked(snap []slot, tr *Transition, err error) {
	c.sys.restoreLocked(snap)
	tr.RolledBack = true
	tr.Err = err
	c.stats.Rollbacks++
	if !tr.Emergency {
		return
	}
	if a, ok := c.sink.(stagedAborter); ok {
		if aborted := a.AbortStaged(); aborted != nil && aborted == c.epoch.Table {
			// The withdrawn table was the current (committed but never
			// adopted) epoch: revert to the predecessor it never replaced.
			if n := len(c.history); n >= 2 {
				c.history = c.history[:n-1]
				c.epoch = c.history[n-2]
				if c.journal != nil {
					// The withdrawn epoch's record is already durable, so
					// re-commit the reverted-to epoch verbatim: replay then
					// ends on the predecessor, matching the history.
					// Recovery keeps version monotonicity by resuming from
					// the journal's maximum version, not the last record's.
					// Best effort — if the append fails the journal is left
					// one (never-adopted) epoch ahead of the truth, which a
					// post-recovery emergency replan supersedes anyway.
					_ = c.journal.Append(c.sys.journalRecordLocked(c.epoch))
				}
			}
		}
	}
}

// admitLocked runs the planner's exact utilization admission check for
// the active population on the surviving cores.
func (c *Controller) admitLocked() error {
	specs, _ := c.sys.activeSpecsLocked()
	online := c.sys.onlineCoresLocked()
	if len(online) == 0 {
		return fmt.Errorf("core: every core has failed")
	}
	return planner.Admit(specs, len(online))
}

// admitLSLocked checks whether the latency-sensitive subpopulation
// alone fits the surviving cores — the gate that decides whether
// shedding best-effort guests can save an LS admission.
func (c *Controller) admitLSLocked() error {
	specs, _ := c.sys.activeSpecsLocked()
	online := c.sys.onlineCoresLocked()
	if len(online) == 0 {
		return fmt.Errorf("core: every core has failed")
	}
	return planner.AdmitLS(specs, len(online))
}

// shedForLocked makes room for the latency-sensitive guest in slot
// keep by shedding best-effort guests: active BE slots are deactivated
// (highest id first — the youngest arrivals) until the population
// admits again. Each victim becomes a committed, journaled
// OpDeactivate (Shed: true) in the installed epoch — never a silent
// eviction. Shedding is gated on planner.AdmitLS: it only proceeds
// when the LS guarantees alone are admissible, so an LS admission can
// displace BE slack but never another LS guarantee. BE subjects never
// shed anyone. Returns nil — with every victim restored — when
// shedding cannot save the admission.
//
// UnsafeShedLSFirst inverts the victim class: LS guests are shed while
// BE guests keep running, the defect the class-continuity oracle must
// convict.
func (c *Controller) shedForLocked(keep int) []Op {
	s := c.sys
	if keep < 0 || keep >= len(s.slots) || s.slots[keep].cfg.Class != LS {
		return nil
	}
	if c.admitLSLocked() != nil {
		return nil
	}
	victim := BE
	if c.UnsafeShedLSFirst {
		victim = LS
	}
	var shed []Op
	for id := len(s.slots) - 1; id >= 0; id-- {
		if id == keep || !s.slots[id].active || s.slots[id].cfg.Class != victim {
			continue
		}
		s.slots[id].active = false
		shed = append(shed, Op{Kind: OpDeactivate, Slot: id, Shed: true})
		if c.admitLocked() == nil {
			return shed
		}
	}
	for _, op := range shed {
		s.slots[op.Slot].active = true
	}
	return nil
}

// lastSheddableLocked returns the index of the utilization-adding op
// the plan-failure retry loop should shed next: the most recent one
// with a best-effort subject, falling back to the most recent one of
// any class. UnsafeShedLSFirst inverts the class preference.
//
// An OpActivate qualifies only if its slot was inactive at the batch
// snapshot: shedding an activation deactivates the slot, and a
// redundant activation of an already-admitted guest (bursts can carry
// them) must not turn into a teardown the epoch never committed.
func (c *Controller) lastSheddableLocked(snap []slot, ops []Op) int {
	prefer := BE
	if c.UnsafeShedLSFirst {
		prefer = LS
	}
	sheddable := func(op Op) bool {
		if op.Slot < 0 || op.Slot >= len(c.sys.slots) {
			return false
		}
		switch op.Kind {
		case OpActivate:
			return op.Slot >= len(snap) || !snap[op.Slot].active
		case OpReconfigure:
			return true
		}
		return false
	}
	fallback := -1
	for i := len(ops) - 1; i >= 0; i-- {
		if !sheddable(ops[i]) {
			continue
		}
		if fallback < 0 {
			fallback = i
		}
		if c.sys.slots[ops[i].Slot].cfg.Class == prefer {
			return i
		}
	}
	return fallback
}
