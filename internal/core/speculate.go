package core

import (
	"tableau/internal/planner"
)

// This file is the speculative plan-ahead layer. After each successful
// Flush the Controller guesses the likeliest next populations and plans
// them before anyone asks: under churn, the next batch is usually "the
// ops already queued", "one more spare arrives", or "the newest VM
// drains away" (heavy-tailed lifetimes make recent arrivals the most
// likely departures). A speculative result is stored under its exact
// planner.CacheKey; the next Flush whose (specs, options) match commits
// it in install time. Keying by the full cache key makes staleness
// impossible by construction — a population or topology that differs in
// any placement-relevant way simply misses.
//
// Speculation is invisible to correctness: it never touches the
// population, the sink, or the epoch history, and it plans with the
// same previous-plan input the live flush would use, so a consumed
// speculation is byte-identical to the plan the flush would have
// computed. In a simulated run it also costs zero sim time — planning
// happens in wall-clock time between engine events.

// specCandidate is one guessed next population.
type specCandidate struct {
	specs []planner.VCPUSpec
	opts  planner.Options
	key   string
}

// speculate invalidates the previous round's unconsumed speculations
// and pre-plans the next candidates. Called after a successful Flush —
// synchronously by default, on a goroutine with SpeculateAsync.
func (c *Controller) speculate() {
	c.specRounds.Add(1)
	c.mu.Lock()
	s := c.sys
	s.mu.Lock()

	if c.closed {
		s.mu.Unlock()
		c.mu.Unlock()
		return
	}
	if c.specStore == nil {
		c.specStore = make(map[string]*planner.Result)
	}
	// Everything stored before this round was planned against a
	// population that has since moved on: invalidate.
	c.specStats.Wasted += int64(len(c.specStore))
	for k := range c.specStore {
		delete(c.specStore, k)
	}

	cands := c.candidatesLocked()
	prev := s.prev
	s.mu.Unlock()
	c.mu.Unlock()

	for _, cand := range cands {
		// Close cancels speculation at candidate granularity: a closing
		// controller stops planning guesses nobody will consume.
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		res, err := s.plan(cand.specs, cand.opts, prev)
		if err != nil {
			continue // an infeasible guess is just not stored
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		c.specStore[cand.key] = res
		c.specStats.Planned++
		c.mu.Unlock()
	}
}

// candidatesLocked builds up to SpeculateNext candidate populations, in
// likelihood order, deduplicated by cache key. Both Controller.mu and
// System.mu are held.
func (c *Controller) candidatesLocked() []specCandidate {
	s := c.sys
	var cands []specCandidate
	seen := make(map[string]bool)

	add := func(toggle map[int]bool) {
		if len(cands) >= c.SpeculateNext {
			return
		}
		specs, _ := s.hypotheticalSpecsLocked(toggle)
		if len(specs) == 0 {
			return
		}
		opts, err := s.planOptsLocked(specs)
		if err != nil {
			return
		}
		key := planner.CacheKey(specs, opts)
		if seen[key] {
			return
		}
		seen[key] = true
		cands = append(cands, specCandidate{specs: specs, opts: opts, key: key})
	}

	// 1. The batch already queued: ops submitted but not yet flushed.
	if len(c.pending) > 0 {
		toggle := make(map[int]bool)
		for _, op := range c.pending {
			switch op.Kind {
			case OpActivate:
				toggle[op.Slot] = true
			case OpDeactivate:
				toggle[op.Slot] = false
			}
		}
		if len(toggle) > 0 {
			add(toggle)
		}
	}
	// 2. Spare arrivals: the lowest-id inactive slots activate next.
	for id := range s.slots {
		if len(cands) >= c.SpeculateNext {
			break
		}
		if !s.slots[id].active {
			add(map[int]bool{id: true})
		}
	}
	// 3. Draining departure: the newest (highest-id) active VM leaves.
	for id := len(s.slots) - 1; id > 0; id-- {
		if s.slots[id].active {
			add(map[int]bool{id: false})
			break
		}
	}
	return cands
}

// hypotheticalSpecsLocked is activeSpecsLocked for a population with
// per-slot activation overrides applied, without mutating the system.
func (s *System) hypotheticalSpecsLocked(toggle map[int]bool) (specs []planner.VCPUSpec, specSlot []int) {
	for id, sl := range s.slots {
		active := sl.active
		if v, ok := toggle[id]; ok {
			active = v
		}
		if !active {
			continue
		}
		specs = append(specs, planner.VCPUSpec{
			Name:        sl.cfg.Name,
			Util:        sl.cfg.Util,
			LatencyGoal: sl.cfg.LatencyGoal,
			Capped:      sl.cfg.Capped,
		})
		specSlot = append(specSlot, id)
	}
	return specs, specSlot
}
