package core

import (
	"fmt"
	"testing"

	"tableau/internal/dispatch"
	"tableau/internal/planner"
	"tableau/internal/sim"
	"tableau/internal/table"
	"tableau/internal/vmm"
)

func quarterVM(name string) VMConfig {
	return VMConfig{Name: name, Util: Util{Num: 1, Den: 4}, LatencyGoal: 20_000_000, Capped: true}
}

func TestPlanRemapsToSlotIDs(t *testing.T) {
	s := NewSystem(2, planner.Options{}, dispatch.Options{})
	a, _ := s.AddVM(quarterVM("a"))
	b, _ := s.AddVM(quarterVM("b"))
	c, _ := s.AddVM(quarterVM("c"))
	if err := s.SetActive(b, false); err != nil {
		t.Fatal(err)
	}
	tbl, res, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.VCPUs) != 3 {
		t.Fatalf("table has %d vCPUs, want one per slot", len(tbl.VCPUs))
	}
	if len(tbl.VCPUSlots(b)) != 0 {
		t.Error("inactive slot received reservations")
	}
	if len(tbl.VCPUSlots(a)) == 0 || len(tbl.VCPUSlots(c)) == 0 {
		t.Error("active slots missing reservations")
	}
	if !tbl.VCPUs[b].Capped {
		t.Error("inactive slot must be fenced from second-level scheduling")
	}
	// Guarantees must be expressed in slot ids.
	for _, g := range res.Guarantees {
		if g.VCPU == b {
			t.Error("guarantee issued for inactive slot")
		}
		if g.VCPU != a && g.VCPU != c {
			t.Errorf("guarantee for unknown slot %d", g.VCPU)
		}
	}
	if err := tbl.Check(res.Guarantees); err != nil {
		t.Errorf("remapped table fails remapped guarantees: %v", err)
	}
}

func TestPlanFailsWithNoActiveVMs(t *testing.T) {
	s := NewSystem(1, planner.Options{}, dispatch.Options{})
	id, _ := s.AddVM(quarterVM("a"))
	s.SetActive(id, false)
	if _, _, err := s.Plan(); err == nil {
		t.Error("planning an empty system should fail")
	}
}

func TestAddVMValidates(t *testing.T) {
	s := NewSystem(1, planner.Options{}, dispatch.Options{})
	if _, err := s.AddVM(VMConfig{Name: "bad", Util: Util{Num: 0, Den: 1}, LatencyGoal: 1e7}); err == nil {
		t.Error("invalid utilization accepted")
	}
	if _, err := s.AddVM(VMConfig{Name: "bad2", Util: Util{Num: 1, Den: 4}, LatencyGoal: 0}); err == nil {
		t.Error("invalid latency accepted")
	}
}

func TestReconfigure(t *testing.T) {
	s := NewSystem(1, planner.Options{}, dispatch.Options{})
	id, _ := s.AddVM(quarterVM("a"))
	if err := s.Reconfigure(id, Util{Num: 1, Den: 2}, 30_000_000); err != nil {
		t.Fatal(err)
	}
	if got := s.Config(id); got.Util != (Util{Num: 1, Den: 2}) || got.LatencyGoal != 30_000_000 {
		t.Errorf("config = %+v", got)
	}
	if err := s.Reconfigure(id, Util{Num: 5, Den: 4}, 1); err == nil {
		t.Error("invalid reconfiguration accepted")
	}
	if err := s.Reconfigure(99, Util{Num: 1, Den: 2}, 1e7); err == nil {
		t.Error("unknown slot accepted")
	}
	if err := s.SetActive(99, false); err == nil {
		t.Error("unknown slot accepted by SetActive")
	}
}

func TestGenerationIncrements(t *testing.T) {
	s := NewSystem(1, planner.Options{}, dispatch.Options{})
	s.AddVM(quarterVM("a"))
	t1, _, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if t2.Generation != t1.Generation+1 {
		t.Errorf("generations: %d then %d", t1.Generation, t2.Generation)
	}
}

func TestEndToEndLifecycle(t *testing.T) {
	// Build a 2-core system with 4 VM slots; run it, then "tear down"
	// one VM and push a regenerated table into the live dispatcher.
	s := NewSystem(2, planner.Options{}, dispatch.Options{})
	var ids []int
	for _, n := range []string{"a", "b", "c", "d"} {
		id, err := s.AddVM(VMConfig{Name: n, Util: Util{Num: 1, Den: 4}, LatencyGoal: 20_000_000, Capped: true})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	d, _, err := s.BuildDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	m := vmm.New(sim.New(1), 2, d, vmm.NoOverheads())
	var vs []*vmm.VCPU
	for _, n := range []string{"a", "b", "c", "d"} {
		vs = append(vs, m.AddVCPU(n, vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
			return vmm.Compute(1_000_000)
		}), 256, true))
	}
	m.Start()
	m.Run(100_000_000)
	for i, v := range vs {
		if v.RunTime == 0 {
			t.Errorf("vm %d never ran", i)
		}
	}
	before := vs[3].RunTime

	// Tear down VM d; its reservations disappear after the switch.
	if err := s.SetActive(ids[3], false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(d); err != nil {
		t.Fatal(err)
	}
	m.Run(400_000_000)
	// d is capped with no reservations in the new table: it stopped
	// accumulating runtime shortly after the switch.
	grown := vs[3].RunTime - before
	if grown > 30_000_000 {
		t.Errorf("torn-down VM kept running: +%d ns after teardown", grown)
	}
	for i := 0; i < 3; i++ {
		if vs[i].RunTime < 90_000_000 {
			t.Errorf("vm %d starved after reconfiguration: %d", i, vs[i].RunTime)
		}
	}
}

func TestPushToIncompatibleDispatcherFails(t *testing.T) {
	s := NewSystem(1, planner.Options{}, dispatch.Options{})
	s.AddVM(quarterVM("a"))
	tbl, _, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	d := dispatch.New(tbl, dispatch.Options{})
	m := vmm.New(sim.New(1), 1, d, vmm.NoOverheads())
	m.AddVCPU("a", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		return vmm.Compute(1000)
	}), 256, true)
	m.Start()
	// A table with a different vCPU universe must be rejected.
	bad := &table.Table{Len: tbl.Len, VCPUs: make([]table.VCPUInfo, 5)}
	if err := d.PushTable(bad); err == nil {
		t.Error("incompatible table accepted")
	}
}

func TestRotateSplitsTakesTurns(t *testing.T) {
	// Four equal 0.6 VMs on 3 cores: someone must be split each plan.
	// With rotation enabled, successive replans split different VMs.
	s := NewSystem(3, planner.Options{}, dispatch.Options{})
	s.RotateSplits = true
	for i := 0; i < 4; i++ {
		if _, err := s.AddVM(VMConfig{
			Name:        fmt.Sprintf("v%d", i),
			Util:        Util{Num: 3, Den: 5},
			LatencyGoal: 50_000_000,
		}); err != nil {
			t.Fatal(err)
		}
	}
	victims := make(map[int]bool)
	for round := 0; round < 4; round++ {
		_, res, err := s.Plan()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Splits) == 0 {
			t.Fatalf("round %d: no split", round)
		}
		for _, sp := range res.Splits {
			victims[sp.VCPU] = true
		}
	}
	if len(victims) < 2 {
		t.Errorf("rotation did not move the split burden: victims = %v", victims)
	}
}

func TestMultiVM(t *testing.T) {
	s := NewSystem(2, planner.Options{}, dispatch.Options{})
	ids, err := s.AddMultiVM("db", 3, Util{Num: 1, Den: 4}, 20_000_000, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	if got := s.Config(ids[1]).Name; got != "db.1" {
		t.Errorf("name = %q", got)
	}
	if _, err := s.AddMultiVM("bad", 0, Util{Num: 1, Den: 4}, 1e7, false); err == nil {
		t.Error("zero-vCPU VM accepted")
	}
	tbl, res, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Check(res.Guarantees); err != nil {
		t.Error(err)
	}
}

// TestCachedPlanMatchesDirectAndKeepsCacheImmutable exercises the
// shared planner cache path: two systems with different slot layouts
// share one cache, so the second system's Plan is a cache hit whose
// result must be remapped into *its* slot universe — which only works
// if the hit was cloned and the cached original left untouched.
func TestCachedPlanMatchesDirectAndKeepsCacheImmutable(t *testing.T) {
	cache := planner.NewCache(8)

	direct := NewSystem(2, planner.Options{}, dispatch.Options{})
	direct.AddVM(quarterVM("a"))
	direct.AddVM(quarterVM("b"))
	dtbl, dres, err := direct.Plan()
	if err != nil {
		t.Fatal(err)
	}

	// Same specs planned through the cache (miss, then hit).
	for trial := 0; trial < 3; trial++ {
		s := NewSystem(2, planner.Options{}, dispatch.Options{})
		s.Cache = cache
		s.AddVM(quarterVM("a"))
		s.AddVM(quarterVM("b"))
		tbl, res, err := s.Plan()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(tbl.VCPUs) != len(dtbl.VCPUs) || len(res.Guarantees) != len(dres.Guarantees) {
			t.Fatalf("trial %d: cached plan shape differs from direct plan", trial)
		}
		for i, g := range res.Guarantees {
			if g != dres.Guarantees[i] {
				t.Errorf("trial %d: guarantee %d = %+v, want %+v", trial, i, g, dres.Guarantees[i])
			}
		}
		if err := tbl.Check(res.Guarantees); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
	if hits, misses := cache.Stats(); hits != 2 || misses != 1 {
		t.Errorf("cache stats = %d hits, %d misses; want 2, 1", hits, misses)
	}

	// A system with extra inactive slots remaps guarantees to different
	// slot ids; a second hit afterwards must still see the original ids.
	shifted := NewSystem(2, planner.Options{}, dispatch.Options{})
	shifted.Cache = cache
	pad, _ := shifted.AddVM(quarterVM("pad"))
	shifted.AddVM(quarterVM("a"))
	shifted.AddVM(quarterVM("b"))
	shifted.SetActive(pad, false)
	_, sres, err := shifted.Plan()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range sres.Guarantees {
		if g.VCPU == pad {
			t.Error("guarantee remapped onto inactive pad slot")
		}
	}

	again := NewSystem(2, planner.Options{}, dispatch.Options{})
	again.Cache = cache
	again.AddVM(quarterVM("a"))
	again.AddVM(quarterVM("b"))
	_, ares, err := again.Plan()
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range ares.Guarantees {
		if g != dres.Guarantees[i] {
			t.Errorf("cached entry was mutated by an earlier remap: guarantee %d = %+v, want %+v", i, g, dres.Guarantees[i])
		}
	}
}
