package core

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestCloseWaitsForInFlightSpeculation: Close must not return while
// background speculation work is still running — it waits on the
// speculation WaitGroup after setting the closed flag.
func TestCloseWaitsForInFlightSpeculation(t *testing.T) {
	_, _, ctrl, _, _ := churnRig(t, 2, 2, 2)
	ctrl.SpeculateNext = 2
	ctrl.SpeculateAsync = true

	// Park a stand-in for an in-flight speculation goroutine on the
	// same WaitGroup the real async path uses.
	release := make(chan struct{})
	ctrl.specWG.Add(1)
	go func() {
		defer ctrl.specWG.Done()
		<-release
	}()

	closed := make(chan error, 1)
	go func() { closed <- ctrl.Close() }()
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) while speculation was still in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := ctrl.Flush(); err == nil {
		t.Error("Flush accepted after Close")
	}
	// Close is idempotent.
	if err := ctrl.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestSpeculationBailsWhenClosed: a speculation round entered on (or
// racing with) Close stops at the closed check instead of planning a
// full candidate set nobody will consume.
func TestSpeculationBailsWhenClosed(t *testing.T) {
	_, _, ctrl, ids, _ := churnRig(t, 2, 2, 4)
	ctrl.SpeculateNext = 3

	// A normal synchronous flush plans speculative candidates.
	ctrl.Submit(Op{Kind: OpActivate, Slot: ids[2]})
	if _, err := ctrl.Flush(); err != nil {
		t.Fatal(err)
	}
	planned := ctrl.SpeculationStats().Planned
	if planned == 0 {
		t.Fatal("no speculative candidates planned before Close (test needs some)")
	}

	if err := ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	// A round racing past Close bails without planning anything.
	ctrl.speculate()
	if got := ctrl.SpeculationStats().Planned; got != planned {
		t.Fatalf("speculation planned %d candidates after Close (was %d)", got, planned)
	}
}

// TestCloseLeaksNoGoroutines: repeated controller lifecycles with async
// speculation must not accumulate goroutines — the regression test for
// Close waiting out SpeculateAsync work.
func TestCloseLeaksNoGoroutines(t *testing.T) {
	count := func() int {
		runtime.GC()
		return runtime.NumGoroutine()
	}
	before := count()
	for i := 0; i < 20; i++ {
		_, _, ctrl, ids, _ := churnRig(t, 2, 2, 2)
		ctrl.SpeculateNext = 3
		ctrl.SpeculateAsync = true
		ctrl.Submit(Op{Kind: OpActivate, Slot: ids[2]})
		if _, err := ctrl.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := ctrl.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Close waited for every speculation goroutine, so the count returns
	// to baseline (give the runtime a moment to retire exited Gs).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := count(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	after := count()
	if after > before {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		spec := strings.Count(string(buf[:n]), "speculate")
		t.Fatalf("goroutines grew %d -> %d after 20 close cycles (%d in speculate)", before, after, spec)
	}
}

// TestCloseWithoutSpeculationOrJournal: Close on a plain controller is
// a cheap no-op and flushing afterwards fails cleanly.
func TestCloseWithoutSpeculationOrJournal(t *testing.T) {
	_, _, ctrl, ids, _ := churnRig(t, 2, 2, 1)
	if err := ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	ctrl.Submit(Op{Kind: OpActivate, Slot: ids[2]})
	if _, err := ctrl.Flush(); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("flush after close: %v, want a closed error", err)
	}
}
