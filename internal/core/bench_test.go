package core

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"tableau/internal/dispatch"
	"tableau/internal/planner"
	"tableau/internal/table"
)

// benchSink swallows staged tables: the replan-storm benchmark measures
// the control plane (planning + epoch install), not table adoption.
type benchSink struct{}

func (benchSink) PushTable(*table.Table) error { return nil }

// stormRig is a dense 16-core host: twelve VMs per core at 1/16
// utilization with heterogeneous latency goals (5/10/20 ms, the
// paper's tiered-SLA shape), with every slot resident so churn batches
// can toggle the tail of the population.
func stormRig(b *testing.B, fast bool, speculate int) (*System, *Controller) {
	b.Helper()
	s := NewSystem(16, planner.Options{}, dispatch.Options{})
	if fast {
		s.Cache = planner.NewCache(0)
		s.Incremental = true
	}
	goals := []int64{5_000_000, 10_000_000, 20_000_000}
	for i := 0; i < 192; i++ {
		cfg := VMConfig{Name: fmt.Sprintf("vm%d", i), Util: Util{Num: 1, Den: 16}, Capped: true}
		cfg.LatencyGoal = goals[i%len(goals)]
		if _, err := s.AddVM(cfg); err != nil {
			b.Fatal(err)
		}
	}
	_, res, err := s.Plan()
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := NewController(s, benchSink{}, res)
	if err != nil {
		b.Fatal(err)
	}
	ctrl.SpeculateNext = speculate
	// Epochs retain a full table plus its wire encoding; unbounded
	// history would grow the live heap (and the GC tail) with b.N,
	// making measured latency depend on iteration count. Bound it the
	// way a long-lived host would.
	ctrl.MaxHistory = 64
	return s, ctrl
}

func reportPercentiles(b *testing.B, lats []time.Duration) {
	b.Helper()
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50 := lats[len(lats)/2]
	p99 := lats[min(len(lats)-1, len(lats)*99/100)]
	b.ReportMetric(float64(p50.Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
}

// BenchmarkReplanStorm measures coalesced churn-batch replan latency on
// a dense 16-core host, the ROADMAP's replan-latency bottleneck. Each
// iteration is one flushed batch toggling three VMs that live on three
// different cores — the paper's "tables are regenerated on demand"
// path under a 3-of-16-core perturbation:
//
//   - scratch: the full planner runs for every batch (the baseline the
//     acceptance criterion compares against);
//   - incremental: the 13 untouched cores are pinned and their slice
//     tables reused, only the dirty remainder is re-synthesized;
//   - speculative: single-slot toggles whose next population the
//     controller pre-planned in the background, so the measured flush
//     commits a precomputed epoch in install time.
func BenchmarkReplanStorm(b *testing.B) {
	churn3 := [][]Op{
		{{Kind: OpDeactivate, Slot: 189}, {Kind: OpDeactivate, Slot: 190}, {Kind: OpDeactivate, Slot: 191}},
		{{Kind: OpActivate, Slot: 189}, {Kind: OpActivate, Slot: 190}, {Kind: OpActivate, Slot: 191}},
	}
	toggle1 := [][]Op{
		{{Kind: OpDeactivate, Slot: 191}},
		{{Kind: OpActivate, Slot: 191}},
	}
	for _, tc := range []struct {
		name      string
		fast      bool
		speculate int
		batches   [][]Op
	}{
		{"mode=scratch", false, 0, churn3},
		{"mode=incremental", true, 0, churn3},
		{"mode=speculative", true, 2, toggle1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			_, ctrl := stormRig(b, tc.fast, tc.speculate)
			ctrl.SpeculateAsync = tc.speculate > 0
			lats := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctrl.SubmitBatch(tc.batches[i%len(tc.batches)])
				start := time.Now()
				tr, err := ctrl.Flush()
				lat := time.Since(start)
				if err != nil {
					b.Fatal(err)
				}
				if tr == nil || tr.Version == 0 {
					b.Fatalf("batch %d did not commit: %+v", i, tr)
				}
				lats = append(lats, lat)
				// Background speculation drains before the next batch, as
				// it would between churn bursts; its cost is not part of
				// the measured flush latency.
				ctrl.WaitSpeculation()
			}
			b.StopTimer()
			reportPercentiles(b, lats)
		})
	}
}
