package core

import (
	"fmt"
	"sync"
	"testing"

	"tableau/internal/dispatch"
	"tableau/internal/planner"
	"tableau/internal/table"
)

// raceSink is a mutex-guarded TableSink that checks the serialized
// replan pipeline's key property: tables arrive in strictly increasing
// generation order, because each plan+push happens under the system
// lock. It never calls back into the system.
type raceSink struct {
	mu         sync.Mutex
	pushes     int
	lastGen    uint64
	violations int
}

func (r *raceSink) PushTable(tbl *table.Table) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pushes++
	if tbl.Generation <= r.lastGen {
		r.violations++
	}
	r.lastGen = tbl.Generation
	return nil
}

// TestSystemConcurrentChurnRace hammers one System (and a Controller on
// top of it) from 8 goroutines mixing AddVM, RemoveVM/SetActive,
// Reconfigure, Plan, Push, EmergencyReplan, and the Submit/Flush
// pipeline. Run under -race this is the memory-safety half of the
// churn-hardening story; the semantic half (transactionality) lives in
// controller_test.go. Slots 0–3 stay active throughout so planning
// always has a population; only core 3 ever fails so the host stays
// admissible.
func TestSystemConcurrentChurnRace(t *testing.T) {
	s := NewSystem(4, planner.Options{}, dispatch.Options{})
	for i := 0; i < 8; i++ {
		if _, err := s.AddVM(VMConfig{
			Name:        fmt.Sprintf("vm%d", i),
			Util:        Util{Num: 1, Den: 8},
			LatencyGoal: 20_000_000,
			Capped:      true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	sink := &raceSink{}
	_, res, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(s, sink, res)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, iters = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch g % 4 {
				case 0: // churn the spare slots directly
					id := 4 + (g+i)%4
					if i%2 == 0 {
						_ = s.SetActive(id, true)
					} else {
						_ = s.RemoveVM(id)
					}
				case 1: // reconfigure the resident slots; grow the population
					if i%10 == 9 {
						_, _ = s.AddVM(VMConfig{
							Name:        fmt.Sprintf("extra%d.%d", g, i),
							Util:        Util{Num: 1, Den: 8},
							LatencyGoal: 20_000_000,
							Capped:      true,
						})
						continue
					}
					goal := int64(20_000_000 + (i%3)*5_000_000)
					_ = s.Reconfigure((g+i)%4, Util{Num: 1, Den: 8}, goal)
				case 2: // replan-and-push, with occasional fail-stop recovery
					if i%8 == 7 {
						_, _ = s.EmergencyReplan(sink, 3)
					} else {
						_, _ = s.Push(sink)
					}
				case 3: // the coalescing pipeline
					ctrl.Submit(Op{Kind: OpActivate, Slot: 4 + (g+i)%4})
					if i%2 == 1 {
						_, _ = ctrl.Flush()
					}
				}
			}
		}(g)
	}
	wg.Wait()

	sink.mu.Lock()
	pushes, violations := sink.pushes, sink.violations
	sink.mu.Unlock()
	if pushes == 0 {
		t.Error("no table was ever pushed")
	}
	if violations > 0 {
		t.Errorf("%d pushes arrived out of generation order", violations)
	}
	// The system must still be consistent enough to plan.
	if _, _, err := s.Plan(); err != nil {
		t.Fatalf("final plan: %v", err)
	}
	if _, err := ctrl.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
}
