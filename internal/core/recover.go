package core

import (
	"fmt"

	"tableau/internal/dispatch"
	"tableau/internal/journal"
	"tableau/internal/planner"
	"tableau/internal/table"
)

// This file is the crash-recovery half of the durable epoch journal:
// Recover replays a journal.Store image and rebuilds the control plane
// — population, epoch ring, and a dispatcher enacting the last
// committed table — exactly as the pre-crash controller left them. A
// torn or corrupt tail (a crashed append, a bit flip) is detected by
// the per-record CRC, cut back to the last intact record, and the host
// resumes from the last good epoch; when requested, an admission-gated
// emergency replan immediately supersedes it so a population change
// lost with the tail is re-derived rather than silently forgotten.

// RecoverOptions configures a Recover. The planner and dispatch
// configuration are not journaled (they are code/config, not state), so
// the caller supplies the same options the pre-crash host ran with.
type RecoverOptions struct {
	// Planner is the planner configuration of the pre-crash system.
	Planner planner.Options
	// Dispatch is the dispatcher configuration.
	Dispatch dispatch.Options
	// MaxHistory bounds the rebuilt epoch ring exactly like
	// Controller.MaxHistory (0 retains every replayed epoch).
	MaxHistory int
	// Incremental re-arms System.Incremental on the rebuilt system. The
	// previous plan itself is not journaled (it lives in the planner
	// universe), so the first post-recovery plan is a full one; later
	// plans run incrementally again.
	Incremental bool
	// ReplanTorn, when the journal tail was torn or corrupt, replans the
	// recovered population immediately and commits the result as a fresh
	// epoch — the batch lost with the tail may have been reacting to
	// something (the planner's admission check still gates it, exactly
	// like any emergency replan). A replan failure is reported, not
	// fatal: the controller stays on the last good epoch.
	ReplanTorn bool
	// Sink, when non-nil, is installed as the rebuilt controller's table
	// sink instead of a fresh dispatcher (the fleet's hosts own their
	// sinks). Recover then returns a nil Dispatcher.
	Sink TableSink
}

// RecoveryReport describes what Recover found and did.
type RecoveryReport struct {
	// Replayed is the number of intact journal records replayed.
	Replayed int
	// TruncatedBytes is the torn/corrupt tail length cut from the store
	// (0 for a clean journal).
	TruncatedBytes int
	// TailErr is why the tail was cut (nil for a clean journal).
	TailErr error
	// RecoveredVersion and RecoveredBytes identify the epoch the
	// controller resumed on: the last intact record's version and table
	// encoding (the recovery-equivalence oracle compares these
	// bit-for-bit against the pre-crash ground truth).
	RecoveredVersion uint64
	RecoveredBytes   []byte
	// Replanned reports that ReplanTorn committed a fresh epoch on top
	// of the recovered one; ReplanErr is why it could not (admission
	// failure on a degraded topology, or an empty population).
	Replanned bool
	ReplanErr error
}

// Recover rebuilds a Controller and Dispatcher from a journal store.
// The store's image is replayed record by record: the population
// snapshot of the last intact record rebuilds the System (every slot
// re-registered in order — slot ids are vCPU ids, fixed at machine
// start — activation and failed-core marks restored), the retained
// records rebuild the epoch history, and the dispatcher starts out
// enacting the recovered epoch's table. A torn or corrupt tail is
// truncated from the store before the journal is re-attached, so new
// epochs append after the last intact record.
//
// The returned controller owns the store (via its journal writer):
// every post-recovery Flush appends to the same journal, and a second
// crash replays both halves.
func Recover(store journal.Store, opts RecoverOptions) (*Controller, *dispatch.Dispatcher, *RecoveryReport, error) {
	image, err := store.Load()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: loading journal: %w", err)
	}
	rep, err := journal.DecodeAll(image)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: replaying journal: %w", err)
	}
	if len(rep.Records) == 0 {
		return nil, nil, nil, fmt.Errorf("core: journal holds no committed epoch (tail: %v)", rep.TailErr)
	}
	report := &RecoveryReport{
		Replayed:       len(rep.Records),
		TruncatedBytes: rep.Truncated,
		TailErr:        rep.TailErr,
	}
	if rep.Truncated > 0 {
		// Cut the dead tail before anything appends: a new record landing
		// after torn bytes would be unreachable on the next replay.
		if err := store.Truncate(int64(rep.Good)); err != nil {
			return nil, nil, nil, fmt.Errorf("core: truncating torn journal tail: %w", err)
		}
	}

	// Fold the replayed records into the epoch sequence the live
	// controller held (rollback re-commits pop their superseded tops).
	records := journal.FoldEpochs(rep.Records)
	var maxVersion uint64
	for _, rec := range rep.Records {
		if rec.Version > maxVersion {
			maxVersion = rec.Version
		}
	}
	last := records[len(records)-1]

	// Rebuild the population from the last record's snapshot.
	lastTbl, err := last.Table()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: decoding recovered table (version %d): %w", last.Version, err)
	}
	sys := NewSystem(len(lastTbl.Cores), opts.Planner, opts.Dispatch)
	sys.Incremental = opts.Incremental
	for i, sc := range last.Slots {
		class := LS
		if sc.BestEffort {
			class = BE
		}
		id, err := sys.AddVM(VMConfig{
			Name:        sc.Name,
			Util:        Util{Num: sc.UtilNum, Den: sc.UtilDen},
			LatencyGoal: sc.LatencyGoal,
			Capped:      sc.Capped,
			Class:       class,
		})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: re-registering slot %d (%q): %w", i, sc.Name, err)
		}
		if !sc.Active {
			_ = sys.SetActive(id, false)
		}
	}
	for _, c := range last.FailedCores {
		if err := sys.MarkCoreFailed(c); err != nil {
			return nil, nil, nil, fmt.Errorf("core: re-marking failed core %d: %w", c, err)
		}
	}
	// Resume version numbering past everything the journal ever carried,
	// including epochs a rollback later withdrew: versions stay
	// monotonic across the crash.
	sys.mu.Lock()
	sys.generation = maxVersion
	sys.mu.Unlock()

	// Rebuild the epoch ring, bounded like the live controller's.
	keep := records
	if max := opts.MaxHistory; max > 0 {
		if max < 2 {
			max = 2
		}
		if len(keep) > max {
			keep = keep[len(keep)-max:]
		}
	}
	history := make([]Epoch, 0, len(keep))
	for i := range keep {
		rec := &keep[i]
		var tbl *table.Table
		if rec == &keep[len(keep)-1] {
			tbl = lastTbl
		} else {
			tbl, err = rec.Table()
			if err != nil {
				return nil, nil, nil, fmt.Errorf("core: decoding replayed epoch %d: %w", rec.Version, err)
			}
		}
		history = append(history, Epoch{
			Version:    rec.Version,
			Table:      tbl,
			Guarantees: append([]table.Guarantee(nil), rec.Guarantees...),
			Bytes:      append([]byte(nil), rec.TableBytes...),
		})
	}

	report.RecoveredVersion = history[len(history)-1].Version
	report.RecoveredBytes = append([]byte(nil), history[len(history)-1].Bytes...)

	w := journal.NewWriter(store)
	if opts.ReplanTorn && report.TailErr != nil {
		// The batch lost with the torn tail may have been reacting to
		// something: replan the recovered population immediately (the
		// planner's admission check gates it) and commit the result
		// through the journal like any epoch. No machine is attached yet,
		// so there is no staged-adoption dance — the dispatcher below
		// simply starts out on the replanned table. A replan failure is
		// reported, not fatal: the last good epoch stands.
		ep, err := replanRecovered(sys, w)
		if err != nil {
			report.ReplanErr = err
		} else {
			report.Replanned = true
			history = append(history, ep)
			if max := opts.MaxHistory; max > 0 && len(history) > max && len(history) > 2 {
				history = history[1:]
			}
		}
	}

	cur := history[len(history)-1]
	var d *dispatch.Dispatcher
	sink := opts.Sink
	if sink == nil {
		d = dispatch.New(cur.Table, opts.Dispatch)
		sink = d
	}
	c := &Controller{
		sys:        sys,
		sink:       sink,
		epoch:      cur,
		history:    history,
		MaxHistory: opts.MaxHistory,
		journal:    w,
	}
	return c, d, report, nil
}

// replanRecovered plans one fresh epoch for the recovered population
// and journals it — the commit point, exactly as in Flush.
func replanRecovered(sys *System, w *journal.Writer) (Epoch, error) {
	tbl, res, err := sys.Plan()
	if err != nil {
		return Epoch{}, err
	}
	ep, err := epochOf(tbl, res.Guarantees)
	if err != nil {
		return Epoch{}, err
	}
	sys.mu.Lock()
	rec := sys.journalRecordLocked(ep)
	sys.mu.Unlock()
	if err := w.Append(rec); err != nil {
		return Epoch{}, err
	}
	return ep, nil
}
