package core

import (
	"bytes"
	"errors"
	"testing"

	"tableau/internal/dispatch"
	"tableau/internal/faults"
	"tableau/internal/journal"
	"tableau/internal/planner"
)

// journalRig is churnRig plus an attached in-memory journal (optionally
// behind a crash injector).
func journalRig(t *testing.T, crash *faults.CrashPlan) (*System, *dispatch.Dispatcher, *Controller, []int, journal.Store, *faults.CrashStore) {
	t.Helper()
	s, d, ctrl, ids, _ := churnRig(t, 2, 2, 2)
	mem := journal.NewMemStore()
	var store journal.Store = mem
	var cs *faults.CrashStore
	if crash != nil {
		var err error
		cs, err = faults.NewCrashStore(mem, *crash)
		if err != nil {
			t.Fatal(err)
		}
		store = cs
	}
	if err := ctrl.AttachJournal(journal.NewWriter(store)); err != nil {
		t.Fatalf("AttachJournal: %v", err)
	}
	return s, d, ctrl, ids, store, cs
}

// toggleFlush commits one epoch by toggling a spare slot.
func toggleFlush(t *testing.T, c *Controller, slot int, active bool) *Transition {
	t.Helper()
	kind := OpDeactivate
	if active {
		kind = OpActivate
	}
	c.Submit(Op{Kind: kind, Slot: slot})
	tr, err := c.Flush()
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	if tr.Version == 0 {
		t.Fatalf("flush committed nothing: %+v", tr)
	}
	return tr
}

// runScript drives the deterministic op script the crash tests and
// their shadow (never-crashed) controller share: 5 single-op flushes.
// Flushes on a crashed journal fail (the "host" is dead) — the script
// keeps going so every run observes the same append sequence up to its
// crash point.
func runScript(c *Controller, ids []int) {
	script := []struct {
		slot   int
		active bool
	}{
		{2, true}, {3, true}, {2, false}, {2, true}, {3, false},
	}
	for _, st := range script {
		kind := OpDeactivate
		if st.active {
			kind = OpActivate
		}
		c.Submit(Op{Kind: kind, Slot: ids[st.slot]})
		_, _ = c.Flush()
	}
}

// TestJournalCommitAndRecoverClean: every committed epoch is journaled,
// and recovery from a cleanly shut down journal rebuilds the
// controller, population, and dispatcher bit-for-bit.
func TestJournalCommitAndRecoverClean(t *testing.T) {
	s, _, ctrl, ids, store, _ := journalRig(t, nil)
	runScript(ctrl, ids)
	liveHist := ctrl.History()
	if len(liveHist) != 6 { // initial + 5 script epochs
		t.Fatalf("live history has %d epochs, want 6", len(liveHist))
	}
	if got := ctrl.Journal().Records(); got != 6 {
		t.Fatalf("journal holds %d records, want 6 (baseline + 5 commits)", got)
	}
	if err := ctrl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c2, d2, rep, err := Recover(store, RecoverOptions{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.Replayed != 6 || rep.TruncatedBytes != 0 || rep.TailErr != nil {
		t.Fatalf("report = %+v, want 6 clean records", rep)
	}
	live := liveHist[len(liveHist)-1]
	if rep.RecoveredVersion != live.Version || !bytes.Equal(rep.RecoveredBytes, live.Bytes) {
		t.Fatalf("recovered epoch v%d differs from live v%d", rep.RecoveredVersion, live.Version)
	}
	// Full history equivalence, bit for bit.
	recHist := c2.History()
	if len(recHist) != len(liveHist) {
		t.Fatalf("recovered history has %d epochs, want %d", len(recHist), len(liveHist))
	}
	for i := range liveHist {
		if recHist[i].Version != liveHist[i].Version || !bytes.Equal(recHist[i].Bytes, liveHist[i].Bytes) {
			t.Fatalf("epoch %d: recovered v%d differs from live v%d", i, recHist[i].Version, liveHist[i].Version)
		}
		if len(recHist[i].Guarantees) != len(liveHist[i].Guarantees) {
			t.Fatalf("epoch %d: %d guarantees, want %d", i, len(recHist[i].Guarantees), len(liveHist[i].Guarantees))
		}
		for j := range liveHist[i].Guarantees {
			if recHist[i].Guarantees[j] != liveHist[i].Guarantees[j] {
				t.Fatalf("epoch %d guarantee %d differs", i, j)
			}
		}
	}
	// Population: same slots, same configs, same activation.
	s2 := c2.sys
	if s2.NumSlots() != s.NumSlots() || s2.Cores() != s.Cores() {
		t.Fatalf("recovered %d slots / %d cores, want %d / %d", s2.NumSlots(), s2.Cores(), s.NumSlots(), s.Cores())
	}
	for i := 0; i < s.NumSlots(); i++ {
		if s2.Config(i) != s.Config(i) || s2.Active(i) != s.Active(i) {
			t.Fatalf("slot %d: recovered (%+v, %v), want (%+v, %v)",
				i, s2.Config(i), s2.Active(i), s.Config(i), s.Active(i))
		}
	}
	// The recovered dispatcher enacts the recovered epoch.
	if !bytes.Equal(activeBytes(t, d2), live.Bytes) {
		t.Fatal("recovered dispatcher's active table differs from the recovered epoch")
	}

	// The recovered controller keeps journaling into the same store:
	// a new flush appends, and a second recovery replays both halves.
	attachMachine(s2, d2)
	tr := toggleFlush(t, c2, ids[2], !s2.Active(ids[2]))
	if tr.Version != live.Version+1 {
		t.Fatalf("post-recovery epoch v%d, want v%d (versions stay monotonic)", tr.Version, live.Version+1)
	}
	c3, _, rep3, err := Recover(store, RecoverOptions{})
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	if rep3.Replayed != 7 || c3.Epoch().Version != tr.Version {
		t.Fatalf("second recovery replayed %d records to v%d, want 7 to v%d",
			rep3.Replayed, c3.Epoch().Version, tr.Version)
	}
}

// TestRecoverCrashKinds drives the same script on a crashing journal
// and a never-crashed shadow, then checks the recovery-equivalence
// oracle: the recovered epoch is bit-identical to the epoch the shadow
// committed at the corresponding append.
func TestRecoverCrashKinds(t *testing.T) {
	// Shadow ground truth: same rig, same script, no crash.
	_, _, shadow, sids, _, _ := journalRig(t, nil)
	runScript(shadow, sids)
	truth := shadow.History()

	const atAppend = 3 // baseline is append 1; appends 2.. are script commits
	for _, kind := range faults.CrashKinds {
		t.Run(kind, func(t *testing.T) {
			_, _, ctrl, ids, _, cs := journalRig(t, &faults.CrashPlan{AtAppend: atAppend, Kind: kind, Seed: 99})
			runScript(ctrl, ids)
			if !cs.Crashed() {
				t.Fatal("crash never fired")
			}
			// A flush that cannot journal must roll back whole.
			if st := ctrl.ControllerStats(); st.Rollbacks == 0 {
				t.Fatal("crashed appends did not roll their flushes back")
			}

			img, err := cs.Surviving()
			if err != nil {
				t.Fatal(err)
			}
			c2, d2, rep, err := Recover(journal.NewMemStoreFrom(img), RecoverOptions{})
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			// Record k carries version k; post-append makes the crashing
			// record durable, every other kind loses it.
			wantVersion := uint64(atAppend - 1)
			if kind == faults.CrashPostAppend {
				wantVersion = atAppend
			}
			if rep.RecoveredVersion != wantVersion {
				t.Fatalf("recovered v%d, want v%d", rep.RecoveredVersion, wantVersion)
			}
			want := truth[wantVersion-1]
			if want.Version != wantVersion {
				t.Fatalf("shadow history misaligned: %d at index %d", want.Version, wantVersion-1)
			}
			if !bytes.Equal(rep.RecoveredBytes, want.Bytes) {
				t.Fatal("recovered epoch is not bit-identical to the shadow's")
			}
			if !bytes.Equal(activeBytes(t, d2), want.Bytes) {
				t.Fatal("recovered dispatcher is not on the recovered epoch")
			}
			if kind == faults.CrashTorn || kind == faults.CrashBitFlip {
				if rep.TailErr == nil || rep.TruncatedBytes == 0 {
					t.Fatalf("damaged tail not reported: %+v", rep)
				}
			} else if rep.TailErr != nil {
				t.Fatalf("clean-cut crash reported tail damage: %v", rep.TailErr)
			}
			// Life goes on: the recovered controller commits past
			// everything the journal ever saw.
			attachMachine(c2.sys, d2)
			tr := toggleFlush(t, c2, 2, !c2.sys.Active(2))
			if tr.Version <= rep.RecoveredVersion {
				t.Fatalf("post-recovery version %d did not advance", tr.Version)
			}
		})
	}
}

// TestRecoverTornTailReplans: with ReplanTorn set, a truncated tail is
// followed by an admission-gated emergency replan that commits a fresh
// epoch — and the replanned epoch is itself journaled, so the next
// replay finds it.
func TestRecoverTornTailReplans(t *testing.T) {
	_, _, ctrl, ids, _, cs := journalRig(t, &faults.CrashPlan{AtAppend: 4, Kind: faults.CrashTorn, Seed: 7})
	runScript(ctrl, ids)
	img, err := cs.Surviving()
	if err != nil {
		t.Fatal(err)
	}
	store := journal.NewMemStoreFrom(img)
	c2, _, rep, err := Recover(store, RecoverOptions{ReplanTorn: true})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.TailErr == nil {
		t.Fatal("torn tail not detected")
	}
	if !rep.Replanned || rep.ReplanErr != nil {
		t.Fatalf("replan report = %+v", rep)
	}
	if got, want := c2.Epoch().Version, rep.RecoveredVersion+1; got != want {
		t.Fatalf("replanned epoch v%d, want v%d", got, want)
	}
	// The replanned epoch went through the journal like any commit.
	c3, _, rep3, err := Recover(store, RecoverOptions{})
	if err != nil {
		t.Fatalf("re-recover: %v", err)
	}
	if rep3.TailErr != nil {
		t.Fatalf("journal still damaged after truncation: %v", rep3.TailErr)
	}
	if c3.Epoch().Version != c2.Epoch().Version {
		t.Fatalf("replay ends on v%d, want the replanned v%d", c3.Epoch().Version, c2.Epoch().Version)
	}
	if !bytes.Equal(c3.Epoch().Bytes, c2.Epoch().Bytes) {
		t.Fatal("replayed replanned epoch differs bit-wise")
	}
}

// TestJournalAppendFailureRollsBackFlush: the journal is the commit
// point — a flush whose record cannot be appended withdraws the staged
// table and rolls the population back, exactly like a failed install.
func TestJournalAppendFailureRollsBackFlush(t *testing.T) {
	s, d, ctrl, ids, _, _ := journalRig(t, &faults.CrashPlan{AtAppend: 2, Kind: faults.CrashPreAppend, Seed: 1})
	before := append([]byte(nil), ctrl.Epoch().Bytes...)
	v1 := ctrl.Epoch().Version

	ctrl.Submit(Op{Kind: OpActivate, Slot: ids[2]})
	tr, err := ctrl.Flush()
	if err == nil || !errors.Is(err, faults.ErrCrashed) {
		t.Fatalf("flush err = %v, want the journal crash", err)
	}
	if !tr.RolledBack {
		t.Fatalf("transition = %+v, want rollback", tr)
	}
	if s.Active(ids[2]) {
		t.Error("rolled-back arrival left the slot active")
	}
	if d.Staged() != nil {
		t.Error("unjournalable epoch left its table staged")
	}
	if !bytes.Equal(activeBytes(t, d), before) || ctrl.Epoch().Version != v1 {
		t.Error("dispatcher or epoch moved although the commit never became durable")
	}
}

// TestRecoverAfterEmergencyRollbackRecommit: an emergency rollback that
// withdraws a committed-but-unadopted epoch re-commits its predecessor
// to the journal, so recovery lands on the reverted-to epoch — and
// version numbering still resumes past the withdrawn record.
func TestRecoverAfterEmergencyRollbackRecommit(t *testing.T) {
	_, d, ctrl, ids, store, _ := journalRig(t, nil)
	v1 := ctrl.Epoch().Version
	tr := toggleFlush(t, ctrl, ids[2], true) // v2, staged but never adopted
	v2 := tr.Version

	ctrl.PlanVia = func([]planner.VCPUSpec, planner.Options) (*planner.Result, error) {
		return nil, errors.New("planner service down")
	}
	ctrl.Submit(Op{Kind: OpFailCore, Core: 1})
	if _, err := ctrl.Flush(); err == nil {
		t.Fatal("emergency flush with a dead planner should fail")
	}
	if got := ctrl.Epoch().Version; got != v1 {
		t.Fatalf("epoch v%d, want reverted to v%d", got, v1)
	}
	if d.Staged() != nil {
		t.Fatal("withdrawn table still staged")
	}

	c2, _, rep, err := Recover(store, RecoverOptions{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.Replayed != 3 { // baseline v1, v2, re-committed v1
		t.Fatalf("replayed %d records, want 3", rep.Replayed)
	}
	if rep.RecoveredVersion != v1 {
		t.Fatalf("recovered v%d, want the reverted-to v%d", rep.RecoveredVersion, v1)
	}
	if h := c2.History(); len(h) != 1 || h[0].Version != v1 {
		t.Fatalf("recovered history folds to %d epochs (top v%d), want just v%d", len(h), h[len(h)-1].Version, v1)
	}
	// Versions resume past the withdrawn v2, never reusing it.
	attachMachine(c2.sys, c2.sink.(*dispatch.Dispatcher))
	tr2 := toggleFlush(t, c2, ids[2], true)
	if tr2.Version != v2+1 {
		t.Fatalf("post-recovery epoch v%d, want v%d (past the withdrawn v%d)", tr2.Version, v2+1, v2)
	}
}

// TestRecoverRejectsEmptyOrForeignJournals: nothing to resume from is
// an error, not a silently empty controller.
func TestRecoverRejectsEmptyOrForeignJournals(t *testing.T) {
	if _, _, _, err := Recover(journal.NewMemStore(), RecoverOptions{}); err == nil {
		t.Fatal("empty journal accepted")
	}
	if _, _, _, err := Recover(journal.NewMemStoreFrom([]byte("not a journal at all")), RecoverOptions{}); err == nil {
		t.Fatal("foreign image accepted")
	}
}

// TestAttachJournalRequiresEpoch: attaching before the initial plan has
// nothing to baseline and is refused.
func TestAttachJournalRequiresEpoch(t *testing.T) {
	s := NewSystem(2, planner.Options{}, dispatch.Options{})
	if _, err := s.AddVM(eighthVM("vm0")); err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(s, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.AttachJournal(journal.NewWriter(journal.NewMemStore())); err == nil {
		t.Fatal("journal attached to an epochless controller")
	}
}

// TestEmergencyRollbackAfterMaxHistoryTrim (the MaxHistory floor case):
// with the epoch ring trimmed to its minimum of two entries, an
// emergency rollback that withdraws the newest epoch must still reach
// its predecessor and leave the dispatcher state bit-identical to the
// last adopted epoch.
func TestEmergencyRollbackAfterMaxHistoryTrim(t *testing.T) {
	_, d, ctrl, ids, m := churnRig(t, 2, 2, 2)
	ctrl.MaxHistory = 1 // clamped to the floor of 2

	// Commit v2 and v3 and let the machine adopt v3: the ring now holds
	// [v2, v3] and older epochs are trimmed away.
	toggleFlush(t, ctrl, ids[2], true)
	tr3 := toggleFlush(t, ctrl, ids[3], true)
	m.Run(50_000_000)
	if got := d.ActiveTable().Generation; got != tr3.Version {
		t.Fatalf("active generation %d, want adopted v%d", got, tr3.Version)
	}
	adopted := append([]byte(nil), ctrl.Epoch().Bytes...)

	// Commit v4 on top, staged but never adopted (the machine does not
	// run again), then fail its successor's planning in an emergency.
	tr4 := toggleFlush(t, ctrl, ids[2], false)
	if h := ctrl.History(); len(h) != 2 || h[0].Version != tr3.Version || h[1].Version != tr4.Version {
		t.Fatalf("ring = %d epochs ending v%d, want [v%d v%d]",
			len(h), h[len(h)-1].Version, tr3.Version, tr4.Version)
	}
	ctrl.PlanVia = func([]planner.VCPUSpec, planner.Options) (*planner.Result, error) {
		return nil, errors.New("planner service down")
	}
	ctrl.Submit(Op{Kind: OpFailCore, Core: 1})
	if _, err := ctrl.Flush(); err == nil {
		t.Fatal("emergency flush with a dead planner should fail")
	}

	// The trimmed ring still held v4's predecessor: the rollback reverts
	// to v3 and the dispatcher is bit-identical to the adopted epoch.
	if got := ctrl.Epoch().Version; got != tr3.Version {
		t.Fatalf("epoch v%d, want reverted to v%d", got, tr3.Version)
	}
	if d.Staged() != nil {
		t.Error("withdrawn v4 still staged")
	}
	if !bytes.Equal(activeBytes(t, d), adopted) {
		t.Error("dispatcher state differs from the adopted epoch after rollback")
	}
	if !bytes.Equal(ctrl.Epoch().Bytes, adopted) {
		t.Error("reverted epoch differs from the adopted epoch")
	}
	if h := ctrl.History(); len(h) != 1 || h[0].Version != tr3.Version {
		t.Fatalf("history = %d epochs, want just v%d", len(h), tr3.Version)
	}

	// And the controller still works: planning recovers, the emergency
	// commits, and the ring refills to its bound.
	ctrl.PlanVia = nil
	ctrl.Submit(Op{Kind: OpFailCore, Core: 1})
	tr, err := ctrl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Emergency || tr.Version <= tr4.Version {
		t.Fatalf("recovery transition = %+v", tr)
	}
	if h := ctrl.History(); len(h) != 2 || h[1].Version != tr.Version {
		t.Fatalf("ring did not refill: %d epochs", len(h))
	}
}
