package core_test

import (
	"fmt"

	"tableau/internal/core"
	"tableau/internal/dispatch"
	"tableau/internal/planner"
)

// ExampleSystem walks the full VM lifecycle: create, plan, tear down,
// replan — the operations that trigger Tableau's planner (paper Sec. 3).
func ExampleSystem() {
	sys := core.NewSystem(2, planner.Options{}, dispatch.Options{})
	a, _ := sys.AddVM(core.VMConfig{Name: "a", Util: core.Util{Num: 1, Den: 2}, LatencyGoal: 10e6, Capped: true})
	b, _ := sys.AddVM(core.VMConfig{Name: "b", Util: core.Util{Num: 1, Den: 2}, LatencyGoal: 10e6, Capped: true})
	_ = a

	tbl, res, err := sys.Plan()
	if err != nil {
		panic(err)
	}
	fmt.Println("generation:", tbl.Generation, "stage:", res.Stage)
	fmt.Println("b reserved ns/cycle:", tbl.ServiceOf(b))

	// Tear down b and upgrade a to a dedicated core.
	_ = sys.SetActive(b, false)
	_ = sys.Reconfigure(a, core.Util{Num: 1, Den: 1}, 10e6)
	tbl2, _, err := sys.Plan()
	if err != nil {
		panic(err)
	}
	fmt.Println("generation:", tbl2.Generation)
	fmt.Println("b reserved ns/cycle:", tbl2.ServiceOf(b))
	fmt.Println("a owns a core:", tbl2.ServiceOf(a) == tbl2.Len)
	// Output:
	// generation: 1 stage: partitioned
	// b reserved ns/cycle: 4668300
	// generation: 2
	// b reserved ns/cycle: 0
	// a owns a core: true
}
