package core

import (
	"testing"

	"tableau/internal/dispatch"
	"tableau/internal/planner"
)

// TestPlanTranslatesAffinityAfterCoreFailure: affinity is configured in
// physical core ids, but after a fail-stop the planner sees the logical
// survivor universe. The system must renumber the sets, and the
// resulting placements must come back in physical ids.
func TestPlanTranslatesAffinityAfterCoreFailure(t *testing.T) {
	s := NewSystem(2, planner.Options{
		Affinity: map[string][]int{"a": {0, 1}, "b": {1}},
	}, dispatch.Options{})
	a, _ := s.AddVM(quarterVM("a"))
	b, _ := s.AddVM(quarterVM("b"))
	if err := s.MarkCoreFailed(0); err != nil {
		t.Fatal(err)
	}
	tbl, res, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.VCPUs[a].HomeCore; got != 1 {
		t.Errorf("a home core = %d, want physical 1 (the only survivor)", got)
	}
	if got := tbl.VCPUs[b].HomeCore; got != 1 {
		t.Errorf("b home core = %d, want physical 1", got)
	}
	if len(tbl.Cores[0].Allocs) != 0 {
		t.Error("failed core 0 received allocations")
	}
	if err := tbl.Check(res.Guarantees); err != nil {
		t.Error(err)
	}
}

// TestPlanRejectsAffinityToFailedCore: before the fix the system handed
// the planner raw physical affinity ids after a failure, which the
// planner either rejected as out of range or — worse — silently
// reinterpreted in the logical universe, placing the VM on a core its
// affinity forbade. An active VM whose whole affinity set has failed
// must be a planning error, not a silent misplacement.
func TestPlanRejectsAffinityToFailedCore(t *testing.T) {
	s := NewSystem(2, planner.Options{
		Affinity: map[string][]int{"a": {0}},
	}, dispatch.Options{})
	s.AddVM(quarterVM("a"))
	s.AddVM(quarterVM("b"))
	if _, _, err := s.Plan(); err != nil {
		t.Fatalf("pre-failure plan: %v", err)
	}
	if err := s.MarkCoreFailed(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Plan(); err == nil {
		t.Error("planning succeeded although a's only allowed core failed")
	}
}

// TestPlanDropsEmptiedAffinityOfUnplannedVM: an affinity entry whose
// set empties out only blocks the replan if its VM is actually being
// planned. Entries for torn-down or unknown names are dropped — passing
// them through empty would mean "unrestricted" to the planner, the
// opposite of the configured constraint.
func TestPlanDropsEmptiedAffinityOfUnplannedVM(t *testing.T) {
	s := NewSystem(2, planner.Options{
		Affinity: map[string][]int{"gone": {0}},
	}, dispatch.Options{})
	s.AddVM(quarterVM("a"))
	if err := s.MarkCoreFailed(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Plan(); err != nil {
		t.Errorf("affinity of a VM not being planned blocked the replan: %v", err)
	}
}
