package core

import (
	"bytes"
	"testing"

	"tableau/internal/planner"
	"tableau/internal/trace"
)

// specRig is churnRig with the planning fast paths armed: cache,
// incremental replanning, and n speculative candidates per flush.
func specRig(t *testing.T, cores, nActive, nSpare, speculate int) (*System, *Controller, []int) {
	t.Helper()
	s, _, ctrl, ids, _ := churnRig(t, cores, nActive, nSpare)
	s.Cache = planner.NewCache(0)
	s.Incremental = true
	ctrl.SpeculateNext = speculate
	return s, ctrl, ids
}

// TestSpeculativeFlushHit: after a flush, the controller pre-plans the
// next spare's arrival; the flush that activates it is served from the
// speculative store, and the committed epoch is byte-identical to what
// a non-speculating controller installs for the same op sequence.
func TestSpeculativeFlushHit(t *testing.T) {
	_, ctrl, ids := specRig(t, 2, 2, 3, 3)
	_, baseCtrl, baseIDs := specRig(t, 2, 2, 3, 0) // control: no speculation

	for _, step := range []int{2, 3} {
		ctrl.Submit(Op{Kind: OpActivate, Slot: ids[step]})
		tr, err := ctrl.Flush()
		if err != nil {
			t.Fatal(err)
		}
		if tr.Version == 0 {
			t.Fatalf("step %d did not commit", step)
		}
		baseCtrl.Submit(Op{Kind: OpActivate, Slot: baseIDs[step]})
		if _, err := baseCtrl.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ctrl.Epoch().Bytes, baseCtrl.Epoch().Bytes) {
			t.Fatalf("step %d: speculative epoch differs from the non-speculative one", step)
		}
	}

	st := ctrl.SpeculationStats()
	if st.Planned == 0 {
		t.Fatal("no speculative plans were computed")
	}
	// The second activation targeted the lowest-id inactive slot — the
	// first arrival candidate speculated after the first flush.
	if st.Hits == 0 {
		t.Fatalf("second flush was not served speculatively: %+v", st)
	}
	if base := baseCtrl.SpeculationStats(); base.Planned != 0 || base.Hits != 0 {
		t.Fatalf("disabled speculation still planned: %+v", base)
	}
}

// TestSpeculationInvalidation: stored candidates a flush does not
// consume are invalidated by the next round and counted as wasted; an
// unforeseen op (a reconfiguration is never speculated) must plan live.
func TestSpeculationInvalidation(t *testing.T) {
	_, ctrl, ids := specRig(t, 2, 2, 2, 2)

	ctrl.Submit(Op{Kind: OpActivate, Slot: ids[2]})
	if _, err := ctrl.Flush(); err != nil {
		t.Fatal(err)
	}
	before := ctrl.SpeculationStats()
	if before.Planned == 0 {
		t.Fatal("flush did not speculate")
	}

	ctrl.Submit(Op{Kind: OpReconfigure, Slot: ids[0], Util: Util{Num: 1, Den: 4}, LatencyGoal: 20_000_000})
	if _, err := ctrl.Flush(); err != nil {
		t.Fatal(err)
	}
	after := ctrl.SpeculationStats()
	if after.Hits != before.Hits {
		t.Fatalf("unforeseen reconfiguration was served speculatively: %+v", after)
	}
	if after.Wasted == 0 {
		t.Fatal("unconsumed speculations were not invalidated")
	}
}

// TestSpeculateAsync exercises the background-goroutine mode (under
// -race this checks the store's locking): flushes still commit, and
// WaitSpeculation drains the worker before stats are read.
func TestSpeculateAsync(t *testing.T) {
	_, ctrl, ids := specRig(t, 2, 2, 3, 2)
	ctrl.SpeculateAsync = true

	for _, step := range []int{2, 3} {
		ctrl.Submit(Op{Kind: OpActivate, Slot: ids[step]})
		tr, err := ctrl.Flush()
		if err != nil {
			t.Fatal(err)
		}
		if tr.Version == 0 {
			t.Fatalf("step %d did not commit", step)
		}
		ctrl.WaitSpeculation()
	}
	if st := ctrl.SpeculationStats(); st.Planned == 0 {
		t.Fatalf("async speculation never planned: %+v", st)
	}
}

// TestPlanOriginTrace: every installed epoch emits one EvPlanOrigin
// record, and the derived metrics classify the pipeline correctly —
// scratch first (nothing to diff), then speculative or incremental.
func TestPlanOriginTrace(t *testing.T) {
	s, ctrl, ids := specRig(t, 2, 2, 3, 2)
	tr := trace.New(1 << 12)
	tr.Bind(s.Cores(), s.NumSlots())
	ctrl.Tracer = tr

	for _, step := range []int{2, 3, 4} {
		ctrl.Submit(Op{Kind: OpActivate, Slot: ids[step]})
		if _, err := ctrl.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	m := tr.Metrics()
	total := m.PlansScratch + m.PlansCached + m.PlansIncremental + m.PlansSpeculative
	if total != 3 {
		t.Fatalf("plan-origin records = %d, want one per installed epoch (3)", total)
	}
	if m.PlansSpeculative == 0 {
		t.Errorf("no flush was classified speculative: %+v", *m)
	}
	if spec := ctrl.SpeculationStats(); int64(spec.Hits) != m.PlansSpeculative {
		t.Errorf("trace says %d speculative, controller says %d", m.PlansSpeculative, spec.Hits)
	}
}
