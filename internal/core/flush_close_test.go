package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestFlushSpeculationKickoffGatedOnClose is the regression test for the
// Flush/Close race: Flush used to decide the speculation kickoff outside
// the mutex, so a Close landing between the transactional body and the
// kickoff could return (and sync the journal) before Flush called
// specWG.Add — the documented WaitGroup misuse of adding after Wait has
// returned — and a speculation round would start on a controller that
// was already shut down. The test drops a Close into exactly that window
// via the test hook and demands no speculation round starts after it.
func TestFlushSpeculationKickoffGatedOnClose(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			_, _, ctrl, ids, _ := churnRig(t, 2, 2, 2)
			ctrl.SpeculateNext = 2
			ctrl.SpeculateAsync = async
			ctrl.testHookPreKickoff = func() {
				if err := ctrl.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
			}
			ctrl.Submit(Op{Kind: OpActivate, Slot: ids[2]})
			if _, err := ctrl.Flush(); err != nil {
				t.Fatal(err)
			}
			ctrl.WaitSpeculation()
			if got := ctrl.specRounds.Load(); got != 0 {
				t.Fatalf("%d speculation round(s) started after Close returned, want 0", got)
			}
		})
	}
}

// TestControllerCloseFlushSubmitRace hammers one controller with
// concurrent Submit/Flush traffic racing a Close, with async speculation
// armed — the -race stress for the kickoff-under-mutex fix. Whatever the
// interleaving, Close must win cleanly: after it returns and
// WaitSpeculation settles, no flush is accepted and the controller's
// counters are quiescent.
func TestControllerCloseFlushSubmitRace(t *testing.T) {
	for round := 0; round < 25; round++ {
		_, _, ctrl, ids, _ := churnRig(t, 2, 2, 4)
		ctrl.SpeculateNext = 2
		ctrl.SpeculateAsync = true

		const goroutines = 6
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 10; i++ {
					switch g % 3 {
					case 0:
						ctrl.Submit(Op{Kind: OpActivate, Slot: ids[2+(g+i)%4]})
						_, _ = ctrl.Flush()
					case 1:
						ctrl.Submit(Op{Kind: OpDeactivate, Slot: ids[2+(g+i)%4]})
						_, _ = ctrl.Flush()
					case 2:
						if i == 5 {
							_ = ctrl.Close()
						} else {
							_, _ = ctrl.Flush()
						}
					}
				}
			}(g)
		}
		close(start)
		wg.Wait()
		if err := ctrl.Close(); err != nil {
			t.Fatal(err)
		}
		ctrl.WaitSpeculation()
		rounds := ctrl.specRounds.Load()
		if _, err := ctrl.Flush(); err == nil {
			t.Fatal("Flush accepted after Close")
		}
		// Quiescent: nothing may start speculation once Close has
		// returned and the WaitGroup has settled.
		if got := ctrl.specRounds.Load(); got != rounds {
			t.Fatalf("speculation rounds moved %d -> %d after Close settled", rounds, got)
		}
	}
}
