package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"tableau/internal/dispatch"
	"tableau/internal/planner"
	"tableau/internal/sim"
	"tableau/internal/table"
	"tableau/internal/vmm"
)

// eighthVM is a small reservation so several fit per core.
func eighthVM(name string) VMConfig {
	return VMConfig{Name: name, Util: Util{Num: 1, Den: 8}, LatencyGoal: 20_000_000, Capped: true}
}

// churnRig is a system with nActive resident slots plus nSpare
// registered-but-inactive slots, its dispatcher attached to a started
// (but not yet run) machine with one vCPU per slot, and a controller.
// Until the caller runs the machine, no core adopts staged tables.
func churnRig(t *testing.T, cores, nActive, nSpare int) (*System, *dispatch.Dispatcher, *Controller, []int, *vmm.Machine) {
	t.Helper()
	s := NewSystem(cores, planner.Options{}, dispatch.Options{})
	var ids []int
	for i := 0; i < nActive+nSpare; i++ {
		id, err := s.AddVM(eighthVM(fmt.Sprintf("vm%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids[nActive:] {
		if err := s.SetActive(id, false); err != nil {
			t.Fatal(err)
		}
	}
	d, res, err := s.BuildDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	m := attachMachine(s, d)
	ctrl, err := NewController(s, d, res)
	if err != nil {
		t.Fatal(err)
	}
	return s, d, ctrl, ids, m
}

// attachMachine binds a started (not run) machine with one vCPU per
// slot to the dispatcher so PushTable has a time base; nothing adopts
// until the caller runs it.
func attachMachine(s *System, d *dispatch.Dispatcher) *vmm.Machine {
	m := vmm.New(sim.New(1), s.Cores(), d, vmm.NoOverheads())
	for i := 0; i < s.NumSlots(); i++ {
		m.AddVCPU(s.Config(i).Name, vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
			return vmm.Compute(1_000_000)
		}), 256, true)
	}
	m.Start()
	return m
}

// activeBytes canonicalizes the dispatcher's active table in the same
// compact encoding Epoch.Bytes uses, so the two are directly comparable.
func activeBytes(t *testing.T, d *dispatch.Dispatcher) []byte {
	t.Helper()
	enc, err := d.ActiveTable().AppendEncodedCompact(nil)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestControllerCoalescesBurstIntoOnePlan: a burst of queued ops is one
// transition — one planner invocation, one new epoch.
func TestControllerCoalescesBurstIntoOnePlan(t *testing.T) {
	_, _, ctrl, ids, _ := churnRig(t, 2, 2, 4)
	ctrl.SubmitBatch([]Op{
		{Kind: OpActivate, Slot: ids[2]},
		{Kind: OpActivate, Slot: ids[3]},
		{Kind: OpActivate, Slot: ids[4]},
		{Kind: OpReconfigure, Slot: ids[0], Util: Util{Num: 1, Den: 4}, LatencyGoal: 20_000_000},
	})
	if got := ctrl.Pending(); got != 4 {
		t.Fatalf("pending = %d, want 4", got)
	}
	tr, err := ctrl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if tr.PlannerCalls != 1 {
		t.Errorf("planner calls = %d, want 1 (the burst must coalesce)", tr.PlannerCalls)
	}
	if len(tr.Committed) != 4 || len(tr.Rejected) != 0 || tr.RolledBack {
		t.Errorf("transition = %+v, want 4 committed, none rejected", tr)
	}
	if tr.Version == 0 || tr.Version != ctrl.Epoch().Version {
		t.Errorf("version %d vs epoch %d", tr.Version, ctrl.Epoch().Version)
	}
	st := ctrl.ControllerStats()
	if st.Flushes != 1 || st.PlannerCalls != 1 || st.OpsCoalesced != 4 || st.Transitions != 1 {
		t.Errorf("stats = %+v", st)
	}
	if h := ctrl.History(); len(h) != 2 || h[1].Version <= h[0].Version {
		t.Errorf("history versions not monotonic: %d epochs", len(h))
	}
	// An empty queue flushes to nothing.
	if tr2, err := ctrl.Flush(); err != nil || tr2 != nil {
		t.Errorf("empty flush = (%v, %v)", tr2, err)
	}
}

// TestControllerRejectsInadmissibleArrivalIndividually: an arrival the
// admission check refuses is undone and rejected on its own; the rest
// of the batch commits and the refused VM never touches the installed
// epoch.
func TestControllerRejectsInadmissibleArrivalIndividually(t *testing.T) {
	s := NewSystem(1, planner.Options{}, dispatch.Options{})
	a, _ := s.AddVM(VMConfig{Name: "a", Util: Util{Num: 1, Den: 2}, LatencyGoal: 20_000_000, Capped: true})
	b, _ := s.AddVM(VMConfig{Name: "b", Util: Util{Num: 1, Den: 2}, LatencyGoal: 20_000_000, Capped: true})
	big, _ := s.AddVM(VMConfig{Name: "big", Util: Util{Num: 1, Den: 2}, LatencyGoal: 20_000_000, Capped: true})
	_ = a
	if err := s.SetActive(big, false); err != nil {
		t.Fatal(err)
	}
	d, res, err := s.BuildDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	attachMachine(s, d)
	ctrl, err := NewController(s, d, res)
	if err != nil {
		t.Fatal(err)
	}
	before := activeBytes(t, d)

	// The overload arrival alone: refused, previous epoch stands.
	ctrl.Submit(Op{Kind: OpActivate, Slot: big})
	tr, err := ctrl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rejected) != 1 || tr.Version != 0 || len(tr.Committed) != 0 {
		t.Fatalf("transition = %+v, want one rejection and no new epoch", tr)
	}
	if s.Active(big) {
		t.Error("rejected arrival left the slot active")
	}
	if !bytes.Equal(activeBytes(t, d), before) {
		t.Error("rejected-only batch changed the active table")
	}
	if d.Staged() != nil {
		t.Error("rejected-only batch staged a table")
	}

	// Mixed batch: the departure ahead of the overload arrival makes
	// room, so this time both commit in arrival order.
	ctrl.SubmitBatch([]Op{
		{Kind: OpDeactivate, Slot: b},
		{Kind: OpActivate, Slot: big},
	})
	tr, err = ctrl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Committed) != 2 || len(tr.Rejected) != 0 {
		t.Fatalf("transition = %+v, want both ops committed", tr)
	}
	if !s.Active(big) || s.Active(b) {
		t.Error("committed batch not reflected in the population")
	}
}

// TestControllerRollbackRestoresPreviousEpoch: when planning fails
// terminally mid-transition the whole batch is undone and the
// dispatcher keeps enacting the previous epoch bit-for-bit.
func TestControllerRollbackRestoresPreviousEpoch(t *testing.T) {
	s, d, ctrl, ids, m := churnRig(t, 2, 4, 0)
	m.Run(50_000_000)
	v1 := ctrl.Epoch().Version
	before := append([]byte(nil), ctrl.Epoch().Bytes...)

	planErr := errors.New("planner service down")
	ctrl.PlanVia = func([]planner.VCPUSpec, planner.Options) (*planner.Result, error) {
		return nil, planErr
	}
	// A departure is not sheddable: the failed plan forces full rollback.
	ctrl.Submit(Op{Kind: OpDeactivate, Slot: ids[3]})
	tr, err := ctrl.Flush()
	if err == nil || !tr.RolledBack || !errors.Is(tr.Err, planErr) {
		t.Fatalf("transition = %+v, err = %v; want rollback on plan failure", tr, err)
	}
	if !s.Active(ids[3]) {
		t.Error("rolled-back departure left the slot inactive")
	}
	if d.Staged() != nil {
		t.Error("rolled-back transition left a staged table")
	}
	if !bytes.Equal(activeBytes(t, d), before) {
		t.Error("dispatcher's active table differs from the pre-transition epoch")
	}
	if got := ctrl.Epoch().Version; got != v1 {
		t.Errorf("epoch = %d, want unchanged %d", got, v1)
	}
	if st := ctrl.ControllerStats(); st.Rollbacks != 1 || st.Transitions != 0 {
		t.Errorf("stats = %+v", st)
	}

	// Planner recovers: the same departure now commits.
	ctrl.PlanVia = nil
	ctrl.Submit(Op{Kind: OpDeactivate, Slot: ids[3]})
	tr, err = ctrl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Version <= v1 || s.Active(ids[3]) {
		t.Errorf("recovery transition = %+v", tr)
	}
}

// failingSink wraps a sink and fails installs on demand: the rollback
// path for a push that the hypervisor side refuses.
type failingSink struct {
	TableSink
	fail bool
}

func (f *failingSink) PushTable(tbl *table.Table) error {
	if f.fail {
		return errors.New("install refused")
	}
	return f.TableSink.PushTable(tbl)
}

func TestControllerRollbackOnFailedInstall(t *testing.T) {
	s := NewSystem(2, planner.Options{}, dispatch.Options{})
	var ids []int
	for i := 0; i < 3; i++ {
		id, _ := s.AddVM(eighthVM(fmt.Sprintf("vm%d", i)))
		ids = append(ids, id)
	}
	s.SetActive(ids[2], false)
	d, res, err := s.BuildDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	attachMachine(s, d)
	sink := &failingSink{TableSink: d, fail: true}
	ctrl, err := NewController(s, sink, res)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]byte(nil), ctrl.Epoch().Bytes...)
	ctrl.Submit(Op{Kind: OpActivate, Slot: ids[2]})
	tr, err := ctrl.Flush()
	if err == nil || !tr.RolledBack {
		t.Fatalf("transition = %+v, err = %v; want rollback on failed install", tr, err)
	}
	if s.Active(ids[2]) {
		t.Error("rolled-back arrival left the slot active")
	}
	if !bytes.Equal(activeBytes(t, d), before) {
		t.Error("failed install changed the active table")
	}
	sink.fail = false
	ctrl.Submit(Op{Kind: OpActivate, Slot: ids[2]})
	if _, err := ctrl.Flush(); err != nil {
		t.Fatal(err)
	}
	if !s.Active(ids[2]) {
		t.Error("retry after install failure did not commit")
	}
}

// TestControllerEmergencyRollbackKeepsDegradedEpoch: a fail-stop whose
// recovery replan fails must leave the dispatcher enacting the previous
// fully-adopted epoch (degraded mode), with the failure mark — a fact,
// not transaction state — surviving the rollback so the retry plans on
// the surviving cores.
func TestControllerEmergencyRollbackKeepsDegradedEpoch(t *testing.T) {
	s, d, ctrl, _, m := churnRig(t, 2, 3, 0)
	m.Run(50_000_000)
	v1 := ctrl.Epoch().Version
	before := append([]byte(nil), ctrl.Epoch().Bytes...)

	// The core fail-stops at machine level; the dispatcher enters
	// degraded mode on its own (OnCoreFail remaps stranded vCPUs).
	m.FailCore(1)
	planErr := errors.New("planner service down")
	ctrl.PlanVia = func([]planner.VCPUSpec, planner.Options) (*planner.Result, error) {
		return nil, planErr
	}
	ctrl.Submit(Op{Kind: OpFailCore, Core: 1})
	tr, err := ctrl.Flush()
	if err == nil || !tr.Emergency || !tr.RolledBack {
		t.Fatalf("transition = %+v, err = %v; want emergency rollback", tr, err)
	}
	if got := s.FailedCores(); len(got) != 1 || got[0] != 1 {
		t.Errorf("failed cores = %v, want [1]: the failure mark must survive rollback", got)
	}
	if !bytes.Equal(activeBytes(t, d), before) {
		t.Error("dispatcher left the previous epoch although recovery was rolled back")
	}
	if got := ctrl.Epoch().Version; got != v1 {
		t.Errorf("epoch = %d, want unchanged %d", got, v1)
	}

	// Planner recovers: the re-submitted fail-stop plans the population
	// onto the survivor, and the machine adopts the recovery epoch.
	ctrl.PlanVia = nil
	ctrl.Submit(Op{Kind: OpFailCore, Core: 1})
	tr, err = ctrl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Emergency || tr.Version <= v1 {
		t.Fatalf("recovery transition = %+v", tr)
	}
	m.Run(100_000_000)
	if got := d.ActiveTable().Generation; got != tr.Version {
		t.Errorf("active generation = %d, want adopted recovery epoch %d", got, tr.Version)
	}
	if len(d.ActiveTable().Cores[1].Allocs) != 0 {
		t.Error("recovery table still allocates the failed core")
	}
}

// TestControllerEmergencyRollbackWithdrawsUnadoptedStagedTable: a
// committed epoch whose table no core ever adopted is withdrawn when an
// emergency transition rolls back — degraded mode must keep enacting
// the last table the cores actually run, and the epoch history must
// match.
func TestControllerEmergencyRollbackWithdrawsUnadoptedStagedTable(t *testing.T) {
	// No machine: nothing ever adopts, so pushed tables stay staged.
	_, d, ctrl, ids, _ := churnRig(t, 2, 3, 1)
	v1 := ctrl.Epoch().Version
	ctrl.Submit(Op{Kind: OpActivate, Slot: ids[3]})
	tr, err := ctrl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	v2 := tr.Version
	if d.Staged() == nil {
		t.Fatal("no staged table after a committed transition")
	}
	if got := ctrl.Epoch().Version; got != v2 {
		t.Fatalf("epoch = %d, want %d", got, v2)
	}

	ctrl.PlanVia = func([]planner.VCPUSpec, planner.Options) (*planner.Result, error) {
		return nil, errors.New("planner service down")
	}
	ctrl.Submit(Op{Kind: OpFailCore, Core: 1})
	if _, err := ctrl.Flush(); err == nil {
		t.Fatal("emergency flush with a dead planner should fail")
	}
	if d.Staged() != nil {
		t.Error("emergency rollback left the pre-failure table staged")
	}
	if got := ctrl.Epoch().Version; got != v1 {
		t.Errorf("epoch = %d, want reverted to %d: the withdrawn epoch was never adopted", got, v1)
	}
	if h := ctrl.History(); len(h) != 1 || h[0].Version != v1 {
		t.Errorf("history has %d epochs, want the initial one only", len(h))
	}
}

// TestControllerShedsLatestArrivalWhenPlacementFails: a batch that
// passes utilization admission but overwhelms placement sheds its most
// recent arrivals (rejecting them individually) instead of rolling the
// whole storm back.
func TestControllerShedsLatestArrivalWhenPlacementFails(t *testing.T) {
	s, _, ctrl, ids, _ := churnRig(t, 2, 2, 2)
	// A planning backend that refuses populations above 3 VMs: a stand-in
	// for placement infeasibility past the utilization bound.
	calls := 0
	ctrl.PlanVia = func(specs []planner.VCPUSpec, opts planner.Options) (*planner.Result, error) {
		calls++
		if len(specs) > 3 {
			return nil, errors.New("placement infeasible")
		}
		return planner.Plan(specs, opts)
	}
	ctrl.SubmitBatch([]Op{
		{Kind: OpActivate, Slot: ids[2]},
		{Kind: OpActivate, Slot: ids[3]},
	})
	tr, err := ctrl.Flush()
	if err != nil {
		t.Fatalf("shed-retry should commit the survivors: %v (transition %+v)", err, tr)
	}
	if len(tr.Committed) != 1 || tr.Committed[0].Slot != ids[2] {
		t.Errorf("committed = %v, want the earlier arrival only", tr.Committed)
	}
	if len(tr.Rejected) != 1 || tr.Rejected[0].Op.Slot != ids[3] {
		t.Errorf("rejected = %v, want the most recent arrival shed", tr.Rejected)
	}
	if tr.PlannerCalls != 2 || calls != 2 {
		t.Errorf("planner calls = %d/%d, want 2 (initial + one shed retry)", tr.PlannerCalls, calls)
	}
	if s.Active(ids[3]) {
		t.Error("shed arrival left the slot active")
	}
	if !s.Active(ids[2]) {
		t.Error("committed arrival not active")
	}
}

// TestMaxHistoryBounds: a bounded controller retains only the newest
// MaxHistory epochs (never fewer than two, so the emergency-rollback
// predecessor stays reachable), and the retained suffix matches what an
// unbounded controller records for the same op sequence.
func TestMaxHistoryBounds(t *testing.T) {
	_, _, ctrl, ids, _ := churnRig(t, 2, 2, 1)
	_, _, full, fullIDs, _ := churnRig(t, 2, 2, 1)
	ctrl.MaxHistory = 3
	toggle := func(c *Controller, slot int, active bool) {
		t.Helper()
		kind := OpDeactivate
		if active {
			kind = OpActivate
		}
		c.Submit(Op{Kind: kind, Slot: slot})
		if tr, err := c.Flush(); err != nil || tr.Version == 0 {
			t.Fatalf("flush: %v (%+v)", err, tr)
		}
	}
	for i := 0; i < 8; i++ {
		active := i%2 == 1
		toggle(ctrl, ids[2], active)
		toggle(full, fullIDs[2], active)
	}
	got, want := ctrl.History(), full.History()
	if len(got) != 3 {
		t.Fatalf("bounded history has %d epochs, want 3", len(got))
	}
	tail := want[len(want)-3:]
	for i := range got {
		if got[i].Version != tail[i].Version || !bytes.Equal(got[i].Bytes, tail[i].Bytes) {
			t.Fatalf("retained epoch %d = v%d, want v%d (unbounded tail)", i, got[i].Version, tail[i].Version)
		}
	}
	if ctrl.Epoch().Version != full.Epoch().Version {
		t.Fatalf("current epoch diverged: %d vs %d", ctrl.Epoch().Version, full.Epoch().Version)
	}
}
