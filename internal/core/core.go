// Package core is the public face of the Tableau reproduction: it ties
// the planner (table generation, paper Sec. 5) and the dispatcher
// (table-driven scheduling, Secs. 4 and 6) into the system of Fig. 1 —
// a host whose VM population changes over time, with a planning step on
// every creation, teardown, or reconfiguration that regenerates the
// scheduling table and pushes it to the dispatcher for a boundary-
// synchronized switch.
package core

import (
	"fmt"

	"tableau/internal/dispatch"
	"tableau/internal/planner"
	"tableau/internal/table"
)

// Util re-exports the planner's exact utilization type.
type Util = planner.Util

// VMConfig describes one single-vCPU VM slot in the system. (The paper
// evaluates single-vCPU VMs; multi-vCPU VMs are a set of slots sharing
// a name prefix.)
type VMConfig struct {
	// Name identifies the VM.
	Name string
	// Util is the reserved utilization in (0, 1].
	Util Util
	// LatencyGoal is the maximum scheduling latency L in ns.
	LatencyGoal int64
	// Capped VMs may not exceed their reservation.
	Capped bool
}

type slot struct {
	cfg    VMConfig
	active bool
}

// System models the host's VM population and produces scheduling
// tables for it. Slot indices are stable: they double as vCPU ids in
// the generated tables, so a dispatcher attached to a machine with one
// vCPU per slot can adopt every regenerated table.
type System struct {
	cores        int
	plannerOpts  planner.Options
	dispatchOpts dispatch.Options
	slots        []slot
	generation   uint64

	// failed marks fail-stopped physical cores: Plan places the
	// population on the survivors only, leaving the dead cores' table
	// entries empty (see MarkCoreFailed / EmergencyReplan).
	failed []bool

	// RotateSplits advances the planner's split rotation on every Plan,
	// so that when the population forces C=D splitting, the migration
	// penalty is taken in turns instead of pinned to one vCPU (the
	// paper's Sec. 7.5 "all vCPUs take a turn being split").
	RotateSplits bool

	// Cache, when set, memoizes planning by exact (specs, options)
	// input — the paper's Sec. 7.1 central table cache for commonly
	// reused configurations. Cached results are shared (possibly across
	// systems and goroutines), so Plan works on a private copy before
	// remapping. Set it before the first Plan.
	Cache *planner.Cache
}

// NewSystem creates a system with the given number of guest cores.
func NewSystem(cores int, popts planner.Options, dopts dispatch.Options) *System {
	popts.Cores = cores
	return &System{cores: cores, plannerOpts: popts, dispatchOpts: dopts, failed: make([]bool, cores)}
}

// Cores returns the number of guest cores.
func (s *System) Cores() int { return s.cores }

// MarkCoreFailed records the fail-stop of a physical core. Subsequent
// Plans place the population on the surviving cores only; the dead
// core's table entry stays empty so tables keep one CoreTable per
// physical core and vCPU HomeCores keep referring to physical ids.
func (s *System) MarkCoreFailed(core int) error {
	if core < 0 || core >= s.cores {
		return fmt.Errorf("core: no core %d", core)
	}
	s.failed[core] = true
	return nil
}

// FailedCores returns the fail-stopped cores in id order.
func (s *System) FailedCores() []int {
	var out []int
	for c, f := range s.failed {
		if f {
			out = append(out, c)
		}
	}
	return out
}

// onlineCores returns the live physical core ids in order.
func (s *System) onlineCores() []int {
	out := make([]int, 0, s.cores)
	for c := 0; c < s.cores; c++ {
		if !s.failed[c] {
			out = append(out, c)
		}
	}
	return out
}

// AddVM registers a VM slot (initially active) and returns its id.
// Slots must all be registered before the first Plan when the system
// backs a running machine, because vCPU ids are fixed at machine start;
// use SetActive to model creation and teardown afterwards.
func (s *System) AddVM(cfg VMConfig) (int, error) {
	spec := planner.VCPUSpec{Name: cfg.Name, Util: cfg.Util, LatencyGoal: cfg.LatencyGoal, Capped: cfg.Capped}
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	s.slots = append(s.slots, slot{cfg: cfg, active: true})
	return len(s.slots) - 1, nil
}

// AddMultiVM registers n vCPU slots for an n-vCPU VM (named
// "<name>.0" … "<name>.<n-1>"), each with the same per-vCPU utilization
// and latency goal, and returns the slot ids. The paper's model treats
// an SMP VM as a set of independently schedulable vCPUs (Sec. 2); the
// planner places them like any other vCPUs.
func (s *System) AddMultiVM(name string, n int, u Util, latencyGoal int64, capped bool) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: VM %q needs at least one vCPU", name)
	}
	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		id, err := s.AddVM(VMConfig{
			Name:        fmt.Sprintf("%s.%d", name, i),
			Util:        u,
			LatencyGoal: latencyGoal,
			Capped:      capped,
		})
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// SetActive marks a slot as active (VM created) or inactive (torn
// down). Inactive slots receive no reservations and do not take part in
// second-level scheduling.
func (s *System) SetActive(id int, active bool) error {
	if id < 0 || id >= len(s.slots) {
		return fmt.Errorf("core: no VM slot %d", id)
	}
	s.slots[id].active = active
	return nil
}

// Reconfigure updates a slot's utilization and latency goal (the
// paper's VM reconfiguration operation).
func (s *System) Reconfigure(id int, u Util, latencyGoal int64) error {
	if id < 0 || id >= len(s.slots) {
		return fmt.Errorf("core: no VM slot %d", id)
	}
	cfg := s.slots[id].cfg
	cfg.Util = u
	cfg.LatencyGoal = latencyGoal
	spec := planner.VCPUSpec{Name: cfg.Name, Util: cfg.Util, LatencyGoal: cfg.LatencyGoal, Capped: cfg.Capped}
	if err := spec.Validate(); err != nil {
		return err
	}
	s.slots[id].cfg = cfg
	return nil
}

// NumSlots returns the number of registered VM slots.
func (s *System) NumSlots() int { return len(s.slots) }

// Config returns the configuration of slot id.
func (s *System) Config(id int) VMConfig { return s.slots[id].cfg }

// Plan generates a scheduling table covering every slot (with
// reservations only for active ones) and the planner's report. Each
// call increments the table generation.
func (s *System) Plan() (*table.Table, *planner.Result, error) {
	var specs []planner.VCPUSpec
	var specSlot []int
	for id, sl := range s.slots {
		if !sl.active {
			continue
		}
		specs = append(specs, planner.VCPUSpec{
			Name:        sl.cfg.Name,
			Util:        sl.cfg.Util,
			LatencyGoal: sl.cfg.LatencyGoal,
			Capped:      sl.cfg.Capped,
		})
		specSlot = append(specSlot, id)
	}
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("core: no active VMs to plan for")
	}
	opts := s.plannerOpts
	if s.RotateSplits {
		opts.SplitRotation = int(s.generation)
	}
	online := s.onlineCores()
	if len(online) == 0 {
		return nil, nil, fmt.Errorf("core: every core has failed")
	}
	// Plan onto the survivors; the planner's admission check is the
	// gate that decides whether a degraded host can still carry the
	// reserved utilization.
	opts.Cores = len(online)
	res, err := s.plan(specs, opts)
	if err != nil {
		return nil, nil, err
	}
	tbl, err := s.remap(res.Table, specSlot)
	if err != nil {
		return nil, nil, err
	}
	// Remap the guarantees to slot ids as well so callers can re-check.
	for i := range res.Guarantees {
		res.Guarantees[i].VCPU = specSlot[res.Guarantees[i].VCPU]
	}
	s.generation++
	tbl.Generation = s.generation
	res.Table = tbl
	return tbl, res, nil
}

// plan generates (or looks up) the planner result for the given specs.
// When a cache serves the request, the shared Result is deep-cloned:
// Plan remaps guarantees into the slot-id universe, and callers are
// free to inspect or rewrite the returned Tasks and Splits — none of
// which may reach through to the cached original other users share.
func (s *System) plan(specs []planner.VCPUSpec, opts planner.Options) (*planner.Result, error) {
	if s.Cache == nil {
		return planner.Plan(specs, opts)
	}
	shared, err := s.Cache.Plan(specs, opts)
	if err != nil {
		return nil, err
	}
	return shared.Clone(), nil
}

// remap rewrites a planner table (vCPU ids = active-spec order, core
// ids = logical survivor order) into the slot-id and physical-core
// universe: empty entries for inactive slots, and — when cores have
// failed — logical planner cores renumbered onto the live physical
// ids, with empty CoreTables holding the dead cores' positions.
func (s *System) remap(in *table.Table, specSlot []int) (*table.Table, error) {
	online := s.onlineCores()
	if len(in.Cores) > len(online) {
		return nil, fmt.Errorf("core: planner produced %d core tables for %d online cores", len(in.Cores), len(online))
	}
	out := &table.Table{Len: in.Len}
	out.VCPUs = make([]table.VCPUInfo, len(s.slots))
	for id, sl := range s.slots {
		out.VCPUs[id] = table.VCPUInfo{
			Name:     sl.cfg.Name,
			Capped:   sl.cfg.Capped || !sl.active, // inactive: fully fenced
			HomeCore: -1,
		}
	}
	for specIdx, slotID := range specSlot {
		vi := in.VCPUs[specIdx]
		out.VCPUs[slotID].Capped = vi.Capped
		out.VCPUs[slotID].HomeCore = vi.HomeCore
		if vi.HomeCore >= 0 && vi.HomeCore < len(online) {
			out.VCPUs[slotID].HomeCore = online[vi.HomeCore]
		}
		out.VCPUs[slotID].Split = vi.Split
		out.VCPUs[slotID].UtilizationPPM = vi.UtilizationPPM
		out.VCPUs[slotID].LatencyGoal = vi.LatencyGoal
	}
	out.Cores = make([]table.CoreTable, s.cores)
	for c := range out.Cores {
		out.Cores[c].Core = c
	}
	for c := range in.Cores {
		phys := online[in.Cores[c].Core]
		for _, a := range in.Cores[c].Allocs {
			v := a.VCPU
			if v != table.Idle {
				v = specSlot[v]
			}
			out.Cores[phys].Allocs = append(out.Cores[phys].Allocs, table.Alloc{Start: a.Start, End: a.End, VCPU: v})
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("core: remapped table invalid: %w", err)
	}
	if err := out.BuildSlices(s.plannerOpts.MaxSlicesPerCore); err != nil {
		return nil, err
	}
	return out, nil
}

// BuildDispatcher plans the current population and returns a dispatcher
// enacting the result, ready to attach to a vmm machine with one vCPU
// per slot.
func (s *System) BuildDispatcher() (*dispatch.Dispatcher, *planner.Result, error) {
	tbl, res, err := s.Plan()
	if err != nil {
		return nil, nil, err
	}
	return dispatch.New(tbl, s.dispatchOpts), res, nil
}

// Push replans and stages the new table on a live dispatcher: the
// paper's reconfiguration path (planner daemon regenerates, pushes via
// hypercall, dispatcher switches at a safe boundary).
func (s *System) Push(d *dispatch.Dispatcher) (*planner.Result, error) {
	tbl, res, err := s.Plan()
	if err != nil {
		return nil, err
	}
	if err := d.PushTable(tbl); err != nil {
		return nil, err
	}
	return res, nil
}

// EmergencyReplan is the control plane's fail-stop reaction: mark the
// core failed, replan the whole population onto the survivors, and
// stage the recovery table on the live dispatcher. The planner's
// admission check gates the recovery — if the surviving cores cannot
// carry the reserved utilization, the error is returned and the
// dispatcher stays in best-effort degraded mode (the core remains
// marked failed either way, so a later retry plans on the same
// surviving set).
func (s *System) EmergencyReplan(d *dispatch.Dispatcher, core int) (*planner.Result, error) {
	if err := s.MarkCoreFailed(core); err != nil {
		return nil, err
	}
	return s.Push(d)
}
