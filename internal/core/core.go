// Package core is the public face of the Tableau reproduction: it ties
// the planner (table generation, paper Sec. 5) and the dispatcher
// (table-driven scheduling, Secs. 4 and 6) into the system of Fig. 1 —
// a host whose VM population changes over time, with a planning step on
// every creation, teardown, or reconfiguration that regenerates the
// scheduling table and pushes it to the dispatcher for a boundary-
// synchronized switch.
//
// Two layers share this package. System is the population model plus
// the planning pipeline; it is safe for concurrent callers (see the
// locking discipline on System). Controller (controller.go) sits on
// top and turns bursts of population changes into transactional,
// versioned table transitions with rollback.
package core

import (
	"fmt"
	"sync"

	"tableau/internal/dispatch"
	"tableau/internal/planner"
	"tableau/internal/table"
)

// Util re-exports the planner's exact utilization type.
type Util = planner.Util

// Class re-exports the planner's tenancy class (LS or BE). The zero
// value is LS, so class-free configurations behave exactly as before
// the class existed.
type Class = planner.Class

// LS and BE re-export the tenancy classes for callers that only import
// core.
const (
	LS = planner.LS
	BE = planner.BE
)

// TableSink is where the control plane installs regenerated tables: the
// paper's hypercall that hands a table to the hypervisor for a
// boundary-synchronized switch. *dispatch.Dispatcher satisfies it; unit
// tests substitute recording stubs.
type TableSink interface {
	PushTable(tbl *table.Table) error
}

// PlanFunc is a planning backend: given the active population's specs
// and options it returns a planner result in the planner's universe
// (vCPU ids = spec order, core ids = logical survivor order). It is the
// hook through which planning can be served remotely (plannersvc) — nil
// means the local planner (through System.Cache when set).
type PlanFunc func(specs []planner.VCPUSpec, opts planner.Options) (*planner.Result, error)

// VMConfig describes one single-vCPU VM slot in the system. (The paper
// evaluates single-vCPU VMs; multi-vCPU VMs are a set of slots sharing
// a name prefix.)
type VMConfig struct {
	// Name identifies the VM.
	Name string
	// Util is the reserved utilization in (0, 1].
	Util Util
	// LatencyGoal is the maximum scheduling latency L in ns.
	LatencyGoal int64
	// Capped VMs may not exceed their reservation.
	Capped bool
	// Class is the tenancy class: LS (the zero value) holds a hard
	// guarantee, BE soaks slack and is shed first under overload.
	Class Class
}

type slot struct {
	cfg    VMConfig
	active bool
}

// System models the host's VM population and produces scheduling
// tables for it. Slot indices are stable: they double as vCPU ids in
// the generated tables, so a dispatcher attached to a machine with one
// vCPU per slot can adopt every regenerated table.
//
// Locking discipline: mu guards slots, failed, and generation. Every
// exported method takes mu itself; unexported helpers with the Locked
// suffix assume it is held. Plan holds mu for the whole planning step,
// so concurrent control-plane calls serialize into one planner
// invocation at a time — the serialized replan pipeline Controller
// builds on. Cache has its own lock and RotateSplits/Cache are
// configuration set before first use, so neither needs mu.
type System struct {
	mu sync.Mutex

	cores        int
	plannerOpts  planner.Options
	dispatchOpts dispatch.Options
	slots        []slot
	generation   uint64

	// failed marks fail-stopped physical cores: Plan places the
	// population on the survivors only, leaving the dead cores' table
	// entries empty (see MarkCoreFailed / EmergencyReplan).
	failed []bool

	// RotateSplits advances the planner's split rotation on every Plan,
	// so that when the population forces C=D splitting, the migration
	// penalty is taken in turns instead of pinned to one vCPU (the
	// paper's Sec. 7.5 "all vCPUs take a turn being split").
	RotateSplits bool

	// Cache, when set, memoizes planning by exact (specs, options)
	// input — the paper's Sec. 7.1 central table cache for commonly
	// reused configurations. Cached results are shared (possibly across
	// systems and goroutines), so Plan works on a private copy before
	// remapping. Set it before the first Plan. The cache's attached
	// SliceCache is wired into every local plan, so per-core EDF
	// simulations are memoized even when the whole problem misses.
	Cache *planner.Cache

	// Incremental, when set, threads each successful plan's result into
	// the next local plan (planner.PlanIncremental): cores whose VMs a
	// churn batch left untouched keep their assignments and only the
	// dirty remainder is re-placed. Tables may differ from scratch plans
	// but pass the identical guarantee checks. Set before first use.
	Incremental bool

	// UnsafeStaleSliceReuse arms the planner's mutation-smoke defect of
	// the same name on every local plan. Never set outside tests.
	UnsafeStaleSliceReuse bool

	// prev is the last successful plan in the planner universe (guarded
	// by mu), the PlanIncremental input. Only maintained when
	// Incremental is set.
	prev *planner.PrevPlan
}

// NewSystem creates a system with the given number of guest cores.
func NewSystem(cores int, popts planner.Options, dopts dispatch.Options) *System {
	popts.Cores = cores
	return &System{cores: cores, plannerOpts: popts, dispatchOpts: dopts, failed: make([]bool, cores)}
}

// Cores returns the number of guest cores.
func (s *System) Cores() int { return s.cores }

// MarkCoreFailed records the fail-stop of a physical core. Subsequent
// Plans place the population on the surviving cores only; the dead
// core's table entry stays empty so tables keep one CoreTable per
// physical core and vCPU HomeCores keep referring to physical ids.
func (s *System) MarkCoreFailed(core int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.markCoreFailedLocked(core)
}

func (s *System) markCoreFailedLocked(core int) error {
	if core < 0 || core >= s.cores {
		return fmt.Errorf("core: no core %d", core)
	}
	s.failed[core] = true
	return nil
}

// FailedCores returns the fail-stopped cores in id order.
func (s *System) FailedCores() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for c, f := range s.failed {
		if f {
			out = append(out, c)
		}
	}
	return out
}

// onlineCoresLocked returns the live physical core ids in order.
func (s *System) onlineCoresLocked() []int {
	out := make([]int, 0, s.cores)
	for c := 0; c < s.cores; c++ {
		if !s.failed[c] {
			out = append(out, c)
		}
	}
	return out
}

// AddVM registers a VM slot (initially active) and returns its id.
// Slots must all be registered before the first Plan when the system
// backs a running machine, because vCPU ids are fixed at machine start;
// use SetActive to model creation and teardown afterwards.
func (s *System) AddVM(cfg VMConfig) (int, error) {
	spec := planner.VCPUSpec{Name: cfg.Name, Util: cfg.Util, LatencyGoal: cfg.LatencyGoal, Capped: cfg.Capped, Class: cfg.Class}
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slots = append(s.slots, slot{cfg: cfg, active: true})
	return len(s.slots) - 1, nil
}

// AddMultiVM registers n vCPU slots for an n-vCPU VM (named
// "<name>.0" … "<name>.<n-1>"), each with the same per-vCPU utilization
// and latency goal, and returns the slot ids. The paper's model treats
// an SMP VM as a set of independently schedulable vCPUs (Sec. 2); the
// planner places them like any other vCPUs.
func (s *System) AddMultiVM(name string, n int, u Util, latencyGoal int64, capped bool) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: VM %q needs at least one vCPU", name)
	}
	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		id, err := s.AddVM(VMConfig{
			Name:        fmt.Sprintf("%s.%d", name, i),
			Util:        u,
			LatencyGoal: latencyGoal,
			Capped:      capped,
		})
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// SetActive marks a slot as active (VM created) or inactive (torn
// down). Inactive slots receive no reservations and do not take part in
// second-level scheduling.
func (s *System) SetActive(id int, active bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.setActiveLocked(id, active)
}

func (s *System) setActiveLocked(id int, active bool) error {
	if id < 0 || id >= len(s.slots) {
		return fmt.Errorf("core: no VM slot %d", id)
	}
	s.slots[id].active = active
	return nil
}

// RemoveVM tears a VM down. The slot itself is retained (vCPU ids are
// fixed at machine start) but receives no reservations until a later
// SetActive re-creates it — the arrival/departure model the churn
// experiments drive.
func (s *System) RemoveVM(id int) error { return s.SetActive(id, false) }

// Active reports whether slot id currently holds a live VM.
func (s *System) Active(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return id >= 0 && id < len(s.slots) && s.slots[id].active
}

// Reconfigure updates a slot's utilization and latency goal (the
// paper's VM reconfiguration operation).
func (s *System) Reconfigure(id int, u Util, latencyGoal int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reconfigureLocked(id, u, latencyGoal)
}

func (s *System) reconfigureLocked(id int, u Util, latencyGoal int64) error {
	if id < 0 || id >= len(s.slots) {
		return fmt.Errorf("core: no VM slot %d", id)
	}
	cfg := s.slots[id].cfg
	cfg.Util = u
	cfg.LatencyGoal = latencyGoal
	spec := planner.VCPUSpec{Name: cfg.Name, Util: cfg.Util, LatencyGoal: cfg.LatencyGoal, Capped: cfg.Capped, Class: cfg.Class}
	if err := spec.Validate(); err != nil {
		return err
	}
	s.slots[id].cfg = cfg
	return nil
}

// SetClass changes a slot's tenancy class. Fleet hosts recycle slots
// across placements, so the class is settable like the reservation.
func (s *System) SetClass(id int, c Class) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.setClassLocked(id, c)
}

func (s *System) setClassLocked(id int, c Class) error {
	if id < 0 || id >= len(s.slots) {
		return fmt.Errorf("core: no VM slot %d", id)
	}
	s.slots[id].cfg.Class = c
	return nil
}

// NumSlots returns the number of registered VM slots.
func (s *System) NumSlots() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.slots)
}

// Config returns the configuration of slot id.
func (s *System) Config(id int) VMConfig {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slots[id].cfg
}

// snapshotLocked captures the population state a transactional caller
// may need to restore: per-slot configuration and activation. Core
// failures are facts, not transaction state, so they are not captured.
func (s *System) snapshotLocked() []slot {
	return append([]slot(nil), s.slots...)
}

// restoreLocked rolls the population back to a snapshotLocked capture.
// Slots added after the snapshot stay registered (ids are stable) but
// are deactivated: they were never part of a committed epoch.
func (s *System) restoreLocked(snap []slot) {
	copy(s.slots, snap)
	for i := len(snap); i < len(s.slots); i++ {
		s.slots[i].active = false
	}
}

// activeSpecsLocked materializes the active population as planner specs
// plus the owning slot of each spec.
func (s *System) activeSpecsLocked() (specs []planner.VCPUSpec, specSlot []int) {
	for id, sl := range s.slots {
		if !sl.active {
			continue
		}
		specs = append(specs, planner.VCPUSpec{
			Name:        sl.cfg.Name,
			Util:        sl.cfg.Util,
			LatencyGoal: sl.cfg.LatencyGoal,
			Capped:      sl.cfg.Capped,
			Class:       sl.cfg.Class,
		})
		specSlot = append(specSlot, id)
	}
	return specs, specSlot
}

// Plan generates a scheduling table covering every slot (with
// reservations only for active ones) and the planner's report. Each
// call increments the table generation.
func (s *System) Plan() (*table.Table, *planner.Result, error) {
	return s.PlanUsing(nil)
}

// PlanUsing is Plan with an explicit planning backend: fn receives the
// active specs and the topology-adjusted options and must return a
// result in the planner universe, which PlanUsing then remaps into the
// slot-id/physical-core universe exactly like Plan. A nil fn selects
// the local planner (through Cache when set). This is how remote
// planning (plannersvc.Client.PlanFunc) and the churn experiments'
// outage-simulating backends slot into the same pipeline.
func (s *System) PlanUsing(fn PlanFunc) (*table.Table, *planner.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.planLocked(fn)
}

func (s *System) planLocked(fn PlanFunc) (*table.Table, *planner.Result, error) {
	specs, specSlot := s.activeSpecsLocked()
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("core: no active VMs to plan for")
	}
	opts, err := s.planOptsLocked(specs)
	if err != nil {
		return nil, nil, err
	}
	var res *planner.Result
	if fn != nil {
		res, err = fn(specs, opts)
	} else {
		res, err = s.plan(specs, opts, s.prev)
	}
	if err != nil {
		return nil, nil, err
	}
	if s.Incremental {
		// Capture the planner-universe result before the remap below
		// rewrites guarantees into slot ids: it seeds the next plan's
		// dirty-core diff. Any successful plan (local, cached, remote,
		// speculative) is the population the next batch perturbs.
		s.prev = &planner.PrevPlan{Specs: specs, Opts: opts, Res: res.Clone()}
	}
	tbl, err := s.remapLocked(res.Table, specSlot, fn == nil)
	if err != nil {
		return nil, nil, err
	}
	// Remap the guarantees to slot ids as well so callers can re-check.
	for i := range res.Guarantees {
		res.Guarantees[i].VCPU = specSlot[res.Guarantees[i].VCPU]
	}
	s.generation++
	tbl.Generation = s.generation
	res.Table = tbl
	return tbl, res, nil
}

// affinityForLocked narrows the configured physical-core affinity sets
// onto the current topology, renumbering to the planner's logical
// survivor ids. An active VM whose entire affinity set has failed is a
// planning error: silently placing it on a non-affine survivor would
// violate the placement constraint the affinity encoded. Inactive or
// unknown names whose sets empty out are dropped instead (an empty set
// means "unrestricted" to the planner, which would be the opposite of
// what was asked).
func (s *System) affinityForLocked(specs []planner.VCPUSpec, online []int) (map[string][]int, error) {
	logical := make(map[int]int, len(online))
	for l, phys := range online {
		logical[phys] = l
	}
	planned := make(map[string]bool, len(specs))
	for _, sp := range specs {
		planned[sp.Name] = true
	}
	out := make(map[string][]int, len(s.plannerOpts.Affinity))
	for name, cores := range s.plannerOpts.Affinity {
		var allowed []int
		for _, c := range cores {
			if l, ok := logical[c]; ok {
				allowed = append(allowed, l)
			}
		}
		if len(allowed) == 0 {
			if planned[name] {
				return nil, fmt.Errorf("core: affinity of %q unsatisfiable: every allowed core of %v has failed", name, cores)
			}
			continue
		}
		out[name] = allowed
	}
	return out, nil
}

// planOptsLocked derives the options one planning attempt should use:
// the configured options adjusted for split rotation, the surviving
// topology (the planner's admission check is the gate that decides
// whether a degraded host can still carry the reserved utilization),
// affinity narrowing, and the cache's slice memo. Controller
// speculation uses the same derivation so a speculative key matches the
// flush that later consumes it exactly.
func (s *System) planOptsLocked(specs []planner.VCPUSpec) (planner.Options, error) {
	opts := s.plannerOpts
	if s.RotateSplits {
		opts.SplitRotation = int(s.generation)
	}
	online := s.onlineCoresLocked()
	if len(online) == 0 {
		return opts, fmt.Errorf("core: every core has failed")
	}
	opts.Cores = len(online)
	if len(opts.Affinity) > 0 {
		aff, err := s.affinityForLocked(specs, online)
		if err != nil {
			return opts, err
		}
		opts.Affinity = aff
	}
	if s.Cache != nil {
		opts.Slices = s.Cache.SliceCache()
	}
	if s.UnsafeStaleSliceReuse {
		opts.UnsafeStaleSliceReuse = true
	}
	return opts, nil
}

// plan generates (or looks up) the planner result for the given specs.
// When a cache serves the request, the shared Result is deep-cloned:
// Plan remaps guarantees into the slot-id universe, and callers are
// free to inspect or rewrite the returned Tasks and Splits — none of
// which may reach through to the cached original other users share.
// prev is the previous plan for the incremental path (ignored unless
// s.Incremental); scratch results are published to the cache, while
// incremental ones are not — their tables depend on planning history,
// so sharing them across cache users would make cached contents depend
// on who planned first.
func (s *System) plan(specs []planner.VCPUSpec, opts planner.Options, prev *planner.PrevPlan) (*planner.Result, error) {
	if s.Cache == nil {
		if s.Incremental {
			return planner.PlanIncremental(specs, opts, prev)
		}
		return planner.Plan(specs, opts)
	}
	if shared, ok := s.Cache.Lookup(specs, opts); ok {
		cl := shared.Clone()
		cl.FromCache = true
		return cl, nil
	}
	var res *planner.Result
	var err error
	if s.Incremental {
		res, err = planner.PlanIncremental(specs, opts, prev)
	} else {
		res, err = planner.Plan(specs, opts)
	}
	if err != nil {
		return nil, err
	}
	s.Cache.Add(specs, opts, res) // no-op for incremental results
	if !res.Incremental {
		// The cached copy is shared from here on; hand back a private
		// clone like any cache hit.
		return res.Clone(), nil
	}
	return res, nil
}

// remapLocked rewrites a planner table (vCPU ids = active-spec order,
// core ids = logical survivor order) into the slot-id and physical-core
// universe: empty entries for inactive slots, and — when cores have
// failed — logical planner cores renumbered onto the live physical
// ids, with empty CoreTables holding the dead cores' positions.
//
// trusted marks tables the in-process planner produced: those were
// validated and guarantee-checked before they were returned, the remap
// only renames ids (allocation timing is copied verbatim), and each
// core's slice index transplants unchanged, so re-validating and
// re-building here would redo work per churn flush. Tables from an
// external backend (PlanVia) get the full treatment.
func (s *System) remapLocked(in *table.Table, specSlot []int, trusted bool) (*table.Table, error) {
	online := s.onlineCoresLocked()
	if len(in.Cores) > len(online) {
		return nil, fmt.Errorf("core: planner produced %d core tables for %d online cores", len(in.Cores), len(online))
	}
	out := &table.Table{Len: in.Len}
	out.VCPUs = make([]table.VCPUInfo, len(s.slots))
	for id, sl := range s.slots {
		out.VCPUs[id] = table.VCPUInfo{
			Name:     sl.cfg.Name,
			Capped:   sl.cfg.Capped || !sl.active, // inactive: fully fenced
			HomeCore: -1,
		}
	}
	for specIdx, slotID := range specSlot {
		vi := in.VCPUs[specIdx]
		out.VCPUs[slotID].Capped = vi.Capped
		out.VCPUs[slotID].HomeCore = vi.HomeCore
		if vi.HomeCore >= 0 && vi.HomeCore < len(online) {
			out.VCPUs[slotID].HomeCore = online[vi.HomeCore]
		}
		out.VCPUs[slotID].Split = vi.Split
		out.VCPUs[slotID].UtilizationPPM = vi.UtilizationPPM
		out.VCPUs[slotID].LatencyGoal = vi.LatencyGoal
	}
	out.Cores = make([]table.CoreTable, s.cores)
	for c := range out.Cores {
		out.Cores[c].Core = c
	}
	transplanted := true
	for c := range in.Cores {
		src := &in.Cores[c]
		phys := online[src.Core]
		dst := &out.Cores[phys]
		dst.Allocs = make([]table.Alloc, len(src.Allocs))
		for i, a := range src.Allocs {
			v := a.VCPU
			if v != table.Idle {
				v = specSlot[v]
			}
			dst.Allocs[i] = table.Alloc{Start: a.Start, End: a.End, VCPU: v}
		}
		if !dst.TransplantSlices(src) {
			transplanted = false
		}
	}
	if !trusted {
		if err := out.Validate(); err != nil {
			return nil, fmt.Errorf("core: remapped table invalid: %w", err)
		}
	}
	if !trusted || !transplanted {
		if err := out.BuildSlices(s.plannerOpts.MaxSlicesPerCore); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// BuildDispatcher plans the current population and returns a dispatcher
// enacting the result, ready to attach to a vmm machine with one vCPU
// per slot.
func (s *System) BuildDispatcher() (*dispatch.Dispatcher, *planner.Result, error) {
	tbl, res, err := s.Plan()
	if err != nil {
		return nil, nil, err
	}
	return dispatch.New(tbl, s.dispatchOpts), res, nil
}

// Push replans and stages the new table on a live sink: the paper's
// reconfiguration path (planner daemon regenerates, pushes via
// hypercall, dispatcher switches at a safe boundary). The plan and the
// install happen under the system lock, so concurrent pushes cannot
// interleave a stale table after a fresher one.
func (s *System) Push(d TableSink) (*planner.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tbl, res, err := s.planLocked(nil)
	if err != nil {
		return nil, err
	}
	if err := d.PushTable(tbl); err != nil {
		return nil, err
	}
	return res, nil
}

// EmergencyReplan is the control plane's fail-stop reaction: mark the
// core failed, replan the whole population onto the survivors, and
// stage the recovery table on the live sink. The planner's admission
// check gates the recovery — if the surviving cores cannot carry the
// reserved utilization, the error is returned and the dispatcher stays
// in best-effort degraded mode (the core remains marked failed either
// way, so a later retry plans on the same surviving set).
func (s *System) EmergencyReplan(d TableSink, core int) (*planner.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.markCoreFailedLocked(core); err != nil {
		return nil, err
	}
	tbl, res, err := s.planLocked(nil)
	if err != nil {
		return nil, err
	}
	if err := d.PushTable(tbl); err != nil {
		return nil, err
	}
	return res, nil
}
