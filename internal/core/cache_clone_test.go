package core

import (
	"reflect"
	"testing"

	"tableau/internal/dispatch"
	"tableau/internal/planner"
)

// splitHeavySystem builds a system whose population forces C=D
// splitting (three 2/3-utilization vCPUs on two cores): the planner
// result then carries non-empty Tasks and Splits, the slices whose
// cache aliasing this test pins.
func splitHeavySystem(t *testing.T, cache *planner.Cache) *System {
	t.Helper()
	sys := NewSystem(2, planner.Options{}, dispatch.Options{})
	sys.Cache = cache
	for _, name := range []string{"a", "b", "c"} {
		if _, err := sys.AddVM(VMConfig{
			Name:        name,
			Util:        Util{Num: 2, Den: 3},
			LatencyGoal: 10_000_000,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

// TestCacheHitResultIsDeepClone pins System.plan's clone-on-hit: a
// caller mutating every mutable slice of a Plan result — guarantees,
// tasks, split core lists, cluster cores — must not corrupt the cached
// Result that later cache hits are served from.
func TestCacheHitResultIsDeepClone(t *testing.T) {
	cache := planner.NewCache(0)

	first := splitHeavySystem(t, cache)
	_, res1, err := first.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Splits) == 0 || len(res1.Tasks) == 0 {
		t.Fatalf("population did not force splitting (splits=%d tasks=%d); the aliasing test needs those slices populated",
			len(res1.Splits), len(res1.Tasks))
	}
	pristine := res1.Clone()

	// Trash every slice a caller can reach on the returned result.
	for i := range res1.Guarantees {
		res1.Guarantees[i].VCPU = 999
		res1.Guarantees[i].Service = -1
	}
	for i := range res1.Tasks {
		res1.Tasks[i].WCET = 1
		res1.Tasks[i].Name = "clobbered"
	}
	for i := range res1.Splits {
		res1.Splits[i].VCPU = 999
		for k := range res1.Splits[i].Cores {
			res1.Splits[i].Cores[k] = 999
		}
	}
	for i := range res1.ClusterCores {
		res1.ClusterCores[i] = 999
	}

	// A second system planning the identical population must be served
	// from the cache — and see the planner's numbers, not ours.
	second := splitHeavySystem(t, cache)
	_, res2, err := second.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := cache.Stats(); hits == 0 {
		t.Fatal("second plan did not hit the cache; the clone-on-hit property was not exercised")
	}
	if !reflect.DeepEqual(res2.Tasks, pristine.Tasks) {
		t.Errorf("cache-served Tasks were corrupted by the first caller:\n%+v\nwant\n%+v", res2.Tasks, pristine.Tasks)
	}
	if !reflect.DeepEqual(res2.Splits, pristine.Splits) {
		t.Errorf("cache-served Splits were corrupted by the first caller:\n%+v\nwant\n%+v", res2.Splits, pristine.Splits)
	}
	if !reflect.DeepEqual(res2.ClusterCores, pristine.ClusterCores) {
		t.Errorf("cache-served ClusterCores were corrupted by the first caller:\n%+v\nwant\n%+v", res2.ClusterCores, pristine.ClusterCores)
	}
	for _, g := range res2.Guarantees {
		if g.VCPU == 999 || g.Service < 0 {
			t.Errorf("cache-served guarantee was corrupted by the first caller: %+v", g)
		}
	}
}

// TestResultCloneIsDeep pins planner.Result.Clone directly: mutating
// the clone must leave the original untouched.
func TestResultCloneIsDeep(t *testing.T) {
	specs := []planner.VCPUSpec{
		{Name: "a", Util: planner.Util{Num: 2, Den: 3}, LatencyGoal: 10_000_000},
		{Name: "b", Util: planner.Util{Num: 2, Den: 3}, LatencyGoal: 10_000_000},
		{Name: "c", Util: planner.Util{Num: 2, Den: 3}, LatencyGoal: 10_000_000},
	}
	orig, err := planner.Plan(specs, planner.Options{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := orig.Clone()
	got := orig.Clone()
	for i := range got.Guarantees {
		got.Guarantees[i].VCPU = 999
	}
	for i := range got.Tasks {
		got.Tasks[i].WCET = 1
	}
	for i := range got.Splits {
		for k := range got.Splits[i].Cores {
			got.Splits[i].Cores[k] = 999
		}
	}
	for i := range got.ClusterCores {
		got.ClusterCores[i] = 999
	}
	if !reflect.DeepEqual(orig.Guarantees, want.Guarantees) ||
		!reflect.DeepEqual(orig.Tasks, want.Tasks) ||
		!reflect.DeepEqual(orig.Splits, want.Splits) ||
		!reflect.DeepEqual(orig.ClusterCores, want.ClusterCores) {
		t.Fatal("mutating a clone reached through to the original result")
	}
}
