// Package trace is a low-overhead binary scheduling tracer modeled on
// xentrace: fixed-size per-pCPU ring buffers of small typed records,
// stamped with simulated time and written with no allocation on the
// emit path. The instrumented components (the machine, the dispatcher,
// the second-level scheduler, the fault injector, the planner client)
// call Emit at each scheduling-relevant transition; everything above —
// live metrics, offline analysis, the tableau-trace CLI — is derived
// from the same record stream, so the numbers an experiment reports and
// the numbers decoded from a dumped trace cannot drift apart.
//
// The tracer is nil-safe: a nil *Tracer accepts (and discards) Emit
// calls, so instrumentation sites need no flag checks beyond the
// pointer test the compiler already inlines. Rings overwrite their
// oldest records when full, like xentrace's t_bufs; the per-ring lost
// count preserves how much history scrolled away.
package trace

// Event types. The numeric values are part of the binary trace format
// (encode.go) and must never be renumbered — append only.
const (
	// EvRunstateChange records a vCPU runstate transition.
	// VCPU = the vCPU; Arg0 = old state; Arg1 = new state (State*).
	EvRunstateChange uint8 = 1
	// EvContextSwitch records a pCPU switching vCPU context.
	// VCPU = incoming vCPU or -1 for idle; Arg0 = outgoing vCPU or -1.
	EvContextSwitch uint8 = 2
	// EvTableSwitch records a core adopting a staged table.
	// Arg0 = adopted generation; Arg1 = activation cycle index.
	EvTableSwitch uint8 = 3
	// EvIPI records a kick. VCPU = -1; Arg0 = disposition (IPI*);
	// Arg1 = delivery delay in ns for IPIDelayed, else 0. CPU is the
	// kicked core.
	EvIPI uint8 = 4
	// EvFaultInjected records a fault taking effect. Arg0 = fault kind
	// (Fault*); Arg1 = kind-specific magnitude (duration or delay, ns).
	EvFaultInjected uint8 = 5
	// EvL2Pick records a second-level dispatch. VCPU = the vCPU;
	// Arg0 = remaining budget in ns.
	EvL2Pick uint8 = 6
	// EvPlannerCall records a new table staged by the control plane.
	// Arg0 = staged generation; Arg1 = activation cycle index.
	EvPlannerCall uint8 = 7
	// EvMigrate records a vCPU picked up by a core other than the one
	// it last ran on. VCPU = the vCPU; Arg0 = previous core or -1;
	// Arg1 = 1 for an explicit scheduler work-steal, 0 for a placement
	// migration observed by the machine at dispatch.
	EvMigrate uint8 = 8
	// EvPlanOrigin annotates an installed epoch with where its plan
	// came from (emitted by the controller alongside the dispatcher's
	// plannercall record). Arg0 = origin (PlanOrigin*); Arg1 = cores
	// whose assignments were pinned from the previous plan.
	EvPlanOrigin uint8 = 9
)

// evMax bounds the valid event type range for decoders.
const evMax = EvPlanOrigin

// Plan origins carried by EvPlanOrigin Arg0.
const (
	PlanOriginScratch     int64 = 0
	PlanOriginCached      int64 = 1
	PlanOriginIncremental int64 = 2
	PlanOriginSpeculative int64 = 3
)

// PlanOriginName returns the mnemonic for an EvPlanOrigin Arg0.
func PlanOriginName(o int64) string {
	switch o {
	case PlanOriginScratch:
		return "scratch"
	case PlanOriginCached:
		return "cached"
	case PlanOriginIncremental:
		return "incremental"
	case PlanOriginSpeculative:
		return "speculative"
	}
	return "unknown"
}

// Runstate codes carried by EvRunstateChange. These deliberately
// mirror (but do not import) vmm's vCPU states, keeping the trace
// format self-contained.
const (
	StateRunnable int64 = 0
	StateRunning  int64 = 1
	StateBlocked  int64 = 2
	StateDead     int64 = 3
)

// IPI dispositions carried by EvIPI.
const (
	IPISent    int64 = 0
	IPIDropped int64 = 1
	IPIDelayed int64 = 2
)

// Fault kinds carried by EvFaultInjected.
const (
	FaultFailStop   int64 = 0
	FaultStall      int64 = 1
	FaultTimerDrift int64 = 2
	FaultIPIDrop    int64 = 3
	FaultIPIDelay   int64 = 4
	FaultNICDrop    int64 = 5
	// FaultPlannerOutage marks a remote-planner outage window opening: a
	// control-plane fault, so the record rides the control ring (core -1).
	FaultPlannerOutage int64 = 6
)

// FaultKindName returns the mnemonic for an EvFaultInjected Arg0.
func FaultKindName(k int64) string {
	switch k {
	case FaultFailStop:
		return "failstop"
	case FaultStall:
		return "stall"
	case FaultTimerDrift:
		return "timerdrift"
	case FaultIPIDrop:
		return "ipidrop"
	case FaultIPIDelay:
		return "ipidelay"
	case FaultNICDrop:
		return "nicdrop"
	case FaultPlannerOutage:
		return "planneroutage"
	}
	return "unknown"
}

// EventName returns the mnemonic for a record type.
func EventName(t uint8) string {
	switch t {
	case EvRunstateChange:
		return "runstate"
	case EvContextSwitch:
		return "ctxswitch"
	case EvTableSwitch:
		return "tableswitch"
	case EvIPI:
		return "ipi"
	case EvFaultInjected:
		return "fault"
	case EvL2Pick:
		return "l2pick"
	case EvPlannerCall:
		return "plannercall"
	case EvMigrate:
		return "migrate"
	case EvPlanOrigin:
		return "planorigin"
	}
	return "unknown"
}

// EventByName is the inverse of EventName; it returns 0 for an unknown
// mnemonic.
func EventByName(s string) uint8 {
	for t := uint8(1); t <= evMax; t++ {
		if EventName(t) == s {
			return t
		}
	}
	return 0
}

// StateName returns the mnemonic for a runstate code.
func StateName(s int64) string {
	switch s {
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateDead:
		return "dead"
	}
	return "unknown"
}

// ControlCPU is the CPU field value for records emitted outside any
// core's context (planner calls, machine-wide faults).
const ControlCPU = 0xFFFF

// Record is one trace entry: 40 bytes, fixed layout, no pointers.
// Slices of Record are written to rings in place; the emit path never
// allocates. Seq is a machine-global emission counter: simulated time
// alone cannot totally order records (two cores can act in the same
// nanosecond), and metrics replayed offline must observe records in
// exactly the order the live tracer did.
type Record struct {
	Time  int64  // simulated nanoseconds
	Seq   uint64 // machine-global emission order
	Arg0  int64  // event-specific (see Ev* docs)
	Arg1  int64  // event-specific
	VCPU  int32  // subject vCPU id, -1 when not about a vCPU
	CPU   uint16
	Type  uint8
	Flags uint8 // Flag* bits; 0 for records about no or an LS vCPU
}

// FlagBestEffort marks a record whose subject vCPU is best-effort
// (tenancy class BE). Stamped at emission from the tracer's class
// registry (SetBestEffort), so per-class analyses can split a decoded
// dump without access to the live population. Records about LS vCPUs —
// and every record from a run with no registry — carry Flags == 0,
// keeping pre-class dumps bit-identical.
const FlagBestEffort uint8 = 1 << 0

// ring is one per-CPU buffer. n counts records ever emitted; when
// n > len(buf) the oldest records have been overwritten. Capacity is a
// power of two so the wrap is a mask, not a division, on the emit path.
type ring struct {
	buf  []Record
	mask uint64 // len(buf) - 1
	n    uint64
}

func (r *ring) put(rec Record) {
	r.buf[r.n&r.mask] = rec
	r.n++
}

// count returns how many records the ring currently holds.
func (r *ring) count() int {
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// lost returns how many records were overwritten.
func (r *ring) lost() uint64 {
	if r.n <= uint64(len(r.buf)) {
		return 0
	}
	return r.n - uint64(len(r.buf))
}

// snapshot appends the ring's live records in emission order.
func (r *ring) snapshot(dst []Record) []Record {
	if r.n <= uint64(len(r.buf)) {
		return append(dst, r.buf[:r.n]...)
	}
	head := int(r.n & r.mask)
	dst = append(dst, r.buf[head:]...)
	return append(dst, r.buf[:head]...)
}

// DefaultRingSize is the per-CPU ring capacity when New is given 0.
const DefaultRingSize = 1 << 15

// Tracer collects records into per-pCPU rings and keeps always-on
// derived metrics. The zero value is not usable; call New. A Tracer is
// bound to a machine topology by Bind, which the machine calls at
// Start; Emit before Bind is discarded (the topology is unknown).
//
// A Tracer is not safe for concurrent use. The simulator is
// single-threaded per machine; parallel experiment runners give each
// machine its own Tracer.
type Tracer struct {
	ringSize int
	rings    []ring // one per pCPU, plus one control ring at the end
	seq      uint64 // next Record.Seq
	endTime  int64  // latest FlushResidency instant, recorded in dumps
	nvcpus   int
	metrics  Metrics // cache of the last replay; valid when !dirty
	dirty    bool
	bound    bool

	// be[v] marks vCPU v best-effort; Emit stamps FlagBestEffort on its
	// records. Set via SetBestEffort; survives Bind (class is population
	// configuration, not per-run state).
	be []bool
}

// New creates a tracer whose per-CPU rings hold ringSize records each
// (DefaultRingSize when ringSize <= 0; rounded up to a power of two so
// ring wrap stays a mask).
func New(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	p := 1
	for p < ringSize {
		p <<= 1
	}
	return &Tracer{ringSize: p}
}

// Bind sizes the rings and metrics for a machine with ncpus pCPUs and
// nvcpus vCPUs. The machine calls this from Start; calling it again
// resets the tracer.
func (t *Tracer) Bind(ncpus, nvcpus int) {
	if t == nil {
		return
	}
	t.rings = make([]ring, ncpus+1) // last ring is the control ring
	for i := range t.rings {
		t.rings[i] = ring{buf: make([]Record, t.ringSize), mask: uint64(t.ringSize - 1)}
	}
	t.seq = 0
	t.endTime = 0
	t.nvcpus = nvcpus
	t.metrics.reset(nvcpus)
	t.dirty = false
	t.bound = true
}

// SetBestEffort installs the per-vCPU tenancy classes (true = BE),
// indexed by vCPU id. Emit stamps FlagBestEffort on records about BE
// vCPUs from then on. nil clears the registry (all LS).
func (t *Tracer) SetBestEffort(be []bool) {
	if t == nil {
		return
	}
	if be == nil {
		t.be = nil
		return
	}
	t.be = append(t.be[:0], be...)
}

// Emit appends a record. cpu < 0 (or out of range) routes to the
// control ring and is stored as ControlCPU. Emit on a nil or unbound
// tracer is a no-op, so instrumentation sites stay branch-cheap. Emit
// only logs — metrics are derived lazily by Metrics(), keeping the
// sim hot path at a single ring store.
func (t *Tracer) Emit(typ uint8, cpu int, now int64, vcpu int, arg0, arg1 int64) {
	if t == nil || !t.bound {
		return
	}
	rec := Record{Time: now, Seq: t.seq, Arg0: arg0, Arg1: arg1, VCPU: int32(vcpu), Type: typ}
	if vcpu >= 0 && vcpu < len(t.be) && t.be[vcpu] {
		rec.Flags = FlagBestEffort
	}
	t.seq++
	ri := len(t.rings) - 1
	if cpu >= 0 && cpu < len(t.rings)-1 {
		rec.CPU = uint16(cpu)
		ri = cpu
	} else {
		rec.CPU = ControlCPU
	}
	t.rings[ri].put(rec)
	t.dirty = true
}

// Metrics derives the tracer's metrics by replaying the rings through
// the same path Analyze uses on a decoded dump — live numbers and
// offline summaries of the same trace are equal by construction. The
// replay is cached until the next Emit. If rings have overwritten
// records the result is partial, exactly like an offline analysis of
// the overwritten dump. Call FlushResidency first if residency up to
// "now" matters.
func (t *Tracer) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	if t.dirty {
		replayRecords(&t.metrics, t.nvcpus, t.Merged(), t.endTime)
		t.dirty = false
	}
	return &t.metrics
}

// FlushResidency marks the end of the traced run: residency totals in
// Metrics() and in offline analyses of the encoded dump are charged up
// to now.
func (t *Tracer) FlushResidency(now int64) {
	if t == nil || !t.bound {
		return
	}
	if now > t.endTime {
		t.endTime = now
		t.dirty = true
	}
}

// NumCPUs returns the number of pCPU rings (excluding the control
// ring), or 0 when unbound.
func (t *Tracer) NumCPUs() int {
	if t == nil || !t.bound {
		return 0
	}
	return len(t.rings) - 1
}

// Merged returns every live record from all rings merged into one
// stream in emission (Seq) order — the exact order the live metrics
// observed them.
func (t *Tracer) Merged() []Record {
	if t == nil || !t.bound {
		return nil
	}
	perRing := make([][]Record, len(t.rings))
	total := 0
	for i := range t.rings {
		perRing[i] = t.rings[i].snapshot(nil)
		total += len(perRing[i])
	}
	return mergeRecords(perRing, total)
}

// mergeRecords k-way merges per-ring record slices, each already in
// Seq order, into one Seq-ordered stream.
func mergeRecords(perRing [][]Record, total int) []Record {
	out := make([]Record, 0, total)
	idx := make([]int, len(perRing))
	for len(out) < total {
		best := -1
		for r := range perRing {
			if idx[r] >= len(perRing[r]) {
				continue
			}
			if best == -1 || perRing[r][idx[r]].Seq < perRing[best][idx[best]].Seq {
				best = r
			}
		}
		out = append(out, perRing[best][idx[best]])
		idx[best]++
	}
	return out
}
