package trace

import (
	"bytes"
	"testing"
	"unsafe"
)

func TestRecordSizeMatchesFormat(t *testing.T) {
	if got := unsafe.Sizeof(Record{}); got != recordSize {
		t.Fatalf("Record is %d bytes in memory, format says %d", got, recordSize)
	}
}

func TestNilAndUnboundTracerAreNoOps(t *testing.T) {
	var nilT *Tracer
	nilT.Emit(EvIPI, 0, 1, -1, IPISent, 0) // must not panic
	nilT.FlushResidency(10)
	if nilT.Merged() != nil {
		t.Error("nil tracer returned records")
	}
	unbound := New(16)
	unbound.Emit(EvIPI, 0, 1, -1, IPISent, 0)
	if unbound.Merged() != nil {
		t.Error("unbound tracer accepted records")
	}
}

func TestEmitRoutesRings(t *testing.T) {
	tr := New(16)
	tr.Bind(2, 1)
	tr.Emit(EvIPI, 0, 10, -1, IPISent, 0)
	tr.Emit(EvIPI, 1, 20, -1, IPISent, 0)
	tr.Emit(EvPlannerCall, -1, 30, -1, 5, 2) // control ring
	tr.Emit(EvPlannerCall, 99, 40, -1, 6, 3) // out of range → control ring
	recs := tr.Merged()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	wantCPU := []uint16{0, 1, ControlCPU, ControlCPU}
	for i, r := range recs {
		if r.CPU != wantCPU[i] {
			t.Errorf("record %d: CPU = %d, want %d", i, r.CPU, wantCPU[i])
		}
		if r.Seq != uint64(i) {
			t.Errorf("record %d: Seq = %d, want %d", i, r.Seq, i)
		}
	}
}

func TestRingWrapKeepsNewestAndCountsLost(t *testing.T) {
	tr := New(4)
	tr.Bind(1, 1)
	for i := 0; i < 10; i++ {
		tr.Emit(EvIPI, 0, int64(i), -1, IPISent, 0)
	}
	recs := tr.Merged()
	if len(recs) != 4 {
		t.Fatalf("ring of 4 holds %d records", len(recs))
	}
	for i, r := range recs {
		if want := int64(6 + i); r.Time != want {
			t.Errorf("record %d: Time = %d, want %d (oldest survivors)", i, r.Time, want)
		}
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rings[0].Lost != 6 {
		t.Errorf("lost = %d, want 6", d.Rings[0].Lost)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := New(64)
	tr.Bind(3, 2)
	tr.Emit(EvRunstateChange, 0, 100, 0, StateRunnable, StateRunning)
	tr.Emit(EvContextSwitch, 1, 150, 1, -1, 0)
	tr.Emit(EvTableSwitch, 2, 200, -1, 7, 3)
	tr.Emit(EvPlannerCall, -1, 250, -1, 7, 3)
	tr.Emit(EvFaultInjected, 1, 300, -1, FaultStall, 5000)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Version != Version || d.NCPUs != 3 || d.NVCPUs != 2 || len(d.Rings) != 4 {
		t.Fatalf("header mismatch: %+v", d)
	}
	live := tr.Merged()
	decoded := d.Merged()
	if len(live) != len(decoded) {
		t.Fatalf("live %d records, decoded %d", len(live), len(decoded))
	}
	for i := range live {
		if live[i] != decoded[i] {
			t.Errorf("record %d: live %+v, decoded %+v", i, live[i], decoded[i])
		}
	}
	// Determinism at the byte level: encoding again is identical.
	var buf2 bytes.Buffer
	if err := tr.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-encoding the same tracer changed bytes")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("NOTATRACE....."))); err == nil {
		t.Error("bad magic accepted")
	}
	tr := New(8)
	tr.Bind(1, 1)
	tr.Emit(EvIPI, 0, 1, -1, IPISent, 0)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the first record's type byte (offset 38 within the
	// record) to an unknown value.
	b[headerSize+ringHdrLen+38] = 200
	if _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Error("unknown record type accepted")
	}
	// Truncated stream.
	if _, err := Decode(bytes.NewReader(buf.Bytes()[:headerSize+4])); err == nil {
		t.Error("truncated dump accepted")
	}
}

func TestMergedInterleavesBySeq(t *testing.T) {
	tr := New(16)
	tr.Bind(2, 1)
	// Same timestamp across rings: Seq must decide, preserving emission
	// order exactly.
	tr.Emit(EvIPI, 1, 50, -1, IPISent, 0)
	tr.Emit(EvIPI, 0, 50, -1, IPISent, 0)
	tr.Emit(EvIPI, 1, 50, -1, IPISent, 0)
	recs := tr.Merged()
	want := []uint16{1, 0, 1}
	for i, r := range recs {
		if r.CPU != want[i] {
			t.Fatalf("merged order wrong at %d: CPU %d, want %d", i, r.CPU, want[i])
		}
	}
}

func TestMetricsFromRecords(t *testing.T) {
	tr := New(64)
	tr.Bind(1, 2)
	// vCPU 0: runnable from 0, dispatched at 100, runs until blocked at
	// 400, woken at 600, dispatched again at 650.
	tr.Emit(EvRunstateChange, 0, 100, 0, StateRunnable, StateRunning)
	tr.Emit(EvRunstateChange, 0, 400, 0, StateRunning, StateBlocked)
	tr.Emit(EvRunstateChange, 0, 600, 0, StateBlocked, StateRunnable)
	tr.Emit(EvRunstateChange, 0, 650, 0, StateRunnable, StateRunning)
	tr.Emit(EvL2Pick, 0, 650, 0, 1234, 0)
	tr.Emit(EvIPI, 0, 660, -1, IPIDropped, 0)
	tr.Emit(EvIPI, 0, 661, -1, IPIDelayed, 40)
	tr.Emit(EvIPI, 0, 662, -1, IPISent, 0)
	tr.Emit(EvTableSwitch, 0, 700, -1, 2, 1)
	tr.FlushResidency(1000)
	m := tr.Metrics()
	vm := &m.VMs[0]
	if vm.SchedLatency.Count() != 2 {
		t.Fatalf("latency samples = %d, want 2", vm.SchedLatency.Count())
	}
	if got := vm.SchedLatency.Max(); got != 100 {
		t.Errorf("max latency = %d, want 100", got)
	}
	if vm.RunNs != 300+350 {
		t.Errorf("RunNs = %d, want 650", vm.RunNs)
	}
	if vm.BlockedNs != 200 {
		t.Errorf("BlockedNs = %d, want 200", vm.BlockedNs)
	}
	if vm.RunnableNs != 100+50 {
		t.Errorf("RunnableNs = %d, want 150", vm.RunnableNs)
	}
	if vm.Wakeups != 1 || vm.ContextSwitches != 2 || vm.L2Picks != 1 {
		t.Errorf("counts: wakeups=%d ctx=%d l2=%d", vm.Wakeups, vm.ContextSwitches, vm.L2Picks)
	}
	if m.IPIsDropped != 1 || m.IPIsDelayed != 1 || m.IPIsSent != 1 {
		t.Errorf("IPI counts: %d/%d/%d", m.IPIsSent, m.IPIsDropped, m.IPIsDelayed)
	}
	if m.TableSwitches != 1 {
		t.Errorf("TableSwitches = %d", m.TableSwitches)
	}
	// vCPU 1 never left Runnable: all residency is runnable time.
	if m.VMs[1].RunnableNs != 1000 {
		t.Errorf("idle vCPU RunnableNs = %d, want 1000", m.VMs[1].RunnableNs)
	}
}

// TestAnalyzeMatchesLiveMetrics replays an encoded dump offline and
// checks the derived metrics agree with the live ones exactly — they
// run the same observe path in the same order.
func TestAnalyzeMatchesLiveMetrics(t *testing.T) {
	tr := New(256)
	tr.Bind(2, 2)
	seq := []struct {
		typ  uint8
		cpu  int
		now  int64
		vcpu int
		a, b int64
	}{
		{EvRunstateChange, 0, 10, 0, StateRunnable, StateRunning},
		{EvRunstateChange, 1, 10, 1, StateRunnable, StateRunning},
		{EvRunstateChange, 0, 300, 0, StateRunning, StateBlocked},
		{EvRunstateChange, 1, 350, 0, StateBlocked, StateRunnable},
		{EvRunstateChange, 0, 350, 0, StateRunnable, StateRunning},
		{EvTableSwitch, 0, 400, -1, 2, 1},
		{EvTableSwitch, 1, 400, -1, 2, 1},
		{EvIPI, 1, 420, -1, IPISent, 0},
	}
	var last int64
	for _, e := range seq {
		tr.Emit(e.typ, e.cpu, e.now, e.vcpu, e.a, e.b)
		last = e.now
	}
	tr.FlushResidency(last)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	off := Analyze(d)
	live := tr.Metrics()
	if off.TableSwitches != live.TableSwitches || off.IPIsSent != live.IPIsSent {
		t.Errorf("global counters diverge: offline %+v live %+v", off, live)
	}
	for v := range live.VMs {
		lv, ov := &live.VMs[v], &off.VMs[v]
		if lv.RunNs != ov.RunNs || lv.RunnableNs != ov.RunnableNs || lv.BlockedNs != ov.BlockedNs {
			t.Errorf("vCPU %d residency diverges: live %+v offline %+v", v, lv, ov)
		}
		if lv.SchedLatency.Count() != ov.SchedLatency.Count() || lv.SchedLatency.Max() != ov.SchedLatency.Max() {
			t.Errorf("vCPU %d latency diverges: live n=%d max=%d, offline n=%d max=%d",
				v, lv.SchedLatency.Count(), lv.SchedLatency.Max(), ov.SchedLatency.Count(), ov.SchedLatency.Max())
		}
	}
}

func BenchmarkEmit(b *testing.B) {
	tr := New(1 << 15)
	tr.Bind(4, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(EvRunstateChange, i&3, int64(i), i&7, StateRunnable, StateRunning)
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(EvRunstateChange, i&3, int64(i), i&7, StateRunnable, StateRunning)
	}
}

func TestEmitDoesNotAllocate(t *testing.T) {
	tr := New(1 << 10)
	tr.Bind(2, 2)
	avg := testing.AllocsPerRun(1000, func() {
		tr.Emit(EvRunstateChange, 0, 1, 0, StateRunnable, StateRunning)
	})
	if avg != 0 {
		t.Errorf("Emit allocates %.1f times per call, want 0", avg)
	}
}
