package trace_test

// The TBTRACE1 decoder reads dumps that crossed a file system
// (cmd/tableau-trace, fig5trace -trace-out), so it must hold up
// against truncated, bit-flipped, and adversarial inputs: never panic,
// never let a hostile ring header force a huge allocation, and every
// accepted dump must survive Analyze. The committed seed corpus under
// testdata/fuzz/FuzzTraceDecode is regenerated with
// `go test -run TestTraceFuzzCorpus -update` and covers canonical
// encodings plus structured mutations of them. Run the fuzzer with
// `make fuzz` (or `go test -fuzz FuzzTraceDecode`).

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tableau/internal/trace"
)

var updateCorpus = flag.Bool("update", false, "rewrite the committed fuzz seed corpus")

// corpusDumps builds canonical TBTRACE1 dumps: a populated multi-ring
// trace, an empty bound tracer, and a ring that wrapped (Lost > 0).
func corpusDumps(tb testing.TB) [][]byte {
	tb.Helper()
	var out [][]byte
	encode := func(t *trace.Tracer) {
		var buf bytes.Buffer
		if err := t.Encode(&buf); err != nil {
			tb.Fatal(err)
		}
		out = append(out, buf.Bytes())
	}

	t := trace.New(16)
	t.Bind(2, 3)
	t.Emit(trace.EvRunstateChange, 0, 100, 0, trace.StateRunnable, trace.StateRunning)
	t.Emit(trace.EvContextSwitch, 0, 100, 0, -1, 0)
	t.Emit(trace.EvIPI, 1, 250, -1, trace.IPISent, 0)
	t.Emit(trace.EvRunstateChange, 1, 300, 1, trace.StateRunnable, trace.StateRunning)
	t.Emit(trace.EvRunstateChange, 0, 400, 0, trace.StateRunning, trace.StateBlocked)
	t.Emit(trace.EvTableSwitch, -1, 500, -1, 2, 0)
	t.Emit(trace.EvPlannerCall, -1, 500, -1, 2, 1)
	t.Emit(trace.EvFaultInjected, 1, 600, -1, trace.FaultStall, 1000)
	t.Emit(trace.EvL2Pick, 1, 700, 2, 5000, 0)
	t.Emit(trace.EvMigrate, 0, 800, 1, 1, 1)
	t.FlushResidency(1000)
	encode(t)

	empty := trace.New(8)
	empty.Bind(1, 1)
	encode(empty)

	wrapped := trace.New(4)
	wrapped.Bind(1, 2)
	for i := int64(0); i < 12; i++ {
		wrapped.Emit(trace.EvContextSwitch, 0, i*10, int(i%2), -1, 0)
	}
	wrapped.FlushResidency(120)
	encode(wrapped)

	return out
}

// mutateDumps derives deterministic structured mutations — truncations
// and bit flips — that steer the fuzzer into every section of the
// format (header, ring header, record fields).
func mutateDumps(canonical [][]byte) [][]byte {
	var out [][]byte
	for _, enc := range canonical {
		out = append(out, enc[:len(enc)/2], enc[:len(enc)-1])
		for _, pos := range []int{9, 13, len(enc) / 3, 2 * len(enc) / 3} {
			if pos >= len(enc) {
				continue
			}
			flipped := append([]byte(nil), enc...)
			flipped[pos] ^= 0x40
			out = append(out, flipped)
		}
	}
	return out
}

func corpusEntries(tb testing.TB) [][]byte {
	canonical := corpusDumps(tb)
	return append(canonical, mutateDumps(canonical)...)
}

// TestTraceFuzzCorpus pins the committed seed corpus to the canonical
// dumps above: with -update it rewrites the files, otherwise it fails
// if they have drifted (e.g. after a format change).
func TestTraceFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzTraceDecode")
	for i, enc := range corpusEntries(t) {
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", enc)
		if *updateCorpus {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (regenerate with `go test -run TestTraceFuzzCorpus -update`)", err)
		}
		if string(got) != want {
			t.Fatalf("%s drifted from the canonical encoding (regenerate with `go test -run TestTraceFuzzCorpus -update`)", path)
		}
	}
}

func FuzzTraceDecode(f *testing.F) {
	for _, enc := range corpusEntries(f) {
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := trace.Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted dumps must be analyzable: Merged, Lost, and the full
		// metrics replay may not panic whatever the record contents.
		if got, want := len(d.Merged()), totalRecords(d); got != want {
			t.Fatalf("Merged returned %d records, rings hold %d", got, want)
		}
		_ = d.Lost()
		m := trace.Analyze(d)
		if m == nil {
			t.Fatal("Analyze returned nil for a decoded dump")
		}
		if len(m.VMs) != d.NVCPUs {
			t.Fatalf("Analyze sized %d vCPUs, header says %d", len(m.VMs), d.NVCPUs)
		}
	})
}

func totalRecords(d *trace.TraceData) int {
	n := 0
	for _, r := range d.Rings {
		n += len(r.Records)
	}
	return n
}
