package trace

import "tableau/internal/stats"

// Metrics are the statistics derived from a record stream: per-VM
// scheduling-latency histograms, runstate residency, and global
// protocol counters. They are never maintained on the emit path —
// Tracer.Metrics and Analyze both replay the stream through the same
// observe function, so live metrics and offline summaries of the same
// trace agree exactly.
type Metrics struct {
	VMs []VMMetrics

	TableSwitches   int64
	PlannerCalls    int64
	IPIsSent        int64
	IPIsDropped     int64
	IPIsDelayed     int64
	FaultsInjected  int64
	ContextSwitches int64

	// Plan-origin counters (EvPlanOrigin): how each installed epoch's
	// table was produced, and the total cores reused verbatim from the
	// previous plan across incremental epochs.
	PlansScratch     int64
	PlansCached      int64
	PlansIncremental int64
	PlansSpeculative int64
	PinnedCores      int64

	// lastState/lastAt track each vCPU's current runstate for residency
	// and latency accounting. Initial state is Runnable at t=0, matching
	// the machine's vCPU construction.
	lastState []int64
	lastAt    []int64
}

// VMMetrics are one vCPU's derived statistics.
type VMMetrics struct {
	// SchedLatency is the runnable→running wait, one sample per
	// dispatch: the paper's scheduling-latency metric (Fig. 5 CDFs).
	SchedLatency stats.Histogram
	// RunNs/RunnableNs/BlockedNs are total residency per runstate.
	RunNs      int64
	RunnableNs int64
	BlockedNs  int64
	// ContextSwitches counts dispatches of this vCPU (entries into
	// Running); Wakeups counts blocked→runnable transitions.
	ContextSwitches int64
	Wakeups         int64
	// L2Picks counts second-level dispatches.
	L2Picks int64
}

func (m *Metrics) reset(nvcpus int) {
	*m = Metrics{
		VMs:       make([]VMMetrics, nvcpus),
		lastState: make([]int64, nvcpus),
		lastAt:    make([]int64, nvcpus),
	}
	for i := range m.lastState {
		m.lastState[i] = StateRunnable
	}
}

// chargeResidency charges v's time in its current state up to now.
func (m *Metrics) chargeResidency(v int, now int64) {
	d := now - m.lastAt[v]
	if d <= 0 {
		return
	}
	vm := &m.VMs[v]
	switch m.lastState[v] {
	case StateRunning:
		vm.RunNs += d
	case StateRunnable:
		vm.RunnableNs += d
	case StateBlocked:
		vm.BlockedNs += d
	}
}

// observe folds one record into the metrics. It must remain a pure
// function of the record stream: Analyze replays it offline.
func (m *Metrics) observe(r *Record) {
	switch r.Type {
	case EvRunstateChange:
		v := int(r.VCPU)
		if v < 0 || v >= len(m.VMs) {
			return
		}
		m.chargeResidency(v, r.Time)
		vm := &m.VMs[v]
		if r.Arg1 == StateRunning && m.lastState[v] == StateRunnable {
			vm.SchedLatency.Record(r.Time - m.lastAt[v])
			vm.ContextSwitches++
		}
		if r.Arg0 == StateBlocked && r.Arg1 == StateRunnable {
			vm.Wakeups++
		}
		m.lastState[v] = r.Arg1
		m.lastAt[v] = r.Time
	case EvContextSwitch:
		m.ContextSwitches++
	case EvTableSwitch:
		m.TableSwitches++
	case EvPlannerCall:
		m.PlannerCalls++
	case EvPlanOrigin:
		switch r.Arg0 {
		case PlanOriginCached:
			m.PlansCached++
		case PlanOriginIncremental:
			m.PlansIncremental++
		case PlanOriginSpeculative:
			m.PlansSpeculative++
		default:
			m.PlansScratch++
		}
		m.PinnedCores += r.Arg1
	case EvIPI:
		switch r.Arg0 {
		case IPIDropped:
			m.IPIsDropped++
		case IPIDelayed:
			m.IPIsDelayed++
		default:
			m.IPIsSent++
		}
	case EvFaultInjected:
		m.FaultsInjected++
	case EvL2Pick:
		if v := int(r.VCPU); v >= 0 && v < len(m.VMs) {
			m.VMs[v].L2Picks++
		}
	}
}

func (m *Metrics) flushResidency(now int64) {
	for v := range m.VMs {
		m.chargeResidency(v, now)
		m.lastAt[v] = now
	}
}

// replayRecords folds a Seq-ordered record stream into m. Residency is
// flushed to endTime (or the last record's timestamp if later), so a
// producer that called FlushResidency at the end of its run yields the
// same totals whether the stream is replayed live or from a dump.
func replayRecords(m *Metrics, nvcpus int, recs []Record, endTime int64) {
	m.reset(nvcpus)
	for i := range recs {
		m.observe(&recs[i])
	}
	if len(recs) > 0 && recs[len(recs)-1].Time > endTime {
		endTime = recs[len(recs)-1].Time
	}
	if endTime > 0 {
		m.flushResidency(endTime)
	}
}

// Analyze replays a decoded dump through the exact observe path
// Tracer.Metrics uses and returns the resulting metrics — a dumped run
// summarizes to the numbers the live experiment reported. Note that a
// ring that overwrote records (Lost > 0) yields partial metrics —
// residency and latency before the surviving window are unknowable.
func Analyze(d *TraceData) *Metrics {
	var m Metrics
	replayRecords(&m, d.NVCPUs, d.Merged(), d.EndTime)
	return &m
}
