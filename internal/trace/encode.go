package trace

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format ("TBTRACE1"), all fields little-endian:
//
//	offset size  field
//	0      8     magic "TBTRACE1"
//	8      4     version (currently 1)
//	12     2     ncpus   (pCPU count; rings beyond it are control rings)
//	14     2     nvcpus
//	16     2     nrings
//	18     2     reserved (0)
//	20     8     end_time (int64 ns; residency-flush instant, 0 if never)
//
// followed by nrings ring sections, each:
//
//	0      2     cpu (ring's pCPU id, or ControlCPU)
//	2      2     reserved (0)
//	4      4     count (records that follow)
//	8      8     lost  (records overwritten before the dump)
//	16     40×count records, oldest first
//
// and each 40-byte record:
//
//	0      8     time (simulated ns, int64)
//	8      8     seq  (machine-global emission order, uint64)
//	16     8     arg0 (int64)
//	24     8     arg1 (int64)
//	32     4     vcpu (int32, -1 when not about a vCPU)
//	36     2     cpu  (uint16, ControlCPU for control records)
//	38     1     type (Ev*)
//	39     1     flags (reserved, 0)
//
// The format is append-only: new event types and trailing header fields
// may be added under a version bump, existing offsets never move.

var magic = [8]byte{'T', 'B', 'T', 'R', 'A', 'C', 'E', '1'}

// Version is the current trace format version.
const Version uint32 = 1

const (
	headerSize = 28
	ringHdrLen = 16
	recordSize = 40
)

func putRecord(b []byte, r *Record) {
	binary.LittleEndian.PutUint64(b[0:], uint64(r.Time))
	binary.LittleEndian.PutUint64(b[8:], r.Seq)
	binary.LittleEndian.PutUint64(b[16:], uint64(r.Arg0))
	binary.LittleEndian.PutUint64(b[24:], uint64(r.Arg1))
	binary.LittleEndian.PutUint32(b[32:], uint32(r.VCPU))
	binary.LittleEndian.PutUint16(b[36:], r.CPU)
	b[38] = r.Type
	b[39] = r.Flags
}

func getRecord(b []byte, r *Record) {
	r.Time = int64(binary.LittleEndian.Uint64(b[0:]))
	r.Seq = binary.LittleEndian.Uint64(b[8:])
	r.Arg0 = int64(binary.LittleEndian.Uint64(b[16:]))
	r.Arg1 = int64(binary.LittleEndian.Uint64(b[24:]))
	r.VCPU = int32(binary.LittleEndian.Uint32(b[32:]))
	r.CPU = binary.LittleEndian.Uint16(b[36:])
	r.Type = b[38]
	r.Flags = b[39]
}

// Encode writes the tracer's rings to w in the TBTRACE1 format. The
// dump is a pure function of ring contents: identical runs produce
// byte-identical dumps.
func (t *Tracer) Encode(w io.Writer) error {
	if t == nil || !t.bound {
		return fmt.Errorf("trace: encoding an unbound tracer")
	}
	var hdr [headerSize]byte
	copy(hdr[0:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], Version)
	binary.LittleEndian.PutUint16(hdr[12:], uint16(len(t.rings)-1))
	binary.LittleEndian.PutUint16(hdr[14:], uint16(len(t.metrics.VMs)))
	binary.LittleEndian.PutUint16(hdr[16:], uint16(len(t.rings)))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(t.endTime))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var scratch []Record
	var rh [ringHdrLen]byte
	var rb [recordSize]byte
	for i := range t.rings {
		r := &t.rings[i]
		cpu := uint16(i)
		if i == len(t.rings)-1 {
			cpu = ControlCPU
		}
		binary.LittleEndian.PutUint16(rh[0:], cpu)
		binary.LittleEndian.PutUint16(rh[2:], 0)
		binary.LittleEndian.PutUint32(rh[4:], uint32(r.count()))
		binary.LittleEndian.PutUint64(rh[8:], r.lost())
		if _, err := w.Write(rh[:]); err != nil {
			return err
		}
		scratch = r.snapshot(scratch[:0])
		for k := range scratch {
			putRecord(rb[:], &scratch[k])
			if _, err := w.Write(rb[:]); err != nil {
				return err
			}
		}
	}
	return nil
}

// RingData is one decoded ring section.
type RingData struct {
	CPU     uint16
	Lost    uint64
	Records []Record
}

// TraceData is a fully decoded trace dump.
type TraceData struct {
	Version uint32
	NCPUs   int
	NVCPUs  int
	// EndTime is the instant residency was flushed to before the dump
	// (the end of the traced run), 0 when the producer never flushed.
	EndTime int64
	Rings   []RingData
}

// Merged returns the dump's records merged across rings in the same
// deterministic order Tracer.Merged uses.
func (d *TraceData) Merged() []Record {
	perRing := make([][]Record, len(d.Rings))
	total := 0
	for i := range d.Rings {
		perRing[i] = d.Rings[i].Records
		total += len(perRing[i])
	}
	return mergeRecords(perRing, total)
}

// Lost sums overwritten-record counts across rings.
func (d *TraceData) Lost() uint64 {
	var n uint64
	for i := range d.Rings {
		n += d.Rings[i].Lost
	}
	return n
}

// Decode reads a TBTRACE1 dump.
func Decode(r io.Reader) (*TraceData, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if [8]byte(hdr[0:8]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[0:8])
	}
	d := &TraceData{Version: binary.LittleEndian.Uint32(hdr[8:])}
	if d.Version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", d.Version)
	}
	d.NCPUs = int(binary.LittleEndian.Uint16(hdr[12:]))
	d.NVCPUs = int(binary.LittleEndian.Uint16(hdr[14:]))
	nrings := int(binary.LittleEndian.Uint16(hdr[16:]))
	d.EndTime = int64(binary.LittleEndian.Uint64(hdr[20:]))
	var rh [ringHdrLen]byte
	var rb [recordSize]byte
	for i := 0; i < nrings; i++ {
		if _, err := io.ReadFull(r, rh[:]); err != nil {
			return nil, fmt.Errorf("trace: reading ring %d header: %w", i, err)
		}
		rd := RingData{
			CPU:  binary.LittleEndian.Uint16(rh[0:]),
			Lost: binary.LittleEndian.Uint64(rh[8:]),
		}
		count := int(binary.LittleEndian.Uint32(rh[4:]))
		// Chunked allocation keeps a hostile ring header (a huge declared
		// count followed by a truncated body) from forcing a large
		// up-front allocation: the slice grows only as records are
		// actually read off the wire.
		const chunk = 4096
		cap0 := count
		if cap0 > chunk {
			cap0 = chunk
		}
		rd.Records = make([]Record, 0, cap0)
		for k := 0; k < count; k++ {
			if _, err := io.ReadFull(r, rb[:]); err != nil {
				return nil, fmt.Errorf("trace: reading ring %d record %d: %w", i, k, err)
			}
			var rec Record
			getRecord(rb[:], &rec)
			if rec.Type == 0 || rec.Type > evMax {
				return nil, fmt.Errorf("trace: ring %d record %d has unknown type %d", i, k, rec.Type)
			}
			rd.Records = append(rd.Records, rec)
		}
		d.Rings = append(d.Rings, rd)
	}
	return d, nil
}
