package trace_test

import (
	"bytes"
	"testing"

	"tableau/internal/sim"
	"tableau/internal/trace"
	"tableau/internal/vmm"
)

// rr is a minimal round-robin scheduler: enough machinery to drive a
// machine through dispatches, blocks, wakeups, and preemptions so the
// trace hooks in vmm fire.
type rr struct {
	m    *vmm.Machine
	next int
}

func (s *rr) Name() string          { return "rr-test" }
func (s *rr) Attach(m *vmm.Machine) { s.m = m }
func (s *rr) OnWake(v *vmm.VCPU, now int64) {
	if v.LastCPU >= 0 {
		s.m.Kick(v.LastCPU)
	} else {
		s.m.Kick(0)
	}
}
func (s *rr) OnBlock(v *vmm.VCPU, now int64) {}

func (s *rr) PickNext(cpu *vmm.PCPU, now int64) vmm.Decision {
	n := len(s.m.VCPUs)
	for i := 0; i < n; i++ {
		v := s.m.VCPUs[(s.next+i)%n]
		if v.State == vmm.Runnable || (v.State == vmm.Running && v.CurrentCPU == cpu.ID) {
			s.next = (v.ID + 1) % n
			return vmm.Decision{VCPU: v, Until: now + 1_000_000} // 1 ms slice
		}
	}
	return vmm.Decision{Until: vmm.NoTimer}
}

// burstBlock alternates compute bursts with blocking I/O.
func burstBlock(compute, block int64) vmm.Program {
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		if v.Wakeups%2 == 0 {
			return vmm.Compute(compute)
		}
		return vmm.Block(block)
	})
}

func tracedRun(t *testing.T, ringSize int) (*trace.Tracer, *vmm.Machine) {
	t.Helper()
	tr := trace.New(ringSize)
	m := vmm.New(sim.New(7), 2, &rr{}, vmm.NoOverheads())
	m.AddVCPU("a", burstBlock(300_000, 200_000), 256, false)
	m.AddVCPU("b", burstBlock(500_000, 100_000), 256, false)
	m.AddVCPU("c", vmm.ProgramFunc(func(*vmm.Machine, *vmm.VCPU, int64) vmm.Action {
		return vmm.Compute(2_000_000)
	}), 256, false)
	m.SetTracer(tr)
	m.Start()
	m.Run(50_000_000)
	tr.FlushResidency(m.Now())
	return tr, m
}

// TestMachineEmitsCoherentTrace runs a small machine traced end to end
// and checks the stream is coherent: context switches and runstate
// transitions appear, per-ring records are in emission order, and the
// offline analysis of the encoded dump agrees with the live metrics
// field by field.
func TestMachineEmitsCoherentTrace(t *testing.T) {
	tr, m := tracedRun(t, 1<<15)
	recs := tr.Merged()
	if len(recs) == 0 {
		t.Fatal("traced run produced no records")
	}
	var sawCtx, sawRun bool
	for i, r := range recs {
		if i > 0 && r.Seq <= recs[i-1].Seq {
			t.Fatalf("merged stream out of order at %d", i)
		}
		switch r.Type {
		case trace.EvContextSwitch:
			sawCtx = true
		case trace.EvRunstateChange:
			sawRun = true
		}
	}
	if !sawCtx || !sawRun {
		t.Fatalf("missing event kinds: ctx=%v runstate=%v", sawCtx, sawRun)
	}

	live := tr.Metrics()
	if live.ContextSwitches == 0 {
		t.Error("live metrics saw no context switches")
	}
	// Residency must account the whole run for every vCPU.
	for v := range live.VMs {
		vm := &live.VMs[v]
		total := vm.RunNs + vm.RunnableNs + vm.BlockedNs
		if total != m.Now() {
			t.Errorf("vCPU %d residency covers %d ns of a %d ns run", v, total, m.Now())
		}
		if vm.SchedLatency.Count() == 0 {
			t.Errorf("vCPU %d has no latency samples", v)
		}
	}
	// The machine's own run-time accounting and the trace-derived one
	// must agree exactly: both observe the same dispatch instants.
	for v, vc := range m.VCPUs {
		if got := live.VMs[v].RunNs; got != vc.RunTime {
			t.Errorf("vCPU %d: trace RunNs %d != machine RunTime %d", v, got, vc.RunTime)
		}
	}

	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := trace.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Lost() != 0 {
		t.Fatalf("rings overflowed (%d lost) — grow the test ring", d.Lost())
	}
	off := trace.Analyze(d)
	if off.ContextSwitches != live.ContextSwitches || off.TableSwitches != live.TableSwitches ||
		off.IPIsSent != live.IPIsSent || off.IPIsDropped != live.IPIsDropped {
		t.Errorf("offline counters diverge from live: off %+v live %+v", off, live)
	}
	for v := range live.VMs {
		lv, ov := &live.VMs[v], &off.VMs[v]
		if lv.RunNs != ov.RunNs || lv.RunnableNs != ov.RunnableNs || lv.BlockedNs != ov.BlockedNs ||
			lv.ContextSwitches != ov.ContextSwitches || lv.Wakeups != ov.Wakeups {
			t.Errorf("vCPU %d: offline %+v != live %+v", v, ov, lv)
		}
		if lv.SchedLatency.Count() != ov.SchedLatency.Count() ||
			lv.SchedLatency.Max() != ov.SchedLatency.Max() ||
			lv.SchedLatency.Quantile(0.99) != ov.SchedLatency.Quantile(0.99) {
			t.Errorf("vCPU %d latency histograms diverge", v)
		}
	}
}

// TestTracedRunsAreDeterministic runs the same seeded machine twice and
// requires byte-identical encoded traces.
func TestTracedRunsAreDeterministic(t *testing.T) {
	tr1, _ := tracedRun(t, 1<<12)
	tr2, _ := tracedRun(t, 1<<12)
	var b1, b2 bytes.Buffer
	if err := tr1.Encode(&b1); err != nil {
		t.Fatal(err)
	}
	if err := tr2.Encode(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("identical seeded runs produced different trace bytes")
	}
}

// BenchmarkTracedMachine measures the sim hot path with tracing on and
// off; the delta is the tracer's overhead (gated in CI via benchdiff).
// The horizon is long relative to machine construction and ring
// allocation so the per-event emit cost, not setup, is what's compared.
func BenchmarkTracedMachine(b *testing.B) {
	run := func(b *testing.B, traced bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := vmm.New(sim.New(7), 2, &rr{}, vmm.NoOverheads())
			m.AddVCPU("a", burstBlock(30_000, 20_000), 256, false)
			m.AddVCPU("b", burstBlock(50_000, 10_000), 256, false)
			if traced {
				m.SetTracer(trace.New(1 << 12))
			}
			m.Start()
			m.Run(500_000_000)
		}
	}
	b.Run("untraced", func(b *testing.B) { run(b, false) })
	b.Run("traced", func(b *testing.B) { run(b, true) })
}
