package faults

import (
	"fmt"
	"sort"

	"tableau/internal/netdev"
	"tableau/internal/trace"
	"tableau/internal/vmm"
)

// window is one [start, end) interval targeting core (or all cores
// when core < 0) with an optional delay payload.
type window struct {
	start, end int64
	core       int
	delay      int64
}

// covers reports whether w applies to core at time t.
func (w window) covers(core int, t int64) bool {
	return (w.core < 0 || w.core == core) && t >= w.start && t < w.end
}

// Applied is one log entry: a fault the injector delivered.
type Applied struct {
	Event Event
	// At is the simulation time the fault took effect. For window
	// faults this is the window start (logged when the window opens).
	At int64
}

// Injector materializes a Plan against a machine: discrete faults
// (fail-stop, stall) become engine events, window faults (timer drift,
// IPI drop/delay) become pure hook functions, and NIC bursts become
// drop windows on the targeted devices. All scheduling happens in
// Attach, before the run starts, so injection is deterministic.
type Injector struct {
	plan    *Plan
	applied []Applied

	ipiWindows     []window // drop (delay == 0) and delay (delay > 0)
	timerWindows   []window
	plannerWindows []window
}

// Attach installs plan on m. nics, if given, are the targets of
// nic-drop events (Event.Core indexes this slice). The plan must have
// passed Validate for m's core count; Attach additionally rejects
// nic-drop events whose index is out of range.
func Attach(m *vmm.Machine, plan *Plan, nics ...*netdev.NIC) (*Injector, error) {
	if err := plan.Validate(len(m.CPUs)); err != nil {
		return nil, err
	}
	inj := &Injector{plan: plan}
	nicWindows := make(map[int][]window)
	for _, e := range plan.Sorted() {
		e := e
		switch e.Kind {
		case KindPCPUFailStop:
			m.Eng.At(e.At, func(now int64) {
				m.FailCore(e.Core)
				inj.applied = append(inj.applied, Applied{Event: e, At: now})
			})
		case KindPCPUStall:
			m.Eng.At(e.At, func(now int64) {
				m.StallCore(e.Core, e.Duration)
				inj.applied = append(inj.applied, Applied{Event: e, At: now})
			})
		case KindTimerDrift:
			inj.timerWindows = append(inj.timerWindows, window{start: e.At, end: e.End(), core: e.Core, delay: e.Delay})
			inj.logWindowOpen(m, e)
		case KindIPIDrop:
			inj.ipiWindows = append(inj.ipiWindows, window{start: e.At, end: e.End(), core: e.Core})
			inj.logWindowOpen(m, e)
		case KindIPIDelay:
			inj.ipiWindows = append(inj.ipiWindows, window{start: e.At, end: e.End(), core: e.Core, delay: e.Delay})
			inj.logWindowOpen(m, e)
		case KindPlannerOutage:
			inj.plannerWindows = append(inj.plannerWindows, window{start: e.At, end: e.End(), core: e.Core})
			inj.logWindowOpen(m, e)
		case KindNICDrop:
			if e.Core >= len(nics) {
				return nil, fmt.Errorf("faults: nic-drop targets NIC %d but only %d attached", e.Core, len(nics))
			}
			nicWindows[e.Core] = append(nicWindows[e.Core], window{start: e.At, end: e.End()})
			inj.logWindowOpen(m, e)
		}
	}
	// NICs require sorted, non-overlapping windows: merge per device.
	for idx, ws := range nicWindows {
		for _, w := range merge(ws) {
			nics[idx].AddDropWindow(w.start, w.end)
		}
	}
	if len(inj.ipiWindows) > 0 {
		m.SetIPIFault(inj.ipiFault)
	}
	if len(inj.timerWindows) > 0 {
		m.SetTimerFault(inj.timerFault)
	}
	return inj, nil
}

// logWindowOpen schedules a log entry at the window's opening edge so
// the applied log interleaves window faults with discrete ones in
// simulation order. The opening is also emitted to the machine's
// scheduling trace; fail-stops and stalls are traced by the machine
// itself at delivery.
func (inj *Injector) logWindowOpen(m *vmm.Machine, e Event) {
	m.Eng.At(e.At, func(now int64) {
		inj.applied = append(inj.applied, Applied{Event: e, At: now})
		if t := m.Tracer(); t != nil {
			core := e.Core
			if e.Kind == KindNICDrop {
				core = -1 // Core is a NIC index, not a pCPU: control ring
			}
			t.Emit(trace.EvFaultInjected, core, now, -1, traceFaultKind(e.Kind), e.Delay)
		}
	})
}

// traceFaultKind maps a fault kind to its trace-format code.
func traceFaultKind(k string) int64 {
	switch k {
	case KindPCPUFailStop:
		return trace.FaultFailStop
	case KindPCPUStall:
		return trace.FaultStall
	case KindTimerDrift:
		return trace.FaultTimerDrift
	case KindIPIDrop:
		return trace.FaultIPIDrop
	case KindIPIDelay:
		return trace.FaultIPIDelay
	case KindPlannerOutage:
		return trace.FaultPlannerOutage
	}
	return trace.FaultNICDrop
}

// PlannerOutage reports whether the remote planner service is down at
// simulation time now. Pure in now, like every window fault.
func (inj *Injector) PlannerOutage(now int64) bool {
	for _, w := range inj.plannerWindows {
		if now >= w.start && now < w.end {
			return true
		}
	}
	return false
}

// ipiFault implements the Machine IPI hook: pure in (core, now).
func (inj *Injector) ipiFault(core int, now int64) (bool, int64) {
	for _, w := range inj.ipiWindows {
		if !w.covers(core, now) {
			continue
		}
		if w.delay == 0 {
			return true, 0
		}
		return false, w.delay
	}
	return false, 0
}

// timerFault implements the Machine timer hook: pure in (core, at).
func (inj *Injector) timerFault(core int, at int64) int64 {
	for _, w := range inj.timerWindows {
		if w.covers(core, at) {
			return w.delay
		}
	}
	return 0
}

// Applied returns the faults delivered so far, in simulation order.
func (inj *Injector) Applied() []Applied { return inj.applied }

// merge sorts windows by start and coalesces overlapping or adjacent
// ones.
func merge(ws []window) []window {
	sort.Slice(ws, func(i, j int) bool { return ws[i].start < ws[j].start })
	out := ws[:0]
	for _, w := range ws {
		if n := len(out); n > 0 && w.start <= out[n-1].end {
			if w.end > out[n-1].end {
				out[n-1].end = w.end
			}
			continue
		}
		out = append(out, w)
	}
	return out
}
