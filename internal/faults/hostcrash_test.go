package faults

import (
	"errors"
	"reflect"
	"testing"

	"tableau/internal/journal"
)

// TestCrashFailStop pins the permanent-failure semantics: the crashing
// append persists nothing, every later operation fails, and — unlike
// the recoverable kinds — the surviving image is gone too.
func TestCrashFailStop(t *testing.T) {
	cs, err := NewCrashStore(journal.NewMemStore(), CrashPlan{AtAppend: 2, Kind: CrashFailStop, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Append(crashRecord(1)); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	if err := cs.Append(crashRecord(2)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append 2: err = %v, want ErrCrashed", err)
	}
	if !cs.Crashed() {
		t.Fatal("fail-stop did not mark the store crashed")
	}
	if _, err := cs.Surviving(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("fail-stop Surviving err = %v, want ErrCrashed (the disk died)", err)
	}
	if err := cs.Append(crashRecord(3)); !errors.Is(err, ErrCrashed) {
		t.Fatal("post-crash append accepted")
	}
}

// TestIdleCrashStoreArm covers the fleet's arming lifecycle: an idle
// store is a pass-through, Arm counts appends from the arming, and a
// dead store refuses to be re-armed.
func TestIdleCrashStoreArm(t *testing.T) {
	cs := NewIdleCrashStore(journal.NewMemStore())
	if cs.Armed() || cs.Kind() != "" {
		t.Fatal("idle store claims to be armed")
	}
	for v := uint64(1); v <= 3; v++ {
		if err := cs.Append(crashRecord(v)); err != nil {
			t.Fatalf("idle append %d: %v", v, err)
		}
	}
	if cs.Crashed() {
		t.Fatal("idle store crashed")
	}

	// Arm at append 2 *from now*: the three idle appends must not count.
	if err := cs.Arm(CrashPlan{AtAppend: 2, Kind: CrashTorn, Seed: 9}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if !cs.Armed() || cs.Kind() != CrashTorn {
		t.Fatalf("Armed=%v Kind=%q after arming", cs.Armed(), cs.Kind())
	}
	if err := cs.Append(crashRecord(4)); err != nil {
		t.Fatalf("armed append 1: %v", err)
	}
	if err := cs.Append(crashRecord(5)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("armed append 2: err = %v, want ErrCrashed", err)
	}
	if cs.Armed() {
		t.Fatal("a fired store still reports armed")
	}
	if err := cs.Arm(CrashPlan{AtAppend: 1, Kind: CrashTorn, Seed: 1}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("re-arming a dead store: err = %v, want ErrCrashed", err)
	}

	// The surviving image holds the 4 durable records (the torn 5th is
	// cut by the framing CRC).
	img, err := cs.Surviving()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := journal.DecodeAll(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 4 {
		t.Fatalf("%d intact records survive, want 4", len(rep.Records))
	}
}

func TestArmValidates(t *testing.T) {
	cs := NewIdleCrashStore(journal.NewMemStore())
	if err := cs.Arm(CrashPlan{AtAppend: 0, Kind: CrashTorn}); err == nil {
		t.Fatal("invalid plan armed")
	}
	if cs.Armed() {
		t.Fatal("failed Arm left the store armed")
	}
}

func TestGenerateHostCrashPlan(t *testing.T) {
	plan, err := GenerateHostCrashPlan(7, 100, 12, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(100); err != nil {
		t.Fatal(err)
	}
	if len(plan.Crashes) != 12 {
		t.Fatalf("%d victims, want 12", len(plan.Crashes))
	}
	for i, c := range plan.Crashes {
		if i > 0 && plan.Crashes[i-1].Host >= c.Host {
			t.Fatal("victims not in ascending host order")
		}
		if c.Plan.AtAppend < 1 || c.Plan.AtAppend > 9 {
			t.Fatalf("AtAppend %d out of [1,9]", c.Plan.AtAppend)
		}
	}

	again, err := GenerateHostCrashPlan(7, 100, 12, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, again) {
		t.Fatal("same seed produced a different storm")
	}

	// The fail-stop percentage is exact at the extremes.
	all, _ := GenerateHostCrashPlan(3, 50, 10, 100, 5)
	for _, c := range all.Crashes {
		if c.Plan.Kind != CrashFailStop {
			t.Fatalf("failStopPct=100 drew %s", c.Plan.Kind)
		}
	}
	none, _ := GenerateHostCrashPlan(3, 50, 10, 0, 5)
	for _, c := range none.Crashes {
		if c.Plan.Kind == CrashFailStop {
			t.Fatal("failStopPct=0 drew a fail-stop")
		}
	}
}

func TestGenerateHostCrashPlanRejects(t *testing.T) {
	if _, err := GenerateHostCrashPlan(1, 0, 0, 0, 1); err == nil {
		t.Fatal("0-host storm accepted")
	}
	if _, err := GenerateHostCrashPlan(1, 10, 11, 0, 1); err == nil {
		t.Fatal("more victims than hosts accepted")
	}
	if _, err := GenerateHostCrashPlan(1, 10, 2, 101, 1); err == nil {
		t.Fatal("fail-stop percentage over 100 accepted")
	}
	if _, err := GenerateHostCrashPlan(1, 10, 2, 0, 0); err == nil {
		t.Fatal("0-based max append accepted")
	}
	bad := HostCrashPlan{Crashes: []HostCrash{
		{Host: 1, Plan: CrashPlan{AtAppend: 1, Kind: CrashTorn}},
		{Host: 1, Plan: CrashPlan{AtAppend: 2, Kind: CrashTorn}},
	}}
	if err := bad.Validate(10); err == nil {
		t.Fatal("duplicate victim accepted")
	}
}
