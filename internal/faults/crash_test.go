package faults

import (
	"bytes"
	"errors"
	"testing"

	"tableau/internal/journal"
)

func crashRecord(version uint64) []byte {
	rec, err := journal.AppendRecord(nil, &journal.EpochRecord{
		Version: version,
		Slots: []journal.SlotConfig{
			{Name: "vm", UtilNum: 1, UtilDen: 4, LatencyGoal: 30_000_000, Active: true},
		},
		TableBytes: []byte("payload-stand-in"),
	})
	if err != nil {
		panic(err)
	}
	return rec
}

func TestCrashPlanValidate(t *testing.T) {
	if err := (CrashPlan{AtAppend: 0, Kind: CrashTorn}).Validate(); err == nil {
		t.Fatal("0-based append accepted")
	}
	if err := (CrashPlan{AtAppend: 1, Kind: "meteor"}).Validate(); err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, k := range CrashKinds {
		if err := (CrashPlan{AtAppend: 1, Kind: k}).Validate(); err != nil {
			t.Fatalf("kind %s rejected: %v", k, err)
		}
	}
}

// TestCrashKindsSurvivingImage drives each kind at append 2 of 3 and
// checks exactly what the journal replay finds in the surviving image.
func TestCrashKindsSurvivingImage(t *testing.T) {
	for _, kind := range CrashKinds {
		t.Run(kind, func(t *testing.T) {
			cs, err := NewCrashStore(journal.NewMemStore(), CrashPlan{AtAppend: 2, Kind: kind, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if err := cs.Append(crashRecord(1)); err != nil {
				t.Fatalf("append 1: %v", err)
			}
			if cs.Crashed() {
				t.Fatal("crashed before the planned append")
			}
			if err := cs.Append(crashRecord(2)); !errors.Is(err, ErrCrashed) {
				t.Fatalf("append 2: err = %v, want ErrCrashed", err)
			}
			if !cs.Crashed() || cs.Appends() != 2 {
				t.Fatalf("Crashed=%v Appends=%d after the crash", cs.Crashed(), cs.Appends())
			}
			// The dead process can do nothing more.
			if err := cs.Append(crashRecord(3)); !errors.Is(err, ErrCrashed) {
				t.Fatal("post-crash append accepted")
			}
			if err := cs.Sync(); !errors.Is(err, ErrCrashed) {
				t.Fatal("post-crash sync accepted")
			}
			if _, err := cs.Load(); !errors.Is(err, ErrCrashed) {
				t.Fatal("post-crash load accepted")
			}

			img, err := cs.Surviving()
			if err != nil {
				t.Fatalf("Surviving: %v", err)
			}
			rep, err := journal.DecodeAll(img)
			if err != nil {
				t.Fatalf("DecodeAll: %v", err)
			}
			switch kind {
			case CrashPreAppend:
				if len(rep.Records) != 1 || rep.TailErr != nil {
					t.Fatalf("pre-append: %d records (tail %v), want 1 clean", len(rep.Records), rep.TailErr)
				}
			case CrashPostAppend:
				if len(rep.Records) != 2 || rep.TailErr != nil {
					t.Fatalf("post-append: %d records (tail %v), want 2 clean", len(rep.Records), rep.TailErr)
				}
				if rep.Records[1].Version != 2 {
					t.Fatalf("post-append: recovered version %d, want 2", rep.Records[1].Version)
				}
			case CrashTorn, CrashBitFlip:
				if len(rep.Records) != 1 {
					t.Fatalf("%s: %d intact records, want 1", kind, len(rep.Records))
				}
				if rep.TailErr == nil {
					t.Fatalf("%s: damage not reported", kind)
				}
			}
			if rep.Records[0].Version != 1 {
				t.Fatalf("first record version %d, want 1", rep.Records[0].Version)
			}
		})
	}
}

// TestCrashTornDeterministic pins that the torn prefix is a pure
// function of the seed.
func TestCrashTornDeterministic(t *testing.T) {
	image := func(seed int64) []byte {
		cs, err := NewCrashStore(journal.NewMemStore(), CrashPlan{AtAppend: 1, Kind: CrashTorn, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		_ = cs.Append(crashRecord(1))
		img, err := cs.Surviving()
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	if !bytes.Equal(image(7), image(7)) {
		t.Fatal("same seed produced different torn images")
	}
	a, b := image(7), image(8)
	if bytes.Equal(a, b) {
		t.Log("seeds 7 and 8 tore at the same length (possible, just unlikely)")
	}
	full := journal.AppendHeader(nil)
	full = append(full, crashRecord(1)...)
	if len(a) >= len(full) {
		t.Fatalf("torn image (%d bytes) is not a strict prefix of %d", len(a), len(full))
	}
}

// TestCrashNeverFires: a plan pointing past the run's appends is a
// clean shutdown.
func TestCrashNeverFires(t *testing.T) {
	cs, err := NewCrashStore(journal.NewMemStore(), CrashPlan{AtAppend: 99, Kind: CrashBitFlip, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 3; v++ {
		if err := cs.Append(crashRecord(v)); err != nil {
			t.Fatalf("append %d: %v", v, err)
		}
	}
	if cs.Crashed() {
		t.Fatal("crash fired without reaching its append")
	}
	if err := cs.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
