package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"tableau/internal/journal"
)

// This file is the crash-point injector for the durable epoch journal:
// a journal.Store wrapper that kills the "host" at a chosen write
// boundary, deterministically from a seed, and freezes the bytes that
// would have survived on disk. Recovery tests then hand the surviving
// image to core.Recover and compare against the pre-crash ground truth.
//
// The crash model follows the append path of a write-ahead log:
//
//	pre-append   — the process dies before any byte of the record
//	               reaches the store; the record is simply absent.
//	torn         — the process (or power) dies mid-write; a strict
//	               prefix of the record persists. The journal's framing
//	               CRC detects the tear and recovery truncates it.
//	post-append  — the record is fully durable, then the process dies
//	               before doing anything else (for a file store: after
//	               the write, before any later rename/compaction). The
//	               epoch it carries IS committed; recovery must adopt it.
//	bit-flip     — the record persists at full length but one bit is
//	               corrupted in flight; the CRC catches it and recovery
//	               truncates back to the last intact record.

// Crash kinds, matching the write boundaries above. CrashFailStop is
// the fleet-level extra: the host dies permanently — nothing of the
// crashing append persists and the journal image is unreadable (the
// disk went with the machine), so recovery is impossible and the
// arbiter must evacuate.
const (
	CrashPreAppend  = "crash-pre-append"
	CrashTorn       = "crash-torn-write"
	CrashPostAppend = "crash-post-append"
	CrashBitFlip    = "crash-bit-flip"
	CrashFailStop   = "crash-fail-stop"
)

// CrashKinds lists every recoverable crash kind, in a fixed order tests
// and experiments index with a seeded draw. Fail-stop is deliberately
// absent: single-host recovery scenarios draw from here, and a
// fail-stop host has no surviving image to recover.
var CrashKinds = []string{CrashPreAppend, CrashTorn, CrashPostAppend, CrashBitFlip}

// HostCrashKinds is the fleet-level draw set: every recoverable kind
// plus permanent fail-stop.
var HostCrashKinds = []string{CrashPreAppend, CrashTorn, CrashPostAppend, CrashBitFlip, CrashFailStop}

// ErrCrashed is returned by every CrashStore operation once the crash
// point has fired: the process this store belonged to is dead.
var ErrCrashed = errors.New("faults: journal store crashed")

// CrashPlan places one crash at a journal append boundary.
type CrashPlan struct {
	// AtAppend is the 1-based index of the Append call the crash fires
	// on. An index past the run's total appends means the crash never
	// fires (a clean shutdown).
	AtAppend int
	// Kind is one of the Crash* constants.
	Kind string
	// Seed drives the torn-write length and the bit-flip position.
	Seed int64
}

// Validate checks the plan shape.
func (p CrashPlan) Validate() error {
	if p.AtAppend < 1 {
		return fmt.Errorf("faults: crash at append %d (counting is 1-based)", p.AtAppend)
	}
	switch p.Kind {
	case CrashPreAppend, CrashTorn, CrashPostAppend, CrashBitFlip, CrashFailStop:
		return nil
	}
	return fmt.Errorf("faults: unknown crash kind %q", p.Kind)
}

// CrashStore wraps a journal.Store and fires the plan's crash at the
// configured append. After the crash every operation returns
// ErrCrashed; Surviving returns the frozen post-crash disk image
// (except fail-stop, where the disk died with the host). A store built
// by NewIdleCrashStore starts unarmed — a transparent pass-through —
// and can be armed with a plan later; Arm resets the append count so
// AtAppend is relative to the arming, which lets a fleet re-arm a
// recovered host's fresh store for a later storm.
type CrashStore struct {
	mu      sync.Mutex
	inner   journal.Store
	plan    CrashPlan
	armed   bool
	rng     *rand.Rand
	appends int
	crashed bool
}

// NewCrashStore wraps inner with the given plan, armed immediately.
func NewCrashStore(inner journal.Store, plan CrashPlan) (*CrashStore, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &CrashStore{
		inner: inner, plan: plan, armed: true,
		rng: rand.New(rand.NewSource(plan.Seed)),
	}, nil
}

// NewIdleCrashStore wraps inner with no crash armed: every operation
// passes through until Arm installs a plan.
func NewIdleCrashStore(inner journal.Store) *CrashStore {
	return &CrashStore{inner: inner}
}

// Arm installs (or replaces) the crash plan. The append counter resets,
// so plan.AtAppend counts from this arming, not from construction.
// Arming a store that already crashed is an error — the host is dead.
func (c *CrashStore) Arm(plan CrashPlan) error {
	if err := plan.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	c.plan = plan
	c.armed = true
	c.appends = 0
	c.rng = rand.New(rand.NewSource(plan.Seed))
	return nil
}

// Armed reports whether a crash plan is installed and not yet fired.
func (c *CrashStore) Armed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.armed && !c.crashed
}

// Crashed reports whether the crash point has fired.
func (c *CrashStore) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Kind returns the armed plan's crash kind ("" when unarmed).
func (c *CrashStore) Kind() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.armed {
		return ""
	}
	return c.plan.Kind
}

// Appends returns the number of Append calls observed since the last
// arming (including the crashing one).
func (c *CrashStore) Appends() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.appends
}

// Surviving returns the disk image as a post-crash recovery would find
// it. Valid before the crash too (the image simply has no tear yet).
// After a fail-stop crash it returns ErrCrashed: the disk is gone.
func (c *CrashStore) Surviving() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed && c.plan.Kind == CrashFailStop {
		return nil, ErrCrashed
	}
	return c.inner.Load()
}

func (c *CrashStore) Append(rec []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	c.appends++
	if !c.armed || c.appends != c.plan.AtAppend {
		return c.inner.Append(rec)
	}
	c.crashed = true
	switch c.plan.Kind {
	case CrashPreAppend, CrashFailStop:
		// Nothing reached the store. (Fail-stop additionally takes the
		// whole disk image with it — see Surviving.)
	case CrashTorn:
		// A strict prefix persists: at least one byte short, at least
		// one byte written (a zero-byte tear is pre-append).
		if len(rec) > 1 {
			n := 1 + c.rng.Intn(len(rec)-1)
			if err := c.inner.Append(rec[:n]); err != nil {
				return err
			}
		}
	case CrashPostAppend:
		// Fully durable, then death: the append itself succeeded, so
		// the record is committed even though the caller never learns
		// it — exactly the ambiguity recovery has to resolve.
		if err := c.inner.Append(rec); err != nil {
			return err
		}
	case CrashBitFlip:
		mut := append([]byte(nil), rec...)
		bit := c.rng.Intn(len(mut) * 8)
		mut[bit/8] ^= 1 << (bit % 8)
		if err := c.inner.Append(mut); err != nil {
			return err
		}
	}
	return ErrCrashed
}

func (c *CrashStore) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return c.inner.Sync()
}

func (c *CrashStore) Load() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	return c.inner.Load()
}

func (c *CrashStore) Truncate(n int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return c.inner.Truncate(n)
}

func (c *CrashStore) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return c.inner.Close()
}
