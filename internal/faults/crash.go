package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"tableau/internal/journal"
)

// This file is the crash-point injector for the durable epoch journal:
// a journal.Store wrapper that kills the "host" at a chosen write
// boundary, deterministically from a seed, and freezes the bytes that
// would have survived on disk. Recovery tests then hand the surviving
// image to core.Recover and compare against the pre-crash ground truth.
//
// The crash model follows the append path of a write-ahead log:
//
//	pre-append   — the process dies before any byte of the record
//	               reaches the store; the record is simply absent.
//	torn         — the process (or power) dies mid-write; a strict
//	               prefix of the record persists. The journal's framing
//	               CRC detects the tear and recovery truncates it.
//	post-append  — the record is fully durable, then the process dies
//	               before doing anything else (for a file store: after
//	               the write, before any later rename/compaction). The
//	               epoch it carries IS committed; recovery must adopt it.
//	bit-flip     — the record persists at full length but one bit is
//	               corrupted in flight; the CRC catches it and recovery
//	               truncates back to the last intact record.

// Crash kinds, matching the write boundaries above.
const (
	CrashPreAppend  = "crash-pre-append"
	CrashTorn       = "crash-torn-write"
	CrashPostAppend = "crash-post-append"
	CrashBitFlip    = "crash-bit-flip"
)

// CrashKinds lists every crash kind, in a fixed order tests and
// experiments index with a seeded draw.
var CrashKinds = []string{CrashPreAppend, CrashTorn, CrashPostAppend, CrashBitFlip}

// ErrCrashed is returned by every CrashStore operation once the crash
// point has fired: the process this store belonged to is dead.
var ErrCrashed = errors.New("faults: journal store crashed")

// CrashPlan places one crash at a journal append boundary.
type CrashPlan struct {
	// AtAppend is the 1-based index of the Append call the crash fires
	// on. An index past the run's total appends means the crash never
	// fires (a clean shutdown).
	AtAppend int
	// Kind is one of the Crash* constants.
	Kind string
	// Seed drives the torn-write length and the bit-flip position.
	Seed int64
}

// Validate checks the plan shape.
func (p CrashPlan) Validate() error {
	if p.AtAppend < 1 {
		return fmt.Errorf("faults: crash at append %d (counting is 1-based)", p.AtAppend)
	}
	switch p.Kind {
	case CrashPreAppend, CrashTorn, CrashPostAppend, CrashBitFlip:
		return nil
	}
	return fmt.Errorf("faults: unknown crash kind %q", p.Kind)
}

// CrashStore wraps a journal.Store and fires the plan's crash at the
// configured append. After the crash every operation returns
// ErrCrashed; Surviving returns the frozen post-crash disk image.
type CrashStore struct {
	mu      sync.Mutex
	inner   journal.Store
	plan    CrashPlan
	rng     *rand.Rand
	appends int
	crashed bool
}

// NewCrashStore wraps inner with the given plan.
func NewCrashStore(inner journal.Store, plan CrashPlan) (*CrashStore, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &CrashStore{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}, nil
}

// Crashed reports whether the crash point has fired.
func (c *CrashStore) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Appends returns the number of Append calls observed (including the
// crashing one).
func (c *CrashStore) Appends() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.appends
}

// Surviving returns the disk image as a post-crash recovery would find
// it. Valid before the crash too (the image simply has no tear yet).
func (c *CrashStore) Surviving() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Load()
}

func (c *CrashStore) Append(rec []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	c.appends++
	if c.appends != c.plan.AtAppend {
		return c.inner.Append(rec)
	}
	c.crashed = true
	switch c.plan.Kind {
	case CrashPreAppend:
		// Nothing reached the store.
	case CrashTorn:
		// A strict prefix persists: at least one byte short, at least
		// one byte written (a zero-byte tear is pre-append).
		if len(rec) > 1 {
			n := 1 + c.rng.Intn(len(rec)-1)
			if err := c.inner.Append(rec[:n]); err != nil {
				return err
			}
		}
	case CrashPostAppend:
		// Fully durable, then death: the append itself succeeded, so
		// the record is committed even though the caller never learns
		// it — exactly the ambiguity recovery has to resolve.
		if err := c.inner.Append(rec); err != nil {
			return err
		}
	case CrashBitFlip:
		mut := append([]byte(nil), rec...)
		bit := c.rng.Intn(len(mut) * 8)
		mut[bit/8] ^= 1 << (bit % 8)
		if err := c.inner.Append(mut); err != nil {
			return err
		}
	}
	return ErrCrashed
}

func (c *CrashStore) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return c.inner.Sync()
}

func (c *CrashStore) Load() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	return c.inner.Load()
}

func (c *CrashStore) Truncate(n int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return c.inner.Truncate(n)
}

func (c *CrashStore) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return c.inner.Close()
}
