// Package faults turns a declarative, seeded fault plan into concrete
// perturbations of a running simulation: pCPU fail-stop, transient pCPU
// stalls, timer drift windows, dropped or delayed rescheduling IPIs,
// and NIC enqueue-drop bursts. Every fault is either a discrete event
// scheduled through the simulation engine or a pure window function of
// (core, time), so a run with a given plan and seed is bit-for-bit
// reproducible: the fault schedule is fixed before the run starts and
// never consults wall-clock time or unseeded randomness.
package faults

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
)

// Fault kinds understood by the injector.
const (
	// KindPCPUFailStop permanently fail-stops core Core at time At: the
	// running vCPU is descheduled, no further scheduler invocations
	// happen there, and IPIs to it are dropped.
	KindPCPUFailStop = "pcpu-failstop"
	// KindPCPUStall steals Duration ns of core Core's time starting at
	// At, as an SMI or hypervisor-level preemption would.
	KindPCPUStall = "pcpu-stall"
	// KindTimerDrift makes timer interrupts due on core Core (or all
	// cores if Core < 0) inside [At, At+Duration) fire Delay ns late.
	KindTimerDrift = "timer-drift"
	// KindIPIDrop silently discards rescheduling IPIs targeting core
	// Core (or all cores if Core < 0) inside [At, At+Duration).
	KindIPIDrop = "ipi-drop"
	// KindIPIDelay delivers rescheduling IPIs targeting core Core (or
	// all cores if Core < 0) inside [At, At+Duration) an extra Delay ns
	// late.
	KindIPIDelay = "ipi-delay"
	// KindNICDrop makes NIC number Core (an index into the NIC list
	// handed to Attach) reject every enqueue inside [At, At+Duration).
	KindNICDrop = "nic-drop"
	// KindPlannerOutage marks the remote planner service unreachable
	// inside [At, At+Duration). It perturbs no machine hook: the control
	// plane consults Injector.PlannerOutage on its remote-planning path
	// (the plannersvc breaker/fallback pipeline) before each replan, so
	// a storm arriving during the window exercises breaker trips and
	// local fallback planning. Core is -1 (the outage is machine-wide).
	KindPlannerOutage = "planner-outage"
)

// kindInfo describes the shape each kind requires.
var kindInfo = map[string]struct {
	windowed  bool // Duration defines a window
	needsCore bool // Core must name a concrete core (no -1 wildcard)
	needDelay bool // Delay must be > 0
}{
	KindPCPUFailStop:  {windowed: false, needsCore: true, needDelay: false},
	KindPCPUStall:     {windowed: true, needsCore: true, needDelay: false},
	KindTimerDrift:    {windowed: true, needsCore: false, needDelay: true},
	KindIPIDrop:       {windowed: true, needsCore: false, needDelay: false},
	KindIPIDelay:      {windowed: true, needsCore: false, needDelay: true},
	KindNICDrop:       {windowed: true, needsCore: true, needDelay: false},
	KindPlannerOutage: {windowed: true, needsCore: false, needDelay: false},
}

// Event is one fault. Core semantics depend on Kind: the target pCPU
// for CPU faults (with -1 meaning "all cores" where the kind allows a
// wildcard), or the NIC index for nic-drop.
type Event struct {
	Kind     string `json:"kind"`
	At       int64  `json:"at"`
	Duration int64  `json:"duration,omitempty"`
	Core     int    `json:"core"`
	Delay    int64  `json:"delay,omitempty"`
}

// End returns the end of the event's window (At for point events).
func (e Event) End() int64 {
	if kindInfo[e.Kind].windowed {
		return e.At + e.Duration
	}
	return e.At
}

// Plan is a complete fault scenario. Seed records the seed used to
// generate the plan (informational once the events are materialized;
// the injector itself draws no randomness).
type Plan struct {
	Seed   int64   `json:"seed"`
	Events []Event `json:"events"`
}

// Parse decodes a JSON scenario and validates it against a machine
// with the given core count.
func Parse(data []byte, cores int) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faults: parse: %w", err)
	}
	if err := p.Validate(cores); err != nil {
		return nil, err
	}
	return &p, nil
}

// Validate checks every event against a machine with the given core
// count. NIC indices cannot be validated here (the NIC list is only
// known at Attach time); Attach rejects out-of-range ones.
func (p *Plan) Validate(cores int) error {
	for i, e := range p.Events {
		info, ok := kindInfo[e.Kind]
		if !ok {
			return fmt.Errorf("faults: event %d: unknown kind %q", i, e.Kind)
		}
		if e.At < 0 {
			return fmt.Errorf("faults: event %d (%s): negative time %d", i, e.Kind, e.At)
		}
		if info.windowed && e.Duration <= 0 {
			return fmt.Errorf("faults: event %d (%s): requires duration > 0", i, e.Kind)
		}
		if !info.windowed && e.Duration != 0 {
			return fmt.Errorf("faults: event %d (%s): duration not allowed", i, e.Kind)
		}
		if info.needDelay && e.Delay <= 0 {
			return fmt.Errorf("faults: event %d (%s): requires delay > 0", i, e.Kind)
		}
		if !info.needDelay && e.Delay != 0 {
			return fmt.Errorf("faults: event %d (%s): delay not allowed", i, e.Kind)
		}
		switch e.Kind {
		case KindNICDrop:
			if e.Core < 0 {
				return fmt.Errorf("faults: event %d (nic-drop): negative NIC index %d", i, e.Core)
			}
		default:
			if info.needsCore && (e.Core < 0 || e.Core >= cores) {
				return fmt.Errorf("faults: event %d (%s): core %d out of range [0,%d)", i, e.Kind, e.Core, cores)
			}
			if !info.needsCore && (e.Core < -1 || e.Core >= cores) {
				return fmt.Errorf("faults: event %d (%s): core %d out of range [-1,%d)", i, e.Kind, e.Core, cores)
			}
		}
	}
	return nil
}

// Sorted returns the events ordered by (At, Kind, Core) — a canonical
// order that makes plans comparable and injection deterministic
// regardless of authoring order.
func (p *Plan) Sorted() []Event {
	out := make([]Event, len(p.Events))
	copy(out, p.Events)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Core < out[j].Core
	})
	return out
}

// BurstSpec parameterizes a generated fault burst.
type BurstSpec struct {
	Kind string
	// N events are placed uniformly at random in [Start, Start+Span).
	N     int
	Start int64
	Span  int64
	// Duration/Delay are copied into each event (for kinds needing them).
	Duration int64
	Delay    int64
	// Cores is the set of eligible targets; each event picks one
	// uniformly. For nic-drop these are NIC indices.
	Cores []int
}

// Burst deterministically generates a fault burst from seed: the same
// (seed, spec) always yields the same events. Events come back in
// canonical order.
func Burst(seed int64, spec BurstSpec) []Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]Event, 0, spec.N)
	for i := 0; i < spec.N; i++ {
		at := spec.Start
		if spec.Span > 0 {
			at += rng.Int63n(spec.Span)
		}
		core := 0
		if len(spec.Cores) > 0 {
			core = spec.Cores[rng.Intn(len(spec.Cores))]
		}
		e := Event{Kind: spec.Kind, At: at, Core: core}
		if kindInfo[spec.Kind].windowed {
			e.Duration = spec.Duration
		}
		if kindInfo[spec.Kind].needDelay {
			e.Delay = spec.Delay
		}
		events = append(events, e)
	}
	p := Plan{Seed: seed, Events: events}
	return p.Sorted()
}
