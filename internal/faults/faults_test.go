package faults

import (
	"encoding/json"
	"reflect"
	"testing"

	"tableau/internal/netdev"
	"tableau/internal/sim"
	"tableau/internal/vmm"
)

// rr is a minimal round-robin scheduler driving the machine in tests.
type rr struct {
	m     *vmm.Machine
	queue []*vmm.VCPU
	slice int64
}

func (s *rr) Name() string { return "test-rr" }
func (s *rr) Attach(m *vmm.Machine) {
	s.m = m
	s.queue = append(s.queue, m.VCPUs...)
}
func (s *rr) PickNext(cpu *vmm.PCPU, now int64) vmm.Decision {
	if prev := cpu.Current; prev != nil && prev.State == vmm.Runnable {
		s.queue = append(s.queue, prev)
	}
	for len(s.queue) > 0 {
		v := s.queue[0]
		s.queue = s.queue[1:]
		if v.State == vmm.Runnable && (v.CurrentCPU == -1 || v.CurrentCPU == cpu.ID) {
			return vmm.Decision{VCPU: v, Until: now + s.slice}
		}
	}
	return vmm.Decision{Until: vmm.NoTimer}
}
func (s *rr) OnWake(v *vmm.VCPU, now int64) {
	s.queue = append(s.queue, v)
	for _, cpu := range s.m.CPUs {
		if cpu.Current == nil && !cpu.Failed() {
			s.m.Kick(cpu.ID)
			return
		}
	}
}
func (s *rr) OnBlock(v *vmm.VCPU, now int64) {}

// blocker computes c then blocks for b, forever.
func blocker(c, b int64) vmm.Program {
	phase := make(map[*vmm.VCPU]*int)
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		st := phase[v]
		if st == nil {
			st = new(int)
			phase[v] = st
		}
		*st++
		if *st%2 == 1 {
			return vmm.Compute(c)
		}
		return vmm.Block(b)
	})
}

func newMachine(cores, vcpus int) *vmm.Machine {
	eng := sim.New(1)
	s := &rr{slice: 1_000_000}
	m := vmm.New(eng, cores, s, vmm.OverheadModel{Schedule: 2000, Wakeup: 1500, ContextSwitch: 500, IPI: 100})
	for i := 0; i < vcpus; i++ {
		m.AddVCPU("v", blocker(300_000, 200_000), 256, false)
	}
	return m
}

func TestValidate(t *testing.T) {
	bad := []Event{
		{Kind: "bogus", At: 0},
		{Kind: KindPCPUFailStop, At: -1, Core: 0},
		{Kind: KindPCPUFailStop, At: 0, Core: 4},
		{Kind: KindPCPUFailStop, At: 0, Core: 0, Duration: 5},
		{Kind: KindPCPUStall, At: 0, Core: 0},
		{Kind: KindTimerDrift, At: 0, Core: -1, Duration: 10},
		{Kind: KindIPIDrop, At: 0, Core: -2, Duration: 10},
		{Kind: KindIPIDrop, At: 0, Core: 0, Duration: 10, Delay: 5},
		{Kind: KindNICDrop, At: 0, Core: -1, Duration: 10},
	}
	for i, e := range bad {
		p := &Plan{Events: []Event{e}}
		if err := p.Validate(4); err == nil {
			t.Errorf("case %d (%+v): expected error", i, e)
		}
	}
	good := &Plan{Events: []Event{
		{Kind: KindPCPUFailStop, At: 10, Core: 3},
		{Kind: KindPCPUStall, At: 10, Core: 0, Duration: 100},
		{Kind: KindTimerDrift, At: 0, Core: -1, Duration: 10, Delay: 3},
		{Kind: KindIPIDrop, At: 5, Core: 2, Duration: 10},
		{Kind: KindIPIDelay, At: 5, Core: -1, Duration: 10, Delay: 7},
		{Kind: KindNICDrop, At: 0, Core: 1, Duration: 10},
	}}
	if err := good.Validate(4); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	p := &Plan{Seed: 42, Events: []Event{
		{Kind: KindPCPUFailStop, At: 1000, Core: 1},
		{Kind: KindNICDrop, At: 500, Core: 0, Duration: 2000},
	}}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", p, got)
	}
	if _, err := Parse([]byte(`{"events":[{"kind":"nope"}]}`), 2); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestBurstDeterministic(t *testing.T) {
	spec := BurstSpec{Kind: KindIPIDrop, N: 8, Start: 1000, Span: 100_000, Duration: 5000, Cores: []int{0, 1, 2}}
	a := Burst(7, spec)
	b := Burst(7, spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different bursts")
	}
	c := Burst(8, spec)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical bursts")
	}
	if err := (&Plan{Events: a}).Validate(3); err != nil {
		t.Fatalf("generated burst invalid: %v", err)
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatal("burst not in canonical order")
		}
	}
}

func TestFailStopDelivery(t *testing.T) {
	m := newMachine(2, 4)
	plan := &Plan{Events: []Event{{Kind: KindPCPUFailStop, At: 5_000_000, Core: 1}}}
	inj, err := Attach(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	m.Run(50_000_000)
	if m.Stats.CoreFailures != 1 {
		t.Fatalf("CoreFailures = %d, want 1", m.Stats.CoreFailures)
	}
	if m.CoreOnline(1) || !m.CoreOnline(0) || m.OnlineCores() != 1 {
		t.Fatalf("online state wrong: core0=%v core1=%v online=%d",
			m.CoreOnline(0), m.CoreOnline(1), m.OnlineCores())
	}
	// The dead core accrues no further busy or overhead time past its
	// failure instant (post-failure time is accounted as idle so the
	// busy+idle+overhead identity still holds).
	cpu1 := m.CPUs[1]
	if active := cpu1.BusyTime + cpu1.OverheadTime; active > 5_000_000 {
		t.Fatalf("failed core kept running after death: busy+overhead=%d ns", active)
	}
	// Every vCPU keeps making progress on the survivor (generic OnWake
	// recovery requeued the descheduled one).
	for _, v := range m.VCPUs {
		if v.RunTime < 5_000_000 {
			t.Errorf("vCPU %d starved after fail-stop: run=%d", v.ID, v.RunTime)
		}
	}
	if got := inj.Applied(); len(got) != 1 || got[0].Event.Kind != KindPCPUFailStop || got[0].At != 5_000_000 {
		t.Fatalf("applied log wrong: %+v", got)
	}
}

func TestStallDelivery(t *testing.T) {
	m := newMachine(1, 2)
	const stall = 3_000_000
	plan := &Plan{Events: []Event{{Kind: KindPCPUStall, At: 10_000_000, Core: 0, Duration: stall}}}
	if _, err := Attach(m, plan); err != nil {
		t.Fatal(err)
	}
	m.Start()
	m.Run(40_000_000)
	if m.Stats.CoreStalls != 1 {
		t.Fatalf("CoreStalls = %d, want 1", m.Stats.CoreStalls)
	}
	if m.CPUs[0].OverheadTime < stall {
		t.Fatalf("stall not charged: overhead=%d < %d", m.CPUs[0].OverheadTime, stall)
	}
}

func TestIPIWindows(t *testing.T) {
	// 3 blockers on 2 cores: cores go idle often enough that wakeups
	// kick, while the busy core's slice timer still rescues vCPUs whose
	// kick was dropped.
	m := newMachine(2, 3)
	plan := &Plan{Events: []Event{
		{Kind: KindIPIDrop, At: 5_000_000, Core: -1, Duration: 20_000_000},
		{Kind: KindIPIDelay, At: 30_000_000, Core: -1, Duration: 20_000_000, Delay: 50_000},
	}}
	inj, err := Attach(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Window functions are pure and respect core targeting and edges.
	if drop, _ := inj.ipiFault(0, 5_000_000); !drop {
		t.Fatal("drop window closed at its opening edge")
	}
	if drop, _ := inj.ipiFault(1, 25_000_000); drop {
		t.Fatal("drop window open at its closing edge")
	}
	if _, d := inj.ipiFault(0, 31_000_000); d != 50_000 {
		t.Fatalf("delay window returned %d, want 50000", d)
	}
	m.Start()
	m.Run(60_000_000)
	if m.Stats.DroppedIPIs == 0 {
		t.Fatal("no IPIs dropped inside drop window")
	}
	if m.Stats.DelayedIPIs == 0 {
		t.Fatal("no IPIs delayed inside delay window")
	}
}

func TestTimerWindow(t *testing.T) {
	m := newMachine(1, 1)
	plan := &Plan{Events: []Event{
		{Kind: KindTimerDrift, At: 1000, Core: 0, Duration: 9000, Delay: 250},
	}}
	inj, err := Attach(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	if d := inj.timerFault(0, 999); d != 0 {
		t.Fatal("drift before window")
	}
	if d := inj.timerFault(0, 1000); d != 250 {
		t.Fatalf("drift at window open = %d, want 250", d)
	}
	if d := inj.timerFault(0, 10_000); d != 0 {
		t.Fatal("drift at window close")
	}
}

func TestNICDrop(t *testing.T) {
	m := newMachine(1, 1)
	nic := netdev.New(1_000_000_000, 1<<20)
	plan := &Plan{Events: []Event{
		{Kind: KindNICDrop, At: 1000, Core: 0, Duration: 4000},
		{Kind: KindNICDrop, At: 3000, Core: 0, Duration: 4000}, // overlaps; merged
	}}
	if _, err := Attach(m, plan, nic); err != nil {
		t.Fatal(err)
	}
	if _, ok := nic.TrySend(0, 100); !ok {
		t.Fatal("send before window failed")
	}
	if _, ok := nic.TrySend(2000, 100); ok {
		t.Fatal("send inside window succeeded")
	}
	if _, ok := nic.TrySend(6500, 100); ok {
		t.Fatal("send inside merged window succeeded")
	}
	if nic.Drops() != 2 {
		t.Fatalf("Drops = %d, want 2", nic.Drops())
	}
	at, err := nic.RoomAt(2000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if at != 7000 {
		t.Fatalf("RoomAt during window = %d, want 7000 (merged window end)", at)
	}
	if _, ok := nic.TrySend(7000, 100); !ok {
		t.Fatal("send after window failed")
	}

	// Out-of-range NIC index is rejected at Attach.
	bad := &Plan{Events: []Event{{Kind: KindNICDrop, At: 0, Core: 3, Duration: 10}}}
	if _, err := Attach(newMachine(1, 1), bad, nic); err == nil {
		t.Fatal("out-of-range NIC index accepted")
	}
}

// TestReproducible runs the same faulted scenario twice and demands
// identical machine statistics and fault logs — the package's central
// guarantee.
func TestReproducible(t *testing.T) {
	run := func() (vmm.Stats, []Applied, []int64) {
		m := newMachine(4, 12)
		plan := &Plan{Seed: 3, Events: append(
			Burst(3, BurstSpec{Kind: KindIPIDrop, N: 5, Start: 2_000_000, Span: 30_000_000, Duration: 1_000_000, Cores: []int{0, 1, 2, 3}}),
			Event{Kind: KindPCPUFailStop, At: 20_000_000, Core: 2},
			Event{Kind: KindPCPUStall, At: 8_000_000, Core: 1, Duration: 2_000_000},
			Event{Kind: KindTimerDrift, At: 10_000_000, Core: -1, Duration: 10_000_000, Delay: 30_000},
		)}
		inj, err := Attach(m, plan)
		if err != nil {
			t.Fatal(err)
		}
		m.Start()
		m.Run(60_000_000)
		var compute []int64
		for _, v := range m.VCPUs {
			compute = append(compute, v.RunTime)
		}
		return m.Stats, inj.Applied(), compute
	}
	s1, a1, c1 := run()
	s2, a2, c2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("stats diverged:\n%+v\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("applied logs diverged:\n%+v\n%+v", a1, a2)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("vCPU progress diverged:\n%v\n%v", c1, c2)
	}
}
