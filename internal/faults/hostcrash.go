package faults

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file is the fleet-level crash planner: a seeded schedule of
// per-host crash points. Each victim host gets one CrashPlan armed on
// its journal CrashStore; the crash then fires when that host's churn
// traffic reaches the planned append. Fail-stop victims lose their
// disk image and must be evacuated; every other kind leaves a
// surviving image for core.Recover to replay.

// HostCrash schedules one crash on one fleet host.
type HostCrash struct {
	// Host is the victim's host id (the arbiter's dense 0..Hosts-1 ids).
	Host int
	// Plan is the crash point to arm on that host's journal store.
	Plan CrashPlan
}

// HostCrashPlan is a seeded storm: a set of distinct victim hosts,
// each with one planned crash.
type HostCrashPlan struct {
	// Seed reproduces the storm (recorded for provenance; the draws are
	// already baked into Crashes).
	Seed int64
	// Crashes lists the victims in ascending host order.
	Crashes []HostCrash
}

// Validate checks the storm shape against a fleet of the given size.
func (p HostCrashPlan) Validate(hosts int) error {
	seen := make(map[int]bool, len(p.Crashes))
	for _, c := range p.Crashes {
		if c.Host < 0 || c.Host >= hosts {
			return fmt.Errorf("faults: host crash victim %d out of range [0,%d)", c.Host, hosts)
		}
		if seen[c.Host] {
			return fmt.Errorf("faults: host %d crashed twice in one storm", c.Host)
		}
		seen[c.Host] = true
		if err := c.Plan.Validate(); err != nil {
			return fmt.Errorf("faults: host %d: %w", c.Host, err)
		}
	}
	return nil
}

// GenerateHostCrashPlan draws a seeded storm: victims distinct hosts
// out of hosts, each with a crash kind (failStopPct percent fail-stop,
// the rest drawn uniformly from the recoverable CrashKinds) at an
// append boundary in [1, maxAppend]. The same arguments always yield
// the same storm.
func GenerateHostCrashPlan(seed int64, hosts, victims, failStopPct, maxAppend int) (HostCrashPlan, error) {
	if hosts < 1 {
		return HostCrashPlan{}, fmt.Errorf("faults: storm over %d hosts", hosts)
	}
	if victims < 0 || victims > hosts {
		return HostCrashPlan{}, fmt.Errorf("faults: %d victims out of %d hosts", victims, hosts)
	}
	if failStopPct < 0 || failStopPct > 100 {
		return HostCrashPlan{}, fmt.Errorf("faults: fail-stop percentage %d out of [0,100]", failStopPct)
	}
	if maxAppend < 1 {
		return HostCrashPlan{}, fmt.Errorf("faults: max crash append %d (counting is 1-based)", maxAppend)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(hosts)[:victims]
	sort.Ints(perm)
	plan := HostCrashPlan{Seed: seed, Crashes: make([]HostCrash, 0, victims)}
	for _, host := range perm {
		kind := CrashFailStop
		if rng.Intn(100) >= failStopPct {
			kind = CrashKinds[rng.Intn(len(CrashKinds))]
		}
		plan.Crashes = append(plan.Crashes, HostCrash{
			Host: host,
			Plan: CrashPlan{
				AtAppend: 1 + rng.Intn(maxAppend),
				Kind:     kind,
				Seed:     rng.Int63(),
			},
		})
	}
	return plan, nil
}
