// Package benchfmt parses `go test -bench` output and models benchmark
// snapshots for the repo's perf-regression gate (cmd/benchdiff). It
// understands the standard benchmark result line
//
//	BenchmarkName-8   1000000   123.4 ns/op   48 B/op   1 allocs/op
//
// plus custom testing.B.ReportMetric units, and tracks `pkg:` headers
// emitted by `go test -v -bench` so results from a multi-package run
// are keyed unambiguously as "pkg/BenchmarkName".
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measurements by unit ("ns/op", "B/op",
// "allocs/op", or any custom ReportMetric unit).
type Metrics struct {
	Iters  int64              `json:"iters"`
	Values map[string]float64 `json:"values"`
}

// Snapshot is one benchmark run, serialized to BENCH_<date>.json.
type Snapshot struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Benchmarks maps "pkg/BenchmarkName" (GOMAXPROCS suffix stripped)
	// to its metrics.
	Benchmarks map[string]Metrics `json:"benchmarks"`
	// ExperimentsWallSeconds is the wall-clock of one
	// `experiments -mode quick -run all` run, if measured.
	ExperimentsWallSeconds float64 `json:"experiments_wall_seconds,omitempty"`
	// ExperimentsParallel is the -parallel value used for that run.
	ExperimentsParallel int `json:"experiments_parallel,omitempty"`
}

// Parse reads `go test -bench` output, accumulating results into
// bench-name → metrics. Lines that are not benchmark results are
// ignored except `pkg:` headers, which set the key prefix for the
// results that follow. A benchmark that appears more than once keeps
// the run with the lower ns/op (best-of, as perf comparisons should).
func Parse(r io.Reader) (map[string]Metrics, error) {
	out := map[string]Metrics{}
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, m, ok := parseLine(line)
		if !ok {
			continue
		}
		key := name
		if pkg != "" {
			key = pkg + "/" + name
		}
		if prev, dup := out[key]; dup && prev.Values["ns/op"] <= m.Values["ns/op"] {
			continue
		}
		out[key] = m
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseLine parses one result line. The name's -N GOMAXPROCS suffix is
// stripped so snapshots from machines with different core counts
// compare key-for-key.
func parseLine(line string) (string, Metrics, bool) {
	fields := strings.Fields(line)
	// Name, iterations, then (value, unit) pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", Metrics{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Metrics{}, false
	}
	m := Metrics{Iters: iters, Values: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Metrics{}, false
		}
		m.Values[fields[i+1]] = v
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name, m, true
}

// Delta is one metric's change between two snapshots.
type Delta struct {
	Bench   string
	Unit    string
	Old     float64
	New     float64
	Percent float64 // (new-old)/old * 100; +Inf when old == 0 and new > 0
}

func (d Delta) String() string {
	return fmt.Sprintf("%s %s: %.4g -> %.4g (%+.1f%%)", d.Bench, d.Unit, d.Old, d.New, d.Percent)
}

// gatedUnits are the metrics the regression gate inspects. Timing is
// tolerance-gated; allocation metrics get only a small amortization
// slack, because the hot paths are supposed to be allocation-free and
// a new alloc/op on a zero-alloc benchmark is an infinite-percent
// growth the slack can never excuse.
var gatedUnits = map[string]bool{"ns/op": true, "B/op": true, "allocs/op": true}

// allocSlackPct is the allowed B/op and allocs/op growth in percent.
// Benchmarks that allocate pay amortized slice/map growth whose
// per-op share shifts with b.N (a doubling landing just before the
// run ends vs just after), so a couple of percent is measurement
// noise, not a regression; zero-alloc paths stay strict because any
// new alloc is +Inf%.
const allocSlackPct = 2.5

// Compare reports regressions and improvements of cur vs old.
// tolerancePct is the allowed ns/op growth in percent; B/op and
// allocs/op may not grow beyond allocSlackPct. Benchmarks present
// in only one snapshot are skipped — renames should not fail the gate.
func Compare(old, cur map[string]Metrics, tolerancePct float64) (regressions, improvements []Delta) {
	names := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := old[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		o, n := old[name], cur[name]
		units := make([]string, 0, len(n.Values))
		for unit := range n.Values {
			if gatedUnits[unit] {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			ov, ok := o.Values[unit]
			if !ok {
				continue
			}
			nv := n.Values[unit]
			d := Delta{Bench: name, Unit: unit, Old: ov, New: nv}
			switch {
			case ov == 0 && nv == 0:
				continue
			case ov == 0:
				d.Percent = math.Inf(1)
			default:
				d.Percent = (nv - ov) / ov * 100
			}
			limit := tolerancePct
			if unit != "ns/op" {
				limit = allocSlackPct
			}
			switch {
			case d.Percent > limit:
				regressions = append(regressions, d)
			case d.Percent < -limit:
				improvements = append(improvements, d)
			}
		}
	}
	return regressions, improvements
}
