package benchfmt

import (
	"math"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: tableau/internal/sim
cpu: some cpu
BenchmarkEventScheduleAndRun-8   	63197713	        18.55 ns/op	       0 B/op	       0 allocs/op
BenchmarkScheduleCancel-8        	41234567	        29.10 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	tableau/internal/sim	2.493s
pkg: tableau/internal/planner
BenchmarkPlan48VMs-8   	     100	  10523410 ns/op	  131072 B/op	     512 allocs/op
BenchmarkCustomMetric-8 	    5000	    240000 ns/op	        12.50 widgets/op
--- some unrelated log line
ok  	tableau/internal/planner	1.2s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(got), got)
	}
	ev, ok := got["tableau/internal/sim/BenchmarkEventScheduleAndRun"]
	if !ok {
		t.Fatalf("missing pkg-prefixed, suffix-stripped key; have %v", got)
	}
	if ev.Iters != 63197713 || ev.Values["ns/op"] != 18.55 || ev.Values["allocs/op"] != 0 {
		t.Errorf("event bench = %+v", ev)
	}
	cm := got["tableau/internal/planner/BenchmarkCustomMetric"]
	if cm.Values["widgets/op"] != 12.5 {
		t.Errorf("custom metric = %+v", cm)
	}
}

func TestParseKeepsBestOfDuplicates(t *testing.T) {
	got, err := Parse(strings.NewReader(
		"BenchmarkX-8 100 50.0 ns/op\nBenchmarkX-8 100 40.0 ns/op\nBenchmarkX-8 100 45.0 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v := got["BenchmarkX"].Values["ns/op"]; v != 40.0 {
		t.Errorf("kept %v ns/op, want best-of 40", v)
	}
}

func TestParseIgnoresMalformedLines(t *testing.T) {
	got, err := Parse(strings.NewReader(
		"BenchmarkBroken-8 notanumber 1 ns/op\nBenchmarkAlsoBroken-8 100\nBenchmarkOK-8 100 1.0 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("parsed %d benchmarks, want only the well-formed one: %v", len(got), got)
	}
}

func mm(ns, bytes, allocs float64) Metrics {
	return Metrics{Iters: 1, Values: map[string]float64{"ns/op": ns, "B/op": bytes, "allocs/op": allocs}}
}

func TestCompare(t *testing.T) {
	old := map[string]Metrics{
		"a":    mm(100, 0, 0),
		"b":    mm(100, 48, 1),
		"c":    mm(100, 0, 0),
		"gone": mm(1, 1, 1),
	}
	cur := map[string]Metrics{
		"a":   mm(104, 0, 0), // +4% ns/op: within 10% tolerance
		"b":   mm(50, 0, 0),  // improvement on all three
		"c":   mm(120, 0, 1), // ns/op regression AND a new alloc
		"new": mm(1, 1, 1),   // only in cur: skipped
	}
	reg, imp := Compare(old, cur, 10)
	var regs []string
	for _, d := range reg {
		regs = append(regs, d.Bench+" "+d.Unit)
	}
	want := []string{"c allocs/op", "c ns/op"}
	if len(regs) != len(want) || regs[0] != want[0] || regs[1] != want[1] {
		t.Errorf("regressions = %v, want %v", regs, want)
	}
	if len(imp) != 3 {
		t.Errorf("improvements = %v, want b on all three units", imp)
	}
	// Zero→nonzero allocs is an infinite-percent regression, not a skip.
	for _, d := range reg {
		if d.Bench == "c" && d.Unit == "allocs/op" && !math.IsInf(d.Percent, 1) {
			t.Errorf("0→1 allocs delta = %v, want +Inf%%", d.Percent)
		}
	}
}

func TestCompareToleranceBoundary(t *testing.T) {
	old := map[string]Metrics{"a": mm(100, 0, 0)}
	reg, _ := Compare(old, map[string]Metrics{"a": mm(110, 0, 0)}, 10)
	if len(reg) != 0 {
		t.Errorf("exactly-at-tolerance flagged as regression: %v", reg)
	}
	reg, _ = Compare(old, map[string]Metrics{"a": mm(111, 0, 0)}, 10)
	if len(reg) != 1 {
		t.Errorf("over-tolerance not flagged: %v", reg)
	}
}

// TestCompareAllocSlack pins the allocation-gate policy: amortization
// noise on alloc-carrying benchmarks passes, real growth is flagged,
// and zero-alloc benchmarks stay strict (any new alloc is +Inf%).
func TestCompareAllocSlack(t *testing.T) {
	old := map[string]Metrics{"a": mm(100, 24000, 124), "z": mm(100, 0, 0)}
	// Within slack: one amortized alloc and <1% B/op drift.
	reg, _ := Compare(old, map[string]Metrics{"a": mm(100, 24200, 125), "z": mm(100, 0, 0)}, 10)
	if len(reg) != 0 {
		t.Errorf("amortization noise flagged as regression: %v", reg)
	}
	// Beyond slack: both allocation units regress.
	reg, _ = Compare(old, map[string]Metrics{"a": mm(100, 26000, 130), "z": mm(100, 0, 0)}, 10)
	if len(reg) != 2 {
		t.Errorf("real allocation growth not flagged on both units: %v", reg)
	}
	// Zero-alloc benchmark gains one alloc: +Inf%, slack never excuses it.
	reg, _ = Compare(old, map[string]Metrics{"a": mm(100, 24000, 124), "z": mm(100, 16, 1)}, 10)
	if len(reg) != 2 {
		t.Errorf("zero->nonzero alloc not flagged: %v", reg)
	}
}
