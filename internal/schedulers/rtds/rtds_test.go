package rtds

import (
	"testing"

	"tableau/internal/sim"
	"tableau/internal/vmm"
)

func spin() vmm.Program {
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		return vmm.Compute(1_000_000)
	})
}

func TestBudgetEnforced(t *testing.T) {
	s := New(Options{Default: Params{Budget: 2_500_000, Period: 10_000_000}})
	m := vmm.New(sim.New(1), 1, s, vmm.NoOverheads())
	v := m.AddVCPU("v", spin(), 256, true)
	m.Start()
	m.Run(200_000_000)
	// 25% server alone on a core: exactly 2.5 ms per 10 ms.
	if v.RunTime != 50_000_000 {
		t.Errorf("RunTime = %d, want 50 ms (25%% of 200 ms)", v.RunTime)
	}
}

func TestFourServersFillCore(t *testing.T) {
	s := New(Options{Default: Params{Budget: 2_500_000, Period: 10_000_000}})
	m := vmm.New(sim.New(1), 1, s, vmm.NoOverheads())
	var vs []*vmm.VCPU
	for i := 0; i < 4; i++ {
		vs = append(vs, m.AddVCPU("v", spin(), 256, true))
	}
	m.Start()
	m.Run(100_000_000)
	for i, v := range vs {
		if v.RunTime != 25_000_000 {
			t.Errorf("vcpu %d RunTime = %d, want 25 ms", i, v.RunTime)
		}
	}
}

func TestEDFPrefersEarlierDeadline(t *testing.T) {
	s := New(Options{
		Default: Params{Budget: 1_000_000, Period: 100_000_000},
		PerVCPU: map[int]Params{
			0: {Budget: 5_000_000, Period: 10_000_000},   // tight deadline
			1: {Budget: 50_000_000, Period: 100_000_000}, // loose deadline
		},
	})
	m := vmm.New(sim.New(1), 1, s, vmm.NoOverheads())
	tight := m.AddVCPU("tight", spin(), 256, true)
	m.AddVCPU("loose", spin(), 256, true)
	m.Start()
	m.Run(10_000_000)
	// In the first period the tight server (deadline 10 ms) beats the
	// loose one (deadline 100 ms) and receives its full budget.
	if tight.RunTime != 5_000_000 {
		t.Errorf("tight.RunTime = %d, want full 5 ms budget", tight.RunTime)
	}
}

func TestReplenishmentRevivesDepleted(t *testing.T) {
	s := New(Options{Default: Params{Budget: 2_000_000, Period: 10_000_000}})
	m := vmm.New(sim.New(1), 1, s, vmm.NoOverheads())
	v := m.AddVCPU("v", spin(), 256, true)
	m.Start()
	m.Run(5_000_000)
	if v.RunTime != 2_000_000 {
		t.Fatalf("first period budget: %d", v.RunTime)
	}
	m.Run(15_000_000)
	if v.RunTime != 4_000_000 {
		t.Errorf("after second period: %d, want 4 ms", v.RunTime)
	}
}

func TestWakePreemptsLatestDeadline(t *testing.T) {
	s := New(Options{
		PerVCPU: map[int]Params{
			0: {Budget: 2_000_000, Period: 4_000_000},    // urgent
			1: {Budget: 90_000_000, Period: 100_000_000}, // background
		},
	})
	m := vmm.New(sim.New(1), 1, s, vmm.NoOverheads())
	work := false
	urgent := m.AddVCPU("urgent", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		if work {
			work = false
			return vmm.Compute(10_000)
		}
		return vmm.BlockIndefinitely()
	}), 256, true)
	m.AddVCPU("bg", spin(), 256, true)
	m.Start()
	m.Run(1_000_000)
	work = true
	wakeAt := m.Now()
	m.Wake(urgent)
	m.Run(wakeAt + 200_000)
	if urgent.RunTime == 0 {
		t.Error("urgent waker did not preempt the background server")
	}
}

func TestSchedulingLatencyBounded(t *testing.T) {
	// The paper's Fig. 5/6 property: a server with budget B and period P
	// has worst-case scheduling delay ~(P - B) once budget-depleted.
	s := New(Options{Default: Params{Budget: 2_852_850, Period: 11_411_400}})
	m := vmm.New(sim.New(5), 1, s, vmm.NoOverheads())
	var worst int64
	var wakeAt int64
	work := false
	v := m.AddVCPU("v", vmm.ProgramFunc(func(mm *vmm.Machine, vv *vmm.VCPU, now int64) vmm.Action {
		if work {
			work = false
			if l := now - wakeAt; l > worst {
				worst = l
			}
			return vmm.Compute(10_000)
		}
		return vmm.BlockIndefinitely()
	}), 256, true)
	// Three budget-hungry competitors.
	for i := 0; i < 3; i++ {
		m.AddVCPU("bg", spin(), 256, true)
	}
	m.Start()
	for i := int64(1); i <= 100; i++ {
		m.Eng.At(i*3_000_000, func(now int64) {
			if v.State == vmm.Blocked {
				work = true
				wakeAt = now
				m.Wake(v)
			}
		})
	}
	m.Run(320_000_000)
	if worst == 0 {
		t.Fatal("no wakeups recorded")
	}
	// Bound: period minus budget plus replenishment-scan slack.
	bound := int64(11_411_400-2_852_850) + 3_000_000
	if worst > bound {
		t.Errorf("worst latency %d exceeds server bound %d", worst, bound)
	}
}

func TestAccessors(t *testing.T) {
	s := New(Options{Default: Params{Budget: 1_000_000, Period: 10_000_000}})
	m := vmm.New(sim.New(1), 1, s, vmm.NoOverheads())
	m.AddVCPU("v", spin(), 256, true)
	m.Start()
	if s.Budget(0) != 1_000_000 {
		t.Errorf("Budget(0) = %d", s.Budget(0))
	}
	if s.Deadline(0) != 10_000_000 {
		t.Errorf("Deadline(0) = %d", s.Deadline(0))
	}
}

func TestDefaultParams(t *testing.T) {
	s := New(Options{})
	if s.opts.Default.Period == 0 || s.opts.Default.Budget == 0 {
		t.Error("zero default params not filled")
	}
}

func TestGlobalQueueServesAcrossCores(t *testing.T) {
	// RTDS is a global scheduler: four 40% servers on two cores (80%
	// load) share both cores without static placement and all receive
	// their full budgets. (At exactly 100% load global EDF is famously
	// non-optimal — same-deadline ties strand the last server — which
	// the real RTDS shares; one more reason Tableau prefers
	// partitioning, paper Sec. 5.)
	s := New(Options{Default: Params{Budget: 4_000_000, Period: 10_000_000}})
	m := vmm.New(sim.New(1), 2, s, vmm.NoOverheads())
	var vs []*vmm.VCPU
	for i := 0; i < 4; i++ {
		vs = append(vs, m.AddVCPU("v", spin(), 256, true))
	}
	m.Start()
	m.Run(100_000_000)
	for i, v := range vs {
		if v.RunTime != 40_000_000 {
			t.Errorf("vcpu %d got %d, want full 40 ms budget", i, v.RunTime)
		}
	}
}

func TestDepletedQueueBookkeeping(t *testing.T) {
	s := New(Options{Default: Params{Budget: 2_000_000, Period: 10_000_000}})
	m := vmm.New(sim.New(1), 1, s, vmm.NoOverheads())
	v := m.AddVCPU("v", spin(), 256, true)
	m.Start()
	m.Run(3_000_000) // budget burnt at 2 ms
	if got := s.Budget(v.ID); got != 0 {
		t.Errorf("budget = %d, want depleted", got)
	}
	// Blocking while depleted must remove it from the depleted queue
	// cleanly (no duplicate entries on the next wake).
	m.Run(12_000_000)
	if got := v.RunTime; got != 4_000_000 {
		t.Errorf("after one replenishment: %d, want 4 ms", got)
	}
}

func TestWakeWhileDepletedWaitsForReplenishment(t *testing.T) {
	s := New(Options{Default: Params{Budget: 1_000_000, Period: 10_000_000}})
	m := vmm.New(sim.New(1), 1, s, vmm.NoOverheads())
	work := false
	v := m.AddVCPU("v", vmm.ProgramFunc(func(mm *vmm.Machine, vv *vmm.VCPU, now int64) vmm.Action {
		if work {
			work = false
			return vmm.Compute(2_000_000) // longer than one budget
		}
		return vmm.BlockIndefinitely()
	}), 256, true)
	m.Start()
	m.Eng.At(100_000, func(int64) { work = true; m.Wake(v) })
	m.Run(5_000_000)
	// Budget exhausted mid-burst at ~1.1 ms: no more service this period.
	if v.RunTime != 1_000_000 {
		t.Errorf("RunTime = %d, want exactly one budget", v.RunTime)
	}
	m.Run(25_000_000)
	if v.RunTime != 2_000_000 {
		t.Errorf("RunTime = %d, want burst completed after replenishment", v.RunTime)
	}
}
