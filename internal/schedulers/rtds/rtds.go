// Package rtds reimplements Xen's RTDS scheduler (from the RT-Xen
// project), the real-time baseline the paper compares against: global
// earliest-deadline-first scheduling of per-vCPU deferrable servers,
// each configured with a budget and a period. Like Tableau, RTDS offers
// predictable latency and utilization control — but it makes every
// decision online against global run/depleted queues protected by one
// big lock, which is why its overheads blow up with core count
// (Table 2) and its throughput collapses under frequent scheduler
// invocations (Fig. 7, "RTDS struggles to sustain high throughput").
package rtds

import (
	"tableau/internal/vmm"
)

// Params is the per-vCPU server configuration.
type Params struct {
	// Budget is the CPU time the vCPU may consume per Period, in ns.
	Budget int64
	// Period is the replenishment period, in ns.
	Period int64
}

// Options configures the scheduler.
type Options struct {
	// Default is used for vCPUs without an explicit parameter entry.
	Default Params
	// PerVCPU maps vCPU id to its server parameters.
	PerVCPU map[int]Params
}

type vcpuState struct {
	p        Params
	deadline int64 // current period end (absolute)
	budget   int64 // remaining budget in this period
	runStart int64 // -1 when not running
}

// Scheduler implements vmm.Scheduler with the RTDS algorithm.
type Scheduler struct {
	m    *vmm.Machine
	opts Options
	st   []vcpuState
	// runq holds runnable vCPUs with budget; depletedq those without.
	// Kept as slices scanned in full — mirroring RTDS's list-based
	// global queues (the cost shows up in the measured hot path).
	runq      []int
	depletedq []int
}

// New returns an RTDS scheduler.
func New(opts Options) *Scheduler {
	if opts.Default.Period == 0 {
		opts.Default = Params{Budget: 4_000_000, Period: 10_000_000}
	}
	return &Scheduler{opts: opts}
}

// Name implements vmm.Scheduler.
func (s *Scheduler) Name() string { return "rtds" }

// Attach implements vmm.Scheduler.
func (s *Scheduler) Attach(m *vmm.Machine) {
	s.m = m
	s.st = make([]vcpuState, len(m.VCPUs))
	for i := range m.VCPUs {
		p := s.opts.Default
		if pp, ok := s.opts.PerVCPU[i]; ok {
			p = pp
		}
		s.st[i] = vcpuState{p: p, deadline: p.Period, budget: p.Budget, runStart: -1}
		s.runq = append(s.runq, i)
	}
	s.armReplenishment()
}

// armReplenishment arms a periodic scan that replenishes depleted
// servers whose periods have rolled over (RTDS uses a dedicated
// replenishment timer).
func (s *Scheduler) armReplenishment() {
	// Scan at the GCD-ish granularity of a quarter default period.
	step := s.opts.Default.Period / 4
	if step <= 0 {
		step = 1_000_000
	}
	s.m.Eng.After(step, func(now int64) {
		s.replenish(now)
		s.armReplenishment()
	})
}

// refresh rolls vCPU i's server forward to the period containing now,
// replenishing its budget.
func (s *Scheduler) refresh(i int, now int64) {
	st := &s.st[i]
	if now < st.deadline {
		return
	}
	periods := (now-st.deadline)/st.p.Period + 1
	st.deadline += periods * st.p.Period
	st.budget = st.p.Budget
}

// replenish moves replenished servers from the depleted queue back to
// the run queue and kicks idle or lower-priority cores.
func (s *Scheduler) replenish(now int64) {
	moved := false
	for k := 0; k < len(s.depletedq); {
		i := s.depletedq[k]
		if now >= s.st[i].deadline {
			s.refresh(i, now)
			s.depletedq = append(s.depletedq[:k], s.depletedq[k+1:]...)
			s.runq = append(s.runq, i)
			moved = true
			continue
		}
		k++
	}
	if moved {
		s.kickForBest(now)
	}
}

// settle burns budget for the running time of vCPU i.
func (s *Scheduler) settle(i int, now int64) {
	st := &s.st[i]
	if st.runStart < 0 {
		return
	}
	if ran := now - st.runStart; ran > 0 {
		st.budget -= ran
		if st.budget < 0 {
			st.budget = 0
		}
	}
	st.runStart = now
}

// earliestRunnable returns the runnable vCPU with budget and the
// earliest deadline, scanning the global run queue, or -1.
func (s *Scheduler) earliestRunnable(now int64, exceptCPU int) int {
	best := -1
	var bestDeadline int64
	for _, i := range s.runq {
		v := s.m.VCPUs[i]
		if v.State != vmm.Runnable {
			continue
		}
		s.refresh(i, now)
		if s.st[i].budget <= 0 {
			continue
		}
		if best == -1 || s.st[i].deadline < bestDeadline {
			best, bestDeadline = i, s.st[i].deadline
		}
	}
	return best
}

// removeFromRunq removes vCPU i from the run queue.
func (s *Scheduler) removeFromRunq(i int) {
	for k, other := range s.runq {
		if other == i {
			s.runq = append(s.runq[:k], s.runq[k+1:]...)
			return
		}
	}
}

// PickNext implements vmm.Scheduler.
func (s *Scheduler) PickNext(cpu *vmm.PCPU, now int64) vmm.Decision {
	if prev := cpu.Current; prev != nil {
		i := prev.ID
		s.settle(i, now)
		s.st[i].runStart = -1
		if prev.State == vmm.Runnable {
			s.refresh(i, now)
			if s.st[i].budget > 0 {
				s.runq = append(s.runq, i)
			} else {
				s.depletedq = append(s.depletedq, i)
			}
		}
	}
	i := s.earliestRunnable(now, cpu.ID)
	if i < 0 {
		// Idle until the next replenishment could matter; the periodic
		// replenishment scan will kick us.
		return vmm.Decision{Until: vmm.NoTimer}
	}
	s.removeFromRunq(i)
	st := &s.st[i]
	st.runStart = now
	until := now + st.budget
	if st.deadline < until {
		until = st.deadline
	}
	return vmm.Decision{VCPU: s.m.VCPUs[i], Until: until}
}

// OnWake implements vmm.Scheduler: refresh the server, enqueue, and
// preempt the latest-deadline running vCPU if the waker has priority
// (global EDF wakeup path).
func (s *Scheduler) OnWake(v *vmm.VCPU, now int64) {
	i := v.ID
	s.refresh(i, now)
	if s.st[i].budget > 0 {
		s.runq = append(s.runq, i)
	} else {
		s.depletedq = append(s.depletedq, i)
		return
	}
	s.kickForBest(now)
}

// kickForBest finds a core for the highest-priority queued work: an
// idle core if any, else the running vCPU with the latest deadline if
// it is later than the best queued one.
func (s *Scheduler) kickForBest(now int64) {
	queued := 0
	bestQueued := -1
	var bestDeadline int64
	for _, i := range s.runq {
		if s.m.VCPUs[i].State != vmm.Runnable || s.m.VCPUs[i].CurrentCPU != -1 {
			continue
		}
		if s.st[i].budget <= 0 {
			continue
		}
		queued++
		if bestQueued == -1 || s.st[i].deadline < bestDeadline {
			bestQueued, bestDeadline = i, s.st[i].deadline
		}
	}
	if queued == 0 {
		return
	}
	// Kick one idle core per queued vCPU (replenishment can revive many
	// servers at once); if none are idle, preempt the latest-deadline
	// runner when the best queued work beats it.
	var victim *vmm.PCPU
	var victimDeadline int64
	for _, cpu := range s.m.CPUs {
		if cpu.Current == nil {
			if queued > 0 {
				s.m.Kick(cpu.ID)
				queued--
			}
			continue
		}
		d := s.st[cpu.Current.ID].deadline
		if victim == nil || d > victimDeadline {
			victim, victimDeadline = cpu, d
		}
	}
	if queued > 0 && victim != nil && victimDeadline > bestDeadline {
		s.m.Kick(victim.ID)
	}
}

// OnBlock implements vmm.Scheduler.
func (s *Scheduler) OnBlock(v *vmm.VCPU, now int64) {
	s.settle(v.ID, now)
	s.st[v.ID].runStart = -1
	s.removeFromRunq(v.ID)
	for k, other := range s.depletedq {
		if other == v.ID {
			s.depletedq = append(s.depletedq[:k], s.depletedq[k+1:]...)
			break
		}
	}
}

// Budget returns vCPU id's remaining budget (for tests).
func (s *Scheduler) Budget(id int) int64 { return s.st[id].budget }

// Deadline returns vCPU id's current deadline (for tests).
func (s *Scheduler) Deadline(id int) int64 { return s.st[id].deadline }
