// Package credit reimplements Xen's Credit scheduler, the default Xen VM
// scheduler the paper evaluates against: a weighted proportional-share
// scheduler with per-pCPU runqueues, periodic credit accounting, an I/O
// "boost" priority, caps, and idle-time work stealing.
//
// The behaviours the paper attributes to Credit re-emerge here because
// the algorithm is the same:
//
//   - BOOST lets a lone I/O VM preempt CPU hogs (Fig. 8 uncapped), but
//     degenerates when every VM performs I/O — everyone is boosted, so
//     effectively no one is (Fig. 7, Sec. 2.1);
//   - capped vCPUs that exhaust their credit must wait out the
//     accounting period, producing multi-millisecond stalls (Fig. 5(a),
//     Fig. 6(d));
//   - the sorted runqueue walk plus accounting make its decision path
//     the most expensive of the four schedulers (Table 1).
package credit

import (
	"sort"

	"tableau/internal/trace"
	"tableau/internal/vmm"
)

// Priorities, ordered: BOOST runs before UNDER, which runs before OVER.
// Parked vCPUs (capped, out of credit) do not run at all.
const (
	prioBoost = iota
	prioUnder
	prioOver
	prioParked
)

// Options configures the scheduler.
type Options struct {
	// Timeslice is the preemption quantum. The paper configures 5 ms
	// (documented best practice for I/O workloads) instead of the 30 ms
	// default.
	Timeslice int64
	// AccountingPeriod is the credit replenishment interval (Xen: 30 ms).
	AccountingPeriod int64
	// CapPct caps each vCPU to this percentage of one pCPU if > 0 and
	// the vCPU is marked Capped (Xen's per-domain cap).
	CapPct int
	// ActiveThreshold is the minimum CPU consumption per accounting
	// period that keeps a vCPU in the active set; inactive vCPUs are
	// not boosted on wake (Xen drops idle vCPUs from credit accounting
	// — the cause of the long ping tails the paper measures under
	// Credit, Fig. 6). Default 500 µs; set to 1 to keep every vCPU
	// active.
	ActiveThreshold int64
}

func (o Options) withDefaults() Options {
	if o.Timeslice == 0 {
		o.Timeslice = 5_000_000
	}
	if o.AccountingPeriod == 0 {
		o.AccountingPeriod = 30_000_000
	}
	if o.CapPct == 0 {
		o.CapPct = 25
	}
	if o.ActiveThreshold == 0 {
		o.ActiveThreshold = 500_000
	}
	return o
}

// vcpuState is the per-vCPU scheduler data.
type vcpuState struct {
	prio     int
	credits  int64 // ns-denominated credit balance
	cpu      int   // runqueue the vCPU currently sits on
	runStart int64 // when the current dispatch began (-1 if not running)
	usage    int64 // CPU consumed since the last accounting pass
	active   bool  // consumed enough last period to stay in the active set
}

// Scheduler implements vmm.Scheduler with the Credit algorithm.
type Scheduler struct {
	m    *vmm.Machine
	opts Options
	st   []vcpuState
	// queues[c] holds runnable vCPU ids waiting on pCPU c, kept sorted
	// by priority then FIFO.
	queues [][]int
}

// New returns a Credit scheduler.
func New(opts Options) *Scheduler { return &Scheduler{opts: opts.withDefaults()} }

// Name implements vmm.Scheduler.
func (s *Scheduler) Name() string { return "credit" }

// Attach implements vmm.Scheduler.
func (s *Scheduler) Attach(m *vmm.Machine) {
	s.m = m
	s.st = make([]vcpuState, len(m.VCPUs))
	s.queues = make([][]int, len(m.CPUs))
	for i, v := range m.VCPUs {
		s.st[i] = vcpuState{prio: prioUnder, credits: s.fairShare(v), cpu: i % len(m.CPUs), runStart: -1, active: true}
		s.queues[s.st[i].cpu] = append(s.queues[s.st[i].cpu], i)
	}
	s.scheduleAccounting()
}

// fairShare returns one accounting period's credit for v: its weight
// share of total machine capacity, or its cap if lower (for capped
// vCPUs).
func (s *Scheduler) fairShare(v *vmm.VCPU) int64 {
	totalWeight := 0
	for _, o := range s.m.VCPUs {
		totalWeight += o.Weight
	}
	if totalWeight == 0 {
		return 0
	}
	capacity := s.opts.AccountingPeriod * int64(len(s.m.CPUs))
	share := capacity * int64(v.Weight) / int64(totalWeight)
	if v.Capped {
		capped := s.opts.AccountingPeriod * int64(s.opts.CapPct) / 100
		if capped < share {
			share = capped
		}
	}
	return share
}

// scheduleAccounting arms the periodic credit replenishment (Xen's
// csched_acct).
func (s *Scheduler) scheduleAccounting() {
	s.m.Eng.After(s.opts.AccountingPeriod, func(now int64) {
		s.account(now)
		s.scheduleAccounting()
	})
}

// account replenishes credits, reconsiders priorities, unparks capped
// vCPUs, and refreshes the active set.
func (s *Scheduler) account(now int64) {
	kick := false
	for i := range s.st {
		v := s.m.VCPUs[i]
		st := &s.st[i]
		s.settle(i, now)
		st.active = st.usage >= s.opts.ActiveThreshold
		st.usage = 0
		st.credits += s.fairShare(v)
		// Clamp: idle vCPUs must not hoard unbounded credit.
		if max := 2 * s.fairShare(v); st.credits > max {
			st.credits = max
		}
		if v.Capped && st.credits > 0 && st.prio == prioParked {
			st.prio = prioUnder
			if v.State == vmm.Runnable {
				s.enqueue(i)
				kick = true
			}
		}
		if st.prio != prioBoost && st.prio != prioParked {
			if st.credits < 0 {
				st.prio = prioOver
			} else {
				st.prio = prioUnder
			}
		}
		// Boost does not survive accounting (Xen clears it at ticks).
		if st.prio == prioBoost {
			st.prio = prioUnder
		}
	}
	if kick {
		for _, cpu := range s.m.CPUs {
			if cpu.Current == nil {
				s.m.Kick(cpu.ID)
			}
		}
	}
}

// settle debits the running time of vCPU i since its dispatch.
func (s *Scheduler) settle(i int, now int64) {
	st := &s.st[i]
	if st.runStart < 0 {
		return
	}
	ran := now - st.runStart
	if ran > 0 {
		st.credits -= ran
		st.usage += ran
	}
	st.runStart = now
}

// enqueue inserts vCPU i into its pCPU's runqueue in priority order
// (FIFO within a priority).
func (s *Scheduler) enqueue(i int) {
	st := &s.st[i]
	q := s.queues[st.cpu]
	pos := len(q)
	for k, other := range q {
		if s.st[other].prio > st.prio {
			pos = k
			break
		}
	}
	q = append(q, 0)
	copy(q[pos+1:], q[pos:])
	q[pos] = i
	s.queues[st.cpu] = q
}

// dequeue removes vCPU i from its runqueue if present.
func (s *Scheduler) dequeue(i int) {
	q := s.queues[s.st[i].cpu]
	for k, other := range q {
		if other == i {
			s.queues[s.st[i].cpu] = append(q[:k], q[k+1:]...)
			return
		}
	}
}

// PickNext implements vmm.Scheduler.
func (s *Scheduler) PickNext(cpu *vmm.PCPU, now int64) vmm.Decision {
	// Settle and requeue the previous vCPU.
	if prev := cpu.Current; prev != nil {
		i := prev.ID
		s.settle(i, now)
		st := &s.st[i]
		st.runStart = -1
		// Boost is consumed by having run.
		if st.prio == prioBoost {
			st.prio = prioUnder
		}
		if st.credits < 0 {
			if prev.Capped {
				st.prio = prioParked
			} else {
				st.prio = prioOver
			}
		}
		if prev.State == vmm.Runnable && st.prio != prioParked {
			s.enqueue(i)
		}
	}
	// Local BOOST/UNDER work first.
	if i, ok := s.popRunnable(cpu.ID, prioUnder); ok {
		return s.dispatch(i, cpu, now)
	}
	// No local work above OVER: steal BOOST/UNDER from other pCPUs
	// before falling back to local OVER work or idling — Xen's
	// csched_load_balance runs before OVER vCPUs are considered.
	if i, ok := s.steal(cpu.ID); ok {
		return s.dispatch(i, cpu, now)
	}
	if i, ok := s.popRunnable(cpu.ID, prioOver); ok {
		return s.dispatch(i, cpu, now)
	}
	return vmm.Decision{Until: vmm.NoTimer}
}

// popRunnable pops the best vCPU with priority <= maxPrio from cpu c's
// queue, skipping entries that are no longer runnable.
func (s *Scheduler) popRunnable(c int, maxPrio int) (int, bool) {
	q := s.queues[c]
	for k := 0; k < len(q); k++ {
		i := q[k]
		v := s.m.VCPUs[i]
		if v.State != vmm.Runnable || s.st[i].prio > maxPrio {
			continue
		}
		s.queues[c] = append(q[:k], q[k+1:]...)
		return i, true
	}
	return 0, false
}

// steal scans other pCPUs for a BOOST or UNDER vCPU to migrate here.
func (s *Scheduler) steal(c int) (int, bool) {
	for _, other := range s.m.CPUs {
		if other.ID == c {
			continue
		}
		if i, ok := s.popRunnable(other.ID, prioUnder); ok {
			s.st[i].cpu = c
			if t := s.m.Tracer(); t != nil {
				// Arg1 = 1 marks an explicit work-steal, as opposed to
				// the machine-observed placement migration (Arg1 = 0).
				t.Emit(trace.EvMigrate, c, s.m.Eng.Now(), i, int64(other.ID), 1)
			}
			return i, true
		}
	}
	return 0, false
}

// dispatch runs vCPU i on cpu for one timeslice.
func (s *Scheduler) dispatch(i int, cpu *vmm.PCPU, now int64) vmm.Decision {
	st := &s.st[i]
	st.cpu = cpu.ID
	st.runStart = now
	slice := s.opts.Timeslice
	// A capped vCPU may not run past its remaining credit.
	if v := s.m.VCPUs[i]; v.Capped && st.credits < slice {
		slice = st.credits
		if slice <= 0 {
			slice = 1
		}
	}
	return vmm.Decision{VCPU: s.m.VCPUs[i], Until: now + slice}
}

// OnWake implements vmm.Scheduler: Xen's boost heuristic. A waking vCPU
// in UNDER priority is boosted and preempts lower-priority work. Capped
// vCPUs are never boosted (in Xen, cap enforcement marks them parked or
// strips their boost eligibility) — one reason the paper's capped
// Credit scenarios show long ping tails (Fig. 6(d)).
func (s *Scheduler) OnWake(v *vmm.VCPU, now int64) {
	st := &s.st[v.ID]
	if st.prio == prioUnder && st.credits > 0 && st.active {
		st.prio = prioBoost
	}
	if st.prio == prioParked {
		// Out of cap: stays parked; accounting will release it.
		return
	}
	// Prefer the last pCPU; fall back to the emptiest queue.
	target := v.LastCPU
	if target < 0 {
		target = s.emptiestQueue()
	}
	st.cpu = target
	s.enqueue(v.ID)
	// Preempt if we can beat what the target is running.
	cur := s.m.CPUs[target].Current
	if cur == nil || (st.prio == prioBoost && s.st[cur.ID].prio > prioBoost) {
		s.m.Kick(target)
		return
	}
	// Otherwise look for any idle pCPU to pick the work up.
	for _, cpu := range s.m.CPUs {
		if cpu.Current == nil {
			s.m.Kick(cpu.ID)
			return
		}
	}
}

func (s *Scheduler) emptiestQueue() int {
	best, bestLen := 0, int(^uint(0)>>1)
	for c, q := range s.queues {
		if len(q) < bestLen {
			best, bestLen = c, len(q)
		}
	}
	return best
}

// OnBlock implements vmm.Scheduler.
func (s *Scheduler) OnBlock(v *vmm.VCPU, now int64) {
	s.settle(v.ID, now)
	s.st[v.ID].runStart = -1
	s.dequeue(v.ID)
}

// Credits returns the current credit balance of vCPU id (for tests).
func (s *Scheduler) Credits(id int) int64 { return s.st[id].credits }

// Prio returns the current priority of vCPU id (for tests).
func (s *Scheduler) Prio(id int) int { return s.st[id].prio }

// queueLens reports queue lengths (for tests).
func (s *Scheduler) queueLens() []int {
	lens := make([]int, len(s.queues))
	for i, q := range s.queues {
		lens[i] = len(q)
	}
	sort.Ints(lens)
	return lens
}
