package credit

import (
	"testing"

	"tableau/internal/sim"
	"tableau/internal/vmm"
)

func spin() vmm.Program {
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		return vmm.Compute(1_000_000)
	})
}

// ioLoop computes c then blocks for b, forever.
func ioLoop(c, b int64) vmm.Program {
	phase := make(map[int]int)
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		phase[v.ID]++
		if phase[v.ID]%2 == 1 {
			return vmm.Compute(c)
		}
		return vmm.Block(b)
	})
}

func newMachine(cores int, opts Options) (*vmm.Machine, *Scheduler) {
	s := New(opts)
	m := vmm.New(sim.New(1), cores, s, vmm.NoOverheads())
	return m, s
}

func TestEqualWeightFairShare(t *testing.T) {
	m, _ := newMachine(1, Options{})
	a := m.AddVCPU("a", spin(), 256, false)
	b := m.AddVCPU("b", spin(), 256, false)
	m.Start()
	m.Run(300_000_000)
	total := a.RunTime + b.RunTime
	if total != 300_000_000 {
		t.Fatalf("total = %d, machine not work-conserving", total)
	}
	diff := a.RunTime - b.RunTime
	if diff < 0 {
		diff = -diff
	}
	if diff > total/10 {
		t.Errorf("unfair: a=%d b=%d", a.RunTime, b.RunTime)
	}
}

func TestWeightedShare(t *testing.T) {
	m, _ := newMachine(1, Options{})
	heavy := m.AddVCPU("heavy", spin(), 512, false)
	light := m.AddVCPU("light", spin(), 256, false)
	m.Start()
	m.Run(600_000_000)
	ratio := float64(heavy.RunTime) / float64(light.RunTime)
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("weight 512:256 runtime ratio = %.2f, want ~2", ratio)
	}
}

func TestCapEnforced(t *testing.T) {
	m, _ := newMachine(1, Options{CapPct: 25})
	capped := m.AddVCPU("capped", spin(), 256, true)
	m.Start()
	m.Run(300_000_000)
	// Alone on the machine but capped at 25%: around 75 ms of 300 ms.
	frac := float64(capped.RunTime) / 300_000_000
	if frac < 0.20 || frac > 0.30 {
		t.Errorf("capped vCPU consumed %.2f of the core, want ~0.25", frac)
	}
}

func TestBoostLowersIOLatency(t *testing.T) {
	// One I/O vCPU against three CPU hogs on one core. With BOOST the
	// I/O vCPU preempts the hogs on each wakeup, so its wake-to-run
	// latency stays far below the timeslice.
	m, _ := newMachine(1, Options{Timeslice: 5_000_000, ActiveThreshold: 1})
	var lat []int64
	var wakeAt int64
	state := 0
	io := m.AddVCPU("io", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		if state == 1 {
			state = 0
			lat = append(lat, now-wakeAt)
			return vmm.Compute(10_000)
		}
		return vmm.BlockIndefinitely()
	}), 256, false)
	for i := 0; i < 3; i++ {
		m.AddVCPU("hog", spin(), 256, false)
	}
	m.Start()
	for i := int64(1); i <= 20; i++ {
		at := i * 10_000_000
		m.Eng.At(at, func(now int64) {
			if io.State == vmm.Blocked {
				state = 1
				wakeAt = now
				m.Wake(io)
			}
		})
	}
	m.Run(250_000_000)
	if len(lat) < 10 {
		t.Fatalf("only %d wakeups served", len(lat))
	}
	var worst int64
	for _, l := range lat {
		if l > worst {
			worst = l
		}
	}
	// Boost preempts immediately: worst-case well under one timeslice.
	if worst > 1_000_000 {
		t.Errorf("boosted wake-to-run latency = %d ns, want < 1 ms", worst)
	}
}

func TestBoostDilution(t *testing.T) {
	// The paper's Sec. 2.1 pathology: when every vCPU performs I/O,
	// everyone is boosted, so boosting helps no one. Compare the I/O
	// latency of a vantage vCPU with CPU-bound vs I/O-bound background.
	run := func(bgIO bool) int64 {
		s := New(Options{Timeslice: 5_000_000, ActiveThreshold: 1})
		m := vmm.New(sim.New(3), 1, s, vmm.NoOverheads())
		var worst int64
		var wakeAt int64
		state := 0
		io := m.AddVCPU("vantage", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
			if state == 1 {
				state = 0
				if l := now - wakeAt; l > worst {
					worst = l
				}
				return vmm.Compute(10_000)
			}
			return vmm.BlockIndefinitely()
		}), 256, false)
		for i := 0; i < 3; i++ {
			if bgIO {
				m.AddVCPU("bg", ioLoop(500_000, 100_000), 256, false)
			} else {
				m.AddVCPU("bg", spin(), 256, false)
			}
		}
		m.Start()
		for i := int64(1); i <= 50; i++ {
			m.Eng.At(i*7_000_000, func(now int64) {
				if io.State == vmm.Blocked {
					state = 1
					wakeAt = now
					m.Wake(io)
				}
			})
		}
		m.Run(400_000_000)
		return worst
	}
	cpuBG := run(false)
	ioBG := run(true)
	if ioBG <= cpuBG {
		t.Errorf("boost dilution not observed: worst latency with I/O BG %d <= CPU BG %d", ioBG, cpuBG)
	}
}

func TestCappedStallNearAccountingPeriod(t *testing.T) {
	// A capped vCPU that exhausts its budget waits for the accounting
	// tick — the multi-millisecond stalls of Figs. 5(a)/6(d).
	m, _ := newMachine(1, Options{CapPct: 25, AccountingPeriod: 30_000_000})
	capped := m.AddVCPU("capped", spin(), 256, true)
	m.Start()
	m.Run(300_000_000)
	_ = capped
	// Find the longest gap in service by sampling credits: instead we
	// assert the budget cycle: runtime stays at ~25% (stall phases must
	// exist for this to hold given the vCPU always wants CPU).
	frac := float64(capped.RunTime) / 300_000_000
	if frac > 0.30 {
		t.Errorf("capped spinner got %.2f, cap not enforced by stalls", frac)
	}
}

func TestWorkStealingUsesIdleCores(t *testing.T) {
	m, _ := newMachine(2, Options{})
	// Both vCPUs start on queue 0 (Attach assigns i%cores: a->0, b->1;
	// force both to 0 by waking onto the same queue).
	a := m.AddVCPU("a", spin(), 256, false)
	b := m.AddVCPU("b", spin(), 256, false)
	m.Start()
	m.Run(100_000_000)
	// With stealing, both cores stay busy and each vCPU gets ~a core.
	if a.RunTime+b.RunTime < 190_000_000 {
		t.Errorf("machine under-utilized: a=%d b=%d", a.RunTime, b.RunTime)
	}
}

func TestQueueLensReflectQueues(t *testing.T) {
	m, s := newMachine(2, Options{})
	m.AddVCPU("a", spin(), 256, false)
	m.AddVCPU("b", spin(), 256, false)
	m.Start()
	if got := len(s.queueLens()); got != 2 {
		t.Errorf("queueLens() len = %d", got)
	}
}

func TestPrioAndCreditsAccessors(t *testing.T) {
	m, s := newMachine(1, Options{})
	m.AddVCPU("a", spin(), 256, false)
	m.Start()
	m.Run(10_000_000)
	if s.Prio(0) < prioBoost || s.Prio(0) > prioParked {
		t.Errorf("prio out of range: %d", s.Prio(0))
	}
	// A lone spinner burns more than its share: credits go negative
	// between accountings at some point; just ensure settle ran.
	_ = s.Credits(0)
}

func TestActiveSetGatesBoost(t *testing.T) {
	// A nearly idle vCPU (one tiny burst per accounting period) drops
	// out of the active set and loses boost on wake — Xen's behaviour
	// behind the paper's Fig. 6 Credit ping tails.
	m, s := newMachine(1, Options{Timeslice: 5_000_000, AccountingPeriod: 30_000_000})
	work := false
	idleV := m.AddVCPU("idle", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		if work {
			work = false
			return vmm.Compute(10_000)
		}
		return vmm.BlockIndefinitely()
	}), 256, false)
	m.AddVCPU("hog", spin(), 256, false)
	m.Start()
	m.Run(100_000_000) // several accounting periods with ~zero usage
	work = true
	m.Wake(idleV)
	if got := s.Prio(idleV.ID); got == prioBoost {
		t.Errorf("inactive vCPU was boosted (prio %d)", got)
	}
	// A busy vCPU keeps its active flag and gets boosted on wake.
	m2, s2 := newMachine(1, Options{Timeslice: 5_000_000, AccountingPeriod: 30_000_000})
	work2 := false
	busyV := m2.AddVCPU("busy", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		if work2 {
			work2 = false
			return vmm.Compute(2_000_000) // 2 ms per wake: well above threshold
		}
		return vmm.BlockIndefinitely()
	}), 256, false)
	m2.AddVCPU("hog", spin(), 256, false)
	m2.Start()
	for i := int64(1); i <= 20; i++ {
		m2.Eng.At(i*5_000_000, func(int64) {
			if busyV.State == vmm.Blocked {
				work2 = true
				m2.Wake(busyV)
			}
		})
	}
	m2.Run(100_000_000)
	work2 = true
	m2.Wake(busyV)
	if got := s2.Prio(busyV.ID); got != prioBoost {
		t.Errorf("active vCPU not boosted (prio %d)", got)
	}
}

func TestParkedVCPUWaitsForAccounting(t *testing.T) {
	// A capped vCPU that exhausts its credit parks until the next
	// accounting tick: its wake is effectively ignored while parked —
	// the budget-exhaustion stalls of Figs. 5(a)/6(d).
	m, s := newMachine(1, Options{CapPct: 10, AccountingPeriod: 30_000_000})
	v := m.AddVCPU("capped", spin(), 256, true)
	m.Start()
	m.Run(15_000_000) // burn through the 3 ms cap mid-period
	if got := s.Prio(v.ID); got != prioParked {
		t.Fatalf("prio = %d, want parked", got)
	}
	ranAtPark := v.RunTime
	m.Run(29_000_000) // still inside the period
	if v.RunTime != ranAtPark {
		t.Error("parked vCPU ran before accounting")
	}
	m.Run(45_000_000) // next accounting unparks
	if v.RunTime == ranAtPark {
		t.Error("vCPU not released after accounting")
	}
}
