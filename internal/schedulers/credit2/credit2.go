// Package credit2 reimplements Xen's Credit2 scheduler as evaluated by
// the paper: a weight-proportional credit scheduler with runqueues
// shared per socket, credit-ordered dispatch, global "reset events"
// when the head runs out of credit, a rate limit instead of a fixed
// timeslice, and — deliberately — no I/O boosting (Credit2 removed
// Credit's boost because it "is now understood to cause performance
// unpredictability", paper Sec. 7.2).
package credit2

import (
	"sort"

	"tableau/internal/vmm"
)

// creditInit is the credit issued at each reset event (Xen: CSCHED2_
// CREDIT_INIT, 10.5 ms in nanosecond-denominated credit).
const creditInit = 10_500_000

// Options configures the scheduler.
type Options struct {
	// CoresPerRunqueue groups pCPUs into shared runqueues (Xen: one per
	// socket). Default 8, matching the paper's dual-socket 16-core box.
	CoresPerRunqueue int
	// Ratelimit is the minimum time a vCPU runs before preemption
	// (Xen default 1 ms).
	Ratelimit int64
}

func (o Options) withDefaults() Options {
	if o.CoresPerRunqueue == 0 {
		o.CoresPerRunqueue = 8
	}
	if o.Ratelimit == 0 {
		o.Ratelimit = 1_000_000
	}
	return o
}

type vcpuState struct {
	credits  int64
	runStart int64 // -1 when not running
	rq       int   // runqueue index
	queued   bool
}

// Scheduler implements vmm.Scheduler with the Credit2 algorithm.
type Scheduler struct {
	m    *vmm.Machine
	opts Options
	st   []vcpuState
	// rqs[r] holds runnable vCPU ids, kept sorted by credits descending.
	rqs    [][]int
	resets int64
}

// New returns a Credit2 scheduler.
func New(opts Options) *Scheduler { return &Scheduler{opts: opts.withDefaults()} }

// Name implements vmm.Scheduler.
func (s *Scheduler) Name() string { return "credit2" }

// Attach implements vmm.Scheduler.
func (s *Scheduler) Attach(m *vmm.Machine) {
	s.m = m
	nrq := (len(m.CPUs) + s.opts.CoresPerRunqueue - 1) / s.opts.CoresPerRunqueue
	s.rqs = make([][]int, nrq)
	s.st = make([]vcpuState, len(m.VCPUs))
	// Runqueues may cover different core counts (a 12-core guest split
	// 8+4); balance the initial assignment by load per core, as Xen's
	// runqueue selection does.
	coresOf := make([]int, nrq)
	for c := range m.CPUs {
		coresOf[s.rqOf(c)]++
	}
	assigned := make([]int, nrq)
	for i := range m.VCPUs {
		best := 0
		for r := 1; r < nrq; r++ {
			// assigned[r]/coresOf[r] < assigned[best]/coresOf[best]
			if assigned[r]*coresOf[best] < assigned[best]*coresOf[r] {
				best = r
			}
		}
		assigned[best]++
		s.st[i] = vcpuState{credits: creditInit, runStart: -1, rq: best}
		s.push(i)
	}
}

func (s *Scheduler) rqOf(cpu int) int { return cpu / s.opts.CoresPerRunqueue }

// push inserts vCPU i into its runqueue, ordered by credit descending.
func (s *Scheduler) push(i int) {
	st := &s.st[i]
	if st.queued {
		return
	}
	q := s.rqs[st.rq]
	pos := sort.Search(len(q), func(k int) bool { return s.st[q[k]].credits < st.credits })
	q = append(q, 0)
	copy(q[pos+1:], q[pos:])
	q[pos] = i
	s.rqs[st.rq] = q
	st.queued = true
}

func (s *Scheduler) remove(i int) {
	st := &s.st[i]
	if !st.queued {
		return
	}
	q := s.rqs[st.rq]
	for k, other := range q {
		if other == i {
			s.rqs[st.rq] = append(q[:k], q[k+1:]...)
			break
		}
	}
	st.queued = false
}

// settle burns credit for the time vCPU i has been running. Burn rate
// is inversely proportional to weight (weight 256 burns 1 credit/ns).
func (s *Scheduler) settle(i int, now int64) {
	st := &s.st[i]
	if st.runStart < 0 {
		return
	}
	ran := now - st.runStart
	if ran > 0 {
		w := s.m.VCPUs[i].Weight
		if w <= 0 {
			w = 256
		}
		st.credits -= ran * 256 / int64(w)
	}
	st.runStart = now
}

// PickNext implements vmm.Scheduler.
func (s *Scheduler) PickNext(cpu *vmm.PCPU, now int64) vmm.Decision {
	r := s.rqOf(cpu.ID)
	if prev := cpu.Current; prev != nil {
		s.settle(prev.ID, now)
		st := &s.st[prev.ID]
		st.runStart = -1
		if prev.State == vmm.Runnable {
			st.rq = r
			s.push(prev.ID)
		}
	}
	q := s.rqs[r]
	// Reset event: if the best runnable credit is <= 0, re-issue credit
	// to every vCPU in the runqueue (Xen's reset_credit).
	best := -1
	for _, i := range q {
		if s.m.VCPUs[i].State == vmm.Runnable {
			best = i
			break
		}
	}
	if best >= 0 && s.st[best].credits <= 0 {
		s.resets++
		for i := range s.st {
			if s.st[i].rq != r {
				continue
			}
			s.st[i].credits += creditInit
			// Xen caps accumulated credit: mostly-idle vCPUs cannot
			// bank an unbounded scheduling advantage while asleep.
			if s.st[i].credits > 2*creditInit {
				s.st[i].credits = 2 * creditInit
			}
		}
		s.resort(r)
	}
	for k := 0; k < len(s.rqs[r]); k++ {
		i := s.rqs[r][k]
		if s.m.VCPUs[i].State != vmm.Runnable {
			continue
		}
		s.rqs[r] = append(s.rqs[r][:k], s.rqs[r][k+1:]...)
		s.st[i].queued = false
		s.st[i].runStart = now
		// Run until credit parity with the next-best or the ratelimit,
		// whichever is later; this approximates Credit2's
		// time-to-credit-equality slice computation.
		slice := s.opts.Ratelimit
		if k < len(s.rqs[r]) {
			if next := s.bestRunnableCredit(r); next >= 0 {
				if delta := s.st[i].credits - next; delta > slice {
					slice = delta
				}
			}
		}
		return vmm.Decision{VCPU: s.m.VCPUs[i], Until: now + slice}
	}
	return vmm.Decision{Until: vmm.NoTimer}
}

func (s *Scheduler) bestRunnableCredit(r int) int64 {
	for _, i := range s.rqs[r] {
		if s.m.VCPUs[i].State == vmm.Runnable {
			return s.st[i].credits
		}
	}
	return -1
}

func (s *Scheduler) resort(r int) {
	q := s.rqs[r]
	sort.SliceStable(q, func(a, b int) bool { return s.st[q[a]].credits > s.st[q[b]].credits })
}

// OnWake implements vmm.Scheduler: enqueue and, if the waker out-credits
// what a core of its runqueue is running (by more than the rate limit's
// worth), preempt — but never boost.
func (s *Scheduler) OnWake(v *vmm.VCPU, now int64) {
	st := &s.st[v.ID]
	if last := v.LastCPU; last >= 0 {
		st.rq = s.rqOf(last)
	}
	s.push(v.ID)
	lo, hi := st.rq*s.opts.CoresPerRunqueue, (st.rq+1)*s.opts.CoresPerRunqueue
	if hi > len(s.m.CPUs) {
		hi = len(s.m.CPUs)
	}
	var victim *vmm.PCPU
	var victimCredit int64
	for _, cpu := range s.m.CPUs[lo:hi] {
		if cpu.Current == nil {
			s.m.Kick(cpu.ID)
			return
		}
		s.settle(cpu.Current.ID, now)
		c := s.st[cpu.Current.ID].credits
		if victim == nil || c < victimCredit {
			victim, victimCredit = cpu, c
		}
	}
	if victim != nil && st.credits > victimCredit {
		s.m.Kick(victim.ID)
	}
}

// OnBlock implements vmm.Scheduler.
func (s *Scheduler) OnBlock(v *vmm.VCPU, now int64) {
	s.settle(v.ID, now)
	s.st[v.ID].runStart = -1
	s.remove(v.ID)
}

// Resets returns the number of credit reset events (for tests).
func (s *Scheduler) Resets() int64 { return s.resets }

// Credits returns vCPU id's current credit (for tests).
func (s *Scheduler) Credits(id int) int64 { return s.st[id].credits }
