package credit2

import (
	"testing"

	"tableau/internal/sim"
	"tableau/internal/vmm"
)

func spin() vmm.Program {
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		return vmm.Compute(1_000_000)
	})
}

func newMachine(cores int, opts Options) (*vmm.Machine, *Scheduler) {
	s := New(opts)
	m := vmm.New(sim.New(1), cores, s, vmm.NoOverheads())
	return m, s
}

func TestFairShare(t *testing.T) {
	m, _ := newMachine(1, Options{})
	a := m.AddVCPU("a", spin(), 256, false)
	b := m.AddVCPU("b", spin(), 256, false)
	m.Start()
	m.Run(200_000_000)
	total := a.RunTime + b.RunTime
	if total != 200_000_000 {
		t.Fatalf("not work-conserving: %d", total)
	}
	diff := a.RunTime - b.RunTime
	if diff < 0 {
		diff = -diff
	}
	if diff > total/10 {
		t.Errorf("unfair: a=%d b=%d", a.RunTime, b.RunTime)
	}
}

func TestWeightedShare(t *testing.T) {
	m, _ := newMachine(1, Options{})
	heavy := m.AddVCPU("heavy", spin(), 512, false)
	light := m.AddVCPU("light", spin(), 256, false)
	m.Start()
	m.Run(600_000_000)
	ratio := float64(heavy.RunTime) / float64(light.RunTime)
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("weight 512:256 ratio = %.2f, want ~2", ratio)
	}
}

func TestResetEventsOccur(t *testing.T) {
	m, s := newMachine(1, Options{})
	m.AddVCPU("a", spin(), 256, false)
	m.AddVCPU("b", spin(), 256, false)
	m.Start()
	m.Run(500_000_000)
	if s.Resets() == 0 {
		t.Error("no credit reset events in 500 ms of contention")
	}
}

func TestNoBoostOnWake(t *testing.T) {
	// Credit2 has no boost: a waking vCPU with *less* credit than the
	// running one does not preempt it.
	m, s := newMachine(1, Options{Ratelimit: 1_000_000})
	work := false
	io := m.AddVCPU("io", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		if work {
			work = false
			return vmm.Compute(10_000)
		}
		return vmm.BlockIndefinitely()
	}), 256, false)
	hog := m.AddVCPU("hog", spin(), 256, false)
	m.Start()
	m.Run(5_000_000)
	// Burn io's credit below the hog's so the wake cannot preempt.
	s.st[io.ID].credits = s.st[hog.ID].credits - 5_000_000
	wakeAt := m.Now()
	work = true
	m.Wake(io)
	m.Run(wakeAt + 500_000)
	if io.RunTime != 0 {
		t.Errorf("lower-credit waker preempted the runner (no-boost violated): ran %d", io.RunTime)
	}
	// It does run eventually.
	m.Run(wakeAt + 50_000_000)
	if io.RunTime == 0 {
		t.Error("waker starved entirely")
	}
}

func TestWakePreemptsWhenCreditHigher(t *testing.T) {
	m, s := newMachine(1, Options{Ratelimit: 1_000_000})
	work := false
	io := m.AddVCPU("io", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		if work {
			work = false
			return vmm.Compute(10_000)
		}
		return vmm.BlockIndefinitely()
	}), 256, false)
	hog := m.AddVCPU("hog", spin(), 256, false)
	m.Start()
	m.Run(8_000_000) // hog burns ~8 ms of credit
	if s.Credits(io.ID) <= s.Credits(hog.ID) {
		t.Skip("credit relation not established")
	}
	work = true
	wakeAt := m.Now()
	m.Wake(io)
	m.Run(wakeAt + 2_000_000)
	if io.RunTime == 0 {
		t.Error("higher-credit waker failed to get the CPU promptly")
	}
}

func TestRunqueuePerSocket(t *testing.T) {
	m, s := newMachine(16, Options{CoresPerRunqueue: 8})
	for i := 0; i < 4; i++ {
		m.AddVCPU("v", spin(), 256, false)
	}
	m.Start()
	if len(s.rqs) != 2 {
		t.Errorf("runqueues = %d, want 2 for 16 cores / 8 per rq", len(s.rqs))
	}
	if s.rqOf(0) != 0 || s.rqOf(7) != 0 || s.rqOf(8) != 1 || s.rqOf(15) != 1 {
		t.Error("rqOf mapping wrong")
	}
}

func TestMultiCoreWorkConserving(t *testing.T) {
	m, _ := newMachine(2, Options{CoresPerRunqueue: 2})
	a := m.AddVCPU("a", spin(), 256, false)
	b := m.AddVCPU("b", spin(), 256, false)
	c := m.AddVCPU("c", spin(), 256, false)
	m.Start()
	m.Run(90_000_000)
	total := a.RunTime + b.RunTime + c.RunTime
	if total != 180_000_000 {
		t.Errorf("2 cores x 90 ms = %d delivered, want 180 ms", total)
	}
}

func TestRunqueueBalancedByCoreCount(t *testing.T) {
	// 12 cores with 8-core runqueues split 8+4; 48 VMs must be assigned
	// 32/16 so each VM's fair share is equal regardless of runqueue.
	m, s := newMachine(12, Options{CoresPerRunqueue: 8})
	for i := 0; i < 48; i++ {
		m.AddVCPU("v", spin(), 256, false)
	}
	m.Start()
	counts := make(map[int]int)
	for i := range m.VCPUs {
		counts[s.st[i].rq]++
	}
	if counts[0] != 32 || counts[1] != 16 {
		t.Errorf("assignment = %v, want 32/16 proportional to core counts", counts)
	}
	// Run briefly: per-VM runtime should be roughly equal across rqs.
	m.Run(200_000_000)
	var rq0, rq1 int64
	for i, v := range m.VCPUs {
		if s.st[i].rq == 0 {
			rq0 += v.RunTime
		} else {
			rq1 += v.RunTime
		}
	}
	per0, per1 := rq0/32, rq1/16
	ratio := float64(per0) / float64(per1)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("per-VM runtime rq0=%d rq1=%d (ratio %.2f)", per0, per1, ratio)
	}
}

func TestResetCapsBankedCredit(t *testing.T) {
	// A blocked vCPU must not accumulate more than 2x CREDIT_INIT while
	// asleep, or it would own the CPU indefinitely on wake.
	m, s := newMachine(1, Options{})
	sleeperID := m.AddVCPU("sleeper", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		return vmm.BlockIndefinitely()
	}), 256, false).ID
	m.AddVCPU("hog", spin(), 256, false)
	m.AddVCPU("hog2", spin(), 256, false)
	m.Start()
	m.Run(2_000_000_000) // many reset events
	if got := s.Credits(sleeperID); got > 2*creditInit {
		t.Errorf("sleeper banked %d credit, cap is %d", got, 2*creditInit)
	}
}
