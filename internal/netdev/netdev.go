// Package netdev models the network transmit path of a VM: a bounded
// ring buffer drained at line rate by the device, independent of
// whether the VM is scheduled. This is the mechanism behind the paper's
// Sec. 7.5 observation that a rigid table-driven scheduler under-
// utilizes the I/O device for large transfers: a VM can only refill the
// ring while it holds the CPU, so during a long scheduling blackout the
// device drains the ring and then idles, capping throughput below line
// rate even though the NIC could go faster.
package netdev

import "fmt"

// scale converts bytes to the internal fixed-point representation
// (byte-nanoseconds per second), letting the drain computation be exact
// integer arithmetic at any rate.
const scale = 1_000_000_000

// NIC is one virtual function's transmit queue (the paper gives each VM
// an SR-IOV virtual NIC, bypassing dom0). The zero value is not usable;
// call New.
type NIC struct {
	rate int64 // bytes per second
	cap  int64 // queue capacity in bytes

	queued int64 // current queue depth, in byte-scale units
	last   int64 // time of last drain update

	// dropWindows are fault-injection intervals during which every
	// enqueue is rejected (the device refuses descriptors); sorted by
	// start, non-overlapping. See internal/faults.
	dropWindows []dropWindow
	drops       int64
}

// dropWindow is one enqueue-drop burst: sends in [start, end) fail.
type dropWindow struct{ start, end int64 }

// New returns a NIC draining at rate bytes/second with a ring of cap
// bytes. A 10 GbE interface is roughly 1.25e9 bytes/second.
func New(rate, capacity int64) *NIC {
	if rate <= 0 || capacity <= 0 {
		panic(fmt.Sprintf("netdev: invalid rate %d or capacity %d", rate, capacity))
	}
	return &NIC{rate: rate, cap: capacity}
}

// update drains the queue up to time now.
func (n *NIC) update(now int64) {
	if now <= n.last {
		return
	}
	n.queued -= (now - n.last) * n.rate
	if n.queued < 0 {
		n.queued = 0
	}
	n.last = now
}

// Queued returns the queue depth in bytes at time now.
func (n *NIC) Queued(now int64) int64 {
	n.update(now)
	return (n.queued + scale - 1) / scale
}

// AddDropWindow schedules an enqueue-drop burst: every TrySend in
// [start, end) fails as if the device rejected the descriptor, while
// draining continues normally. Windows must be added in increasing
// start order and must not overlap (the fault plan validator enforces
// this).
func (n *NIC) AddDropWindow(start, end int64) {
	if end <= start {
		return
	}
	n.dropWindows = append(n.dropWindows, dropWindow{start: start, end: end})
}

// dropping reports whether enqueues at time now are rejected, and the
// end of the active window if so.
func (n *NIC) dropping(now int64) (int64, bool) {
	for _, w := range n.dropWindows {
		if now >= w.start && now < w.end {
			return w.end, true
		}
		if now < w.start {
			break
		}
	}
	return 0, false
}

// Drops returns the number of enqueues rejected by drop windows.
func (n *NIC) Drops() int64 { return n.drops }

// TrySend enqueues bytes at time now if the ring has room for the whole
// message. On success it returns ok=true and the absolute time at which
// the last byte reaches the wire; on failure the queue is unchanged and
// ok=false.
func (n *NIC) TrySend(now int64, bytes int64) (done int64, ok bool) {
	if bytes <= 0 {
		return now, true
	}
	if _, drop := n.dropping(now); drop {
		n.drops++
		return 0, false
	}
	n.update(now)
	add := bytes * scale
	if n.queued+add > n.cap*scale {
		return 0, false
	}
	n.queued += add
	return now + ceilDiv(n.queued, n.rate), true
}

// RoomAt returns the earliest absolute time >= now at which a message
// of the given size will fit in the ring, assuming nothing else is
// enqueued meanwhile. Messages larger than the ring never fit; such
// sends must be segmented with SendSegmented.
func (n *NIC) RoomAt(now int64, bytes int64) (int64, error) {
	if bytes > n.cap {
		return 0, fmt.Errorf("netdev: message of %d bytes exceeds ring capacity %d", bytes, n.cap)
	}
	n.update(now)
	excess := n.queued + bytes*scale - n.cap*scale
	t := now
	if excess > 0 {
		t += ceilDiv(excess, n.rate)
	}
	// A drop window rejects enqueues outright: room only exists once the
	// window has passed (the queue keeps draining meanwhile, so capacity
	// can only improve).
	for {
		end, drop := n.dropping(t)
		if !drop {
			return t, nil
		}
		t = end
	}
}

// MaxSegment returns the ring capacity: the largest single TrySend.
func (n *NIC) MaxSegment() int64 { return n.cap }

// Rate returns the drain rate in bytes per second.
func (n *NIC) Rate() int64 { return n.rate }

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
