package netdev

import (
	"testing"
	"testing/quick"
)

// A 1 GB/s NIC: 1 byte per ns makes arithmetic easy to verify by hand.
func gigNIC(capacity int64) *NIC { return New(1_000_000_000, capacity) }

func TestTrySendEmptyQueue(t *testing.T) {
	n := gigNIC(1000)
	done, ok := n.TrySend(0, 500)
	if !ok || done != 500 {
		t.Errorf("TrySend = (%d, %v), want (500, true)", done, ok)
	}
	if q := n.Queued(0); q != 500 {
		t.Errorf("Queued(0) = %d", q)
	}
}

func TestDrainOverTime(t *testing.T) {
	n := gigNIC(1000)
	n.TrySend(0, 500)
	if q := n.Queued(300); q != 200 {
		t.Errorf("Queued(300) = %d, want 200", q)
	}
	if q := n.Queued(600); q != 0 {
		t.Errorf("Queued(600) = %d, want 0", q)
	}
}

func TestBackPressure(t *testing.T) {
	n := gigNIC(1000)
	if _, ok := n.TrySend(0, 800); !ok {
		t.Fatal("first send rejected")
	}
	if _, ok := n.TrySend(0, 300); ok {
		t.Error("overfull send accepted")
	}
	// After 100 ns, 100 bytes drained: room for 300.
	at, err := n.RoomAt(0, 300)
	if err != nil || at != 100 {
		t.Errorf("RoomAt = (%d, %v), want (100, nil)", at, err)
	}
	done, ok := n.TrySend(100, 300)
	if !ok || done != 100+1000 {
		t.Errorf("TrySend(100, 300) = (%d, %v), want (1100, true)", done, ok)
	}
}

func TestRoomAtImmediateWhenEmpty(t *testing.T) {
	n := gigNIC(1000)
	at, err := n.RoomAt(42, 1000)
	if err != nil || at != 42 {
		t.Errorf("RoomAt = (%d, %v)", at, err)
	}
}

func TestOversizeMessageRejected(t *testing.T) {
	n := gigNIC(1000)
	if _, err := n.RoomAt(0, 1001); err == nil {
		t.Error("oversize message accepted by RoomAt")
	}
	if _, ok := n.TrySend(0, 1001); ok {
		t.Error("oversize message accepted by TrySend")
	}
	if n.MaxSegment() != 1000 {
		t.Errorf("MaxSegment = %d", n.MaxSegment())
	}
}

func TestZeroByteSend(t *testing.T) {
	n := gigNIC(1000)
	done, ok := n.TrySend(7, 0)
	if !ok || done != 7 {
		t.Errorf("zero-byte send = (%d, %v)", done, ok)
	}
}

func TestSlowRateExactness(t *testing.T) {
	// 3 bytes per second: fractional drains must be exact.
	n := New(3, 10)
	n.TrySend(0, 9)
	// After 1 second, 3 bytes drained.
	if q := n.Queued(1_000_000_000); q != 6 {
		t.Errorf("Queued(1s) = %d, want 6", q)
	}
	// Completion of another 3 bytes: (6+3)/3 = 3 more seconds.
	done, ok := n.TrySend(1_000_000_000, 3)
	if !ok || done != 4_000_000_000 {
		t.Errorf("TrySend = (%d, %v), want 4s", done, ok)
	}
}

// Property: completion times are monotone in enqueue order, and the
// queue never exceeds capacity.
func TestMonotoneCompletions(t *testing.T) {
	f := func(sizes []uint16) bool {
		n := gigNIC(100_000)
		now := int64(0)
		var lastDone int64
		for _, s := range sizes {
			b := int64(s%5000) + 1
			at, err := n.RoomAt(now, b)
			if err != nil {
				return false
			}
			done, ok := n.TrySend(at, b)
			if !ok {
				return false
			}
			if done < lastDone {
				return false
			}
			if n.Queued(at) > 100_000 {
				return false
			}
			lastDone = done
			now = at
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestThroughputCappedAtLineRate(t *testing.T) {
	// Saturating sender: total bytes delivered over 1 ms cannot exceed
	// rate * time.
	n := gigNIC(10_000)
	now := int64(0)
	var sent int64
	for now < 1_000_000 {
		at, err := n.RoomAt(now, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if at > 1_000_000 {
			break
		}
		n.TrySend(at, 1000)
		sent += 1000
		now = at
	}
	// 1 GB/s for 1 ms = 1,000,000 bytes (+ ring capacity in flight).
	if sent > 1_000_000+10_000 {
		t.Errorf("sent %d bytes in 1 ms at 1 GB/s", sent)
	}
	if sent < 900_000 {
		t.Errorf("saturating sender only achieved %d bytes", sent)
	}
}
