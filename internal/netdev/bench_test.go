package netdev

import "testing"

func BenchmarkTrySend(b *testing.B) {
	n := New(1_250_000_000, 262_144)
	now := int64(0)
	for i := 0; i < b.N; i++ {
		now += 1000
		if _, ok := n.TrySend(now, 1024); !ok {
			at, _ := n.RoomAt(now, 1024)
			now = at
			n.TrySend(now, 1024)
		}
	}
}
