// Package journal is the durable write-ahead epoch log under the churn
// control plane. Every committed Flush of a core.Controller appends one
// checksummed, length-prefixed record carrying the full epoch — the
// population snapshot (including inactive spares and failed cores), the
// guarantees, and the table in the compact wire encoding — so a host
// crash mid-storm loses nothing that was committed: core.Recover
// replays the journal, truncates a torn or corrupted tail at the last
// record whose CRC verifies, and rebuilds the controller bit-for-bit on
// the last committed epoch.
//
// The journal is the commit point: a flush whose record cannot be
// appended rolls back, so the log and the installed epoch history never
// disagree. Storage is pluggable through Store — an in-memory store for
// simulations and crash-point tests, a file-backed store with a
// configurable fsync policy and atomic-rename truncation for daemons.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"tableau/internal/table"
)

// File layout:
//
//	header:  magic "TBJL" | u16 version (1)
//	record:  u32 payloadLen | u32 crc32(payload) | payload
//
// Record payload (all little-endian):
//
//	u8  kind (1 = epoch)
//	u64 epoch version
//	u32 slot count
//	  per slot: u16 nameLen | name | u8 flags (bit0 capped, bit1 active)
//	            i64 utilNum | i64 utilDen | i64 latencyGoal
//	u32 failed-core count | u32 core id each
//	u32 guarantee count
//	  per guarantee: u32 vcpu | u64 service | u64 window | u64 maxBlackout
//	u32 tableLen | table bytes (compact TBLU encoding, slice index omitted)
const (
	fileMagic   = "TBJL"
	fileVersion = uint16(1)

	// KindEpoch is the only record kind today; the byte exists so a
	// future checkpoint/compaction record can share the framing.
	KindEpoch = byte(1)
)

const (
	slotFlagCapped = 1 << iota
	slotFlagActive
	// slotFlagBE marks a best-effort tenancy class. Old journals never
	// set the bit (it was an unknown — and therefore rejected — flag),
	// so every pre-class record decodes to LS slots and re-encodes
	// bit-identically.
	slotFlagBE
)

// HeaderSize is the fixed file prefix length.
const HeaderSize = len(fileMagic) + 2

// frameOverhead is the per-record framing: length prefix + CRC.
const frameOverhead = 4 + 4

// sanity caps mirror table.Decode's hardening: a hostile header must
// not force large up-front allocations or giant reads.
const (
	maxPayload = 64 << 20
	maxCount   = 1 << 20
	allocChunk = 4096
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SlotConfig is one VM slot of the journaled population snapshot —
// enough to rebuild core.System's registration exactly, including
// inactive spares (slot ids are vCPU ids, fixed at machine start, so
// recovery must re-register every slot in order).
type SlotConfig struct {
	Name        string
	UtilNum     int64
	UtilDen     int64
	LatencyGoal int64
	Capped      bool
	Active      bool
	// BestEffort marks the BE tenancy class; false is LS.
	BestEffort bool
}

// EpochRecord is one committed epoch as journaled.
type EpochRecord struct {
	Version     uint64
	Slots       []SlotConfig
	FailedCores []int
	Guarantees  []table.Guarantee
	// TableBytes is the compact TBLU wire encoding of the epoch's table
	// (table.DecodeBytes rebuilds the slice index).
	TableBytes []byte
}

// Table decodes the record's table.
func (r *EpochRecord) Table() (*table.Table, error) {
	return table.DecodeBytes(r.TableBytes)
}

// AppendHeader appends the journal file header to dst.
func AppendHeader(dst []byte) []byte {
	dst = append(dst, fileMagic...)
	return binary.LittleEndian.AppendUint16(dst, fileVersion)
}

// AppendRecord appends one framed, CRC'd epoch record to dst.
func AppendRecord(dst []byte, r *EpochRecord) ([]byte, error) {
	payload, err := appendPayload(nil, r)
	if err != nil {
		return dst, err
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...), nil
}

func appendPayload(dst []byte, r *EpochRecord) ([]byte, error) {
	le := binary.LittleEndian
	dst = append(dst, KindEpoch)
	dst = le.AppendUint64(dst, r.Version)
	dst = le.AppendUint32(dst, uint32(len(r.Slots)))
	for _, s := range r.Slots {
		if len(s.Name) > 0xffff {
			return dst, fmt.Errorf("journal: slot name too long (%d bytes)", len(s.Name))
		}
		dst = le.AppendUint16(dst, uint16(len(s.Name)))
		dst = append(dst, s.Name...)
		var fl byte
		if s.Capped {
			fl |= slotFlagCapped
		}
		if s.Active {
			fl |= slotFlagActive
		}
		if s.BestEffort {
			fl |= slotFlagBE
		}
		dst = append(dst, fl)
		dst = le.AppendUint64(dst, uint64(s.UtilNum))
		dst = le.AppendUint64(dst, uint64(s.UtilDen))
		dst = le.AppendUint64(dst, uint64(s.LatencyGoal))
	}
	dst = le.AppendUint32(dst, uint32(len(r.FailedCores)))
	for _, c := range r.FailedCores {
		dst = le.AppendUint32(dst, uint32(int32(c)))
	}
	dst = le.AppendUint32(dst, uint32(len(r.Guarantees)))
	for _, g := range r.Guarantees {
		dst = le.AppendUint32(dst, uint32(int32(g.VCPU)))
		dst = le.AppendUint64(dst, uint64(g.Service))
		dst = le.AppendUint64(dst, uint64(g.WindowLen))
		dst = le.AppendUint64(dst, uint64(g.MaxBlackout))
	}
	dst = le.AppendUint32(dst, uint32(len(r.TableBytes)))
	dst = append(dst, r.TableBytes...)
	return dst, nil
}

// Replay is the result of decoding a journal image. A journal whose
// tail is torn (partial record from a crashed append) or corrupt (CRC
// or structural mismatch, e.g. a bit flip) still replays: Records holds
// every intact epoch in append order, Good is the byte offset of the
// end of the last intact record — the truncation point a recovery
// should cut the store back to — and TailErr describes why the bytes
// past Good were abandoned (nil when the journal ends cleanly).
type Replay struct {
	Records []EpochRecord
	// Good is the offset just past the last intact record (at least
	// HeaderSize for a journal with a valid header).
	Good int
	// Truncated is the number of tail bytes past Good.
	Truncated int
	// TailErr is non-nil when the tail was torn or corrupt.
	TailErr error
}

// DecodeAll decodes a complete journal image. A missing or foreign
// header is a hard error (nothing is recoverable); anything after a
// valid header degrades to a truncated-tail Replay, never an error —
// crash recovery must make progress from whatever prefix survived.
func DecodeAll(data []byte) (*Replay, error) {
	if len(data) < HeaderSize {
		return nil, fmt.Errorf("journal: image too short for header (%d bytes)", len(data))
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("journal: bad magic %q", data[:len(fileMagic)])
	}
	if v := binary.LittleEndian.Uint16(data[len(fileMagic):]); v != fileVersion {
		return nil, fmt.Errorf("journal: unsupported version %d", v)
	}
	rep := &Replay{Good: HeaderSize}
	off := HeaderSize
	for off < len(data) {
		rec, next, err := decodeRecord(data, off)
		if err != nil {
			rep.TailErr = err
			break
		}
		rep.Records = append(rep.Records, rec)
		off = next
		rep.Good = off
	}
	rep.Truncated = len(data) - rep.Good
	if rep.Truncated > 0 && rep.TailErr == nil {
		rep.TailErr = fmt.Errorf("journal: %d trailing bytes", rep.Truncated)
	}
	return rep, nil
}

// FoldEpochs folds a replayed record sequence into the epoch sequence
// the live controller held. An emergency rollback re-commits the
// reverted-to epoch verbatim, so a record whose version does not exceed
// the current top is a revert: pop back to below it, then append. The
// result is strictly increasing in version; the input is not modified.
func FoldEpochs(recs []EpochRecord) []EpochRecord {
	folded := make([]EpochRecord, 0, len(recs))
	for _, rec := range recs {
		for len(folded) > 0 && folded[len(folded)-1].Version >= rec.Version {
			folded = folded[:len(folded)-1]
		}
		folded = append(folded, rec)
	}
	return folded
}

// decodeRecord decodes the framed record at off, returning it and the
// offset of the next record. Any shortfall or mismatch is an error the
// caller treats as the torn/corrupt tail.
func decodeRecord(data []byte, off int) (EpochRecord, int, error) {
	le := binary.LittleEndian
	if len(data)-off < frameOverhead {
		return EpochRecord{}, 0, fmt.Errorf("journal: torn frame at offset %d (%d bytes)", off, len(data)-off)
	}
	plen := int(le.Uint32(data[off:]))
	want := le.Uint32(data[off+4:])
	if plen > maxPayload {
		return EpochRecord{}, 0, fmt.Errorf("journal: implausible payload length %d at offset %d", plen, off)
	}
	if len(data)-off-frameOverhead < plen {
		return EpochRecord{}, 0, fmt.Errorf("journal: torn record at offset %d (payload %d, have %d)",
			off, plen, len(data)-off-frameOverhead)
	}
	payload := data[off+frameOverhead : off+frameOverhead+plen]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return EpochRecord{}, 0, fmt.Errorf("journal: CRC mismatch at offset %d (got %08x, want %08x)", off, got, want)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return EpochRecord{}, 0, fmt.Errorf("journal: record at offset %d: %w", off, err)
	}
	return rec, off + frameOverhead + plen, nil
}

// payloadReader cursors over a record payload with bounds checking.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (p *payloadReader) take(n int) []byte {
	if p.err != nil {
		return nil
	}
	if len(p.b)-p.off < n {
		p.err = fmt.Errorf("payload truncated at byte %d (need %d of %d)", p.off, n, len(p.b))
		return nil
	}
	out := p.b[p.off : p.off+n]
	p.off += n
	return out
}

func (p *payloadReader) u8() byte {
	b := p.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (p *payloadReader) u16() uint16 {
	b := p.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (p *payloadReader) u32() uint32 {
	b := p.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (p *payloadReader) u64() uint64 {
	b := p.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (p *payloadReader) count(what string) int {
	n := p.u32()
	if p.err == nil && n > maxCount {
		p.err = fmt.Errorf("implausible %s count %d", what, n)
	}
	return int(n)
}

func decodePayload(payload []byte) (EpochRecord, error) {
	p := &payloadReader{b: payload}
	var rec EpochRecord
	if kind := p.u8(); p.err == nil && kind != KindEpoch {
		return rec, fmt.Errorf("unknown record kind %d", kind)
	}
	rec.Version = p.u64()
	nslots := p.count("slot")
	// Chunked growth like table.Decode: a huge declared count followed
	// by a truncated body must not allocate up front.
	rec.Slots = make([]SlotConfig, 0, min(nslots, allocChunk))
	for i := 0; i < nslots && p.err == nil; i++ {
		var s SlotConfig
		s.Name = string(p.take(int(p.u16())))
		fl := p.u8()
		if p.err == nil && fl&^(slotFlagCapped|slotFlagActive|slotFlagBE) != 0 {
			return rec, fmt.Errorf("unknown slot flags %#x", fl)
		}
		s.Capped = fl&slotFlagCapped != 0
		s.Active = fl&slotFlagActive != 0
		s.BestEffort = fl&slotFlagBE != 0
		s.UtilNum = int64(p.u64())
		s.UtilDen = int64(p.u64())
		s.LatencyGoal = int64(p.u64())
		rec.Slots = append(rec.Slots, s)
	}
	nfailed := p.count("failed-core")
	rec.FailedCores = make([]int, 0, min(nfailed, allocChunk))
	for i := 0; i < nfailed && p.err == nil; i++ {
		rec.FailedCores = append(rec.FailedCores, int(int32(p.u32())))
	}
	ngs := p.count("guarantee")
	rec.Guarantees = make([]table.Guarantee, 0, min(ngs, allocChunk))
	for i := 0; i < ngs && p.err == nil; i++ {
		rec.Guarantees = append(rec.Guarantees, table.Guarantee{
			VCPU:        int(int32(p.u32())),
			Service:     int64(p.u64()),
			WindowLen:   int64(p.u64()),
			MaxBlackout: int64(p.u64()),
		})
	}
	ntbl := p.u32()
	if p.err == nil && int(ntbl) > maxPayload {
		p.err = fmt.Errorf("implausible table length %d", ntbl)
	}
	rec.TableBytes = append([]byte(nil), p.take(int(ntbl))...)
	if p.err != nil {
		return rec, p.err
	}
	if p.off != len(payload) {
		return rec, fmt.Errorf("%d trailing payload bytes", len(payload)-p.off)
	}
	return rec, nil
}
