package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.journal")
	st, err := OpenFile(path, SyncAlways)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	w := NewWriter(st)
	r1, r2 := testRecord(t, 1), testRecord(t, 2)
	if err := w.Append(r1); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Append(r2); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: the image must replay to both records.
	st, err = OpenFile(path, SyncOnDemand)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st.Close()
	rep, err := DecodeAll(mustLoad(t, st))
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(rep.Records) != 2 || rep.TailErr != nil {
		t.Fatalf("replayed %d records (tail %v), want 2 clean", len(rep.Records), rep.TailErr)
	}

	// Appends after reopen land after the existing records.
	if err := st.Append(mustEncode(t, testRecord(t, 3))); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	rep, err = DecodeAll(mustLoad(t, st))
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(rep.Records) != 3 || rep.Records[2].Version != 3 {
		t.Fatalf("got %d records after reopen-append", len(rep.Records))
	}
}

func TestFileStoreTruncateAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.journal")
	st, err := OpenFile(path, SyncOnDemand)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer st.Close()
	r1 := testRecord(t, 1)
	img1 := appendRecords(t, r1)
	if err := st.Append(mustEncode(t, r1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// A torn half-record tail, as a crash would leave it.
	torn := mustEncode(t, testRecord(t, 2))
	if err := st.Append(torn[:len(torn)/2]); err != nil {
		t.Fatalf("Append torn: %v", err)
	}

	if err := st.Truncate(int64(len(img1))); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	got := mustLoad(t, st)
	if !bytes.Equal(got, img1) {
		t.Fatalf("post-truncate image is %d bytes, want %d", len(got), len(img1))
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	// The store stays appendable through the renamed file.
	if err := st.Append(mustEncode(t, testRecord(t, 2))); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	rep, err := DecodeAll(mustLoad(t, st))
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(rep.Records) != 2 || rep.TailErr != nil {
		t.Fatalf("replayed %d records (tail %v) after truncate+append", len(rep.Records), rep.TailErr)
	}
	// And the on-disk file (not just the open handle) has the bytes.
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(onDisk, mustLoad(t, st)) {
		t.Fatal("on-disk image differs from the store's view")
	}
}

func TestFileStoreTruncateNoopAtSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.journal")
	st, err := OpenFile(path, SyncOnDemand)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer st.Close()
	if err := st.Append(mustEncode(t, testRecord(t, 1))); err != nil {
		t.Fatalf("Append: %v", err)
	}
	before := mustLoad(t, st)
	if err := st.Truncate(int64(len(before))); err != nil {
		t.Fatalf("Truncate at size: %v", err)
	}
	if err := st.Truncate(int64(len(before) + 1)); err == nil {
		t.Fatal("truncate past end accepted")
	}
	if !bytes.Equal(mustLoad(t, st), before) {
		t.Fatal("no-op truncate changed the image")
	}
}

func TestOpenFileRejectsForeign(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-journal")
	if err := os.WriteFile(path, []byte("something else entirely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, SyncAlways); err == nil {
		t.Fatal("foreign file accepted as journal")
	}
}

func TestFileStoreClosedOps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.journal")
	st, err := OpenFile(path, SyncAlways)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := st.Append([]byte{1}); err == nil {
		t.Fatal("append on closed store accepted")
	}
	if _, err := st.Load(); err == nil {
		t.Fatal("load on closed store accepted")
	}
	if err := st.Sync(); err == nil {
		t.Fatal("sync on closed store accepted")
	}
	if err := st.Truncate(0); err == nil {
		t.Fatal("truncate on closed store accepted")
	}
}

func mustEncode(t *testing.T, r *EpochRecord) []byte {
	t.Helper()
	b, err := AppendRecord(nil, r)
	if err != nil {
		t.Fatalf("AppendRecord: %v", err)
	}
	return b
}
