package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.journal")
	st, err := OpenFile(path, SyncAlways)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	w := NewWriter(st)
	r1, r2 := testRecord(t, 1), testRecord(t, 2)
	if err := w.Append(r1); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Append(r2); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: the image must replay to both records.
	st, err = OpenFile(path, SyncOnDemand)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st.Close()
	rep, err := DecodeAll(mustLoad(t, st))
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(rep.Records) != 2 || rep.TailErr != nil {
		t.Fatalf("replayed %d records (tail %v), want 2 clean", len(rep.Records), rep.TailErr)
	}

	// Appends after reopen land after the existing records.
	if err := st.Append(mustEncode(t, testRecord(t, 3))); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	rep, err = DecodeAll(mustLoad(t, st))
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(rep.Records) != 3 || rep.Records[2].Version != 3 {
		t.Fatalf("got %d records after reopen-append", len(rep.Records))
	}
}

func TestFileStoreTruncateAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.journal")
	st, err := OpenFile(path, SyncOnDemand)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer st.Close()
	r1 := testRecord(t, 1)
	img1 := appendRecords(t, r1)
	if err := st.Append(mustEncode(t, r1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// A torn half-record tail, as a crash would leave it.
	torn := mustEncode(t, testRecord(t, 2))
	if err := st.Append(torn[:len(torn)/2]); err != nil {
		t.Fatalf("Append torn: %v", err)
	}

	if err := st.Truncate(int64(len(img1))); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	got := mustLoad(t, st)
	if !bytes.Equal(got, img1) {
		t.Fatalf("post-truncate image is %d bytes, want %d", len(got), len(img1))
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	// The store stays appendable through the renamed file.
	if err := st.Append(mustEncode(t, testRecord(t, 2))); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	rep, err := DecodeAll(mustLoad(t, st))
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(rep.Records) != 2 || rep.TailErr != nil {
		t.Fatalf("replayed %d records (tail %v) after truncate+append", len(rep.Records), rep.TailErr)
	}
	// And the on-disk file (not just the open handle) has the bytes.
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(onDisk, mustLoad(t, st)) {
		t.Fatal("on-disk image differs from the store's view")
	}
}

func TestFileStoreTruncateNoopAtSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.journal")
	st, err := OpenFile(path, SyncOnDemand)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer st.Close()
	if err := st.Append(mustEncode(t, testRecord(t, 1))); err != nil {
		t.Fatalf("Append: %v", err)
	}
	before := mustLoad(t, st)
	if err := st.Truncate(int64(len(before))); err != nil {
		t.Fatalf("Truncate at size: %v", err)
	}
	if err := st.Truncate(int64(len(before) + 1)); err == nil {
		t.Fatal("truncate past end accepted")
	}
	if !bytes.Equal(mustLoad(t, st), before) {
		t.Fatal("no-op truncate changed the image")
	}
}

func TestOpenFileRejectsForeign(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-journal")
	if err := os.WriteFile(path, []byte("something else entirely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, SyncAlways); err == nil {
		t.Fatal("foreign file accepted as journal")
	}
}

func TestFileStoreClosedOps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.journal")
	st, err := OpenFile(path, SyncAlways)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := st.Append([]byte{1}); err == nil {
		t.Fatal("append on closed store accepted")
	}
	if _, err := st.Load(); err == nil {
		t.Fatal("load on closed store accepted")
	}
	if err := st.Sync(); err == nil {
		t.Fatal("sync on closed store accepted")
	}
	if err := st.Truncate(0); err == nil {
		t.Fatal("truncate on closed store accepted")
	}
}

// TestFileStoreTruncateFsyncFails injects fsync failures into both
// sync points of Truncate's temp+rename dance and demands a loud error
// from each — a journal whose cut silently fails to reach the disk is
// corruption waiting for the next power cut.
func TestFileStoreTruncateFsyncFails(t *testing.T) {
	errDisk := errors.New("disk on fire")
	setup := func(t *testing.T) (*FileStore, int64, []byte) {
		t.Helper()
		path := filepath.Join(t.TempDir(), "epochs.journal")
		st, err := OpenFile(path, SyncOnDemand)
		if err != nil {
			t.Fatalf("OpenFile: %v", err)
		}
		t.Cleanup(func() { st.Close() })
		keep := appendRecords(t, testRecord(t, 1))
		if err := st.Append(mustEncode(t, testRecord(t, 1))); err != nil {
			t.Fatal(err)
		}
		torn := mustEncode(t, testRecord(t, 2))
		if err := st.Append(torn[:len(torn)/2]); err != nil {
			t.Fatal(err)
		}
		return st, int64(len(keep)), keep
	}

	t.Run("file", func(t *testing.T) {
		st, n, _ := setup(t)
		before := mustLoad(t, st)
		orig := fileSync
		fileSync = func(*os.File) error { return errDisk }
		defer func() { fileSync = orig }()
		if err := st.Truncate(n); !errors.Is(err, errDisk) {
			t.Fatalf("Truncate err = %v, want the injected fsync failure", err)
		}
		// The failed cut must not have touched the journal, and the temp
		// file must be cleaned up.
		if !bytes.Equal(mustLoad(t, st), before) {
			t.Fatal("failed truncate changed the image")
		}
		if _, err := os.Stat(st.path + ".tmp"); !os.IsNotExist(err) {
			t.Fatalf("temp file left behind: %v", err)
		}
	})

	t.Run("dir", func(t *testing.T) {
		st, n, keep := setup(t)
		orig := dirSync
		dirSync = func(*os.File) error { return errDisk }
		defer func() { dirSync = orig }()
		if err := st.Truncate(n); !errors.Is(err, errDisk) {
			t.Fatalf("Truncate err = %v, want the injected directory fsync failure", err)
		}
		// The rename itself happened: the store reads the cut image and
		// stays appendable (the caller decides whether to retry the sync
		// or abandon the store — but it was told).
		if !bytes.Equal(mustLoad(t, st), keep) {
			t.Fatal("store does not read the renamed file")
		}
		if err := st.Append(mustEncode(t, testRecord(t, 2))); err != nil {
			t.Fatalf("append after reported dir-sync failure: %v", err)
		}
	})
}

// faultySyncStore wraps a Store and fails Sync on demand: the Writer
// and its callers must propagate the failure, not swallow it.
type faultySyncStore struct {
	Store
	err error
}

func (f *faultySyncStore) Sync() error { return f.err }

func TestWriterPropagatesSyncFailure(t *testing.T) {
	errDisk := errors.New("no sync today")
	fs := &faultySyncStore{Store: NewMemStore(), err: errDisk}
	w := NewWriter(fs)
	if err := w.Append(testRecord(t, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, errDisk) {
		t.Fatalf("Sync err = %v, want the injected failure", err)
	}
	if err := w.Close(); !errors.Is(err, errDisk) {
		t.Fatalf("Close err = %v, want the injected failure (Close syncs first)", err)
	}
}

func mustEncode(t *testing.T, r *EpochRecord) []byte {
	t.Helper()
	b, err := AppendRecord(nil, r)
	if err != nil {
		t.Fatalf("AppendRecord: %v", err)
	}
	return b
}
