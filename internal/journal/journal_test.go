package journal

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"tableau/internal/planner"
)

// testRecord builds a realistic epoch record: a planned table for a
// small population, encoded compactly, plus the population snapshot.
func testRecord(t *testing.T, version uint64) *EpochRecord {
	t.Helper()
	specs := []planner.VCPUSpec{
		{Name: "a", Util: planner.Util{Num: 1, Den: 4}, LatencyGoal: 30_000_000},
		{Name: "b", Util: planner.Util{Num: 1, Den: 8}, LatencyGoal: 30_000_000, Capped: true},
	}
	res, err := planner.Plan(specs, planner.Options{Cores: 2})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	res.Table.Generation = version
	enc, err := res.Table.AppendEncodedCompact(nil)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return &EpochRecord{
		Version: version,
		Slots: []SlotConfig{
			{Name: "a", UtilNum: 1, UtilDen: 4, LatencyGoal: 30_000_000, Active: true},
			{Name: "b", UtilNum: 1, UtilDen: 8, LatencyGoal: 30_000_000, Capped: true, Active: true},
			{Name: "spare", UtilNum: 1, UtilDen: 8, LatencyGoal: 30_000_000, Active: false},
		},
		FailedCores: []int{1},
		Guarantees:  res.Guarantees,
		TableBytes:  enc,
	}
}

func appendRecords(t *testing.T, recs ...*EpochRecord) []byte {
	t.Helper()
	img := AppendHeader(nil)
	for _, r := range recs {
		var err error
		img, err = AppendRecord(img, r)
		if err != nil {
			t.Fatalf("AppendRecord: %v", err)
		}
	}
	return img
}

func TestRoundTrip(t *testing.T) {
	r1, r2 := testRecord(t, 1), testRecord(t, 2)
	img := appendRecords(t, r1, r2)

	rep, err := DecodeAll(img)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if rep.TailErr != nil || rep.Truncated != 0 {
		t.Fatalf("clean journal reported tail damage: %v (%d bytes)", rep.TailErr, rep.Truncated)
	}
	if len(rep.Records) != 2 {
		t.Fatalf("got %d records, want 2", len(rep.Records))
	}
	if rep.Good != len(img) {
		t.Fatalf("Good = %d, want %d", rep.Good, len(img))
	}
	for i, want := range []*EpochRecord{r1, r2} {
		got := rep.Records[i]
		if got.Version != want.Version {
			t.Errorf("record %d: version %d, want %d", i, got.Version, want.Version)
		}
		if len(got.Slots) != len(want.Slots) {
			t.Fatalf("record %d: %d slots, want %d", i, len(got.Slots), len(want.Slots))
		}
		for j := range want.Slots {
			if got.Slots[j] != want.Slots[j] {
				t.Errorf("record %d slot %d: %+v, want %+v", i, j, got.Slots[j], want.Slots[j])
			}
		}
		if len(got.FailedCores) != 1 || got.FailedCores[0] != 1 {
			t.Errorf("record %d: failed cores %v, want [1]", i, got.FailedCores)
		}
		if len(got.Guarantees) != len(want.Guarantees) {
			t.Fatalf("record %d: %d guarantees, want %d", i, len(got.Guarantees), len(want.Guarantees))
		}
		for j := range want.Guarantees {
			if got.Guarantees[j] != want.Guarantees[j] {
				t.Errorf("record %d guarantee %d: %+v, want %+v", i, j, got.Guarantees[j], want.Guarantees[j])
			}
		}
		if !bytes.Equal(got.TableBytes, want.TableBytes) {
			t.Errorf("record %d: table bytes differ", i)
		}
		tbl, err := got.Table()
		if err != nil {
			t.Fatalf("record %d: decoding table: %v", i, err)
		}
		// The compact encoding omits the slice index and Decode rebuilds
		// it, so re-encoding the decoded table is byte-identical — the
		// property the recovery-equivalence oracle rests on.
		re, err := tbl.AppendEncodedCompact(nil)
		if err != nil {
			t.Fatalf("record %d: re-encoding: %v", i, err)
		}
		if !bytes.Equal(re, want.TableBytes) {
			t.Errorf("record %d: re-encoded table differs from journaled bytes", i)
		}
	}
}

// TestTornTail checks that every strict prefix of the final record
// replays to the first record with the tail truncated at it.
func TestTornTail(t *testing.T) {
	r1, r2 := testRecord(t, 1), testRecord(t, 2)
	img1 := appendRecords(t, r1)
	img := appendRecords(t, r1, r2)

	for cut := len(img1) + 1; cut < len(img); cut++ {
		rep, err := DecodeAll(img[:cut])
		if err != nil {
			t.Fatalf("cut %d: DecodeAll: %v", cut, err)
		}
		if len(rep.Records) != 1 || rep.Records[0].Version != 1 {
			t.Fatalf("cut %d: replayed %d records, want just version 1", cut, len(rep.Records))
		}
		if rep.Good != len(img1) {
			t.Fatalf("cut %d: Good = %d, want %d", cut, rep.Good, len(img1))
		}
		if rep.TailErr == nil {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		if rep.Truncated != cut-len(img1) {
			t.Fatalf("cut %d: Truncated = %d, want %d", cut, rep.Truncated, cut-len(img1))
		}
	}
}

// TestBitFlips checks that any single-bit flip in the final record is
// caught (CRC or structural) and truncates back to the first record.
func TestBitFlips(t *testing.T) {
	r1, r2 := testRecord(t, 1), testRecord(t, 2)
	img1 := appendRecords(t, r1)
	img := appendRecords(t, r1, r2)

	// Every 7th bit keeps the test fast while covering frame, CRC, and
	// payload positions.
	for bit := len(img1) * 8; bit < len(img)*8; bit += 7 {
		mut := append([]byte(nil), img...)
		mut[bit/8] ^= 1 << (bit % 8)
		rep, err := DecodeAll(mut)
		if err != nil {
			t.Fatalf("bit %d: DecodeAll: %v", bit, err)
		}
		if len(rep.Records) != 1 || rep.Records[0].Version != 1 {
			t.Fatalf("bit %d: corrupt record replayed (%d records)", bit, len(rep.Records))
		}
		if rep.TailErr == nil {
			t.Fatalf("bit %d: corruption not reported", bit)
		}
		if rep.Good != len(img1) {
			t.Fatalf("bit %d: Good = %d, want %d", bit, rep.Good, len(img1))
		}
	}
}

// TestMidJournalCorruptionStopsReplay checks that damage to an interior
// record abandons everything from it on — replay never skips over a bad
// record to a later intact one.
func TestMidJournalCorruptionStopsReplay(t *testing.T) {
	r1, r2, r3 := testRecord(t, 1), testRecord(t, 2), testRecord(t, 3)
	img1 := appendRecords(t, r1)
	img := appendRecords(t, r1, r2, r3)

	mut := append([]byte(nil), img...)
	mut[len(img1)+frameOverhead+4] ^= 0x80 // inside record 2's payload
	rep, err := DecodeAll(mut)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(rep.Records) != 1 {
		t.Fatalf("replayed %d records past corruption, want 1", len(rep.Records))
	}
	if rep.Good != len(img1) {
		t.Fatalf("Good = %d, want %d", rep.Good, len(img1))
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := DecodeAll(nil); err == nil {
		t.Fatal("empty image accepted")
	}
	if _, err := DecodeAll([]byte("TB")); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := DecodeAll([]byte("XXXX\x01\x00")); err == nil {
		t.Fatal("foreign magic accepted")
	}
	bad := AppendHeader(nil)
	binary.LittleEndian.PutUint16(bad[4:], 99)
	if _, err := DecodeAll(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
}

// TestImplausibleLengthRejected checks the hardening: a frame declaring
// a giant payload is abandoned as tail damage without allocating it.
func TestImplausibleLengthRejected(t *testing.T) {
	img := AppendHeader(nil)
	img = binary.LittleEndian.AppendUint32(img, 1<<30) // absurd payloadLen
	img = binary.LittleEndian.AppendUint32(img, 0)
	img = append(img, make([]byte, 64)...)
	rep, err := DecodeAll(img)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(rep.Records) != 0 || rep.TailErr == nil {
		t.Fatalf("implausible frame not abandoned: %d records, tail %v", len(rep.Records), rep.TailErr)
	}
	if !strings.Contains(rep.TailErr.Error(), "implausible") {
		t.Fatalf("tail error %q does not name the implausible length", rep.TailErr)
	}
}

func TestWriterOnMemStore(t *testing.T) {
	st := NewMemStore()
	w := NewWriter(st)
	r1, r2 := testRecord(t, 1), testRecord(t, 2)
	if err := w.Append(r1); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Append(r2); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if w.Records() != 2 {
		t.Fatalf("Records = %d, want 2", w.Records())
	}
	img, err := st.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if want := appendRecords(t, r1, r2); !bytes.Equal(img, want) {
		t.Fatal("writer image differs from direct encoding")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := w.Append(testRecord(t, 3)); err == nil {
		t.Fatal("append after close accepted")
	}
}

func TestMemStoreTruncate(t *testing.T) {
	st := NewMemStoreFrom(appendRecords(t, testRecord(t, 1), testRecord(t, 2)))
	rep, err := DecodeAll(mustLoad(t, st))
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	one := appendRecords(t, testRecord(t, 1))
	if err := st.Truncate(int64(len(one))); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if st.Len() != len(one) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(one))
	}
	if err := st.Truncate(int64(st.Len() + 1)); err == nil {
		t.Fatal("truncate past end accepted")
	}
	_ = rep
}

func mustLoad(t *testing.T, s Store) []byte {
	t.Helper()
	b, err := s.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return b
}

// TestSlotNameTooLong checks the encode-side bound.
func TestSlotNameTooLong(t *testing.T) {
	r := &EpochRecord{Version: 1, Slots: []SlotConfig{{Name: strings.Repeat("x", 0x10000), UtilDen: 1}}}
	if _, err := AppendRecord(nil, r); err == nil {
		t.Fatal("oversized slot name accepted")
	}
}

// TestFoldEpochs pins the rollback-fold semantics: a record whose
// version does not exceed the current top pops everything it
// supersedes, so the fold is always strictly increasing.
func TestFoldEpochs(t *testing.T) {
	rec := func(v uint64) EpochRecord { return EpochRecord{Version: v} }
	versions := func(recs []EpochRecord) []uint64 {
		out := make([]uint64, len(recs))
		for i, r := range recs {
			out[i] = r.Version
		}
		return out
	}
	got := versions(FoldEpochs([]EpochRecord{rec(1), rec(2), rec(3), rec(2), rec(4)}))
	want := []uint64{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("folded to %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("folded to %v, want %v", got, want)
		}
	}
	if out := FoldEpochs(nil); len(out) != 0 {
		t.Fatalf("folding nothing yielded %d records", len(out))
	}
	// A full revert to the first epoch leaves exactly that epoch.
	if got := versions(FoldEpochs([]EpochRecord{rec(5), rec(6), rec(7), rec(5)})); len(got) != 1 || got[0] != 5 {
		t.Fatalf("full revert folded to %v, want [5]", got)
	}
}
