package journal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// SyncPolicy selects when a FileStore fsyncs.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: the journal is the commit
	// point, so a daemon that must not lose a committed epoch to a
	// power cut runs with this (the default).
	SyncAlways SyncPolicy = iota
	// SyncOnDemand fsyncs only on explicit Sync/Close calls (the
	// control plane's drain path): committed epochs survive a process
	// crash but a simultaneous power cut may drop the unsynced tail —
	// which recovery then truncates like any torn write.
	SyncOnDemand
)

// FileStore is the file-backed Store for daemons. Appends go straight
// to the journal file; truncation (recovery cutting a torn tail)
// rewrites the intact prefix to a temporary file in the same directory
// and atomically renames it over the journal, so a crash during the
// cut leaves either the old image or the new one, never a half-written
// hybrid.
type FileStore struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	policy SyncPolicy
}

// fileSync and dirSync are the fsync seams, swappable in tests to
// inject the failures a real disk can produce (so the error paths in
// Truncate are actually exercised, not just written).
var (
	fileSync = func(f *os.File) error { return f.Sync() }
	dirSync  = func(d *os.File) error { return d.Sync() }
)

// OpenFile opens (or creates) a journal file. A new or empty file gets
// the journal header; an existing one must start with it.
func OpenFile(path string, policy SyncPolicy) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: stat %s: %w", path, err)
	}
	if st.Size() == 0 {
		if _, err := f.Write(AppendHeader(nil)); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: writing header to %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: syncing header of %s: %w", path, err)
		}
	} else {
		hdr := make([]byte, HeaderSize)
		if _, err := f.ReadAt(hdr, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: reading header of %s: %w", path, err)
		}
		if string(hdr[:len(fileMagic)]) != fileMagic {
			f.Close()
			return nil, fmt.Errorf("journal: %s is not a journal (magic %q)", path, hdr[:len(fileMagic)])
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: seeking %s: %w", path, err)
	}
	return &FileStore{f: f, path: path, policy: policy}, nil
}

func (s *FileStore) Append(rec []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("journal: append to closed store %s", s.path)
	}
	if _, err := s.f.Write(rec); err != nil {
		return fmt.Errorf("journal: append to %s: %w", s.path, err)
	}
	if s.policy == SyncAlways {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync %s: %w", s.path, err)
		}
	}
	return nil
}

func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("journal: sync of closed store %s", s.path)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync %s: %w", s.path, err)
	}
	return nil
}

func (s *FileStore) Load() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil, fmt.Errorf("journal: load from closed store %s", s.path)
	}
	st, err := s.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("journal: stat %s: %w", s.path, err)
	}
	buf := make([]byte, st.Size())
	if _, err := s.f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("journal: read %s: %w", s.path, err)
	}
	return buf, nil
}

// Truncate cuts the journal back to n bytes via write-temp +
// fsync + atomic rename (+ directory fsync), so a crash mid-cut cannot
// leave a partially truncated file.
func (s *FileStore) Truncate(n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("journal: truncate of closed store %s", s.path)
	}
	st, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("journal: stat %s: %w", s.path, err)
	}
	if n < 0 || n > st.Size() {
		return fmt.Errorf("journal: truncate offset %d out of range [0,%d]", n, st.Size())
	}
	if n == st.Size() {
		return nil
	}
	keep := make([]byte, n)
	if _, err := s.f.ReadAt(keep, 0); err != nil {
		return fmt.Errorf("journal: read %s: %w", s.path, err)
	}
	tmpPath := s.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: create %s: %w", tmpPath, err)
	}
	if _, err := tmp.Write(keep); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("journal: write %s: %w", tmpPath, err)
	}
	if err := fileSync(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("journal: sync %s: %w", tmpPath, err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("journal: rename %s: %w", tmpPath, err)
	}
	// The store now reads and appends through the renamed file whatever
	// happens below — the rename is done — but durability of the rename
	// itself needs the directory entry synced, and a journal whose
	// truncation can silently un-happen across a power cut is exactly
	// the kind of quiet corruption this store exists to prevent: fail
	// loudly so the caller knows the cut is not yet durable.
	old := s.f
	s.f = tmp
	old.Close()
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("journal: seeking %s: %w", s.path, err)
	}
	dir, err := os.Open(filepath.Dir(s.path))
	if err != nil {
		return fmt.Errorf("journal: open dir of %s for sync: %w", s.path, err)
	}
	serr := dirSync(dir)
	cerr := dir.Close()
	if serr != nil {
		return fmt.Errorf("journal: sync dir of %s: %w", s.path, serr)
	}
	if cerr != nil {
		return fmt.Errorf("journal: close dir of %s: %w", s.path, cerr)
	}
	return nil
}

func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	cerr := s.f.Close()
	s.f = nil
	if err != nil {
		return fmt.Errorf("journal: sync %s: %w", s.path, err)
	}
	if cerr != nil {
		return fmt.Errorf("journal: close %s: %w", s.path, cerr)
	}
	return nil
}
