package journal

// The journal decoder consumes whatever a crash left on disk, so it
// must hold up against truncated, bit-flipped, and adversarial images:
// never panic, never over-allocate on a hostile header, and never
// return a Good offset that does not bound the intact records. The
// corpus seeds are canonical journal images — realistic encodings whose
// mutations explore the actual record structure. Run with `make fuzz`
// (or `go test -fuzz FuzzJournalDecode`).

import (
	"bytes"
	"testing"
)

// corpusImages builds the seed images from hand-built records (no
// planner dependency, so seeds stay stable as the planner evolves).
func corpusImages(tb testing.TB) [][]byte {
	recs := []*EpochRecord{syntheticRecord(1), syntheticRecord(2)}
	var out [][]byte
	img := AppendHeader(nil)
	out = append(out, append([]byte(nil), img...)) // header only
	for _, r := range recs {
		var err error
		img, err = AppendRecord(img, r)
		if err != nil {
			tb.Fatalf("AppendRecord: %v", err)
		}
		out = append(out, append([]byte(nil), img...))
	}
	return out
}

// syntheticRecord is a hand-built record for fuzz seeding (no planner
// dependency, so seeds stay stable as the planner evolves).
func syntheticRecord(version uint64) *EpochRecord {
	return &EpochRecord{
		Version: version,
		Slots: []SlotConfig{
			{Name: "a", UtilNum: 1, UtilDen: 4, LatencyGoal: 30_000_000, Active: true},
			{Name: "b", UtilNum: 1, UtilDen: 8, LatencyGoal: 10_000_000, Capped: true},
		},
		FailedCores: []int{3},
		TableBytes:  []byte("TBLU-not-actually-a-table"),
	}
}

func FuzzJournalDecode(f *testing.F) {
	for _, img := range corpusImages(f) {
		f.Add(img)
		if len(img) > HeaderSize {
			f.Add(img[:HeaderSize+(len(img)-HeaderSize)/2]) // torn tail
			flipped := append([]byte(nil), img...)
			flipped[len(img)/2] ^= 0x20
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeAll(data)
		if err != nil {
			return // rejected header, fine — just must not panic
		}
		// Good must bound the intact prefix and the accounting must add up.
		if rep.Good < HeaderSize || rep.Good > len(data) {
			t.Fatalf("Good = %d out of range [%d,%d]", rep.Good, HeaderSize, len(data))
		}
		if rep.Truncated != len(data)-rep.Good {
			t.Fatalf("Truncated = %d, want %d", rep.Truncated, len(data)-rep.Good)
		}
		if rep.Truncated > 0 && rep.TailErr == nil {
			t.Fatal("truncated bytes without a tail error")
		}
		// The intact prefix must re-decode to the same records: recovery
		// truncates to Good and replays again, so the two views must agree.
		again, err := DecodeAll(data[:rep.Good])
		if err != nil {
			t.Fatalf("re-decode of intact prefix failed: %v", err)
		}
		if again.TailErr != nil || len(again.Records) != len(rep.Records) {
			t.Fatalf("intact prefix replays differently: %d records (tail %v), want %d clean",
				len(again.Records), again.TailErr, len(rep.Records))
		}
		// Accepted records must re-encode into the exact bytes replayed —
		// the round-trip the re-commit path and recovery both rely on.
		reenc := AppendHeader(nil)
		for i := range rep.Records {
			var err error
			reenc, err = AppendRecord(reenc, &rep.Records[i])
			if err != nil {
				t.Fatalf("re-encode of accepted record %d failed: %v", i, err)
			}
		}
		if !bytes.Equal(reenc, data[:rep.Good]) {
			t.Fatal("re-encoded records differ from the intact prefix")
		}
	})
}
