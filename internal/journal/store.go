package journal

import (
	"fmt"
	"sync"
)

// Store is the pluggable byte-level persistence under a journal: an
// append-only log of framed records plus the recovery-side operations.
// Implementations must make Append atomic at the record granularity
// from the caller's perspective — either the whole record is accepted
// or an error is returned — though what actually survives a crash is
// the store's business (the crash-point tests drive exactly that
// boundary through faults.CrashStore).
type Store interface {
	// Append appends one framed record (as produced by AppendRecord).
	Append(rec []byte) error
	// Sync makes previously appended bytes durable (fsync for files, a
	// no-op for memory).
	Sync() error
	// Load returns the complete journal image for replay.
	Load() ([]byte, error)
	// Truncate drops every byte past offset n — recovery cuts a torn
	// or corrupt tail back to the last intact record with it.
	Truncate(n int64) error
	// Close releases the store; a closed store refuses every operation.
	Close() error
}

// MemStore is the in-memory Store used by simulations and crash-point
// tests: the "disk" is a byte slice. Safe for concurrent use.
type MemStore struct {
	mu     sync.Mutex
	buf    []byte
	closed bool
}

// NewMemStore returns an empty in-memory store with the journal header
// already written, ready for a Writer.
func NewMemStore() *MemStore {
	return &MemStore{buf: AppendHeader(nil)}
}

// NewMemStoreFrom returns an in-memory store seeded with an existing
// journal image (a crash-test's surviving bytes).
func NewMemStoreFrom(image []byte) *MemStore {
	return &MemStore{buf: append([]byte(nil), image...)}
}

func (m *MemStore) Append(rec []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("journal: append to closed store")
	}
	m.buf = append(m.buf, rec...)
	return nil
}

func (m *MemStore) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("journal: sync of closed store")
	}
	return nil
}

func (m *MemStore) Load() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("journal: load from closed store")
	}
	return append([]byte(nil), m.buf...), nil
}

func (m *MemStore) Truncate(n int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("journal: truncate of closed store")
	}
	if n < 0 || n > int64(len(m.buf)) {
		return fmt.Errorf("journal: truncate offset %d out of range [0,%d]", n, len(m.buf))
	}
	m.buf = m.buf[:n]
	return nil
}

func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// Len returns the current image size (tests assert on it).
func (m *MemStore) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.buf)
}

// Writer frames epoch records onto a Store. It is safe for concurrent
// use; the store sees records whole and in append order.
type Writer struct {
	mu      sync.Mutex
	store   Store
	scratch []byte
	records int64
}

// NewWriter wraps a store. The store must already hold a valid journal
// image (NewMemStore and OpenFile arrange the header).
func NewWriter(store Store) *Writer {
	return &Writer{store: store}
}

// Append journals one epoch record.
func (w *Writer) Append(r *EpochRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	buf, err := AppendRecord(w.scratch[:0], r)
	if err != nil {
		return err
	}
	w.scratch = buf[:0]
	if err := w.store.Append(buf); err != nil {
		return err
	}
	w.records++
	return nil
}

// Sync forces durability of everything appended so far.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.store.Sync()
}

// Close syncs and closes the underlying store.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.store.Sync(); err != nil {
		w.store.Close()
		return err
	}
	return w.store.Close()
}

// Records returns the number of records appended through this writer
// (not counting whatever the store already held).
func (w *Writer) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}
