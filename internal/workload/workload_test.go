package workload

import (
	"testing"

	"tableau/internal/netdev"
	"tableau/internal/sim"
	"tableau/internal/vmm"
)

// soloScheduler runs the single runnable vCPU immediately; enough to
// unit-test workload programs in isolation.
type soloScheduler struct{ m *vmm.Machine }

func (s *soloScheduler) Name() string          { return "solo" }
func (s *soloScheduler) Attach(m *vmm.Machine) { s.m = m }
func (s *soloScheduler) PickNext(cpu *vmm.PCPU, now int64) vmm.Decision {
	for _, v := range s.m.VCPUs {
		if v.State == vmm.Runnable && (v.CurrentCPU == -1 || v.CurrentCPU == cpu.ID) {
			return vmm.Decision{VCPU: v, Until: vmm.NoTimer}
		}
	}
	return vmm.Decision{Until: vmm.NoTimer}
}
func (s *soloScheduler) OnWake(v *vmm.VCPU, now int64) {
	for _, cpu := range s.m.CPUs {
		if cpu.Current == nil {
			s.m.Kick(cpu.ID)
			return
		}
	}
}
func (s *soloScheduler) OnBlock(v *vmm.VCPU, now int64) {}

func soloMachine() *vmm.Machine {
	s := &soloScheduler{}
	return vmm.New(sim.New(1), 1, s, vmm.NoOverheads())
}

func TestStressIODutyCycle(t *testing.T) {
	m := soloMachine()
	v := m.AddVCPU("io", StressIO(100_000, 100_000, 0, 1), 256, false)
	m.Start()
	m.Run(10_000_000)
	// 50% duty cycle.
	if v.RunTime < 4_800_000 || v.RunTime > 5_200_000 {
		t.Errorf("RunTime = %d, want ~5 ms", v.RunTime)
	}
	if v.Wakeups < 40 {
		t.Errorf("wakeups = %d, expected frequent blocking", v.Wakeups)
	}
}

func TestStressIOJitterStaysPositive(t *testing.T) {
	m := soloMachine()
	v := m.AddVCPU("io", StressIO(10_000, 10_000, 80, 7), 256, false)
	m.Start()
	m.Run(5_000_000)
	if v.RunTime <= 0 {
		t.Error("jittered workload did not run")
	}
}

func TestCPUHogNeverBlocks(t *testing.T) {
	m := soloMachine()
	v := m.AddVCPU("hog", CPUHog(), 256, false)
	m.Start()
	m.Run(5_000_000)
	if v.RunTime != 5_000_000 {
		t.Errorf("RunTime = %d", v.RunTime)
	}
	if v.Wakeups != 0 {
		t.Errorf("hog woke %d times", v.Wakeups)
	}
}

func TestProbeMeasuresNoDelayWhenAlone(t *testing.T) {
	m := soloMachine()
	p := &Probe{Chunk: 10_000}
	m.AddVCPU("probe", p.Program(), 256, false)
	m.Start()
	m.Run(10_000_000)
	if p.Delays().Count() < 900 {
		t.Fatalf("only %d samples", p.Delays().Count())
	}
	if p.MaxDelay() != 0 {
		t.Errorf("uncontended probe saw %d ns delay", p.MaxDelay())
	}
}

func TestProbeMeasuresPreemptionDelay(t *testing.T) {
	// Two probes sharing one core under a 1 ms round-robin: each sees
	// ~1 ms gaps.
	s := &rrScheduler{slice: 1_000_000}
	m := vmm.New(sim.New(1), 1, s, vmm.NoOverheads())
	p1, p2 := &Probe{Chunk: 10_000}, &Probe{Chunk: 10_000}
	m.AddVCPU("p1", p1.Program(), 256, false)
	m.AddVCPU("p2", p2.Program(), 256, false)
	m.Start()
	m.Run(50_000_000)
	if p1.MaxDelay() < 900_000 || p1.MaxDelay() > 1_100_000 {
		t.Errorf("p1 max delay = %d, want ~1 ms", p1.MaxDelay())
	}
	if p2.MaxDelay() < 900_000 {
		t.Errorf("p2 max delay = %d", p2.MaxDelay())
	}
}

// minimal RR for the probe test.
type rrScheduler struct {
	m     *vmm.Machine
	queue []*vmm.VCPU
	slice int64
}

func (s *rrScheduler) Name() string { return "rr" }
func (s *rrScheduler) Attach(m *vmm.Machine) {
	s.m = m
	s.queue = append(s.queue, m.VCPUs...)
}
func (s *rrScheduler) PickNext(cpu *vmm.PCPU, now int64) vmm.Decision {
	if prev := cpu.Current; prev != nil && prev.State == vmm.Runnable {
		s.queue = append(s.queue, prev)
	}
	for len(s.queue) > 0 {
		v := s.queue[0]
		s.queue = s.queue[1:]
		if v.State == vmm.Runnable && (v.CurrentCPU == -1 || v.CurrentCPU == cpu.ID) {
			return vmm.Decision{VCPU: v, Until: now + s.slice}
		}
	}
	return vmm.Decision{Until: vmm.NoTimer}
}
func (s *rrScheduler) OnWake(v *vmm.VCPU, now int64)  { s.queue = append(s.queue, v) }
func (s *rrScheduler) OnBlock(v *vmm.VCPU, now int64) {}

func TestPingSinkLatency(t *testing.T) {
	m := soloMachine()
	sink := &PingSink{Cost: 5_000}
	v := m.AddVCPU("ping", sink.Program(), 256, false)
	sink.Bind(v)
	m.Start()
	for i := int64(1); i <= 10; i++ {
		m.Eng.At(i*1_000_000, func(int64) { sink.Arrive(m) })
	}
	m.Run(20_000_000)
	h := sink.Latencies()
	if h.Count() != 10 {
		t.Fatalf("served %d pings", h.Count())
	}
	// Uncontended: latency == processing cost.
	if h.Max() != 5_000 {
		t.Errorf("max latency = %d, want 5000", h.Max())
	}
}

func TestSchedulePingsVolume(t *testing.T) {
	m := soloMachine()
	sink := &PingSink{}
	v := m.AddVCPU("ping", sink.Program(), 256, false)
	sink.Bind(v)
	m.Start()
	SchedulePings(m, sink, 4, 50, 200_000, 3)
	m.Run(4 * 50 * 200_000)
	if got := sink.Latencies().Count(); got < 150 {
		t.Errorf("served %d of 200 pings", got)
	}
}

func TestWebServerSingleRequest(t *testing.T) {
	m := soloMachine()
	w := &WebServer{
		NIC:        netdev.New(1_000_000_000, 100_000), // 1 GB/s, 100 KB ring
		BaseCost:   100_000,
		CostPerKiB: 1024, // 1 ns per byte: easy arithmetic
	}
	v := m.AddVCPU("web", w.Program(), 256, false)
	w.Bind(v)
	m.Start()
	m.Eng.At(1_000_000, func(int64) { w.Arrive(m, 1_000_000, 10_000) })
	m.Run(5_000_000)
	if w.Completed() != 1 {
		t.Fatalf("completed = %d", w.Completed())
	}
	// Latency = CPU (100µs + 10µs) + wire (10 µs at 1 byte/ns).
	want := int64(100_000 + 10_000 + 10_000)
	if got := w.Latencies().Max(); got != want {
		t.Errorf("latency = %d, want %d", got, want)
	}
}

func TestWebServerSegmentsLargeResponses(t *testing.T) {
	m := soloMachine()
	w := &WebServer{
		NIC:        netdev.New(1_000_000_000, 100_000),
		BaseCost:   1_000,
		CostPerKiB: 100,
	}
	v := m.AddVCPU("web", w.Program(), 256, false)
	w.Bind(v)
	m.Start()
	// 1 MB response: 10 ring-sized segments with backpressure blocks.
	m.Eng.At(0, func(int64) { w.Arrive(m, 0, 1_000_000) })
	m.Run(5_000_000)
	if w.Completed() != 1 {
		t.Fatalf("completed = %d", w.Completed())
	}
	// Wire time dominates: ~1 ms for 1 MB at 1 GB/s.
	if got := w.Latencies().Max(); got < 1_000_000 || got > 1_300_000 {
		t.Errorf("latency = %d, want ~1.1 ms", got)
	}
}

func TestWebServerCoordinatedOmission(t *testing.T) {
	// Saturate the server: open-loop latency must grow with queueing
	// measured from *intended* times.
	m := soloMachine()
	w := &WebServer{
		NIC:      netdev.New(1_250_000_000, 262_144),
		BaseCost: 1_000_000, // 1 ms per request: capacity 1000 r/s
	}
	v := m.AddVCPU("web", w.Program(), 256, false)
	w.Bind(v)
	m.Start()
	RunOpenLoop(m, w, 0, 2000, 100_000_000, 1024) // 2x overload for 100 ms
	m.Run(150_000_000)
	h := w.Latencies()
	if h.Count() < 100 {
		t.Fatalf("completed %d", h.Count())
	}
	// The last completions queued behind ~100 ms of backlog; without CO
	// correction latency would look like ~1 ms.
	if h.Max() < 20_000_000 {
		t.Errorf("max latency %d too low: coordinated omission hidden", h.Max())
	}
}

func TestRunOpenLoopCount(t *testing.T) {
	m := soloMachine()
	w := &WebServer{NIC: netdev.New(1_000_000_000, 100_000)}
	v := m.AddVCPU("web", w.Program(), 256, false)
	w.Bind(v)
	m.Start()
	n := RunOpenLoop(m, w, 0, 100, 1_000_000_000, 1024) // 100 r/s for 1 s
	if n != 100 {
		t.Errorf("scheduled %d requests, want 100", n)
	}
	m.Run(1_200_000_000)
	if w.Completed() != 100 {
		t.Errorf("completed %d", w.Completed())
	}
}
