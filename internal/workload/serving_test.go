package workload

import (
	"testing"

	"tableau/internal/sim"
	"tableau/internal/vmm"
)

func TestSLOServerAccounting(t *testing.T) {
	m := soloMachine()
	srv := &SLOServer{Cost: 10_000, SLO: 1_000_000}
	v := m.AddVCPU("srv", srv.Program(), 256, false)
	srv.Bind(v)
	// 100 requests at 1 ms spacing: an uncontended server finishes each
	// within Cost, so every request meets the SLO.
	for i := 0; i < 100; i++ {
		at := int64(i) * 1_000_000
		m.Eng.At(at, func(int64) { srv.Arrive(m, at) })
	}
	m.Start()
	m.Run(200_000_000)
	if srv.Completed() != 100 {
		t.Fatalf("completed %d of 100", srv.Completed())
	}
	if srv.SLOMet() != 100 {
		t.Errorf("SLO met on %d of 100 uncontended requests", srv.SLOMet())
	}
	if max := srv.Latencies().Max(); max > 20_000 {
		t.Errorf("uncontended max latency %d ns, want ~Cost", max)
	}
}

func TestSLOServerChargesBacklogToIntendedTime(t *testing.T) {
	m := soloMachine()
	srv := &SLOServer{Cost: 500_000, SLO: 1_000_000}
	v := m.AddVCPU("srv", srv.Program(), 256, false)
	srv.Bind(v)
	// A 10-request burst at t=0 against a 500 µs service time: request
	// k completes at (k+1)*500 µs, so the tail blows the 1 ms SLO even
	// though the server never idles — coordinated-omission correctness.
	m.Eng.At(0, func(int64) {
		for i := 0; i < 10; i++ {
			srv.Arrive(m, 0)
		}
	})
	m.Start()
	m.Run(50_000_000)
	if srv.Completed() != 10 {
		t.Fatalf("completed %d of 10", srv.Completed())
	}
	if srv.SLOMet() != 2 {
		t.Errorf("SLO met on %d requests, want exactly the first 2", srv.SLOMet())
	}
	if max := srv.Latencies().Max(); max < 5_000_000 {
		t.Errorf("max latency %d ns does not charge the full backlog wait", max)
	}
}

func TestScheduleBurstsOpenLoopDeterminism(t *testing.T) {
	counts := make([]int, 2)
	for rep := range counts {
		m := vmm.New(sim.New(1), 1, &soloScheduler{}, vmm.NoOverheads())
		srv := &SLOServer{}
		v := m.AddVCPU("srv", srv.Program(), 256, false)
		srv.Bind(v)
		counts[rep] = ScheduleBursts(m, srv, 0, 1_000_000_000, 2_000, 20_000, 20_000_000, 10_000_000, 7)
		m.Start()
		m.Run(1_100_000_000)
		if got := srv.Completed(); got != int64(counts[rep]) {
			t.Fatalf("rep %d: served %d of %d scheduled requests", rep, got, counts[rep])
		}
	}
	if counts[0] != counts[1] {
		t.Fatalf("same seed scheduled %d then %d requests", counts[0], counts[1])
	}
	if counts[0] < 1_000 {
		t.Fatalf("bursty stream scheduled only %d requests over 1 s", counts[0])
	}
	// The stream must actually be bursty: the burst rate is 10x the
	// base, so the total must exceed a pure base-rate second.
	if counts[0] <= 2_000 {
		t.Errorf("scheduled %d requests — no burst segment exceeded the base rate", counts[0])
	}
}
