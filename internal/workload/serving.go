package workload

import (
	"math/rand"

	"tableau/internal/stats"
	"tableau/internal/vmm"
)

// SLOServer is the mixed-criticality serving guest of the tenancy
// experiment: an open-loop request responder with per-request SLO
// accounting. Each request costs Cost CPU time; latency is measured
// from the request's *intended* arrival time to completion of its
// compute (coordinated-omission correct — a request delayed behind a
// backlog charges the whole wait), and each completion is classified
// against the per-request latency objective SLO.
type SLOServer struct {
	// Cost is the CPU time to serve one request; default 20 µs.
	Cost int64
	// SLO is the per-request latency objective; default 10 ms.
	SLO int64

	vcpu    *vmm.VCPU
	queue   []int64 // intended arrival times, FIFO
	serving int64   // intended time of the in-flight request; -1 none
	hist    stats.Histogram
	met     int64
}

// Bind attaches the server to its vCPU; call after AddVCPU.
func (s *SLOServer) Bind(v *vmm.VCPU) { s.vcpu = v; s.serving = -1 }

// Program returns the responder program.
func (s *SLOServer) Program() vmm.Program {
	if s.Cost == 0 {
		s.Cost = 20_000
	}
	if s.SLO == 0 {
		s.SLO = 10_000_000
	}
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		if s.serving >= 0 {
			lat := now - s.serving
			s.hist.Record(lat)
			if lat <= s.SLO {
				s.met++
			}
			s.serving = -1
		}
		if len(s.queue) == 0 {
			return vmm.BlockIndefinitely()
		}
		s.serving = s.queue[0]
		s.queue = s.queue[1:]
		return vmm.Compute(s.Cost)
	})
}

// Arrive enqueues a request with the given intended arrival time,
// waking the server.
func (s *SLOServer) Arrive(m *vmm.Machine, intended int64) {
	s.queue = append(s.queue, intended)
	m.Wake(s.vcpu)
}

// Completed returns the number of served requests.
func (s *SLOServer) Completed() int64 { return s.hist.Count() }

// SLOMet returns the number of served requests that met the objective.
func (s *SLOServer) SLOMet() int64 { return s.met }

// Latencies returns the recorded request-latency distribution
// (intended arrival to compute completion).
func (s *SLOServer) Latencies() *stats.Histogram { return &s.hist }

// ScheduleBursts schedules an open-loop bursty request stream onto the
// server: the window [start, start+duration) alternates quiet segments
// (baseRate requests/s) and bursts (burstRate requests/s), with each
// segment's length jittered in [0.5, 1.5)x its nominal quietLen or
// burstLen. Arrival events fire at the intended times regardless of
// server state — the open-loop property that makes the SLO accounting
// coordinated-omission correct. Returns the number of requests
// scheduled.
func ScheduleBursts(m *vmm.Machine, s *SLOServer, start, duration int64,
	baseRate, burstRate float64, quietLen, burstLen int64, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	n := 0
	t := start
	end := start + duration
	inBurst := false
	for t < end {
		nom, rate := quietLen, baseRate
		if inBurst {
			nom, rate = burstLen, burstRate
		}
		seg := nom/2 + rng.Int63n(max1(nom))
		if t+seg > end {
			seg = end - t
		}
		if k := int(rate * float64(seg) / 1e9); k > 0 {
			for _, at := range stats.OpenLoop(t, rate, k) {
				intended := at
				m.Eng.At(intended, func(int64) { s.Arrive(m, intended) })
				n++
			}
		}
		t += seg
		inBurst = !inBurst
	}
	return n
}
