// Package workload implements the guest workloads of the paper's
// evaluation (Sec. 7) as vmm programs:
//
//   - StressIO: the stress(1)-style I/O-intensive loop used as
//     background load, triggering frequent scheduler invocations;
//   - CPUHog: the fully CPU-bound cache-thrashing background load;
//   - Probe: the redis-cli --intrinsic-latency analogue, a tight
//     CPU loop measuring scheduler-induced service gaps;
//   - PingSink: an ICMP-style echo responder woken by externally
//     scheduled pings;
//   - WebServer: the nginx-style HTTPS file server with NIC
//     backpressure, driven by a wrk2-style open-loop client with
//     coordinated-omission-correct latency accounting.
package workload

import (
	"math/rand"

	"tableau/internal/netdev"
	"tableau/internal/stats"
	"tableau/internal/vmm"
)

// StressIO returns a program alternating compute bursts and I/O waits,
// modelled on the stress benchmark's I/O workers. jitterPct (0-100)
// randomizes each phase length to avoid lockstep behaviour across VMs.
func StressIO(compute, ioWait int64, jitterPct int, seed int64) vmm.Program {
	rng := rand.New(rand.NewSource(seed))
	inIO := false
	jitter := func(base int64) int64 {
		if jitterPct <= 0 {
			return base
		}
		span := base * int64(jitterPct) / 100
		if span <= 0 {
			return base
		}
		return base - span/2 + rng.Int63n(span+1)
	}
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		inIO = !inIO
		if inIO {
			return vmm.Compute(max1(jitter(compute)))
		}
		return vmm.Block(max1(jitter(ioWait)))
	})
}

// CPUHog returns a fully CPU-bound program (the cache-thrashing
// background workload): it never blocks and never triggers the
// scheduler voluntarily.
func CPUHog() vmm.Program {
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		return vmm.Compute(1_000_000)
	})
}

func max1(v int64) int64 {
	if v < 1 {
		return 1
	}
	return v
}

// Probe measures intrinsic scheduling latency like redis-cli
// --intrinsic-latency: a tight loop of small compute chunks; any gap
// between the ideal and actual completion cadence is scheduler-induced
// delay. The paper runs it at the highest guest priority so only the VM
// scheduler contributes (Sec. 7.3).
type Probe struct {
	// Chunk is the loop-iteration length; default 10 µs.
	Chunk int64

	hist    stats.Histogram
	lastEnd int64
	started bool
}

// Program returns the probe's vmm program. Use one Probe per vCPU.
func (p *Probe) Program() vmm.Program {
	if p.Chunk == 0 {
		p.Chunk = 10_000
	}
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		if p.started {
			// Ideal cadence: the previous chunk would have completed
			// Chunk ns after its start; anything beyond is delay
			// (preemption inside or between chunks).
			delay := now - p.lastEnd - p.Chunk
			if delay < 0 {
				delay = 0
			}
			p.hist.Record(delay)
		}
		p.started = true
		p.lastEnd = now
		return vmm.Compute(p.Chunk)
	})
}

// MaxDelay returns the maximum observed scheduling delay.
func (p *Probe) MaxDelay() int64 { return p.hist.Max() }

// Delays returns the recorded delay distribution.
func (p *Probe) Delays() *stats.Histogram { return &p.hist }

// PhasedProbe is a Probe whose delay samples are split into three
// histograms around a fault window [FaultStart, FaultEnd): before,
// during, and after. A delay sample is attributed to the phase in which
// it is observed (the gap's end), so a blackout that begins during the
// fault but ends after it counts against the recovery phase — exactly
// the attribution a "did service come back" question wants.
type PhasedProbe struct {
	// Chunk is the loop-iteration length; default 10 µs.
	Chunk int64
	// FaultStart/FaultEnd bound the fault window.
	FaultStart, FaultEnd int64

	before  stats.Histogram
	during  stats.Histogram
	after   stats.Histogram
	lastEnd int64
	started bool
}

// Program returns the probe's vmm program. Use one PhasedProbe per vCPU.
func (p *PhasedProbe) Program() vmm.Program {
	if p.Chunk == 0 {
		p.Chunk = 10_000
	}
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		if p.started {
			delay := now - p.lastEnd - p.Chunk
			if delay < 0 {
				delay = 0
			}
			switch {
			case now < p.FaultStart:
				p.before.Record(delay)
			case now < p.FaultEnd:
				p.during.Record(delay)
			default:
				p.after.Record(delay)
			}
		}
		p.started = true
		p.lastEnd = now
		return vmm.Compute(p.Chunk)
	})
}

// MaxBefore returns the maximum delay observed before the fault window.
func (p *PhasedProbe) MaxBefore() int64 { return p.before.Max() }

// MaxDuring returns the maximum delay observed inside the fault window.
func (p *PhasedProbe) MaxDuring() int64 { return p.during.Max() }

// MaxAfter returns the maximum delay observed after the fault window.
func (p *PhasedProbe) MaxAfter() int64 { return p.after.Max() }

// Samples returns the total number of recorded delay samples.
func (p *PhasedProbe) Samples() int64 {
	return p.before.Count() + p.during.Count() + p.after.Count()
}

// PingSink is an echo responder: externally arriving pings wake the
// vCPU, which answers each with a tiny compute burst. Latency is
// recorded from arrival to response completion — the guest-scheduler-
// free proxy for VM scheduling latency the paper uses (Sec. 7.3).
type PingSink struct {
	// Cost is the CPU time to process one ping; default 5 µs.
	Cost int64

	vcpu     *vmm.VCPU
	pending  []int64
	inflight int64 // arrival time of the ping being processed, -1 none
	hist     stats.Histogram
}

// Bind attaches the sink to its vCPU; call after AddVCPU.
func (p *PingSink) Bind(v *vmm.VCPU) { p.vcpu = v; p.inflight = -1 }

// Program returns the responder program.
func (p *PingSink) Program() vmm.Program {
	if p.Cost == 0 {
		p.Cost = 5_000
	}
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		if p.inflight >= 0 {
			p.hist.Record(now - p.inflight)
			p.inflight = -1
		}
		if len(p.pending) == 0 {
			return vmm.BlockIndefinitely()
		}
		p.inflight = p.pending[0]
		p.pending = p.pending[1:]
		return vmm.Compute(p.Cost)
	})
}

// Arrive delivers a ping at the current time, waking the responder.
func (p *PingSink) Arrive(m *vmm.Machine) {
	p.pending = append(p.pending, m.Now())
	m.Wake(p.vcpu)
}

// Latencies returns the recorded round-trip (arrival-to-response)
// distribution.
func (p *PingSink) Latencies() *stats.Histogram { return &p.hist }

// SchedulePings schedules count pings with uniformly random spacing in
// [0, maxSpacing) per the paper's setup (eight threads sending 5,000
// randomly-spaced pings each, 0-200 ms apart). threads parallel streams
// are generated; all arrivals land on the single sink.
func SchedulePings(m *vmm.Machine, sink *PingSink, threads, count int, maxSpacing int64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for th := 0; th < threads; th++ {
		t := int64(0)
		for i := 0; i < count; i++ {
			t += rng.Int63n(maxSpacing)
			m.Eng.At(t, func(int64) { sink.Arrive(m) })
		}
	}
}

// WebServer is the nginx-style server of Sec. 7.4: each request costs
// CPU time (TLS + PHP + copy, scaling with response size), then the
// response is pushed through the VM's NIC in ring-sized segments with
// blocking backpressure. Latency is recorded against the request's
// *intended* time (coordinated-omission correction) when the last byte
// reaches the wire.
type WebServer struct {
	// NIC is the server VM's virtual function.
	NIC *netdev.NIC
	// BaseCost is the per-request CPU cost independent of size
	// (TLS handshake amortization, PHP, syscalls); default 150 µs.
	BaseCost int64
	// CostPerKiB is the additional CPU cost per KiB of response
	// (encryption + copies); default 200 ns.
	CostPerKiB int64
	// LargeThreshold and CostPerKiBLarge model the zero-copy (sendfile)
	// path: bytes beyond LargeThreshold cost CostPerKiBLarge per KiB
	// instead of CostPerKiB. Defaults: 128 KiB and CostPerKiB (i.e.
	// linear cost) respectively.
	LargeThreshold  int64
	CostPerKiBLarge int64

	vcpu  *vmm.VCPU
	queue []webReq

	sending   *webReq
	remaining int64

	// CountUntil bounds the steady-state completion counter: responses
	// finishing after it still record latency but are not counted by
	// CompletedInWindow. Zero disables the bound.
	CountUntil int64

	hist      stats.Histogram
	completed int64
	inWindow  int64
}

type webReq struct {
	intended int64
	bytes    int64
}

// Bind attaches the server to its vCPU; call after AddVCPU.
func (w *WebServer) Bind(v *vmm.VCPU) { w.vcpu = v }

// Program returns the server program.
func (w *WebServer) Program() vmm.Program {
	if w.BaseCost == 0 {
		w.BaseCost = 150_000
	}
	if w.CostPerKiB == 0 {
		w.CostPerKiB = 200
	}
	if w.LargeThreshold == 0 {
		w.LargeThreshold = 128 * 1024
	}
	if w.CostPerKiBLarge == 0 {
		w.CostPerKiBLarge = w.CostPerKiB
	}
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		for {
			if w.sending != nil {
				seg := w.remaining
				if max := w.NIC.MaxSegment(); seg > max {
					seg = max
				}
				done, ok := w.NIC.TrySend(now, seg)
				if !ok {
					at, err := w.NIC.RoomAt(now, seg)
					if err != nil {
						panic("workload: segment exceeds ring capacity")
					}
					return vmm.Block(at - now)
				}
				w.remaining -= seg
				if w.remaining > 0 {
					continue
				}
				req := *w.sending
				w.sending = nil
				m.Eng.At(done, func(fin int64) {
					w.hist.Record(fin - req.intended)
					w.completed++
					if w.CountUntil == 0 || fin <= w.CountUntil {
						w.inWindow++
					}
				})
				continue
			}
			if len(w.queue) == 0 {
				return vmm.BlockIndefinitely()
			}
			req := w.queue[0]
			w.queue = w.queue[1:]
			w.sending = &req
			w.remaining = req.bytes
			small := req.bytes
			if small > w.LargeThreshold {
				small = w.LargeThreshold
			}
			cost := w.BaseCost + small*w.CostPerKiB/1024 + (req.bytes-small)*w.CostPerKiBLarge/1024
			return vmm.Compute(max1(cost))
		}
	})
}

// Arrive enqueues a request with the given intended start time and
// response size, waking the server.
func (w *WebServer) Arrive(m *vmm.Machine, intended, bytes int64) {
	w.queue = append(w.queue, webReq{intended: intended, bytes: bytes})
	m.Wake(w.vcpu)
}

// Completed returns the number of fully transmitted responses.
func (w *WebServer) Completed() int64 { return w.completed }

// CompletedInWindow returns the responses fully transmitted no later
// than CountUntil — the steady-state throughput numerator, excluding
// backlog flushed during the post-measurement drain.
func (w *WebServer) CompletedInWindow() int64 { return w.inWindow }

// Latencies returns the recorded response-latency distribution
// (intended-start to last byte on the wire).
func (w *WebServer) Latencies() *stats.Histogram { return &w.hist }

// RunOpenLoop schedules an open-loop constant-rate request stream of
// the given size: rate requests/second from start for duration ns. The
// arrival events fire at the intended times regardless of server state,
// exactly like wrk2's constant-throughput mode.
func RunOpenLoop(m *vmm.Machine, w *WebServer, start int64, rate float64, duration int64, bytes int64) int {
	n := int(rate * float64(duration) / 1e9)
	times := stats.OpenLoop(start, rate, n)
	for _, t := range times {
		intended := t
		m.Eng.At(intended, func(int64) { w.Arrive(m, intended, bytes) })
	}
	return n
}
