package dispatch_test

import (
	"fmt"
	"math/rand"
	"testing"

	"tableau/internal/core"
	"tableau/internal/dispatch"
	"tableau/internal/planner"
	"tableau/internal/sim"
	"tableau/internal/table"
	"tableau/internal/vmm"
)

// Local copies of the in-package test helpers (this file lives in
// dispatch_test to break the core -> dispatch import cycle).
func mkTable(t *testing.T, tlen int64, vcpus []table.VCPUInfo, allocs [][]table.Alloc) *table.Table {
	t.Helper()
	tbl := &table.Table{Len: tlen, VCPUs: vcpus, Generation: 1}
	for i, as := range allocs {
		tbl.Cores = append(tbl.Cores, table.CoreTable{Core: i, Allocs: as})
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.BuildSlices(0); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func mkAlloc(s, e int64, v int) table.Alloc { return table.Alloc{Start: s, End: e, VCPU: v} }

// TestReservationDeliveredEndToEnd is the paper's utilization guarantee
// proven against the *runtime*, not just the table: for random
// admissible VM populations, always-hungry VMs running under the full
// planner + dispatcher stack receive at least their reserved share of
// CPU over several table cycles (with one period window of slack for
// the partial window at the end of the run).
func TestReservationDeliveredEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	trials := 0
	for trial := 0; trials < 10 && trial < 40; trial++ {
		cores := 2 + rng.Intn(3)
		sys := core.NewSystem(cores, planner.Options{}, dispatch.Options{})
		var ids []int
		var est float64
		for i := 0; i < 4*cores; i++ {
			den := int64(4 + rng.Intn(12))
			num := 1 + rng.Int63n(den/2)
			if est+float64(num)/float64(den) > 0.9*float64(cores) {
				break
			}
			id, err := sys.AddVM(core.VMConfig{
				Name:        fmt.Sprintf("t%dv%d", trial, i),
				Util:        planner.Util{Num: num, Den: den},
				LatencyGoal: int64(10+rng.Intn(90)) * 1_000_000,
				Capped:      rng.Intn(2) == 0,
			})
			if err != nil {
				t.Fatal(err)
			}
			est += float64(num) / float64(den)
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			continue
		}
		trials++
		d, res, err := sys.BuildDispatcher()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m := vmm.New(sim.New(int64(trial)+1), cores, d, vmm.NoOverheads())
		for range ids {
			m.AddVCPU("spin", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
				return vmm.Compute(1_000_000)
			}), 256, true)
		}
		m.Start()
		horizon := 5 * res.Table.Len
		m.Run(horizon)
		for _, id := range ids {
			var g *table.Guarantee
			for i := range res.Guarantees {
				if res.Guarantees[i].VCPU == id {
					g = &res.Guarantees[i]
					break
				}
			}
			if g == nil {
				t.Fatalf("trial %d: no guarantee for vm %d", trial, id)
			}
			want := (horizon/g.WindowLen)*g.Service - g.Service
			if got := m.VCPUs[id].RunTime; got < want {
				t.Errorf("trial %d vm %d: got %d ns, want >= %d ns over %d ns",
					trial, id, got, want, horizon)
			}
		}
	}
	if trials < 5 {
		t.Fatalf("only %d populations exercised", trials)
	}
}

// TestCappedWakeIgnoredOutsideReservation pins the paper's wakeup rule
// (Sec. 6): a capped vCPU waking outside its reservation triggers no
// rescheduling at all — the next allocation will find it runnable.
func TestCappedWakeIgnoredOutsideReservation(t *testing.T) {
	// vCPU 0 reserved only in [0, 10 µs) of each 100 µs cycle on core 0;
	// core 1 idles.
	tbl := mkTable(t, 100_000, []table.VCPUInfo{
		{Name: "capped", Capped: true, HomeCore: 0},
	}, [][]table.Alloc{
		{mkAlloc(0, 10_000, 0)},
		{},
	})
	d := dispatch.New(tbl, dispatch.Options{})
	m := vmm.New(sim.New(1), 2, d, vmm.NoOverheads())
	work := false
	v := m.AddVCPU("capped", vmm.ProgramFunc(func(mm *vmm.Machine, vc *vmm.VCPU, now int64) vmm.Action {
		if work {
			work = false
			return vmm.Compute(1_000)
		}
		return vmm.BlockIndefinitely()
	}), 256, true)
	m.Start()
	m.Run(50_000) // mid-cycle: outside the reservation, vCPU blocked
	schedOpsBefore := m.Stats.ScheduleOps
	work = true
	m.Wake(v)
	// Advance to just before the next cycle: no scheduler invocation
	// may have been caused by the wake.
	m.Run(99_000)
	if got := m.Stats.ScheduleOps; got != schedOpsBefore {
		t.Errorf("wake outside reservation caused %d scheduler invocations", got-schedOpsBefore)
	}
	// The next reservation picks it up.
	m.Run(120_000)
	if v.RunTime == 0 {
		t.Error("capped vCPU not served in its next reservation")
	}
}

// TestSecondLevelEpochReplenishment pins the budget mechanics of the
// second-level scheduler: budgets are divided evenly among ready
// members and replenished only when all ready members are exhausted
// (paper Sec. 4).
func TestSecondLevelEpochReplenishment(t *testing.T) {
	tbl := mkTable(t, 100_000, []table.VCPUInfo{
		{Name: "a", HomeCore: 0},
		{Name: "b", HomeCore: 0},
	}, [][]table.Alloc{{}}) // whole core idle: everything is second-level
	d := dispatch.New(tbl, dispatch.Options{Epoch: 1_000_000})
	m := vmm.New(sim.New(1), 1, d, vmm.NoOverheads())
	a := m.AddVCPU("a", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		return vmm.Compute(1_000_000)
	}), 256, false)
	b := m.AddVCPU("b", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		return vmm.Compute(1_000_000)
	}), 256, false)
	m.Start()
	m.Run(10_000_000)
	// Each epoch hands 500 µs to each of the two members; over 10 ms
	// both run ~5 ms.
	if a.RunTime+b.RunTime != 10_000_000 {
		t.Fatalf("not work conserving: %d", a.RunTime+b.RunTime)
	}
	diff := a.RunTime - b.RunTime
	if diff < 0 {
		diff = -diff
	}
	if diff > 1_000_000 {
		t.Errorf("epoch fair share broken: a=%d b=%d", a.RunTime, b.RunTime)
	}
	st := d.Stats()
	if st.SecondLevelDispatches == 0 || st.TableDispatches != 0 {
		t.Errorf("expected pure second-level operation: %+v", st)
	}
}
