package dispatch

import (
	"fmt"
	"testing"

	"tableau/internal/sim"
	"tableau/internal/table"
	"tableau/internal/vmm"
)

// BenchmarkDispatcherHotPath measures the dispatcher's PickNext on a
// realistic four-VMs-per-core table: the paper's O(1) claim.
func BenchmarkDispatcherHotPath(b *testing.B) {
	tbl := &table.Table{Len: 11_411_400}
	for i := 0; i < 4; i++ {
		tbl.VCPUs = append(tbl.VCPUs, table.VCPUInfo{Name: fmt.Sprintf("v%d", i), Capped: true, HomeCore: 0})
		s := int64(i) * 2_852_850
		tbl.Cores = appendAlloc(tbl.Cores, 0, s, s+2_852_850, i)
	}
	if err := tbl.Validate(); err != nil {
		b.Fatal(err)
	}
	if err := tbl.BuildSlices(0); err != nil {
		b.Fatal(err)
	}
	d := New(tbl, Options{})
	m := vmm.New(sim.New(1), 1, d, vmm.NoOverheads())
	for i := 0; i < 4; i++ {
		m.AddVCPU(fmt.Sprintf("v%d", i), vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
			return vmm.Compute(1_000_000)
		}), 256, true)
	}
	m.Start()
	m.Run(1_000) // settle
	cpu := m.CPUs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PickNext(cpu, int64(i)*7919%tbl.Len)
	}
}

// BenchmarkTenancyPick measures the second-level pick on a dark slice
// with a mixed-class membership: half the uncapped vCPUs are marked
// best-effort, so every pick walks the LS-over-BE preference order.
// The class check must stay O(members) with zero allocations, like the
// class-blind pick it extends.
func BenchmarkTenancyPick(b *testing.B) {
	tbl := &table.Table{Len: 11_411_400}
	half := tbl.Len / 2
	for i := 0; i < 8; i++ {
		tbl.VCPUs = append(tbl.VCPUs, table.VCPUInfo{Name: fmt.Sprintf("v%d", i), HomeCore: 0})
		s := int64(i) * (half / 8)
		tbl.Cores = appendAlloc(tbl.Cores, 0, s, s+half/8, i)
	}
	if err := tbl.Validate(); err != nil {
		b.Fatal(err)
	}
	if err := tbl.BuildSlices(0); err != nil {
		b.Fatal(err)
	}
	d := New(tbl, Options{})
	m := vmm.New(sim.New(1), 1, d, vmm.NoOverheads())
	for i := 0; i < 8; i++ {
		m.AddVCPU(fmt.Sprintf("v%d", i), vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
			return vmm.Compute(1_000_000)
		}), 256, false)
	}
	be := make([]bool, 8)
	for i := range be {
		be[i] = i%2 == 1
	}
	d.SetBestEffort(be)
	m.Start()
	m.Run(1_000) // settle
	cpu := m.CPUs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Offsets in the dark second half of the frame: every pick goes
		// through the second-level scheduler.
		d.PickNext(cpu, half+int64(i)*7919%half)
	}
}

func appendAlloc(cores []table.CoreTable, core int, s, e int64, v int) []table.CoreTable {
	for len(cores) <= core {
		cores = append(cores, table.CoreTable{Core: len(cores)})
	}
	cores[core].Allocs = append(cores[core].Allocs, table.Alloc{Start: s, End: e, VCPU: v})
	return cores
}
