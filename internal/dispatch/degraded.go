package dispatch

import "tableau/internal/table"

// Degraded mode: what the dispatcher does between a pCPU fail-stop and
// the arrival of a recovery table.
//
// A fail-stopped core takes its table slices with it: every reservation
// on that core is unenforceable, and its second-level members lose
// their home. Rather than strand those vCPUs until the planner reacts,
// the dispatcher folds them into the surviving cores' second-level
// fair-share schedulers — they run in the survivors' idle gaps,
// best-effort, with their table guarantees explicitly void. The control
// plane (core.System.EmergencyReplan) is expected to follow up with an
// admission-checked replan onto the surviving cores; when that table is
// adopted, rebuildMembership clears all emergency grants and normal
// guarantee-backed operation resumes.

// OnCoreFail implements vmm.CoreFailureObserver: fold the dead core's
// work onto the survivors.
func (d *Dispatcher) OnCoreFail(core int, now int64) {
	if core < 0 || core >= len(d.failed) || d.failed[core] {
		return
	}
	d.failed[core] = true
	d.stats.CoreFailures++
	cs := &d.cores[core]
	cs.l2Running = -1
	// The dead core's second-level members lose their home; dropping
	// them here lets remapStranded treat them like any other vCPU with
	// no live path to a CPU.
	for _, vid := range append([]int(nil), cs.l2List...) {
		d.dropMember(core, vid)
	}
	// Clear cross-core protocol state referring to the dead core: it
	// will never deschedule anything again (its current vCPU was already
	// descheduled by the machine before this call) and must not be the
	// target of deferred IPIs.
	for vid := range d.owner {
		if d.owner[vid] == core {
			d.owner[vid] = -1
		}
		if d.ipiWanted[vid] == core {
			d.ipiWanted[vid] = -1
		}
	}
	// A dead core leaves the adoption quorum. If a table switch was
	// pending and this core was the last holdout, the switch must
	// complete here — no surviving core will re-enter the adoption path
	// on its behalf, and remapping the stranded vCPUs against the old
	// table while every live core enacts the new one would hand out
	// emergency memberships (and thus dispatch queues) the new table
	// contradicts.
	if d.next != nil {
		d.completeSwitch()
	}
	d.remapStranded(d.active)
	// Kick every survivor so the new membership takes effect on their
	// next decision rather than at their next natural boundary.
	for c := range d.cores {
		if !d.failed[c] {
			d.m.Kick(c)
		}
	}
}

// remapStranded grants emergency second-level membership to every vCPU
// that tbl reserves time for but that, after the fail-stops so far, has
// neither a reservation on a live core nor a second-level home. The
// stranded vCPUs are spread round-robin over the surviving cores.
// vCPUs with no reservations at all (inactive slots) are never swept
// in, and split vCPUs that keep a live reservation are left to the
// trailing-core policy.
func (d *Dispatcher) remapStranded(tbl *table.Table) {
	online := make([]int, 0, len(d.cores))
	for c := range d.cores {
		if !d.failed[c] {
			online = append(online, c)
		}
	}
	if len(online) == 0 || len(online) == len(d.cores) {
		return
	}
	anyRes := make([]bool, len(tbl.VCPUs))
	liveRes := make([]bool, len(tbl.VCPUs))
	for _, ct := range tbl.Cores {
		dead := ct.Core >= 0 && ct.Core < len(d.failed) && d.failed[ct.Core]
		for _, a := range ct.Allocs {
			if a.VCPU == table.Idle {
				continue
			}
			anyRes[a.VCPU] = true
			if !dead {
				liveRes[a.VCPU] = true
			}
		}
	}
	member := make([]bool, len(tbl.VCPUs))
	for _, c := range online {
		for _, vid := range d.cores[c].l2List {
			member[vid] = true
		}
	}
	rr := 0
	for vid := range tbl.VCPUs {
		if !anyRes[vid] || liveRes[vid] || member[vid] {
			continue
		}
		home := online[rr%len(online)]
		d.addMember(home, vid)
		rr++
		d.emergency[vid] = true
		d.stats.RemappedVCPUs++
		// A member joining mid-epoch with zero budget would wait out the
		// incumbents' residual budgets (up to a full epoch) before its
		// first dispatch; start it level with the richest member so it
		// competes immediately.
		cs := &d.cores[home]
		var best int64
		for _, id := range cs.l2List {
			if b := cs.l2Budget[id]; b > best {
				best = b
			}
		}
		cs.l2Budget[vid] = best
	}
}

// firstOnline returns the lowest-numbered live core, or -1.
func (d *Dispatcher) firstOnline() int {
	for c := range d.cores {
		if !d.failed[c] {
			return c
		}
	}
	return -1
}

// Degraded reports whether any core has fail-stopped.
func (d *Dispatcher) Degraded() bool {
	for _, f := range d.failed {
		if f {
			return true
		}
	}
	return false
}

// FailedCoreIDs returns the fail-stopped cores in id order.
func (d *Dispatcher) FailedCoreIDs() []int {
	var out []int
	for c, f := range d.failed {
		if f {
			out = append(out, c)
		}
	}
	return out
}

// ActiveTable returns the table new cores adopt — after a recovery
// push has been fully adopted, this is the recovery table.
func (d *Dispatcher) ActiveTable() *table.Table { return d.active }
