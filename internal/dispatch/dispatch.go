// Package dispatch implements Tableau's runtime half: the minimal,
// core-local, table-driven dispatcher (paper Secs. 4 and 6). The
// dispatcher enacts the latest scheduling table from the planner: an
// O(1) slice-table lookup decides who owns the current interval; if the
// reserved vCPU is blocked, or the interval is idle, a second-level
// epoch-based fair-share scheduler hands the time to a ready core-local
// uncapped vCPU. Wakeups are routed with table information, cross-core
// migrations use an ownership handshake instead of locks, and new tables
// are adopted at cycle boundaries, never mid-cycle.
package dispatch

import (
	"fmt"
	"sort"

	"tableau/internal/table"
	"tableau/internal/trace"
	"tableau/internal/vmm"
)

// Options configures the dispatcher.
type Options struct {
	// Epoch is the second-level scheduler's accounting epoch: each
	// replenishment divides Epoch evenly among the core's ready
	// second-level vCPUs. Default 10 ms.
	Epoch int64
	// DisableSecondLevel turns the second-level scheduler off, yielding
	// the naive (non-work-conserving) table-driven scheduler. Used by
	// the capped scenarios and by ablation experiments.
	DisableSecondLevel bool
}

func (o Options) withDefaults() Options {
	if o.Epoch == 0 {
		o.Epoch = 10_000_000
	}
	return o
}

// Stats reports dispatcher decision counts, the basis of the paper's
// "over 85% of the vantage VM's dispatches came from the second level"
// observation (Sec. 7.4).
type Stats struct {
	// TableDispatches counts level-1 decisions that placed a vCPU.
	TableDispatches int64
	// SecondLevelDispatches counts level-2 decisions that placed a vCPU.
	SecondLevelDispatches int64
	// IdleDecisions counts invocations that left the core idle.
	IdleDecisions int64
	// TableSwitches counts adopted table generations across all cores.
	TableSwitches int64
	// DeferredIPIs counts cross-core handoffs resolved through the
	// descheduling-IPI protocol.
	DeferredIPIs int64
	// CoreFailures counts fail-stops observed via OnCoreFail.
	CoreFailures int64
	// RemappedVCPUs counts vCPUs moved to a surviving core's second
	// level by degraded-mode remapping.
	RemappedVCPUs int64
	// PerVCPUTable / PerVCPUSecond count dispatches per vCPU id.
	PerVCPUTable  []int64
	PerVCPUSecond []int64
}

// coreState is the dispatcher's per-core (core-local) state. All hot
// structures are flat slices indexed by vCPU id: the dispatcher's
// common case must stay a handful of array accesses (paper Sec. 6).
type coreState struct {
	tbl       *table.Table // table this core currently enacts
	cycle     int64        // table cycle index last observed
	l2Budget  []int64      // per vCPU id; meaningful when member
	l2Member  []bool       // per vCPU id
	l2List    []int        // member ids, for iteration
	l2Running int          // vCPU id currently dispatched by L2, or -1
	l2Since   int64        // when the L2 dispatch began
}

// Dispatcher implements vmm.Scheduler using scheduling tables.
type Dispatcher struct {
	m    *vmm.Machine
	opts Options

	active *table.Table // table new cores adopt
	next   *table.Table // staged table, adopted at its activation cycle
	nextAt int64        // cycle index at which next becomes active

	cores []coreState

	// owner[v] is the core currently running vCPU v (the paper's
	// per-vCPU "scheduled elsewhere" field), -1 otherwise.
	owner []int
	// ipiWanted[v] is the core waiting for v to be descheduled
	// elsewhere, -1 if none.
	ipiWanted []int

	// wakeIdx[v] holds v's reservations sorted by start, so wakeup
	// routing is a binary search instead of a table scan (the paper's
	// "current allocation" field, Sec. 6).
	wakeIdx [][]wakeSpan

	// failed[c] marks core c fail-stopped; emergency[v] marks a vCPU
	// whose second-level membership was granted by degraded-mode
	// remapping (its table guarantees are void until a replan). See
	// degraded.go.
	failed    []bool
	emergency []bool

	// tr is the machine's scheduling tracer, cached at Attach; nil when
	// tracing is off.
	tr *trace.Tracer

	// be[v] marks vCPU v best-effort for second-level ordering: LS
	// members are picked before BE members in slack slots, and an LS
	// wakeup preempts a running BE slack dispatch. The table math is
	// class-blind — guarantees are unaffected — so the registry is a
	// side channel (SetBestEffort), not part of the table wire format.
	// nil means every vCPU is latency-sensitive.
	be []bool

	stats Stats
}

// wakeSpan is one reservation interval in the wakeup index.
type wakeSpan struct {
	start, end int64
	core       int32
}

// New creates a dispatcher enacting the given table. The table's vCPU
// indices must match the machine's vCPU ids (the core facade arranges
// this).
func New(tbl *table.Table, opts Options) *Dispatcher {
	return &Dispatcher{active: tbl, opts: opts.withDefaults()}
}

// Name implements vmm.Scheduler.
func (d *Dispatcher) Name() string { return "tableau" }

// SetBestEffort installs the per-vCPU tenancy classes (true = BE),
// indexed by vCPU id. nil (the default) marks every vCPU LS, which
// reproduces the pre-class second level exactly. Classes only order
// slack distribution; table-guaranteed dispatch ignores them.
func (d *Dispatcher) SetBestEffort(be []bool) {
	if be == nil {
		d.be = nil
		return
	}
	d.be = append(d.be[:0], be...)
}

// isBE reports vCPU id's class under the installed registry.
func (d *Dispatcher) isBE(id int) bool {
	return id < len(d.be) && d.be[id]
}

// Stats returns a copy of the dispatcher's decision statistics.
func (d *Dispatcher) Stats() Stats { return d.stats }

// Attach implements vmm.Scheduler.
func (d *Dispatcher) Attach(m *vmm.Machine) {
	d.m = m
	d.tr = m.Tracer()
	if len(d.active.VCPUs) != len(m.VCPUs) {
		panic(fmt.Sprintf("dispatch: table has %d vCPUs, machine has %d", len(d.active.VCPUs), len(m.VCPUs)))
	}
	d.cores = make([]coreState, len(m.CPUs))
	d.failed = make([]bool, len(m.CPUs))
	d.emergency = make([]bool, len(m.VCPUs))
	d.owner = make([]int, len(m.VCPUs))
	d.ipiWanted = make([]int, len(m.VCPUs))
	for i := range d.owner {
		d.owner[i] = -1
		d.ipiWanted[i] = -1
	}
	d.stats.PerVCPUTable = make([]int64, len(m.VCPUs))
	d.stats.PerVCPUSecond = make([]int64, len(m.VCPUs))
	for c := range d.cores {
		cs := &d.cores[c]
		cs.tbl = d.active
		cs.cycle = -1
		cs.l2Running = -1
		cs.l2Budget = make([]int64, len(m.VCPUs))
		cs.l2Member = make([]bool, len(m.VCPUs))
	}
	// Seed second-level membership from the table's home cores.
	d.rebuildMembership(d.active)
	d.rebuildWakeIndex(d.active)
}

// rebuildWakeIndex recomputes the per-vCPU reservation index for wakeup
// routing.
func (d *Dispatcher) rebuildWakeIndex(tbl *table.Table) {
	if d.wakeIdx == nil {
		d.wakeIdx = make([][]wakeSpan, len(tbl.VCPUs))
	}
	for i := range d.wakeIdx {
		d.wakeIdx[i] = d.wakeIdx[i][:0]
	}
	for _, ct := range tbl.Cores {
		for _, a := range ct.Allocs {
			if a.VCPU == table.Idle {
				continue
			}
			d.wakeIdx[a.VCPU] = append(d.wakeIdx[a.VCPU], wakeSpan{start: a.Start, end: a.End, core: int32(ct.Core)})
		}
	}
	for i := range d.wakeIdx {
		spans := d.wakeIdx[i]
		sort.Slice(spans, func(a, b int) bool { return spans[a].start < spans[b].start })
	}
}

func (d *Dispatcher) rebuildMembership(tbl *table.Table) {
	for c := range d.cores {
		cs := &d.cores[c]
		for i := range cs.l2Member {
			cs.l2Member[i] = false
		}
		cs.l2List = cs.l2List[:0]
	}
	// A fresh membership supersedes any degraded-mode remapping; the
	// remap below re-grants emergency status where still needed.
	for i := range d.emergency {
		d.emergency[i] = false
	}
	for id, vi := range tbl.VCPUs {
		if vi.Capped || vi.HomeCore < 0 || vi.HomeCore >= len(d.cores) {
			continue
		}
		home := vi.HomeCore
		if d.failed[home] {
			// The table predates the failure: reroute to a survivor.
			home = d.firstOnline()
			if home < 0 {
				continue
			}
		}
		d.addMember(home, id)
	}
	d.remapStranded(tbl)
}

// addMember and dropMember maintain a core's second-level set.
func (d *Dispatcher) addMember(core, id int) {
	cs := &d.cores[core]
	if cs.l2Member[id] {
		return
	}
	cs.l2Member[id] = true
	cs.l2List = append(cs.l2List, id)
}

func (d *Dispatcher) dropMember(core, id int) {
	cs := &d.cores[core]
	if !cs.l2Member[id] {
		return
	}
	cs.l2Member[id] = false
	for k, v := range cs.l2List {
		if v == id {
			cs.l2List = append(cs.l2List[:k], cs.l2List[k+1:]...)
			break
		}
	}
}

// PushTable stages a new table. Following the paper's time-synchronized
// lock-free switch, the new table takes effect at a cycle boundary: if
// the current position is in the first half of the cycle the switch is
// armed for the next wrap; otherwise for the wrap after that, so no core
// can race the update.
func (d *Dispatcher) PushTable(tbl *table.Table) error {
	if len(tbl.VCPUs) != len(d.owner) {
		return fmt.Errorf("dispatch: new table has %d vCPUs, machine has %d", len(tbl.VCPUs), len(d.owner))
	}
	now := d.m.Eng.Now()
	cycle := now / d.active.Len
	pos := now % d.active.Len
	d.next = tbl
	if pos < d.active.Len/2 {
		d.nextAt = cycle + 1
	} else {
		d.nextAt = cycle + 2
	}
	if d.tr != nil {
		d.tr.Emit(trace.EvPlannerCall, -1, now, -1, int64(tbl.Generation), d.nextAt)
	}
	return nil
}

// Staged returns the staged table awaiting adoption, or nil.
func (d *Dispatcher) Staged() *table.Table { return d.next }

// AbortStaged withdraws a staged table no core has begun adopting and
// returns it; it returns nil when nothing is staged or when adoption is
// already underway (a partially-adopted switch must roll forward — some
// cores already enact the new table, so withdrawing it would leave the
// machine split across generations forever). The control plane's
// rollback path uses this to keep the dispatcher on the previous epoch
// when an emergency replan cannot produce a successor.
func (d *Dispatcher) AbortStaged() *table.Table {
	if d.next == nil {
		return nil
	}
	for i := range d.cores {
		if d.cores[i].tbl == d.next {
			return nil
		}
	}
	t := d.next
	d.next = nil
	return t
}

// tableFor returns the table core c should use at time now, adopting a
// staged table when the core crosses the activation boundary.
func (d *Dispatcher) tableFor(c int, now int64) *table.Table {
	cs := &d.cores[c]
	if d.next != nil {
		// All cycle arithmetic is in units of the *old* table length,
		// which is the length that defined nextAt.
		if now/d.active.Len >= d.nextAt {
			// This core crosses into the new generation — once. A core
			// invoked again while other cores are still short of the
			// boundary must not be counted as a second adoption.
			if cs.tbl != d.next {
				cs.tbl = d.next
				d.stats.TableSwitches++
				if d.tr != nil {
					d.tr.Emit(trace.EvTableSwitch, c, now, -1, int64(d.next.Generation), d.nextAt)
				}
				d.completeSwitch()
			}
			return cs.tbl
		}
	}
	if cs.tbl == nil {
		cs.tbl = d.active
	}
	return cs.tbl
}

// completeSwitch promotes the staged table once every live core has
// adopted it (garbage-collecting the old one, "two rounds after
// upload"). Failed cores never invoke the dispatcher again, so they are
// excluded from the adoption quorum; OnCoreFail re-runs this check in
// case the dying core was the last holdout.
func (d *Dispatcher) completeSwitch() {
	for i := range d.cores {
		if d.failed[i] {
			continue
		}
		if d.cores[i].tbl != d.next {
			return
		}
	}
	d.active = d.next
	d.next = nil
	d.rebuildMembership(d.active)
	d.rebuildWakeIndex(d.active)
}

// PickNext implements vmm.Scheduler: the Tableau hot path.
func (d *Dispatcher) PickNext(cpu *vmm.PCPU, now int64) vmm.Decision {
	c := cpu.ID
	if d.failed[c] {
		// The machine stops invoking failed cores; this guards wrapped
		// or replayed invocations racing the failure instant.
		d.stats.IdleDecisions++
		return vmm.Decision{Until: vmm.NoTimer}
	}
	cs := &d.cores[c]
	tbl := d.tableFor(c, now)

	d.settleL2(cpu, now)
	if prev := cpu.Current; prev != nil {
		d.releaseOwnership(prev, c, now)
	}

	// Level 1: table lookup (O(1) via the slice table).
	vid, reserved, until := tbl.Lookup(c, now)
	if reserved {
		v := d.m.VCPUs[vid]
		// Track the trailing core for second-level membership: the core
		// of the vCPU's most recent guaranteed allocation.
		d.updateTrailingCore(vid, c, tbl)
		switch {
		case d.owner[vid] != -1 && d.owner[vid] != c:
			// Scheduled elsewhere: request an IPI on deschedule and
			// fall through to the second level (paper Sec. 6,
			// cross-core migrations).
			d.ipiWanted[vid] = c
		case v.State == vmm.Runnable || (v.State == vmm.Running && v.CurrentCPU == c):
			d.owner[vid] = c
			d.stats.TableDispatches++
			d.stats.PerVCPUTable[vid]++
			return vmm.Decision{VCPU: v, Until: until}
		}
		// Reserved vCPU is blocked or dead: the interval's time goes to
		// the second level.
	}

	// Level 2: core-local fair share over the idle (or forfeited) time.
	if !d.opts.DisableSecondLevel {
		if v, budget := d.pickSecondLevel(cpu, now); v != nil {
			cs.l2Running = v.ID
			cs.l2Since = now
			d.owner[v.ID] = c
			d.stats.SecondLevelDispatches++
			d.stats.PerVCPUSecond[v.ID]++
			if d.tr != nil {
				d.tr.Emit(trace.EvL2Pick, c, now, v.ID, budget, 0)
			}
			end := now + budget
			if until < end {
				end = until
			}
			return vmm.Decision{VCPU: v, Until: end}
		}
	}
	d.stats.IdleDecisions++
	return vmm.Decision{Until: until}
}

// settleL2 charges the elapsed second-level time of the vCPU the core
// was running, if it was a second-level dispatch.
func (d *Dispatcher) settleL2(cpu *vmm.PCPU, now int64) {
	cs := &d.cores[cpu.ID]
	if cs.l2Running < 0 {
		return
	}
	used := now - cs.l2Since
	if used > 0 {
		cs.l2Budget[cs.l2Running] -= used
	}
	cs.l2Running = -1
}

// releaseOwnership clears the ownership of a vCPU descheduled from core
// c and delivers a deferred cross-core IPI if another core is waiting.
func (d *Dispatcher) releaseOwnership(v *vmm.VCPU, c int, now int64) {
	if d.owner[v.ID] != c {
		return
	}
	d.owner[v.ID] = -1
	if w := d.ipiWanted[v.ID]; w >= 0 && w != c {
		d.ipiWanted[v.ID] = -1
		d.stats.DeferredIPIs++
		d.m.Kick(w)
	}
}

// updateTrailingCore moves the vCPU's second-level membership to the
// core of its latest guaranteed allocation (the paper's trailing-core
// policy for split vCPUs).
func (d *Dispatcher) updateTrailingCore(vid, c int, tbl *table.Table) {
	if tbl.VCPUs[vid].Capped || !tbl.VCPUs[vid].Split {
		return
	}
	if d.cores[c].l2Member[vid] {
		return
	}
	for i := range d.cores {
		if i == c {
			d.addMember(i, vid)
		} else {
			d.dropMember(i, vid)
		}
	}
}

// pickSecondLevel returns the ready core-local vCPU with the highest
// remaining budget, replenishing budgets when every ready member is
// exhausted (paper Sec. 4). Latency-sensitive members outrank
// best-effort ones: a BE member receives slack only when no LS member
// with budget is ready, so BE guests soak the idle time LS guests
// leave behind without ever delaying them.
func (d *Dispatcher) pickSecondLevel(cpu *vmm.PCPU, now int64) (*vmm.VCPU, int64) {
	cs := &d.cores[cpu.ID]
	pick := func() (*vmm.VCPU, int64) {
		var bestLS, bestBE *vmm.VCPU
		var budgetLS, budgetBE int64
		for _, vid := range cs.l2List {
			v := d.m.VCPUs[vid]
			if !d.readyForL2(v, cpu.ID) {
				continue
			}
			b := cs.l2Budget[vid]
			if b <= 0 {
				continue
			}
			if d.isBE(vid) {
				if bestBE == nil || b > budgetBE || (b == budgetBE && v.ID < bestBE.ID) {
					bestBE, budgetBE = v, b
				}
			} else {
				if bestLS == nil || b > budgetLS || (b == budgetLS && v.ID < bestLS.ID) {
					bestLS, budgetLS = v, b
				}
			}
		}
		if bestLS != nil {
			return bestLS, budgetLS
		}
		return bestBE, budgetBE
	}
	if v, b := pick(); v != nil {
		return v, b
	}
	// All ready members are out of budget: replenish evenly among the
	// ready members and try once more.
	ready := 0
	for _, vid := range cs.l2List {
		if d.readyForL2(d.m.VCPUs[vid], cpu.ID) {
			ready++
		}
	}
	if ready == 0 {
		return nil, 0
	}
	share := d.opts.Epoch / int64(ready)
	if share <= 0 {
		share = 1
	}
	for _, vid := range cs.l2List {
		if d.readyForL2(d.m.VCPUs[vid], cpu.ID) {
			cs.l2Budget[vid] = share
		}
	}
	return pick()
}

// readyForL2 reports whether v can be dispatched by the second level on
// core c right now.
func (d *Dispatcher) readyForL2(v *vmm.VCPU, c int) bool {
	if v.State == vmm.Blocked || v.State == vmm.Dead {
		return false
	}
	if v.State == vmm.Running && v.CurrentCPU != c {
		return false
	}
	if o := d.owner[v.ID]; o != -1 && o != c {
		return false
	}
	return true
}

// OnWake implements vmm.Scheduler: wakeup routing via the table (paper
// Sec. 6, "efficient wake-ups").
func (d *Dispatcher) OnWake(v *vmm.VCPU, now int64) {
	tbl := d.active
	pos := now % tbl.Len
	// If the vCPU has a current reservation, kick that core: binary
	// search of the per-vCPU reservation index.
	if spans := d.wakeIdx[v.ID]; len(spans) > 0 {
		i := sort.Search(len(spans), func(k int) bool { return spans[k].start > pos }) - 1
		if i >= 0 && pos < spans[i].end {
			if c := int(spans[i].core); !d.failed[c] {
				d.m.Kick(c)
				return
			}
			// The reservation's core is dead: fall through to the
			// second-level path (degraded mode, best effort).
		}
	}
	// Otherwise, if it participates in second-level scheduling and its
	// core is idle, kick it; capped vCPUs' wakeups can be safely
	// ignored — their next reservation will find them runnable — unless
	// degraded-mode remapping made the second level their only path.
	if tbl.VCPUs[v.ID].Capped && !d.emergency[v.ID] {
		return
	}
	for c := range d.cores {
		if d.failed[c] {
			continue
		}
		if d.cores[c].l2Member[v.ID] {
			cur := d.m.CPUs[c].Current
			switch {
			case cur == nil:
				d.m.Kick(c)
			case !d.isBE(v.ID) && d.cores[c].l2Running == cur.ID && d.isBE(cur.ID):
				// A latency-sensitive wakeup preempts a best-effort
				// slack dispatch: the kick forces a re-pick, where the
				// LS member outranks the BE one.
				d.m.Kick(c)
			}
			return
		}
	}
}

// OnBlock implements vmm.Scheduler. A vCPU that blocks before ever
// running (its program blocked at work-fetch time) still holds a
// tentative ownership from PickNext; release it so other cores' table
// intervals for it are not deferred.
func (d *Dispatcher) OnBlock(v *vmm.VCPU, now int64) {
	if v.CurrentCPU == -1 {
		if o := d.owner[v.ID]; o != -1 {
			d.releaseOwnership(v, o, now)
		}
	}
}

// OnDeschedule implements vmm.DescheduleObserver: the moment a vCPU
// leaves a core, ownership clears and any deferred cross-core IPI fires.
func (d *Dispatcher) OnDeschedule(v *vmm.VCPU, cpu *vmm.PCPU, now int64) {
	d.releaseOwnership(v, cpu.ID, now)
}
