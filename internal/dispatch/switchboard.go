package dispatch

import (
	"errors"
	"sync/atomic"

	"tableau/internal/table"
)

// SwitchBoard is a faithful, concurrent implementation of Tableau's
// lock-free table-switch protocol (paper Sec. 6): no locks or barriers
// appear on the dispatcher hot path. Each core holds a private pointer
// to the table it enacts; the planner publishes a staged table together
// with an activation cycle chosen away from any wrap boundary (the
// "middle of the next round" rule), and every core adopts the new table
// the first time it looks past that boundary. Because the activation
// cycle is strictly in the future for every core, no core can observe a
// half-installed switch.
//
// The simulator's Dispatcher uses equivalent single-threaded logic; this
// type exists so the protocol itself runs and is tested under the Go
// race detector with real core-parallel readers.
type SwitchBoard struct {
	coreTables []atomic.Pointer[table.Table]

	staged   atomic.Pointer[table.Table]
	activate atomic.Int64 // cycle index at which staged takes effect
	adopted  atomic.Int32 // cores that moved to the staged generation

	activeLen atomic.Int64 // length of the currently active table

	// failed marks fail-stopped cores: they never call TableFor again,
	// so MarkFailed and Push adopt staged tables on their behalf to keep
	// the adoption quorum (== all cores) reachable.
	failed []atomic.Bool

	// adoptPause, when non-nil, runs inside adopt's load-to-CAS window.
	// Test-only: it lets a single-threaded test interleave the other
	// party's adoption exactly where a parallel machine could.
	adoptPause func(core int)
}

// ErrSwitchPending is returned by Push while a previous switch has not
// yet been adopted by every core.
var ErrSwitchPending = errors.New("dispatch: a table switch is already pending")

// NewSwitchBoard creates a switch board for ncores cores, all initially
// enacting tbl.
func NewSwitchBoard(ncores int, tbl *table.Table) *SwitchBoard {
	s := &SwitchBoard{
		coreTables: make([]atomic.Pointer[table.Table], ncores),
		failed:     make([]atomic.Bool, ncores),
	}
	for i := range s.coreTables {
		s.coreTables[i].Store(tbl)
	}
	s.activeLen.Store(tbl.Len)
	return s
}

// Push stages tbl for adoption. now is the current time; the activation
// cycle is the next wrap if the current position is in the first half of
// the cycle, and the wrap after that otherwise, so that the staged
// pointer is never read concurrently with a wrap that could race it.
// It returns the chosen activation cycle index.
func (s *SwitchBoard) Push(tbl *table.Table, now int64) (int64, error) {
	if s.staged.Load() != nil {
		return 0, ErrSwitchPending
	}
	l := s.activeLen.Load()
	cycle := now / l
	pos := now % l
	at := cycle + 1
	if pos >= l/2 {
		at = cycle + 2
	}
	s.adopted.Store(0)
	// Publish order matters for lock-freedom reasoning: the staged
	// table must be visible before any reader can see an activation
	// cycle that refers to it. Go atomics are sequentially consistent,
	// so storing staged first suffices.
	s.staged.Store(tbl)
	s.activate.Store(at)
	// Fail-stopped cores will never cross the activation boundary
	// themselves; adopt on their behalf so the quorum stays reachable.
	for c := range s.coreTables {
		if s.failed[c].Load() {
			s.adopt(c, tbl)
		}
	}
	return at, nil
}

// MarkFailed records the fail-stop of core. If a switch is pending and
// the dead core has not adopted the staged table, the board adopts on
// its behalf so the switch can still complete. Control-plane calls
// (Push, MarkFailed) must be serialized by the caller — they come from
// the single planning daemon — while TableFor stays safe to call
// concurrently from every core.
func (s *SwitchBoard) MarkFailed(core int) {
	if s.failed[core].Swap(true) {
		return
	}
	if staged := s.staged.Load(); staged != nil {
		s.adopt(core, staged)
	}
}

// Failed reports whether core has been marked fail-stopped.
func (s *SwitchBoard) Failed(core int) bool { return s.failed[core].Load() }

// adopt moves core onto the staged table and counts it toward the
// adoption quorum, exactly once per core per generation. MarkFailed's
// adopt-on-behalf races the core's own in-flight TableFor (the machine
// tears a core down asynchronously from the control plane), so the
// pointer flip must be a compare-and-swap: a plain load-check-store
// pair lets both parties observe the pre-switch table and both
// increment adopted, retiring the staged generation before every core
// has actually moved — the survivors that never adopted are then
// stranded on the old table forever. The CAS loses to whichever party
// flipped the pointer first and reports false without counting.
func (s *SwitchBoard) adopt(core int, staged *table.Table) bool {
	for {
		cur := s.coreTables[core].Load()
		if cur == staged {
			return false // already adopted (possibly by the racing party)
		}
		if h := s.adoptPause; h != nil {
			h(core)
		}
		if s.coreTables[core].CompareAndSwap(cur, staged) {
			if int(s.adopted.Add(1)) == len(s.coreTables) {
				s.activeLen.Store(staged.Len)
				s.staged.Store(nil)
			}
			return true
		}
	}
}

// TableFor returns the table core should enact at time now. It is the
// lock-free hot path: two atomic loads in the common case.
func (s *SwitchBoard) TableFor(core int, now int64) *table.Table {
	cur := s.coreTables[core].Load()
	staged := s.staged.Load()
	if staged == nil || staged == cur {
		return cur
	}
	if now/s.activeLen.Load() < s.activate.Load() {
		return cur
	}
	// Cross the activation boundary: adopt. The last adopter retires the
	// old generation ("two rounds after a new table has been uploaded,
	// the previous table is garbage-collected") — here the GC is letting
	// the old pointer drop; the new table's length becomes authoritative.
	s.adopt(core, staged)
	return staged
}

// Pending reports whether a staged table has not yet been fully adopted.
func (s *SwitchBoard) Pending() bool { return s.staged.Load() != nil }
