package dispatch

import (
	"sync"
	"sync/atomic"
	"testing"

	"tableau/internal/table"
)

func miniTable(t *testing.T, gen uint64) *table.Table {
	t.Helper()
	tbl := &table.Table{
		Len:        100_000,
		Generation: gen,
		VCPUs:      []table.VCPUInfo{{Name: "v"}},
		Cores:      []table.CoreTable{{Core: 0, Allocs: []table.Alloc{{Start: 0, End: 50_000, VCPU: 0}}}},
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.BuildSlices(0); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestSwitchBoardBasic(t *testing.T) {
	t0 := miniTable(t, 1)
	t1 := miniTable(t, 2)
	s := NewSwitchBoard(2, t0)
	if s.Pending() {
		t.Error("fresh board should not be pending")
	}
	// Push early in cycle 0: activation at cycle 1.
	at, err := s.Push(t1, 10_000)
	if err != nil || at != 1 {
		t.Fatalf("Push = %d, %v; want cycle 1", at, err)
	}
	if !s.Pending() {
		t.Error("board should be pending")
	}
	// Before the boundary, both cores keep the old table.
	if got := s.TableFor(0, 60_000); got != t0 {
		t.Error("core 0 adopted early")
	}
	// After the boundary, both adopt.
	if got := s.TableFor(0, 100_000); got != t1 {
		t.Error("core 0 did not adopt at the boundary")
	}
	if got := s.TableFor(1, 150_000); got != t1 {
		t.Error("core 1 did not adopt")
	}
	if s.Pending() {
		t.Error("fully adopted switch still pending")
	}
}

func TestSwitchBoardLatePushSkipsACycle(t *testing.T) {
	t0 := miniTable(t, 1)
	t1 := miniTable(t, 2)
	s := NewSwitchBoard(1, t0)
	// Push at 80% of cycle 3: activation at cycle 5.
	at, err := s.Push(t1, 380_000)
	if err != nil || at != 5 {
		t.Fatalf("Push = %d, %v; want cycle 5", at, err)
	}
	if got := s.TableFor(0, 499_999); got != t0 {
		t.Error("adopted before cycle 5")
	}
	if got := s.TableFor(0, 500_000); got != t1 {
		t.Error("did not adopt at cycle 5")
	}
}

func TestSwitchBoardRejectsConcurrentPush(t *testing.T) {
	s := NewSwitchBoard(2, miniTable(t, 1))
	if _, err := s.Push(miniTable(t, 2), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(miniTable(t, 3), 0); err != ErrSwitchPending {
		t.Errorf("err = %v, want ErrSwitchPending", err)
	}
}

// TestSwitchBoardConcurrent drives the protocol with one goroutine per
// core under -race: cores repeatedly read their table with
// monotonically advancing local clocks while a planner goroutine pushes
// new generations. Invariants: generations observed by each core are
// non-decreasing, and no core observes a staged table before its
// activation cycle.
func TestSwitchBoardConcurrent(t *testing.T) {
	const cores = 4
	const pushes = 12
	base := miniTable(t, 1)
	s := NewSwitchBoard(cores, base)

	var clock atomic.Int64 // shared advancing time
	activation := make([]atomic.Int64, pushes+2)
	genAt := func(g uint64) *atomic.Int64 { return &activation[g] }
	genAt(1).Store(0)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(core int) {
			defer wg.Done()
			var lastGen uint64 = 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				now := clock.Add(7) // each read advances time a little
				tbl := s.TableFor(core, now)
				g := tbl.Generation
				if g < lastGen {
					t.Errorf("core %d: generation went backwards %d -> %d", core, lastGen, g)
					return
				}
				if g > lastGen {
					// Must not adopt before the published activation
					// cycle (in units of 100 µs table cycles).
					act := genAt(g).Load()
					if now/100_000 < act {
						t.Errorf("core %d adopted gen %d at t=%d, before cycle %d", core, g, now, act)
						return
					}
					lastGen = g
				}
			}
		}(c)
	}
	for i := 0; i < pushes; i++ {
		gen := uint64(i + 2)
		next := miniTable(t, gen)
		for {
			now := clock.Load()
			at, err := s.Push(next, now)
			if err == nil {
				genAt(gen).Store(at)
				break
			}
			// Previous switch still pending: let readers advance.
			clock.Add(100_000)
		}
		clock.Add(250_000) // guarantee the boundary passes
	}
	// Let every core settle onto the final generation.
	for s.Pending() {
		clock.Add(100_000)
	}
	close(stop)
	wg.Wait()
}
