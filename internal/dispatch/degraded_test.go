package dispatch_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tableau/internal/core"
	"tableau/internal/dispatch"
	"tableau/internal/planner"
	"tableau/internal/sim"
	"tableau/internal/table"
	"tableau/internal/traceutil"
	"tableau/internal/vmm"
)

func spin() vmm.Program {
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		return vmm.Compute(1_000_000)
	})
}

// burstIdle computes c then blocks for b, forever: the blocking phases
// forfeit reserved time to the second level.
func burstIdle(c, b int64) vmm.Program {
	phase := make(map[*vmm.VCPU]*int)
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		st := phase[v]
		if st == nil {
			st = new(int)
			phase[v] = st
		}
		*st++
		if *st%2 == 1 {
			return vmm.Compute(c)
		}
		return vmm.Block(b)
	})
}

// TestFailStopRemapsToSurvivors pins the degraded-mode mechanics at the
// dispatcher level: when a core fail-stops, a capped vCPU reserved only
// there becomes an emergency second-level member of a survivor and
// keeps receiving best-effort CPU time.
func TestFailStopRemapsToSurvivors(t *testing.T) {
	tbl := mkTable(t, 100_000, []table.VCPUInfo{
		{Name: "capped", Capped: true, HomeCore: -1},
		{Name: "uncapped", HomeCore: 0},
	}, [][]table.Alloc{
		{mkAlloc(0, 50_000, 1)},
		{mkAlloc(0, 100_000, 0)},
	})
	d := dispatch.New(tbl, dispatch.Options{})
	m := vmm.New(sim.New(1), 2, d, vmm.NoOverheads())
	m.AddVCPU("capped", spin(), 256, true)
	m.AddVCPU("uncapped", spin(), 256, false)
	m.Start()
	m.Run(300_000)
	cappedBefore := m.VCPUs[0].RunTime
	m.FailCore(1)
	if !d.Degraded() {
		t.Fatal("dispatcher not degraded after FailCore")
	}
	if fc := d.FailedCoreIDs(); len(fc) != 1 || fc[0] != 1 {
		t.Fatalf("FailedCoreIDs = %v, want [1]", fc)
	}
	m.Run(1_000_000)
	st := d.Stats()
	if st.CoreFailures != 1 {
		t.Errorf("CoreFailures = %d, want 1", st.CoreFailures)
	}
	if st.RemappedVCPUs != 1 {
		t.Errorf("RemappedVCPUs = %d, want 1", st.RemappedVCPUs)
	}
	if st.PerVCPUSecond[0] == 0 {
		t.Error("capped vCPU got no second-level dispatches in degraded mode")
	}
	if got := m.VCPUs[0].RunTime; got <= cappedBefore {
		t.Errorf("capped vCPU made no progress after its core died: %d -> %d", cappedBefore, got)
	}
}

// TestEmergencyReplanRestoresGuarantees is the end-to-end recovery
// path: a core fail-stops under a live population, the control plane
// replans onto the survivors, the dispatcher adopts the recovery table
// at a safe boundary, and the planner-checked guarantees hold again.
// The test also quantifies the degraded-window blackout of the VM that
// lost its core.
func TestEmergencyReplanRestoresGuarantees(t *testing.T) {
	const cores = 3
	sys := core.NewSystem(cores, planner.Options{}, dispatch.Options{})
	u := planner.Util{Num: 1, Den: 4}
	capID, err := sys.AddVM(core.VMConfig{Name: "cap0", Util: u, LatencyGoal: 20_000_000, Capped: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cap1", "u0", "u1", "u2", "u3"} {
		if _, err := sys.AddVM(core.VMConfig{Name: name, Util: u, LatencyGoal: 20_000_000, Capped: name[0] == 'c'}); err != nil {
			t.Fatal(err)
		}
	}
	d, res0, err := sys.BuildDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	rec := traceutil.NewRecorder(d)
	m := vmm.New(sim.New(7), cores, rec, vmm.NoOverheads())
	for i := 0; i < sys.NumSlots(); i++ {
		m.AddVCPU(sys.Config(i).Name, spin(), 256, sys.Config(i).Capped)
	}
	m.Start()

	// Fail the core holding cap0's reservation, mid-cycle.
	fc := -1
	for _, ct := range res0.Table.Cores {
		for _, a := range ct.Allocs {
			if a.VCPU == capID {
				fc = ct.Core
			}
		}
	}
	if fc < 0 {
		t.Fatalf("cap0 has no reservation in %+v", res0.Table)
	}
	failAt := 3*res0.Table.Len + res0.Table.Len/3
	m.Run(failAt)
	secondBefore := d.Stats().PerVCPUSecond[capID]
	m.FailCore(fc)

	res2, err := sys.EmergencyReplan(d, fc)
	if err != nil {
		t.Fatalf("emergency replan rejected: %v", err)
	}
	if err := res2.Table.Check(res2.Guarantees); err != nil {
		t.Fatalf("recovery table violates its own guarantees: %v", err)
	}
	if len(res2.Table.Cores) != cores {
		t.Fatalf("recovery table has %d core entries, want %d", len(res2.Table.Cores), cores)
	}
	if n := len(res2.Table.Cores[fc].Allocs); n != 0 {
		t.Fatalf("recovery table still reserves %d allocs on failed core %d", n, fc)
	}
	for id, vi := range res2.Table.VCPUs {
		if vi.HomeCore == fc {
			t.Errorf("vCPU %d homed on failed core %d", id, fc)
		}
	}

	// Run until every surviving core adopts the recovery table.
	deadline := failAt
	step := res0.Table.Len
	if res2.Table.Len > step {
		step = res2.Table.Len
	}
	for i := 0; i < 12 && d.ActiveTable() != res2.Table; i++ {
		deadline += step
		m.Run(deadline)
	}
	if d.ActiveTable() != res2.Table {
		t.Fatal("recovery table never fully adopted")
	}
	recoverT := m.Eng.Now()

	// During the degraded window cap0 could only run via emergency
	// second-level membership — a path capped vCPUs never take in
	// normal operation.
	st := d.Stats()
	if st.CoreFailures != 1 {
		t.Errorf("CoreFailures = %d, want 1", st.CoreFailures)
	}
	if st.RemappedVCPUs == 0 {
		t.Error("no vCPU remapped despite losing a reserved core")
	}
	if st.PerVCPUSecond[capID] == secondBefore {
		t.Error("cap0 received no emergency second-level service while degraded")
	}

	// Post-switch: guarantees hold on the wire, not just on paper. Skip
	// one cycle of settling, then demand every dispatch gap of cap0 to
	// stay within its blackout guarantee (+ one allocation length,
	// since gaps are measured dispatch-to-dispatch).
	postFrom := recoverT + res2.Table.Len
	postTo := postFrom + 5*res2.Table.Len
	m.Run(postTo)

	var g *table.Guarantee
	for i := range res2.Guarantees {
		if res2.Guarantees[i].VCPU == capID {
			g = &res2.Guarantees[i]
		}
	}
	if g == nil {
		t.Fatal("no guarantee for cap0 in recovery result")
	}
	var maxAlloc int64
	for _, a := range res2.Table.VCPUSlots(capID) {
		if l := a.Len(); l > maxAlloc {
			maxAlloc = l
		}
	}
	degradedGap := maxDispatchGap(rec.Events(), capID, failAt, recoverT)
	postGap := maxDispatchGap(rec.Events(), capID, postFrom, postTo)
	t.Logf("cap0 blackout: degraded window %d ns over [%d,%d), post-recovery %d ns (guarantee %d)",
		degradedGap, failAt, recoverT, postGap, g.MaxBlackout)
	if postGap > g.MaxBlackout+maxAlloc {
		t.Errorf("post-recovery dispatch gap %d exceeds guarantee %d (+%d slack)", postGap, g.MaxBlackout, maxAlloc)
	}
}

// maxDispatchGap returns the longest interval within [from, to] during
// which vid was never dispatched.
func maxDispatchGap(evs []traceutil.DispatchEvent, vid int, from, to int64) int64 {
	prev := from
	var max int64
	for _, e := range evs {
		if e.VCPU != vid || e.Time < from || e.Time > to {
			continue
		}
		if gap := e.Time - prev; gap > max {
			max = gap
		}
		prev = e.Time
	}
	if gap := to - prev; gap > max {
		max = gap
	}
	return max
}

// TestEmergencyReplanAdmissionControl: when the survivors cannot carry
// the reserved utilization, the replan is rejected and the system stays
// in best-effort degraded mode instead of installing an over-committed
// table.
func TestEmergencyReplanAdmissionControl(t *testing.T) {
	sys := core.NewSystem(2, planner.Options{}, dispatch.Options{})
	for _, name := range []string{"a", "b", "c"} {
		if _, err := sys.AddVM(core.VMConfig{Name: name, Util: planner.Util{Num: 1, Den: 2}, LatencyGoal: 20_000_000}); err != nil {
			t.Fatal(err)
		}
	}
	d, res0, err := sys.BuildDispatcher()
	if err != nil {
		t.Fatal(err)
	}
	// Workloads that block part-time: the surviving core's forfeited
	// intervals are the only CPU time degraded mode can hand out.
	m := vmm.New(sim.New(9), 2, d, vmm.NoOverheads())
	for i := 0; i < sys.NumSlots(); i++ {
		m.AddVCPU(sys.Config(i).Name, burstIdle(400_000, 400_000), 256, false)
	}
	m.Start()
	m.Run(3 * res0.Table.Len)
	m.FailCore(1)
	if _, err := sys.EmergencyReplan(d, 1); err == nil {
		t.Fatal("over-committed emergency replan admitted")
	}
	if !d.Degraded() {
		t.Fatal("dispatcher left degraded mode despite rejected replan")
	}
	if fc := sys.FailedCores(); len(fc) != 1 || fc[0] != 1 {
		t.Fatalf("FailedCores = %v, want [1]", fc)
	}
	// Best effort continues: everyone keeps making progress on the
	// surviving core.
	var before []int64
	for _, v := range m.VCPUs {
		before = append(before, v.RunTime)
	}
	m.Run(m.Eng.Now() + 5*res0.Table.Len)
	for i, v := range m.VCPUs {
		if v.RunTime <= before[i] {
			t.Errorf("vCPU %d made no progress in degraded mode", i)
		}
	}
}

// TestSwitchBoardMarkFailed covers the adoption quorum with dead
// cores: a pending switch completes when the failed core is adopted on
// its behalf, and a core already marked failed never blocks a later
// push.
func TestSwitchBoardMarkFailed(t *testing.T) {
	tblA := mkTable(t, 1_000_000, []table.VCPUInfo{{Name: "v"}}, [][]table.Alloc{
		{mkAlloc(0, 500_000, 0)}, {}, {},
	})
	tblB := mkTable(t, 1_000_000, []table.VCPUInfo{{Name: "v"}}, [][]table.Alloc{
		{}, {mkAlloc(0, 500_000, 0)}, {},
	})

	// Failure while a switch is pending.
	sb := dispatch.NewSwitchBoard(3, tblA)
	at, err := sb.Push(tblB, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	after := at * tblA.Len
	sb.TableFor(0, after)
	sb.TableFor(1, after)
	if !sb.Pending() {
		t.Fatal("switch completed without core 2")
	}
	sb.MarkFailed(2)
	if sb.Pending() {
		t.Fatal("switch still pending after MarkFailed adopted on behalf")
	}
	if sb.TableFor(2, after) != tblB {
		t.Fatal("failed core's slot not moved to the staged table")
	}
	if !sb.Failed(2) {
		t.Fatal("Failed(2) = false")
	}

	// Failure before the push: Push pre-adopts for the dead core.
	sb2 := dispatch.NewSwitchBoard(3, tblA)
	sb2.MarkFailed(1)
	at2, err := sb2.Push(tblB, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	after2 := at2 * tblA.Len
	sb2.TableFor(0, after2)
	sb2.TableFor(2, after2)
	if sb2.Pending() {
		t.Fatal("switch pending although only live cores were missing")
	}
}

// TestSwitchBoardMarkFailedConcurrent exercises MarkFailed while other
// cores hammer TableFor, for the race detector.
func TestSwitchBoardMarkFailedConcurrent(t *testing.T) {
	tblA := mkTable(t, 1_000_000, []table.VCPUInfo{{Name: "v"}}, [][]table.Alloc{
		{mkAlloc(0, 500_000, 0)}, {}, {}, {},
	})
	tblB := mkTable(t, 1_000_000, []table.VCPUInfo{{Name: "v"}}, [][]table.Alloc{
		{}, {mkAlloc(0, 500_000, 0)}, {}, {},
	})
	sb := dispatch.NewSwitchBoard(4, tblA)
	var now atomic.Int64
	now.Store(100_000)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for !stop.Load() {
				sb.TableFor(c, now.Load())
			}
		}(c)
	}
	if _, err := sb.Push(tblB, now.Load()); err != nil {
		t.Error(err)
	}
	now.Store(5_000_000) // well past any activation boundary
	sb.MarkFailed(3)
	for deadline := time.Now().Add(5 * time.Second); sb.Pending() && time.Now().Before(deadline); {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	if sb.Pending() {
		t.Fatal("switch never completed with a failed core")
	}
	for c := 0; c < 4; c++ {
		if sb.TableFor(c, now.Load()) != tblB {
			t.Errorf("core %d not on the new table", c)
		}
	}
}
