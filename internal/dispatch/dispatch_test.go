package dispatch

import (
	"testing"

	"tableau/internal/sim"
	"tableau/internal/table"
	"tableau/internal/vmm"
)

// buildTable constructs and finalizes a table for tests.
func buildTable(t *testing.T, tlen int64, vcpus []table.VCPUInfo, allocs [][]table.Alloc) *table.Table {
	t.Helper()
	tbl := &table.Table{Len: tlen, VCPUs: vcpus, Generation: 1}
	for i, as := range allocs {
		tbl.Cores = append(tbl.Cores, table.CoreTable{Core: i, Allocs: as})
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.BuildSlices(0); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func spin() vmm.Program {
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		return vmm.Compute(1_000_000)
	})
}

func sleepForever() vmm.Program {
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		return vmm.BlockIndefinitely()
	})
}

func al(s, e int64, v int) table.Alloc { return table.Alloc{Start: s, End: e, VCPU: v} }

func TestCappedVCPUsGetExactReservation(t *testing.T) {
	tbl := buildTable(t, 100_000, []table.VCPUInfo{
		{Name: "a", Capped: true, HomeCore: 0},
		{Name: "b", Capped: true, HomeCore: 0},
	}, [][]table.Alloc{{al(0, 30_000, 0), al(30_000, 80_000, 1)}})
	d := New(tbl, Options{})
	m := vmm.New(sim.New(1), 1, d, vmm.NoOverheads())
	a := m.AddVCPU("a", spin(), 256, true)
	b := m.AddVCPU("b", spin(), 256, true)
	m.Start()
	m.Run(1_000_000) // 10 cycles
	if a.RunTime != 300_000 {
		t.Errorf("a.RunTime = %d, want 300000", a.RunTime)
	}
	if b.RunTime != 500_000 {
		t.Errorf("b.RunTime = %d, want 500000", b.RunTime)
	}
	// The [80,100) µs window per cycle must stay idle: both capped.
	if got := m.CPUs[0].IdleTime; got != 200_000 {
		t.Errorf("idle = %d, want 200000", got)
	}
	st := d.Stats()
	if st.SecondLevelDispatches != 0 {
		t.Errorf("capped vCPUs must never be level-2 dispatched: %+v", st)
	}
}

func TestSecondLevelUsesIdleAndForfeitedTime(t *testing.T) {
	// a is uncapped and spins; b is capped but always blocked, so its
	// reserved window and the idle tail both go to a via level 2.
	tbl := buildTable(t, 100_000, []table.VCPUInfo{
		{Name: "a", Capped: false, HomeCore: 0},
		{Name: "b", Capped: true, HomeCore: 0},
	}, [][]table.Alloc{{al(0, 30_000, 0), al(30_000, 80_000, 1)}})
	d := New(tbl, Options{})
	m := vmm.New(sim.New(1), 1, d, vmm.NoOverheads())
	a := m.AddVCPU("a", spin(), 256, false)
	m.AddVCPU("b", sleepForever(), 256, true)
	m.Start()
	m.Run(1_000_000)
	if a.RunTime != 1_000_000 {
		t.Errorf("a.RunTime = %d, want the whole machine (1000000)", a.RunTime)
	}
	st := d.Stats()
	if st.SecondLevelDispatches == 0 {
		t.Error("second level never dispatched")
	}
	if st.TableDispatches == 0 {
		t.Error("table level never dispatched")
	}
}

func TestSecondLevelFairShare(t *testing.T) {
	// Two uncapped spinners share a mostly-idle table evenly.
	tbl := buildTable(t, 100_000, []table.VCPUInfo{
		{Name: "a", HomeCore: 0},
		{Name: "b", HomeCore: 0},
	}, [][]table.Alloc{{al(0, 10_000, 0), al(10_000, 20_000, 1)}})
	d := New(tbl, Options{Epoch: 50_000})
	m := vmm.New(sim.New(1), 1, d, vmm.NoOverheads())
	a := m.AddVCPU("a", spin(), 256, false)
	b := m.AddVCPU("b", spin(), 256, false)
	m.Start()
	m.Run(10_000_000)
	total := a.RunTime + b.RunTime
	if total != 10_000_000 {
		t.Fatalf("total = %d, want work-conserving 10ms", total)
	}
	diff := a.RunTime - b.RunTime
	if diff < 0 {
		diff = -diff
	}
	if diff > total/10 {
		t.Errorf("unfair share: a=%d b=%d", a.RunTime, b.RunTime)
	}
}

func TestDisableSecondLevelIsNonWorkConserving(t *testing.T) {
	tbl := buildTable(t, 100_000, []table.VCPUInfo{
		{Name: "a", HomeCore: 0},
	}, [][]table.Alloc{{al(0, 25_000, 0)}})
	d := New(tbl, Options{DisableSecondLevel: true})
	m := vmm.New(sim.New(1), 1, d, vmm.NoOverheads())
	a := m.AddVCPU("a", spin(), 256, false)
	m.Start()
	m.Run(1_000_000)
	if a.RunTime != 250_000 {
		t.Errorf("a.RunTime = %d, want table-only 250000", a.RunTime)
	}
}

func TestWakeupLatencyBoundedByTable(t *testing.T) {
	// A capped vCPU reserved [0, 10µs) of every 100 µs cycle. Pings
	// arrive at random; the response latency must never exceed the
	// 90 µs + 10µs blackout+service window.
	tbl := buildTable(t, 100_000, []table.VCPUInfo{
		{Name: "ping", Capped: true, HomeCore: 0},
		{Name: "bg", Capped: false, HomeCore: 0},
	}, [][]table.Alloc{{al(0, 10_000, 0), al(10_000, 100_000, 1)}})
	d := New(tbl, Options{})
	m := vmm.New(sim.New(7), 1, d, vmm.NoOverheads())

	var pending []int64 // arrival times
	var latencies []int64
	server := vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		if len(pending) == 0 {
			return vmm.BlockIndefinitely()
		}
		arrival := pending[0]
		pending = pending[1:]
		latencies = append(latencies, now-arrival)
		return vmm.Compute(100) // 100 ns to answer the ping
	})
	pingV := m.AddVCPU("ping", server, 256, true)
	m.AddVCPU("bg", spin(), 256, false)
	m.Start()
	// Send 200 pings at random times.
	for i := 0; i < 200; i++ {
		at := m.Eng.Rand().Int63n(20_000_000)
		m.Eng.At(at, func(now int64) {
			pending = append(pending, now)
			m.Wake(pingV)
		})
	}
	m.Run(25_000_000)
	if len(latencies) < 150 {
		t.Fatalf("only %d pings served", len(latencies))
	}
	var worst int64
	for _, l := range latencies {
		if l > worst {
			worst = l
		}
	}
	// Worst case: arrive just after the slot ends, wait out the 90 µs
	// blackout, plus queueing of earlier pings within the slot.
	if worst > 101_000 {
		t.Errorf("worst ping latency = %d ns, want <= ~100 µs", worst)
	}
}

func TestCrossCoreSplitNeverRunsParallel(t *testing.T) {
	// vCPU 0 is split: back-to-back allocations on cores 0 and 1 (the
	// machine panics if a scheduler ever runs one vCPU on two cores).
	tbl := buildTable(t, 100_000, []table.VCPUInfo{
		{Name: "split", Capped: true, HomeCore: 0, Split: true},
		{Name: "x", Capped: true, HomeCore: 1},
	}, [][]table.Alloc{
		{al(0, 50_000, 0)},
		{al(50_000, 70_000, 0), al(70_000, 100_000, 1)},
	})
	d := New(tbl, Options{})
	m := vmm.New(sim.New(1), 2, d, vmm.NoOverheads())
	split := m.AddVCPU("split", spin(), 256, true)
	m.AddVCPU("x", spin(), 256, true)
	m.Start()
	m.Run(2_000_000)
	// 70 µs per 100 µs cycle across both cores.
	if split.RunTime != 1_400_000 {
		t.Errorf("split.RunTime = %d, want 1400000", split.RunTime)
	}
}

func TestStatsLevelAttribution(t *testing.T) {
	tbl := buildTable(t, 100_000, []table.VCPUInfo{
		{Name: "a", HomeCore: 0},
	}, [][]table.Alloc{{al(0, 25_000, 0)}})
	d := New(tbl, Options{})
	m := vmm.New(sim.New(1), 1, d, vmm.NoOverheads())
	m.AddVCPU("a", spin(), 256, false)
	m.Start()
	m.Run(1_000_000)
	st := d.Stats()
	if st.PerVCPUTable[0] == 0 || st.PerVCPUSecond[0] == 0 {
		t.Errorf("per-vCPU attribution missing: %+v", st)
	}
	// An uncapped spinner alone on the core: level-2 decisions dominate
	// whenever the table interval is idle (75%% of each cycle).
	if st.SecondLevelDispatches < st.TableDispatches {
		t.Errorf("expected L2 to dominate: %+v", st)
	}
}

func TestPushTableSwitchesAtBoundary(t *testing.T) {
	old := buildTable(t, 100_000, []table.VCPUInfo{
		{Name: "a", Capped: true, HomeCore: 0},
		{Name: "b", Capped: true, HomeCore: 0},
	}, [][]table.Alloc{{al(0, 50_000, 0)}})
	newTbl := buildTable(t, 100_000, []table.VCPUInfo{
		{Name: "a", Capped: true, HomeCore: 0},
		{Name: "b", Capped: true, HomeCore: 0},
	}, [][]table.Alloc{{al(0, 50_000, 1)}})
	newTbl.Generation = 2

	d := New(old, Options{})
	m := vmm.New(sim.New(1), 1, d, vmm.NoOverheads())
	a := m.AddVCPU("a", spin(), 256, true)
	b := m.AddVCPU("b", spin(), 256, true)
	m.Start()
	m.Run(130_000) // position 30% into cycle 1
	if err := d.PushTable(newTbl); err != nil {
		t.Fatal(err)
	}
	// Switch arms for cycle 2 (pos < half): b must take over at 200 µs.
	m.Run(1_000_000)
	// a ran cycles 0 and 1 (2 * 50 µs); b ran cycles 2..9 (8 * 50 µs).
	if a.RunTime != 100_000 {
		t.Errorf("a.RunTime = %d, want 100000", a.RunTime)
	}
	if b.RunTime != 400_000 {
		t.Errorf("b.RunTime = %d, want 400000", b.RunTime)
	}
	if d.Stats().TableSwitches == 0 {
		t.Error("switch not recorded")
	}
}

func TestPushTableLateArmsForCycleAfterNext(t *testing.T) {
	old := buildTable(t, 100_000, []table.VCPUInfo{
		{Name: "a", Capped: true, HomeCore: 0},
		{Name: "b", Capped: true, HomeCore: 0},
	}, [][]table.Alloc{{al(0, 50_000, 0)}})
	newTbl := buildTable(t, 100_000, []table.VCPUInfo{
		{Name: "a", Capped: true, HomeCore: 0},
		{Name: "b", Capped: true, HomeCore: 0},
	}, [][]table.Alloc{{al(0, 50_000, 1)}})
	d := New(old, Options{})
	m := vmm.New(sim.New(1), 1, d, vmm.NoOverheads())
	a := m.AddVCPU("a", spin(), 256, true)
	m.AddVCPU("b", spin(), 256, true)
	m.Start()
	m.Run(180_000) // position 80% into cycle 1: too close to the wrap
	if err := d.PushTable(newTbl); err != nil {
		t.Fatal(err)
	}
	m.Run(1_000_000)
	// a keeps cycles 0, 1 and 2 (switch armed for cycle 3).
	if a.RunTime != 150_000 {
		t.Errorf("a.RunTime = %d, want 150000", a.RunTime)
	}
}

func TestWakeRoutesToReservedCore(t *testing.T) {
	// vCPU 0 reserved on core 1; waking it must kick core 1, promptly
	// interrupting that core's second-level filler.
	tbl := buildTable(t, 100_000, []table.VCPUInfo{
		{Name: "srv", Capped: true, HomeCore: 1},
		{Name: "bg", Capped: false, HomeCore: 1},
	}, [][]table.Alloc{
		{},
		{al(0, 100_000, 0)},
	})
	d := New(tbl, Options{})
	m := vmm.New(sim.New(1), 2, d, vmm.NoOverheads())
	work := false
	srv := m.AddVCPU("srv", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		if work {
			work = false
			return vmm.Compute(1_000)
		}
		return vmm.BlockIndefinitely()
	}), 256, true)
	m.AddVCPU("bg", spin(), 256, false)
	m.Start()
	m.Run(10_000)
	m.Eng.At(20_000, func(int64) { work = true; m.Wake(srv) })
	m.Run(100_000)
	if srv.Wakeups != 1 {
		t.Errorf("wakeups = %d", srv.Wakeups)
	}
	if srv.RunTime == 0 {
		t.Error("reserved vCPU did not run promptly after wake")
	}
}

func TestTrailingCorePolicyForSplitVCPUs(t *testing.T) {
	// vCPU 0 is split and *uncapped*: its second-level membership must
	// follow the core of its most recent table allocation (the paper's
	// trailing-core policy). Core 0 hosts its first-half reservation,
	// core 1 the second; the rest of each core is idle, so L2 time
	// follows the membership.
	tbl := buildTable(t, 100_000, []table.VCPUInfo{
		{Name: "split", Capped: false, HomeCore: 0, Split: true},
		{Name: "x", Capped: true, HomeCore: 1},
	}, [][]table.Alloc{
		{al(0, 10_000, 0)},
		{al(50_000, 60_000, 0), al(60_000, 70_000, 1)},
	})
	d := New(tbl, Options{Epoch: 10_000})
	m := vmm.New(sim.New(1), 2, d, vmm.NoOverheads())
	split := m.AddVCPU("split", spin(), 256, false)
	m.AddVCPU("x", spin(), 256, true)
	m.Start()
	m.Run(1_000_000)
	// The split vCPU's reservations are 20% of a cycle; with L2
	// following it across both cores it should collect far more.
	if split.RunTime < 500_000 {
		t.Errorf("split uncapped vCPU got %d ns of 1 ms; trailing-core L2 missing", split.RunTime)
	}
	st := d.Stats()
	if st.PerVCPUSecond[0] == 0 {
		t.Error("split vCPU never dispatched by the second level")
	}
	if st.TableDispatches == 0 {
		t.Error("table level idle")
	}
}

func TestStatsAccessorsAndName(t *testing.T) {
	tbl := buildTable(t, 100_000, []table.VCPUInfo{{Name: "a", HomeCore: 0}},
		[][]table.Alloc{{al(0, 10_000, 0)}})
	d := New(tbl, Options{})
	if d.Name() != "tableau" {
		t.Errorf("Name() = %q", d.Name())
	}
}
