package dispatch

import (
	"runtime"
	"sync"
	"testing"

	"tableau/internal/sim"
	"tableau/internal/table"
	"tableau/internal/vmm"
)

// The tests in this file pin down the degraded-mode double-adoption
// bugs: a core that fail-stops while a table switch is staged must be
// counted in the adoption quorum exactly once (and a live core's
// repeated invocations must not be counted as repeated adoptions), the
// switch must complete the moment the last holdout dies, and stranded
// vCPUs must be remapped against the table the survivors actually
// enact — ending up in at most one second-level queue.

// boundaryTables builds a 3-core, 3-vCPU pair of tables: v0 is capped
// and reserved only on core 2 in the old generation, but moves to core
// 1 in the new one; v1/v2 are uncapped second-level citizens homed on
// cores 0/1.
func boundaryTables(t *testing.T) (*table.Table, *table.Table) {
	t.Helper()
	vcpus := []table.VCPUInfo{
		{Name: "v0", Capped: true, HomeCore: 2},
		{Name: "v1", HomeCore: 0},
		{Name: "v2", HomeCore: 1},
	}
	old := buildTable(t, 100_000, vcpus, [][]table.Alloc{
		{al(0, 50_000, 1)},
		{al(0, 50_000, 2)},
		{al(0, 50_000, 0)},
	})
	vcpus2 := []table.VCPUInfo{
		{Name: "v0", Capped: true, HomeCore: 1},
		{Name: "v1", HomeCore: 0},
		{Name: "v2", HomeCore: 1},
	}
	next := buildTable(t, 100_000, vcpus2, [][]table.Alloc{
		{al(0, 50_000, 1)},
		{al(0, 50_000, 0), al(50_000, 100_000, 2)},
		{},
	})
	next.Generation = 2
	return old, next
}

// boundaryDispatcher assembles a dispatcher attached to a 3-core
// machine without starting it, so the test can drive PickNext and
// OnCoreFail with exact timestamps.
func boundaryDispatcher(t *testing.T, old *table.Table) (*Dispatcher, *vmm.Machine) {
	t.Helper()
	d := New(old, Options{})
	m := vmm.New(sim.New(1), 3, d, vmm.NoOverheads())
	m.AddVCPU("v0", spin(), 256, true)
	m.AddVCPU("v1", spin(), 256, false)
	m.AddVCPU("v2", spin(), 256, false)
	d.Attach(m)
	return d, m
}

// assertSingleMembership checks the degraded-mode invariant: no vCPU
// may sit in more than one core's second-level queue.
func assertSingleMembership(t *testing.T, d *Dispatcher) {
	t.Helper()
	for vid := range d.m.VCPUs {
		homes := 0
		for c := range d.cores {
			if d.cores[c].l2Member[vid] {
				homes++
			}
		}
		if homes > 1 {
			t.Errorf("vCPU %d is a second-level member on %d cores, want at most 1", vid, homes)
		}
	}
}

// TestAdoptionCountedOncePerCore re-invokes an already-adopted core
// while the switch is still pending: the adoption stat must count each
// live core once, and a core fail-stopping before its adoption must
// not leave the switch dangling.
func TestAdoptionCountedOncePerCore(t *testing.T) {
	old, next := boundaryTables(t)
	d, m := boundaryDispatcher(t, old)
	if err := d.PushTable(next); err != nil {
		t.Fatal(err)
	}
	const boundary = 100_000           // PushTable at t=0 arms the switch for cycle 1
	d.PickNext(m.CPUs[0], boundary)    // core 0 adopts
	d.PickNext(m.CPUs[0], boundary+10) // re-invocation while pending: not another adoption
	d.PickNext(m.CPUs[1], boundary+20) // core 1 adopts
	d.OnCoreFail(2, boundary+30)       // core 2 dies before ever crossing the boundary

	if got := d.Stats().TableSwitches; got != 2 {
		t.Errorf("TableSwitches = %d, want 2 (one per live core): re-invocations of an adopted core were counted as fresh adoptions", got)
	}
	if d.next != nil {
		t.Error("switch still pending after every live core adopted and the holdout fail-stopped")
	}
	if d.ActiveTable() != next {
		t.Error("staged table was not promoted")
	}
	assertSingleMembership(t, d)
}

// TestFailStopOnTableBoundaryCompletesSwitch fail-stops the last
// non-adopted core exactly on the activation boundary. The switch must
// complete immediately — no surviving core will adopt on the dead
// core's behalf later — and the stranded capped vCPU must be remapped
// against the *new* table, where it has a live reservation and thus
// needs no emergency second-level grant.
func TestFailStopOnTableBoundaryCompletesSwitch(t *testing.T) {
	old, next := boundaryTables(t)
	d, m := boundaryDispatcher(t, old)
	if err := d.PushTable(next); err != nil {
		t.Fatal(err)
	}
	const boundary = 100_000
	d.PickNext(m.CPUs[0], boundary)
	d.PickNext(m.CPUs[1], boundary)
	if d.next == nil {
		t.Fatal("switch completed with core 2 still unadopted")
	}
	d.OnCoreFail(2, boundary) // fail-stop exactly on the boundary

	if d.ActiveTable() != next {
		t.Fatalf("active table generation %d after the holdout fail-stopped, want %d: OnCoreFail did not complete the adoption quorum", d.ActiveTable().Generation, next.Generation)
	}
	if d.next != nil {
		t.Error("switch still pending")
	}
	// In the new table v0 is reserved on live core 1: remapping it as an
	// emergency second-level member (as the old table would demand)
	// would both void its guarantee bookkeeping and double its dispatch
	// paths.
	if d.emergency[0] {
		t.Error("v0 got an emergency second-level grant despite a live reservation in the adopted table: remap ran against the superseded table")
	}
	if got := d.Stats().RemappedVCPUs; got != 0 {
		t.Errorf("RemappedVCPUs = %d, want 0", got)
	}
	assertSingleMembership(t, d)

	// The dead core's failure must still be reflected, and wakeups for
	// v0 must route to its new reservation core.
	if !d.Degraded() || len(d.FailedCoreIDs()) != 1 || d.FailedCoreIDs()[0] != 2 {
		t.Errorf("failure bookkeeping wrong: degraded=%v failed=%v", d.Degraded(), d.FailedCoreIDs())
	}
}

// TestSwitchBoardMarkFailedAdoptionRace interleaves a core's own
// boundary crossing with the control plane marking that same core
// failed — the machine tears cores down asynchronously from the
// planning daemon, so both adoption paths can run at the same instant
// on a real parallel host. No interleaving may count the core twice in
// the adoption quorum: if it is, the staged generation retires before
// the remaining cores adopt, and they are stranded on the old table
// forever. The adoptPause hook injects the other party's adoption into
// the exact load-to-flip window a parallel machine could hit, making
// the interleaving reproducible on any GOMAXPROCS.
func TestSwitchBoardMarkFailedAdoptionRace(t *testing.T) {
	t0 := miniTable(t, 1)
	t1 := miniTable(t, 2)
	cases := []struct {
		name string
		// interrupt is what fires inside the first party's adopt window.
		run, interrupt func(s *SwitchBoard)
	}{
		{
			name:      "MarkFailedDuringTableFor",
			run:       func(s *SwitchBoard) { s.TableFor(1, 150_000) },
			interrupt: func(s *SwitchBoard) { s.MarkFailed(1) },
		},
		{
			name:      "TableForDuringMarkFailed",
			run:       func(s *SwitchBoard) { s.MarkFailed(1) },
			interrupt: func(s *SwitchBoard) { s.TableFor(1, 150_000) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSwitchBoard(2, t0)
			if _, err := s.Push(t1, 10_000); err != nil {
				t.Fatal(err)
			}
			// A plain flag, not sync.Once: the nested adoption re-enters
			// the hook on the same goroutine, and Once.Do is not
			// reentrant.
			fired := false
			s.adoptPause = func(core int) {
				if core != 1 || fired {
					return
				}
				fired = true
				tc.interrupt(s)
			}
			tc.run(s)
			s.adoptPause = nil
			// Core 0 has yet to adopt: its own crossing must still find
			// the staged table, however core 1's two adoptions interleaved.
			if got := s.TableFor(0, 150_000); got != t1 {
				t.Fatalf("core 0 sees generation %d after crossing the boundary, want %d: core 1 was counted twice and the staged table retired early", got.Generation, t1.Generation)
			}
			if s.Pending() {
				t.Fatal("switch still pending after every core adopted")
			}
		})
	}
}

// TestSwitchBoardMarkFailedConcurrent is the same race run with real
// goroutines — primarily a race detector target, so it needs actual
// parallelism to exercise anything.
func TestSwitchBoardMarkFailedConcurrent(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs GOMAXPROCS >= 2 to race the adoption paths")
	}
	t0 := miniTable(t, 1)
	t1 := miniTable(t, 2)
	iters := 2000
	if testing.Short() {
		iters = 200
	}
	for iter := 0; iter < iters; iter++ {
		s := NewSwitchBoard(2, t0)
		if _, err := s.Push(t1, 10_000); err != nil {
			t.Fatal(err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			s.TableFor(1, 150_000)
		}()
		go func() {
			defer wg.Done()
			<-start
			s.MarkFailed(1)
		}()
		close(start)
		wg.Wait()
		if got := s.TableFor(0, 150_000); got != t1 {
			t.Fatalf("iter %d: core 0 sees generation %d, want %d", iter, got.Generation, t1.Generation)
		}
		if s.Pending() {
			t.Fatalf("iter %d: switch still pending after every core adopted", iter)
		}
	}
}
