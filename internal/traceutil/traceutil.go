// Package traceutil instruments schedulers the way the paper's xentrace
// tracepoints do (Sec. 7.2): it wraps a vmm.Scheduler and measures the
// host-clock cost of every hot-path invocation while a simulation runs,
// so the native expense of each reimplemented algorithm's data
// structures (Credit's runqueue walks, RTDS's global-queue scans,
// Tableau's slice-table lookups) can be compared directly — this is the
// non-circular half of the Table 1/2 reproduction.
package traceutil

import (
	"time"

	"tableau/internal/vmm"
)

// OpStats aggregates host-time cost of one operation type.
type OpStats struct {
	Ops   int64
	Total time.Duration
}

// MeanNs returns the mean cost in nanoseconds, or 0 with no samples.
// The value includes the cost of the timing instrumentation itself
// (one time.Now/time.Since pair, typically 40-80 ns); since every
// scheduler pays the identical constant, cross-scheduler comparisons
// and orderings are unaffected. TimerOverheadNs reports the calibrated
// constant for readers who want net values.
func (o OpStats) MeanNs() float64 {
	if o.Ops == 0 {
		return 0
	}
	return float64(o.Total.Nanoseconds()) / float64(o.Ops)
}

// TimedScheduler wraps a scheduler and measures each operation with the
// host monotonic clock.
type TimedScheduler struct {
	Inner vmm.Scheduler

	Pick  OpStats
	Wake  OpStats
	Block OpStats

	timerOverheadNs float64
}

// NewTimed wraps inner and calibrates the timing instrumentation cost.
func NewTimed(inner vmm.Scheduler) *TimedScheduler {
	t := &TimedScheduler{Inner: inner}
	t.timerOverheadNs = calibrateTimerOverhead(2000, time.Now)
	return t
}

// calibrateTimerOverhead measures the constant embedded in one
// instrumented sample: the elapsed time between the time.Now that opens
// a measurement and the time.Since that closes it, with nothing in
// between. Each probe therefore reads the clock twice and accumulates
// the inner difference — timing the whole probe loop with an outer
// Now/Since pair and dividing by the probe count would fold the outer
// pair and the loop itself into the estimate, roughly doubling it.
func calibrateTimerOverhead(probes int, now func() time.Time) float64 {
	var total time.Duration
	for i := 0; i < probes; i++ {
		p := now()
		total += now().Sub(p)
	}
	return float64(total.Nanoseconds()) / float64(probes)
}

// TimerOverheadNs returns the calibrated cost of one timing pair,
// included in every MeanNs value.
func (t *TimedScheduler) TimerOverheadNs() float64 { return t.timerOverheadNs }

// Name implements vmm.Scheduler.
func (t *TimedScheduler) Name() string { return t.Inner.Name() }

// Attach implements vmm.Scheduler.
func (t *TimedScheduler) Attach(m *vmm.Machine) { t.Inner.Attach(m) }

// PickNext implements vmm.Scheduler.
func (t *TimedScheduler) PickNext(cpu *vmm.PCPU, now int64) vmm.Decision {
	start := time.Now()
	d := t.Inner.PickNext(cpu, now)
	t.Pick.Total += time.Since(start)
	t.Pick.Ops++
	return d
}

// OnWake implements vmm.Scheduler.
func (t *TimedScheduler) OnWake(v *vmm.VCPU, now int64) {
	start := time.Now()
	t.Inner.OnWake(v, now)
	t.Wake.Total += time.Since(start)
	t.Wake.Ops++
}

// OnBlock implements vmm.Scheduler.
func (t *TimedScheduler) OnBlock(v *vmm.VCPU, now int64) {
	start := time.Now()
	t.Inner.OnBlock(v, now)
	t.Block.Total += time.Since(start)
	t.Block.Ops++
}

// OnDeschedule forwards to the inner scheduler when it observes
// deschedules.
func (t *TimedScheduler) OnDeschedule(v *vmm.VCPU, cpu *vmm.PCPU, now int64) {
	if obs, ok := t.Inner.(vmm.DescheduleObserver); ok {
		obs.OnDeschedule(v, cpu, now)
	}
}

// OnCoreFail forwards to the inner scheduler when it observes core
// failures.
func (t *TimedScheduler) OnCoreFail(core int, now int64) {
	if obs, ok := t.Inner.(vmm.CoreFailureObserver); ok {
		obs.OnCoreFail(core, now)
	}
}
