package traceutil

import (
	"strings"
	"testing"
	"time"

	"tableau/internal/sim"
	"tableau/internal/vmm"
)

// fakeSched counts calls and implements DescheduleObserver.
type fakeSched struct {
	picks, wakes, blocks, desched int
	m                             *vmm.Machine
}

func (f *fakeSched) Name() string          { return "fake" }
func (f *fakeSched) Attach(m *vmm.Machine) { f.m = m }
func (f *fakeSched) PickNext(cpu *vmm.PCPU, now int64) vmm.Decision {
	f.picks++
	for _, v := range f.m.VCPUs {
		if v.State == vmm.Runnable && (v.CurrentCPU == -1 || v.CurrentCPU == cpu.ID) {
			return vmm.Decision{VCPU: v, Until: vmm.NoTimer}
		}
	}
	return vmm.Decision{Until: vmm.NoTimer}
}
func (f *fakeSched) OnWake(v *vmm.VCPU, now int64) {
	f.wakes++
	for _, cpu := range f.m.CPUs {
		if cpu.Current == nil {
			f.m.Kick(cpu.ID)
			return
		}
	}
}
func (f *fakeSched) OnBlock(v *vmm.VCPU, now int64) { f.blocks++ }
func (f *fakeSched) OnDeschedule(v *vmm.VCPU, cpu *vmm.PCPU, now int64) {
	f.desched++
}

func TestTimedSchedulerDelegatesAndCounts(t *testing.T) {
	inner := &fakeSched{}
	ts := NewTimed(inner)
	if ts.Name() != "fake" {
		t.Errorf("Name() = %q", ts.Name())
	}
	eng := sim.New(1)
	m := vmm.New(eng, 1, ts, vmm.NoOverheads())
	phase := 0
	m.AddVCPU("v", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		phase++
		if phase%2 == 1 {
			return vmm.Compute(1000)
		}
		return vmm.Block(1000)
	}), 256, false)
	m.Start()
	m.Run(100_000)

	if inner.picks == 0 || inner.wakes == 0 || inner.blocks == 0 {
		t.Fatalf("inner not driven: %+v", inner)
	}
	if ts.Pick.Ops != int64(inner.picks) {
		t.Errorf("Pick.Ops = %d, inner %d", ts.Pick.Ops, inner.picks)
	}
	if ts.Wake.Ops != int64(inner.wakes) {
		t.Errorf("Wake.Ops = %d, inner %d", ts.Wake.Ops, inner.wakes)
	}
	if ts.Block.Ops != int64(inner.blocks) {
		t.Errorf("Block.Ops = %d, inner %d", ts.Block.Ops, inner.blocks)
	}
	if ts.Pick.MeanNs() <= 0 {
		t.Error("mean pick cost not measured")
	}
	if ts.TimerOverheadNs() <= 0 {
		t.Error("timer overhead not calibrated")
	}
}

// TestCalibrationCountsOneTimerPair drives the calibration with a fake
// clock that advances a fixed step per read. One instrumented sample
// embeds exactly the interval between its two clock reads — one step —
// so that is what the calibration must report. The historical
// implementation timed the whole probe loop with an outer Now/Since
// pair and divided by the probe count, which reports ~two steps here
// (both inner reads land inside the outer span).
func TestCalibrationCountsOneTimerPair(t *testing.T) {
	const step = 10 // ns per clock read
	var ticks int64
	clock := func() time.Time {
		ticks += step
		return time.Unix(0, ticks)
	}
	got := calibrateTimerOverhead(100, clock)
	if got != step {
		t.Fatalf("calibrateTimerOverhead = %v ns with a %d ns/read clock, want exactly %d", got, step, step)
	}
}

// TestCalibrationWithinSaneBounds checks the real-clock constant: it
// must be positive, well under a microsecond on any plausible host, and
// strictly below the outer-loop estimate it used to be confused with.
func TestCalibrationWithinSaneBounds(t *testing.T) {
	const probes = 20_000
	got := calibrateTimerOverhead(probes, time.Now)
	if got <= 0 {
		t.Fatalf("calibrated timer overhead %v ns, want > 0", got)
	}
	if got >= 2000 {
		t.Fatalf("calibrated timer overhead %v ns, want < 2000 (one clock-pair gap)", got)
	}
	// The outer-loop estimate pays two full clock calls plus loop
	// overhead per probe; the per-pair constant must come in clearly
	// below it.
	start := time.Now()
	for i := 0; i < probes; i++ {
		p := time.Now()
		_ = time.Since(p)
	}
	outer := float64(time.Since(start).Nanoseconds()) / probes
	if got >= outer {
		t.Fatalf("calibrated constant %v ns >= outer-loop estimate %v ns: calibration still double-counts", got, outer)
	}
}

func TestEmptyOpStats(t *testing.T) {
	var o OpStats
	if o.MeanNs() != 0 {
		t.Error("empty stats should report 0")
	}
}

func TestDescheduleForwarding(t *testing.T) {
	inner := &fakeSched{}
	ts := NewTimed(inner)
	eng := sim.New(1)
	m := vmm.New(eng, 1, ts, vmm.NoOverheads())
	// Two spinners force deschedules via kicks... simpler: single vCPU
	// that blocks triggers a switch to idle, which calls OnDeschedule.
	phase := 0
	m.AddVCPU("v", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		phase++
		if phase%2 == 1 {
			return vmm.Compute(1000)
		}
		return vmm.Block(1000)
	}), 256, false)
	m.Start()
	m.Run(50_000)
	if inner.desched == 0 {
		t.Error("OnDeschedule not forwarded through the timing wrapper")
	}
}

func TestRecorderTimeline(t *testing.T) {
	inner := &fakeSched{}
	rec := NewRecorder(inner)
	if rec.Name() != "fake" {
		t.Errorf("Name() = %q", rec.Name())
	}
	eng := sim.New(1)
	m := vmm.New(eng, 1, rec, vmm.NoOverheads())
	phase := 0
	m.AddVCPU("v", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		phase++
		if phase%2 == 1 {
			return vmm.Compute(10_000)
		}
		return vmm.Block(10_000)
	}), 256, false)
	m.Start()
	m.Run(100_000)
	evs := rec.Events()
	if len(evs) < 5 {
		t.Fatalf("only %d events recorded", len(evs))
	}
	counts := rec.DispatchCounts()
	if counts[0] == 0 || counts[-1] == 0 {
		t.Errorf("counts = %v, want both vcpu 0 and idle decisions", counts)
	}
	out := rec.Render(0, 100_000, 40)
	if !strings.Contains(out, "core  0 |") {
		t.Errorf("render missing core row:\n%s", out)
	}
	if !strings.Contains(out, "0") || !strings.Contains(out, ".") {
		t.Errorf("render should show both busy and idle columns:\n%s", out)
	}
}

func TestRecorderRenderEdgeCases(t *testing.T) {
	rec := NewRecorder(&fakeSched{})
	if rec.Render(0, 100, 10) != "" {
		t.Error("empty recorder should render nothing")
	}
	rec.events = []DispatchEvent{{Time: 50, CPU: 0, VCPU: 11}}
	out := rec.Render(0, 100, 4)
	if !strings.Contains(out, " ") {
		t.Errorf("columns before the first record should be blank: %q", out)
	}
	if !strings.Contains(out, "b") { // vCPU 11 -> 'b'
		t.Errorf("vcpu 11 glyph missing: %q", out)
	}
	rec.events = []DispatchEvent{{Time: 0, CPU: 0, VCPU: 99}}
	if out := rec.Render(0, 10, 2); !strings.Contains(out, "#") {
		t.Errorf("high vcpu ids should render #: %q", out)
	}
	if rec.Render(0, 0, 10) != "" || rec.Render(0, 100, 0) != "" {
		t.Error("degenerate windows should render nothing")
	}
}

func TestRecorderLimit(t *testing.T) {
	inner := &fakeSched{}
	rec := NewRecorder(inner)
	rec.Limit = 3
	eng := sim.New(1)
	m := vmm.New(eng, 1, rec, vmm.NoOverheads())
	phase := 0
	m.AddVCPU("v", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		phase++
		if phase%2 == 1 {
			return vmm.Compute(1_000)
		}
		return vmm.Block(1_000)
	}), 256, false)
	m.Start()
	m.Run(100_000)
	if len(rec.Events()) != 3 {
		t.Errorf("limit not enforced: %d events", len(rec.Events()))
	}
}
