package traceutil

import (
	"fmt"
	"sort"
	"strings"

	"tableau/internal/vmm"
)

// A DispatchEvent records one scheduling decision: at Time, CPU started
// running VCPU (or went idle, VCPU == -1).
type DispatchEvent struct {
	Time int64
	CPU  int
	VCPU int
}

// Recorder wraps a scheduler and records every dispatch decision, the
// in-simulation analogue of the paper's xentrace runs (Sec. 7.2). The
// recorded timeline can be rendered as a per-core text chart or
// analysed directly.
type Recorder struct {
	Inner vmm.Scheduler
	// Limit bounds the number of retained events (0 = 1M). When the
	// limit is hit, recording stops (the prefix is kept).
	Limit int

	events []DispatchEvent
}

// NewRecorder wraps inner.
func NewRecorder(inner vmm.Scheduler) *Recorder { return &Recorder{Inner: inner} }

// Name implements vmm.Scheduler.
func (r *Recorder) Name() string { return r.Inner.Name() }

// Attach implements vmm.Scheduler.
func (r *Recorder) Attach(m *vmm.Machine) { r.Inner.Attach(m) }

// PickNext implements vmm.Scheduler.
func (r *Recorder) PickNext(cpu *vmm.PCPU, now int64) vmm.Decision {
	d := r.Inner.PickNext(cpu, now)
	limit := r.Limit
	if limit == 0 {
		limit = 1 << 20
	}
	if len(r.events) < limit {
		v := -1
		if d.VCPU != nil {
			v = d.VCPU.ID
		}
		r.events = append(r.events, DispatchEvent{Time: now, CPU: cpu.ID, VCPU: v})
	}
	return d
}

// OnWake implements vmm.Scheduler.
func (r *Recorder) OnWake(v *vmm.VCPU, now int64) { r.Inner.OnWake(v, now) }

// OnBlock implements vmm.Scheduler.
func (r *Recorder) OnBlock(v *vmm.VCPU, now int64) { r.Inner.OnBlock(v, now) }

// OnDeschedule forwards to the inner scheduler when it observes
// deschedules.
func (r *Recorder) OnDeschedule(v *vmm.VCPU, cpu *vmm.PCPU, now int64) {
	if obs, ok := r.Inner.(vmm.DescheduleObserver); ok {
		obs.OnDeschedule(v, cpu, now)
	}
}

// OnCoreFail forwards to the inner scheduler when it observes core
// failures.
func (r *Recorder) OnCoreFail(core int, now int64) {
	if obs, ok := r.Inner.(vmm.CoreFailureObserver); ok {
		obs.OnCoreFail(core, now)
	}
}

// Events returns the recorded dispatch decisions in order.
func (r *Recorder) Events() []DispatchEvent { return r.events }

// DispatchCounts returns, per vCPU id, how many dispatch decisions
// placed it (idle decisions are under key -1).
func (r *Recorder) DispatchCounts() map[int]int {
	out := make(map[int]int)
	for _, e := range r.events {
		out[e.VCPU]++
	}
	return out
}

// Render draws the recorded timeline of window [from, to) as one text
// row per core with cols columns. Each column shows the vCPU that held
// the core at the column's start: digits and letters index vCPU ids
// (0-9, a-z, then '#'), '.' is idle, ' ' is before the first record.
func (r *Recorder) Render(from, to int64, cols int) string {
	if cols <= 0 || to <= from || len(r.events) == 0 {
		return ""
	}
	// Group events per CPU, sorted by time (they arrive in time order
	// globally, so per-CPU order is preserved).
	perCPU := make(map[int][]DispatchEvent)
	maxCPU := 0
	for _, e := range r.events {
		perCPU[e.CPU] = append(perCPU[e.CPU], e)
		if e.CPU > maxCPU {
			maxCPU = e.CPU
		}
	}
	var b strings.Builder
	step := (to - from) / int64(cols)
	if step <= 0 {
		step = 1
	}
	for cpu := 0; cpu <= maxCPU; cpu++ {
		evs := perCPU[cpu]
		fmt.Fprintf(&b, "core %2d |", cpu)
		for c := 0; c < cols; c++ {
			t := from + int64(c)*step
			b.WriteByte(glyphAt(evs, t))
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// glyphAt returns the glyph for the vCPU holding the core at time t.
func glyphAt(evs []DispatchEvent, t int64) byte {
	// Last event at or before t.
	i := sort.Search(len(evs), func(k int) bool { return evs[k].Time > t }) - 1
	if i < 0 {
		return ' '
	}
	v := evs[i].VCPU
	switch {
	case v < 0:
		return '.'
	case v < 10:
		return byte('0' + v)
	case v < 36:
		return byte('a' + v - 10)
	default:
		return '#'
	}
}
