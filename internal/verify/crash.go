package verify

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"tableau/internal/core"
	"tableau/internal/dispatch"
	"tableau/internal/faults"
	"tableau/internal/journal"
	"tableau/internal/planner"
	"tableau/internal/sim"
	"tableau/internal/table"
	"tableau/internal/vmm"
)

// ClassRecovery is the crash-recovery oracle family: after a seeded
// crash at a journal append boundary, core.Recover must resume on
// exactly the epoch a never-crashed shadow run committed at that point
// — bit-identical table bytes and guarantees — report tail damage
// truthfully, and hand over a controller whose next epochs keep every
// surviving guarantee across the crash seam with strictly increasing
// versions.
const ClassRecovery = "recovery"

// CrashScenario is one seeded crash storm: a small host, a churn
// script of single-op bursts (each committing exactly one epoch), and
// one crash planted at a journal append boundary. Everything below is
// a pure function of Seed, so a scenario regenerates identically from
// its seed alone.
type CrashScenario struct {
	Seed  int64
	Cores int
	// VMs is the registered population; ActiveAtStart marks the slots
	// resident when the machine starts. Slot ids equal indices here
	// (vCPU ids are fixed at machine start, so registration order is
	// identity on both the original and the recovered host).
	VMs           []core.VMConfig
	ActiveAtStart []bool
	// Script is one batch per burst. Each batch holds a single
	// always-admissible op, so burst i commits epoch version i+1 — the
	// journal's record k carries version k (record 1 is the baseline
	// epoch AttachJournal appends).
	Script [][]core.Op
	// AtAppend (1-based) and Kind place the crash; AtAppend is drawn
	// from [2, len(Script)+1] so the crash always fires after the
	// baseline record.
	AtAppend int
	Kind     string
	// WantVersion is the epoch recovery must resume on: AtAppend for a
	// post-append crash (the record is durable even though the dying
	// flush saw an error), AtAppend-1 for every other kind.
	WantVersion uint64
	// SeamOp is the first post-recovery op, chosen against the
	// population as of WantVersion so it is always admissible.
	SeamOp core.Op
}

// CrashArtifacts is everything CheckRecovery needs from one RunCrash.
type CrashArtifacts struct {
	Scenario *CrashScenario
	// Truth is the shadow run's full epoch history (versions 1..n): the
	// ground truth a crashed-then-recovered host is measured against.
	Truth []core.Epoch
	// CrashErr is the error the dying flush observed (wraps
	// faults.ErrCrashed).
	CrashErr error
	// Report is what Recover said it found and did.
	Report *core.RecoveryReport
	// History is the recovered controller's epoch history after the
	// seam flush: the replayed prefix, the emergency replan when the
	// tail was damaged, and the seam epoch.
	History []core.Epoch
	// SeamVersion is the version the post-recovery flush committed;
	// SeamErr is its error, if any.
	SeamVersion uint64
	SeamErr     error
}

// GenerateCrashScenario derives a scenario from a seed: 2-4 cores, a
// population of 2 slots per core plus 0-2 spares at 1/8 or 1/4
// utilization (worst-case load stays under the core count, so every
// activation admits), 4-8 single-op bursts, and a crash of a seeded
// kind at a seeded append boundary.
func GenerateCrashScenario(seed int64) *CrashScenario {
	rng := rand.New(rand.NewSource(seed))
	sc := &CrashScenario{Seed: seed}
	sc.Cores = 2 + rng.Intn(3)
	n := 2*sc.Cores + rng.Intn(3)
	sc.VMs = make([]core.VMConfig, n)
	sc.ActiveAtStart = make([]bool, n)
	for i := range sc.VMs {
		util := core.Util{Num: 1, Den: 8}
		if rng.Intn(2) == 0 {
			util.Den = 4
		}
		goal := int64(20_000_000)
		if rng.Intn(2) == 0 {
			goal = 30_000_000
		}
		sc.VMs[i] = core.VMConfig{
			Name:        fmt.Sprintf("crash-vm%d", i),
			Util:        util,
			LatencyGoal: goal,
			Capped:      rng.Intn(2) == 0,
		}
		// At least two slots resident at start: deactivations below
		// always leave one, and the initial plan is never empty.
		sc.ActiveAtStart[i] = i < 2 || rng.Intn(2) == 0
	}

	active := append([]bool(nil), sc.ActiveAtStart...)
	bursts := 4 + rng.Intn(5)
	sc.Script = make([][]core.Op, bursts)
	for b := range sc.Script {
		sc.Script[b] = []core.Op{drawToggle(rng, active)}
	}
	sc.AtAppend = 2 + rng.Intn(bursts)
	sc.Kind = faults.CrashKinds[rng.Intn(len(faults.CrashKinds))]
	sc.WantVersion = uint64(sc.AtAppend - 1)
	if sc.Kind == faults.CrashPostAppend {
		sc.WantVersion = uint64(sc.AtAppend)
	}

	// Replay the mirror to the recovered population (epoch version v is
	// the state after burst v-1) and pick a seam op against it.
	active = append(active[:0], sc.ActiveAtStart...)
	for _, batch := range sc.Script[:sc.WantVersion-1] {
		applyToggle(active, batch[0])
	}
	sc.SeamOp = drawToggle(rng, active)
	return sc
}

// drawToggle picks one admissible activation/deactivation against the
// mirrored active set and applies it to the mirror.
func drawToggle(rng *rand.Rand, active []bool) core.Op {
	var on, off []int
	for i, a := range active {
		if a {
			on = append(on, i)
		} else {
			off = append(off, i)
		}
	}
	var op core.Op
	if len(off) > 0 && (len(on) <= 1 || rng.Intn(2) == 0) {
		op = core.Op{Kind: core.OpActivate, Slot: off[rng.Intn(len(off))]}
	} else {
		op = core.Op{Kind: core.OpDeactivate, Slot: on[rng.Intn(len(on))]}
	}
	applyToggle(active, op)
	return op
}

func applyToggle(active []bool, op core.Op) {
	active[op.Slot] = op.Kind == core.OpActivate
}

// crashRig builds the scenario's host on the given journal store: the
// registered population, a dispatcher bound to a started (not run)
// machine, and a journaling controller whose baseline epoch is the
// store's record 1.
func crashRig(sc *CrashScenario, store journal.Store) (*core.Controller, error) {
	sys := core.NewSystem(sc.Cores, planner.Options{}, dispatch.Options{})
	for i, cfg := range sc.VMs {
		id, err := sys.AddVM(cfg)
		if err != nil {
			return nil, fmt.Errorf("registering slot %d: %w", i, err)
		}
		if id != i {
			return nil, fmt.Errorf("slot %d registered as id %d", i, id)
		}
		if !sc.ActiveAtStart[i] {
			if err := sys.SetActive(id, false); err != nil {
				return nil, err
			}
		}
	}
	d, res, err := sys.BuildDispatcher()
	if err != nil {
		return nil, fmt.Errorf("initial plan: %w", err)
	}
	bindMachine(sys, d)
	ctrl, err := core.NewController(sys, d, res)
	if err != nil {
		return nil, err
	}
	if err := ctrl.AttachJournal(journal.NewWriter(store)); err != nil {
		return nil, fmt.Errorf("journal baseline: %w", err)
	}
	return ctrl, nil
}

// bindMachine attaches a started (not run) machine with one vCPU per
// slot so PushTable has a time base; nothing adopts until it runs.
func bindMachine(sys *core.System, d *dispatch.Dispatcher) {
	m := vmm.New(sim.New(1), sys.Cores(), d, vmm.NoOverheads())
	for i := 0; i < sys.NumSlots(); i++ {
		m.AddVCPU(sys.Config(i).Name, vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
			return vmm.Compute(1_000_000)
		}), 256, true)
	}
	m.Start()
}

// RunCrash executes one scenario end to end: a shadow run that never
// crashes establishes the ground-truth epoch sequence, the crashed run
// dies at the planted append boundary, and core.Recover rebuilds a
// controller from the surviving journal image. One seam op is then
// flushed through the recovered controller so the oracles can check
// continuity across the crash seam.
func RunCrash(sc *CrashScenario) (*CrashArtifacts, error) {
	// Shadow run: same rig, same script, a journal that never fails.
	shadow, err := crashRig(sc, journal.NewMemStore())
	if err != nil {
		return nil, fmt.Errorf("shadow rig: %w", err)
	}
	for b, batch := range sc.Script {
		shadow.SubmitBatch(batch)
		if _, err := shadow.Flush(); err != nil {
			return nil, fmt.Errorf("shadow burst %d: %w", b, err)
		}
	}
	a := &CrashArtifacts{Scenario: sc, Truth: shadow.History()}

	// Crashed run: identical script on a store that dies at AtAppend.
	cs, err := faults.NewCrashStore(journal.NewMemStore(), faults.CrashPlan{
		AtAppend: sc.AtAppend, Kind: sc.Kind, Seed: sc.Seed,
	})
	if err != nil {
		return nil, err
	}
	crashed, err := crashRig(sc, cs)
	if err != nil {
		return nil, fmt.Errorf("crashed rig: %w", err)
	}
	for b, batch := range sc.Script {
		crashed.SubmitBatch(batch)
		if _, err := crashed.Flush(); err != nil {
			if errors.Is(err, faults.ErrCrashed) {
				a.CrashErr = err
				break
			}
			return nil, fmt.Errorf("crashed run burst %d failed for another reason: %w", b, err)
		}
	}
	if !cs.Crashed() {
		return nil, fmt.Errorf("crash at append %d never fired (script too short)", sc.AtAppend)
	}

	// Recovery from the bytes that survived the crash.
	img, err := cs.Surviving()
	if err != nil {
		return nil, err
	}
	rc, rd, report, err := core.Recover(journal.NewMemStoreFrom(img), core.RecoverOptions{
		ReplanTorn: true,
	})
	if err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	a.Report = report

	// Resume serving: rebind a machine and flush the seam op.
	bindMachine(rc.System(), rd)
	rc.Submit(sc.SeamOp)
	tr, serr := rc.Flush()
	a.SeamErr = serr
	if tr != nil {
		a.SeamVersion = tr.Version
	}
	a.History = rc.History()
	return a, nil
}

// CheckRecovery runs the recovery-equivalence and crash-seam oracles
// over one RunCrash's artifacts.
//
//   - equivalence: the recovered version is WantVersion, its table
//     bytes and guarantees are bit-identical to the shadow epoch of
//     the same version, and every replayed epoch matches the shadow
//     history entry of its version.
//   - tail truth: torn and bit-flip crashes must be reported as tail
//     damage (and trigger the emergency replan); pre/post-append
//     crashes must report a clean tail.
//   - seam continuity: every guarantee held in the recovered epoch
//     survives into each subsequent epoch unless the seam op
//     deactivated its slot, and versions increase strictly across the
//     seam.
func CheckRecovery(a *CrashArtifacts) []Violation {
	sc := a.Scenario
	var out []Violation
	bad := func(slot int, format string, args ...any) {
		out = append(out, Violation{ClassRecovery, slot, fmt.Sprintf(format, args...)})
	}

	if a.CrashErr == nil {
		bad(-1, "dying flush reported no error")
	}
	rep := a.Report
	if rep.RecoveredVersion != sc.WantVersion {
		bad(-1, "recovered version %d, want %d (%s at append %d)",
			rep.RecoveredVersion, sc.WantVersion, sc.Kind, sc.AtAppend)
		return out // every later check keys off the version; stop here
	}
	truth := a.Truth[sc.WantVersion-1]
	if truth.Version != sc.WantVersion {
		bad(-1, "shadow history misaligned: entry %d has version %d", sc.WantVersion-1, truth.Version)
		return out
	}
	if !bytes.Equal(rep.RecoveredBytes, truth.Bytes) {
		bad(-1, "recovered epoch %d bytes differ from shadow (%d vs %d bytes)",
			sc.WantVersion, len(rep.RecoveredBytes), len(truth.Bytes))
	}

	// Tail truth and the emergency replan.
	switch sc.Kind {
	case faults.CrashTorn, faults.CrashBitFlip:
		if rep.TailErr == nil || rep.TruncatedBytes == 0 {
			bad(-1, "%s: tail damage not reported (err %v, %d bytes cut)",
				sc.Kind, rep.TailErr, rep.TruncatedBytes)
		}
		if !rep.Replanned {
			bad(-1, "%s: emergency replan did not commit: %v", sc.Kind, rep.ReplanErr)
		}
	default:
		if rep.TailErr != nil || rep.TruncatedBytes != 0 {
			bad(-1, "%s: phantom tail damage (err %v, %d bytes cut)",
				sc.Kind, rep.TailErr, rep.TruncatedBytes)
		}
		if rep.Replanned {
			bad(-1, "%s: emergency replan fired on a clean tail", sc.Kind)
		}
	}

	// Replayed prefix: every recovered epoch up to WantVersion is
	// bit-identical to the shadow epoch of the same version.
	var recovered *core.Epoch
	for i := range a.History {
		ep := &a.History[i]
		if ep.Version > sc.WantVersion {
			break
		}
		tep := a.Truth[ep.Version-1]
		if !bytes.Equal(ep.Bytes, tep.Bytes) {
			bad(-1, "replayed epoch %d bytes differ from shadow", ep.Version)
		}
		if !guaranteesEqual(ep.Guarantees, tep.Guarantees) {
			bad(-1, "replayed epoch %d guarantees differ from shadow", ep.Version)
		}
		if ep.Version == sc.WantVersion {
			recovered = ep
		}
	}
	if recovered == nil {
		bad(-1, "recovered epoch %d missing from history", sc.WantVersion)
		return out
	}

	// The seam flush must commit, and versions must stay strictly
	// monotonic across the crash.
	if a.SeamErr != nil {
		bad(-1, "seam flush failed: %v", a.SeamErr)
	} else if a.SeamVersion <= sc.WantVersion {
		bad(-1, "seam epoch version %d does not exceed recovered %d", a.SeamVersion, sc.WantVersion)
	}
	for i := 1; i < len(a.History); i++ {
		if a.History[i].Version <= a.History[i-1].Version {
			bad(-1, "history versions not strictly increasing: %d then %d",
				a.History[i-1].Version, a.History[i].Version)
		}
	}

	// Seam continuity: from the recovered epoch forward, a slot holding
	// a guarantee keeps one in the next epoch — the only legitimate
	// drop is the seam op deactivating it.
	start := 0
	for i := range a.History {
		if a.History[i].Version == sc.WantVersion {
			start = i
			break
		}
	}
	for i := start; i+1 < len(a.History); i++ {
		cur, next := &a.History[i], &a.History[i+1]
		held := make(map[int]bool, len(next.Guarantees))
		for _, g := range next.Guarantees {
			held[g.VCPU] = true
		}
		for _, g := range cur.Guarantees {
			if held[g.VCPU] {
				continue
			}
			if sc.SeamOp.Kind == core.OpDeactivate && sc.SeamOp.Slot == g.VCPU &&
				a.SeamErr == nil && next.Version == a.SeamVersion {
				continue // the seam op tore this slot down on purpose
			}
			bad(g.VCPU, "guarantee lost across the seam: held in epoch %d, gone in %d",
				cur.Version, next.Version)
		}
	}
	return out
}

func guaranteesEqual(a, b []table.Guarantee) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
