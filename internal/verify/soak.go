package verify

import "fmt"

// SoakOptions parameterizes a soak: N scenarios generated from
// consecutive seeds starting at Seed, each run and checked by every
// oracle, with the differential and metamorphic layers sampled every
// DiffEvery-th / MetaEvery-th scenario (they re-run the population
// several times, so sampling keeps soak cost linear).
type SoakOptions struct {
	Seed int64
	N    int
	Cfg  Config
	// DiffEvery/MetaEvery <= 0 pick the defaults (8 and 4).
	DiffEvery int
	MetaEvery int
	// ForEach, when set, fans the scenarios out in parallel (the
	// experiments runner passes its worker pool). Rows are slot-ordered,
	// so the report is identical to a serial run. Nil runs serially.
	ForEach func(n int, fn func(i int) error) error
}

// SoakRow summarizes one soaked scenario for the CSV report.
type SoakRow struct {
	Seed       int64
	Cores      int
	VMs        int
	Hogs       int
	Faults     int
	Replans    int
	Churn      int
	TableLenNs int64
	Adopted    int
	MaxGapNs   int64
	Violations []string
}

// SoakReport aggregates a finished soak.
type SoakReport struct {
	Rows       []SoakRow
	Scenarios  int
	Violations int
}

// Soak generates, runs, and checks opts.N scenarios. It returns an
// error only for harness failures (a scenario that cannot even be
// built); oracle findings land in the rows. Deterministic: the same
// options yield the same report, regardless of ForEach parallelism.
func Soak(opts SoakOptions) (*SoakReport, error) {
	if opts.N <= 0 {
		opts.N = 100
	}
	if opts.DiffEvery <= 0 {
		opts.DiffEvery = 8
	}
	if opts.MetaEvery <= 0 {
		opts.MetaEvery = 4
	}
	forEach := opts.ForEach
	if forEach == nil {
		forEach = func(n int, fn func(i int) error) error {
			for i := 0; i < n; i++ {
				if err := fn(i); err != nil {
					return err
				}
			}
			return nil
		}
	}

	rows := make([]SoakRow, opts.N)
	err := forEach(opts.N, func(i int) error {
		seed := opts.Seed + int64(i)
		sc := Generate(seed, opts.Cfg)
		art, err := Run(sc)
		if err != nil {
			return fmt.Errorf("soak seed %d: %w", seed, err)
		}
		row := SoakRow{
			Seed:       seed,
			Cores:      sc.Cores,
			VMs:        len(sc.VMs),
			TableLenNs: art.Table.Len,
			Adopted:    art.Adopted,
			MaxGapNs:   MaxGapObserved(art),
		}
		for _, vm := range sc.VMs {
			if vm.Workload == Hog {
				row.Hogs++
			}
		}
		if sc.Faults != nil {
			row.Faults = len(sc.Faults.Events)
		}
		if sc.Replan != nil {
			row.Replans = 1
		}
		row.Churn = len(sc.Churn)
		for _, v := range CheckAll(art) {
			row.Violations = append(row.Violations, v.String())
		}
		if i%opts.MetaEvery == 0 {
			for _, v := range CheckMetamorphicPermute(sc, seed+1) {
				row.Violations = append(row.Violations, v.String())
			}
			for _, v := range CheckMetamorphicScale(sc, 2+seed%3) {
				row.Violations = append(row.Violations, v.String())
			}
		}
		if i%opts.DiffEvery == 0 {
			vs, err := RunDifferential(GenerateDiff(seed, opts.Cfg))
			if err != nil {
				return fmt.Errorf("soak seed %d: %w", seed, err)
			}
			for _, v := range vs {
				row.Violations = append(row.Violations, v.String())
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &SoakReport{Rows: rows, Scenarios: opts.N}
	for i := range rows {
		rep.Violations += len(rows[i].Violations)
	}
	return rep, nil
}
