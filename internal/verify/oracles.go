package verify

import (
	"fmt"

	"tableau/internal/faults"
	"tableau/internal/trace"
	"tableau/internal/vmm"
)

// Oracle classes. Each maps to one of the paper's claims; see
// DESIGN.md §8 for the full mapping.
const (
	ClassStatic           = "static"
	ClassUtilization      = "utilization"
	ClassMaxGap           = "maxgap"
	ClassConservation     = "conservation"
	ClassTraceConsistency = "traceconsistency"
)

// Violation is one oracle finding. VCPU is -1 for machine-wide
// findings.
type Violation struct {
	Class  string
	VCPU   int
	Detail string
}

func (v Violation) String() string {
	if v.VCPU >= 0 {
		return fmt.Sprintf("%s: vcpu %d: %s", v.Class, v.VCPU, v.Detail)
	}
	return fmt.Sprintf("%s: %s", v.Class, v.Detail)
}

// CheckAll runs every oracle class over the artifacts and returns all
// findings, static checks first.
func CheckAll(a *Artifacts) []Violation {
	var out []Violation
	out = append(out, CheckStatic(a)...)
	out = append(out, CheckUtilization(a)...)
	out = append(out, CheckMaxGap(a)...)
	out = append(out, CheckConservation(a)...)
	out = append(out, CheckTraceConsistency(a)...)
	out = append(out, CheckContinuity(a)...)
	return out
}

// CheckStatic re-verifies the planned tables themselves: structural
// validity, slice-index integrity, and the per-vCPU guarantees the
// planner claims to have proven. Plan already checks these — the
// oracle re-runs them against the *adopted* artifacts so a corruption
// between planner and dispatcher cannot hide.
func CheckStatic(a *Artifacts) []Violation {
	var out []Violation
	check := func(label string, t interface {
		Validate() error
		CheckSlices() error
	}) {
		if err := t.Validate(); err != nil {
			out = append(out, Violation{ClassStatic, -1, label + ": " + err.Error()})
		}
		if err := t.CheckSlices(); err != nil {
			out = append(out, Violation{ClassStatic, -1, label + ": " + err.Error()})
		}
	}
	check("initial table", a.Table)
	if a.FinalTable != nil && a.FinalTable != a.Table {
		check("final table", a.FinalTable)
	}
	if err := a.Table.Check(a.Guarantees); err != nil {
		out = append(out, Violation{ClassStatic, -1, "guarantees: " + err.Error()})
	}
	return out
}

// interval is one [start, end) span of a vCPU's Running residency.
type interval struct{ start, end int64 }

// runningIntervals reconstructs each vCPU's Running spans from the
// runstate records, closing any span still open at the horizon.
func runningIntervals(recs []trace.Record, nvcpus int, horizon int64) [][]interval {
	out := make([][]interval, nvcpus)
	open := make([]int64, nvcpus)
	for v := range open {
		open[v] = -1
	}
	for i := range recs {
		r := &recs[i]
		if r.Type != trace.EvRunstateChange {
			continue
		}
		v := int(r.VCPU)
		if v < 0 || v >= nvcpus {
			continue
		}
		switch {
		case r.Arg1 == trace.StateRunning:
			if open[v] < 0 {
				open[v] = r.Time
			}
		case r.Arg0 == trace.StateRunning:
			if open[v] >= 0 {
				out[v] = append(out[v], interval{open[v], r.Time})
				open[v] = -1
			}
		}
	}
	for v := range open {
		if open[v] >= 0 {
			out[v] = append(out[v], interval{open[v], horizon})
		}
	}
	return out
}

// serviceIn sums the overlap of ivs with window [from, to).
func serviceIn(ivs []interval, from, to int64) int64 {
	var total int64
	for _, iv := range ivs {
		s, e := iv.start, iv.end
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		if e > s {
			total += e - s
		}
	}
	return total
}

// hogGuarantees pairs each Hog vCPU with its guarantee. Blocky vCPUs
// are excluded from the service oracles: a vCPU that blocks forfeits
// the service it declined, which is correct behaviour, not a
// violation.
func hogGuarantees(a *Artifacts) map[int]struct {
	service, window, blackout int64
} {
	out := make(map[int]struct{ service, window, blackout int64 })
	for _, g := range a.Guarantees {
		if g.VCPU < 0 || g.VCPU >= a.Scenario.NumSlots() {
			continue
		}
		if a.Scenario.VM(g.VCPU).Workload != Hog {
			continue
		}
		out[g.VCPU] = struct{ service, window, blackout int64 }{g.Service, g.WindowLen, g.MaxBlackout}
	}
	return out
}

// CheckUtilization verifies the paper's utilization guarantee: every
// Hog vCPU receives at least Guarantee.Service in every complete
// guarantee window inside the quiet prefix. Guarantee windows align
// with table cycles, which align with t=0 because the machine starts
// with the table's first interval.
func CheckUtilization(a *Artifacts) []Violation {
	var out []Violation
	quiet := a.Scenario.QuietEnd()
	runs := runningIntervals(a.Records, len(a.M.VCPUs), Horizon)
	for v, g := range hogGuarantees(a) {
		if g.window <= 0 {
			continue
		}
		for w := int64(0); (w+1)*g.window <= quiet; w++ {
			got := serviceIn(runs[v], w*g.window, (w+1)*g.window)
			if got < g.service {
				out = append(out, Violation{ClassUtilization, v, fmt.Sprintf(
					"window [%d,%d): served %d ns < reserved %d ns",
					w*g.window, (w+1)*g.window, got, g.service)})
			}
		}
	}
	return out
}

// CheckMaxGap verifies the blackout bound: inside the quiet prefix, no
// Hog vCPU waits longer than Guarantee.MaxBlackout (the latency goal,
// the planner's 2*(1-U)*T bound) between consecutive Running spans —
// including the initial wait from t=0 and the tail up to the quiet
// end.
func CheckMaxGap(a *Artifacts) []Violation {
	var out []Violation
	quiet := a.Scenario.QuietEnd()
	runs := runningIntervals(a.Records, len(a.M.VCPUs), Horizon)
	for v, g := range hogGuarantees(a) {
		gap, at := observedMaxGap(runs[v], quiet)
		if gap > g.blackout {
			out = append(out, Violation{ClassMaxGap, v, fmt.Sprintf(
				"gap of %d ns ending at %d ns exceeds blackout bound %d ns", gap, at, g.blackout)})
		}
	}
	return out
}

// observedMaxGap returns the longest no-service gap in [0, until) and
// the instant it ended.
func observedMaxGap(ivs []interval, until int64) (gap, at int64) {
	prev := int64(0)
	for _, iv := range ivs {
		if iv.start >= until {
			break
		}
		if g := iv.start - prev; g > gap {
			gap, at = g, iv.start
		}
		if iv.end > prev {
			prev = iv.end
		}
	}
	if g := until - prev; g > gap {
		gap, at = g, until
	}
	return gap, at
}

// MaxGapObserved reports the largest no-service gap of any Hog vCPU in
// the quiet prefix (for soak reporting).
func MaxGapObserved(a *Artifacts) int64 {
	quiet := a.Scenario.QuietEnd()
	runs := runningIntervals(a.Records, len(a.M.VCPUs), Horizon)
	var worst int64
	for v := range hogGuarantees(a) {
		if g, _ := observedMaxGap(runs[v], quiet); g > worst {
			worst = g
		}
	}
	return worst
}

// CheckConservation verifies that no vCPU is lost or double-run across
// the whole run — table switches, degraded-mode adoption, and replans
// included — and that physical time is conserved:
//
//   - the runstate record stream is a legal state machine per vCPU
//     (each transition's old state matches the tracked state; a
//     dispatch while already Running is a double-run);
//   - no two vCPUs occupy one pCPU simultaneously;
//   - per pCPU, busy + idle + overhead exactly equals the horizon, and
//     total vCPU runtime equals total pCPU busy time;
//   - in fail-stop-free runs, every Hog vCPU is still receiving
//     service at the end (not silently dropped by an adoption).
func CheckConservation(a *Artifacts) []Violation {
	var out []Violation

	state := make([]int64, len(a.M.VCPUs))
	for i := range state {
		state[i] = trace.StateRunnable
	}
	occupant := make(map[uint16]int32)
	for i := range a.Records {
		r := &a.Records[i]
		if r.Type != trace.EvRunstateChange {
			continue
		}
		v := int(r.VCPU)
		if v < 0 || v >= len(state) {
			out = append(out, Violation{ClassConservation, -1, fmt.Sprintf(
				"runstate record for unknown vcpu %d at %d ns", r.VCPU, r.Time)})
			continue
		}
		if r.Arg0 != state[v] {
			out = append(out, Violation{ClassConservation, v, fmt.Sprintf(
				"at %d ns: transition claims old state %s but tracked state is %s",
				r.Time, trace.StateName(r.Arg0), trace.StateName(state[v]))})
		}
		if r.Arg1 == trace.StateRunning {
			if state[v] == trace.StateRunning {
				out = append(out, Violation{ClassConservation, v, fmt.Sprintf(
					"at %d ns: dispatched while already running (double-run)", r.Time)})
			}
			if prev, ok := occupant[r.CPU]; ok && prev != r.VCPU {
				out = append(out, Violation{ClassConservation, v, fmt.Sprintf(
					"at %d ns: dispatched on cpu %d still occupied by vcpu %d", r.Time, r.CPU, prev)})
			}
			occupant[r.CPU] = r.VCPU
		} else if state[v] == trace.StateRunning {
			if prev, ok := occupant[r.CPU]; ok && prev == r.VCPU {
				delete(occupant, r.CPU)
			}
		}
		state[v] = r.Arg1
	}

	var busy, run int64
	for _, cpu := range a.M.CPUs {
		sum := cpu.BusyTime + cpu.IdleTime + cpu.OverheadTime
		if sum != Horizon {
			out = append(out, Violation{ClassConservation, -1, fmt.Sprintf(
				"cpu %d: busy %d + idle %d + overhead %d = %d ns != horizon %d ns",
				cpu.ID, cpu.BusyTime, cpu.IdleTime, cpu.OverheadTime, sum, Horizon)})
		}
		busy += cpu.BusyTime
	}
	for _, v := range a.M.VCPUs {
		run += v.RunTime
	}
	if run != busy {
		out = append(out, Violation{ClassConservation, -1, fmt.Sprintf(
			"total vcpu runtime %d ns != total pcpu busy time %d ns", run, busy)})
	}

	if !a.Scenario.HasFaultKind(faults.KindPCPUFailStop) {
		out = append(out, checkNotLost(a)...)
	}
	return out
}

// checkNotLost flags Hog vCPUs with no service near the end of the
// run: a vCPU silently dropped across a table switch would go dark
// even though its guarantee promises service every window.
func checkNotLost(a *Artifacts) []Violation {
	var out []Violation
	runs := runningIntervals(a.Records, len(a.M.VCPUs), Horizon)
	// The generator's (util, goal) menu bounds every period — initial
	// or replanned — at 25 ms, so any 50 ms tail contains at least one
	// complete guarantee window under whichever table is active.
	const maxMenuPeriod = 25_000_000
	cutoff := int64(Horizon - 2*maxMenuPeriod)
	if cutoff <= 0 {
		return nil
	}
	// Slots the churn storm touches may legitimately be dark at the end
	// (departed, or an arrival the host refused), and so may slots a
	// committed shed deactivated to admit an LS arrival; the continuity
	// oracle owns their epoch-to-epoch story. Untouched residents must
	// still be receiving service.
	churned := a.Scenario.churnedSlots()
	shed := shedSlots(a)
	for v := range hogGuarantees(a) {
		if churned[v] || shed[v] {
			continue
		}
		if serviceIn(runs[v], cutoff, Horizon) == 0 {
			out = append(out, Violation{ClassConservation, v, fmt.Sprintf(
				"no service in final [%d,%d) ns — vcpu lost across a table switch?", cutoff, Horizon)})
		}
	}
	return out
}

// shedSlots returns the slots some committed shed deactivated at any
// point in the run (empty for controller-free runs).
func shedSlots(a *Artifacts) map[int]bool {
	var out map[int]bool
	for _, ct := range a.Transitions {
		for _, op := range ct.Tr.Committed {
			if op.Shed {
				if out == nil {
					out = make(map[int]bool)
				}
				out[op.Slot] = true
			}
		}
	}
	return out
}

// CheckTraceConsistency verifies that the three views of the run agree:
// the live tracer's metrics, the metrics re-derived from the encoded
// and decoded TBTRACE1 dump, and the machine's ground-truth
// accounting. It also demands the rings dropped nothing — an oracle
// replaying a partial trace would be checking partial invariants.
func CheckTraceConsistency(a *Artifacts) []Violation {
	var out []Violation
	if lost := a.Dump.Lost(); lost != 0 {
		out = append(out, Violation{ClassTraceConsistency, -1, fmt.Sprintf(
			"%d records lost to ring overwrite — resize runRingSize", lost)})
	}

	dm := trace.Analyze(a.Dump)
	lm := a.Live
	cmp := func(what string, live, dump int64) {
		if live != dump {
			out = append(out, Violation{ClassTraceConsistency, -1, fmt.Sprintf(
				"%s: live %d != dump %d", what, live, dump)})
		}
	}
	cmp("table switches", lm.TableSwitches, dm.TableSwitches)
	cmp("planner calls", lm.PlannerCalls, dm.PlannerCalls)
	cmp("ipis sent", lm.IPIsSent, dm.IPIsSent)
	cmp("ipis dropped", lm.IPIsDropped, dm.IPIsDropped)
	cmp("ipis delayed", lm.IPIsDelayed, dm.IPIsDelayed)
	cmp("faults injected", lm.FaultsInjected, dm.FaultsInjected)
	cmp("context switches", lm.ContextSwitches, dm.ContextSwitches)
	if len(lm.VMs) != len(dm.VMs) {
		out = append(out, Violation{ClassTraceConsistency, -1, fmt.Sprintf(
			"vcpu count: live %d != dump %d", len(lm.VMs), len(dm.VMs))})
		return out
	}
	for v := range lm.VMs {
		lv, dv := &lm.VMs[v], &dm.VMs[v]
		vcmp := func(what string, live, dump int64) {
			if live != dump {
				out = append(out, Violation{ClassTraceConsistency, v, fmt.Sprintf(
					"%s: live %d != dump %d", what, live, dump)})
			}
		}
		vcmp("run ns", lv.RunNs, dv.RunNs)
		vcmp("runnable ns", lv.RunnableNs, dv.RunnableNs)
		vcmp("blocked ns", lv.BlockedNs, dv.BlockedNs)
		vcmp("context switches", lv.ContextSwitches, dv.ContextSwitches)
		vcmp("wakeups", lv.Wakeups, dv.Wakeups)
		vcmp("l2 picks", lv.L2Picks, dv.L2Picks)
		vcmp("latency samples", lv.SchedLatency.Count(), dv.SchedLatency.Count())
		vcmp("latency max", lv.SchedLatency.Max(), dv.SchedLatency.Max())
		vcmp("latency p50", lv.SchedLatency.Quantile(0.5), dv.SchedLatency.Quantile(0.5))
		vcmp("latency p99", lv.SchedLatency.Quantile(0.99), dv.SchedLatency.Quantile(0.99))
	}

	out = append(out, checkGroundTruth(a, dm)...)
	return out
}

// checkGroundTruth compares dump-derived metrics against the machine's
// own accounting. A stall fault charges its outage as asynchronous
// overhead without a runstate transition, so the running-time equality
// is only exact in stall-free runs; the residency partition of each
// vCPU's timeline holds regardless.
func checkGroundTruth(a *Artifacts, dm *trace.Metrics) []Violation {
	var out []Violation
	strictRun := !a.Scenario.HasFaultKind(faults.KindPCPUStall)
	for v := range dm.VMs {
		vm := &dm.VMs[v]
		mv := a.M.VCPUs[v]
		if strictRun && vm.RunNs != mv.RunTime {
			out = append(out, Violation{ClassTraceConsistency, v, fmt.Sprintf(
				"trace run %d ns != machine runtime %d ns", vm.RunNs, mv.RunTime)})
		}
		if vm.Wakeups != mv.Wakeups {
			out = append(out, Violation{ClassTraceConsistency, v, fmt.Sprintf(
				"trace wakeups %d != machine wakeups %d", vm.Wakeups, mv.Wakeups)})
		}
		if mv.State != vmm.Dead {
			if sum := vm.RunNs + vm.RunnableNs + vm.BlockedNs; sum != Horizon {
				out = append(out, Violation{ClassTraceConsistency, v, fmt.Sprintf(
					"residency run %d + runnable %d + blocked %d = %d ns != horizon %d ns",
					vm.RunNs, vm.RunnableNs, vm.BlockedNs, sum, Horizon)})
			}
		}
	}
	return out
}
