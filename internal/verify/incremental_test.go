package verify

import (
	"sort"
	"testing"

	"tableau/internal/core"
	"tableau/internal/dispatch"
	"tableau/internal/planner"
	"tableau/internal/table"
)

// nullSink accepts every staged table; the equivalence tests drive the
// Controller directly (no machine), so there is nothing to adopt.
type nullSink struct{}

func (nullSink) PushTable(*table.Table) error { return nil }

// churnEpochs replays a scenario's churn storm through a Controller
// without the simulator: bursts are submitted and flushed in time
// order, exactly like the run harness does from engine callbacks. With
// scratch set every plan is computed from nothing; otherwise the
// production fast paths (cache, incremental replanning, speculation)
// are armed, as in Run.
func churnEpochs(t *testing.T, sc *Scenario, scratch bool) []core.Epoch {
	t.Helper()
	sys := core.NewSystem(sc.Cores, planner.Options{}, dispatch.Options{})
	if !scratch {
		sys.Cache = planner.NewCache(0)
		sys.Incremental = true
	}
	for slot := 0; slot < sc.NumSlots(); slot++ {
		vm := sc.VM(slot)
		id, err := sys.AddVM(core.VMConfig{
			Name: vm.Name, Util: vm.Util, LatencyGoal: vm.LatencyGoal, Capped: vm.Capped,
		})
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if slot >= len(sc.VMs) {
			if err := sys.SetActive(id, false); err != nil {
				t.Fatalf("%s: %v", sc, err)
			}
		}
	}
	_, res, err := sys.Plan()
	if err != nil {
		t.Fatalf("%s: initial plan: %v", sc, err)
	}
	ctrl, err := core.NewController(sys, nullSink{}, res)
	if err != nil {
		t.Fatalf("%s: %v", sc, err)
	}
	if !scratch {
		ctrl.SpeculateNext = 2
	}
	for i := 0; i < len(sc.Churn); {
		j := i
		for j < len(sc.Churn) && sc.Churn[j].At == sc.Churn[i].At {
			j++
		}
		for _, op := range sc.Churn[i:j] {
			kind := core.OpDeactivate
			if op.Activate {
				kind = core.OpActivate
			}
			ctrl.Submit(core.Op{Kind: kind, Slot: op.Slot})
		}
		if _, err := ctrl.Flush(); err != nil {
			t.Fatalf("%s: flush at %d: %v", sc, sc.Churn[i].At, err)
		}
		i = j
	}
	return ctrl.History()
}

// sortedGuarantees returns a copy ordered by vCPU id.
func sortedGuarantees(gs []table.Guarantee) []table.Guarantee {
	out := append([]table.Guarantee(nil), gs...)
	sort.Slice(out, func(i, j int) bool { return out[i].VCPU < out[j].VCPU })
	return out
}

// TestIncrementalScratchEquivalence is the satellite determinism pin:
// over 200 seeded churn storms, the incremental pipeline (slice reuse,
// dirty-core diffing, speculation) must commit epoch-for-epoch the same
// guarantees as scratch replanning, and every incremental table must
// pass table.Check against the scratch run's guarantees. Tables may
// legitimately differ in layout — the pinned partition is not the WFD
// partition — but never in what they promise or deliver.
func TestIncrementalScratchEquivalence(t *testing.T) {
	n := int64(200)
	if testing.Short() {
		n = 50
	}
	cfg := Config{ChurnPct: 100}
	checked := 0
	for seed := int64(1); seed <= n; seed++ {
		sc := Generate(seed, cfg)
		if len(sc.Churn) == 0 {
			continue
		}
		checked++
		inc := churnEpochs(t, sc, false)
		scr := churnEpochs(t, sc, true)
		if len(inc) != len(scr) {
			t.Errorf("seed %d (%s): %d incremental epochs vs %d scratch", seed, sc, len(inc), len(scr))
			continue
		}
		for k := range inc {
			if inc[k].Version != scr[k].Version {
				t.Errorf("seed %d: epoch %d version %d (incremental) vs %d (scratch)",
					seed, k, inc[k].Version, scr[k].Version)
				continue
			}
			ig, sg := sortedGuarantees(inc[k].Guarantees), sortedGuarantees(scr[k].Guarantees)
			if len(ig) != len(sg) {
				t.Errorf("seed %d epoch %d: %d guarantees (incremental) vs %d (scratch)",
					seed, inc[k].Version, len(ig), len(sg))
				continue
			}
			for x := range ig {
				if ig[x] != sg[x] {
					t.Errorf("seed %d epoch %d: guarantee mismatch: %+v (incremental) vs %+v (scratch)",
						seed, inc[k].Version, ig[x], sg[x])
				}
			}
			if err := inc[k].Table.Check(sg); err != nil {
				t.Errorf("seed %d epoch %d: incremental table fails scratch guarantees: %v",
					seed, inc[k].Version, err)
			}
		}
	}
	if checked < int(n)*3/4 {
		t.Fatalf("only %d/%d seeds produced churn at ChurnPct=100", checked, n)
	}
}

// TestMutationSmokeStaleSliceReuse proves the epoch-fidelity oracle
// earns its keep against the planner defect the evict oracle cannot
// see: UnsafeStaleSliceReuse treats a reconfigured VM as untouched and
// re-plans it from its stale pre-reconfiguration spec. The resulting
// epoch is completely self-consistent — its table passes Check against
// its own guarantees, nobody loses a guarantee, the trace agrees — and
// only the committed OpReconfigure's obligations reveal the lie.
//
// vm1's latency goal tightens from 20 ms to 5 ms mid-run. The correct
// incremental planner marks vm1 dirty and re-synthesizes its core; the
// defective one pins it with the stale 20 ms reservation.
func TestMutationSmokeStaleSliceReuse(t *testing.T) {
	sc := &Scenario{
		Seed:  11,
		Cores: 2,
		VMs: []VMSpec{
			{Name: "vm0.0", Util: planner.Util{Num: 1, Den: 2}, LatencyGoal: 20_000_000, Capped: true},
			{Name: "vm1.0", Util: planner.Util{Num: 1, Den: 4}, LatencyGoal: 20_000_000, Capped: true},
		},
		Spares: []VMSpec{
			{Name: "spare0.0", Util: planner.Util{Num: 1, Den: 4}, LatencyGoal: 20_000_000, Capped: true},
		},
		Churn:  []ChurnOp{{At: 40_000_000, Slot: 2, Activate: true}},
		Replan: &ReplanSpec{At: 60_000_000, Slot: 1, NewGoal: 5_000_000},
	}

	clean, err := runWith(sc, runKnobs{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := CheckAll(clean); len(vs) != 0 {
		t.Fatalf("correct incremental planner flagged: %v", vs)
	}
	if len(clean.Transitions) != 2 {
		t.Fatalf("expected 2 transitions (arrival, reconfigure), got %+v", clean.Transitions)
	}

	evil, err := runWith(sc, runKnobs{staleSlice: true})
	if err != nil {
		t.Fatal(err)
	}
	// The defect must have actually fired: the reconfiguration still
	// committed an epoch (history: initial, arrival, reconfigure).
	if len(evil.Controller.History()) < 3 {
		t.Fatalf("stale-reuse defect did not install the reconfiguration epoch (history %d)",
			len(evil.Controller.History()))
	}
	found := false
	for _, v := range CheckAll(evil) {
		if v.Class == ClassContinuity {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("epoch-fidelity oracle missed the stale reservation")
	}
}
