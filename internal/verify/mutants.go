package verify

import (
	"tableau/internal/trace"
	"tableau/internal/vmm"
)

// This file holds intentionally broken scheduler variants. Each wraps
// the real dispatcher and corrupts exactly one behaviour; the
// mutation-smoke tests (make mutation-smoke) run them through the
// oracles to prove every oracle class actually catches the bug family
// it claims to — a verification harness that cannot fail is not
// verifying anything.

// mutantBase forwards the full Scheduler surface — including the
// optional deschedule and core-failure observer extensions the
// dispatcher relies on for its IPI and degraded-mode protocols — so a
// mutant perturbs only what it overrides.
type mutantBase struct {
	inner vmm.Scheduler
	m     *vmm.Machine
}

func (b *mutantBase) Name() string { return "mutant-" + b.inner.Name() }
func (b *mutantBase) Attach(m *vmm.Machine) {
	b.m = m
	b.inner.Attach(m)
}
func (b *mutantBase) PickNext(cpu *vmm.PCPU, now int64) vmm.Decision {
	return b.inner.PickNext(cpu, now)
}
func (b *mutantBase) OnWake(v *vmm.VCPU, now int64)  { b.inner.OnWake(v, now) }
func (b *mutantBase) OnBlock(v *vmm.VCPU, now int64) { b.inner.OnBlock(v, now) }
func (b *mutantBase) OnDeschedule(v *vmm.VCPU, cpu *vmm.PCPU, now int64) {
	if o, ok := b.inner.(vmm.DescheduleObserver); ok {
		o.OnDeschedule(v, cpu, now)
	}
}
func (b *mutantBase) OnCoreFail(c int, now int64) {
	if o, ok := b.inner.(vmm.CoreFailureObserver); ok {
		o.OnCoreFail(c, now)
	}
}

// starveMutant suppresses every dispatch of the victim vCPU: the
// scheduler "forgets" one VM. The utilization oracle (and the
// conservation lost-check) must flag this.
type starveMutant struct {
	mutantBase
	victim int
}

func newStarveMutant(inner vmm.Scheduler, victim int) *starveMutant {
	return &starveMutant{mutantBase{inner: inner}, victim}
}

func (s *starveMutant) PickNext(cpu *vmm.PCPU, now int64) vmm.Decision {
	d := s.inner.PickNext(cpu, now)
	if d.VCPU != nil && d.VCPU.ID == s.victim {
		// Idle through the victim's reservation instead of running it,
		// re-invoking at the interval boundary the dispatcher chose.
		s.OnDeschedule(d.VCPU, cpu, now)
		return vmm.Decision{VCPU: nil, Until: d.Until}
	}
	return d
}

// delayMutant postpones every dispatch of the victim by the given
// delay: each time the table offers the victim its reservation, the
// core idles for delayNs first. With a delay comparable to the
// latency goal this stretches observed scheduling gaps past the
// blackout bound — the max-gap oracle's defect class.
type delayMutant struct {
	mutantBase
	victim  int
	delayNs int64
	pending int64 // end of the injected idle window, 0 when none
}

func newDelayMutant(inner vmm.Scheduler, victim int, delayNs int64) *delayMutant {
	return &delayMutant{mutantBase{inner: inner}, victim, delayNs, 0}
}

func (d *delayMutant) PickNext(cpu *vmm.PCPU, now int64) vmm.Decision {
	dec := d.inner.PickNext(cpu, now)
	if dec.VCPU == nil || dec.VCPU.ID != d.victim {
		return dec
	}
	if d.pending == 0 {
		d.pending = now + d.delayNs
	}
	if now < d.pending {
		// Idle through the injected window; the victim runs only once
		// the full delay has elapsed.
		d.OnDeschedule(dec.VCPU, cpu, now)
		return vmm.Decision{VCPU: nil, Until: d.pending}
	}
	d.pending = 0
	return dec
}

// phantomMutant emits fabricated runstate records for the victim — a
// tracer bug claiming dispatches that never happened. The conservation
// oracle's state machine must reject the stream (double-run /
// old-state mismatch), and the trace-consistency oracle must see
// trace-derived runtime drift from the machine's accounting.
type phantomMutant struct {
	mutantBase
	victim int
	every  int
	n      int
}

func newPhantomMutant(inner vmm.Scheduler, victim, every int) *phantomMutant {
	return &phantomMutant{mutantBase{inner: inner}, victim, every, 0}
}

func (p *phantomMutant) PickNext(cpu *vmm.PCPU, now int64) vmm.Decision {
	p.n++
	if p.n%p.every == 0 {
		p.m.Tracer().Emit(trace.EvRunstateChange, cpu.ID, now, p.victim,
			trace.StateRunnable, trace.StateRunning)
	}
	return p.inner.PickNext(cpu, now)
}
