package verify

import (
	"fmt"
	"sort"

	"tableau/internal/core"
	"tableau/internal/fleet"
)

// ClassFleet marks cross-host continuity findings: every admitted VM
// is live on exactly one host at every epoch seam, and each host's
// epoch history tracks its committed placement ledger exactly.
const ClassFleet = "fleet"

// CheckFleet is the fleet arbitration oracle. Per host it replays the
// committed-op ledger against the controller's epoch history: versions
// must increase strictly, ledger commits and installed epochs must
// correspond one-to-one in order, and after each commit the epoch's
// guarantee-holding slot set must equal the replayed active set (the
// resident slot 0 included) — which also proves every slot live across
// an epoch seam held a guarantee on both sides. Across hosts it merges
// all ledgers by the arbiter's global commit sequence and replays
// placements, departures, and sheds: a VM placed while live anywhere,
// or departed/shed from a host that does not hold it, is a violation;
// at the end the replayed owner map must equal the arbiter's registry.
func CheckFleet(a *fleet.Arbiter) []Violation {
	var out []Violation
	v := func(format string, args ...any) {
		out = append(out, Violation{Class: ClassFleet, VCPU: -1, Detail: fmt.Sprintf(format, args...)})
	}

	type seqCommit struct {
		host int
		c    fleet.Commit
	}
	var all []seqCommit
	seqOwner := make(map[uint64]int)
	for _, h := range a.Hosts() {
		ledger := h.Ledger()
		checkHostContinuity(h.ID(), ledger, h.History(), v)
		for _, c := range ledger {
			if prev, dup := seqOwner[c.Seq]; dup {
				v("commit seq %d issued to both host %d and host %d", c.Seq, prev, h.ID())
			}
			seqOwner[c.Seq] = h.ID()
			all = append(all, seqCommit{h.ID(), c})
		}
	}

	sort.Slice(all, func(i, j int) bool { return all[i].c.Seq < all[j].c.Seq })
	owner := make(map[string]int)
	for _, sc := range all {
		for _, name := range sc.c.Placed {
			if oh, live := owner[name]; live {
				v("VM %q placed on host %d while live on host %d (seq %d)", name, sc.host, oh, sc.c.Seq)
			}
			owner[name] = sc.host
		}
		for _, name := range sc.c.Departed {
			oh, live := owner[name]
			switch {
			case !live:
				v("VM %q departed host %d while not live anywhere (seq %d)", name, sc.host, sc.c.Seq)
			case oh != sc.host:
				v("VM %q departed host %d but lives on host %d (seq %d)", name, sc.host, oh, sc.c.Seq)
			default:
				delete(owner, name)
			}
		}
		// A shed is a host-initiated departure: the victim must have been
		// live on exactly the shedding host, and is gone afterwards.
		for _, name := range sc.c.Shed {
			oh, live := owner[name]
			switch {
			case !live:
				v("VM %q shed from host %d while not live anywhere (seq %d)", name, sc.host, sc.c.Seq)
			case oh != sc.host:
				v("VM %q shed from host %d but lives on host %d (seq %d)", name, sc.host, oh, sc.c.Seq)
			default:
				delete(owner, name)
			}
		}
	}

	asg := a.Assignments()
	for name, h := range asg {
		oh, live := owner[name]
		switch {
		case !live:
			v("registry holds VM %q on host %d but the ledgers say it is not live", name, h)
		case oh != h:
			v("registry holds VM %q on host %d but the ledgers say host %d", name, h, oh)
		}
	}
	for name, h := range owner {
		if _, ok := asg[name]; !ok {
			v("VM %q live on host %d by the ledgers but absent from the registry", name, h)
		}
	}
	return out
}

// checkHostContinuity replays one host's ledger against its epoch
// history. Slot 0 is the resident system VM, active from epoch 1 on.
func checkHostContinuity(host int, ledger []fleet.Commit, hist []core.Epoch, v func(string, ...any)) {
	if len(hist) == 0 {
		v("host %d has no epoch history", host)
		return
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Version <= hist[i-1].Version {
			v("host %d epoch versions not strictly increasing: %d after %d", host, hist[i].Version, hist[i-1].Version)
		}
	}
	if len(hist)-1 != len(ledger) {
		v("host %d installed %d epochs after the initial one but committed %d ledger entries", host, len(hist)-1, len(ledger))
		return
	}

	active := map[int]bool{0: true}
	check := func(ep core.Epoch, when string) {
		held := make(map[int]bool, len(ep.Guarantees))
		for _, g := range ep.Guarantees {
			if held[g.VCPU] {
				v("host %d epoch %d holds duplicate guarantees for slot %d", host, ep.Version, g.VCPU)
			}
			held[g.VCPU] = true
		}
		for slot := range active {
			if !held[slot] {
				v("host %d epoch %d (%s): live slot %d lost its guarantee", host, ep.Version, when, slot)
			}
		}
		for slot := range held {
			if !active[slot] {
				v("host %d epoch %d (%s): slot %d holds a guarantee but no committed op activated it", host, ep.Version, when, slot)
			}
		}
	}
	check(hist[0], "initial")
	for i, c := range ledger {
		ep := hist[i+1]
		if c.Version != ep.Version {
			v("host %d ledger commit %d installed version %d but the epoch history has %d", host, i, c.Version, ep.Version)
			return
		}
		for _, op := range c.Ops {
			switch op.Kind {
			case core.OpActivate:
				if active[op.Slot] {
					v("host %d commit seq %d activates slot %d twice", host, c.Seq, op.Slot)
				}
				active[op.Slot] = true
			case core.OpDeactivate:
				if !active[op.Slot] {
					v("host %d commit seq %d deactivates inactive slot %d", host, c.Seq, op.Slot)
				}
				delete(active, op.Slot)
			}
		}
		check(ep, "after commit")
	}
}
