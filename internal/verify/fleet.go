package verify

import (
	"bytes"
	"fmt"
	"sort"

	"tableau/internal/core"
	"tableau/internal/fleet"
	"tableau/internal/journal"
)

// ClassFleet marks cross-host continuity findings: every admitted VM
// is live on exactly one host at every epoch seam — including the
// failure seams — and each host's epoch history tracks its committed
// placement ledger exactly.
const ClassFleet = "fleet"

// CheckFleet is the fleet arbitration oracle, extended across the
// failure seam. Per host it replays the committed-op ledger against
// the controller's epoch history, treating crash/recover/evacuate
// ledger entries as first-class seam events:
//
//   - versions increase strictly within every segment, and a rejoin
//     version strictly exceeds everything the journal ever carried, so
//     no pre-crash snapshot can silently double-apply;
//   - at a crash seam the frozen journal image must fold to exactly
//     the acked commit stream, plus at most one durable-but-unacked
//     record — whose slot is the recover seam's reconciled ghost;
//   - a recovered host's epoch history must be bit-identical to the
//     independent replay of the crash seam's image (the journal is the
//     ground truth, not the recovering code);
//   - ghost and freed slots claimed by the recover seam must equal the
//     journal-vs-memory delta the oracle computes itself.
//
// Across hosts it merges all ledgers by the arbiter's global commit
// sequence and replays placements, departures, sheds and seams: a VM
// placed while live anywhere (the no-double-placement guarantee — a
// reconciled ghost must never also count as placed), a recover seam
// whose survivors differ from the replayed occupancy, an evacuation
// that misses or invents a displaced VM, a lost VM that resurrects, or
// a best-effort evacuee re-placed before the last latency-sensitive
// one of its seam are all violations; at the end the replayed owner
// map must equal the arbiter's registry in both directions, and every
// evacuee must be re-placed, shed, or explicitly lost.
func CheckFleet(a *fleet.Arbiter) []Violation {
	var out []Violation
	v := func(format string, args ...any) {
		out = append(out, Violation{Class: ClassFleet, VCPU: -1, Detail: fmt.Sprintf(format, args...)})
	}

	type seqCommit struct {
		host int
		c    fleet.Commit
	}
	var all []seqCommit
	seqOwner := make(map[uint64]int)
	for _, h := range a.Hosts() {
		ledger := h.Ledger()
		checkHostContinuity(h.ID(), ledger, h.History(), v)
		for _, c := range ledger {
			if prev, dup := seqOwner[c.Seq]; dup {
				v("commit seq %d issued to both host %d and host %d", c.Seq, prev, h.ID())
			}
			seqOwner[c.Seq] = h.ID()
			all = append(all, seqCommit{h.ID(), c})
		}
	}

	sort.Slice(all, func(i, j int) bool { return all[i].c.Seq < all[j].c.Seq })
	owner := make(map[string]int)
	lost := make(map[string]bool)
	pendingEvac := make(map[string]bool)
	// Per evacuation seam, the re-placement Seq extremes of its LS and
	// BE evacuees: LS-first demands every LS re-placement precede every
	// BE one of the same seam.
	type evacWatch struct {
		host         int
		seq          uint64
		ls, be       map[string]bool
		maxLS, minBE uint64
	}
	var watches []*evacWatch
	ownedBy := func(host int) map[string]bool {
		set := make(map[string]bool)
		for name, h := range owner {
			if h == host {
				set[name] = true
			}
		}
		return set
	}
	for _, sc := range all {
		c := sc.c
		switch c.Event {
		case "crash":
			// The seam freezes the image; occupancy is unchanged (the
			// crashing batch rolled back).
		case "recover":
			// Journal-committed departures the crash swallowed: each must
			// have been live here.
			for _, name := range c.Departed {
				oh, live := owner[name]
				switch {
				case !live:
					v("VM %q resolved as departed by host %d's recovery while not live anywhere (seq %d)", name, sc.host, c.Seq)
				case oh != sc.host:
					v("VM %q resolved as departed by host %d's recovery but lives on host %d (seq %d)", name, sc.host, oh, c.Seq)
				default:
					delete(owner, name)
				}
			}
			// The survivors must be exactly the replayed occupancy: nothing
			// vanishes or appears across a recovery.
			held := ownedBy(sc.host)
			for _, name := range c.Recovered {
				if !held[name] {
					v("host %d recovery claims survivor %q the replay does not place there (seq %d)", sc.host, name, c.Seq)
				}
				delete(held, name)
			}
			for name := range held {
				v("VM %q live on host %d by the replay but missing from its recovery survivors (seq %d)", name, sc.host, c.Seq)
			}
		case "evacuate":
			evacuees := make(map[string]bool, len(c.EvacLS)+len(c.EvacBE))
			w := &evacWatch{host: sc.host, seq: c.Seq, ls: make(map[string]bool), be: make(map[string]bool), minBE: ^uint64(0)}
			for _, name := range c.EvacLS {
				evacuees[name] = true
				w.ls[name] = true
			}
			for _, name := range c.EvacBE {
				evacuees[name] = true
				w.be[name] = true
			}
			held := ownedBy(sc.host)
			for name := range evacuees {
				if !held[name] {
					v("host %d evacuation lists %q which the replay does not place there (seq %d)", sc.host, name, c.Seq)
				}
				delete(owner, name)
				pendingEvac[name] = true
			}
			for name := range held {
				if !evacuees[name] {
					v("VM %q live on dead host %d but missing from its evacuation (seq %d)", name, sc.host, c.Seq)
				}
			}
			for _, name := range c.Lost {
				if !evacuees[name] {
					v("host %d evacuation loses %q it never displaced (seq %d)", sc.host, name, c.Seq)
				}
				lost[name] = true
				delete(pendingEvac, name)
			}
			watches = append(watches, w)
		default:
			for _, name := range c.Placed {
				if oh, live := owner[name]; live {
					v("VM %q placed on host %d while live on host %d (seq %d)", name, sc.host, oh, c.Seq)
				}
				if lost[name] {
					v("VM %q placed on host %d after being recorded lost (seq %d)", name, sc.host, c.Seq)
				}
				owner[name] = sc.host
				delete(pendingEvac, name)
				// Only the first re-placement counts toward a seam's wave
				// order: a later crash may displace the evacuee again under a
				// different seam's waves.
				for _, w := range watches {
					if c.Seq <= w.seq {
						continue
					}
					if w.ls[name] {
						delete(w.ls, name)
						if c.Seq > w.maxLS {
							w.maxLS = c.Seq
						}
					}
					if w.be[name] {
						delete(w.be, name)
						if c.Seq < w.minBE {
							w.minBE = c.Seq
						}
					}
				}
			}
			for _, name := range c.Departed {
				oh, live := owner[name]
				switch {
				case !live:
					v("VM %q departed host %d while not live anywhere (seq %d)", name, sc.host, c.Seq)
				case oh != sc.host:
					v("VM %q departed host %d but lives on host %d (seq %d)", name, sc.host, oh, c.Seq)
				default:
					delete(owner, name)
				}
			}
			// A shed is a host-initiated departure: the victim must have been
			// live on exactly the shedding host, and is gone afterwards.
			for _, name := range c.Shed {
				oh, live := owner[name]
				switch {
				case !live:
					v("VM %q shed from host %d while not live anywhere (seq %d)", name, sc.host, c.Seq)
				case oh != sc.host:
					v("VM %q shed from host %d but lives on host %d (seq %d)", name, sc.host, oh, c.Seq)
				default:
					delete(owner, name)
					// An evacuee shed elsewhere to make room is resolved: it is
					// accounted as shed, not silently dropped.
					delete(pendingEvac, name)
				}
			}
		}
	}
	for _, w := range watches {
		if w.maxLS != 0 && w.minBE != ^uint64(0) && w.minBE < w.maxLS {
			v("host %d evacuation re-placed a best-effort evacuee (seq %d) before its last latency-sensitive one (seq %d)", w.host, w.minBE, w.maxLS)
		}
	}
	for name := range pendingEvac {
		v("evacuee %q neither re-placed, shed, nor recorded lost", name)
	}

	asg := a.Assignments()
	for name, h := range asg {
		oh, live := owner[name]
		switch {
		case !live:
			v("registry holds VM %q on host %d but the ledgers say it is not live", name, h)
		case oh != h:
			v("registry holds VM %q on host %d but the ledgers say host %d", name, h, oh)
		}
	}
	for name, h := range owner {
		if _, ok := asg[name]; !ok {
			v("VM %q live on host %d by the ledgers but absent from the registry", name, h)
		}
	}
	return out
}

// expectEpoch is one epoch the history must hold: its version, the
// slots that must hold guarantees, and — for epochs adopted from a
// crash seam's journal image — the exact table bytes.
type expectEpoch struct {
	version uint64
	active  map[int]bool
	bytes   []byte // non-nil: journal-replay prefix, compare bit-for-bit
}

// checkHostContinuity replays one host's ledger against its epoch
// history, segment by segment across failure seams. Slot 0 is the
// resident system VM, active from epoch 1 on.
func checkHostContinuity(host int, ledger []fleet.Commit, hist []core.Epoch, v func(string, ...any)) {
	if len(hist) == 0 {
		v("host %d has no epoch history", host)
		return
	}

	active := map[int]bool{0: true}
	cloneActive := func() map[int]bool {
		m := make(map[int]bool, len(active))
		for s := range active {
			m[s] = true
		}
		return m
	}
	expect := []expectEpoch{{version: hist[0].Version, active: cloneActive()}}
	last := func() uint64 { return expect[len(expect)-1].version }

	applyOps := func(c fleet.Commit) {
		for _, op := range c.Ops {
			switch op.Kind {
			case core.OpActivate:
				if active[op.Slot] {
					v("host %d commit seq %d activates slot %d twice", host, c.Seq, op.Slot)
				}
				active[op.Slot] = true
			case core.OpDeactivate:
				if !active[op.Slot] {
					v("host %d commit seq %d deactivates inactive slot %d", host, c.Seq, op.Slot)
				}
				delete(active, op.Slot)
			}
		}
	}

	down, dead := false, false
	var pendingFolded []journal.EpochRecord // folded crash image, nil for fail-stop
	var pendingMax uint64                   // max version across the raw image records
	for _, c := range ledger {
		switch c.Event {
		case "crash":
			if down || dead {
				v("host %d crash seam (seq %d) while already down or dead", host, c.Seq)
				return
			}
			down = true
			if c.Version != last() {
				v("host %d crash seam froze version %d but the replayed version is %d", host, c.Version, last())
			}
			pendingFolded, pendingMax = nil, 0
			if c.Image == nil {
				continue
			}
			rep, err := journal.DecodeAll(c.Image)
			if err != nil || len(rep.Records) == 0 {
				v("host %d crash seam image does not decode: %v", host, err)
				continue
			}
			for _, rec := range rep.Records {
				if rec.Version > pendingMax {
					pendingMax = rec.Version
				}
			}
			pendingFolded = journal.FoldEpochs(rep.Records)
			// The image must fold to the acked commit stream, plus at most
			// one durable-but-unacked record.
			n, m := len(pendingFolded), len(expect)
			if n != m && n != m+1 {
				v("host %d crash image folds to %d epochs, want the %d acked (+1 unacked at most)", host, n, m)
				pendingFolded = nil
				continue
			}
			for i := 0; i < m && i < n; i++ {
				if pendingFolded[i].Version != expect[i].version {
					v("host %d crash image epoch %d has version %d, acked stream says %d", host, i, pendingFolded[i].Version, expect[i].version)
				}
			}
			if n == m+1 && pendingFolded[n-1].Version <= last() {
				v("host %d crash image's unacked record has version %d, not past the acked %d", host, pendingFolded[n-1].Version, last())
			}
		case "recover":
			if !down || dead {
				v("host %d recover seam (seq %d) without a preceding crash", host, c.Seq)
				return
			}
			down = false
			if pendingFolded == nil {
				v("host %d recovered from a crash that left no decodable image (seq %d)", host, c.Seq)
				return
			}
			if c.Version <= pendingMax || c.Version <= last() {
				v("host %d rejoin version %d does not exceed the journal's %d / acked %d", host, c.Version, pendingMax, last())
			}
			// The seam's claimed ghost/freed slots must equal the
			// journal-vs-memory delta computed independently here.
			jrec := pendingFolded[len(pendingFolded)-1]
			jact := map[int]bool{}
			for s := 1; s < len(jrec.Slots); s++ {
				if jrec.Slots[s].Active {
					jact[s] = true
				}
			}
			var ghosts, freed []int
			for s := range jact {
				if !active[s] {
					ghosts = append(ghosts, s)
				}
			}
			for s := range active {
				if s != 0 && !jact[s] {
					freed = append(freed, s)
				}
			}
			sort.Ints(ghosts)
			sort.Ints(freed)
			if !sameInts(ghosts, c.GhostSlots) {
				v("host %d recover seam claims ghost slots %v, journal-vs-memory delta says %v", host, c.GhostSlots, ghosts)
			}
			if !sameInts(freed, c.FreedSlots) {
				v("host %d recover seam claims freed slots %v, journal-vs-memory delta says %v", host, c.FreedSlots, freed)
			}
			if len(c.Departed) != len(freed) {
				v("host %d recover seam resolves %d departures for %d freed slots", host, len(c.Departed), len(freed))
			}
			// The recovered history is the folded image verbatim — the
			// bit-identical guarantee — plus the rejoin epoch.
			jact[0] = true
			next := make([]expectEpoch, 0, len(pendingFolded)+1)
			for i := range pendingFolded {
				rec := &pendingFolded[i]
				ra := make(map[int]bool, len(rec.Slots))
				for s, sc := range rec.Slots {
					if sc.Active {
						ra[s] = true
					}
				}
				next = append(next, expectEpoch{version: rec.Version, active: ra, bytes: rec.TableBytes})
			}
			expect = next
			active = jact
			applyOps(c)
			expect = append(expect, expectEpoch{version: c.Version, active: cloneActive()})
			pendingFolded, pendingMax = nil, 0
		case "evacuate":
			if !down || dead {
				v("host %d evacuate seam (seq %d) without a preceding crash", host, c.Seq)
				return
			}
			dead = true
		default:
			if down || dead {
				v("host %d commit seq %d while down or dead", host, c.Seq)
				return
			}
			if c.Version <= last() {
				v("host %d commit seq %d installed version %d, not past %d", host, c.Seq, c.Version, last())
			}
			applyOps(c)
			expect = append(expect, expectEpoch{version: c.Version, active: cloneActive()})
		}
	}

	if len(hist) != len(expect) {
		v("host %d holds %d epochs but the replayed ledger expects %d", host, len(hist), len(expect))
		return
	}
	for i := range hist {
		ep := hist[i]
		want := expect[i]
		if ep.Version != want.version {
			v("host %d epoch %d has version %d, replay expects %d", host, i, ep.Version, want.version)
			continue
		}
		if want.bytes != nil && !bytes.Equal(ep.Bytes, want.bytes) {
			v("host %d epoch %d (version %d) is not bit-identical to the journal replay", host, i, ep.Version)
		}
		held := make(map[int]bool, len(ep.Guarantees))
		for _, g := range ep.Guarantees {
			if held[g.VCPU] {
				v("host %d epoch %d holds duplicate guarantees for slot %d", host, ep.Version, g.VCPU)
			}
			held[g.VCPU] = true
		}
		for slot := range want.active {
			if !held[slot] {
				v("host %d epoch %d: live slot %d lost its guarantee", host, ep.Version, slot)
			}
		}
		for slot := range held {
			if !want.active[slot] {
				v("host %d epoch %d: slot %d holds a guarantee but no committed op activated it", host, ep.Version, slot)
			}
		}
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
