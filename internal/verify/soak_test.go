package verify

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

// parallelForEach is a minimal worker pool matching the contract of
// experiments.ForEach, used to prove soak reports are identical under
// parallel fan-out.
func parallelForEach(workers int) func(n int, fn func(i int) error) error {
	return func(n int, fn func(i int) error) error {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var first error
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if err := fn(i); err != nil {
						mu.Lock()
						if first == nil {
							first = err
						}
						mu.Unlock()
					}
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
		return first
	}
}

// TestSoakDeterminism pins that a soak report is a pure function of
// its options: serial and 4-way-parallel runs must be deeply equal.
func TestSoakDeterminism(t *testing.T) {
	opts := SoakOptions{Seed: 1000, N: 16}
	a, err := Soak(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.ForEach = parallelForEach(4)
	b, err := Soak(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("soak report differs between serial and parallel runs:\n%+v\nvs\n%+v", a, b)
	}
}

// TestSoak500 is the acceptance soak: 500 generated scenarios from a
// fixed seed must pass every invariant oracle (with the differential
// and metamorphic layers sampled along the way). -short runs a 60-
// scenario slice.
func TestSoak500(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 60
	}
	rep, err := Soak(SoakOptions{Seed: 1, N: n, ForEach: parallelForEach(8)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenarios != n {
		t.Fatalf("soaked %d scenarios, want %d", rep.Scenarios, n)
	}
	if rep.Violations != 0 {
		var b strings.Builder
		for _, row := range rep.Rows {
			for _, v := range row.Violations {
				b.WriteString("\n  seed ")
				b.WriteString(Generate(row.Seed, Config{}).String())
				b.WriteString(": ")
				b.WriteString(v)
			}
		}
		t.Fatalf("%d violation(s) in %d scenarios:%s", rep.Violations, n, b.String())
	}

	// The soak must actually exercise the interesting machinery, not
	// just quiet partitioned populations.
	var faults, replans, adopted int
	for _, row := range rep.Rows {
		faults += row.Faults
		replans += row.Replans
		adopted += row.Adopted
	}
	if faults == 0 || replans == 0 || adopted == 0 {
		t.Fatalf("degenerate soak: %d faults, %d replans, %d table adoptions", faults, replans, adopted)
	}
}
