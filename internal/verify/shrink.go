package verify

// Shrinking works by seed bisection over the generator's size bounds
// rather than by mutating a concrete scenario: every candidate is
// re-generated from the SAME seed with a smaller Config, so each
// shrunken repro remains a (seed, Config) replay instead of an
// unreproducible hand-edited structure.

// ShrinkResult is the smallest still-failing configuration found.
type ShrinkResult struct {
	Seed     int64
	Cfg      Config
	Scenario *Scenario
}

// Shrink minimizes a failing (seed, cfg) pair against the predicate
// fails (which should re-run whatever oracle rejected the original).
// It first strips the optional disturbance channels (faults, replans,
// blocky workloads — a negative percentage disables a channel), then
// bisects the population bound, then walks the core bound down. The
// returned scenario still fails; if the original did not fail, Shrink
// returns nil.
func Shrink(seed int64, cfg Config, fails func(*Scenario) bool) *ShrinkResult {
	cfg = cfg.withDefaults()
	if !fails(Generate(seed, cfg)) {
		return nil
	}
	best := cfg
	try := func(candidate Config) bool {
		if fails(Generate(seed, candidate)) {
			best = candidate
			return true
		}
		return false
	}

	for _, strip := range []func(*Config){
		func(c *Config) { c.FaultPct = -1 },
		func(c *Config) { c.ReplanPct = -1 },
		func(c *Config) { c.BlockyPct = -1 },
		func(c *Config) { c.ChurnPct = -1 },
	} {
		c := best
		strip(&c)
		try(c)
	}

	lo, hi := 2, best.MaxVMs
	for lo < hi {
		mid := (lo + hi) / 2
		c := best
		c.MaxVMs = mid
		if try(c) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}

	for cores := best.MaxCores - 1; cores >= best.MinCores && cores >= 1; cores-- {
		c := best
		c.MaxCores = cores
		if !try(c) {
			break
		}
	}

	return &ShrinkResult{Seed: seed, Cfg: best, Scenario: Generate(seed, best)}
}
