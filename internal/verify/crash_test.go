package verify

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"tableau/internal/faults"
)

// crashMatrixSize returns the number of seeded scenarios the matrix
// covers: ~120 in -short mode (the `make recover-short` gate) and the
// full 240 otherwise.
func crashMatrixSize() int {
	if testing.Short() {
		return 120
	}
	return 240
}

// TestCrashRecoveryMatrix is the crash-recovery gate: for every seeded
// scenario, recovery resumes on the exact epoch the shadow run
// committed (bit-identical bytes and guarantees), tail damage is
// reported truthfully, and the seam flush keeps every surviving
// guarantee with strictly increasing versions. Zero violations across
// the whole matrix.
func TestCrashRecoveryMatrix(t *testing.T) {
	n := crashMatrixSize()
	failed := 0
	for seed := 0; seed < n; seed++ {
		sc := GenerateCrashScenario(int64(seed))
		a, err := RunCrash(sc)
		if err != nil {
			t.Fatalf("seed %d (%s at append %d): %v", seed, sc.Kind, sc.AtAppend, err)
		}
		if vs := CheckRecovery(a); len(vs) > 0 {
			failed++
			for _, v := range vs {
				t.Errorf("seed %d (%s at append %d of %d bursts): %s",
					seed, sc.Kind, sc.AtAppend, len(sc.Script), v)
			}
			if failed >= 5 {
				t.Fatalf("stopping after %d failing seeds", failed)
			}
		}
	}
}

// TestCrashMatrixCoversAllKinds guards the generator: the -short
// matrix must exercise every crash kind, both expected-version
// branches, and both seam-op kinds — otherwise a regression in one
// path could hide behind a skewed draw.
func TestCrashMatrixCoversAllKinds(t *testing.T) {
	kinds := map[string]int{}
	branches := map[string]int{}
	seams := map[string]int{}
	for seed := 0; seed < 120; seed++ {
		sc := GenerateCrashScenario(int64(seed))
		kinds[sc.Kind]++
		if sc.WantVersion == uint64(sc.AtAppend) {
			branches["adopt-durable-tail"]++
		} else {
			branches["resume-predecessor"]++
		}
		seams[fmt.Sprint(sc.SeamOp.Kind)]++
		if sc.AtAppend < 2 || sc.AtAppend > len(sc.Script)+1 {
			t.Fatalf("seed %d: crash at append %d outside [2, %d]", seed, sc.AtAppend, len(sc.Script)+1)
		}
	}
	for _, k := range faults.CrashKinds {
		if kinds[k] == 0 {
			t.Errorf("120 seeds never drew crash kind %s", k)
		}
	}
	for _, b := range []string{"adopt-durable-tail", "resume-predecessor"} {
		if branches[b] == 0 {
			t.Errorf("120 seeds never hit the %s branch", b)
		}
	}
	if len(seams) < 2 {
		t.Errorf("120 seeds drew only seam ops %v", seams)
	}
}

// TestGenerateCrashScenarioDeterministic: a scenario is a pure
// function of its seed.
func TestGenerateCrashScenarioDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 7, 113} {
		a, b := GenerateCrashScenario(seed), GenerateCrashScenario(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d generated two different scenarios", seed)
		}
	}
}

// TestRunCrashDeterministic: the whole run — shadow, crash, recovery,
// seam — replays bit-identically from the same seed, which is what
// lets the crashchaos experiment emit byte-stable CSV.
func TestRunCrashDeterministic(t *testing.T) {
	run := func() *CrashArtifacts {
		a, err := RunCrash(GenerateCrashScenario(17))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a, b := run(), run()
	if a.Report.RecoveredVersion != b.Report.RecoveredVersion ||
		!bytes.Equal(a.Report.RecoveredBytes, b.Report.RecoveredBytes) ||
		a.Report.TruncatedBytes != b.Report.TruncatedBytes {
		t.Fatal("two runs of the same seed recovered differently")
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(a.History), len(b.History))
	}
	for i := range a.History {
		if a.History[i].Version != b.History[i].Version || !bytes.Equal(a.History[i].Bytes, b.History[i].Bytes) {
			t.Fatalf("history entry %d differs between runs", i)
		}
	}
}
