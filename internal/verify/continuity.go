package verify

import (
	"fmt"
	"math/big"

	"tableau/internal/core"
	"tableau/internal/faults"
	"tableau/internal/trace"
)

// ClassContinuity is the guarantee-continuity oracle: across an
// arrival/departure storm, every VM admitted in consecutive epochs
// keeps its guarantee, and its observed no-service gaps never exceed
// the analytical blackout bound of the epochs the gap touches.
const ClassContinuity = "continuity"

// enactedEpoch is one epoch the dispatcher actually enacted, with its
// observed adoption window [firstAdopt, lastAdopt] (per-core adoption
// is boundary-synchronized, so cores adopt at different instants). The
// initial epoch is enacted from t=0 with an empty window.
type enactedEpoch struct {
	ep                    core.Epoch
	firstAdopt, lastAdopt int64
	blackout              map[int]int64 // slot -> MaxBlackout
}

// CheckContinuity replays the Controller's epoch history against the
// trace. Two families of findings:
//
//   - retention: a slot holding a guarantee in enacted epoch k must
//     hold one in enacted epoch k+1 unless a committed OpDeactivate for
//     it exists in a transition with version in (v_k, v_{k+1}]. This is
//     the check that catches silent eviction: a victim that loses its
//     guarantee with no deactivation on record.
//   - shed order: a committed shed deactivation (Op.Shed) may take a
//     latency-sensitive slot only when no best-effort slot remains
//     active. This is the check that convicts UnsafeShedLSFirst: its
//     sheds are committed and journaled — retention cannot object — but
//     they take LS guarantees while BE guests still hold the slack.
//   - gaps: for each Hog slot, every observed no-service gap [g0, g1)
//     must satisfy g1-g0 <= sum of the slot's blackout bounds over the
//     epochs the gap touches. A gap inside one fully-adopted epoch gets
//     exactly that epoch's bound; a gap spanning an adoption window
//     gets B_old + B_new, which is sound because the switch happens at
//     an old-cycle boundary and the new table starts at an arbitrary
//     phase. Gaps touching an epoch in which the slot holds no
//     guarantee (departed, or an arrival the host refused) are skipped:
//     the slot was legitimately dark.
//
// Gap checks are skipped for scenarios with service-perturbing faults
// (stalls, timer drift, IPI loss/delay steal service without breaking
// continuity); a fail-stop instead masks the detection-and-recovery
// window [failAt, last adoption of the emergency epoch].
func CheckContinuity(a *Artifacts) []Violation {
	if a.Controller == nil {
		return nil
	}
	hist := a.Controller.History()
	if len(hist) == 0 {
		return nil
	}
	enacted := enactedEpochs(a, hist)

	var out []Violation
	out = append(out, checkEpochFidelity(a, hist)...)
	out = append(out, checkShedOrder(a)...)
	out = append(out, checkRetention(a, enacted)...)
	out = append(out, checkContinuityGaps(a, enacted)...)
	return out
}

// checkShedOrder replays the committed ops and holds the controller to
// the class-aware shed policy: under overload, best-effort guests are
// shed before any latency-sensitive guarantee is touched. Classes come
// from the scenario's ground truth, never the controller's self-report,
// so an inverted order is convicted even though its deactivations are
// properly committed and journaled.
func checkShedOrder(a *Artifacts) []Violation {
	sc := a.Scenario
	active := make([]bool, sc.NumSlots())
	for i := range sc.VMs {
		active[i] = true
	}
	var out []Violation
	for _, ct := range a.Transitions {
		if ct.Tr.Version == 0 {
			continue // rolled back or all-rejected: population unchanged
		}
		for _, op := range ct.Tr.Committed {
			switch op.Kind {
			case core.OpActivate:
				active[op.Slot] = true
			case core.OpDeactivate:
				if op.Shed && sc.VM(op.Slot).Class == core.LS {
					for slot := range active {
						if active[slot] && slot != op.Slot && sc.VM(slot).Class == core.BE {
							out = append(out, Violation{ClassContinuity, op.Slot, fmt.Sprintf(
								"transition %d sheds LS slot %d while BE slot %d is still active — inverted shed order",
								ct.Tr.Version, op.Slot, slot)})
							break
						}
					}
				}
				active[op.Slot] = false
			}
		}
	}
	return out
}

// checkEpochFidelity replays the committed control-plane ops against the
// scenario's initial population to reconstruct what each epoch promised,
// then demands the epoch's guarantees honour it: every expected-active
// slot holds a guarantee whose blackout bound is within the slot's
// current latency goal and whose service fraction covers the slot's
// current reservation, and no inactive slot holds one. Retention alone
// cannot catch a planner that keeps serving a reconfigured VM its stale
// pre-reconfiguration reservation (UnsafeStaleSliceReuse): the stale
// epoch is self-consistent — table, guarantees, and trace all agree —
// and only disagrees with the obligations the committed ops created.
func checkEpochFidelity(a *Artifacts, hist []core.Epoch) []Violation {
	sc := a.Scenario
	type obligation struct {
		active bool
		util   core.Util
		goal   int64
	}
	exp := make([]obligation, sc.NumSlots())
	for slot := range exp {
		vm := sc.VM(slot)
		exp[slot] = obligation{active: slot < len(sc.VMs), util: vm.Util, goal: vm.LatencyGoal}
	}

	var out []Violation
	ti := 0
	for _, ep := range hist {
		// Fold in every committed transition up to this epoch — including
		// ones whose own epochs were later withdrawn by an emergency
		// rollback: their population changes persist (only the staged
		// table was revoked), so later epochs still answer for them.
		for ti < len(a.Transitions) {
			tr := a.Transitions[ti].Tr
			if tr.Version == 0 {
				ti++ // rolled back or all-rejected: population unchanged
				continue
			}
			if tr.Version > ep.Version {
				break
			}
			for _, op := range tr.Committed {
				switch op.Kind {
				case core.OpActivate:
					exp[op.Slot].active = true
				case core.OpDeactivate:
					exp[op.Slot].active = false
				case core.OpReconfigure:
					exp[op.Slot].util = op.Util
					exp[op.Slot].goal = op.LatencyGoal
				}
			}
			ti++
		}

		held := make(map[int]int, len(ep.Guarantees))
		for i := range ep.Guarantees {
			held[ep.Guarantees[i].VCPU] = i
		}
		for slot, ob := range exp {
			gi, ok := held[slot]
			if !ob.active {
				if ok {
					out = append(out, Violation{ClassContinuity, slot, fmt.Sprintf(
						"epoch %d carries a guarantee for a slot deactivated by its committed ops", ep.Version)})
				}
				continue
			}
			if !ok {
				out = append(out, Violation{ClassContinuity, slot, fmt.Sprintf(
					"active slot holds no guarantee in epoch %d — arrival silently dropped?", ep.Version)})
				continue
			}
			g := &ep.Guarantees[gi]
			if g.MaxBlackout > ob.goal {
				out = append(out, Violation{ClassContinuity, slot, fmt.Sprintf(
					"epoch %d blackout bound %d ns exceeds the committed latency goal %d ns — stale reservation?",
					ep.Version, g.MaxBlackout, ob.goal)})
			}
			got := new(big.Rat).SetFrac64(g.Service, g.WindowLen)
			want := new(big.Rat).SetFrac64(ob.util.Num, ob.util.Den)
			if got.Cmp(want) < 0 {
				out = append(out, Violation{ClassContinuity, slot, fmt.Sprintf(
					"epoch %d serves %d/%d ns but the committed reservation is %d/%d — stale reservation?",
					ep.Version, g.Service, g.WindowLen, ob.util.Num, ob.util.Den)})
			}
		}
	}
	return out
}

// enactedEpochs filters the history down to epochs the trace shows were
// adopted, annotated with their adoption windows. Epochs committed but
// never adopted inside the horizon (or overwritten while still staged)
// are excluded — the dispatcher never enacted them.
func enactedEpochs(a *Artifacts, hist []core.Epoch) []enactedEpoch {
	type window struct{ first, last int64 }
	adopt := make(map[uint64]window)
	for i := range a.Records {
		r := &a.Records[i]
		if r.Type != trace.EvTableSwitch {
			continue
		}
		gen := uint64(r.Arg0)
		w, ok := adopt[gen]
		if !ok {
			w = window{r.Time, r.Time}
		}
		if r.Time < w.first {
			w.first = r.Time
		}
		if r.Time > w.last {
			w.last = r.Time
		}
		adopt[gen] = w
	}

	blackoutOf := func(ep core.Epoch) map[int]int64 {
		m := make(map[int]int64, len(ep.Guarantees))
		for _, g := range ep.Guarantees {
			m[g.VCPU] = g.MaxBlackout
		}
		return m
	}

	// The initial epoch is enacted from t=0: the machine starts on it,
	// so there are no switch records to find.
	enacted := []enactedEpoch{{ep: hist[0], blackout: blackoutOf(hist[0])}}
	for _, ep := range hist[1:] {
		if w, ok := adopt[ep.Version]; ok {
			enacted = append(enacted, enactedEpoch{ep, w.first, w.last, blackoutOf(ep)})
		}
	}
	return enacted
}

// checkRetention verifies no slot's guarantee vanishes between
// consecutive enacted epochs without a committed deactivation on
// record. The version range (v_k, v_{k+1}] covers deactivations
// committed in intermediate epochs that were never adopted.
func checkRetention(a *Artifacts, enacted []enactedEpoch) []Violation {
	var out []Violation
	for k := 0; k+1 < len(enacted); k++ {
		cur, next := &enacted[k], &enacted[k+1]
		deact := make(map[int]bool)
		for _, ct := range a.Transitions {
			if ct.Tr.Version <= cur.ep.Version || ct.Tr.Version > next.ep.Version {
				continue
			}
			for _, op := range ct.Tr.Committed {
				if op.Kind == core.OpDeactivate {
					deact[op.Slot] = true
				}
			}
		}
		for slot := range cur.blackout {
			if _, held := next.blackout[slot]; held || deact[slot] {
				continue
			}
			out = append(out, Violation{ClassContinuity, slot, fmt.Sprintf(
				"guarantee held in epoch %d but gone in epoch %d with no deactivation on record — silently evicted?",
				cur.ep.Version, next.ep.Version)})
		}
	}
	return out
}

// checkContinuityGaps bounds every Hog slot's no-service gaps by the
// summed blackout bounds of the epochs each gap touches.
func checkContinuityGaps(a *Artifacts, enacted []enactedEpoch) []Violation {
	sc := a.Scenario
	for _, kind := range []string{
		faults.KindPCPUStall, faults.KindTimerDrift,
		faults.KindIPIDrop, faults.KindIPIDelay,
	} {
		if sc.HasFaultKind(kind) {
			return nil
		}
	}

	// A fail-stop blacks out the dead core's VMs until the emergency
	// epoch is adopted everywhere; mask that window. If recovery never
	// completed inside the horizon (or rolled back), everything after
	// the failure is masked.
	failAt, recoveryEnd := int64(-1), int64(-1)
	if sc.Faults != nil {
		for _, e := range sc.Faults.Events {
			if e.Kind == faults.KindPCPUFailStop && (failAt < 0 || e.At < failAt) {
				failAt = e.At
			}
		}
	}
	if failAt >= 0 {
		for _, ct := range a.Transitions {
			if !ct.Tr.Emergency || ct.Tr.Version == 0 {
				continue
			}
			for i := range enacted {
				if enacted[i].ep.Version == ct.Tr.Version && enacted[i].lastAdopt > recoveryEnd {
					recoveryEnd = enacted[i].lastAdopt
				}
			}
		}
	}

	var out []Violation
	runs := runningIntervals(a.Records, len(a.M.VCPUs), Horizon)
	for slot := 0; slot < sc.NumSlots(); slot++ {
		if sc.VM(slot).Workload != Hog {
			continue
		}
		for _, g := range serviceGaps(runs[slot]) {
			if failAt >= 0 && g.end > failAt && (recoveryEnd < 0 || g.start <= recoveryEnd) {
				continue
			}
			lo, hi := 0, -1
			for i := range enacted {
				if enacted[i].lastAdopt <= g.start {
					lo = i
				}
				if enacted[i].firstAdopt < g.end {
					hi = i
				}
			}
			allowed, covered := int64(0), true
			for i := lo; i <= hi; i++ {
				b, held := enacted[i].blackout[slot]
				if !held {
					covered = false
					break
				}
				allowed += b
			}
			if !covered {
				continue // legitimately dark for part of the gap
			}
			if g.end-g.start > allowed {
				out = append(out, Violation{ClassContinuity, slot, fmt.Sprintf(
					"gap [%d,%d) of %d ns exceeds summed blackout bound %d ns across epochs %d..%d",
					g.start, g.end, g.end-g.start, allowed, enacted[lo].ep.Version, enacted[hi].ep.Version)})
			}
		}
	}
	return out
}

// serviceGaps returns the no-service gaps of one slot over the whole
// horizon, including the leading gap from t=0 and the trailing gap to
// the horizon.
func serviceGaps(ivs []interval) []interval {
	var gaps []interval
	prev := int64(0)
	for _, iv := range ivs {
		if iv.start > prev {
			gaps = append(gaps, interval{prev, iv.start})
		}
		if iv.end > prev {
			prev = iv.end
		}
	}
	if prev < Horizon {
		gaps = append(gaps, interval{prev, Horizon})
	}
	return gaps
}
