package verify

import (
	"fmt"
	"math/rand"

	"tableau/internal/core"
	"tableau/internal/dispatch"
	"tableau/internal/planner"
	"tableau/internal/schedulers/credit"
	"tableau/internal/schedulers/credit2"
	"tableau/internal/schedulers/rtds"
	"tableau/internal/sim"
	"tableau/internal/vmm"
)

// ClassDifferential tags cross-scheduler findings.
const ClassDifferential = "differential"

// DiffScenario is a finite-demand population comparable across all
// four schedulers. Unlike Scenario's open-ended workloads, every vCPU
// here has a fixed amount of work and then dies: "did every scheduler
// serve the identical total demand" is well-defined even though
// Tableau's second level is core-local rather than globally
// work-conserving. The population is uniform (one utilization for all
// vCPUs) because credit caps and RTDS server parameters are configured
// per scheduler, not per vCPU — exactly how the paper's evaluation
// parameterizes them.
type DiffScenario struct {
	Seed        int64
	Cores       int
	VMs         int
	Util        planner.Util
	LatencyGoal int64
	// Demand is the total compute per vCPU in ns; sized so every
	// scheduler — including the inherently capped RTDS servers — can
	// finish it well inside the horizon.
	Demand int64
}

func (d *DiffScenario) String() string {
	return fmt.Sprintf("diff seed=%d cores=%d vms=%d util=%d/%d demand=%dns",
		d.Seed, d.Cores, d.VMs, d.Util.Num, d.Util.Den, d.Demand)
}

// diffChunk is the compute-burst granularity of the finite workload;
// Demand is always a multiple of it.
const diffChunk = 100_000

// GenerateDiff materializes the differential scenario for a seed,
// deterministic like Generate.
func GenerateDiff(seed int64, cfg Config) *DiffScenario {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	d := &DiffScenario{Seed: seed}
	d.Cores = cfg.MinCores + rng.Intn(cfg.MaxCores-cfg.MinCores+1)
	d.Util = utilMenu[rng.Intn(len(utilMenu))]
	goals := latencyMenu(d.Util)
	d.LatencyGoal = goals[rng.Intn(len(goals))]
	maxVMs := int(cfg.UtilBudgetPPM * int64(d.Cores) / d.Util.PPM())
	if maxVMs < 1 {
		maxVMs = 1
	}
	if maxVMs > cfg.MaxVMs {
		maxVMs = cfg.MaxVMs
	}
	d.VMs = 1 + rng.Intn(maxVMs)
	// 2/5 of the horizon's reservation: a capped scheduler serving
	// exactly U needs 0.4*Horizon to finish, leaving a 2.5x margin.
	d.Demand = (d.Util.PPM() * Horizon * 2 / 5 / 1_000_000) / diffChunk * diffChunk
	if d.Demand < diffChunk {
		d.Demand = diffChunk
	}
	return d
}

// RunDifferential runs the scenario under tableau, credit, credit2,
// and rtds and checks the cross-scheduler contract: every scheduler
// completes every vCPU's demand (identical total work served), and
// per-vCPU consumed time equals the demand exactly — no scheduler
// loses, duplicates, or inflates work.
func RunDifferential(d *DiffScenario) ([]Violation, error) {
	var out []Violation
	for _, kind := range []string{"tableau", "credit", "credit2", "rtds"} {
		vs, err := runDiffOne(d, kind)
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	return out, nil
}

func runDiffOne(d *DiffScenario, kind string) ([]Violation, error) {
	var sched vmm.Scheduler
	capped := false
	switch kind {
	case "tableau":
		sys := core.NewSystem(d.Cores, planner.Options{}, dispatch.Options{})
		for i := 0; i < d.VMs; i++ {
			if _, err := sys.AddVM(core.VMConfig{
				Name:        fmt.Sprintf("vm%d.0", i),
				Util:        d.Util,
				LatencyGoal: d.LatencyGoal,
				Capped:      true,
			}); err != nil {
				return nil, fmt.Errorf("verify: %s: %w", d, err)
			}
		}
		disp, _, err := sys.BuildDispatcher()
		if err != nil {
			return nil, fmt.Errorf("verify: %s: %w", d, err)
		}
		sched = disp
		capped = true
	case "credit":
		sched = credit.New(credit.Options{
			Timeslice: 5_000_000,
			CapPct:    int(d.Util.PPM() / 10_000),
		})
		capped = true
	case "credit2":
		sched = credit2.New(credit2.Options{CoresPerRunqueue: 8})
	case "rtds":
		period, ok := planner.PickPeriod(d.Util, d.LatencyGoal, planner.CandidatePeriods())
		if !ok {
			return nil, fmt.Errorf("verify: %s: latency goal unenforceable", d)
		}
		sched = rtds.New(rtds.Options{Default: rtds.Params{Budget: d.Util.Cost(period), Period: period}})
		capped = true
	}

	m := vmm.New(sim.New(d.Seed), d.Cores, sched, vmm.NoOverheads())
	for i := 0; i < d.VMs; i++ {
		m.AddVCPU(fmt.Sprintf("vm%d.0", i), finiteHog(d.Demand), 256, capped)
	}
	m.Start()
	m.Run(Horizon)
	m.Stop()

	var out []Violation
	for _, v := range m.VCPUs {
		if v.State != vmm.Dead {
			out = append(out, Violation{ClassDifferential, v.ID, fmt.Sprintf(
				"%s: demand %d ns not completed by horizon (state %s, served %d ns)",
				kind, d.Demand, v.State, v.RunTime)})
			continue
		}
		if v.RunTime != d.Demand {
			out = append(out, Violation{ClassDifferential, v.ID, fmt.Sprintf(
				"%s: served %d ns != demand %d ns", kind, v.RunTime, d.Demand)})
		}
	}
	var busy, want int64
	for _, cpu := range m.CPUs {
		busy += cpu.BusyTime
	}
	want = d.Demand * int64(d.VMs)
	if busy != want {
		out = append(out, Violation{ClassDifferential, -1, fmt.Sprintf(
			"%s: total busy time %d ns != total demand %d ns", kind, busy, want)})
	}
	return out, nil
}

// finiteHog computes total ns in diffChunk bursts, then exits.
func finiteHog(total int64) vmm.Program {
	remaining := total
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		if remaining <= 0 {
			return vmm.Done()
		}
		burst := int64(diffChunk)
		if burst > remaining {
			burst = remaining
		}
		remaining -= burst
		return vmm.Compute(burst)
	})
}
