package verify

import "testing"

// FuzzScenario drives the whole generator→run→oracle pipeline from
// fuzzed inputs: whatever population, fault plan, and replan the
// fuzzer's bytes select, every invariant oracle must hold. Violations
// AND harness panics (machine livelock guards, table validation) are
// both findings here.
func FuzzScenario(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(2), uint8(0))
	f.Add(int64(42), uint8(12), uint8(4), uint8(3))
	f.Add(int64(7777), uint8(6), uint8(1), uint8(1))
	f.Add(int64(-5), uint8(3), uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, maxVMs, maxCores, flags uint8) {
		cfg := Config{
			MaxVMs:   2 + int(maxVMs%11),
			MaxCores: 1 + int(maxCores%4),
		}
		// The flag bits force disturbance channels fully on or off so
		// the fuzzer controls scenario shape directly instead of
		// through seed luck.
		if flags&1 != 0 {
			cfg.FaultPct = 100
		}
		if flags&2 != 0 {
			cfg.ReplanPct = 100
		}
		sc := Generate(seed, cfg)
		art, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if vs := CheckAll(art); len(vs) > 0 {
			for _, v := range vs {
				t.Errorf("%s: %s", sc, v)
			}
		}
	})
}
