package verify

import (
	"fmt"
	"math/rand"
	"testing"

	"tableau/internal/fleet"
	"tableau/internal/planner"
)

// runFleetStorm drives one seeded random churn storm through a small
// fleet and returns the arbiter for the oracle to inspect.
func runFleetStorm(t *testing.T, seed int64, defect bool) *fleet.Arbiter {
	t.Helper()
	a, err := fleet.New(fleet.Config{
		Hosts: 10, Cores: 4, SlotsPerHost: 10, Placers: 3,
		SpareHosts: 2, MaxAttempts: 4, Cache: planner.NewCache(256),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	a.UnsafeDoublePlace = defect

	rng := rand.New(rand.NewSource(seed))
	utils := []planner.Util{{Num: 1, Den: 8}, {Num: 1, Den: 4}, {Num: 1, Den: 2}, {Num: 3, Den: 4}}
	mkVMs := func(prefix string, n int) []fleet.VM {
		vms := make([]fleet.VM, n)
		for i := range vms {
			vms[i] = fleet.VM{
				Name:        fmt.Sprintf("s%d-%s%d", seed, prefix, i),
				Util:        utils[rng.Intn(len(utils))],
				LatencyGoal: 20_000_000,
			}
		}
		// Class draw last, after every structural draw: ~40% best-effort,
		// so the surge waves trigger real class-aware sheds on full hosts.
		for i := range vms {
			if rng.Intn(100) < 40 {
				vms[i].Class = planner.BE
			}
		}
		return vms
	}

	if _, err := a.PlaceBatch(mkVMs("v", 20+rng.Intn(25))); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		live := a.PlacedNames()
		n := len(live) / 4
		perm := rng.Perm(len(live))
		departs := make([]string, n)
		for i := 0; i < n; i++ {
			departs[i] = live[perm[i]]
		}
		if _, err := a.DepartBatch(departs); err != nil {
			t.Fatal(err)
		}
		if _, err := a.PlaceBatch(mkVMs(fmt.Sprintf("c%d-", round), n+rng.Intn(8))); err != nil {
			t.Fatal(err)
		}
	}
	// A surge of big VMs past the admission edge: rejects, spare-pool
	// sheds and unplaced tails must all leave the ledgers consistent.
	if _, err := a.PlaceBatch(mkVMs("g", 12+rng.Intn(10))); err != nil {
		t.Fatal(err)
	}
	return a
}

// TestCheckFleetSeeds soaks the cross-host continuity oracle: 120
// seeded random mixed-class churn storms (30 under -short), each
// replayed through CheckFleet — every admitted VM must be live on
// exactly one host at every epoch seam, every host's guarantee history
// must track its committed ledger exactly, and every shed must name a
// best-effort guest that was live on the shedding host. The soak must
// actually exercise the shed path across the seed set.
func TestCheckFleetSeeds(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 30
	}
	var sheds int64
	for seed := 0; seed < seeds; seed++ {
		a := runFleetStorm(t, int64(seed), false)
		if vs := CheckFleet(a); len(vs) != 0 {
			for _, v := range vs {
				t.Errorf("seed %d: %s", seed, v)
			}
			t.Fatalf("seed %d: %d fleet continuity violations", seed, len(vs))
		}
		sheds += a.Stats().Shed
	}
	if sheds == 0 {
		t.Fatal("no storm exercised the class-aware shed path — the soak lost its teeth")
	}
}

// TestCheckFleetCatchesDoublePlace arms the UnsafeDoublePlace defect
// (a VM committed to a second host behind the registry's back) and
// demands the oracle convict it.
func TestCheckFleetCatchesDoublePlace(t *testing.T) {
	caught := false
	for seed := int64(0); seed < 5 && !caught; seed++ {
		a := runFleetStorm(t, seed, true)
		caught = len(CheckFleet(a)) > 0
	}
	if !caught {
		t.Fatal("UnsafeDoublePlace escaped the fleet continuity oracle on every seed")
	}
}
