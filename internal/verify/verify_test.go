package verify

import (
	"reflect"
	"strings"
	"testing"
)

// TestGenerateReproducible pins the generator's bit-for-bit
// determinism: the same (seed, Config) must materialize a deeply equal
// scenario every time — that is what makes a soak report a list of
// replayable repros.
func TestGenerateReproducible(t *testing.T) {
	var differing int
	var prev *Scenario
	for seed := int64(1); seed <= 100; seed++ {
		a := Generate(seed, Config{})
		b := Generate(seed, Config{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate is not deterministic:\n%+v\nvs\n%+v", seed, a, b)
		}
		if prev != nil && !reflect.DeepEqual(a.VMs, prev.VMs) {
			differing++
		}
		prev = a
	}
	if differing < 50 {
		t.Fatalf("only %d/99 consecutive seeds produced different populations — generator is degenerate", differing)
	}
}

// TestGenerateRespectsBudget checks structural invariants of every
// generated scenario: admissible utilization (with fail-stop headroom
// when a fail-stop is planned), valid fault plans, goals compatible
// with the 25 ms period bound the oracles rely on.
func TestGenerateRespectsBudget(t *testing.T) {
	for seed := int64(1); seed <= 300; seed++ {
		sc := Generate(seed, Config{})
		budgetCores := int64(sc.Cores)
		if sc.HasFaultKind("pcpu-failstop") {
			budgetCores--
		}
		if got, max := sc.TotalUtil(), 850_000*budgetCores; got > max {
			t.Errorf("seed %d: total util %d ppm exceeds budget %d", seed, got, max)
		}
		if sc.Faults != nil {
			if err := sc.Faults.Validate(sc.Cores); err != nil {
				t.Errorf("seed %d: invalid fault plan: %v", seed, err)
			}
			for _, e := range sc.Faults.Events {
				if e.At < faultEarliest || e.At >= faultLatest {
					t.Errorf("seed %d: fault at %d outside [%d,%d)", seed, e.At, int64(faultEarliest), int64(faultLatest))
				}
			}
		}
		for _, vm := range sc.VMs {
			limit := 50_000_000 * (vm.Util.Den - vm.Util.Num) / vm.Util.Den
			if vm.LatencyGoal > limit {
				t.Errorf("seed %d: %s goal %d incompatible with util %d/%d (limit %d)",
					seed, vm.Name, vm.LatencyGoal, vm.Util.Num, vm.Util.Den, limit)
			}
		}
	}
}

// report fails the test with a shrunken repro for every violation.
func report(t *testing.T, seed int64, cfg Config, vs []Violation) {
	t.Helper()
	if len(vs) == 0 {
		return
	}
	var b strings.Builder
	for _, v := range vs {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if r := Shrink(seed, cfg, func(sc *Scenario) bool {
		art, err := Run(sc)
		return err == nil && len(CheckAll(art)) > 0
	}); r != nil {
		t.Fatalf("seed %d: %d violation(s):%s\nshrunken repro: %s (MaxVMs=%d MaxCores=%d FaultPct=%d ReplanPct=%d BlockyPct=%d)",
			seed, len(vs), b.String(), r.Scenario, r.Cfg.MaxVMs, r.Cfg.MaxCores, r.Cfg.FaultPct, r.Cfg.ReplanPct, r.Cfg.BlockyPct)
	}
	t.Fatalf("seed %d: %d violation(s):%s", seed, len(vs), b.String())
}

// TestPropertyOracles is the bounded property loop: generated
// scenarios of every flavor must satisfy all invariant oracles.
func TestPropertyOracles(t *testing.T) {
	n := int64(40)
	if testing.Short() {
		n = 10
	}
	cfg := Config{}
	for seed := int64(1); seed <= n; seed++ {
		art, err := Run(Generate(seed, cfg))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		report(t, seed, cfg, CheckAll(art))
	}
}

// TestPropertyMetamorphic covers the planner-only metamorphic
// properties over many more seeds (planning is cheap compared to
// simulation).
func TestPropertyMetamorphic(t *testing.T) {
	for seed := int64(1); seed <= 80; seed++ {
		sc := Generate(seed, Config{})
		if vs := CheckMetamorphicPermute(sc, seed*7+1); len(vs) > 0 {
			report(t, seed, Config{}, vs)
		}
		for _, k := range []int64{2, 3, 10} {
			if vs := CheckMetamorphicScale(sc, k); len(vs) > 0 {
				report(t, seed, Config{}, vs)
			}
		}
	}
}

// TestPropertyDifferential runs the cross-scheduler conformance check
// on a handful of seeds (each runs four full simulations).
func TestPropertyDifferential(t *testing.T) {
	n := int64(6)
	if testing.Short() {
		n = 2
	}
	for seed := int64(1); seed <= n; seed++ {
		vs, err := RunDifferential(GenerateDiff(seed, Config{}))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(vs) > 0 {
			var b strings.Builder
			for _, v := range vs {
				b.WriteString("\n  ")
				b.WriteString(v.String())
			}
			t.Fatalf("seed %d: differential violations:%s", seed, b.String())
		}
	}
}
