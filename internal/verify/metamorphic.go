package verify

import (
	"errors"
	"fmt"
	"math/rand"

	"tableau/internal/planner"
	"tableau/internal/table"
)

// ClassMetamorphic tags planner metamorphic findings.
const ClassMetamorphic = "metamorphic"

// specsOf converts a generated scenario to planner specs.
func specsOf(sc *Scenario) []planner.VCPUSpec {
	specs := make([]planner.VCPUSpec, len(sc.VMs))
	for i, vm := range sc.VMs {
		specs[i] = planner.VCPUSpec{
			Name: vm.Name, Util: vm.Util, LatencyGoal: vm.LatencyGoal, Capped: vm.Capped,
		}
	}
	return specs
}

// verdict classifies a planning outcome for metamorphic comparison.
func verdict(err error) string {
	switch {
	case err == nil:
		return "ok"
	default:
		var over *planner.ErrOverUtilized
		if errors.As(err, &over) {
			return "overutilized"
		}
		return "error"
	}
}

// CheckMetamorphicPermute verifies that planning is invariant under
// spec order: permuting the VM list must not change the admission
// verdict, and each vCPU (matched by name) must keep the same
// guarantee — same reserved service, same window, same blackout
// bound. The raw table layout is deliberately NOT compared: worst-fit
// ties and coalescing donations are order-sensitive by design; the
// contract is the guarantee, not the placement.
func CheckMetamorphicPermute(sc *Scenario, permSeed int64) []Violation {
	specs := specsOf(sc)
	perm := make([]planner.VCPUSpec, len(specs))
	copy(perm, specs)
	rng := rand.New(rand.NewSource(permSeed))
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })

	opts := planner.Options{Cores: sc.Cores}
	r1, err1 := planner.Plan(specs, opts)
	r2, err2 := planner.Plan(perm, opts)

	var out []Violation
	if verdict(err1) != verdict(err2) {
		out = append(out, Violation{ClassMetamorphic, -1, fmt.Sprintf(
			"permutation changed verdict: %q (err %v) vs %q (err %v)",
			verdict(err1), err1, verdict(err2), err2)})
		return out
	}
	if err1 != nil {
		return out
	}
	g1 := guaranteesByName(specs, r1.Guarantees)
	g2 := guaranteesByName(perm, r2.Guarantees)
	for name, a := range g1 {
		b, ok := g2[name]
		if !ok {
			out = append(out, Violation{ClassMetamorphic, -1, fmt.Sprintf(
				"%s: guarantee missing after permutation", name)})
			continue
		}
		if a.Service != b.Service || a.WindowLen != b.WindowLen || a.MaxBlackout != b.MaxBlackout {
			out = append(out, Violation{ClassMetamorphic, -1, fmt.Sprintf(
				"%s: guarantee changed under permutation: (%d/%d ns, blackout %d) vs (%d/%d ns, blackout %d)",
				name, a.Service, a.WindowLen, a.MaxBlackout, b.Service, b.WindowLen, b.MaxBlackout)})
		}
	}
	return out
}

// CheckMetamorphicScale verifies the planner under a uniform latency-
// goal scale-up by integer k: the admission verdict must not change
// (admission depends only on utilizations), chosen periods must not
// shrink (a looser deadline can only admit longer periods), and
// normalized allocations must stay exactly the reserved utilization —
// Service = U * WindowLen with no rounding slack, which the
// generator's utilization menu makes exactly representable.
func CheckMetamorphicScale(sc *Scenario, k int64) []Violation {
	if k < 1 {
		k = 2
	}
	specs := specsOf(sc)
	scaled := make([]planner.VCPUSpec, len(specs))
	copy(scaled, specs)
	for i := range scaled {
		scaled[i].LatencyGoal *= k
	}

	opts := planner.Options{Cores: sc.Cores}
	r1, err1 := planner.Plan(specs, opts)
	r2, err2 := planner.Plan(scaled, opts)

	var out []Violation
	if verdict(err1) != verdict(err2) {
		out = append(out, Violation{ClassMetamorphic, -1, fmt.Sprintf(
			"goal scale x%d changed verdict: %q (err %v) vs %q (err %v)",
			k, verdict(err1), err1, verdict(err2), err2)})
		return out
	}
	if err1 != nil {
		return out
	}
	g1 := guaranteesByName(specs, r1.Guarantees)
	g2 := guaranteesByName(scaled, r2.Guarantees)
	for i, s := range specs {
		name := s.Name
		a, b := g1[name], g2[name]
		if b.WindowLen < a.WindowLen {
			out = append(out, Violation{ClassMetamorphic, i, fmt.Sprintf(
				"%s: period shrank from %d to %d ns under goal scale x%d",
				name, a.WindowLen, b.WindowLen, k)})
		}
		for _, g := range []table.Guarantee{a, b} {
			if g.Service*s.Util.Den != g.WindowLen*s.Util.Num {
				out = append(out, Violation{ClassMetamorphic, i, fmt.Sprintf(
					"%s: normalized allocation %d/%d ns is not exactly U=%d/%d",
					name, g.Service, g.WindowLen, s.Util.Num, s.Util.Den)})
			}
		}
	}
	return out
}

// guaranteesByName keys guarantees by spec name (Guarantee.VCPU
// indexes the spec slice the plan was made from).
func guaranteesByName(specs []planner.VCPUSpec, gs []table.Guarantee) map[string]table.Guarantee {
	out := make(map[string]table.Guarantee, len(gs))
	for _, g := range gs {
		if g.VCPU >= 0 && g.VCPU < len(specs) {
			out[specs[g.VCPU].Name] = g
		}
	}
	return out
}
