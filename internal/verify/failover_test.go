package verify

import (
	"fmt"
	"math/rand"
	"testing"

	"tableau/internal/faults"
	"tableau/internal/fleet"
	"tableau/internal/planner"
)

// runFailoverStorm drives seeded crash storms through a journaled
// fleet mid-churn and returns the arbiter plus the accumulated
// failover stats. failStopPct steers the recover-vs-evacuate mix.
func runFailoverStorm(t *testing.T, seed int64, failStopPct int, beFirst bool) (*fleet.Arbiter, fleet.Stats) {
	t.Helper()
	const hosts = 12
	a, err := fleet.New(fleet.Config{
		Hosts: hosts, Cores: 4, SlotsPerHost: 10, Placers: 3,
		SpareHosts: 2, MaxAttempts: 4, Cache: planner.NewCache(256),
		Journal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	a.UnsafeEvacuateBEFirst = beFirst

	rng := rand.New(rand.NewSource(seed))
	// Dense menu (up to 3/4-core) and a near-capacity fill: evacuation
	// then really runs under pressure, so LS evacuees trigger
	// best-effort sheds on full hosts and unplaceable tails go lost —
	// both truthfully accounted or the oracle flags it.
	utils := []planner.Util{{Num: 1, Den: 4}, {Num: 1, Den: 2}, {Num: 3, Den: 4}}
	mkVMs := func(prefix string, n int) []fleet.VM {
		vms := make([]fleet.VM, n)
		for i := range vms {
			vms[i] = fleet.VM{
				Name:        fmt.Sprintf("s%d-%s%d", seed, prefix, i),
				Util:        utils[rng.Intn(len(utils))],
				LatencyGoal: 20_000_000,
			}
		}
		for i := range vms {
			if rng.Intn(100) < 40 {
				vms[i].Class = planner.BE
			}
		}
		return vms
	}

	if _, err := a.PlaceBatch(mkVMs("v", 60+rng.Intn(20))); err != nil {
		t.Fatal(err)
	}
	var total fleet.Stats
	for storm := 0; storm < 2; storm++ {
		plan, err := faults.GenerateHostCrashPlan(rng.Int63(), hosts, 2+rng.Intn(2), failStopPct, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.ArmCrashes(plan); err != nil {
			t.Fatal(err)
		}
		// Churn while armed: the crashes fire as commit traffic reaches
		// the planned appends. Departures hitting a downed host defer.
		live := a.PlacedNames()
		n := len(live) / 4
		perm := rng.Perm(len(live))
		departs := make([]string, n)
		for i := 0; i < n; i++ {
			departs[i] = live[perm[i]]
		}
		if _, err := a.DepartBatch(departs); err != nil {
			t.Fatal(err)
		}
		if _, err := a.PlaceBatch(mkVMs(fmt.Sprintf("c%d-", storm), n+6+rng.Intn(8))); err != nil {
			t.Fatal(err)
		}
		st, err := a.Failover()
		if err != nil {
			t.Fatal(err)
		}
		total.HostsDown += st.HostsDown
		total.Recovered += st.Recovered
		total.Displaced += st.Displaced
		total.Evacuated += st.Evacuated
		total.EvacSheds += st.EvacSheds
		total.Lost += st.Lost
		total.Shed += st.Shed
	}
	return a, total
}

// TestFailoverSoak soaks the failure-seam oracle: 200 seeded crash
// storms (40 under -short) at a swept recover-vs-evacuate mix, each
// checked for zero continuity violations across the crash, recover and
// evacuate seams. The soak must actually exercise both resolution
// paths and displace real guests, or it has no teeth.
func TestFailoverSoak(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	var agg fleet.Stats
	for seed := 0; seed < seeds; seed++ {
		// Sweep the fail-stop share so every mix band recurs: pure
		// recovery, mixed, and pure evacuation storms.
		failStopPct := []int{0, 35, 65, 100}[seed%4]
		a, st := runFailoverStorm(t, int64(seed), failStopPct, false)
		if vs := CheckFleet(a); len(vs) != 0 {
			for _, v := range vs {
				t.Errorf("seed %d: %s", seed, v)
			}
			t.Fatalf("seed %d: %d failure-seam violations", seed, len(vs))
		}
		agg.HostsDown += st.HostsDown
		agg.Recovered += st.Recovered
		agg.Displaced += st.Displaced
		agg.Evacuated += st.Evacuated
		agg.EvacSheds += st.EvacSheds
		agg.Lost += st.Lost
	}
	if agg.HostsDown == 0 || agg.Recovered == 0 || agg.Evacuated == 0 || agg.Displaced == 0 {
		t.Fatalf("soak teeth lost: %d down, %d recovered, %d evacuated, %d displaced — some path never ran", agg.HostsDown, agg.Recovered, agg.Evacuated, agg.Displaced)
	}
	if agg.EvacSheds == 0 || agg.Lost == 0 {
		t.Fatalf("soak teeth lost: %d evac sheds, %d lost — evacuation never ran under pressure", agg.EvacSheds, agg.Lost)
	}
}

// TestMutationSmokeEvacuateBEFirst arms the UnsafeEvacuateBEFirst
// defect (evacuation re-places the best-effort wave first) and demands
// the cross-seam oracle convict it on some seed.
func TestMutationSmokeEvacuateBEFirst(t *testing.T) {
	caught := false
	for seed := int64(0); seed < 12 && !caught; seed++ {
		// Pure fail-stop storms: every down host evacuates, maximizing
		// seams with both classes displaced.
		a, _ := runFailoverStorm(t, seed, 100, true)
		caught = len(CheckFleet(a)) > 0
	}
	if !caught {
		t.Fatal("UnsafeEvacuateBEFirst escaped the failure-seam oracle on every seed")
	}
}

// TestCheckFleetEdges covers the oracle's degenerate inputs: a
// single-host fleet (no cross-host seam at all), an empty ledger
// (nothing ever placed), and a fleet whose every VM has departed.
func TestCheckFleetEdges(t *testing.T) {
	t.Run("single-host", func(t *testing.T) {
		a, err := fleet.New(fleet.Config{Hosts: 1, Cores: 4, SlotsPerHost: 8, Placers: 1, Journal: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = a.Close() })
		vms := []fleet.VM{
			{Name: "a", Util: planner.Util{Num: 1, Den: 4}, LatencyGoal: 20_000_000},
			{Name: "b", Util: planner.Util{Num: 1, Den: 4}, LatencyGoal: 20_000_000, Class: planner.BE},
		}
		if _, err := a.PlaceBatch(vms); err != nil {
			t.Fatal(err)
		}
		if err := a.Hosts()[0].Arm(faults.CrashPlan{Kind: faults.CrashTorn, AtAppend: 1, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		// The crashing departure defers; recovery brings the only host
		// back and the deferred departure then resolves.
		if err := a.Depart("a"); err == nil {
			t.Fatal("departure on the crashing host should defer")
		}
		if st, err := a.Failover(); err != nil || st.Recovered != 1 {
			t.Fatalf("failover: %+v %v", st, err)
		}
		if err := a.Depart("a"); err != nil {
			t.Fatal(err)
		}
		if vs := CheckFleet(a); len(vs) != 0 {
			t.Fatalf("single-host fleet: %v", vs)
		}
	})
	t.Run("empty-ledger", func(t *testing.T) {
		a, err := fleet.New(fleet.Config{Hosts: 3, Cores: 2, Placers: 1, SpareHosts: 1, Journal: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = a.Close() })
		if vs := CheckFleet(a); len(vs) != 0 {
			t.Fatalf("empty fleet: %v", vs)
		}
	})
	t.Run("all-departed", func(t *testing.T) {
		a, err := fleet.New(fleet.Config{Hosts: 3, Cores: 4, SlotsPerHost: 8, Placers: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = a.Close() })
		var vms []fleet.VM
		for i := 0; i < 9; i++ {
			vms = append(vms, fleet.VM{Name: fmt.Sprintf("d%d", i), Util: planner.Util{Num: 1, Den: 8}, LatencyGoal: 20_000_000})
		}
		if _, err := a.PlaceBatch(vms); err != nil {
			t.Fatal(err)
		}
		if _, err := a.DepartBatch(a.PlacedNames()); err != nil {
			t.Fatal(err)
		}
		if len(a.Assignments()) != 0 {
			t.Fatal("registry not empty after departing everything")
		}
		if vs := CheckFleet(a); len(vs) != 0 {
			t.Fatalf("all-departed fleet: %v", vs)
		}
	})
}
