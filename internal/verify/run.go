package verify

import (
	"bytes"
	"fmt"

	"tableau/internal/core"
	"tableau/internal/dispatch"
	"tableau/internal/faults"
	"tableau/internal/planner"
	"tableau/internal/sim"
	"tableau/internal/table"
	"tableau/internal/trace"
	"tableau/internal/vmm"
	"tableau/internal/workload"
)

// runRingSize holds every record a generated run can emit: the oracles
// demand Lost() == 0 because an overwritten ring would silently shrink
// the evidence the invariants are checked against.
const runRingSize = 1 << 16

// emergencyDelay models the control plane's failure-detection latency:
// the emergency replan is issued this long after a fail-stop.
const emergencyDelay = 5_000_000

// Artifacts is everything the oracles need from a finished run: the
// scenario, the planned tables and guarantees, the machine's ground
// truth, and the trace both live and round-tripped through the
// TBTRACE1 codec.
type Artifacts struct {
	Scenario *Scenario

	// Table and Guarantees are the initial plan (vCPU ids are machine
	// vCPU ids). FinalTable is the dispatcher's active table at the end
	// of the run — different from Table after an adopted replan.
	Table      *table.Table
	Guarantees []table.Guarantee
	FinalTable *table.Table

	M          *vmm.Machine
	Dispatcher *dispatch.Dispatcher
	Sys        *core.System
	Tracer     *trace.Tracer

	// Live is the tracer's in-memory metrics; Dump is the decoded
	// result of encoding the trace, and Records its merged stream. The
	// trace-consistency oracle checks Live and Dump agree.
	Live    *trace.Metrics
	Dump    *trace.TraceData
	Records []trace.Record

	// PushErr/ReplanErr record a failed scheduled replan or emergency
	// replan (nil on success or when none was scheduled).
	PushErr   error
	ReplanErr error
	// Adopted counts EvTableSwitch records: how many cores adopted a
	// staged table during the run.
	Adopted int

	// Controller is the transactional pipeline churn scenarios run
	// through (nil for churn-free runs — those keep the direct
	// Push/EmergencyReplan path bit-for-bit). Transitions records every
	// Flush outcome with the sim time it ran, in time order; the
	// continuity oracle replays them against the epoch history.
	Controller  *core.Controller
	Transitions []ChurnTransition
}

// ChurnTransition pairs one control-plane flush with the sim time it
// ran. Tr is never nil; a rolled-back flush is recorded too (rollback
// under a storm is legitimate behaviour the oracles must see).
type ChurnTransition struct {
	At int64
	Tr *core.Transition
}

// Run executes the scenario under the Tableau stack and returns the
// artifacts for oracle replay. The run uses the zero overhead model so
// table dispatch delivers reservations exactly — the utilization and
// max-gap oracles check strict inequalities, not tolerances.
//
// Controller-routed scenarios (spares or churn present) run with the
// production planning fast paths armed — whole-problem cache,
// incremental replanning, and speculative plan-ahead — so every churn
// soak exercises exactly the pipeline a dense host would use. Churn-free
// scenarios keep the direct System path bit-for-bit.
func Run(sc *Scenario) (*Artifacts, error) {
	return runWith(sc, runKnobs{})
}

// run keeps the historical mutation-smoke signature: an optional
// scheduler wrapper and the UnsafeShedLSFirst switch.
func run(sc *Scenario, wrap func(inner vmm.Scheduler) vmm.Scheduler, shedLSFirst bool) (*Artifacts, error) {
	return runWith(sc, runKnobs{wrap: wrap, shedLSFirst: shedLSFirst})
}

// runKnobs selects run variants for tests: mutation-smoke defect
// switches and planning-path overrides.
type runKnobs struct {
	// wrap installs an intentionally broken scheduler variant between
	// the dispatcher and the machine.
	wrap func(inner vmm.Scheduler) vmm.Scheduler
	// shedLSFirst arms the Controller's UnsafeShedLSFirst defect.
	shedLSFirst bool
	// staleSlice arms the planner's UnsafeStaleSliceReuse defect.
	staleSlice bool
	// scratch disables the planning fast paths (cache, incremental,
	// speculation) so every controller plan is computed from scratch.
	scratch bool
}

func runWith(sc *Scenario, k runKnobs) (*Artifacts, error) {
	sys := core.NewSystem(sc.Cores, planner.Options{}, dispatch.Options{})
	churny := len(sc.Spares) > 0 || len(sc.Churn) > 0
	if churny && !k.scratch {
		// Arm the planning fast paths before the initial plan so the
		// controller's very first flush can already diff against it.
		sys.Cache = planner.NewCache(0)
		sys.Incremental = true
	}
	sys.UnsafeStaleSliceReuse = k.staleSlice
	for slot := 0; slot < sc.NumSlots(); slot++ {
		vm := sc.VM(slot)
		id, err := sys.AddVM(core.VMConfig{
			Name: vm.Name, Util: vm.Util, LatencyGoal: vm.LatencyGoal, Capped: vm.Capped,
			Class: vm.Class,
		})
		if err != nil {
			return nil, fmt.Errorf("verify: %s: %w", sc, err)
		}
		if slot >= len(sc.VMs) {
			// Spares are registered but not part of the initial plan;
			// churn ops activate them through the Controller.
			if err := sys.SetActive(id, false); err != nil {
				return nil, fmt.Errorf("verify: %s: %w", sc, err)
			}
		}
	}
	disp, res, err := sys.BuildDispatcher()
	if err != nil {
		return nil, fmt.Errorf("verify: %s: %w", sc, err)
	}

	var sched vmm.Scheduler = disp
	if k.wrap != nil {
		sched = k.wrap(disp)
	}
	m := vmm.New(sim.New(sc.Seed), sc.Cores, sched, vmm.NoOverheads())
	tr := trace.New(runRingSize)
	m.SetTracer(tr)
	for slot := 0; slot < sc.NumSlots(); slot++ {
		vm := sc.VM(slot)
		m.AddVCPU(vm.Name, programFor(sc, slot), 256, vm.Capped)
	}
	// Hand the population's tenancy classes to the runtime side channels:
	// the dispatcher orders second-level slack by them, the tracer stamps
	// FlagBestEffort on BE records. All-LS populations install nothing,
	// keeping pre-class runs bit-for-bit.
	var be []bool
	for slot := 0; slot < sc.NumSlots(); slot++ {
		if sc.VM(slot).Class == planner.BE {
			if be == nil {
				be = make([]bool, sc.NumSlots())
			}
			be[slot] = true
		}
	}
	if be != nil {
		disp.SetBestEffort(be)
		tr.SetBestEffort(be)
	}

	art := &Artifacts{
		Scenario:   sc,
		Table:      res.Table,
		Guarantees: res.Guarantees,
		M:          m,
		Dispatcher: disp,
		Sys:        sys,
		Tracer:     tr,
	}

	// Churn scenarios route every mid-run reconfiguration — bursts,
	// emergency replans, scheduled replans — through the transactional
	// Controller. Churn-free scenarios keep the direct System path so
	// their runs stay bit-for-bit identical to earlier generators.
	var ctrl *core.Controller
	if churny {
		ctrl, err = core.NewController(sys, disp, res)
		if err != nil {
			return nil, fmt.Errorf("verify: %s: %w", sc, err)
		}
		ctrl.UnsafeShedLSFirst = k.shedLSFirst
		if !k.scratch {
			// Speculation runs synchronously so runs stay deterministic;
			// it costs wall-clock only, never sim time. The tracer records
			// each installed epoch's plan origin for the oracles.
			ctrl.SpeculateNext = 2
			ctrl.Tracer = tr
			ctrl.NowFn = m.Eng.Now
		}
		art.Controller = ctrl
	}
	flush := func(now int64) *core.Transition {
		tr, _ := ctrl.Flush()
		if tr != nil {
			art.Transitions = append(art.Transitions, ChurnTransition{At: now, Tr: tr})
		}
		return tr
	}

	if sc.Faults != nil {
		if _, err := faults.Attach(m, sc.Faults); err != nil {
			return nil, fmt.Errorf("verify: %s: attach faults: %w", sc, err)
		}
		// The control plane reacts to each fail-stop with an emergency
		// replan onto the survivors, like the chaos experiment.
		for _, e := range sc.Faults.Events {
			if e.Kind != faults.KindPCPUFailStop {
				continue
			}
			failedCore := e.Core
			m.Eng.At(e.At+emergencyDelay, func(now int64) {
				if ctrl != nil {
					ctrl.Submit(core.Op{Kind: core.OpFailCore, Core: failedCore})
					if t := flush(now); t != nil && t.Err != nil {
						art.ReplanErr = t.Err
					}
					return
				}
				if _, err := sys.EmergencyReplan(disp, failedCore); err != nil {
					art.ReplanErr = err
				}
			})
		}
	}
	if sc.Replan != nil {
		rp := sc.Replan
		m.Eng.At(rp.At, func(now int64) {
			if ctrl != nil {
				ctrl.Submit(core.Op{
					Kind: core.OpReconfigure, Slot: rp.Slot,
					Util: sc.VMs[rp.Slot].Util, LatencyGoal: rp.NewGoal,
				})
				if t := flush(now); t != nil && t.Err != nil {
					art.PushErr = t.Err
				}
				return
			}
			if err := sys.Reconfigure(rp.Slot, sc.VMs[rp.Slot].Util, rp.NewGoal); err != nil {
				art.PushErr = err
				return
			}
			if _, err := sys.Push(disp); err != nil {
				art.PushErr = err
			}
		})
	}
	for i := 0; i < len(sc.Churn); {
		j := i
		for j < len(sc.Churn) && sc.Churn[j].At == sc.Churn[i].At {
			j++
		}
		burst := sc.Churn[i:j]
		m.Eng.At(burst[0].At, func(now int64) {
			for _, op := range burst {
				kind := core.OpDeactivate
				if op.Activate {
					kind = core.OpActivate
				}
				ctrl.Submit(core.Op{Kind: kind, Slot: op.Slot})
			}
			flush(now)
		})
		i = j
	}

	m.Start()
	m.Run(Horizon)
	m.Stop()
	tr.FlushResidency(Horizon)

	art.FinalTable = disp.ActiveTable()
	art.Live = tr.Metrics()

	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		return nil, fmt.Errorf("verify: %s: encode trace: %w", sc, err)
	}
	dump, err := trace.Decode(&buf)
	if err != nil {
		return nil, fmt.Errorf("verify: %s: decode trace: %w", sc, err)
	}
	art.Dump = dump
	art.Records = dump.Merged()
	for i := range art.Records {
		if art.Records[i].Type == trace.EvTableSwitch {
			art.Adopted++
		}
	}
	return art, nil
}

// programFor builds the guest program for combined slot i. Blocky
// programs get a per-vCPU seed derived from the scenario seed so runs
// stay deterministic while VMs stay out of lockstep.
func programFor(sc *Scenario, i int) vmm.Program {
	vm := sc.VM(i)
	if vm.Workload == Blocky {
		return workload.StressIO(vm.ComputeNs, vm.BlockNs, 20, sc.Seed*1000+int64(i))
	}
	return workload.CPUHog()
}
